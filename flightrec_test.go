package paradice_test

// The flight recorder's root-level contract: arming it perturbs nothing —
// the §6.1.1 no-op latency goldens hold bit for bit with the recorder on —
// and every digest it captures tiles: the per-hop durations sum exactly to
// the request's end-to-end latency, with the root group's duration agreeing
// with the digest's. This is the attribution analogue of
// TestNoopSpanReconciliation: every nanosecond of a request lands in exactly
// one hop bucket, nothing unaccounted.

import (
	"testing"

	"paradice"
	"paradice/internal/driver/drm"
	"paradice/internal/kernel"
	"paradice/internal/sim"
	"paradice/internal/trace"
)

// armedNoop is tracedNoop with the flight recorder armed on the tracer
// before any request runs.
func armedNoop(t *testing.T, mode paradice.Mode, iters int) (*trace.Tracer, *trace.FlightRecorder) {
	t.Helper()
	m, gk := guestKernel(t, paradice.Config{Mode: mode}, paradice.PathGPU)
	tr := m.StartTrace()
	t.Cleanup(func() { m.StopTrace() })
	fr := tr.ArmFlightRecorder(trace.FlightConfig{})
	p, err := gk.NewProcess("noop")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	p.SpawnTask("loop", func(tk *kernel.Task) {
		fd, err := tk.Open(paradice.PathGPU, 2)
		if err != nil {
			done <- err
			return
		}
		arg, err := p.Alloc(32)
		if err != nil {
			done <- err
			return
		}
		for i := 0; i < iters; i++ {
			if _, err := tk.Ioctl(fd, drm.IoctlInfo, arg); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	})
	m.Run()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	return tr, fr
}

// TestFlightArmedGoldenUnperturbed runs the §6.1.1 no-op with the flight
// recorder armed and demands the dormant-path latency goldens exactly:
// recording digests reads the virtual clock, it never advances it.
func TestFlightArmedGoldenUnperturbed(t *testing.T) {
	for _, c := range []struct {
		name string
		mode paradice.Mode
		want sim.Duration
	}{
		{"interrupts", paradice.Interrupts, noopGoldenInterrupts},
		{"polling", paradice.Polling, noopGoldenPolling},
	} {
		t.Run(c.name, func(t *testing.T) {
			tr, fr := armedNoop(t, c.mode, 4)
			root := lastIoctlRoot(t, tr)
			if root.Dur() != c.want {
				t.Fatalf("armed no-op latency %v != golden %v: arming the flight recorder perturbed the simulation\n%s",
					root.Dur(), c.want, dumpRID(tr, root.RID))
			}
			if fr.Total() == 0 {
				t.Fatal("flight recorder armed but captured no digests")
			}
		})
	}
}

// TestFlightDigestTilesEndToEnd checks, for every digest the armed no-op run
// captured, that the hop durations sum exactly to the digest's end-to-end
// latency — and that the last ioctl's digest agrees with its root trace
// group in both identity and duration.
func TestFlightDigestTilesEndToEnd(t *testing.T) {
	for _, mode := range []paradice.Mode{paradice.Interrupts, paradice.Polling} {
		tr, fr := armedNoop(t, mode, 4)
		root := lastIoctlRoot(t, tr)
		foundRoot := false
		for _, d := range fr.Digests() {
			var sum sim.Duration
			for h := trace.Hop(0); h < trace.HopCount; h++ {
				sum += d.Hops[h]
			}
			if sum != d.Latency() {
				t.Fatalf("mode %v rid %d: hops sum %v != end-to-end %v (digest %+v)",
					mode, d.RID, sum, d.Latency(), d)
			}
			if d.RID == root.RID {
				foundRoot = true
				if d.Latency() != root.Dur() {
					t.Fatalf("mode %v rid %d: digest latency %v != root group duration %v",
						mode, d.RID, d.Latency(), root.Dur())
				}
			}
		}
		if !foundRoot {
			t.Fatalf("mode %v: no digest for the last ioctl (rid %d)", mode, root.RID)
		}
	}
}
