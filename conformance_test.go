package paradice_test

// Conformance between the ioctl analyzer and the real driver: the memory
// operations a driver's Go handler actually performs must always be covered
// by grants derived from the analyzer's output. The hypervisor enforces
// coverage at runtime (anything uncovered is denied and surfaces as EFAULT),
// so randomized successful ioctls through a Paradice guest ARE the proof:
// every nested copy the CS handler performed was declared by the frontend's
// just-in-time slice execution before the handler ran.

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"paradice"
	"paradice/internal/driver/drm"
	"paradice/internal/kernel"
	"paradice/internal/mem"
)

func TestPropertyAnalyzerGrantsCoverDriverOps(t *testing.T) {
	m, gk := guestKernel(t, paradice.Config{}, paradice.PathGPU)
	p, err := gk.NewProcess("fuzzer")
	if err != nil {
		t.Fatal(err)
	}

	type shape struct {
		NChunks   uint8
		SizesDW   [4]uint8 // per-chunk command-stream length seeds
		HdrOffset uint8    // scatter the header around user memory
	}

	results := make(chan bool, 1)
	p.SpawnTask("fuzz", func(tk *kernel.Task) {
		fd, err := tk.Open(paradice.PathGPU, 2)
		if err != nil {
			t.Error(err)
			results <- false
			return
		}
		// One valid BO so the command streams can reference handle 1.
		carg, _ := p.Alloc(16)
		cbuf := make([]byte, 16)
		binary.LittleEndian.PutUint64(cbuf, mem.PageSize)
		_ = p.Mem.Write(carg, cbuf)
		if _, err := tk.Ioctl(fd, drm.IoctlGemCreate, carg); err != nil {
			t.Error(err)
			results <- false
			return
		}

		f := func(s shape) bool {
			n := int(s.NChunks % 4) // 0..3 chunks
			// Build each chunk's IB: a run of NOPs (valid commands).
			var descs []byte
			for i := 0; i < n; i++ {
				words := 1 + int(s.SizesDW[i]%32)
				ib := make([]byte, words*4) // zeros = OpNop words
				ibVA, err := p.AllocBytes(ib)
				if err != nil {
					return false
				}
				d := make([]byte, 16)
				binary.LittleEndian.PutUint64(d[0:], uint64(ibVA))
				binary.LittleEndian.PutUint32(d[8:], uint32(words))
				binary.LittleEndian.PutUint32(d[12:], drm.ChunkIB)
				descs = append(descs, d...)
			}
			var descVA mem.GuestVirt
			if n > 0 {
				var err error
				descVA, err = p.AllocBytes(descs)
				if err != nil {
					return false
				}
			}
			hdr := make([]byte, 16)
			binary.LittleEndian.PutUint32(hdr[0:], uint32(n))
			binary.LittleEndian.PutUint64(hdr[8:], uint64(descVA))
			// Place the header at an unaligned offset to vary page spans.
			pad := make([]byte, int(s.HdrOffset)+16)
			copy(pad[int(s.HdrOffset):], hdr)
			padVA, err := p.AllocBytes(pad)
			if err != nil {
				return false
			}
			// If any memory operation the driver performs were not covered
			// by the frontend's grants, the hypervisor would deny it and
			// the ioctl would fail with EFAULT.
			_, err = tk.Ioctl(fd, drm.IoctlCS, padVA+mem.GuestVirt(s.HdrOffset))
			return err == nil
		}
		err = quick.Check(f, &quick.Config{MaxCount: 40})
		if err != nil {
			t.Error(err)
		}
		results <- err == nil
	})
	m.Run()
	if ok := <-results; !ok {
		t.Fatal("analyzer-derived grants failed to cover the driver's memory operations")
	}
}

// The same property for the macro-derived grants of plain commands, across
// random payload placements.
func TestPropertyMacroGrantsCoverSimpleIoctls(t *testing.T) {
	m, gk := guestKernel(t, paradice.Config{}, paradice.PathGPU)
	p, err := gk.NewProcess("fuzzer")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan bool, 1)
	p.SpawnTask("fuzz", func(tk *kernel.Task) {
		fd, err := tk.Open(paradice.PathGPU, 2)
		if err != nil {
			t.Error(err)
			done <- false
			return
		}
		f := func(offset uint16) bool {
			// The Info ioctl copies 32 bytes out at an arbitrary user
			// address; its grant comes straight from the command number.
			buf := make([]byte, int(offset%3000)+64)
			va, err := p.AllocBytes(buf)
			if err != nil {
				return false
			}
			arg := va + mem.GuestVirt(offset%3000)
			if _, err := tk.Ioctl(fd, drm.IoctlInfo, arg); err != nil {
				return false
			}
			out := make([]byte, 4)
			if err := p.Mem.Read(arg, out); err != nil {
				return false
			}
			return binary.LittleEndian.Uint32(out) == drm.VendorATI
		}
		err = quick.Check(f, &quick.Config{MaxCount: 30})
		if err != nil {
			t.Error(err)
		}
		done <- err == nil
	})
	m.Run()
	if ok := <-done; !ok {
		t.Fatal("macro-derived grants failed")
	}
}
