package paradice

import (
	"paradice/internal/sim"
	"paradice/internal/supervise"
)

// This file adapts a Machine to internal/supervise: the watchdog sees every
// guest's CVD channels through the Channel interface and heals through
// RestartDriverVM. The adapter resolves guests, frontends, and backends
// lazily so channels added after machine construction (AddGuest +
// Paravirtualize) and backends replaced by restarts are always the current
// ones.

// Supervisor returns the driver-VM supervisor (shard 0's on a sharded
// machine), or nil when Config.Supervision is off.
func (m *Machine) Supervisor() *supervise.Supervisor { return m.supervisor }

// Supervisors returns the per-shard supervisors (length 1 unless
// Config.DriverShards asked for more), or nil when Config.Supervision is
// off.
func (m *Machine) Supervisors() []*supervise.Supervisor { return m.supervisors }

// shardTarget adapts one driver-VM shard to supervise.Target: the shard's
// supervisor sweeps only the channels its shard serves and heals by
// restarting only its shard. With a single shard this is the whole machine —
// the seed's machineTarget behavior exactly.
type shardTarget struct {
	m   *Machine
	idx int
}

func (t shardTarget) Channels() []supervise.Channel {
	var chs []supervise.Channel
	for _, g := range t.m.guests {
		// Sorted paths: the sweep order (and with it every fault-plan
		// consultation) must be deterministic, not Go map iteration order.
		for _, path := range g.sortedPaths() {
			if t.m.placement.Route(path) == t.idx {
				chs = append(chs, machineChannel{g: g, path: path})
			}
		}
	}
	return chs
}

func (t shardTarget) Restart() error { return t.m.RestartDriverShard(t.idx) }

// machineChannel is one guest × device-file CVD connection. The identity is
// the (guest, path) pair — stable across driver VM restarts even though the
// backend object is replaced.
type machineChannel struct {
	g    *Guest
	path string
}

func (c machineChannel) ID() string { return c.g.K.Name + ":" + c.path }

func (c machineChannel) Heartbeat(p *sim.Proc, timeout sim.Duration) bool {
	fe := c.g.Frontends[c.path]
	if fe == nil {
		return false
	}
	return fe.Heartbeat(p, timeout)
}

func (c machineChannel) Alive() bool {
	be := c.g.Backends[c.path]
	return be != nil && be.Alive()
}

func (c machineChannel) OnDeath(fn func()) {
	if be := c.g.Backends[c.path]; be != nil {
		be.OnDeath(fn)
	}
}

func (c machineChannel) SetDegraded(on bool) {
	if fe := c.g.Frontends[c.path]; fe != nil {
		fe.SetDegraded(on)
	}
}
