package paradice_test

// Table 1 paravirtualizes GPUs "of various makes and models" behind the
// same device file boundary; these tests run the same guest application
// against each modeled card.

import (
	"testing"

	"paradice"
	"paradice/internal/workload"
)

func TestAllGPUModelsServeTheSameGuestCode(t *testing.T) {
	for _, model := range []string{"hd6450", "hd4650", "x1300", "gm965"} {
		m, err := paradice.New(paradice.Config{GPUModel: model})
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		g, err := m.AddGuest("guest", paradice.Linux)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Paravirtualize(paradice.PathGPU); err != nil {
			t.Fatal(err)
		}
		res, err := workload.RunMatmul(m.Env, g.K, 24, 5)
		if err != nil || !res.Correct {
			t.Fatalf("%s: matmul %+v %v", model, res, err)
		}
		// The guest's device info module reports the right identity.
		vendor, _ := g.K.SysInfo("pci0/gpu/vendor")
		if model == "gm965" && vendor != "0x8086" {
			t.Fatalf("gm965 vendor = %s", vendor)
		}
		if model != "gm965" && vendor != "0x1002" {
			t.Fatalf("%s vendor = %s", model, vendor)
		}
	}
}

func TestDataIsolationRequiresEvergreen(t *testing.T) {
	// The HD 4650 predates the Evergreen memory-controller bound registers
	// (§5.3): building a DI machine on it must fail.
	if _, err := paradice.New(paradice.Config{GPUModel: "hd4650", DataIsolation: true}); err == nil {
		t.Fatal("data isolation enabled on a pre-Evergreen card")
	}
	if _, err := paradice.New(paradice.Config{GPUModel: "hd6450", DataIsolation: true}); err != nil {
		t.Fatalf("Evergreen DI machine failed: %v", err)
	}
}

func TestUnknownGPUModelRejected(t *testing.T) {
	if _, err := paradice.New(paradice.Config{GPUModel: "voodoo2"}); err == nil {
		t.Fatal("unknown GPU model accepted")
	}
}

func TestModelVRAMSizing(t *testing.T) {
	m, err := paradice.New(paradice.Config{GPUModel: "x1300"})
	if err != nil {
		t.Fatal(err)
	}
	if m.GPU.VRAMSize() != 256<<20 {
		t.Fatalf("x1300 VRAM = %d", m.GPU.VRAMSize())
	}
}
