package paradice

import (
	"fmt"

	"paradice/internal/cvd"
)

// RestartDriverVM implements the recovery path §8 sketches for a device
// broken by a malicious guest ("detect the broken device and restart it by
// simply restarting the driver VM"): the old driver VM is abandoned, every
// device gets a function-level reset, a fresh driver VM boots with fresh
// drivers, and each guest's CVD frontends are reconnected to new backends.
//
// Consequences for guests, as on the real system: operations in flight when
// the driver VM died fail with EREMOTE, and file descriptors opened before
// the restart are invalid — applications reopen the device and continue.
//
// Restart with device data isolation enabled is not supported (the
// hypervisor's protected-region state would need to be migrated to the new
// driver VM's EPT; the paper leaves recovery as future work altogether).
func (m *Machine) RestartDriverVM() error {
	if m.Kind != KindParadice {
		return fmt.Errorf("paradice: only a Paradice machine has a driver VM to restart")
	}
	if m.cfg.DataIsolation {
		return fmt.Errorf("paradice: driver VM restart with data isolation is not supported")
	}
	// Tear down: stop every backend dispatcher, reset every device.
	for _, g := range m.guests {
		for _, be := range g.Backends {
			be.Stop()
		}
	}
	m.GPU.Reset()
	m.NIC.Reset()
	m.Camera.Reset()
	m.Audio.Reset()
	m.Mouse.Reset()
	m.Keyboard.Reset()

	// Boot a fresh driver VM with fresh drivers.
	if err := m.bootDriverVM(); err != nil {
		return err
	}

	// Reconnect every guest's frontends to backends in the new driver VM.
	for _, g := range m.guests {
		for path, fe := range g.Frontends {
			be, err := cvd.Reconnect(fe, m.HV, m.DriverVM, m.DriverK, path)
			if err != nil {
				return err
			}
			g.Backends[path] = be
			if path == PathMouse {
				g.wireInputGate()
			}
		}
	}
	return nil
}
