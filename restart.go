package paradice

import (
	"errors"
	"fmt"
	"sort"

	"paradice/internal/cvd"
	"paradice/internal/faults"
	"paradice/internal/perf"
)

// Sentinel errors for driver-VM lifecycle failures (restart and handover).
// Callers match with errors.Is; the formatted returns below wrap these with
// the same messages the string-only errors used to carry.
var (
	// ErrNoDriverVM: the machine is a baseline (native / device-assign) and
	// has no driver VM to restart or hand over.
	ErrNoDriverVM = errors.New("paradice: only a Paradice machine has a driver VM to restart")
	// ErrDataIsolationRestart: restart/handover with device data isolation
	// enabled is not supported (the hypervisor's protected-region state would
	// need migrating to the new driver VM's EPT).
	ErrDataIsolationRestart = errors.New("paradice: driver VM restart with data isolation is not supported")
	// ErrRestartInProgress: another restart or handover holds the machine's
	// lifecycle lock.
	ErrRestartInProgress = errors.New("paradice: driver VM restart already in progress")
	// ErrRestartFailed: the replacement driver VM failed to come up (includes
	// the injected "machine.restart.fail" fault). The machine is untouched.
	ErrRestartFailed = errors.New("paradice: driver VM restart failed")
)

// RestartDriverVM implements the recovery path §8 sketches for a device
// broken by a malicious guest ("detect the broken device and restart it by
// simply restarting the driver VM"): the old driver VM is abandoned, every
// device gets a function-level reset, a fresh driver VM boots with fresh
// drivers, and each guest's CVD frontends are reconnected to new backends.
// With Config.Supervision enabled the supervisor invokes this automatically;
// it remains callable as the manual operator action.
//
// Consequences for guests, as on the real system: operations in flight when
// the driver VM died fail with EREMOTE, and file descriptors opened before
// the restart are invalid — applications reopen the device and continue
// (internal/usrlib's WithReopen packages that retry loop). The reboot costs
// perf.CostDriverVMRestart of virtual time when called from simulation
// process context (the supervisor's watchdog), so recovery latency is a
// measured quantity; from host context (a test calling it directly) the
// clock does not move, as before.
//
// The restart epoch guards against concurrent invocation: the reboot yields
// the simulated CPU while it "boots", and a second caller arriving in that
// window — a second supervisor, a test, an over-eager operator — gets a
// clean error instead of a half-torn-down machine.
//
// Restart with device data isolation enabled is not supported (the
// hypervisor's protected-region state would need to be migrated to the new
// driver VM's EPT; the paper leaves recovery as future work altogether).
func (m *Machine) RestartDriverVM() error {
	if err := m.lifecycleGuards(); err != nil {
		return err
	}
	if d := faults.Point(m.Env, "machine.restart.fail"); d != nil {
		// Injected restart-time failure: the replacement driver VM fails to
		// boot (bad image, exhausted host memory, ...). The machine is left
		// exactly as it was; the supervisor counts the attempt against its
		// backoff budget and tries again.
		return fmt.Errorf("%w: %v", ErrRestartFailed, d.Error())
	}
	m.restarting = true
	defer func() { m.restarting = false }()

	// Tear down: stop every backend dispatcher, reset every device.
	for _, g := range m.guests {
		for _, be := range g.Backends {
			be.Stop()
		}
	}
	m.resetDevices()

	// The restart invalidates every cached translation wholesale: the
	// software TLBs and the grant-validation caches restart cold, like the
	// grant-map caches the backend Stop calls above already dropped. A
	// post-restart operation must prove its translations afresh.
	m.HV.FlushTranslationCaches()

	// The reboot takes real (virtual) time when driven from a simulation
	// process. Guests keep running meanwhile; their operations fail fast
	// with EREMOTE at the frontend because every backend is stopped.
	perf.Charge(m.Env, perf.CostDriverVMRestart)

	// Boot a fresh driver VM with fresh drivers.
	if err := m.bootDriverVM(); err != nil {
		return err
	}

	// Reconnect every guest's frontends to backends in the new driver VM, in
	// sorted path order so the per-channel reconnect charges land in a
	// deterministic order run to run.
	for _, g := range m.guests {
		for _, path := range g.sortedPaths() {
			fe := g.Frontends[path]
			be, err := cvd.Reconnect(fe, m.HV, m.DriverVM, m.DriverK, path)
			if err != nil {
				return err
			}
			g.Backends[path] = be
			// A successful restart un-degrades the device: the fresh driver
			// VM serves it again even if a supervisor had given up on it.
			fe.SetDegraded(false)
			// Re-apply per-channel policy hooks that lived on the old
			// backend: the §5.1 foreground gate on every gated input
			// device, not just the mouse.
			if isGatedInputPath(path) {
				g.wireInputGate(path)
			}
		}
	}
	m.restartEpoch++
	return nil
}

// lifecycleGuards rejects a restart or handover the machine cannot perform:
// no driver VM, data isolation armed, or another lifecycle operation already
// holding the lock.
func (m *Machine) lifecycleGuards() error {
	if m.Kind != KindParadice {
		return ErrNoDriverVM
	}
	if m.cfg.DataIsolation {
		return ErrDataIsolationRestart
	}
	if m.restarting {
		return fmt.Errorf("%w (epoch %d)", ErrRestartInProgress, m.restartEpoch)
	}
	return nil
}

// resetDevices gives every device a function-level reset — the hardware
// survives a driver-VM lifecycle event, its volatile state does not.
func (m *Machine) resetDevices() {
	m.GPU.Reset()
	m.NIC.Reset()
	m.Camera.Reset()
	m.Audio.Reset()
	m.Mouse.Reset()
	m.Keyboard.Reset()
}

// sortedPaths returns the guest's paravirtualized device paths in sorted
// order — every lifecycle loop over a guest's channels walks this, never the
// map, so charges and fault-plan consultations are deterministic.
func (g *Guest) sortedPaths() []string {
	paths := make([]string, 0, len(g.Frontends))
	for path := range g.Frontends {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	return paths
}

// RestartEpoch counts completed driver-VM restarts. Tests use it to assert
// that supervision did (or did not) restart the machine.
func (m *Machine) RestartEpoch() uint64 { return m.restartEpoch }
