package paradice

import (
	"errors"
	"fmt"
	"sort"

	"paradice/internal/cvd"
	"paradice/internal/faults"
	"paradice/internal/perf"
)

// Sentinel errors for driver-VM lifecycle failures (restart and handover).
// Callers match with errors.Is; the formatted returns below wrap these with
// the same messages the string-only errors used to carry.
var (
	// ErrNoDriverVM: the machine is a baseline (native / device-assign) and
	// has no driver VM to restart or hand over.
	ErrNoDriverVM = errors.New("paradice: only a Paradice machine has a driver VM to restart")
	// ErrDataIsolationRestart: restart/handover with device data isolation
	// enabled is not supported (the hypervisor's protected-region state would
	// need migrating to the new driver VM's EPT).
	ErrDataIsolationRestart = errors.New("paradice: driver VM restart with data isolation is not supported")
	// ErrRestartInProgress: another restart or handover holds the machine's
	// lifecycle lock.
	ErrRestartInProgress = errors.New("paradice: driver VM restart already in progress")
	// ErrRestartFailed: the replacement driver VM failed to come up (includes
	// the injected "machine.restart.fail" fault). The machine is untouched.
	ErrRestartFailed = errors.New("paradice: driver VM restart failed")
)

// RestartDriverVM implements the recovery path §8 sketches for a device
// broken by a malicious guest ("detect the broken device and restart it by
// simply restarting the driver VM"): the old driver VM is abandoned, every
// device gets a function-level reset, a fresh driver VM boots with fresh
// drivers, and each guest's CVD frontends are reconnected to new backends.
// With Config.Supervision enabled the supervisor invokes this automatically;
// it remains callable as the manual operator action.
//
// Consequences for guests, as on the real system: operations in flight when
// the driver VM died fail with EREMOTE, and file descriptors opened before
// the restart are invalid — applications reopen the device and continue
// (internal/usrlib's WithReopen packages that retry loop). The reboot costs
// perf.CostDriverVMRestart of virtual time when called from simulation
// process context (the supervisor's watchdog), so recovery latency is a
// measured quantity; from host context (a test calling it directly) the
// clock does not move, as before.
//
// The restart epoch guards against concurrent invocation: the reboot yields
// the simulated CPU while it "boots", and a second caller arriving in that
// window — a second supervisor, a test, an over-eager operator — gets a
// clean error instead of a half-torn-down machine.
//
// Restart with device data isolation enabled is not supported (the
// hypervisor's protected-region state would need to be migrated to the new
// driver VM's EPT; the paper leaves recovery as future work altogether).
func (m *Machine) RestartDriverVM() error {
	if err := m.lifecycleGuards(); err != nil {
		return err
	}
	if d := faults.Point(m.Env, "machine.restart.fail"); d != nil {
		// Injected restart-time failure: the replacement driver VM fails to
		// boot (bad image, exhausted host memory, ...). The machine is left
		// exactly as it was; the supervisor counts the attempt against its
		// backoff budget and tries again.
		return fmt.Errorf("%w: %v", ErrRestartFailed, d.Error())
	}
	m.restarting = true
	defer func() { m.restarting = false }()
	for i := range m.shards {
		if err := m.restartShard(i); err != nil {
			return err
		}
	}
	return nil
}

// RestartDriverShard restarts one driver-VM shard, leaving the other shards
// — and every guest channel they serve — undisturbed. On a single-shard
// machine RestartDriverShard(0) is RestartDriverVM. Each shard's supervisor
// heals through this, so a crash in shard 2's backends costs only shard 2's
// devices their availability window.
func (m *Machine) RestartDriverShard(i int) error {
	if err := m.lifecycleGuards(); err != nil {
		return err
	}
	if i < 0 || i >= len(m.shards) {
		return fmt.Errorf("paradice: shard %d out of range (machine has %d)", i, len(m.shards))
	}
	if d := faults.Point(m.Env, "machine.restart.fail"); d != nil {
		return fmt.Errorf("%w: %v", ErrRestartFailed, d.Error())
	}
	m.restarting = true
	defer func() { m.restarting = false }()
	return m.restartShard(i)
}

// restartShard is the restart sequence for one shard, with the lifecycle
// lock already held.
func (m *Machine) restartShard(i int) error {
	sh := m.shards[i]

	// Tear down: stop the shard's backend dispatchers, then its worker pool,
	// then reset its devices. Sorted path order, not the map: each Stop
	// drops that backend's map cache, charging CostMapPage per cached page
	// in this proc's context, so the instant each later backend's stopped
	// flag latches — and therefore which racing in-flight operations
	// fast-fail — depends on the order.
	for _, g := range m.guests {
		for _, path := range g.sortedPaths() {
			if m.placement.Route(path) == i {
				g.Backends[path].Stop()
			}
		}
	}
	if sh.Pool != nil {
		sh.Pool.Stop()
	}
	m.resetShardDevices(i)

	// The restart invalidates every cached translation wholesale: the
	// software TLBs and the grant-validation caches restart cold, like the
	// grant-map caches the backend Stop calls above already dropped. A
	// post-restart operation must prove its translations afresh.
	m.HV.FlushTranslationCaches()

	// The reboot takes real (virtual) time when driven from a simulation
	// process. Guests keep running meanwhile; their operations fail fast
	// with EREMOTE at the frontend because every backend is stopped.
	perf.Charge(m.Env, perf.CostDriverVMRestart)

	// Boot a fresh driver VM with fresh drivers (and a fresh worker pool).
	if err := m.bootShard(i); err != nil {
		return err
	}

	// Reconnect the shard's frontends to backends in the new driver VM, in
	// sorted path order so the per-channel reconnect charges land in a
	// deterministic order run to run.
	for _, g := range m.guests {
		for _, path := range g.sortedPaths() {
			if m.placement.Route(path) != i {
				continue
			}
			fe := g.Frontends[path]
			be, err := cvd.Reconnect(fe, m.HV, sh.VM, sh.K, path)
			if err != nil {
				return err
			}
			if sh.Pool != nil {
				sh.Pool.Join(be)
			}
			g.Backends[path] = be
			// A successful restart un-degrades the device: the fresh driver
			// VM serves it again even if a supervisor had given up on it.
			fe.SetDegraded(false)
			// Re-apply per-channel policy hooks that lived on the old
			// backend: the §5.1 foreground gate on every gated input
			// device, not just the mouse.
			if isGatedInputPath(path) {
				g.wireInputGate(path)
			}
		}
	}
	m.restartEpoch++
	return nil
}

// lifecycleGuards rejects a restart or handover the machine cannot perform:
// no driver VM, data isolation armed, or another lifecycle operation already
// holding the lock.
func (m *Machine) lifecycleGuards() error {
	if m.Kind != KindParadice {
		return ErrNoDriverVM
	}
	if m.cfg.DataIsolation {
		return ErrDataIsolationRestart
	}
	if m.restarting {
		return fmt.Errorf("%w (epoch %d)", ErrRestartInProgress, m.restartEpoch)
	}
	return nil
}

// resetShardDevices gives the shard's devices a function-level reset — the
// hardware survives a driver-VM lifecycle event, its volatile state does
// not. Devices owned by other shards keep running. Canonical device order
// (matching the attach sequence), so reset charges are deterministic.
func (m *Machine) resetShardDevices(shard int) {
	if m.placement.Route(PathGPU) == shard {
		m.GPU.Reset()
	}
	if m.placement.Route(PathNetmap) == shard {
		m.NIC.Reset()
	}
	if m.placement.Route(PathCamera) == shard {
		m.Camera.Reset()
	}
	if m.placement.Route(PathAudio) == shard {
		m.Audio.Reset()
	}
	if m.placement.Route(PathMouse) == shard {
		m.Mouse.Reset()
	}
	if m.placement.Route(PathKeyboard) == shard {
		m.Keyboard.Reset()
	}
}

// sortedPaths returns the guest's paravirtualized device paths in sorted
// order — every lifecycle loop over a guest's channels walks this, never the
// map, so charges and fault-plan consultations are deterministic.
func (g *Guest) sortedPaths() []string {
	paths := make([]string, 0, len(g.Frontends))
	for path := range g.Frontends {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	return paths
}

// RestartEpoch counts completed driver-VM restarts. Tests use it to assert
// that supervision did (or did not) restart the machine.
func (m *Machine) RestartEpoch() uint64 { return m.restartEpoch }
