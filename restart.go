package paradice

import (
	"fmt"

	"paradice/internal/cvd"
	"paradice/internal/faults"
	"paradice/internal/perf"
)

// RestartDriverVM implements the recovery path §8 sketches for a device
// broken by a malicious guest ("detect the broken device and restart it by
// simply restarting the driver VM"): the old driver VM is abandoned, every
// device gets a function-level reset, a fresh driver VM boots with fresh
// drivers, and each guest's CVD frontends are reconnected to new backends.
// With Config.Supervision enabled the supervisor invokes this automatically;
// it remains callable as the manual operator action.
//
// Consequences for guests, as on the real system: operations in flight when
// the driver VM died fail with EREMOTE, and file descriptors opened before
// the restart are invalid — applications reopen the device and continue
// (internal/usrlib's WithReopen packages that retry loop). The reboot costs
// perf.CostDriverVMRestart of virtual time when called from simulation
// process context (the supervisor's watchdog), so recovery latency is a
// measured quantity; from host context (a test calling it directly) the
// clock does not move, as before.
//
// The restart epoch guards against concurrent invocation: the reboot yields
// the simulated CPU while it "boots", and a second caller arriving in that
// window — a second supervisor, a test, an over-eager operator — gets a
// clean error instead of a half-torn-down machine.
//
// Restart with device data isolation enabled is not supported (the
// hypervisor's protected-region state would need to be migrated to the new
// driver VM's EPT; the paper leaves recovery as future work altogether).
func (m *Machine) RestartDriverVM() error {
	if m.Kind != KindParadice {
		return fmt.Errorf("paradice: only a Paradice machine has a driver VM to restart")
	}
	if m.cfg.DataIsolation {
		return fmt.Errorf("paradice: driver VM restart with data isolation is not supported")
	}
	if m.restarting {
		return fmt.Errorf("paradice: driver VM restart already in progress (epoch %d)", m.restartEpoch)
	}
	if d := faults.Point(m.Env, "machine.restart.fail"); d != nil {
		// Injected restart-time failure: the replacement driver VM fails to
		// boot (bad image, exhausted host memory, ...). The machine is left
		// exactly as it was; the supervisor counts the attempt against its
		// backoff budget and tries again.
		return fmt.Errorf("paradice: driver VM restart failed: %v", d.Error())
	}
	m.restarting = true
	defer func() { m.restarting = false }()

	// Tear down: stop every backend dispatcher, reset every device.
	for _, g := range m.guests {
		for _, be := range g.Backends {
			be.Stop()
		}
	}
	m.GPU.Reset()
	m.NIC.Reset()
	m.Camera.Reset()
	m.Audio.Reset()
	m.Mouse.Reset()
	m.Keyboard.Reset()

	// The restart invalidates every cached translation wholesale: the
	// software TLBs and the grant-validation caches restart cold, like the
	// grant-map caches the backend Stop calls above already dropped. A
	// post-restart operation must prove its translations afresh.
	m.HV.FlushTranslationCaches()

	// The reboot takes real (virtual) time when driven from a simulation
	// process. Guests keep running meanwhile; their operations fail fast
	// with EREMOTE at the frontend because every backend is stopped.
	perf.Charge(m.Env, perf.CostDriverVMRestart)

	// Boot a fresh driver VM with fresh drivers.
	if err := m.bootDriverVM(); err != nil {
		return err
	}

	// Reconnect every guest's frontends to backends in the new driver VM.
	for _, g := range m.guests {
		for path, fe := range g.Frontends {
			be, err := cvd.Reconnect(fe, m.HV, m.DriverVM, m.DriverK, path)
			if err != nil {
				return err
			}
			g.Backends[path] = be
			// A successful restart un-degrades the device: the fresh driver
			// VM serves it again even if a supervisor had given up on it.
			fe.SetDegraded(false)
			// Re-apply per-channel policy hooks that lived on the old
			// backend: the §5.1 foreground gate on every gated input
			// device, not just the mouse.
			if isGatedInputPath(path) {
				g.wireInputGate(path)
			}
		}
	}
	m.restartEpoch++
	return nil
}

// RestartEpoch counts completed driver-VM restarts. Tests use it to assert
// that supervision did (or did not) restart the machine.
func (m *Machine) RestartEpoch() uint64 { return m.restartEpoch }
