package paradice_test

// The §8 recovery scenario: a malicious guest wedges the GPU by scribbling
// on a device control register (through the compromised driver VM), the
// operator restarts the driver VM, and other guests resume service.

import (
	"testing"

	"paradice"
	"paradice/internal/devfile"
	"paradice/internal/driver/drm"
	"paradice/internal/kernel"
	"paradice/internal/sim"
	"paradice/internal/workload"
)

func drmGemCreate() devfile.IoctlCmd { return drm.IoctlGemCreate }
func drmCS() devfile.IoctlCmd        { return drm.IoctlCS }
func drmWaitFence() devfile.IoctlCmd { return drm.IoctlWaitFence }

func TestDriverVMRestartRecoversWedgedGPU(t *testing.T) {
	m, err := paradice.New(paradice.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := m.AddGuest("guest", paradice.Linux)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Paravirtualize(paradice.PathGPU); err != nil {
		t.Fatal(err)
	}

	// Sanity: the GPU works.
	res, err := workload.RunMatmul(m.Env, g.K, 24, 1)
	if err != nil || !res.Correct {
		t.Fatalf("pre-wedge matmul: %+v %v", res, err)
	}

	// The attack: a compromised driver VM writes garbage into a device
	// control register; the command processor wedges.
	m.GPU.WriteControlReg(0xDEADBEEF)
	if !m.GPU.Broken() {
		t.Fatal("register scribble did not break the device")
	}

	// A guest operation now hangs on a fence that never signals; bound the
	// run and observe the wedge.
	var wedgedErr error
	done := false
	p, _ := g.K.NewProcess("victim")
	p.SpawnTask("main", func(tk *kernel.Task) {
		_, wedgedErr = runTinyDraw(tk)
		done = true
	})
	m.RunUntil(m.Env.Now().Add(50 * sim.Millisecond))
	if done && wedgedErr == nil {
		t.Fatal("draw completed on a wedged GPU")
	}

	// Recovery: restart the driver VM.
	if err := m.RestartDriverVM(); err != nil {
		t.Fatal(err)
	}
	if m.GPU.Broken() {
		t.Fatal("device still broken after restart")
	}
	// The stuck operation fails with EREMOTE rather than hanging forever.
	m.RunUntil(m.Env.Now().Add(10 * sim.Millisecond))
	if !done {
		t.Fatal("in-flight operation still stuck after restart")
	}
	if !kernel.IsErrno(wedgedErr, kernel.EREMOTE) {
		t.Fatalf("in-flight operation failed with %v, want EREMOTE", wedgedErr)
	}

	// Old guest file descriptors are stale; a fresh open works and the GPU
	// computes again.
	res, err = workload.RunMatmul(m.Env, g.K, 24, 2)
	if err != nil || !res.Correct {
		t.Fatalf("post-restart matmul: %+v %v", res, err)
	}
}

// runTinyDraw opens the device and submits one draw, returning its error.
func runTinyDraw(tk *kernel.Task) (int32, error) {
	fd, err := tk.Open(paradice.PathGPU, 2)
	if err != nil {
		return 0, err
	}
	// GEM create.
	p := tk.Proc
	arg, _ := p.Alloc(16)
	carg := make([]byte, 16)
	carg[0] = 0x00
	carg[1] = 0x10 // size = 4096
	if err := p.Mem.Write(arg, carg); err != nil {
		return 0, err
	}
	if _, err := tk.Ioctl(fd, drmGemCreate(), arg); err != nil {
		return 0, err
	}
	out := make([]byte, 4)
	_ = p.Mem.Read(arg, out)
	handle := uint32(out[0]) | uint32(out[1])<<8
	// CS with one draw, then wait the fence (this is what wedges).
	ib := []uint32{1 /*OpDraw*/, handle, 0, 1000, 0}
	ibb := make([]byte, len(ib)*4)
	for i, w := range ib {
		ibb[i*4] = byte(w)
		ibb[i*4+1] = byte(w >> 8)
		ibb[i*4+2] = byte(w >> 16)
		ibb[i*4+3] = byte(w >> 24)
	}
	ibVA, _ := p.AllocBytes(ibb)
	desc := make([]byte, 16)
	putU64(desc[0:], uint64(ibVA))
	putU32(desc[8:], uint32(len(ib)))
	putU32(desc[12:], 1)
	descVA, _ := p.AllocBytes(desc)
	hdr := make([]byte, 16)
	putU32(hdr[0:], 1)
	putU64(hdr[8:], uint64(descVA))
	hdrVA, _ := p.AllocBytes(hdr)
	fence, err := tk.Ioctl(fd, drmCS(), hdrVA)
	if err != nil {
		return fence, err
	}
	warg := make([]byte, 8)
	putU32(warg, uint32(fence))
	wVA, _ := p.AllocBytes(warg)
	return tk.Ioctl(fd, drmWaitFence(), wVA)
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func putU64(b []byte, v uint64) {
	putU32(b, uint32(v))
	putU32(b[4:], uint32(v>>32))
}
