module paradice

go 1.22
