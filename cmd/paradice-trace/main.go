// Command paradice-trace runs an instrumented Paradice machine and exports
// the cross-layer request trace: a Chrome trace_event JSON file (load it in
// Perfetto or chrome://tracing — one "process" per VM, one "thread" per
// architectural layer) plus a plain-text metrics dump. It also prints the
// §6.1.1 latency breakdown of the last forwarded no-op ioctl, hop by hop,
// reconciled against the end-to-end latency.
//
// Usage:
//
//	paradice-trace                          # interrupts, 8 no-ops + matmul
//	paradice-trace -mode polling            # polled transport
//	paradice-trace -out t.json -metrics m.txt
//	paradice-trace -sched                   # include scheduler events
//	paradice-trace -outliers                # arm the flight recorder and
//	                                        # dump digests, per-class
//	                                        # attribution, and exemplar
//	                                        # outlier span trees
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"paradice"
	"paradice/internal/driver/drm"
	"paradice/internal/kernel"
	"paradice/internal/sim"
	"paradice/internal/trace"
	"paradice/internal/workload"
)

func main() {
	modeFlag := flag.String("mode", "interrupts", `CVD transport: "interrupts" or "polling"`)
	out := flag.String("out", "trace.json", "Chrome trace_event output file (empty = skip)")
	metricsOut := flag.String("metrics", "", "metrics dump output file (default stdout)")
	ops := flag.Int("ops", 8, "forwarded no-op ioctls to trace")
	matmul := flag.Int("matmul", 16, "matrix order for the GPU workload (0 = skip)")
	sched := flag.Bool("sched", false, "include scheduler events in the trace")
	outliers := flag.Bool("outliers", false, "arm the flight recorder; dump digests, attribution, and outlier trees")
	outlierThreshold := flag.Duration("outlier-threshold", 20*time.Microsecond, "latency above which a request's full span tree is retained (with -outliers)")
	flag.Parse()

	var mode paradice.Mode
	switch *modeFlag {
	case "interrupts":
		mode = paradice.Interrupts
	case "polling":
		mode = paradice.Polling
	default:
		log.Fatalf("unknown -mode %q (want interrupts or polling)", *modeFlag)
	}

	m, err := paradice.New(paradice.Config{Mode: mode})
	if err != nil {
		log.Fatal(err)
	}
	g, err := m.AddGuest("guest1", paradice.Linux)
	if err != nil {
		log.Fatal(err)
	}
	if err := g.Paravirtualize(paradice.PathGPU); err != nil {
		log.Fatal(err)
	}
	tr := m.StartTrace()
	if *sched {
		tr.EnableSched(m.Env)
	}
	var fr *trace.FlightRecorder
	if *outliers {
		fr = tr.ArmFlightRecorder(trace.FlightConfig{
			Threshold: sim.Duration(*outlierThreshold),
		})
	}

	// The forwarded no-op of §6.1.1: an _IOR('d', 0x05, 32) Info ioctl
	// crossing the full guest -> driver VM path and copying 32 bytes back.
	p, err := g.K.NewProcess("noop")
	if err != nil {
		log.Fatal(err)
	}
	var runErr error
	p.SpawnTask("loop", func(t *kernel.Task) {
		fd, err := t.Open(paradice.PathGPU, 2)
		if err != nil {
			runErr = err
			return
		}
		arg, err := p.Alloc(32)
		if err != nil {
			runErr = err
			return
		}
		for i := 0; i < *ops; i++ {
			if _, err := t.Ioctl(fd, drm.IoctlInfo, arg); err != nil {
				runErr = err
				return
			}
		}
	})
	m.Run()
	if runErr != nil {
		log.Fatal(runErr)
	}

	// The breakdown targets the last no-op, so render it before the matmul
	// workload appends its own (non-no-op) ioctls to the trace.
	printBreakdown(tr, *modeFlag)

	if *matmul > 0 {
		if _, err := workload.RunMatmul(m.Env, g.K, *matmul, 1); err != nil {
			log.Fatal(err)
		}
	}

	// The flight-recorder dump: ring digests (hops tiling each request's
	// end-to-end latency), the per-class critical-path attribution table,
	// and the full span tree of every captured outlier.
	if fr != nil {
		fmt.Println("\n=== flight recorder ===")
		if err := fr.WriteDump(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.WriteChrome(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d trace events to %s\n", len(tr.Events()), *out)
	}

	w := os.Stdout
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	} else {
		fmt.Println("\n=== metrics ===")
	}
	if err := tr.WriteMetrics(w); err != nil {
		log.Fatal(err)
	}
	if *metricsOut != "" {
		fmt.Printf("wrote metrics dump to %s\n", *metricsOut)
	}
}

// printBreakdown renders the last no-op ioctl's latency budget hop by hop —
// the trace-derived equivalent of the paper's §6.1.1 decomposition.
func printBreakdown(tr *trace.Tracer, mode string) {
	var root trace.Event
	found := false
	for _, e := range tr.Events() {
		if e.Kind == trace.KindGroup && e.Layer == trace.LayerSyscall && strings.HasPrefix(e.Name, "ioctl ") {
			root, found = e, true
		}
	}
	if !found {
		fmt.Println("no ioctl recorded")
		return
	}
	fmt.Printf("=== forwarded no-op breakdown (%s, request %d) ===\n", mode, root.RID)
	var sum int64
	for _, e := range tr.Events() {
		if e.Kind != trace.KindSpan || e.RID != root.RID {
			continue
		}
		d := int64(e.Dur())
		sum += d
		fmt.Printf("  %-10s %-8s %-14s %8d ns\n", e.VM, e.Layer, e.Name, d)
	}
	fmt.Printf("  %-10s %-8s %-14s %8d ns (end-to-end %d ns)\n",
		"", "", "total", sum, int64(root.Dur()))
	if sum != int64(root.Dur()) {
		fmt.Println("  WARNING: spans do not reconcile with end-to-end latency")
	}
}
