// Command paradice-demo boots a full Paradice machine and exercises all
// five device classes of Table 1 from guest VMs in one run: GPU rendering
// and GPGPU, netmap packet transmission, mouse input, camera capture, and
// audio playback — then prints a health summary. It is the closest thing to
// "booting the paper" this repository offers.
package main

import (
	"fmt"
	"log"

	"paradice"
	"paradice/internal/device/input"
	"paradice/internal/sim"
	"paradice/internal/workload"
)

func main() {
	m, err := paradice.New(paradice.Config{})
	if err != nil {
		log.Fatal(err)
	}
	linux, err := m.AddGuest("linux-guest", paradice.Linux)
	if err != nil {
		log.Fatal(err)
	}
	if err := linux.Paravirtualize(paradice.PathGPU, paradice.PathMouse,
		paradice.PathCamera, paradice.PathAudio); err != nil {
		log.Fatal(err)
	}
	bsd, err := m.AddGuest("freebsd-guest", paradice.FreeBSD)
	if err != nil {
		log.Fatal(err)
	}
	// The NIC's netmap driver supports one client at a time (§5.1); give it
	// to the FreeBSD guest, demonstrating the cross-OS deployment.
	if err := bsd.Paravirtualize(paradice.PathNetmap, paradice.PathGPU); err != nil {
		log.Fatal(err)
	}

	fmt.Println("paradice-demo: one driver VM, a Linux guest and a FreeBSD guest")
	fmt.Println()

	// GPU: the Linux guest renders, the FreeBSD guest computes.
	gl, err := workload.RunGL(m.Env, linux.K, workload.GLVertexBufferObjects, 30)
	must(err)
	fmt.Printf("  [gpu/gl]     linux guest rendered 30 frames at %.1f FPS\n", gl.FPS)
	mm, err := workload.RunMatmul(m.Env, bsd.K, 64, 7)
	must(err)
	fmt.Printf("  [gpu/cl]     freebsd guest matmul(64) in %v, verified=%v\n", mm.Elapsed, mm.Correct)

	// Netmap from the FreeBSD guest.
	tx, err := workload.RunPktGen(m.Env, bsd.K, 64, 50000, 64)
	must(err)
	fmt.Printf("  [netmap]     freebsd guest transmitted 50k packets at %.3f Mpps "+
		"(NIC checksum %#x)\n", tx.MPPS, m.NIC.Checksum)

	// Mouse into the Linux guest.
	ms, err := workload.RunMouseLatency(m.Env, linux.K, m.Mouse, 50)
	must(err)
	fmt.Printf("  [input]      mouse event-to-read latency %v\n", ms.Avg)

	// Camera into the Linux guest.
	cam, err := workload.RunCamera(m.Env, linux.K, cameraHD(), 30)
	must(err)
	fmt.Printf("  [camera]     %d frames at %.2f FPS, pattern verified=%v\n",
		cam.Frames, cam.FPS, cam.Verified)

	// Audio from the Linux guest.
	au, err := workload.RunAudio(m.Env, linux.K, 0.5)
	must(err)
	fmt.Printf("  [audio]      0.5s clip played in %v (%d PCM frames)\n",
		au.Elapsed, m.Audio.FramesPlayed)

	// A late mouse wiggle proves the machine is still alive.
	m.Mouse.Inject(input.EvRel, 0, 1)
	m.RunUntil(m.Env.Now().Add(sim.Duration(sim.Millisecond)))

	fmt.Println()
	fmt.Printf("  simulated time elapsed: %v\n", m.Env.Now())
	fmt.Printf("  GPU: %d commands, %d faults; NIC: %d packets, %d DMA faults\n",
		m.GPU.Executed, m.GPU.Faults, m.NIC.TxPackets, m.NIC.DMAFaults)
	fmt.Println("all five device classes served through the device file boundary.")
}

func cameraHD() (r struct{ W, H int }) { return struct{ W, H int }{1280, 720} }

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
