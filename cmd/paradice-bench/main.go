// Command paradice-bench regenerates every table and figure of the paper's
// evaluation (§6) from the simulation and prints them as text series,
// paper-value alongside measured where the paper states a number.
//
// Usage:
//
//	paradice-bench                 # run everything at full fidelity
//	paradice-bench -quick          # reduced iteration counts (~seconds)
//	paradice-bench -exp fig2,fig5  # selected experiments
//	paradice-bench -list           # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"paradice/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "reduced iteration counts for a fast pass")
	expFlag := flag.String("exp", "", "comma-separated experiment IDs (default: all)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []bench.Experiment
	if *expFlag == "" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := bench.Find(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	failed := false
	for _, e := range selected {
		fmt.Printf("== %s: %s ==\n", e.ID, e.Title)
		rows, err := e.Run(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "  ERROR: %v\n", err)
			failed = true
			continue
		}
		printRows(rows, e.IsTable)
		fmt.Println()
	}
	if failed {
		os.Exit(1)
	}
}

func printRows(rows []bench.Row, table bool) {
	for _, r := range rows {
		switch {
		case table && r.Paper != 0:
			fmt.Printf("  %-16s %-52s %8.0f %-10s (paper: %.0f)\n", r.Series, r.X, r.Value, r.Unit, r.Paper)
		case table:
			fmt.Printf("  %-16s %-52s %8.0f %s\n", r.Series, r.X, r.Value, r.Unit)
		case r.Paper != 0:
			fmt.Printf("  %-16s %-22s %10.3f %-6s (paper: %.1f)\n", r.Series, r.X, r.Value, r.Unit, r.Paper)
		default:
			fmt.Printf("  %-16s %-22s %10.3f %s\n", r.Series, r.X, r.Value, r.Unit)
		}
	}
}
