// Command paradice-bench regenerates every table and figure of the paper's
// evaluation (§6) from the simulation and prints them as text series,
// paper-value alongside measured where the paper states a number.
//
// Usage:
//
//	paradice-bench                 # run everything at full fidelity
//	paradice-bench -quick          # reduced iteration counts (~seconds)
//	paradice-bench -exp fig2,fig5  # selected experiments
//	paradice-bench -list           # list experiment IDs
//	paradice-bench -json           # machine-readable results on stdout
//	paradice-bench -trace DIR      # per-machine Chrome traces + metrics
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"paradice"
	"paradice/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "reduced iteration counts for a fast pass")
	expFlag := flag.String("exp", "", "comma-separated experiment IDs (default: all)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	jsonOut := flag.Bool("json", false, "emit results as JSON on stdout")
	traceDir := flag.String("trace", "", "directory for per-machine Chrome traces and metrics dumps")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []bench.Experiment
	if *expFlag == "" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := bench.Find(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	// With -trace, every machine an experiment builds gets a tracer; the
	// trace and metrics of machine N of experiment E land in
	// DIR/E-NN.trace.json and DIR/E-NN.metrics.txt after the experiment.
	var traced []*paradice.Machine
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		bench.OnMachine = func(m *paradice.Machine) {
			m.StartTrace()
			traced = append(traced, m)
		}
	}

	type jsonResult struct {
		ID    string      `json:"id"`
		Title string      `json:"title"`
		Rows  []bench.Row `json:"rows,omitempty"`
		Error string      `json:"error,omitempty"`
	}
	var results []jsonResult

	failed := false
	for _, e := range selected {
		if !*jsonOut {
			fmt.Printf("== %s: %s ==\n", e.ID, e.Title)
		}
		rows, err := e.Run(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "  ERROR: %v\n", err)
			results = append(results, jsonResult{ID: e.ID, Title: e.Title, Error: err.Error()})
			failed = true
		} else {
			results = append(results, jsonResult{ID: e.ID, Title: e.Title, Rows: rows})
			if !*jsonOut {
				printRows(rows, e.IsTable)
				fmt.Println()
			}
		}
		for i, m := range traced {
			if err := dumpTrace(m, *traceDir, e.ID, i); err != nil {
				fmt.Fprintf(os.Stderr, "  trace export: %v\n", err)
				failed = true
			}
		}
		traced = traced[:0]
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// dumpTrace writes one traced machine's Chrome trace and metrics dump and
// detaches the tracer.
func dumpTrace(m *paradice.Machine, dir, exp string, n int) error {
	tr := m.StopTrace()
	if tr == nil {
		return nil
	}
	base := filepath.Join(dir, fmt.Sprintf("%s-%02d", exp, n))
	if err := writeFile(base+".trace.json", tr.WriteChrome); err != nil {
		return err
	}
	return writeFile(base+".metrics.txt", tr.WriteMetrics)
}

func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func printRows(rows []bench.Row, table bool) {
	for _, r := range rows {
		// The "~" marks an approximate quantile: the histogram spilled its
		// exact reservoir and the value is a log2-bucket upper bound.
		mark := " "
		if r.Approx {
			mark = "~"
		}
		switch {
		case table && r.Paper != 0:
			fmt.Printf("  %-16s %-52s %s%8.0f %-10s (paper: %.0f)\n", r.Series, r.X, mark, r.Value, r.Unit, r.Paper)
		case table:
			fmt.Printf("  %-16s %-52s %s%8.0f %s\n", r.Series, r.X, mark, r.Value, r.Unit)
		case r.Paper != 0:
			fmt.Printf("  %-16s %-22s %s%10.3f %-6s (paper: %.1f)\n", r.Series, r.X, mark, r.Value, r.Unit, r.Paper)
		default:
			fmt.Printf("  %-16s %-22s %s%10.3f %s\n", r.Series, r.X, mark, r.Value, r.Unit)
		}
	}
}
