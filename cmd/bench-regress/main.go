// Command bench-regress guards the perf trajectory: it compares a fresh
// `paradice-bench -json` run against the committed baseline
// (BENCH_5.json, BENCH_6.json, BENCH_7.json, BENCH_9.json) and fails when
// a guarded row drifted past its tolerance in the bad direction.
//
// Guarded rows are the ones the evaluation hangs on:
//
//   - the §6.1.1 no-op forwarding latencies (both transports) and the
//     Figure 5 order-500 matrix-multiplication times — lower is better,
//     only upward drift fails;
//   - the tail experiment's per-class p99 rows at every load level —
//     lower is better, gated at 10% so a tail regression under open-loop
//     load fails the build even when the means stay flat;
//   - the tail experiment's critical-path attribution rows
//     ("attr <class> <hop> p99", from the flight recorder's per-hop
//     digests) — same " p99" suffix, same gate, so a regression that
//     moves the p99 *between* hops without moving the end-to-end number
//     still shows up, hop by hop;
//   - the tail experiment's max-sustained-throughput row — HIGHER is
//     better, so it fails on downward drift (tolerance 5%: the sweep is
//     quantized to the swept rates, so any real capacity loss shows up as
//     a whole-level drop, far beyond 5%);
//   - the handover experiment's contract rows — "failed"/handover (baseline
//     exactly 0, so any loss reads as 100% drift and fails), the handover
//     downtime (lower is better), and the queued-replay and warm-state
//     counters (higher is better: dropping toward zero means the successor
//     came up cold or parked posts were lost);
//   - the adaptive experiment's envelope — the per-transport p50 rows, the
//     two envelope ratios (adaptive against the better static mode at both
//     ends of the load sweep), the zero-baseline excess-spin row (any idle
//     spin fails), and the batched doorbell count at every level.
//
// The simulation is deterministic, so the expected drift is exactly zero —
// the tolerances exist so an intentional cost-model recalibration shows up
// as a reviewed baseline update, not a red herring.
//
// Usage:
//
//	paradice-bench -json -exp noop,fig5 > current.json
//	bench-regress -baseline BENCH_5.json -current current.json
//	paradice-bench -json -exp tail > current6.json
//	bench-regress -baseline BENCH_6.json -current current6.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

type row struct {
	Series string
	X      string
	Value  float64
	Unit   string
}

type result struct {
	ID    string `json:"id"`
	Rows  []row  `json:"rows"`
	Error string `json:"error"`
}

// rule is one guarded row's gate: its drift tolerance in percent and the
// direction that counts as a regression.
type rule struct {
	tol            float64 // allowed drift in percent (0: the -max-drift default)
	higherIsBetter bool    // fail on downward drift instead of upward
}

// ruleFor returns the gate rule for a row, or false when the row is not
// guarded.
func ruleFor(id string, r row) (rule, bool) {
	switch id {
	case "noop":
		if r.X == "no-op fileop" {
			return rule{}, true
		}
	case "fig5":
		if r.X == "order=500" {
			return rule{}, true
		}
	case "tail":
		if strings.HasSuffix(r.Series, " p99") {
			return rule{}, true
		}
		if r.Series == "max-sustained" {
			return rule{tol: 5, higherIsBetter: true}, true
		}
	case "adaptive":
		// The adaptive-transport envelope. The per-transport p50 rows gate
		// like latencies (lower is better, default tolerance). The envelope
		// ratio rows have baselines near 1.0, so a stance-machinery
		// regression that drags adaptive away from the better static mode
		// at either end of the sweep shows up directly. "excess-spin" at
		// low load has a baseline of exactly 0 — ANY spin burned by an
		// adaptive channel under sparse load reads as 100% drift and fails;
		// zero idle spin is a hard gate, not a tolerance.
		if strings.HasPrefix(r.Series, "p50 ") {
			return rule{}, true
		}
		if r.Series == "envelope" {
			return rule{}, true
		}
		if r.Series == "excess-spin" {
			return rule{}, true
		}
		// Batching's reason to exist: the batched config must keep sending
		// FEWER doorbells than load posts — a drop in amortization shows up
		// as this count rising toward one IRQ per post.
		if r.Series == "doorbells interrupts+batch" {
			return rule{}, true
		}
	case "handover":
		// The planned handover's contract rows. "failed"/handover has a
		// baseline of exactly 0, so ANY nonzero current value reports as
		// 100% drift and fails — zero-loss is a hard gate, not a tolerance.
		// Downtime (the ring pause) gates like a latency; the warm/replay
		// counters gate downward (a warm-transfer regression shows up as
		// these dropping toward zero, which reads as cold successor state).
		if r.Series == "failed" && r.X == "handover" {
			return rule{}, true
		}
		if r.Series == "downtime" && r.X == "handover" {
			return rule{}, true
		}
		if r.Series == "warm map hits" || r.Series == "queued-replayed" || r.Series == "warm reopens" {
			return rule{tol: 5, higherIsBetter: true}, true
		}
	case "multivm":
		// The Figure 7 scaling curve. Aggregate throughput and scaling
		// efficiency gate upward — a worker-pool or shard-routing regression
		// shows up as lost throughput at the high guest counts long before
		// it breaks a functional test. The worst per-guest p99 rows gate
		// like latencies (lower is better): a fairness regression reads as
		// one guest's tail blowing out the max.
		if strings.HasPrefix(r.Series, "tput ") || strings.HasPrefix(r.Series, "efficiency ") {
			return rule{tol: 5, higherIsBetter: true}, true
		}
		if strings.HasPrefix(r.Series, "p99 ") {
			return rule{tol: 5}, true
		}
	}
	return rule{}, false
}

// entry is one guarded value with its gate rule.
type entry struct {
	val  float64
	rule rule
}

func parse(path string, data []byte) (map[string]entry, error) {
	var results []result
	if err := json.Unmarshal(data, &results); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	vals := make(map[string]entry)
	for _, res := range results {
		if res.Error != "" {
			return nil, fmt.Errorf("%s: experiment %s errored: %s", path, res.ID, res.Error)
		}
		for _, r := range res.Rows {
			if ru, ok := ruleFor(res.ID, r); ok {
				vals[res.ID+"/"+r.Series+"/"+r.X] = entry{val: r.Value, rule: ru}
			}
		}
	}
	return vals, nil
}

func load(path string) (map[string]entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parse(path, data)
}

// compare gates every baseline row against the current run. It returns the
// per-row report lines and the failures; maxDrift is the tolerance for
// rows whose rule carries none of their own.
func compare(base, cur map[string]entry, maxDrift float64) (report, failures []string) {
	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		want := base[key]
		got, ok := cur[key]
		if !ok {
			failures = append(failures, fmt.Sprintf("%-40s missing from current run", key))
			continue
		}
		tol := want.rule.tol
		if tol == 0 {
			tol = maxDrift
		}
		drift := 0.0
		if want.val != 0 {
			drift = 100 * (got.val - want.val) / want.val
		} else if got.val != 0 {
			drift = 100 // from zero to nonzero: report as full drift
		}
		bad := drift > tol
		dir := ">"
		if want.rule.higherIsBetter {
			bad = drift < -tol
			dir = "<-"
		}
		status := "ok"
		if bad {
			status = "REGRESSED"
			failures = append(failures, fmt.Sprintf("%-40s %.3f -> %.3f (%+.1f%% %s %.0f%%)",
				key, want.val, got.val, drift, dir, tol))
		}
		report = append(report, fmt.Sprintf("  %-40s baseline %12.3f  current %12.3f  %+7.1f%%  %s",
			key, want.val, got.val, drift, status))
	}
	return report, failures
}

func main() {
	baseline := flag.String("baseline", "BENCH_5.json", "committed baseline JSON")
	current := flag.String("current", "", "fresh paradice-bench -json output")
	maxDrift := flag.Float64("max-drift", 10, "default allowed drift in percent")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "bench-regress: -current is required")
		os.Exit(2)
	}

	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-regress:", err)
		os.Exit(2)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-regress:", err)
		os.Exit(2)
	}
	if len(base) == 0 {
		fmt.Fprintln(os.Stderr, "bench-regress: baseline has no guarded rows")
		os.Exit(2)
	}

	report, failures := compare(base, cur, *maxDrift)
	for _, line := range report {
		fmt.Println(line)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "\nbench-regress: %d guarded row(s) regressed:\n  %s\n",
			len(failures), strings.Join(failures, "\n  "))
		os.Exit(1)
	}
	fmt.Printf("bench-regress: %d guarded rows within tolerance of %s\n", len(base), *baseline)
}
