// Command bench-regress guards the perf trajectory: it compares a fresh
// `paradice-bench -json` run against the committed baseline
// (BENCH_5.json) and fails when a guarded latency row regressed by more
// than the allowed drift.
//
// Guarded rows are the ones the paper's evaluation hangs on: the §6.1.1
// no-op forwarding latencies (both transports) and the Figure 5 order-500
// matrix-multiplication times (every series). All guarded rows are
// "lower is better"; only upward drift fails the check. The simulation is
// deterministic, so the expected drift is exactly zero — the 10% allowance
// exists so an intentional cost-model recalibration shows up as a reviewed
// baseline update, not a red herring.
//
// Usage:
//
//	paradice-bench -json -exp noop,fig5 > current.json
//	bench-regress -baseline BENCH_5.json -current current.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

type row struct {
	Series string
	X      string
	Value  float64
	Unit   string
}

type result struct {
	ID    string `json:"id"`
	Rows  []row  `json:"rows"`
	Error string `json:"error"`
}

// guarded reports whether a row participates in the regression gate.
func guarded(id string, r row) bool {
	switch id {
	case "noop":
		return r.X == "no-op fileop"
	case "fig5":
		return r.X == "order=500"
	}
	return false
}

func load(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var results []result
	if err := json.Unmarshal(data, &results); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	vals := make(map[string]float64)
	for _, res := range results {
		if res.Error != "" {
			return nil, fmt.Errorf("%s: experiment %s errored: %s", path, res.ID, res.Error)
		}
		for _, r := range res.Rows {
			if guarded(res.ID, r) {
				vals[res.ID+"/"+r.Series+"/"+r.X] = r.Value
			}
		}
	}
	return vals, nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_5.json", "committed baseline JSON")
	current := flag.String("current", "", "fresh paradice-bench -json output")
	maxDrift := flag.Float64("max-drift", 10, "allowed upward drift in percent")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "bench-regress: -current is required")
		os.Exit(2)
	}

	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-regress:", err)
		os.Exit(2)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-regress:", err)
		os.Exit(2)
	}
	if len(base) == 0 {
		fmt.Fprintln(os.Stderr, "bench-regress: baseline has no guarded rows")
		os.Exit(2)
	}

	var failures []string
	for key, want := range base {
		got, ok := cur[key]
		if !ok {
			failures = append(failures, fmt.Sprintf("%-40s missing from current run", key))
			continue
		}
		drift := 100 * (got - want) / want
		status := "ok"
		if drift > *maxDrift {
			status = "REGRESSED"
			failures = append(failures, fmt.Sprintf("%-40s %.3f -> %.3f (%+.1f%% > %.0f%%)",
				key, want, got, drift, *maxDrift))
		}
		fmt.Printf("  %-40s baseline %12.3f  current %12.3f  %+7.1f%%  %s\n",
			key, want, got, drift, status)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "\nbench-regress: %d guarded row(s) regressed beyond %.0f%%:\n  %s\n",
			len(failures), *maxDrift, strings.Join(failures, "\n  "))
		os.Exit(1)
	}
	fmt.Printf("bench-regress: %d guarded rows within %.0f%% of %s\n", len(base), *maxDrift, *baseline)
}
