package main

import (
	"fmt"
	"strings"
	"testing"
)

// fixture builds a paradice-bench -json document with one noop row, two
// tail p99 rows, one per-hop attribution p99 row, and the tail
// max-sustained row, at the given values.
func fixture(noop, rtP99, bulkP99, sustained float64) []byte {
	return fixtureAttr(noop, rtP99, bulkP99, 4.0, sustained)
}

func fixtureAttr(noop, rtP99, bulkP99, attrP99, sustained float64) []byte {
	return []byte(fmt.Sprintf(`[
  {"id": "noop", "title": "no-op", "rows": [
    {"Series": "Paradice(P)", "X": "no-op fileop", "Value": %g, "Unit": "µs"},
    {"Series": "Paradice(P)", "X": "unguarded", "Value": 999, "Unit": "µs"}
  ]},
  {"id": "tail", "title": "tail", "rows": [
    {"Series": "rt p99", "X": "load=60k/s", "Value": %g, "Unit": "µs"},
    {"Series": "bulk p99", "X": "load=60k/s", "Value": %g, "Unit": "µs"},
    {"Series": "attr rt backend p99", "X": "load=60k/s", "Value": %g, "Unit": "µs"},
    {"Series": "rt p50", "X": "load=60k/s", "Value": 5.0, "Unit": "µs"},
    {"Series": "max-sustained", "X": "goodput>=97%%", "Value": %g, "Unit": "kops/s"}
  ]}
]`, noop, rtP99, bulkP99, attrP99, sustained))
}

func mustParse(t *testing.T, data []byte) map[string]entry {
	t.Helper()
	vals, err := parse("fixture", data)
	if err != nil {
		t.Fatal(err)
	}
	return vals
}

// Only guarded rows participate: the noop latency, the p99 rows, and the
// max-sustained row — not the unguarded latency or the p50.
func TestParseGuardedRows(t *testing.T) {
	vals := mustParse(t, fixture(35.3, 11.8, 13.4, 240))
	want := []string{
		"noop/Paradice(P)/no-op fileop",
		"tail/rt p99/load=60k/s",
		"tail/bulk p99/load=60k/s",
		"tail/attr rt backend p99/load=60k/s",
		"tail/max-sustained/goodput>=97%",
	}
	if len(vals) != len(want) {
		t.Fatalf("%d guarded rows, want %d: %v", len(vals), len(want), vals)
	}
	for _, k := range want {
		if _, ok := vals[k]; !ok {
			t.Errorf("missing guarded row %q", k)
		}
	}
	ms := vals["tail/max-sustained/goodput>=97%"]
	if !ms.rule.higherIsBetter || ms.rule.tol != 5 {
		t.Errorf("max-sustained rule = %+v, want higher-is-better at 5%%", ms.rule)
	}
}

// Identical runs pass; a small in-tolerance drift passes; and a latency
// IMPROVEMENT (downward) passes however large.
func TestComparePass(t *testing.T) {
	base := mustParse(t, fixture(35.3, 11.8, 13.4, 240))
	for _, cur := range [][]byte{
		fixture(35.3, 11.8, 13.4, 240), // identical
		fixture(36.0, 12.5, 13.9, 235), // few percent, inside tolerance
		fixture(20.0, 6.0, 7.0, 300),   // big improvement in the good direction
	} {
		_, failures := compare(base, mustParse(t, cur), 10)
		if len(failures) != 0 {
			t.Errorf("unexpected failures for %s:\n%s", cur, strings.Join(failures, "\n"))
		}
	}
}

// A >10% p99 regression fails even when every mean-level row is flat.
func TestCompareP99Drift(t *testing.T) {
	base := mustParse(t, fixture(35.3, 11.8, 13.4, 240))
	cur := mustParse(t, fixture(35.3, 13.2, 13.4, 240)) // rt p99 +11.9%
	_, failures := compare(base, cur, 10)
	if len(failures) != 1 || !strings.Contains(failures[0], "rt p99") {
		t.Fatalf("failures = %v, want exactly the rt p99 row", failures)
	}
}

// An attribution row regressing past tolerance fails on its own, even when
// the end-to-end p99s are flat — a hop-level shift is caught hop by hop.
func TestCompareAttrDrift(t *testing.T) {
	base := mustParse(t, fixtureAttr(35.3, 11.8, 13.4, 4.0, 240))
	cur := mustParse(t, fixtureAttr(35.3, 11.8, 13.4, 4.8, 240)) // attr +20%
	_, failures := compare(base, cur, 10)
	if len(failures) != 1 || !strings.Contains(failures[0], "attr rt backend p99") {
		t.Fatalf("failures = %v, want exactly the attr row", failures)
	}
}

// A guarded row missing from the current run fails.
func TestCompareMissingRow(t *testing.T) {
	base := mustParse(t, fixture(35.3, 11.8, 13.4, 240))
	cur := mustParse(t, []byte(`[{"id": "noop", "title": "no-op", "rows": [
    {"Series": "Paradice(P)", "X": "no-op fileop", "Value": 35.3, "Unit": "µs"}]}]`))
	_, failures := compare(base, cur, 10)
	if len(failures) != 4 {
		t.Fatalf("failures = %v, want the four missing tail rows", failures)
	}
	for _, f := range failures {
		if !strings.Contains(f, "missing") {
			t.Errorf("failure %q does not report a missing row", f)
		}
	}
}

// max-sustained is higher-is-better: a drop beyond 5% fails, a rise never
// does — the exact opposite of the latency rows.
func TestCompareThroughputDirection(t *testing.T) {
	base := mustParse(t, fixture(35.3, 11.8, 13.4, 240))

	cur := mustParse(t, fixture(35.3, 11.8, 13.4, 180)) // -25% capacity
	_, failures := compare(base, cur, 10)
	if len(failures) != 1 || !strings.Contains(failures[0], "max-sustained") {
		t.Fatalf("failures = %v, want exactly the max-sustained row", failures)
	}

	cur = mustParse(t, fixture(35.3, 11.8, 13.4, 300)) // +25% capacity: fine
	_, failures = compare(base, cur, 10)
	if len(failures) != 0 {
		t.Fatalf("capacity gain flagged as regression: %v", failures)
	}
}

// An errored experiment in either file is a hard parse error, not a silent
// skip.
func TestParseErroredExperiment(t *testing.T) {
	_, err := parse("fixture", []byte(`[{"id": "tail", "error": "boom", "rows": []}]`))
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want the experiment error surfaced", err)
	}
}
