// Command paradice-inspect boots a machine, optionally exercises it, and
// dumps its architectural state: the system-physical memory map, each VM's
// EPT footprint, the IOMMU domain contents, the devfs of every kernel, and
// the device info the guests see. Useful for understanding how the pieces
// of the paper's Figure 1(c) fit together.
package main

import (
	"flag"
	"fmt"
	"log"

	"paradice"
	"paradice/internal/workload"
)

func main() {
	di := flag.Bool("di", false, "enable device data isolation")
	exercise := flag.Bool("exercise", true, "run a small workload before dumping")
	flag.Parse()

	m, err := paradice.New(paradice.Config{DataIsolation: *di})
	if err != nil {
		log.Fatal(err)
	}
	g, err := m.AddGuest("guest1", paradice.Linux)
	if err != nil {
		log.Fatal(err)
	}
	if err := g.Paravirtualize(paradice.PathGPU, paradice.PathMouse, paradice.PathNetmap); err != nil {
		log.Fatal(err)
	}
	if *exercise {
		if _, err := workload.RunMatmul(m.Env, g.K, 32, 1); err != nil {
			log.Fatal(err)
		}
		if _, err := workload.RunPktGen(m.Env, g.K, 16, 2000, 64); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("=== system-physical memory map ===")
	for _, r := range m.HV.Phys.Ranges() {
		fmt.Printf("  %-24s %#14x + %#x\n", r.Name, uint64(r.Base), r.Size)
	}

	fmt.Println("\n=== virtual machines ===")
	for _, vm := range m.HV.VMs() {
		fmt.Printf("  %-12s id=%d ram=%d MiB ept-entries=%d\n",
			vm.Name, vm.ID, vm.RAM>>20, vm.EPT.Count())
	}

	fmt.Println("\n=== GPU IOMMU domain ===")
	fmt.Printf("  live pages: %d, active region: %d\n",
		m.GPUDomain.LivePages(), m.GPUDomain.Active())
	fmt.Printf("  MC window: [%#x, %#x)\n", mcLo(m), mcHi(m))
	fmt.Printf("  MC register gate revoked from driver VM: %v\n", m.MCGate.Revoked())

	fmt.Println("\n=== driver VM devfs ===")
	for _, p := range m.DriverK.DevicePaths() {
		fmt.Printf("  %s\n", p)
	}

	fmt.Println("\n=== guest devfs (virtual device files) ===")
	for _, p := range g.K.DevicePaths() {
		fe := g.Frontends[p]
		if fe != nil {
			fmt.Printf("  %-22s round-trips=%d rejected=%d\n", p, fe.RoundTrips, fe.Rejected)
		} else {
			fmt.Printf("  %s\n", p)
		}
	}

	fmt.Println("\n=== channel statistics ===")
	for p, be := range g.Backends {
		fmt.Printf("  %-22s ops=%d notifs=%d dropped=%d wake-irqs=%d polled=%d\n",
			p, be.OpsHandled, be.NotifsSent, be.NotifsDropped, be.WakeIRQs, be.PolledPosts)
	}

	fmt.Println("\n=== devices ===")
	fmt.Printf("  gpu: executed=%d faults=%d fence=%d broken=%v\n",
		m.GPU.Executed, m.GPU.Faults, m.GPU.FenceSeq(), m.GPU.Broken())
	fmt.Printf("  nic: tx=%d pkts %d bytes, dma-faults=%d\n",
		m.NIC.TxPackets, m.NIC.TxBytes, m.NIC.DMAFaults)
	fmt.Printf("  camera: frames=%d dma-faults=%d\n", m.Camera.Frames, m.Camera.DMAFaults)
	fmt.Printf("  audio: frames-played=%d underruns=%d\n", m.Audio.FramesPlayed, m.Audio.Underruns)

	fmt.Printf("\nsimulated time: %v\n", m.Env.Now())
}

func mcLo(m *paradice.Machine) uint64 { lo, _ := m.GPU.MCBounds(); return lo }
func mcHi(m *paradice.Machine) uint64 { _, hi := m.GPU.MCBounds(); return hi }
