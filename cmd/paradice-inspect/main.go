// Command paradice-inspect boots a machine, optionally exercises it, and
// dumps its architectural state: the system-physical memory map, each VM's
// EPT footprint, the IOMMU domain contents, the devfs of every kernel, and
// the device info the guests see. Useful for understanding how the pieces
// of the paper's Figure 1(c) fit together.
//
// With -trace FILE the exercise workload runs under the cross-layer tracer
// and its Chrome trace_event JSON is written to FILE (load in Perfetto);
// with -json the state dump itself is machine-readable JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"paradice"
	"paradice/internal/workload"
)

func main() {
	di := flag.Bool("di", false, "enable device data isolation")
	exercise := flag.Bool("exercise", true, "run a small workload before dumping")
	traceOut := flag.String("trace", "", "write a Chrome trace of the exercise workload to this file")
	jsonOut := flag.Bool("json", false, "dump machine state as JSON instead of text")
	flag.Parse()

	m, err := paradice.New(paradice.Config{DataIsolation: *di})
	if err != nil {
		log.Fatal(err)
	}
	g, err := m.AddGuest("guest1", paradice.Linux)
	if err != nil {
		log.Fatal(err)
	}
	if err := g.Paravirtualize(paradice.PathGPU, paradice.PathMouse, paradice.PathNetmap); err != nil {
		log.Fatal(err)
	}
	if *traceOut != "" {
		m.StartTrace()
	}
	if *exercise {
		if _, err := workload.RunMatmul(m.Env, g.K, 32, 1); err != nil {
			log.Fatal(err)
		}
		if _, err := workload.RunPktGen(m.Env, g.K, 16, 2000, 64); err != nil {
			log.Fatal(err)
		}
	}
	if *traceOut != "" {
		tr := m.StopTrace()
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.WriteChrome(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d trace events to %s\n", len(tr.Events()), *traceOut)
	}

	if *jsonOut {
		dumpJSON(m, g)
		return
	}
	dumpText(m, g)
}

func dumpText(m *paradice.Machine, g *paradice.Guest) {
	fmt.Println("=== system-physical memory map ===")
	for _, r := range m.HV.Phys.Ranges() {
		fmt.Printf("  %-24s %#14x + %#x\n", r.Name, uint64(r.Base), r.Size)
	}

	fmt.Println("\n=== virtual machines ===")
	for _, vm := range m.HV.VMs() {
		fmt.Printf("  %-12s id=%d ram=%d MiB ept-entries=%d\n",
			vm.Name, vm.ID, vm.RAM>>20, vm.EPT.Count())
	}

	fmt.Println("\n=== GPU IOMMU domain ===")
	fmt.Printf("  live pages: %d, active region: %d\n",
		m.GPUDomain.LivePages(), m.GPUDomain.Active())
	fmt.Printf("  MC window: [%#x, %#x)\n", mcLo(m), mcHi(m))
	fmt.Printf("  MC register gate revoked from driver VM: %v\n", m.MCGate.Revoked())

	fmt.Println("\n=== driver VM devfs ===")
	for _, p := range m.DriverK.DevicePaths() {
		fmt.Printf("  %s\n", p)
	}

	fmt.Println("\n=== guest devfs (virtual device files) ===")
	for _, p := range g.K.DevicePaths() {
		fe := g.Frontends[p]
		if fe != nil {
			fmt.Printf("  %-22s round-trips=%d rejected=%d\n", p, fe.RoundTrips, fe.Rejected)
		} else {
			fmt.Printf("  %s\n", p)
		}
	}

	fmt.Println("\n=== channel statistics ===")
	for p, be := range g.Backends {
		fmt.Printf("  %-22s ops=%d notifs=%d dropped=%d wake-irqs=%d polled=%d\n",
			p, be.OpsHandled, be.NotifsSent, be.NotifsDropped, be.WakeIRQs, be.PolledPosts)
	}

	fmt.Println("\n=== devices ===")
	fmt.Printf("  gpu: executed=%d faults=%d fence=%d broken=%v\n",
		m.GPU.Executed, m.GPU.Faults, m.GPU.FenceSeq(), m.GPU.Broken())
	fmt.Printf("  nic: tx=%d pkts %d bytes, dma-faults=%d\n",
		m.NIC.TxPackets, m.NIC.TxBytes, m.NIC.DMAFaults)
	fmt.Printf("  camera: frames=%d dma-faults=%d\n", m.Camera.Frames, m.Camera.DMAFaults)
	fmt.Printf("  audio: frames-played=%d underruns=%d\n", m.Audio.FramesPlayed, m.Audio.Underruns)

	fmt.Printf("\nsimulated time: %v\n", m.Env.Now())
}

// dumpJSON emits the same architectural state as the text dump, structured.
func dumpJSON(m *paradice.Machine, g *paradice.Guest) {
	type vmInfo struct {
		Name       string `json:"name"`
		ID         int    `json:"id"`
		RAMMiB     uint64 `json:"ram_mib"`
		EPTEntries int    `json:"ept_entries"`
	}
	type channelInfo struct {
		Path          string `json:"path"`
		Ops           uint64 `json:"ops"`
		Notifs        uint64 `json:"notifs"`
		NotifsDropped uint64 `json:"notifs_dropped"`
		WakeIRQs      uint64 `json:"wake_irqs"`
		PolledPosts   uint64 `json:"polled_posts"`
	}
	out := struct {
		VMs         []vmInfo      `json:"vms"`
		DriverDevfs []string      `json:"driver_devfs"`
		GuestDevfs  []string      `json:"guest_devfs"`
		Channels    []channelInfo `json:"channels"`
		GPUExecuted int64         `json:"gpu_executed"`
		GPUFaults   int64         `json:"gpu_faults"`
		NICTxPkts   int64         `json:"nic_tx_packets"`
		SimTimeNs   int64         `json:"sim_time_ns"`
	}{
		DriverDevfs: m.DriverK.DevicePaths(),
		GuestDevfs:  g.K.DevicePaths(),
		GPUExecuted: int64(m.GPU.Executed),
		GPUFaults:   int64(m.GPU.Faults),
		NICTxPkts:   int64(m.NIC.TxPackets),
		SimTimeNs:   int64(m.Env.Now()),
	}
	for _, vm := range m.HV.VMs() {
		out.VMs = append(out.VMs, vmInfo{Name: vm.Name, ID: int(vm.ID), RAMMiB: vm.RAM >> 20, EPTEntries: vm.EPT.Count()})
	}
	for p, be := range g.Backends {
		out.Channels = append(out.Channels, channelInfo{
			Path: p, Ops: be.OpsHandled, Notifs: be.NotifsSent, NotifsDropped: be.NotifsDropped,
			WakeIRQs: be.WakeIRQs, PolledPosts: be.PolledPosts,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		log.Fatal(err)
	}
}

func mcLo(m *paradice.Machine) uint64 { lo, _ := m.GPU.MCBounds(); return lo }
func mcHi(m *paradice.Machine) uint64 { _, hi := m.GPU.MCBounds(); return hi }
