// Command ioctl-analyzer is the front door to the static-analysis tool of
// §4.1: it analyzes a driver's ioctl handlers, classifies each command as
// offline-resolvable (static grant entries) or data-dependent (nested
// copies, requiring just-in-time slice execution in the CVD frontend), and
// optionally dumps the extracted slices.
//
// Usage:
//
//	ioctl-analyzer -driver radeon          # summary table
//	ioctl-analyzer -driver radeon -dump    # plus the extracted code
package main

import (
	"flag"
	"fmt"
	"os"

	"paradice/internal/driver/drm"
	"paradice/internal/ioctlan"
)

func main() {
	driver := flag.String("driver", "radeon", "driver to analyze (radeon)")
	dump := flag.Bool("dump", false, "print the extracted slices")
	flag.Parse()

	var progs []*ioctlan.Prog
	switch *driver {
	case "radeon", "drm":
		progs = drm.IoctlIR()
	default:
		fmt.Fprintf(os.Stderr, "unknown driver %q (only the radeon-class DRM driver ships IR)\n", *driver)
		os.Exit(2)
	}

	fmt.Printf("analyzing %d ioctl commands of the %s driver\n\n", len(progs), *driver)
	fmt.Printf("%-16s %-10s %-26s %s\n", "COMMAND", "NUMBER", "CLASSIFICATION", "SLICE (stmts)")
	dynamic, extracted := 0, 0
	for _, p := range progs {
		spec, err := ioctlan.Analyze(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", p.Name, err)
			os.Exit(1)
		}
		kind := "static entries"
		if spec.Dynamic {
			kind = "nested copies -> JIT"
			dynamic++
			extracted += spec.ExtractedLines
		}
		fmt.Printf("%-16s %-10s %-26s %d of %d\n",
			p.Name, p.Cmd, kind, spec.ExtractedLines, spec.OriginalLines)
		if !spec.Dynamic {
			for _, s := range spec.Static {
				op := s.Materialize(0xA0000000) // illustrative argument
				fmt.Printf("%-16s   entry: %v %d bytes at %v\n", "", op.Kind, op.Len, op.VA)
			}
		}
		if *dump {
			for _, line := range ioctlan.Format(spec.Slice) {
				fmt.Printf("%-16s   | %s\n", "", line)
			}
		}
	}
	fmt.Printf("\n%d of %d commands require just-in-time execution "+
		"(%d extracted statements).\n", dynamic, len(progs), extracted)
	fmt.Println("the paper's tool found nested copies in 14 of the Radeon driver's")
	fmt.Println("commands, generating ~760 lines of extracted code (§4.1).")
}
