package paradice

import (
	"fmt"

	"paradice/internal/cvd"
	"paradice/internal/devfile"
	"paradice/internal/devinfo"
	"paradice/internal/grant"
	"paradice/internal/hv"
	"paradice/internal/ioctlan"
	"paradice/internal/kernel"
	"paradice/internal/perf"
	"paradice/internal/sim"
)

// Guest is one guest VM on a Paradice machine: its own kernel, its grant
// table (one page per guest VM, shared by all of its CVD frontends), and
// the virtual device files it has paravirtualized.
type Guest struct {
	M  *Machine
	VM *hv.VM
	K  *kernel.Kernel

	Grants    *grant.Table
	Frontends map[string]*cvd.Frontend
	Backends  map[string]*cvd.Backend

	index   int
	fgEvent *sim.Event
}

// AddGuest creates a guest VM running the given OS flavor, with the device
// info modules and virtual PCI bus installed (§5.1).
func (m *Machine) AddGuest(name string, flavor kernel.Flavor) (*Guest, error) {
	if m.Kind != KindParadice {
		return nil, errNotParadice
	}
	vm, err := m.HV.CreateVM(name, m.cfg.GuestRAM)
	if err != nil {
		return nil, err
	}
	k := kernel.New(name, flavor, m.Env, vm.Space, m.cfg.GuestRAM)
	// Each guest VM gets its own event lane: its tasks' calendar entries
	// live in a per-machine partition merged deterministically with every
	// other lane (sim.Env), so scale-out runs schedule many guests without
	// one global calendar hot-spot — and in exactly the order the seed's
	// flat calendar would have produced.
	k.Lane = m.Env.AllocLane()
	k.WakePenalty = perf.CostVMExitIRQ
	grants, err := cvd.NewGuestGrantTable(m.HV, vm, k)
	if err != nil {
		return nil, err
	}
	g := &Guest{
		M: m, VM: vm, K: k, Grants: grants,
		Frontends: make(map[string]*cvd.Frontend),
		Backends:  make(map[string]*cvd.Backend),
		index:     len(m.guests),
	}
	devinfo.InstallVirtualPCIBus(k)
	m.guests = append(m.guests, g)
	return g, nil
}

// Paravirtualize creates virtual device files in the guest for the given
// device paths, each backed by a CVD channel to the driver VM, and installs
// the matching device info module.
func (g *Guest) Paravirtualize(paths ...string) error {
	for _, path := range paths {
		if _, dup := g.Frontends[path]; dup {
			return fmt.Errorf("paradice: %s already paravirtualized in %s", path, g.K.Name)
		}
		var specs map[devfile.IoctlCmd]*ioctlan.CmdSpec
		if path == PathGPU {
			specs = g.M.drmSpec
		}
		// Placement decides which driver-VM shard serves this path; the
		// channel connects to that shard's kernel and joins its worker pool.
		sh := g.M.ShardFor(path)
		fe, be, err := cvd.Connect(cvd.Config{
			HV: g.M.HV, GuestVM: g.VM, GuestK: g.K,
			DriverVM: sh.VM, DriverK: sh.K,
			DevicePath: path, Mode: g.M.cfg.Mode,
			Specs: specs, Grants: g.Grants,
			PollWindow:      g.M.cfg.PollWindow,
			RequestDeadline: g.M.cfg.RequestDeadline,
			MapCache:        g.M.cfg.MapCache,
			MapThreshold:    g.M.cfg.MapThreshold,
			CoalesceWindow:  g.M.cfg.CoalesceWindow,
			BatchSize:       g.M.cfg.BatchSize,
			TLB:             g.M.cfg.TLB,
			GrantBatch:      g.M.cfg.GrantBatch,
			Admission:       g.M.cfg.Admission,
			Pool:            sh.Pool,
		})
		if err != nil {
			return err
		}
		g.Frontends[path] = fe
		g.Backends[path] = be
		g.installDevInfo(path)
		if path == PathGPU && g.M.cfg.DataIsolation {
			if err := g.enableGPURegion(be); err != nil {
				return err
			}
		}
		if isGatedInputPath(path) {
			g.wireInputGate(path)
			// The first guest to paravirtualize a gated input device holds
			// the virtual terminal by default, else its notifications would
			// be dropped before anyone called SetForeground.
			if g.M.foreground == nil {
				g.M.SetForeground(g)
			}
		}
	}
	return nil
}

// installDevInfo loads the class's device info module into the guest.
func (g *Guest) installDevInfo(path string) {
	switch path {
	case PathGPU:
		devinfo.InstallGPU(g.K, g.M.DRM.Model().Vendor, g.M.DRM.Model().Device, g.M.GPU.VRAMSize())
	case PathMouse:
		devinfo.InstallInput(g.K, path, "Dell USB Mouse", 1<<1|1<<2)
	case PathKeyboard:
		devinfo.InstallInput(g.K, path, "Dell USB Keyboard", 1<<1)
	case PathCamera:
		devinfo.InstallCamera(g.K, path, "Logitech HD Pro Webcam C920")
	case PathAudio:
		devinfo.InstallAudio(g.K, path, "Intel Panther Point HD Audio")
	case PathNetmap:
		devinfo.InstallNetmapEthernet(g.K, "em0")
	}
}

// enableGPURegion gives this guest its protected memory region: an equal
// VRAM partition plus the per-region system page pool (§5.3).
func (g *Guest) enableGPURegion(be *cvd.Backend) error {
	parts := uint64(g.M.cfg.DIPartitions)
	if uint64(g.index) >= parts {
		return fmt.Errorf("paradice: guest %d exceeds the %d VRAM partitions", g.index, parts)
	}
	share := g.M.GPU.VRAMSize() / parts
	lo := uint64(g.index) * share
	return g.M.DRM.AddGuestRegion(be.Proc(), g.VM, lo, lo+share)
}

// NewProcess creates an application process in the guest.
func (g *Guest) NewProcess(name string) (*kernel.Process, error) {
	return g.K.NewProcess(name)
}
