package paradice_test

// Span reconciliation: the work spans a traced request emits must tile its
// root span exactly — sum of leaf spans == end-to-end latency — and for the
// forwarded no-op ioctl that latency must equal the §6.1.1 figures derived
// from the perf constants (35 µs with interrupts, ~3 µs with polling). This
// is the contract that makes the trace output trustworthy: every nanosecond
// of a request's latency is attributed to exactly one architectural hop.

import (
	"bytes"
	"strings"
	"testing"

	"paradice"
	"paradice/internal/driver/drm"
	"paradice/internal/kernel"
	"paradice/internal/perf"
	"paradice/internal/sim"
	"paradice/internal/trace"
)

// tracedNoop builds a paravirtualized guest, enables tracing, and issues
// iters forwarded no-op ioctls (drm.IoctlInfo, a 32-byte _IOR) through it.
func tracedNoop(t *testing.T, mode paradice.Mode, iters int) *trace.Tracer {
	t.Helper()
	m, gk := guestKernel(t, paradice.Config{Mode: mode}, paradice.PathGPU)
	tr := m.StartTrace()
	t.Cleanup(func() { m.StopTrace() })
	p, err := gk.NewProcess("noop")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	p.SpawnTask("loop", func(tk *kernel.Task) {
		fd, err := tk.Open(paradice.PathGPU, 2)
		if err != nil {
			done <- err
			return
		}
		arg, err := p.Alloc(32)
		if err != nil {
			done <- err
			return
		}
		for i := 0; i < iters; i++ {
			if _, err := tk.Ioctl(fd, drm.IoctlInfo, arg); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	})
	m.Run()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	return tr
}

// lastIoctlRoot returns the root group of the last traced ioctl. The last
// one is in steady state for both transports (the first polled op can land
// while the backend is between poll windows).
func lastIoctlRoot(t *testing.T, tr *trace.Tracer) trace.Event {
	t.Helper()
	var root trace.Event
	found := false
	for _, e := range tr.Events() {
		if e.Kind == trace.KindGroup && e.Layer == trace.LayerSyscall && strings.HasPrefix(e.Name, "ioctl ") {
			root, found = e, true
		}
	}
	if !found {
		t.Fatal("no ioctl root span recorded")
	}
	return root
}

// spanSum adds up the leaf work spans attributed to one request.
func spanSum(tr *trace.Tracer, rid uint64) sim.Duration {
	var sum sim.Duration
	for _, e := range tr.Events() {
		if e.Kind == trace.KindSpan && e.RID == rid {
			sum += e.Dur()
		}
	}
	return sum
}

func TestNoopSpanReconciliation(t *testing.T) {
	t.Run("interrupts", func(t *testing.T) {
		tr := tracedNoop(t, paradice.Interrupts, 4)
		root := lastIoctlRoot(t, tr)
		sum := spanSum(tr, root.RID)
		if sum != root.Dur() {
			t.Fatalf("span sum %v != root duration %v for rid %d\n%s",
				sum, root.Dur(), root.RID, dumpRID(tr, root.RID))
		}
		// The §6.1.1 interrupt-mode budget, hop by hop: syscall entry,
		// grant declare, frontend post, kick hypercall, inter-VM IRQ to the
		// driver VM, backend dispatch, grant validate, the 32-byte assisted
		// copy-out, backend completion, response hypercall, inter-VM IRQ
		// back, frontend completion read.
		want := perf.CostSyscall + perf.CostGrantDeclare + perf.CostPost +
			perf.CostHypercall + perf.CostInterVMIRQ +
			perf.CostPost + perf.CostGrantDeclare + perf.Copy(32, 1) + perf.CostComplete +
			perf.CostHypercall + perf.CostInterVMIRQ +
			perf.CostComplete
		if want != 35309*sim.Nanosecond {
			t.Fatalf("cost-model drift: interrupt no-op budget is %v, want 35.309µs (§6.1.1)", want)
		}
		if root.Dur() != want {
			t.Fatalf("interrupt no-op latency %v != budget %v\n%s",
				root.Dur(), want, dumpRID(tr, root.RID))
		}
	})
	t.Run("polling", func(t *testing.T) {
		tr := tracedNoop(t, paradice.Polling, 4)
		root := lastIoctlRoot(t, tr)
		sum := spanSum(tr, root.RID)
		if sum != root.Dur() {
			t.Fatalf("span sum %v != root duration %v for rid %d\n%s",
				sum, root.Dur(), root.RID, dumpRID(tr, root.RID))
		}
		// Steady-state polling replaces both hypercall+IRQ pairs with one
		// cache-line crossing in each direction.
		want := perf.CostSyscall + perf.CostGrantDeclare + perf.CostPost +
			perf.CostPollCross +
			perf.CostPost + perf.CostGrantDeclare + perf.Copy(32, 1) + perf.CostComplete +
			perf.CostPollCross +
			perf.CostComplete
		if root.Dur() != want {
			t.Fatalf("polled no-op latency %v != budget %v\n%s",
				root.Dur(), want, dumpRID(tr, root.RID))
		}
	})
}

// dumpRID renders one request's events for failure messages.
func dumpRID(tr *trace.Tracer, rid uint64) string {
	var b bytes.Buffer
	for _, e := range tr.Events() {
		if e.RID != rid {
			continue
		}
		kind := map[trace.Kind]string{trace.KindSpan: "span", trace.KindGroup: "group", trace.KindInstant: "inst"}[e.Kind]
		b.WriteString(kind)
		b.WriteString(" ")
		b.WriteString(e.VM)
		b.WriteString("/")
		b.WriteString(e.Layer)
		b.WriteString(" ")
		b.WriteString(e.Name)
		b.WriteString(" ")
		b.WriteString(e.Start.String())
		b.WriteString("..")
		b.WriteString(e.End.String())
		b.WriteString(" (")
		b.WriteString(e.Dur().String())
		b.WriteString(")\n")
	}
	return b.String()
}
