package paradice_test

// Machine-level isolation tests: the threat model of §4 exercised on the
// fully assembled system. The driver VM is assumed compromised (the paper's
// stance after fault isolation), and each §4.2 attack against another
// guest's device data must fail while legitimate use keeps working.

import (
	"testing"

	"paradice"
	"paradice/internal/device/gpu"
	"paradice/internal/grant"
	"paradice/internal/kernel"
	"paradice/internal/mem"
	"paradice/internal/sim"
	"paradice/internal/usrlib"
	"paradice/internal/workload"
)

// diMachine builds a data-isolation machine with a victim and an attacker
// guest sharing the GPU.
func diMachine(t *testing.T) (*paradice.Machine, *paradice.Guest, *paradice.Guest) {
	t.Helper()
	m, err := paradice.New(paradice.Config{DataIsolation: true})
	if err != nil {
		t.Fatal(err)
	}
	victim, err := m.AddGuest("victim", paradice.Linux)
	if err != nil {
		t.Fatal(err)
	}
	if err := victim.Paravirtualize(paradice.PathGPU); err != nil {
		t.Fatal(err)
	}
	attacker, err := m.AddGuest("attacker", paradice.Linux)
	if err != nil {
		t.Fatal(err)
	}
	if err := attacker.Paravirtualize(paradice.PathGPU); err != nil {
		t.Fatal(err)
	}
	return m, victim, attacker
}

// writeSecret has the victim create a texture BO, map it, and write a
// secret through the mapped pages (the paper's "graphics textures and GPGPU
// input data" moved via mmap). Returns the BO's VRAM offset (0: first
// allocation in the victim's partition).
func writeSecret(t *testing.T, m *paradice.Machine, victim *paradice.Guest, secret []byte) {
	t.Helper()
	p, err := victim.NewProcess("victim-app")
	if err != nil {
		t.Fatal(err)
	}
	p.SpawnTask("main", func(tk *kernel.Task) {
		g, err := usrlib.OpenGPU(tk, paradice.PathGPU)
		if err != nil {
			t.Error(err)
			return
		}
		bo, err := g.CreateBO(mem.PageSize)
		if err != nil {
			t.Error(err)
			return
		}
		va, err := g.MapBO(bo, mem.PageSize)
		if err != nil {
			t.Error(err)
			return
		}
		if err := p.UserWrite(tk, va, secret); err != nil {
			t.Error(err)
		}
		// Render with it once so the victim's region is the active one.
		fb, err := g.CreateBO(mem.PageSize)
		if err != nil {
			t.Error(err)
			return
		}
		if err := g.Draw(fb, bo, 1000); err != nil {
			t.Error(err)
		}
	})
	m.Run()
}

// Attack two of §4.2: the compromised driver VM's CPU reads the victim's
// protected VRAM page directly.
func TestDriverVMCannotReadProtectedTexture(t *testing.T) {
	m, victim, _ := diMachine(t)
	secret := []byte("victim texture bytes")
	writeSecret(t, m, victim, secret)
	// The victim's partition starts at VRAM offset 0; its first BO is the
	// texture. A compromised driver VM reads the page through its own
	// guest-physical view of the BAR:
	pageGPA := m.DRM.VRAMGPA() // + 0
	buf := make([]byte, len(secret))
	if err := m.DriverVM.Space.Read(pageGPA, buf); err == nil {
		t.Fatalf("compromised driver VM read the victim's texture: %q", buf)
	}
	// Sanity: the secret really is there, visible to the hypervisor.
	spa, err := m.DriverVM.EPT.Translate(pageGPA, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.HV.Phys.Read(spa, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(secret) {
		t.Fatalf("secret not where expected: %q", buf)
	}
}

// Attack three of §4.2: the compromised driver VM programs the device to
// copy the victim's buffer into the attacker's region. The GPU's MC window
// points at the attacker's partition, so the read does not succeed.
func TestDeviceCannotCopyAcrossRegions(t *testing.T) {
	m, victim, attacker := diMachine(t)
	secret := []byte("cross-region loot")
	writeSecret(t, m, victim, secret)

	// The attacker renders once so its region (and MC window) is active.
	attackerApp, err := attacker.NewProcess("attacker-app")
	if err != nil {
		t.Fatal(err)
	}
	var attackerBO uint64
	attackerApp.SpawnTask("main", func(tk *kernel.Task) {
		g, err := usrlib.OpenGPU(tk, paradice.PathGPU)
		if err != nil {
			t.Error(err)
			return
		}
		fb, err := g.CreateBO(mem.PageSize)
		if err != nil {
			t.Error(err)
			return
		}
		if err := g.Draw(fb, 0, 1000); err != nil {
			t.Error(err)
		}
		// The attacker's partition is the upper half of VRAM.
		attackerBO = m.GPU.VRAMSize() / 2
	})
	m.Run()

	// Compromised driver VM: enqueue a raw engine command copying the
	// victim's VRAM (offset 0) into the attacker's partition.
	faultsBefore := m.GPU.Faults
	m.GPU.Submit([]gpu.EngineCmd{gpu.Cmd(gpu.OpCopy, 0, attackerBO, uint64(len(secret)))}, 9999)
	m.RunUntil(m.Env.Now().Add(10 * sim.Millisecond))
	if m.GPU.Faults == faultsBefore {
		t.Fatal("cross-region device copy did not fault at the MC window")
	}
	// The attacker page still does not contain the secret.
	attackerGPA := m.DRM.VRAMGPA() + mem.GuestPhys(attackerBO)
	spa, err := m.DriverVM.EPT.Translate(attackerGPA, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(secret))
	if err := m.HV.Phys.Read(spa, buf); err == nil && string(buf) == string(secret) {
		t.Fatal("secret leaked into the attacker's partition")
	}
}

// Attack one of §4.2 at machine level: the compromised driver VM asks the
// hypervisor to map the victim's protected page into the attacker guest.
func TestHypervisorRefusesCrossGuestMapOnMachine(t *testing.T) {
	m, victim, attacker := diMachine(t)
	writeSecret(t, m, victim, []byte("no trespassing"))
	// Forge a perfectly valid grant on the attacker's side.
	p, err := attacker.NewProcess("attacker-app")
	if err != nil {
		t.Fatal(err)
	}
	va := mem.GuestVirt(0x5000_0000)
	if err := p.PT.EnsureIntermediates(va); err != nil {
		t.Fatal(err)
	}
	ref, err := attacker.Grants.Declare(p.PT.Root(), []grant.Op{
		{Kind: grant.KindMapPage, VA: va, Len: mem.PageSize},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = m.HV.MapToGuest(attacker.VM, ref, va, m.DriverVM, m.DRM.VRAMGPA())
	if err == nil {
		t.Fatal("hypervisor mapped the victim's protected page into the attacker")
	}
}

// The device data isolation configuration costs the VSync interrupt (§5.3:
// all interrupts are interpreted as fences).
func TestDataIsolationDisablesVSync(t *testing.T) {
	m, _, _ := diMachine(t)
	if !m.DRM.DataIsolationEnabled() {
		t.Fatal("DI not enabled")
	}
	if got := m.DRM.VSyncs; got != 0 {
		t.Fatalf("VSync interrupts seen under DI: %d", got)
	}
}

// §8: Paradice does not provide performance isolation — a guest flooding
// the GPU slows another guest's work. This test documents the limitation.
func TestNoPerformanceIsolation(t *testing.T) {
	baseline := matmulWithFlood(t, false)
	contended := matmulWithFlood(t, true)
	if contended < sim.Duration(float64(baseline)*1.3) {
		t.Fatalf("expected the flooded GPU to slow the victim: baseline=%v contended=%v",
			baseline, contended)
	}
}

func matmulWithFlood(t *testing.T, flood bool) sim.Duration {
	t.Helper()
	m, err := paradice.New(paradice.Config{})
	if err != nil {
		t.Fatal(err)
	}
	victim, err := m.AddGuest("victim", paradice.Linux)
	if err != nil {
		t.Fatal(err)
	}
	if err := victim.Paravirtualize(paradice.PathGPU); err != nil {
		t.Fatal(err)
	}
	if flood {
		hog, err := m.AddGuest("hog", paradice.Linux)
		if err != nil {
			t.Fatal(err)
		}
		if err := hog.Paravirtualize(paradice.PathGPU); err != nil {
			t.Fatal(err)
		}
		p, err := hog.NewProcess("hog-app")
		if err != nil {
			t.Fatal(err)
		}
		p.SpawnTask("flood", func(tk *kernel.Task) {
			g, err := usrlib.OpenGPU(tk, paradice.PathGPU)
			if err != nil {
				return
			}
			fb, err := g.CreateBO(mem.PageSize)
			if err != nil {
				return
			}
			// Queue deep batches of expensive draws without waiting on
			// fences, keeping the command processor saturated.
			var words []uint32
			for i := 0; i < 50; i++ {
				words = append(words, gpu.OpDraw, fb, 0, 2_000_000, 0)
			}
			for i := 0; i < 10; i++ {
				if _, err := g.SubmitIB(words); err != nil {
					return
				}
			}
		})
	}
	resS := []workload.MatmulResult{{}}
	errS := []error{nil}
	workload.StartMatmulLoop(victim.K, 64, 1, resS, errS)
	m.Run()
	if errS[0] != nil {
		t.Fatal(errS[0])
	}
	if !resS[0].Correct {
		t.Fatal("victim matmul wrong under contention")
	}
	return resS[0].Elapsed
}
