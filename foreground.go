package paradice

import "paradice/internal/kernel"

// This file implements the concurrency policies of §5.1: "For GPU for
// graphics, we adopt a foreground-background model. That is, only the
// foreground guest VM renders to the GPU, while others pause. ... For input
// devices, we only send notifications to the foreground guest VM." GPGPU
// access stays fully concurrent (Figure 6) and is unaffected.

// SetForeground makes g the foreground guest: its input notifications flow,
// every other guest's are dropped at the CVD backend, and tasks parked in
// WaitForeground on g resume. Passing nil backgrounds everyone.
func (m *Machine) SetForeground(g *Guest) {
	m.foreground = g
	for _, other := range m.guests {
		if other.fgEvent != nil && other.Foreground() {
			other.fgEvent.Trigger()
			other.fgEvent = nil
		}
	}
}

// Foreground reports whether this guest currently holds the virtual
// terminal.
func (g *Guest) Foreground() bool { return g.M.foreground == g }

// WaitForeground blocks the task until the guest is the foreground one —
// the pause a backgrounded game's render loop sits in.
func (g *Guest) WaitForeground(t *kernel.Task) {
	for !g.Foreground() {
		if g.fgEvent == nil {
			g.fgEvent = g.M.Env.NewEvent("vt-" + g.K.Name)
		}
		t.Sim().Wait(g.fgEvent)
	}
}

// isGatedInputPath reports whether the device at path is an input device
// whose notifications §5.1 gates to the foreground guest. The mouse and the
// keyboard both are; audit note: the camera and audio devices are NOT gated
// (the paper shares them by assigning each to one guest at a time, not by
// foreground notification filtering), and the GPU's foreground policy works
// through WaitForeground render-loop pausing, not notification gating — so
// neither needs rewiring after a driver VM restart.
func isGatedInputPath(path string) bool {
	return path == PathMouse || path == PathKeyboard
}

// wireInputGate hooks one input channel's notifications to the foreground
// policy. Called when a gated input path is paravirtualized, and again after
// every driver VM restart (the gate lives on the backend, which a restart
// replaces).
func (g *Guest) wireInputGate(path string) {
	be := g.Backends[path]
	if be == nil {
		return
	}
	be.SetNotifyGate(func() bool { return g.Foreground() })
}
