package paradice_test

import (
	"testing"

	"paradice"
	"paradice/internal/kernel"
	"paradice/internal/sim"
	"paradice/internal/workload"
)

// guestKernel builds a Paradice machine with one Linux guest that has the
// given devices paravirtualized, returning the guest's kernel.
func guestKernel(t testing.TB, cfg paradice.Config, paths ...string) (*paradice.Machine, *kernel.Kernel) {
	t.Helper()
	m, err := paradice.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := m.AddGuest("guest1", paradice.Linux)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Paravirtualize(paths...); err != nil {
		t.Fatal(err)
	}
	return m, g.K
}

func TestNativeMatmulCorrect(t *testing.T) {
	m, err := paradice.NewNative(paradice.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := workload.RunMatmul(m.Env, m.AppKernel(), 48, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatal("native GPU matmul produced a wrong product")
	}
	if res.Elapsed <= workload.CLSetupTime {
		t.Fatalf("elapsed = %v, must exceed setup time", res.Elapsed)
	}
}

func TestParadiceMatmulCorrect(t *testing.T) {
	m, gk := guestKernel(t, paradice.Config{}, paradice.PathGPU)
	res, err := workload.RunMatmul(m.Env, gk, 48, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatal("guest's matmul result wrong after crossing the CVD + hypervisor + GPU path")
	}
}

func TestParadiceMatmulWithDataIsolation(t *testing.T) {
	m, gk := guestKernel(t, paradice.Config{DataIsolation: true}, paradice.PathGPU)
	res, err := workload.RunMatmul(m.Env, gk, 48, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatal("matmul wrong under device data isolation")
	}
	if m.GPU.Faults != 0 {
		t.Fatalf("GPU memory faults during legitimate run: %d", m.GPU.Faults)
	}
}

func TestDeviceAssignMatmulCorrect(t *testing.T) {
	m, err := paradice.NewDeviceAssignment(paradice.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := workload.RunMatmul(m.Env, m.AppKernel(), 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatal("device-assignment matmul wrong")
	}
}

func TestNetmapTransmitsRealBytes(t *testing.T) {
	m, gk := guestKernel(t, paradice.Config{}, paradice.PathNetmap)
	res, err := workload.RunPktGen(m.Env, gk, 64, 5000, 64)
	if err != nil {
		t.Fatal(err)
	}
	if m.NIC.TxPackets < 5000 {
		t.Fatalf("NIC transmitted %d packets, want >= 5000", m.NIC.TxPackets)
	}
	if m.NIC.Checksum == 0 {
		t.Fatal("NIC checksum zero: packet bytes never reached the device")
	}
	if m.NIC.DMAFaults != 0 {
		t.Fatalf("NIC DMA faults: %d", m.NIC.DMAFaults)
	}
	if res.MPPS <= 0 {
		t.Fatalf("MPPS = %f", res.MPPS)
	}
}

func TestNetmapRateOrdering(t *testing.T) {
	// Native >= Paradice(poll) >= Paradice(int) at a small batch size.
	rate := func(mk func() (*paradice.Machine, *kernel.Kernel)) float64 {
		m, k := mk()
		res, err := workload.RunPktGen(m.Env, k, 4, 20000, 64)
		if err != nil {
			t.Fatal(err)
		}
		return res.MPPS
	}
	native := rate(func() (*paradice.Machine, *kernel.Kernel) {
		m, err := paradice.NewNative(paradice.Config{})
		if err != nil {
			t.Fatal(err)
		}
		return m, m.AppKernel()
	})
	polled := rate(func() (*paradice.Machine, *kernel.Kernel) {
		m, k := guestKernel(t, paradice.Config{Mode: paradice.Polling}, paradice.PathNetmap)
		return m, k
	})
	interrupts := rate(func() (*paradice.Machine, *kernel.Kernel) {
		m, k := guestKernel(t, paradice.Config{}, paradice.PathNetmap)
		return m, k
	})
	if !(native >= polled && polled > interrupts) {
		t.Fatalf("rate ordering violated: native=%.3f polled=%.3f interrupts=%.3f",
			native, polled, interrupts)
	}
	// Paper: polling at batch 4 is similar to native.
	if polled < 0.75*native {
		t.Fatalf("polled rate %.3f < 75%% of native %.3f at batch 4", polled, native)
	}
}

func TestMouseLatencyOrdering(t *testing.T) {
	measure := func(mk func() (*paradice.Machine, *kernel.Kernel)) sim.Duration {
		m, k := mk()
		res, err := workload.RunMouseLatency(m.Env, k, m.Mouse, 50)
		if err != nil {
			t.Fatal(err)
		}
		return res.Avg
	}
	native := measure(func() (*paradice.Machine, *kernel.Kernel) {
		m, err := paradice.NewNative(paradice.Config{})
		if err != nil {
			t.Fatal(err)
		}
		return m, m.AppKernel()
	})
	da := measure(func() (*paradice.Machine, *kernel.Kernel) {
		m, err := paradice.NewDeviceAssignment(paradice.Config{})
		if err != nil {
			t.Fatal(err)
		}
		return m, m.AppKernel()
	})
	pInt := measure(func() (*paradice.Machine, *kernel.Kernel) {
		m, k := guestKernel(t, paradice.Config{}, paradice.PathMouse)
		return m, k
	})
	pPoll := measure(func() (*paradice.Machine, *kernel.Kernel) {
		m, k := guestKernel(t, paradice.Config{Mode: paradice.Polling}, paradice.PathMouse)
		return m, k
	})
	t.Logf("mouse latency: native=%v da=%v paradice-int=%v paradice-poll=%v",
		native, da, pInt, pPoll)
	if !(native < da && da < pPoll && pPoll < pInt) {
		t.Fatalf("latency ordering violated: native=%v da=%v poll=%v int=%v",
			native, da, pPoll, pInt)
	}
	// All well under the 1 ms human-perception threshold (§6.1.5).
	if pInt >= sim.Duration(sim.Millisecond) {
		t.Fatalf("paradice-int latency %v exceeds 1ms", pInt)
	}
}

func TestCameraFPSAcrossResolutions(t *testing.T) {
	for _, cfgName := range []string{"native", "paradice"} {
		var m *paradice.Machine
		var k *kernel.Kernel
		if cfgName == "native" {
			mm, err := paradice.NewNative(paradice.Config{})
			if err != nil {
				t.Fatal(err)
			}
			m, k = mm, mm.AppKernel()
		} else {
			m, k = guestKernel(t, paradice.Config{}, paradice.PathCamera)
		}
		res, err := workload.RunCamera(m.Env, k, workloadCamRes(), 30)
		if err != nil {
			t.Fatalf("%s: %v", cfgName, err)
		}
		if !res.Verified {
			t.Fatalf("%s: frame pattern corrupted in transit", cfgName)
		}
		if res.FPS < 29 || res.FPS > 30 {
			t.Fatalf("%s: FPS = %.2f, want ~29.5", cfgName, res.FPS)
		}
	}
}

func workloadCamRes() (r struct{ W, H int }) { return struct{ W, H int }{1280, 720} }

func TestAudioPlaybackRealTime(t *testing.T) {
	m, gk := guestKernel(t, paradice.Config{}, paradice.PathAudio)
	res, err := workload.RunAudio(m.Env, gk, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Playback is paced by the codec: 0.5 s of audio takes ~0.5 s.
	if res.Elapsed < sim.Duration(480*sim.Millisecond) || res.Elapsed > sim.Duration(560*sim.Millisecond) {
		t.Fatalf("playback of 0.5s took %v", res.Elapsed)
	}
	if m.Audio.FramesPlayed < 23000 {
		t.Fatalf("codec played %d frames, want ~24000", m.Audio.FramesPlayed)
	}
}

func TestGLBenchOrdering(t *testing.T) {
	fps := func(mode paradice.Mode, kind string) float64 {
		var m *paradice.Machine
		var k *kernel.Kernel
		if kind == "native" {
			mm, err := paradice.NewNative(paradice.Config{})
			if err != nil {
				t.Fatal(err)
			}
			m, k = mm, mm.AppKernel()
		} else {
			m, k = guestKernel(t, paradice.Config{Mode: mode}, paradice.PathGPU)
		}
		res, err := workload.RunGL(m.Env, k, workload.GLVertexBufferObjects, 30)
		if err != nil {
			t.Fatal(err)
		}
		return res.FPS
	}
	native := fps(paradice.Interrupts, "native")
	pInt := fps(paradice.Interrupts, "paradice")
	pPoll := fps(paradice.Polling, "paradice")
	t.Logf("GL VBO fps: native=%.1f paradice-int=%.1f paradice-poll=%.1f", native, pInt, pPoll)
	if !(native > pPoll && pPoll > pInt) {
		t.Fatalf("FPS ordering violated: native=%.1f poll=%.1f int=%.1f", native, pPoll, pInt)
	}
	// Polling closes the gap (§6.1.3).
	if pPoll < 0.93*native {
		t.Fatalf("polled FPS %.1f below 93%% of native %.1f", pPoll, native)
	}
}

func TestFreeBSDGuestRendersOverLinuxDriverVM(t *testing.T) {
	m, err := paradice.New(paradice.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := m.AddGuest("bsd", paradice.FreeBSD)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Paravirtualize(paradice.PathGPU); err != nil {
		t.Fatal(err)
	}
	res, err := workload.RunMatmul(m.Env, g.K, 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatal("FreeBSD guest's matmul wrong over Linux driver VM")
	}
}

func TestTwoGuestsShareGPU(t *testing.T) {
	m, err := paradice.New(paradice.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var kernels []*kernel.Kernel
	for _, name := range []string{"g1", "g2"} {
		g, err := m.AddGuest(name, paradice.Linux)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Paravirtualize(paradice.PathGPU); err != nil {
			t.Fatal(err)
		}
		kernels = append(kernels, g.K)
	}
	var results [2]workload.MatmulResult
	var errs [2]error
	for i, k := range kernels {
		workload.StartMatmul(k, 48, int64(i+10), &results[i], &errs[i])
	}
	m.Run()
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("guest %d: %v", i, errs[i])
		}
		if !results[i].Correct {
			t.Fatalf("guest %d: wrong product under concurrent GPU sharing", i)
		}
	}
}
