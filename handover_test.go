package paradice_test

// The live-handover scenarios: a planned driver-VM handover under sustained
// open-loop load must lose nothing and pause the device only for the drain
// window; every abort path must roll back to the still-live predecessor;
// and the typed restart sentinels plus the injected-restart-failure path
// must leave the machine fully usable.

import (
	"errors"
	"strings"
	"testing"

	"paradice"
	"paradice/internal/devfile"
	"paradice/internal/faults"
	"paradice/internal/handover"
	"paradice/internal/kernel"
	"paradice/internal/load"
	"paradice/internal/perf"
	"paradice/internal/sim"
	"paradice/internal/supervise"
	"paradice/internal/usrlib"
	"paradice/internal/workload"
)

// sinkMachine builds a Paradice machine with the load sink registered into
// every driver-VM generation (required for post-handover rebinds) and one
// guest paravirtualizing it.
func sinkMachine(t *testing.T, cfg paradice.Config) (*paradice.Machine, *paradice.Guest) {
	t.Helper()
	m, err := paradice.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sink := load.NewSink(m.Env, 2*sim.Microsecond, sim.Microsecond)
	if err := m.OnDriverVMBoot(func(k *kernel.Kernel) error {
		k.RegisterDevice(load.SinkPath, sink, sink)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	g, err := m.AddGuest("guest", paradice.Linux)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Paravirtualize(load.SinkPath); err != nil {
		t.Fatal(err)
	}
	return m, g
}

// TestHandoverZeroLossUnderLoad is the tentpole acceptance scenario: a
// planned handover at ~60% of sink capacity completes with zero failed
// requests, parks (and then replays) the posts that arrived during the
// drain, hands the successor a warm map cache, and pauses the device for
// microseconds — not the driver-VM boot time.
func TestHandoverZeroLossUnderLoad(t *testing.T) {
	m, g := sinkMachine(t, paradice.Config{
		Mode:     paradice.Polling,
		GuestRAM: 256 << 20,
		MapCache: true,
		TLB:      true,
	})

	gen, err := load.NewGenerator(load.Profile{
		Path:     load.SinkPath,
		Classes:  []load.Class{{Name: "bulk", QoS: 0, Size: 2048, Weight: 1}},
		Arrival:  load.Poisson,
		Rate:     150_000,
		Clients:  300,
		Duration: 115 * sim.Millisecond,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.Start(g.K); err != nil {
		t.Fatal(err)
	}

	// The witness writer: >= 2 KiB writes ride the bulk-grant fast path, so
	// its post-handover writes prove the successor's map cache came up warm.
	var witnessErr error
	witness, err := g.K.NewProcess("witness")
	if err != nil {
		t.Fatal(err)
	}
	witness.SpawnTask("writer", func(tk *kernel.Task) {
		fd, err := tk.Open(load.SinkPath, devfile.ORdWr)
		for attempt := 0; err != nil && attempt < 10000 &&
			(kernel.IsErrno(err, kernel.EBUSY) || kernel.IsErrno(err, kernel.EAGAIN)); attempt++ {
			tk.Sim().Sleep(20 * sim.Microsecond)
			fd, err = tk.Open(load.SinkPath, devfile.ORdWr)
		}
		if err != nil {
			witnessErr = err
			return
		}
		buf, _ := witness.Alloc(4096)
		end := tk.Sim().Now().Add(115 * sim.Millisecond)
		for tk.Sim().Now() < end {
			_, err := tk.Write(fd, buf, 4096)
			for attempt := 0; err != nil && attempt < 10000 &&
				(kernel.IsErrno(err, kernel.EBUSY) || kernel.IsErrno(err, kernel.EAGAIN)); attempt++ {
				tk.Sim().Sleep(20 * sim.Microsecond)
				_, err = tk.Write(fd, buf, 4096)
			}
			if err != nil {
				witnessErr = err
				return
			}
			tk.Sim().Sleep(500 * sim.Microsecond)
		}
	})

	var hoErr error
	m.Env.Spawn("handover-driver", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		hoErr = m.HandoverDriverVM()
	})
	m.Run()

	if hoErr != nil {
		t.Fatalf("handover: %v", hoErr)
	}
	if witnessErr != nil {
		t.Fatalf("witness write failed across handover: %v", witnessErr)
	}
	if !gen.Done() {
		t.Fatal("generator clients did not drain")
	}
	res := gen.Result()
	if len(res.Violations) > 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	for i := range res.Classes {
		if n := res.Classes[i].Errors; n != 0 {
			t.Fatalf("class %s: %d requests failed during a planned handover, want 0",
				res.Classes[i].Class.Name, n)
		}
	}

	eps := m.Handovers()
	if len(eps) != 1 {
		t.Fatalf("episodes: %d, want 1", len(eps))
	}
	ep := eps[0]
	if ep.Aborted || ep.Stage != handover.StageDone {
		t.Fatalf("episode not committed: %+v", ep)
	}
	if m.RestartEpoch() != 1 {
		t.Fatalf("restart epoch %d, want 1", m.RestartEpoch())
	}
	// The pause is the drain window plus the switch — not the 100 ms boot.
	if ep.Pause >= perf.CostDriverVMRestart/10 {
		t.Fatalf("pause %v not well below the restart outage %v", ep.Pause, perf.CostDriverVMRestart)
	}
	fe := g.Frontends[load.SinkPath]
	if fe.QueuedPosts == 0 {
		t.Fatal("no posts parked during the drain — the quiesce stage never saw traffic")
	}
	be := g.Backends[load.SinkPath]
	hits, _, _ := be.MapCacheStats()
	if hits == 0 {
		t.Fatal("successor map cache has zero hits — the warm transfer did not take")
	}
	if be.WarmReopens == 0 {
		t.Fatal("no warm re-opens — predecessor file state was not carried over")
	}
}

// TestHandoverAbortRollsBack drives each injected stage failure and asserts
// the machine rolls back to the still-live predecessor: no epoch bump, the
// episode records the aborted stage, and the device keeps working.
func TestHandoverAbortRollsBack(t *testing.T) {
	cases := []struct {
		point string
		stage handover.Stage
		want  error
	}{
		{"machine.handover.fail", handover.StagePrepare, handover.ErrPrepare},
		{"handover.drain.timeout", handover.StageQuiesce, handover.ErrDrainTimeout},
		{"handover.warm.fail", handover.StageSwitch, handover.ErrSwitch},
	}
	for _, tc := range cases {
		t.Run(tc.point, func(t *testing.T) {
			m, err := paradice.New(paradice.Config{})
			if err != nil {
				t.Fatal(err)
			}
			g, err := m.AddGuest("guest", paradice.Linux)
			if err != nil {
				t.Fatal(err)
			}
			if err := g.Paravirtualize(paradice.PathGPU); err != nil {
				t.Fatal(err)
			}
			res, err := workload.RunMatmul(m.Env, g.K, 24, 1)
			if err != nil || !res.Correct {
				t.Fatalf("pre-handover matmul: %+v %v", res, err)
			}

			faults.Install(m.Env, faults.New(1).FailAt(tc.point, 1))
			defer faults.Uninstall(m.Env)

			hoErr := m.HandoverDriverVM()
			if hoErr == nil {
				t.Fatal("handover succeeded despite injected failure")
			}
			if !errors.Is(hoErr, tc.want) {
				t.Fatalf("handover error %v, want %v", hoErr, tc.want)
			}
			if m.RestartEpoch() != 0 {
				t.Fatalf("epoch moved to %d on an aborted handover", m.RestartEpoch())
			}
			eps := m.Handovers()
			if len(eps) != 1 || !eps[0].Aborted || eps[0].Stage != tc.stage {
				t.Fatalf("episode: %+v, want aborted at %v", eps, tc.stage)
			}
			// The predecessor still serves: same machine, same epoch, next
			// operation succeeds without a reconnect.
			res, err = workload.RunMatmul(m.Env, g.K, 24, 2)
			if err != nil || !res.Correct {
				t.Fatalf("post-abort matmul: %+v %v", res, err)
			}
		})
	}
}

// TestRestartFailLeavesMachineUsable is the restart-side regression twin: an
// injected machine.restart.fail surfaces as ErrRestartFailed, the epoch does
// not move, and the machine keeps serving on the original driver VM.
func TestRestartFailLeavesMachineUsable(t *testing.T) {
	m, err := paradice.New(paradice.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := m.AddGuest("guest", paradice.Linux)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Paravirtualize(paradice.PathGPU); err != nil {
		t.Fatal(err)
	}

	faults.Install(m.Env, faults.New(1).FailAt("machine.restart.fail", 1))
	defer faults.Uninstall(m.Env)

	err = m.RestartDriverVM()
	if !errors.Is(err, paradice.ErrRestartFailed) {
		t.Fatalf("restart error %v, want ErrRestartFailed", err)
	}
	if m.RestartEpoch() != 0 {
		t.Fatalf("epoch moved to %d on a failed restart", m.RestartEpoch())
	}
	res, err := workload.RunMatmul(m.Env, g.K, 24, 3)
	if err != nil || !res.Correct {
		t.Fatalf("post-failed-restart matmul: %+v %v", res, err)
	}
}

// TestLifecycleSentinels pins the typed errors the lifecycle guards return,
// for both RestartDriverVM and HandoverDriverVM.
func TestLifecycleSentinels(t *testing.T) {
	t.Run("no-driver-vm", func(t *testing.T) {
		m, err := paradice.NewNative(paradice.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.RestartDriverVM(); !errors.Is(err, paradice.ErrNoDriverVM) {
			t.Fatalf("restart on native: %v, want ErrNoDriverVM", err)
		}
		if err := m.HandoverDriverVM(); !errors.Is(err, paradice.ErrNoDriverVM) {
			t.Fatalf("handover on native: %v, want ErrNoDriverVM", err)
		}
	})
	t.Run("data-isolation", func(t *testing.T) {
		m, err := paradice.New(paradice.Config{DataIsolation: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.RestartDriverVM(); !errors.Is(err, paradice.ErrDataIsolationRestart) {
			t.Fatalf("restart with DI: %v, want ErrDataIsolationRestart", err)
		}
		if err := m.HandoverDriverVM(); !errors.Is(err, paradice.ErrDataIsolationRestart) {
			t.Fatalf("handover with DI: %v, want ErrDataIsolationRestart", err)
		}
	})
	t.Run("in-progress", func(t *testing.T) {
		m, err := paradice.New(paradice.Config{})
		if err != nil {
			t.Fatal(err)
		}
		g, err := m.AddGuest("guest", paradice.Linux)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Paravirtualize(paradice.PathGPU); err != nil {
			t.Fatal(err)
		}
		// A restart on a sim proc holds the lifecycle lock for its 100 ms
		// boot; a handover attempted mid-boot must refuse, typed.
		var restartErr, overlapErr error
		m.Env.Spawn("restart", func(p *sim.Proc) {
			restartErr = m.RestartDriverVM()
		})
		m.Env.Spawn("overlap", func(p *sim.Proc) {
			p.Sleep(sim.Millisecond)
			overlapErr = m.HandoverDriverVM()
		})
		m.RunUntil(m.Env.Now().Add(300 * sim.Millisecond))
		if restartErr != nil {
			t.Fatalf("restart: %v", restartErr)
		}
		if !errors.Is(overlapErr, paradice.ErrRestartInProgress) {
			t.Fatalf("overlapping handover: %v, want ErrRestartInProgress", overlapErr)
		}
	})
}

// TestWithReopenAcrossHandover races a WithReopen client loop against a
// planned handover on both transports: every operation must land — on the
// predecessor, parked through the drain, or on the successor — without a
// spurious ENODEV ever reaching the library.
func TestWithReopenAcrossHandover(t *testing.T) {
	for _, mode := range []paradice.Mode{paradice.Interrupts, paradice.Polling} {
		name := "interrupts"
		if mode == paradice.Polling {
			name = "polling"
		}
		t.Run(name, func(t *testing.T) {
			m, g := sinkMachine(t, paradice.Config{Mode: mode})

			var opErrs []error
			client, err := g.K.NewProcess("client")
			if err != nil {
				t.Fatal(err)
			}
			client.SpawnTask("loop", func(tk *kernel.Task) {
				buf, _ := client.Alloc(64)
				for i := 0; i < 60; i++ {
					err := usrlib.WithReopen(tk, load.SinkPath, devfile.ORdWr, 5, func(fd int) error {
						_, err := tk.Ioctl(fd, load.Cmd(64), buf)
						return err
					})
					if err != nil {
						opErrs = append(opErrs, err)
					}
					tk.Sim().Sleep(2 * sim.Millisecond)
				}
			})

			var hoErr error
			m.Env.Spawn("handover-driver", func(p *sim.Proc) {
				p.Sleep(sim.Millisecond)
				hoErr = m.HandoverDriverVM()
			})
			m.Run()

			if hoErr != nil {
				t.Fatalf("handover: %v", hoErr)
			}
			for _, err := range opErrs {
				if kernel.IsErrno(err, kernel.ENODEV) {
					t.Fatalf("WithReopen surfaced ENODEV across a planned handover: %v", err)
				}
			}
			if len(opErrs) != 0 {
				t.Fatalf("WithReopen failed %d times across handover: %v", len(opErrs), opErrs[0])
			}
			eps := m.Handovers()
			if len(eps) != 1 || eps[0].Aborted {
				t.Fatalf("episode: %+v", eps)
			}
		})
	}
}

// TestRequestHandoverViaSupervisor runs the planned handover on the
// supervisor's watchdog proc: the maintenance episode lands in the
// state-change log, the watchdog never mistakes the drain for an outage,
// and the machine stays Healthy on the successor.
func TestRequestHandoverViaSupervisor(t *testing.T) {
	m, g := sinkMachine(t, paradice.Config{Mode: paradice.Polling, Supervision: true})

	if err := m.RequestHandover(); err != nil {
		t.Fatal(err)
	}
	m.RunUntil(m.Env.Now().Add(300 * sim.Millisecond))

	eps := m.Handovers()
	if len(eps) != 1 || eps[0].Aborted || eps[0].Stage != handover.StageDone {
		t.Fatalf("episode: %+v, want one committed handover", eps)
	}
	if m.RestartEpoch() != 1 {
		t.Fatalf("restart epoch %d, want 1", m.RestartEpoch())
	}
	s := m.Supervisor()
	if s.State() != supervise.StateHealthy {
		t.Fatalf("supervisor state %v after planned handover, want Healthy", s.State())
	}
	logged := false
	for _, ch := range s.Changes() {
		if ch.State == supervise.StateRestarting {
			t.Fatalf("supervisor entered Restarting during a planned handover: %+v", ch)
		}
		if strings.Contains(ch.Reason, "maintenance: driver-VM handover") {
			logged = true
		}
	}
	if !logged {
		t.Fatalf("maintenance episode missing from the state-change log: %+v", s.Changes())
	}
	// The successor serves: a fresh operation works without intervention.
	var opErr error
	p, _ := g.K.NewProcess("probe")
	p.SpawnTask("op", func(tk *kernel.Task) {
		buf, _ := p.Alloc(64)
		opErr = usrlib.WithReopen(tk, load.SinkPath, devfile.ORdWr, 5, func(fd int) error {
			_, err := tk.Ioctl(fd, load.Cmd(64), buf)
			return err
		})
	})
	m.RunUntil(m.Env.Now().Add(50 * sim.Millisecond))
	if opErr != nil {
		t.Fatalf("post-handover op: %v", opErr)
	}
}
