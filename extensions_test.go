package paradice_test

// Tests for the paper's proposed extensions implemented in this
// reproduction: software VSync emulation (§5.3's fix for the interrupt data
// isolation loses) and the second input device of Table 1.

import (
	"testing"

	"paradice"
	"paradice/internal/devfile"
	"paradice/internal/device/input"
	"paradice/internal/driver/drm"
	"paradice/internal/driver/evdev"
	"paradice/internal/kernel"
	"paradice/internal/sim"
	"paradice/internal/usrlib"
)

// Software VSync caps a fast render loop at the refresh rate, restoring the
// frame-rate ceiling that disabling hardware VSync interrupts lost.
func TestSoftVSyncCapsFPS(t *testing.T) {
	m, gk := guestKernel(t, paradice.Config{DataIsolation: true}, paradice.PathGPU)
	m.DRM.EnableSoftVSync(60)
	p, err := gk.NewProcess("game")
	if err != nil {
		t.Fatal(err)
	}
	var fps float64
	p.SpawnTask("render", func(tk *kernel.Task) {
		g, err := usrlib.OpenGPU(tk, paradice.PathGPU)
		if err != nil {
			t.Error(err)
			return
		}
		fb, err := g.CreateBO(4096)
		if err != nil {
			t.Error(err)
			return
		}
		varg, _ := p.Alloc(8)
		const frames = 30
		start := tk.Sim().Now()
		for f := 0; f < frames; f++ {
			// A cheap frame (1µs of GPU work) followed by a vsync wait.
			if err := g.Draw(fb, 0, 1000); err != nil {
				t.Error(err)
				return
			}
			if _, err := tk.Ioctl(g.FD, drm.IoctlWaitVSync, varg); err != nil {
				t.Error(err)
				return
			}
		}
		fps = float64(frames) / tk.Sim().Now().Sub(start).Seconds()
	})
	m.Run()
	m.DRM.DisableSoftVSync()
	if fps < 55 || fps > 61 {
		t.Fatalf("vsync-capped FPS = %.1f, want ~60", fps)
	}
}

func TestVSyncWithoutEmulationFails(t *testing.T) {
	m, gk := guestKernel(t, paradice.Config{}, paradice.PathGPU)
	_ = m
	p, _ := gk.NewProcess("app")
	p.RunTask("main", func(tk *kernel.Task) {
		g, err := usrlib.OpenGPU(tk, paradice.PathGPU)
		if err != nil {
			t.Fatal(err)
		}
		varg, _ := p.Alloc(8)
		if _, err := tk.Ioctl(g.FD, drm.IoctlWaitVSync, varg); !kernel.IsErrno(err, kernel.EINVAL) {
			t.Fatalf("vsync wait without emulation: %v", err)
		}
	})
}

// The keyboard is a second evdev device with its own device file, forwarded
// through its own CVD channel.
func TestKeyboardParavirtualized(t *testing.T) {
	m, gk := guestKernel(t, paradice.Config{}, paradice.PathKeyboard)
	p, _ := gk.NewProcess("term")
	var events []input.Event
	p.SpawnTask("reader", func(tk *kernel.Task) {
		fd, err := tk.Open(paradice.PathKeyboard, devfile.ORdOnly)
		if err != nil {
			t.Error(err)
			return
		}
		buf, _ := p.Alloc(evdev.EventSize * 4)
		for len(events) < 2 {
			n, err := tk.Read(fd, buf, evdev.EventSize*4)
			if err != nil {
				t.Error(err)
				return
			}
			raw := make([]byte, n)
			_ = p.Mem.Read(buf, raw)
			for off := 0; off+evdev.EventSize <= n; off += evdev.EventSize {
				events = append(events, evdev.DecodeEvent(raw[off:]))
			}
		}
	})
	// Key press + release.
	m.Keyboard.InjectAt(sim.Time(sim.Millisecond), input.EvKey, 30, 1)
	m.Keyboard.InjectAt(sim.Time(2*sim.Millisecond), input.EvKey, 30, 0)
	m.Run()
	if len(events) != 2 || events[0].Value != 1 || events[1].Value != 0 {
		t.Fatalf("events = %+v", events)
	}
	if _, ok := gk.SysInfo("input/" + paradice.PathKeyboard + "/name"); !ok {
		t.Fatal("keyboard device info module missing")
	}
}

// The guest sees the device info modules for everything it paravirtualized
// (§5.1: applications need this to pick libraries).
func TestDeviceInfoModulesInstalled(t *testing.T) {
	m, err := paradice.New(paradice.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := m.AddGuest("g", paradice.Linux)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Paravirtualize(paradice.PathGPU, paradice.PathCamera, paradice.PathAudio, paradice.PathNetmap); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"bus/pci0", "pci0/gpu/vendor", "pci0/gpu/driver",
		"video//dev/video0/modes", "sound//dev/snd/pcmC0D0p/rates",
		"net/em0/driver",
	} {
		if _, ok := g.K.SysInfo(key); !ok {
			t.Fatalf("guest missing device info %q", key)
		}
	}
	if v, _ := g.K.SysInfo("pci0/gpu/vendor"); v != "0x1002" {
		t.Fatalf("vendor = %s", v)
	}
}
