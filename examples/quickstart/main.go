// Quickstart: boot a Paradice machine, add a guest VM, paravirtualize the
// GPU's device file into it, and run an OpenCL-style matrix multiplication
// from the guest. The guest's input matrices travel through mmap'ed device
// memory, the command submission crosses the CVD and the hypervisor's
// grant-checked memory operations, the simulated GPU computes the real
// product, and the example verifies it against a CPU reference.
package main

import (
	"fmt"
	"log"

	"paradice"
	"paradice/internal/workload"
)

func main() {
	// A Paradice machine: hypervisor, driver VM owning the devices, and the
	// CVD ready to serve guests.
	m, err := paradice.New(paradice.Config{})
	if err != nil {
		log.Fatal(err)
	}

	guest, err := m.AddGuest("guest1", paradice.Linux)
	if err != nil {
		log.Fatal(err)
	}
	// Create the virtual /dev/dri/card0 in the guest, mirroring the driver
	// VM's real device file.
	if err := guest.Paravirtualize(paradice.PathGPU); err != nil {
		log.Fatal(err)
	}

	fmt.Println("paradice quickstart: order-64 matrix multiplication on the guest's GPU")
	res, err := workload.RunMatmul(m.Env, guest.K, 64, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  experiment time: %v (simulated)\n", res.Elapsed)
	fmt.Printf("  product verified against CPU reference: %v\n", res.Correct)
	fmt.Printf("  forwarded file operations: %d\n", guest.Frontends[paradice.PathGPU].RoundTrips)
	fmt.Printf("  GPU commands executed: %d, memory faults: %d\n", m.GPU.Executed, m.GPU.Faults)
	if !res.Correct {
		log.Fatal("verification failed")
	}
}
