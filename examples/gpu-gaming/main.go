// gpu-gaming: two guest VMs share one GPU under the foreground-background
// model of §5.1 — the foreground guest renders its game while the
// background guest's render loop pauses, and mouse notifications reach only
// the foreground guest. Halfway through, the "user" switches virtual
// terminals and the roles swap.
package main

import (
	"fmt"
	"log"

	"paradice"
	"paradice/internal/device/input"
	"paradice/internal/kernel"
	"paradice/internal/sim"
	"paradice/internal/usrlib"
	"paradice/internal/workload"
)

func main() {
	m, err := paradice.New(paradice.Config{})
	if err != nil {
		log.Fatal(err)
	}
	g1 := addGamer(m, "vt1")
	g2 := addGamer(m, "vt2")
	m.SetForeground(g1)

	frames := map[string]int{}
	sigios := map[string]int{}

	// Each guest runs a Tremulous-style render loop that pauses while
	// backgrounded, plus an input listener armed with fasync.
	spec := workload.GameTremulous.GL(workload.GameResolutions[0])
	for _, g := range []*paradice.Guest{g1, g2} {
		g := g
		startGame(m, g, spec, frames)
		startListener(g, sigios)
	}

	// The user wiggles the mouse throughout and hits the VT-switch key
	// combination at t=1s.
	for i := 0; i < 20; i++ {
		m.Mouse.InjectAt(sim.Time(i)*sim.Time(100*sim.Millisecond), input.EvRel, 0, 1)
	}
	m.Env.At(sim.Time(1*sim.Second), func() {
		fmt.Println("  [t=1s] VT switch: vt2 comes to the foreground")
		m.SetForeground(g2)
	})

	m.RunUntil(sim.Time(2 * sim.Second))

	fmt.Println("\ntwo guests sharing one GPU, foreground-background model:")
	for _, g := range []*paradice.Guest{g1, g2} {
		name := g.K.Name
		fmt.Printf("  %s: %3d frames rendered, %2d input notifications\n",
			name, frames[name], sigios[name])
	}
	d1, d2 := frames[g1.K.Name], frames[g2.K.Name]
	if d1 == 0 || d2 == 0 {
		log.Fatal("a guest never rendered; VT switching failed")
	}
	fmt.Println("\neach guest rendered only during its foreground interval, and")
	fmt.Println("input notifications followed the foreground guest (§5.1).")
}

func addGamer(m *paradice.Machine, name string) *paradice.Guest {
	g, err := m.AddGuest(name, paradice.Linux)
	if err != nil {
		log.Fatal(err)
	}
	if err := g.Paravirtualize(paradice.PathGPU, paradice.PathMouse); err != nil {
		log.Fatal(err)
	}
	return g
}

func startGame(m *paradice.Machine, g *paradice.Guest, spec workload.GLSpec, frames map[string]int) {
	p, err := g.NewProcess("game")
	if err != nil {
		log.Fatal(err)
	}
	p.SpawnTask("render", func(t *kernel.Task) {
		ctx, err := usrlib.OpenGPU(t, paradice.PathGPU)
		if err != nil {
			log.Fatal(err)
		}
		fb, err := ctx.CreateBO(1 << 20)
		if err != nil {
			log.Fatal(err)
		}
		for {
			g.WaitForeground(t) // pause while backgrounded
			t.Sim().Advance(sim.Duration(spec.CPUPrep))
			if err := ctx.Draw(fb, 0, spec.DrawCycles); err != nil {
				log.Fatal(err)
			}
			frames[g.K.Name]++
		}
	})
}

func startListener(g *paradice.Guest, sigios map[string]int) {
	p, err := g.NewProcess("input-listener")
	if err != nil {
		log.Fatal(err)
	}
	p.OnSIGIO(func() { sigios[g.K.Name]++ })
	p.SpawnTask("arm", func(t *kernel.Task) {
		fd, err := t.Open(paradice.PathMouse, 0x800 /* nonblock */)
		if err != nil {
			log.Fatal(err)
		}
		if err := t.SetFasync(fd, true); err != nil {
			log.Fatal(err)
		}
	})
}
