// netmap-pktgen: the §6.1.2 experiment as a runnable program. A guest VM
// (Linux, then FreeBSD over the same Linux driver VM) transmits 64-byte
// packets through the paravirtualized /dev/netmap at several batch sizes,
// against the native baseline — the data behind Figure 2, including the
// polling-mode crossover at batch 4.
package main

import (
	"fmt"
	"log"

	"paradice"
	"paradice/internal/kernel"
	"paradice/internal/workload"
)

const (
	pkts   = 100000
	pktLen = 64
)

func main() {
	batches := []int{1, 4, 16, 64, 256}

	fmt.Println("netmap pkt-gen, 64-byte packets, transmit rate in Mpps")
	fmt.Printf("%-22s", "batch:")
	for _, b := range batches {
		fmt.Printf("%8d", b)
	}
	fmt.Println()

	run := func(name string, build func() (*paradice.Machine, *kernel.Kernel)) {
		fmt.Printf("%-22s", name)
		for _, b := range batches {
			m, k := build()
			res, err := workload.RunPktGen(m.Env, k, b, pkts, pktLen)
			if err != nil {
				log.Fatalf("%s batch %d: %v", name, b, err)
			}
			fmt.Printf("%8.3f", res.MPPS)
		}
		fmt.Println()
	}

	run("native", func() (*paradice.Machine, *kernel.Kernel) {
		m, err := paradice.NewNative(paradice.Config{})
		if err != nil {
			log.Fatal(err)
		}
		return m, m.AppKernel()
	})
	run("paradice (interrupts)", func() (*paradice.Machine, *kernel.Kernel) {
		return guest(paradice.Config{}, paradice.Linux)
	})
	run("paradice (polling)", func() (*paradice.Machine, *kernel.Kernel) {
		return guest(paradice.Config{Mode: paradice.Polling}, paradice.Linux)
	})
	run("freebsd guest (int.)", func() (*paradice.Machine, *kernel.Kernel) {
		return guest(paradice.Config{}, paradice.FreeBSD)
	})

	fmt.Println("\nnote how polling reaches native at batch 4 while the")
	fmt.Println("interrupt transport needs much larger batches to amortize the")
	fmt.Println("two inter-VM interrupts per forwarded poll (§6.1.2).")
}

func guest(cfg paradice.Config, flavor kernel.Flavor) (*paradice.Machine, *kernel.Kernel) {
	m, err := paradice.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	g, err := m.AddGuest("guest", flavor)
	if err != nil {
		log.Fatal(err)
	}
	if err := g.Paravirtualize(paradice.PathNetmap); err != nil {
		log.Fatal(err)
	}
	return m, g.K
}
