// multi-vm-opencl: the §6.1.4 concurrency experiment (Figure 6). One, two,
// and three guest VMs run the OpenCL matrix multiplication simultaneously
// on one GPU shared through Paradice; experiment time scales roughly
// linearly with the number of guests because the command processor
// time-shares between them.
package main

import (
	"fmt"
	"log"

	"paradice"
	"paradice/internal/workload"
)

func main() {
	const order = 256
	const runs = 3
	fmt.Printf("OpenCL matmul (order %d, %d runs per guest) on one shared GPU\n\n", order, runs)
	for nguests := 1; nguests <= 3; nguests++ {
		m, err := paradice.New(paradice.Config{})
		if err != nil {
			log.Fatal(err)
		}
		results := make([][]workload.MatmulResult, nguests)
		errs := make([][]error, nguests)
		for i := 0; i < nguests; i++ {
			g, err := m.AddGuest(fmt.Sprintf("vm%d", i+1), paradice.Linux)
			if err != nil {
				log.Fatal(err)
			}
			if err := g.Paravirtualize(paradice.PathGPU); err != nil {
				log.Fatal(err)
			}
			results[i] = make([]workload.MatmulResult, runs)
			errs[i] = make([]error, runs)
			workload.StartMatmulLoop(g.K, order, runs, results[i], errs[i])
		}
		m.Run()
		fmt.Printf("%d guest VM(s):\n", nguests)
		for i := 0; i < nguests; i++ {
			var total float64
			for r := 0; r < runs; r++ {
				if errs[i][r] != nil {
					log.Fatalf("vm%d run %d: %v", i+1, r, errs[i][r])
				}
				if !results[i][r].Correct {
					log.Fatalf("vm%d run %d: wrong product", i+1, r)
				}
				total += results[i][r].Elapsed.Seconds()
			}
			fmt.Printf("  vm%d: average experiment time %.3fs (all products verified)\n",
				i+1, total/runs)
		}
	}
	fmt.Println("\nexperiment time grows with the number of guests sharing the")
	fmt.Println("GPU, as in Figure 6: the GPU processing time is divided between")
	fmt.Println("the guest VMs.")
}
