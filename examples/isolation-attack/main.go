// isolation-attack: the threat model of §4 demonstrated end to end. A
// malicious guest is assumed to have fully compromised the driver VM
// through driver bugs; this program then attempts, as the compromised
// driver VM, each attack §4.2's device data isolation must stop:
//
//  1. using the hypervisor memory-operation API to reach the victim's
//     buffers (refused: region ownership check),
//  2. reading the victim's protected memory with the driver VM's own CPU
//     (refused: EPT permissions),
//  3. programming the device to copy the victim's buffer into the
//     attacker's region (refused: IOMMU live set + MC window),
//
// plus a fault-isolation attack: performing a memory operation the guest
// never declared in its grant table (refused: §4.1's strict runtime check).
package main

import (
	"fmt"
	"log"

	"paradice"
	"paradice/internal/device/gpu"
	"paradice/internal/grant"
	"paradice/internal/kernel"
	"paradice/internal/mem"
	"paradice/internal/sim"
	"paradice/internal/usrlib"
)

func main() {
	m, err := paradice.New(paradice.Config{DataIsolation: true})
	if err != nil {
		log.Fatal(err)
	}
	victim := addGuest(m, "victim")
	attacker := addGuest(m, "attacker")

	secret := []byte("medical-images.raw")
	writeVictimTexture(m, victim, secret)
	fmt.Printf("victim wrote %q into a GPU texture through its mmap'ed buffer\n\n", secret)
	fmt.Println("the attacker has compromised the driver VM; attempting §4.2's attacks:")

	// Attack 1: hypervisor API with a forged-but-valid attacker grant.
	p, err := attacker.NewProcess("attacker-app")
	if err != nil {
		log.Fatal(err)
	}
	va := mem.GuestVirt(0x5000_0000)
	if err := p.PT.EnsureIntermediates(va); err != nil {
		log.Fatal(err)
	}
	ref, err := attacker.Grants.Declare(p.PT.Root(), []grant.Op{
		{Kind: grant.KindMapPage, VA: va, Len: mem.PageSize},
	})
	if err != nil {
		log.Fatal(err)
	}
	err = m.HV.MapToGuest(attacker.VM, ref, va, m.DriverVM, m.DRM.VRAMGPA())
	report("map victim's page into attacker via hypervisor API", err)

	// Attack 2: driver VM CPU reads the protected page.
	buf := make([]byte, len(secret))
	err = m.DriverVM.Space.Read(m.DRM.VRAMGPA(), buf)
	report("read victim's texture with the driver VM's CPU", err)

	// Attack 3: program the device to copy across regions. First make the
	// attacker's region active with a legitimate render, then inject a raw
	// engine command (the compromised driver can do that).
	renderOnce(m, attacker)
	faults := m.GPU.Faults
	m.GPU.Submit([]gpu.EngineCmd{
		gpu.Cmd(gpu.OpCopy, 0, m.GPU.VRAMSize()/2, uint64(len(secret))),
	}, 4242)
	m.RunUntil(m.Env.Now().Add(5 * sim.Millisecond))
	if m.GPU.Faults > faults {
		report("program the GPU to copy the victim's VRAM into the attacker's region",
			fmt.Errorf("blocked at the memory-controller window (GPU fault)"))
	} else {
		report("program the GPU to copy the victim's VRAM into the attacker's region", nil)
	}

	// Fault isolation: an undeclared memory operation from the (compromised)
	// driver VM against the attacker's own guest is refused too.
	err = m.HV.CopyToGuest(attacker.VM, ref, 0x4000_0000, []byte("pwn"))
	report("copy to a guest address outside any grant", err)

	fmt.Println("\nall attacks stopped; the victim's data never left its region.")
}

func report(what string, err error) {
	if err != nil {
		fmt.Printf("  BLOCKED  %-68s %v\n", what, err)
		return
	}
	fmt.Printf("  LEAKED!  %s\n", what)
	log.Fatal("an attack succeeded — isolation is broken")
}

func addGuest(m *paradice.Machine, name string) *paradice.Guest {
	g, err := m.AddGuest(name, paradice.Linux)
	if err != nil {
		log.Fatal(err)
	}
	if err := g.Paravirtualize(paradice.PathGPU); err != nil {
		log.Fatal(err)
	}
	return g
}

func writeVictimTexture(m *paradice.Machine, g *paradice.Guest, secret []byte) {
	p, err := g.NewProcess("victim-app")
	if err != nil {
		log.Fatal(err)
	}
	p.SpawnTask("main", func(t *kernel.Task) {
		ctx, err := usrlib.OpenGPU(t, paradice.PathGPU)
		if err != nil {
			log.Fatal(err)
		}
		bo, err := ctx.CreateBO(mem.PageSize)
		if err != nil {
			log.Fatal(err)
		}
		bva, err := ctx.MapBO(bo, mem.PageSize)
		if err != nil {
			log.Fatal(err)
		}
		if err := p.UserWrite(t, bva, secret); err != nil {
			log.Fatal(err)
		}
		fb, err := ctx.CreateBO(mem.PageSize)
		if err != nil {
			log.Fatal(err)
		}
		if err := ctx.Draw(fb, bo, 1000); err != nil {
			log.Fatal(err)
		}
	})
	m.Run()
}

func renderOnce(m *paradice.Machine, g *paradice.Guest) {
	p, err := g.NewProcess("render-once")
	if err != nil {
		log.Fatal(err)
	}
	p.SpawnTask("main", func(t *kernel.Task) {
		ctx, err := usrlib.OpenGPU(t, paradice.PathGPU)
		if err != nil {
			log.Fatal(err)
		}
		fb, err := ctx.CreateBO(mem.PageSize)
		if err != nil {
			log.Fatal(err)
		}
		if err := ctx.Draw(fb, 0, 1000); err != nil {
			log.Fatal(err)
		}
	})
	m.Run()
}
