package paradice_test

// Integration tests for driver-VM supervision on a full Paradice machine:
// the watchdog detects a fault-injected backend death and heals it with no
// manual RestartDriverVM call; a crash-looping fault plan climbs the backoff
// schedule into degraded mode; degradation is selective per device; a
// slow-but-healthy driver VM is never restarted; and the restart-epoch guard
// rejects concurrent restarts.

import (
	"strings"
	"testing"

	"paradice"
	"paradice/internal/devfile"
	"paradice/internal/driver/drm"
	"paradice/internal/faults"
	"paradice/internal/kernel"
	"paradice/internal/sim"
	"paradice/internal/supervise"
	"paradice/internal/usrlib"
)

// gemCreateOn issues one GEM-create ioctl — a minimal operation needing live
// per-fd driver state, so it fails on a dead backend or a stale fd.
func gemCreateOn(tk *kernel.Task, fd int) error {
	arg, err := tk.Proc.Alloc(16)
	if err != nil {
		return err
	}
	buf := make([]byte, 16)
	buf[1] = 0x10 // size = 4096
	if err := tk.Proc.Mem.Write(arg, buf); err != nil {
		return err
	}
	_, err = tk.Ioctl(fd, drm.IoctlGemCreate, arg)
	return err
}

func newSupervisedMachine(t *testing.T, cfg paradice.Config) (*paradice.Machine, *paradice.Guest) {
	t.Helper()
	cfg.Supervision = true
	m, err := paradice.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := m.AddGuest("guest", paradice.Linux)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Paravirtualize(paradice.PathGPU, paradice.PathMouse); err != nil {
		t.Fatal(err)
	}
	return m, g
}

// The headline acceptance scenario: a fault kills the GPU channel's backend
// mid-workload; supervision detects and restarts the driver VM with no
// manual call; the guest's in-flight/failed operation surfaces a real errno,
// and a paced reopen succeeds against the healed machine.
func TestSupervisionHealsKilledBackend(t *testing.T) {
	m, g := newSupervisedMachine(t, paradice.Config{})

	var firstErr error
	recovered := false
	p, err := g.NewProcess("victim")
	if err != nil {
		t.Fatal(err)
	}
	p.SpawnTask("main", func(tk *kernel.Task) {
		fd, err := tk.Open(paradice.PathGPU, devfile.ORdWr)
		if err != nil {
			t.Error(err)
			return
		}
		// Steady workload until the injected death breaks it.
		for i := 0; i < 500; i++ {
			if err := gemCreateOn(tk, fd); err != nil {
				firstErr = err
				break
			}
			tk.Sim().Sleep(sim.Millisecond)
		}
		if firstErr == nil {
			return // kill never landed; the test fails below
		}
		// Application-side recovery: pace reopen attempts while the
		// supervisor heals the machine. No manual restart anywhere.
		for tries := 0; tries < 200; tries++ {
			nfd, err := tk.Open(paradice.PathGPU, devfile.ORdWr)
			if err == nil {
				if err := gemCreateOn(tk, nfd); err != nil {
					t.Errorf("post-heal op: %v", err)
					return
				}
				recovered = true
				return
			}
			if !usrlib.IsRestartErr(err) {
				t.Errorf("reopen: non-transient %v", err)
				return
			}
			tk.Sim().Sleep(5 * sim.Millisecond)
		}
	})

	m.Env.After(50*sim.Millisecond, func() { g.Backends[paradice.PathGPU].Kill() })
	m.RunUntil(m.Env.Now().Add(2 * sim.Second))

	if firstErr == nil {
		t.Fatal("workload never observed the injected death")
	}
	if !usrlib.IsRestartErr(firstErr) {
		t.Fatalf("workload saw %v, want a restart-transient errno", firstErr)
	}
	if !recovered {
		t.Fatal("guest did not recover after supervised heal")
	}
	if got := m.RestartEpoch(); got != 1 {
		t.Fatalf("restart epoch = %d, want 1 automatic restart", got)
	}
	sup := m.Supervisor()
	if sup.State() != supervise.StateHealthy {
		t.Fatalf("supervisor state = %v, want healthy", sup.State())
	}
	mttr := sup.MTTR()
	if mttr <= 0 {
		t.Fatal("no completed recovery episode in the change log")
	}
	t.Logf("MTTR (backoff + driver VM reboot + verify): %v", mttr)
}

// A crash-looping fault plan — every replacement backend dies instantly —
// must exhaust the restart budget and land in degraded mode, with the dead
// device failing fast ENODEV.
func TestSupervisionCrashLoopLandsDegraded(t *testing.T) {
	cfg := paradice.Config{
		Supervise: supervise.Config{
			HeartbeatEvery: sim.Millisecond,
			BackoffBase:    sim.Millisecond,
			BackoffCap:     8 * sim.Millisecond,
			MaxRestarts:    3,
		},
	}
	m, g := newSupervisedMachine(t, cfg)
	plan := faults.New(1).Probability("cvd.backend.die", 1.0)
	faults.Install(m.Env, plan)
	defer faults.Uninstall(m.Env)

	m.RunUntil(m.Env.Now().Add(2 * sim.Second))

	sup := m.Supervisor()
	if sup.State() != supervise.StateDegraded {
		t.Fatalf("supervisor state = %v, want degraded", sup.State())
	}
	if !sup.Stopped() {
		t.Fatal("degraded supervisor should have stopped")
	}
	if got := int(sup.Restarts); got != cfg.Supervise.MaxRestarts {
		t.Fatalf("restart attempts = %d, want the full budget %d", got, cfg.Supervise.MaxRestarts)
	}
	chg := sup.Changes()
	if len(chg) == 0 || chg[len(chg)-1].State != supervise.StateDegraded {
		t.Fatalf("change log does not end degraded: %+v", chg)
	}

	// Everything is dead here, so every channel degraded: guest operations
	// fail fast with ENODEV instead of hanging.
	faults.Uninstall(m.Env)
	var openErr error
	p, _ := g.NewProcess("late")
	p.SpawnTask("main", func(tk *kernel.Task) {
		_, openErr = tk.Open(paradice.PathGPU, devfile.ORdWr)
	})
	m.RunUntil(m.Env.Now().Add(10 * sim.Millisecond))
	if !kernel.IsErrno(openErr, kernel.ENODEV) {
		t.Fatalf("open on degraded device: %v, want ENODEV", openErr)
	}
}

// Restart-time failures (the replacement driver VM refuses to boot) climb
// the exact backoff schedule, and degradation is selective: only the dead
// channel fails ENODEV, the healthy one keeps serving.
func TestSupervisionBackoffScheduleAndSelectiveDegrade(t *testing.T) {
	cfg := paradice.Config{
		Supervise: supervise.Config{
			HeartbeatEvery: sim.Millisecond,
			BackoffBase:    sim.Millisecond,
			BackoffCap:     4 * sim.Millisecond,
			MaxRestarts:    4,
		},
	}
	m, g := newSupervisedMachine(t, cfg)
	// Every restart attempt fails before touching the machine; the GPU
	// backend is killed once.
	plan := faults.New(1).Probability("machine.restart.fail", 1.0)
	faults.Install(m.Env, plan)
	defer faults.Uninstall(m.Env)
	m.Env.After(10*sim.Millisecond, func() { g.Backends[paradice.PathGPU].Kill() })

	m.RunUntil(m.Env.Now().Add(sim.Second))

	sup := m.Supervisor()
	if sup.State() != supervise.StateDegraded {
		t.Fatalf("supervisor state = %v, want degraded", sup.State())
	}
	if got := m.RestartEpoch(); got != 0 {
		t.Fatalf("restart epoch = %d, want 0 (every attempt failed)", got)
	}

	// Failed attempts consume no virtual time, so consecutive Restarting
	// entries are spaced by exactly the backoff schedule: 1ms, 2ms, 4ms.
	var at []sim.Time
	for _, c := range sup.Changes() {
		if c.State == supervise.StateRestarting {
			at = append(at, c.At)
		}
	}
	if len(at) != cfg.Supervise.MaxRestarts {
		t.Fatalf("%d restarting entries, want %d", len(at), cfg.Supervise.MaxRestarts)
	}
	want := []sim.Duration{sim.Millisecond, 2 * sim.Millisecond, 4 * sim.Millisecond}
	for i, w := range want {
		if got := at[i+1].Sub(at[i]); got != w {
			t.Fatalf("backoff gap %d = %v, want %v", i, got, w)
		}
	}

	// Selective degradation: GPU dead -> ENODEV; mouse untouched -> opens.
	faults.Uninstall(m.Env)
	var gpuErr, mouseErr error
	p, _ := g.NewProcess("probe")
	p.SpawnTask("main", func(tk *kernel.Task) {
		_, gpuErr = tk.Open(paradice.PathGPU, devfile.ORdWr)
		var fd int
		fd, mouseErr = tk.Open(paradice.PathMouse, devfile.ORdOnly)
		if mouseErr == nil {
			mouseErr = tk.Close(fd)
		}
	})
	m.RunUntil(m.Env.Now().Add(10 * sim.Millisecond))
	if !kernel.IsErrno(gpuErr, kernel.ENODEV) {
		t.Fatalf("dead GPU open: %v, want ENODEV", gpuErr)
	}
	if mouseErr != nil {
		t.Fatalf("healthy mouse must keep working, got %v", mouseErr)
	}
}

// A driver VM that answers every heartbeat slowly — but inside the timeout —
// must never be restarted: the no-false-positive property the timeout and
// miss threshold exist for.
func TestSupervisionNoFalsePositiveOnSlowDriver(t *testing.T) {
	cfg := paradice.Config{
		Supervise: supervise.Config{
			HeartbeatEvery:   2 * sim.Millisecond,
			HeartbeatTimeout: 200 * sim.Microsecond,
		},
	}
	m, _ := newSupervisedMachine(t, cfg)
	// Sustained latency just under the deadline on every heartbeat of the
	// run (two channels x ~25 sweeps).
	plan := faults.New(1)
	for hit := 1; hit <= 80; hit++ {
		plan.FailAtWith("cvd.heartbeat.delay", hit, uint64(150*sim.Microsecond))
	}
	faults.Install(m.Env, plan)
	defer faults.Uninstall(m.Env)

	m.RunUntil(m.Env.Now().Add(50 * sim.Millisecond))

	sup := m.Supervisor()
	if got := m.RestartEpoch(); got != 0 {
		t.Fatalf("slow-but-healthy driver VM was restarted %d times", got)
	}
	if sup.State() != supervise.StateHealthy {
		t.Fatalf("supervisor state = %v, want healthy", sup.State())
	}
	if len(sup.Changes()) != 0 {
		t.Fatalf("state changes on a healthy machine: %+v", sup.Changes())
	}
	if sup.HeartbeatsMissed != 0 {
		t.Fatalf("%d heartbeats missed; delays were inside the timeout", sup.HeartbeatsMissed)
	}
	if plan.Injected("cvd.heartbeat.delay") == 0 {
		t.Fatal("delay faults never fired; the test exercised nothing")
	}
}

// The restart epoch guard: the reboot yields the simulated CPU mid-restart,
// and a second caller arriving in that window gets a clean error instead of
// a half-torn-down machine.
func TestRestartEpochGuardsConcurrentRestart(t *testing.T) {
	m, err := paradice.New(paradice.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := m.AddGuest("guest", paradice.Linux)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Paravirtualize(paradice.PathGPU); err != nil {
		t.Fatal(err)
	}
	var err1, err2 error
	m.Env.Spawn("op1", func(p *sim.Proc) { err1 = m.RestartDriverVM() })
	m.Env.Spawn("op2", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond) // lands inside op1's 100ms reboot window
		err2 = m.RestartDriverVM()
	})
	m.Run()
	if err1 != nil {
		t.Fatalf("first restart: %v", err1)
	}
	if err2 == nil || !strings.Contains(err2.Error(), "already in progress") {
		t.Fatalf("concurrent restart: err = %v, want 'already in progress'", err2)
	}
	if got := m.RestartEpoch(); got != 1 {
		t.Fatalf("restart epoch = %d, want 1", got)
	}
}

// Supervision requires a driver VM.
func TestSupervisionRequiresParadice(t *testing.T) {
	if _, err := paradice.NewNative(paradice.Config{Supervision: true}); err == nil {
		t.Fatal("native machine accepted Supervision")
	}
}

// MTTR sweep across watchdog heartbeat intervals — the numbers behind the
// "Recovery" section of EXPERIMENTS.md. Failure mode: a rogue driver VM that
// stops answering heartbeats (backend alive, acks dropped), so detection
// genuinely costs Misses x (interval + timeout).
func TestSupervisionMTTRSweep(t *testing.T) {
	const onset = 10 * sim.Millisecond
	for _, every := range []sim.Duration{sim.Millisecond, 2 * sim.Millisecond,
		5 * sim.Millisecond, 10 * sim.Millisecond} {
		cfg := paradice.Config{Supervise: supervise.Config{HeartbeatEvery: every}}
		m, _ := newSupervisedMachine(t, cfg)
		scfg := m.Supervisor().Config()
		// Exactly enough scripted drops (two channels x Misses sweeps) to
		// push the first-swept channel past the miss threshold; at most one
		// drop survives into the healed machine, where a single isolated
		// miss never reaches the threshold. The restarted driver VM's
		// heartbeats beyond that are unscripted and ack normally.
		plan := faults.New(1)
		for hit := 1; hit <= 2*scfg.Misses; hit++ {
			plan.FailAtWith("cvd.heartbeat.drop", hit, 0)
		}
		m.Env.After(onset, func() { faults.Install(m.Env, plan) })

		m.RunUntil(m.Env.Now().Add(2 * sim.Second))
		faults.Uninstall(m.Env)

		sup := m.Supervisor()
		if m.RestartEpoch() != 1 || sup.State() != supervise.StateHealthy {
			t.Fatalf("every=%v: epoch=%d state=%v, want one clean heal",
				every, m.RestartEpoch(), sup.State())
		}
		var healthyAt sim.Time
		for _, c := range sup.Changes() {
			if c.State == supervise.StateHealthy {
				healthyAt = c.At
			}
		}
		recovery := healthyAt.Sub(sim.Time(onset))
		t.Logf("HeartbeatEvery=%v: failure-to-healthy %v (detect ~%dx(%v+%v), backoff %v, reboot 100ms)",
			every, recovery, scfg.Misses, every, scfg.HeartbeatTimeout, scfg.BackoffBase)
		if recovery <= 0 || recovery > sim.Second {
			t.Fatalf("every=%v: implausible recovery latency %v", every, recovery)
		}
	}
}
