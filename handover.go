package paradice

import (
	"fmt"

	"paradice/internal/cvd"
	"paradice/internal/handover"
	"paradice/internal/perf"
	"paradice/internal/sim"
)

// HandoverDriverVM performs a planned, zero-loss driver-VM handover — the
// production alternative to RestartDriverVM for maintenance events (driver
// upgrades, driver-VM kernel updates) where the predecessor is still healthy
// and nothing forces the crash-style path.
//
// The stages, driven by internal/handover:
//
//   - prepare: a successor driver VM boots side-by-side (the full
//     perf.CostDriverVMRestart is paid HERE, while the predecessor keeps
//     serving — this is where the downtime win comes from).
//   - quiesce: every frontend enters drain mode. In-flight operations finish
//     on the predecessor; new posts park at their frontends instead of
//     failing EREMOTE, bounded by Config.HandoverDrain.
//   - switch: each channel pre-builds its successor backend and pre-warms
//     the successor's grant-map cache from the frontend's live bulk grants
//     (cvd.PrepareHandover); then devices reset and reattach to the
//     successor, the ring epochs bump, the pre-built backends bind
//     (cvd.CompleteHandover), the predecessor's open files carry over for
//     lazy warm re-open, and the predecessor is retired. Only the
//     predecessor driver VM's translation caches are flushed — the guests'
//     TLB and grant-vector entries describe state the handover never
//     touched and stay warm.
//   - on any stage failure the handover aborts: successor state is
//     discarded, parked posts proceed against the still-live predecessor,
//     and the episode (visible via Handovers) records the stage and cause.
//
// Fault points: "machine.handover.fail" (the attempt is refused outright),
// "handover.warm.fail" (a channel's pre-warm fails during switch), and
// "handover.drain.timeout" (the quiesce stage gives up immediately).
//
// Like RestartDriverVM, virtual time advances only when called from
// simulation process context (Machine.RequestHandover runs it on the
// supervisor's watchdog proc). The same guards apply: Paradice machines
// only, no data isolation, one lifecycle operation at a time.
func (m *Machine) HandoverDriverVM() error {
	if err := m.lifecycleGuards(); err != nil {
		return err
	}
	m.restarting = true
	defer func() { m.restarting = false }()
	for i := range m.shards {
		if err := m.handoverShard(i); err != nil {
			return err
		}
	}
	return nil
}

// HandoverDriverShard performs a planned handover of one driver-VM shard,
// leaving the other shards serving throughout — rolling maintenance across
// a sharded machine is N of these, one shard at a time. On a single-shard
// machine HandoverDriverShard(0) is HandoverDriverVM.
func (m *Machine) HandoverDriverShard(i int) error {
	if err := m.lifecycleGuards(); err != nil {
		return err
	}
	if i < 0 || i >= len(m.shards) {
		return fmt.Errorf("paradice: shard %d out of range (machine has %d)", i, len(m.shards))
	}
	m.restarting = true
	defer func() { m.restarting = false }()
	return m.handoverShard(i)
}

// handoverShard runs the staged handover for one shard, with the lifecycle
// lock already held.
func (m *Machine) handoverShard(shard int) error {
	sh := m.shards[shard]

	type chanPrep struct {
		g    *Guest
		path string
		fe   *cvd.Frontend
		prep *cvd.HandoverPrep
	}
	var (
		newVM    = sh.VM // replaced by the Prepare hook's successor boot
		newK     = sh.K
		succPool *cvd.Pool
		preps    []chanPrep
	)

	drain := m.cfg.HandoverDrain
	if drain <= 0 {
		drain = handover.DefaultDrainDeadline
	}
	// Parked posts carry their own defensive wait bound; keep it comfortably
	// past the engine's drain deadline so the engine always decides first.
	parkBound := drain + 10*sim.Millisecond

	eachFE := func(fn func(g *Guest, path string, fe *cvd.Frontend)) {
		for _, g := range m.guests {
			for _, path := range g.sortedPaths() {
				if m.placement.Route(path) == shard {
					fn(g, path, g.Frontends[path])
				}
			}
		}
	}

	hooks := handover.Hooks{
		Prepare: func() error {
			vm, k, err := m.newShardVM(shard)
			if err != nil {
				return err
			}
			if err := m.runDriverBootHooks(k); err != nil {
				return err
			}
			newVM, newK = vm, k
			if m.cfg.Workers > 0 {
				// The successor's worker pool spins up alongside it; its
				// channels join at CompleteHandover. Discarded on abort.
				succPool = cvd.NewPool(newK, m.cfg.Workers, m.cfg.FairQuantum)
			}
			// The successor's boot time is paid now, while the predecessor
			// serves. RestartDriverVM pays this same cost inside its outage.
			perf.Charge(m.Env, perf.CostDriverVMRestart)
			return nil
		},
		BeginDrain: func() {
			eachFE(func(g *Guest, path string, fe *cvd.Frontend) { fe.BeginDrain(parkBound) })
		},
		DrainIdle: func() bool {
			idle := true
			eachFE(func(g *Guest, path string, fe *cvd.Frontend) {
				if fe.Occupancy() != 0 {
					idle = false
				}
			})
			return idle
		},
		EndDrain: func() {
			eachFE(func(g *Guest, path string, fe *cvd.Frontend) { fe.EndDrain() })
		},
		Switch: func() error {
			// Pre-build every channel's successor state first: this half is
			// fallible and touches nothing the predecessor depends on, so an
			// error here (including an injected "handover.warm.fail") leaves
			// the machine exactly as it was.
			for _, g := range m.guests {
				for _, path := range g.sortedPaths() {
					if m.placement.Route(path) != shard {
						continue
					}
					fe := g.Frontends[path]
					prep, err := cvd.PrepareHandover(fe, m.HV, newVM, newK)
					if err != nil {
						return err
					}
					preps = append(preps, chanPrep{g: g, path: path, fe: fe, prep: prep})
				}
			}
			// Commit. The shard's devices reset and reattach to the successor
			// — the "device re-probe", safe because the rings are idle — and
			// past this point a failure cannot be rolled back (the
			// predecessor no longer owns the devices); attachDrivers only
			// fails on host resource exhaustion.
			var predBackends []*cvd.Backend
			for _, cp := range preps {
				predBackends = append(predBackends, cp.g.Backends[cp.path])
			}
			m.resetShardDevices(shard)
			if err := m.attachDrivers(newVM, newK, shard); err != nil {
				return fmt.Errorf("paradice: handover switch cannot roll back: %w", err)
			}
			predVM, predPool := sh.VM, sh.Pool
			sh.VM, sh.K = newVM, newK
			if shard == 0 {
				m.DriverVM, m.DriverK = newVM, newK
			}
			perf.Charge(m.Env, perf.CostHandoverSwitch)
			for _, cp := range preps {
				be, err := cvd.CompleteHandover(cp.fe, cp.prep, newVM, newK, cp.path)
				if err != nil {
					return fmt.Errorf("paradice: handover switch cannot roll back: %w", err)
				}
				if succPool != nil {
					succPool.Join(be)
				}
				cp.g.Backends[cp.path] = be
				cp.fe.SetDegraded(false)
				if isGatedInputPath(cp.path) {
					cp.g.wireInputGate(cp.path)
				}
			}
			sh.Pool = succPool
			// Retire the predecessor: orderly stop (its rings' epochs have
			// moved on already), then its worker pool, then flush ITS
			// translation caches only.
			for _, be := range predBackends {
				if be != nil {
					be.Stop()
				}
			}
			if predPool != nil {
				predPool.Stop()
			}
			m.HV.FlushVMTranslationCaches(predVM)
			m.restartEpoch++
			return nil
		},
		Abort: func(stage handover.Stage, cause string) {
			// Discard in prepare order: deterministic unmap charges. Preps
			// that were committed have nothing left to discard. The booted
			// successor VM's RAM (and its idle worker pool) is leaked — the
			// hypervisor has no DestroyVM, same as an abandoned pre-restart
			// driver VM.
			for _, cp := range preps {
				cp.prep.Discard()
			}
			if succPool != nil {
				succPool.Stop()
			}
		},
	}

	ep, err := handover.Run(m.Env, handover.Config{DrainDeadline: drain}, hooks)
	m.handovers = append(m.handovers, ep)
	return err
}

// Handovers returns the planned-handover episode log, committed and aborted
// alike, in order.
func (m *Machine) Handovers() []handover.Episode { return m.handovers }

// RequestHandover queues a planned driver-VM handover to run on the
// supervisor's watchdog proc — the recommended entry point on a supervised
// machine, because the watchdog then cannot mistake the drain window for an
// outage (the maintenance and the heartbeat sweeps are serialized on the
// same proc). The outcome lands in the supervisor's state-change log and the
// machine's Handovers episode log. Returns an error when the machine is not
// supervised or the supervisor has stopped.
func (m *Machine) RequestHandover() error {
	if m.supervisor == nil {
		return fmt.Errorf("paradice: RequestHandover requires Config.Supervision (call HandoverDriverVM directly instead)")
	}
	if !m.supervisor.RequestMaintenance("driver-VM handover", func(p *sim.Proc) error {
		return m.HandoverDriverVM()
	}) {
		return fmt.Errorf("paradice: supervisor not accepting maintenance (stopped, degraded, or busy)")
	}
	return nil
}
