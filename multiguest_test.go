package paradice_test

// Multi-guest lifecycle regression tests.
//
// TestRestartTeardownDeterministic pins the fix for a single-guest
// assumption in the restart path: the backend-stop loop in RestartDriverVM
// used to iterate the guest's Backends map directly, so with more than one
// channel per guest the STOP ORDER varied run to run (Go map iteration).
// Stop order is observable: dropping each backend's map cache charges
// CostMapPage per cached page in the supervisor's proc context, so the
// simulated instant at which each backend's stopped flag latches depends on
// how many pages the backends stopped *before* it held — and with live
// traffic racing the teardown, which in-flight operations fast-fail changes
// with it. The repo's own discipline (guest.sortedPaths: "every lifecycle
// loop over a guest's channels walks this, never the map") covers every
// other lifecycle loop; this test makes sure the stop loop stays honest.

import (
	"bytes"
	"fmt"
	"testing"

	"paradice"
	"paradice/internal/devfile"
	"paradice/internal/faults"
	"paradice/internal/kernel"
	"paradice/internal/load"
	"paradice/internal/sim"
	"paradice/internal/supervise"
)

const (
	teardownPathA = "/dev/sinkA"
	teardownPathB = "/dev/sinkB"
)

// restartTeardownDump runs one supervised restart-under-load scenario and
// returns its metrics dump. Two channels with deliberately ASYMMETRIC map
// caches (8 KiB writes -> 2 cached pages vs 32 KiB -> 8 pages) make the
// teardown charge sequence order-sensitive, and writers hammering both
// channels across the forced restart turn any stop-order variation into
// divergent errno/latency counters.
func restartTeardownDump(t *testing.T) string {
	t.Helper()
	m, err := paradice.New(paradice.Config{
		Supervision: true,
		MapCache:    true,
		// Short deadline: writers caught in-flight by the teardown recycle
		// within a millisecond instead of parking for the 50 ms default, so
		// the channels keep offering fresh requests throughout the window.
		RequestDeadline: sim.Millisecond,
		Supervise: supervise.Config{
			HeartbeatEvery: sim.Millisecond,
			BackoffBase:    sim.Millisecond,
			BackoffCap:     2 * sim.Millisecond,
			MaxRestarts:    2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sinkA := load.NewSink(m.Env, 2*sim.Microsecond, sim.Microsecond)
	sinkB := load.NewSink(m.Env, 2*sim.Microsecond, sim.Microsecond)
	if err := m.OnDriverVMBoot(func(k *kernel.Kernel) error {
		k.RegisterDevice(teardownPathA, sinkA, sinkA)
		k.RegisterDevice(teardownPathB, sinkB, sinkB)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	g, err := m.AddGuest("guest", paradice.Linux)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Paravirtualize(teardownPathA, teardownPathB); err != nil {
		t.Fatal(err)
	}

	tr := m.StartTrace()

	// Every heartbeat ack is swallowed: the watchdog sees a wedged driver VM
	// with both backends alive and their map caches warm, and restarts it —
	// exactly the teardown-under-load window the stop loop runs in.
	plan := faults.New(1).Probability("cvd.heartbeat.drop", 1.0)
	faults.Install(m.Env, plan)
	defer faults.Uninstall(m.Env)

	// Four staggered writers per channel: at any instant some are mid-pacing
	// sleep, so fresh posts land inside the (microseconds-wide) teardown
	// window no matter where the in-flight ones are parked.
	for _, ch := range []struct {
		name string
		path string
		size int
	}{
		{"writerA", teardownPathA, 8 << 10},
		{"writerB", teardownPathB, 32 << 10},
	} {
		ch := ch
		p, err := g.NewProcess(ch.name)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			offset := sim.Duration(i) * 700 * sim.Nanosecond
			p.SpawnTask(fmt.Sprintf("w%d", i), func(tk *kernel.Task) {
				buf, _ := p.Alloc(ch.size)
				tk.Sim().Sleep(offset)
				end := tk.Sim().Now().Add(40 * sim.Millisecond)
				fd := -1
				for tk.Sim().Now() < end {
					if fd < 0 {
						f, err := tk.Open(ch.path, devfile.ORdWr)
						if err != nil {
							// EBUSY/EREMOTE/etc.: pace and retry — fds die
							// with each driver-VM generation.
							tk.Sim().Sleep(5 * sim.Microsecond)
							continue
						}
						fd = f
					}
					if _, err := tk.Write(fd, buf, ch.size); err != nil {
						if kernel.IsErrno(err, kernel.EREMOTE) || kernel.IsErrno(err, kernel.ENODEV) ||
							kernel.IsErrno(err, kernel.ETIMEDOUT) {
							tk.Close(fd)
							fd = -1
						}
						tk.Sim().Sleep(5 * sim.Microsecond)
						continue
					}
					tk.Sim().Sleep(sim.Microsecond)
				}
				if fd >= 0 {
					tk.Close(fd)
				}
			})
		}
	}

	m.RunUntil(m.Env.Now().Add(60 * sim.Millisecond))
	m.StopTrace()
	var buf bytes.Buffer
	if err := tr.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// quietGuestP99 runs a quiet guest's periodic workload against the worker
// pool — alone, or sharing the pool with a hot guest at open-loop overload —
// and returns the quiet guest's p99 latency.
func quietGuestP99(t *testing.T, withHot bool) sim.Duration {
	t.Helper()
	m, err := paradice.New(paradice.Config{
		Mode:    paradice.Polling,
		Workers: 2, // small pool: the hot guest WOULD monopolize it without DRR
	})
	if err != nil {
		t.Fatal(err)
	}
	sink := load.NewSink(m.Env, 2*sim.Microsecond, sim.Microsecond)
	if err := m.OnDriverVMBoot(func(k *kernel.Kernel) error {
		k.RegisterDevice(load.SinkPath, sink, sink)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	quiet, err := m.AddGuest("quiet", paradice.Linux)
	if err != nil {
		t.Fatal(err)
	}
	if err := quiet.Paravirtualize(load.SinkPath); err != nil {
		t.Fatal(err)
	}
	quietGen, err := load.NewGenerator(load.Profile{
		Path:     load.SinkPath,
		Classes:  []load.Class{{Name: "quiet", Size: 64, Weight: 1}},
		Arrival:  load.Poisson,
		Rate:     4_000,
		Clients:  4,
		Duration: 30 * sim.Millisecond,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if withHot {
		hot, err := m.AddGuest("hot", paradice.Linux)
		if err != nil {
			t.Fatal(err)
		}
		if err := hot.Paravirtualize(load.SinkPath); err != nil {
			t.Fatal(err)
		}
		hotGen, err := load.NewGenerator(load.Profile{
			Path:     load.SinkPath,
			Classes:  []load.Class{{Name: "hot", Size: 64, Weight: 1}},
			Arrival:  load.Poisson,
			Rate:     400_000, // far past the 2-worker sink capacity
			Clients:  100,
			Duration: 30 * sim.Millisecond,
			Seed:     7,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := hotGen.Start(hot.K); err != nil {
			t.Fatal(err)
		}
	}
	if err := quietGen.Start(quiet.K); err != nil {
		t.Fatal(err)
	}
	m.RunUntil(m.Env.Now().Add(200 * sim.Millisecond))
	res := quietGen.Result()
	if res.OK() == 0 {
		t.Fatal("quiet guest completed no requests")
	}
	return res.Classes[0].Lat.Quantile(0.99)
}

// TestPoolFairnessQuietGuestP99 is the scale-out isolation property: a
// guest flooding the shared worker pool at open-loop overload must not move
// a quiet guest's p99 beyond a bounded factor — deficit round-robin caps
// the hot channel at its round share, so the quiet guest waits at most one
// quantum cycle, not the hot backlog.
func TestPoolFairnessQuietGuestP99(t *testing.T) {
	alone := quietGuestP99(t, false)
	contended := quietGuestP99(t, true)
	t.Logf("quiet p99 alone = %v, under hot-guest overload = %v (x%.2f)",
		alone, contended, float64(contended)/float64(alone))
	// The bound: one quantum cycle of the pool ahead of every quiet
	// operation, plus scheduler noise. Without DRR (FIFO through a shared
	// queue) the quiet p99 rides the hot backlog and blows past this by
	// orders of magnitude.
	if contended > 10*alone {
		t.Fatalf("quiet guest p99 %v is more than 10x its uncontended %v — pool fairness broken",
			contended, alone)
	}
}

// TestShardRestartIsolation: on a sharded machine, restarting one shard is
// invisible to channels served by the others — shard 0's file descriptors
// keep working THROUGH shard 1's restart, while shard 1's channels observe
// the usual crash-restart contract (EREMOTE, reopen, resume).
func TestShardRestartIsolation(t *testing.T) {
	m, err := paradice.New(paradice.Config{
		Mode:         paradice.Polling,
		DriverShards: 2,
		Workers:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.Shards()); got != 2 {
		t.Fatalf("shards = %d, want 2", got)
	}
	sink0 := load.NewSink(m.Env, 2*sim.Microsecond, sim.Microsecond)
	sink1 := load.NewSink(m.Env, 2*sim.Microsecond, sim.Microsecond)
	if err := m.OnDriverVMBoot(func(k *kernel.Kernel) error {
		k.RegisterDevice("/dev/shard0dev", sink0, sink0)
		k.RegisterDevice("/dev/shard1dev", sink1, sink1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.PinDevice("/dev/shard0dev", 0); err != nil {
		t.Fatal(err)
	}
	if err := m.PinDevice("/dev/shard1dev", 1); err != nil {
		t.Fatal(err)
	}
	g, err := m.AddGuest("guest", paradice.Linux)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Paravirtualize("/dev/shard0dev", "/dev/shard1dev"); err != nil {
		t.Fatal(err)
	}
	if m.ShardFor("/dev/shard0dev").Index != 0 || m.ShardFor("/dev/shard1dev").Index != 1 {
		t.Fatal("pins did not route the devices to their shards")
	}

	vm0 := m.Shards()[0].VM
	var fd0, fd1 int
	var err0a, err1a, err1b, err0b, errReopen error
	phase := 0
	p, _ := g.NewProcess("app")
	p.SpawnTask("main", func(tk *kernel.Task) {
		buf, _ := p.Alloc(64)
		fd0, err0a = tk.Open("/dev/shard0dev", devfile.ORdWr)
		if err0a != nil {
			return
		}
		fd1, err1a = tk.Open("/dev/shard1dev", devfile.ORdWr)
		if err1a != nil {
			return
		}
		if _, err := tk.Write(fd0, buf, 64); err != nil {
			err0a = err
			return
		}
		if _, err := tk.Write(fd1, buf, 64); err != nil {
			err1a = err
			return
		}
		phase = 1
		// Park until the host context has restarted shard 1.
		for phase == 1 {
			tk.Sim().Sleep(sim.Millisecond)
		}
		// Shard 0's fd survives shard 1's restart untouched.
		_, err0b = tk.Write(fd0, buf, 64)
		// Shard 1's fd is stale — its driver VM is gone.
		_, err1b = tk.Write(fd1, buf, 64)
		// The §8 contract: reopen and resume.
		fd, err := tk.Open("/dev/shard1dev", devfile.ORdWr)
		if err != nil {
			errReopen = err
			return
		}
		_, errReopen = tk.Write(fd, buf, 64)
		phase = 3
	})

	m.RunUntil(m.Env.Now().Add(20 * sim.Millisecond))
	if phase != 1 {
		t.Fatalf("setup phase did not complete: open0=%v open1=%v", err0a, err1a)
	}
	if err := m.RestartDriverShard(1); err != nil {
		t.Fatal(err)
	}
	if m.Shards()[0].VM != vm0 {
		t.Fatal("restarting shard 1 replaced shard 0's driver VM")
	}
	phase = 2
	m.RunUntil(m.Env.Now().Add(200 * sim.Millisecond))
	if phase != 3 {
		t.Fatal("post-restart phase did not complete")
	}
	if err0b != nil {
		t.Fatalf("shard 0 write after shard 1 restart: %v, want success (isolation)", err0b)
	}
	if err1b == nil {
		t.Fatal("shard 1 write on a pre-restart fd succeeded, want an honest errno")
	}
	// The §8 stale-fd contract (usrlib.IsStaleDevice): EREMOTE for an
	// operation the dead backend never answered, EINVAL for an fd the
	// successor has no file state for.
	if !kernel.IsErrno(err1b, kernel.EREMOTE) && !kernel.IsErrno(err1b, kernel.EINVAL) &&
		!kernel.IsErrno(err1b, kernel.ENODEV) {
		t.Fatalf("shard 1 stale-fd write: %v, want EREMOTE/EINVAL/ENODEV", err1b)
	}
	if errReopen != nil {
		t.Fatalf("shard 1 reopen+write after restart: %v, want success", errReopen)
	}
	if m.RestartEpoch() != 1 {
		t.Fatalf("restart epoch = %d, want 1", m.RestartEpoch())
	}
}

// TestRestartTeardownDeterministic requires the whole restart-under-load
// scenario — teardown charge sequence, in-flight failure classification,
// per-channel errno counters — to be byte-identical across repeated runs.
// Before the sortedPaths fix in RestartDriverVM's stop loop this diverged
// with probability ~1 - 2^-(runs-1) per attempt (two channels, random map
// order per run).
func TestRestartTeardownDeterministic(t *testing.T) {
	want := restartTeardownDump(t)
	for i := 1; i < 8; i++ {
		got := restartTeardownDump(t)
		if got != want {
			wl := bytes.Split([]byte(want), []byte("\n"))
			gl := bytes.Split([]byte(got), []byte("\n"))
			for j := 0; j < len(wl) && j < len(gl); j++ {
				if !bytes.Equal(wl[j], gl[j]) {
					t.Fatalf("run %d metrics dump diverged at line %d:\n  run 0: %s\n  run %d: %s",
						i, j+1, wl[j], i, gl[j])
				}
			}
			t.Fatalf("run %d metrics dump diverged in length: %d vs %d lines", i, len(wl), len(gl))
		}
	}
}
