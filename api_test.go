package paradice_test

import (
	"testing"

	"paradice"
	"paradice/internal/kernel"
	"paradice/internal/mem"
	"paradice/internal/sim"
	"paradice/internal/usrlib"
)

func TestAddGuestOnlyOnParadice(t *testing.T) {
	m, err := paradice.NewNative(paradice.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddGuest("g", paradice.Linux); err == nil {
		t.Fatal("AddGuest succeeded on a native machine")
	}
}

func TestParavirtualizeTwiceFails(t *testing.T) {
	m, err := paradice.New(paradice.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := m.AddGuest("g", paradice.Linux)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Paravirtualize(paradice.PathGPU); err != nil {
		t.Fatal(err)
	}
	if err := g.Paravirtualize(paradice.PathGPU); err == nil {
		t.Fatal("double paravirtualize succeeded")
	}
}

func TestParavirtualizeUnknownPath(t *testing.T) {
	m, _ := paradice.New(paradice.Config{})
	g, _ := m.AddGuest("g", paradice.Linux)
	if err := g.Paravirtualize("/dev/flux-capacitor"); err == nil {
		t.Fatal("unknown device path accepted")
	}
}

func TestKindStrings(t *testing.T) {
	for kind, want := range map[paradice.Kind]string{
		paradice.KindParadice:     "paradice",
		paradice.KindNative:       "native",
		paradice.KindDeviceAssign: "device-assign",
	} {
		if kind.String() != want {
			t.Fatalf("%d = %s", kind, kind.String())
		}
	}
}

func TestDIGuestsBeyondPartitionsRejected(t *testing.T) {
	m, err := paradice.New(paradice.Config{DataIsolation: true, DIPartitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		g, err := m.AddGuest("g", paradice.Linux)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Paravirtualize(paradice.PathGPU); err != nil {
			t.Fatalf("guest %d: %v", i, err)
		}
	}
	g3, err := m.AddGuest("g3", paradice.Linux)
	if err != nil {
		t.Fatal(err)
	}
	if err := g3.Paravirtualize(paradice.PathGPU); err == nil {
		t.Fatal("third DI guest got a partition from a 2-way split")
	}
}

// mmap/munmap cycles must not leak guest EPT entries — every
// hypervisor-installed mapping is destroyed on unmap (§5.2).
func TestNoEPTLeakAcrossMmapCycles(t *testing.T) {
	m, gk := guestKernel(t, paradice.Config{}, paradice.PathGPU)
	g := m.Guests()[0]
	p, err := gk.NewProcess("cycler")
	if err != nil {
		t.Fatal(err)
	}
	var counts []int
	p.SpawnTask("main", func(tk *kernel.Task) {
		ctx, err := usrlib.OpenGPU(tk, paradice.PathGPU)
		if err != nil {
			t.Error(err)
			return
		}
		bo, err := ctx.CreateBO(4 * mem.PageSize)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 8; i++ {
			va, err := ctx.MapBO(bo, 4*mem.PageSize)
			if err != nil {
				t.Error(err)
				return
			}
			// Touch all four pages so they are hypervisor-mapped.
			buf := make([]byte, 4*mem.PageSize)
			if err := p.UserWrite(tk, va, buf); err != nil {
				t.Error(err)
				return
			}
			if err := ctx.UnmapBO(va, 4*mem.PageSize); err != nil {
				t.Error(err)
				return
			}
			counts = append(counts, g.VM.EPT.Count())
		}
	})
	m.Run()
	if len(counts) != 8 {
		t.Fatalf("cycles = %d", len(counts))
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] != counts[0] {
			t.Fatalf("EPT entries leaked across cycles: %v", counts)
		}
	}
}

// The grant table must also come back to empty after mmap cycles (no grant
// slot leaks, which would eventually starve the guest).
func TestGrantSlotsRecycledAcrossMmaps(t *testing.T) {
	m, gk := guestKernel(t, paradice.Config{}, paradice.PathGPU)
	p, err := gk.NewProcess("cycler")
	if err != nil {
		t.Fatal(err)
	}
	p.SpawnTask("main", func(tk *kernel.Task) {
		ctx, err := usrlib.OpenGPU(tk, paradice.PathGPU)
		if err != nil {
			t.Error(err)
			return
		}
		bo, err := ctx.CreateBO(mem.PageSize)
		if err != nil {
			t.Error(err)
			return
		}
		// Far more map/unmap cycles than the table has slots.
		for i := 0; i < 300; i++ {
			va, err := ctx.MapBO(bo, mem.PageSize)
			if err != nil {
				t.Errorf("cycle %d: %v", i, err)
				return
			}
			if err := ctx.UnmapBO(va, mem.PageSize); err != nil {
				t.Errorf("cycle %d: %v", i, err)
				return
			}
		}
	})
	m.Run()
}

func TestMachineRunUntil(t *testing.T) {
	m, _ := paradice.NewNative(paradice.Config{})
	m.RunUntil(1000)
	if m.Env.Now() != 1000 {
		t.Fatalf("now = %v", m.Env.Now())
	}
}

// The netmap receive path through a Paradice guest: frames injected at the
// wire land in driver VM buffers mapped into the guest and are read there.
func TestNetmapReceiveThroughGuest(t *testing.T) {
	m, gk := guestKernel(t, paradice.Config{}, paradice.PathNetmap)
	p, err := gk.NewProcess("rx-app")
	if err != nil {
		t.Fatal(err)
	}
	var frames [][]byte
	p.SpawnTask("rx", func(tk *kernel.Task) {
		nm, err := usrlib.OpenNetmap(tk, paradice.PathNetmap)
		if err != nil {
			t.Error(err)
			return
		}
		for len(frames) < 3 {
			got, err := nm.RecvBatch()
			if err != nil {
				t.Error(err)
				return
			}
			frames = append(frames, got...)
		}
	})
	for i := 0; i < 3; i++ {
		i := i
		m.Env.At(m.Env.Now().Add(sim.Duration(i+1)*sim.Millisecond), func() {
			frame := make([]byte, 64)
			for j := range frame {
				frame[j] = byte(i + j)
			}
			m.NIC.InjectRx(frame)
		})
	}
	m.Run()
	if len(frames) != 3 {
		t.Fatalf("guest received %d frames", len(frames))
	}
	for i, f := range frames {
		for j, b := range f {
			if b != byte(i+j) {
				t.Fatalf("frame %d corrupted at %d", i, j)
			}
		}
	}
}
