package paradice_test

// Machine-level coverage for the grant-map cache across a driver VM restart:
// the successor backend must come up with a COLD cache (its predecessor's
// mappings died with the old driver VM's EPT), yet service resumes and the
// cache warms again against the new VM. Complements the cvd-level reconnect
// test by going through RestartDriverVM — the full §8 recovery path with
// supervision wiring, device re-attach, and every guest's frontends.

import (
	"testing"

	"paradice"
	"paradice/internal/workload"
)

func TestDriverVMRestartColdMapCache(t *testing.T) {
	m, err := paradice.New(paradice.Config{MapCache: true})
	if err != nil {
		t.Fatal(err)
	}
	g, err := m.AddGuest("guest", paradice.Linux)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Paravirtualize(paradice.PathAudio); err != nil {
		t.Fatal(err)
	}

	// 0.256 s of 48 kHz 16-bit stereo: every chunk is written from the same
	// 16 KB user buffer, so the whole playback needs exactly one map miss to
	// establish the mapping; each further period copy is a hit.
	res, err := workload.RunAudio(m.Env, g.K, 0.256)
	if err != nil || res.Bytes != 3*16384 {
		t.Fatalf("pre-restart audio: %+v %v", res, err)
	}
	be1 := g.Backends[paradice.PathAudio]
	warmHits, misses, _ := be1.MapCacheStats()
	if misses != 1 || warmHits == 0 {
		t.Fatalf("warm cache stats = %d hits / %d misses, want 1 miss and >0 hits", warmHits, misses)
	}

	if err := m.RestartDriverVM(); err != nil {
		t.Fatal(err)
	}
	be2 := g.Backends[paradice.PathAudio]
	if be2 == be1 {
		t.Fatal("restart did not replace the backend")
	}
	// The successor's cache is cold — nothing from the old driver VM's EPT
	// can have survived into it.
	hits, misses, invals := be2.MapCacheStats()
	if hits != 0 || misses != 0 || invals != 0 {
		t.Fatalf("post-restart cache not cold: %d/%d/%d", hits, misses, invals)
	}

	// Service resumes and the cache warms against the new driver VM: the
	// identical workload re-pays exactly one miss and the same hit count
	// (the simulation is deterministic).
	res, err = workload.RunAudio(m.Env, g.K, 0.256)
	if err != nil || res.Bytes != 3*16384 {
		t.Fatalf("post-restart audio: %+v %v", res, err)
	}
	hits, misses, _ = be2.MapCacheStats()
	if misses != 1 || hits != warmHits {
		t.Fatalf("post-restart stats = %d hits / %d misses, want %d/1", hits, misses, warmHits)
	}
	// The old backend's counters are frozen where the restart left them.
	if h, mi, _ := be1.MapCacheStats(); h != warmHits || mi != 1 {
		t.Fatalf("dead backend's stats moved: %d/%d", h, mi)
	}
}
