// Package paradice assembles the full systems the paper evaluates: the
// Paradice machine of Figure 1(c) — a bare-metal hypervisor, a driver VM
// owning the real devices and drivers through device assignment, and guest
// VMs reaching those devices through virtual device files served by the
// Common Virtual Driver — plus the two baselines every experiment compares
// against, native execution and direct device assignment.
//
// A Machine carries one of each device class from Table 1: a Radeon-class
// GPU behind the DRM driver, an e1000-class NIC behind netmap, an evdev
// mouse, a UVC camera, and an HD Audio PCM device. Applications are
// simulated processes that issue file operations against device files; on a
// Paradice machine they run in guest VMs added with AddGuest, on the
// baselines they run directly on the machine's kernel.
package paradice

import (
	"fmt"

	"paradice/internal/cvd"
	"paradice/internal/devfile"
	"paradice/internal/device/audio"
	"paradice/internal/device/camera"
	"paradice/internal/device/gpu"
	"paradice/internal/device/input"
	"paradice/internal/device/nic"
	"paradice/internal/driver/drm"
	"paradice/internal/driver/evdev"
	"paradice/internal/driver/netmapdrv"
	"paradice/internal/driver/pcm"
	"paradice/internal/driver/uvc"
	"paradice/internal/handover"
	"paradice/internal/hv"
	"paradice/internal/ioctlan"
	"paradice/internal/iommu"
	"paradice/internal/kernel"
	"paradice/internal/perf"
	"paradice/internal/sim"
	"paradice/internal/supervise"
	"paradice/internal/trace"
)

// Mode selects the CVD transport.
type Mode = cvd.Mode

// Transport modes (re-exported from the CVD).
const (
	Interrupts = cvd.Interrupts
	Polling    = cvd.Polling
	Adaptive   = cvd.Adaptive
)

// OS flavors for guests (re-exported from the kernel).
const (
	Linux   = kernel.Linux
	FreeBSD = kernel.FreeBSD
)

// Kind is the platform variant a Machine embodies.
type Kind int

// Platform kinds.
const (
	// KindParadice is the paper's system: driver VM + guest VMs + CVD.
	KindParadice Kind = iota
	// KindNative runs applications directly on the machine that owns the
	// devices — the "Native" baseline.
	KindNative
	// KindDeviceAssign runs applications in a VM that owns the devices
	// directly — the "Device-Assign" baseline (interrupts routed through
	// the hypervisor, everything else native).
	KindDeviceAssign
)

func (k Kind) String() string {
	switch k {
	case KindNative:
		return "native"
	case KindDeviceAssign:
		return "device-assign"
	default:
		return "paradice"
	}
}

// Config sizes and configures a Machine. Zero values select defaults.
type Config struct {
	// HostRAM is total system memory (default 512 MiB).
	HostRAM uint64
	// DriverRAM is the driver VM's (or the native machine's) memory
	// (default 64 MiB).
	DriverRAM uint64
	// GuestRAM is each guest VM's memory (default 64 MiB).
	GuestRAM uint64
	// VRAM is GPU device memory (default 1 GiB, lazily backed).
	VRAM uint64
	// Mode selects the CVD transport (default Interrupts).
	Mode Mode
	// DataIsolation enables the §4.2/§5.3 device data isolation
	// configuration for the GPU.
	DataIsolation bool
	// DIPartitions is how many guests share the GPU memory under data
	// isolation (default 2, giving each half the VRAM as in §6).
	DIPartitions int
	// GPUModel selects the card (Table 1: "hd6450" (default), "hd4650",
	// "x1300", "gm965"). Device data isolation requires the Evergreen-class
	// hd6450 (§5.3).
	GPUModel string
	// PollWindow is the CVD busy-poll window in polling mode (default the
	// paper's 200 µs; §5.1 notes the value was chosen empirically — the
	// "ablation" experiment sweeps it).
	PollWindow sim.Duration
	// Supervision enables the driver-VM watchdog (internal/supervise): a
	// hypervisor-layer health monitor that heartbeats every CVD channel,
	// restarts the driver VM automatically on failure under an
	// exponential-backoff budget, and degrades dead devices to fail-fast
	// ENODEV when the budget is exhausted. The watchdog keeps the event
	// calendar busy, so supervised machines should be driven with RunUntil
	// (or stop the supervisor before draining with Run). Paradice only.
	Supervision bool
	// Supervise tunes the watchdog; zero fields take the supervise package
	// defaults. Ignored unless Supervision is set.
	Supervise supervise.Config
	// RequestDeadline bounds every forwarded file operation's wait for its
	// response; a stuck request fails with ETIMEDOUT instead of blocking
	// its issuer forever. Zero means no deadline. When Supervision is on
	// and this is zero, a default of 50 ms is applied so detection by
	// timeout is never slower than detection by watchdog.
	RequestDeadline sim.Duration
	// MapCache enables the CVD bulk-transfer fast path: large read/write
	// buffers are granted once per file and mapped into the driver VM by the
	// backend, so repeated transfers to the same file skip the per-request
	// hypervisor-assisted copy. Off by default (the paper's §4.1 behavior);
	// the "bulk" experiment measures the crossover.
	MapCache bool
	// MapThreshold is the minimum transfer size in bytes routed through the
	// map cache; zero selects cvd.DefaultMapThreshold (2 KB, from the cost
	// model). Ignored unless MapCache is set.
	MapThreshold int
	// CoalesceWindow batches CVD doorbells in interrupt mode: slots posted
	// within the window of the first share one inter-VM IRQ. Zero disables
	// coalescing. Polling mode and watchdog heartbeats are unaffected.
	CoalesceWindow sim.Duration
	// BatchSize upgrades doorbell coalescing to multi-entry batches: the
	// frontend flushes a submission descriptor as soon as BatchSize slots
	// are pending (or CoalesceWindow elapses, whichever is first), and the
	// backend batches up to BatchSize completions per response IRQ under
	// the same deadline. Requires CoalesceWindow > 0; zero keeps the
	// deadline-only coalescing behavior.
	BatchSize int
	// TLB arms the hypervisor's software TLB: per-VM caches of
	// guest-VA→system-PA translations consulted by the assisted-copy and
	// buffer-mapping paths before the full per-page walks of §5.2, with
	// deterministic invalidation on page-table edits, EPT changes, grant
	// revocation, and driver-VM restart. Off by default (the paper's
	// walk-every-time behavior); the "walkcache" experiment measures the
	// hit-rate speedup.
	TLB bool
	// GrantBatch batches grant hypercalls: a file operation's whole grant
	// vector is declared in one hypervisor crossing and backend validations
	// hit the hypervisor's cached vector instead of re-scanning the shared
	// page. Off by default.
	GrantBatch bool
	// Admission maps a QoS class (kernel.Task.QoS) to the CVD ring occupancy
	// at which that class stops being admitted: once a device's ring holds
	// that many in-flight requests, further requests from the class fail
	// fast with EAGAIN instead of queueing. Classes absent from the map are
	// admitted until the ring is full (EBUSY). Applied to every frontend a
	// guest paravirtualizes. nil disables admission control (the default).
	Admission map[uint8]int
	// HandoverDrain bounds the quiesce stage of a planned driver-VM handover
	// (HandoverDriverVM): if in-flight operations have not completed this
	// long after the frontends enter drain mode, the handover aborts back to
	// the still-live predecessor. Zero selects handover.DefaultDrainDeadline.
	HandoverDrain sim.Duration
}

func (c Config) withDefaults() Config {
	if c.HostRAM == 0 {
		c.HostRAM = 512 << 20
	}
	if c.DriverRAM == 0 {
		c.DriverRAM = 64 << 20
	}
	if c.GuestRAM == 0 {
		c.GuestRAM = 64 << 20
	}
	if c.VRAM == 0 {
		c.VRAM = 1 << 30
	}
	if c.DIPartitions == 0 {
		c.DIPartitions = 2
	}
	return c
}

// Standard device paths on every Machine.
const (
	PathGPU      = "/dev/dri/card0"
	PathMouse    = "/dev/input/event0"
	PathKeyboard = "/dev/input/event1"
	PathCamera   = "/dev/video0"
	PathAudio    = "/dev/snd/pcmC0D0p"
	PathNetmap   = "/dev/netmap"
)

// Machine is one assembled platform.
type Machine struct {
	Kind Kind
	Env  *sim.Env
	HV   *hv.Hypervisor

	// DriverVM/DriverK host the real drivers (and, on the baselines, the
	// applications too).
	DriverVM *hv.VM
	DriverK  *kernel.Kernel

	// Devices and their drivers.
	GPU      *gpu.GPU
	DRM      *drm.Driver
	NIC      *nic.NIC
	Netmap   *netmapdrv.Driver
	Mouse    *input.Device
	Evdev    *evdev.Driver
	Keyboard *input.Device
	Kbdev    *evdev.Driver
	Camera   *camera.Device
	UVC      *uvc.Driver
	Audio    *audio.Device
	PCM      *pcm.Driver

	// GPUDomain and MCGate are the isolation handles for the GPU.
	GPUDomain *iommu.Domain
	MCGate    *hv.Gate

	cfg        Config
	gpuModel   drm.Model
	drmSpec    map[devfile.IoctlCmd]*ioctlan.CmdSpec
	guests     []*Guest
	foreground *Guest

	// Driver-VM restart/supervision state.
	restarting   bool
	restartEpoch uint64
	supervisor   *supervise.Supervisor
	// handovers is the machine's planned-handover episode log (committed and
	// aborted alike), in order.
	handovers []handover.Episode
	// onDriverBoot hooks run against every freshly booted driver kernel
	// (construction, restart replacement, handover successor).
	onDriverBoot []func(*kernel.Kernel) error
}

// vramBase is where the GPU aperture sits in system-physical space, clear
// of host RAM.
const vramBase = 0x8_0000_0000

// New builds a Paradice machine: hypervisor, driver VM with all five device
// classes assigned, drivers loaded, ready for AddGuest.
func New(cfg Config) (*Machine, error) { return build(KindParadice, cfg) }

// NewNative builds the native baseline: the same devices and drivers on a
// bare machine (interrupts at native latency, no CVD, no hypervisor in the
// data path).
func NewNative(cfg Config) (*Machine, error) { return build(KindNative, cfg) }

// NewDeviceAssignment builds the direct device assignment baseline: one VM
// owns the devices; interrupts route through the hypervisor.
func NewDeviceAssignment(cfg Config) (*Machine, error) { return build(KindDeviceAssign, cfg) }

func build(kind Kind, cfg Config) (*Machine, error) {
	cfg = cfg.withDefaults()
	env := sim.NewEnv()
	h := hv.New(env, cfg.HostRAM)
	if cfg.TLB {
		// Armed before any VM exists, so every VM — driver and guests alike —
		// gets its translation cache and invalidation hooks from creation.
		h.EnableTLB()
	}
	m := &Machine{Kind: kind, Env: env, HV: h, cfg: cfg}

	// Create the devices once — they are hardware and survive driver VM
	// restarts. An explicit Config.VRAM overrides the model's memory size.
	model, err0 := drm.LookupModel(cfg.GPUModel)
	if err0 != nil {
		return nil, err0
	}
	vram := cfg.VRAM
	if cfg.VRAM == 1<<30 && model.VRAM != 0 {
		vram = model.VRAM
	}
	m.cfg.VRAM = vram
	m.GPU = gpu.New(env, h.Phys, vramBase, vram)
	m.NIC = nic.New(env)
	mouseLat := perf.CostVMExitIRQ
	if kind == KindNative {
		mouseLat = perf.CostNativeIRQ
	}
	m.Mouse = input.New(env, "mouse", sim.Duration(mouseLat))
	m.Keyboard = input.New(env, "keyboard", sim.Duration(mouseLat))
	m.Camera = camera.New(env)
	m.Audio = audio.New(env)

	var err error
	m.gpuModel, err = drm.LookupModel(cfg.GPUModel)
	if err != nil {
		return nil, err
	}
	m.drmSpec, err = drm.AnalyzedSpecs()
	if err != nil {
		return nil, err
	}
	if err := m.bootDriverVM(); err != nil {
		return nil, err
	}
	if cfg.Supervision {
		if kind != KindParadice {
			return nil, fmt.Errorf("paradice: supervision requires a driver VM (Paradice machines only)")
		}
		if m.cfg.RequestDeadline == 0 {
			m.cfg.RequestDeadline = 50 * sim.Millisecond
		}
		m.supervisor = supervise.Start(env, machineTarget{m}, cfg.Supervise)
		env.OnProcPanic = m.supervisor.HandleProcPanic
	}
	return m, nil
}

// bootDriverVM creates a driver VM and kernel, assigns every device to it,
// and attaches the drivers. Called at machine construction and again by
// RestartDriverVM.
func (m *Machine) bootDriverVM() error {
	drvVM, drvK, err := m.newDriverVM()
	if err != nil {
		return err
	}
	m.DriverVM, m.DriverK = drvVM, drvK
	if err := m.attachDrivers(drvVM, drvK); err != nil {
		return err
	}
	return m.runDriverBootHooks(drvK)
}

// OnDriverVMBoot registers fn to run against the driver kernel of every
// driver VM this machine boots from now on — restart replacements and
// handover successors alike — and runs it against the current driver kernel
// immediately. Harnesses use it to install auxiliary devices (e.g. the load
// sink) that must exist in every driver-VM generation, or a Reconnect after
// a restart (and a CompleteHandover during a handover) cannot find the
// device in the replacement kernel.
func (m *Machine) OnDriverVMBoot(fn func(*kernel.Kernel) error) error {
	if m.Kind != KindParadice {
		return ErrNoDriverVM
	}
	m.onDriverBoot = append(m.onDriverBoot, fn)
	return fn(m.DriverK)
}

// runDriverBootHooks replays the registered OnDriverVMBoot hooks against a
// freshly booted driver kernel.
func (m *Machine) runDriverBootHooks(k *kernel.Kernel) error {
	for _, fn := range m.onDriverBoot {
		if err := fn(k); err != nil {
			return err
		}
	}
	return nil
}

// newDriverVM boots a driver VM and kernel WITHOUT attaching any device to
// it. A planned handover calls this during its prepare stage: the successor
// boots side-by-side while the predecessor — still the machine's DriverVM,
// still owning every device — keeps serving.
func (m *Machine) newDriverVM() (*hv.VM, *kernel.Kernel, error) {
	drvVM, err := m.HV.CreateVM("driver", m.cfg.DriverRAM)
	if err != nil {
		return nil, nil, err
	}
	drvK := kernel.New("driver", kernel.Linux, m.Env, drvVM.Space, m.cfg.DriverRAM)
	if m.Kind != KindNative {
		// Threads in a VM pay the vCPU-kick penalty on wake-ups.
		drvK.WakePenalty = perf.CostVMExitIRQ
	}
	return drvVM, drvK, nil
}

// attachDrivers assigns every device to the given driver VM and attaches the
// drivers, replacing the machine's driver handles. From this point the
// devices interrupt into drvVM and DMA through its domains — the previous
// driver VM, if any, no longer serves them.
func (m *Machine) attachDrivers(drvVM *hv.VM, drvK *kernel.Kernel) error {
	// irqFor wires a device interrupt to a driver-VM ISR with the
	// platform's delivery latency.
	irqFor := func(isr func()) func() {
		if m.Kind == KindNative {
			return func() { m.Env.After(perf.CostNativeIRQ, isr) }
		}
		vec := drvVM.AllocVector()
		drvVM.RegisterISR(vec, isr)
		return func() { m.HV.DeviceInterrupt(drvVM, vec) }
	}

	// GPU + DRM.
	bars := []hv.BAR{{Name: "gpu-vram", SPA: vramBase, Size: m.cfg.VRAM}}
	assign := m.HV.AssignDevice
	if m.cfg.DataIsolation {
		assign = m.HV.AssignDeviceIsolated
	}
	dom, gpas, err := assign(drvVM, "gpu", bars)
	if err != nil {
		return err
	}
	m.GPUDomain = dom
	var gpuRaise func()
	drmDrv, err := drm.AttachModel(drvK, m.GPU, m.gpuModel, gpas[0], func(isr func()) {
		gpuRaise = irqFor(isr)
	})
	if err != nil {
		return err
	}
	m.DRM = drmDrv
	m.GPU.Connect(&iommu.DMA{Dom: dom, Phys: m.HV.Phys, Env: m.Env}, func() { gpuRaise() })
	m.MCGate = hv.NewGate("gpu-mc")
	if m.cfg.DataIsolation {
		// The hypervisor takes the MC register page away from the driver
		// VM (§5.3 change iii) and the driver switches to the
		// isolation-compatible configuration.
		m.MCGate.Revoke()
		if err := m.DRM.EnableDataIsolation(m.HV, drvVM, dom, m.MCGate); err != nil {
			return err
		}
	}

	// NIC + netmap.
	nicDom, _, err := m.HV.AssignDevice(drvVM, "nic", nil)
	if err != nil {
		return err
	}
	m.NIC.Connect(&iommu.DMA{Dom: nicDom, Phys: m.HV.Phys, Env: m.Env})
	m.Netmap, err = netmapdrv.Attach(drvK, m.NIC)
	if err != nil {
		return err
	}

	// Input devices + evdev.
	m.Evdev = evdev.Attach(drvK, m.Mouse, PathMouse)
	m.Kbdev = evdev.Attach(drvK, m.Keyboard, PathKeyboard)

	// Camera + UVC.
	camDom, _, err := m.HV.AssignDevice(drvVM, "camera", nil)
	if err != nil {
		return err
	}
	m.Camera.Connect(&iommu.DMA{Dom: camDom, Phys: m.HV.Phys, Env: m.Env})
	m.UVC = uvc.Attach(drvK, m.Camera, PathCamera)

	// Audio + PCM.
	audDom, _, err := m.HV.AssignDevice(drvVM, "audio", nil)
	if err != nil {
		return err
	}
	m.Audio.Connect(&iommu.DMA{Dom: audDom, Phys: m.HV.Phys, Env: m.Env})
	m.PCM, err = pcm.Attach(drvK, m.Audio, PathAudio)
	return err
}

// AppKernel returns the kernel applications run on for the baseline
// platforms. On a Paradice machine, use AddGuest and the Guest's kernel.
func (m *Machine) AppKernel() *kernel.Kernel {
	return m.DriverK
}

// Guests returns the guest VMs added so far.
func (m *Machine) Guests() []*Guest { return m.guests }

// StartTrace installs a fresh tracer on the machine's environment and
// returns it. Every layer a request touches — system call, CVD frontend,
// hypervisor, inter-VM interrupts, CVD backend, driver, device — emits spans
// and metrics into it from then on; export with trace.WriteChrome /
// WriteMetrics. Tracing reads the virtual clock but never advances it, so a
// traced run's timings are bit-identical to an untraced run of the same
// seed. Call StopTrace when done (tests must, or the tracer registry pins
// the environment for the process lifetime).
func (m *Machine) StartTrace() *trace.Tracer {
	t := trace.New()
	trace.Install(m.Env, t)
	return t
}

// StopTrace detaches the machine's tracer, returning it (nil if none was
// installed). The returned tracer's events and metrics remain readable.
func (m *Machine) StopTrace() *trace.Tracer {
	t := trace.Get(m.Env)
	trace.Uninstall(m.Env)
	return t
}

// Tracer returns the machine's installed tracer, or nil.
func (m *Machine) Tracer() *trace.Tracer { return trace.Get(m.Env) }

// Run drives the simulation until the event calendar drains.
func (m *Machine) Run() { m.Env.Run() }

// RunUntil drives the simulation up to the given time.
func (m *Machine) RunUntil(t sim.Time) { m.Env.RunUntil(t) }

// Errors.
var errNotParadice = fmt.Errorf("paradice: guests exist only on a Paradice machine")
