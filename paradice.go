// Package paradice assembles the full systems the paper evaluates: the
// Paradice machine of Figure 1(c) — a bare-metal hypervisor, a driver VM
// owning the real devices and drivers through device assignment, and guest
// VMs reaching those devices through virtual device files served by the
// Common Virtual Driver — plus the two baselines every experiment compares
// against, native execution and direct device assignment.
//
// A Machine carries one of each device class from Table 1: a Radeon-class
// GPU behind the DRM driver, an e1000-class NIC behind netmap, an evdev
// mouse, a UVC camera, and an HD Audio PCM device. Applications are
// simulated processes that issue file operations against device files; on a
// Paradice machine they run in guest VMs added with AddGuest, on the
// baselines they run directly on the machine's kernel.
package paradice

import (
	"fmt"
	"strings"

	"paradice/internal/cvd"
	"paradice/internal/devfile"
	"paradice/internal/device/audio"
	"paradice/internal/device/camera"
	"paradice/internal/device/gpu"
	"paradice/internal/device/input"
	"paradice/internal/device/nic"
	"paradice/internal/driver/drm"
	"paradice/internal/driver/evdev"
	"paradice/internal/driver/netmapdrv"
	"paradice/internal/driver/pcm"
	"paradice/internal/driver/uvc"
	"paradice/internal/handover"
	"paradice/internal/hv"
	"paradice/internal/ioctlan"
	"paradice/internal/iommu"
	"paradice/internal/kernel"
	"paradice/internal/perf"
	"paradice/internal/sim"
	"paradice/internal/supervise"
	"paradice/internal/trace"
)

// Mode selects the CVD transport.
type Mode = cvd.Mode

// Transport modes (re-exported from the CVD).
const (
	Interrupts = cvd.Interrupts
	Polling    = cvd.Polling
	Adaptive   = cvd.Adaptive
)

// OS flavors for guests (re-exported from the kernel).
const (
	Linux   = kernel.Linux
	FreeBSD = kernel.FreeBSD
)

// Kind is the platform variant a Machine embodies.
type Kind int

// Platform kinds.
const (
	// KindParadice is the paper's system: driver VM + guest VMs + CVD.
	KindParadice Kind = iota
	// KindNative runs applications directly on the machine that owns the
	// devices — the "Native" baseline.
	KindNative
	// KindDeviceAssign runs applications in a VM that owns the devices
	// directly — the "Device-Assign" baseline (interrupts routed through
	// the hypervisor, everything else native).
	KindDeviceAssign
)

func (k Kind) String() string {
	switch k {
	case KindNative:
		return "native"
	case KindDeviceAssign:
		return "device-assign"
	default:
		return "paradice"
	}
}

// Config sizes and configures a Machine. Zero values select defaults.
type Config struct {
	// HostRAM is total system memory (default 512 MiB).
	HostRAM uint64
	// DriverRAM is the driver VM's (or the native machine's) memory
	// (default 64 MiB).
	DriverRAM uint64
	// GuestRAM is each guest VM's memory (default 64 MiB).
	GuestRAM uint64
	// VRAM is GPU device memory (default 1 GiB, lazily backed).
	VRAM uint64
	// Mode selects the CVD transport (default Interrupts).
	Mode Mode
	// DataIsolation enables the §4.2/§5.3 device data isolation
	// configuration for the GPU.
	DataIsolation bool
	// DIPartitions is how many guests share the GPU memory under data
	// isolation (default 2, giving each half the VRAM as in §6).
	DIPartitions int
	// GPUModel selects the card (Table 1: "hd6450" (default), "hd4650",
	// "x1300", "gm965"). Device data isolation requires the Evergreen-class
	// hd6450 (§5.3).
	GPUModel string
	// PollWindow is the CVD busy-poll window in polling mode (default the
	// paper's 200 µs; §5.1 notes the value was chosen empirically — the
	// "ablation" experiment sweeps it).
	PollWindow sim.Duration
	// Supervision enables the driver-VM watchdog (internal/supervise): a
	// hypervisor-layer health monitor that heartbeats every CVD channel,
	// restarts the driver VM automatically on failure under an
	// exponential-backoff budget, and degrades dead devices to fail-fast
	// ENODEV when the budget is exhausted. The watchdog keeps the event
	// calendar busy, so supervised machines should be driven with RunUntil
	// (or stop the supervisor before draining with Run). Paradice only.
	Supervision bool
	// Supervise tunes the watchdog; zero fields take the supervise package
	// defaults. Ignored unless Supervision is set.
	Supervise supervise.Config
	// RequestDeadline bounds every forwarded file operation's wait for its
	// response; a stuck request fails with ETIMEDOUT instead of blocking
	// its issuer forever. Zero means no deadline. When Supervision is on
	// and this is zero, a default of 50 ms is applied so detection by
	// timeout is never slower than detection by watchdog.
	RequestDeadline sim.Duration
	// MapCache enables the CVD bulk-transfer fast path: large read/write
	// buffers are granted once per file and mapped into the driver VM by the
	// backend, so repeated transfers to the same file skip the per-request
	// hypervisor-assisted copy. Off by default (the paper's §4.1 behavior);
	// the "bulk" experiment measures the crossover.
	MapCache bool
	// MapThreshold is the minimum transfer size in bytes routed through the
	// map cache; zero selects cvd.DefaultMapThreshold (2 KB, from the cost
	// model). Ignored unless MapCache is set.
	MapThreshold int
	// CoalesceWindow batches CVD doorbells in interrupt mode: slots posted
	// within the window of the first share one inter-VM IRQ. Zero disables
	// coalescing. Polling mode and watchdog heartbeats are unaffected.
	CoalesceWindow sim.Duration
	// BatchSize upgrades doorbell coalescing to multi-entry batches: the
	// frontend flushes a submission descriptor as soon as BatchSize slots
	// are pending (or CoalesceWindow elapses, whichever is first), and the
	// backend batches up to BatchSize completions per response IRQ under
	// the same deadline. Requires CoalesceWindow > 0; zero keeps the
	// deadline-only coalescing behavior.
	BatchSize int
	// TLB arms the hypervisor's software TLB: per-VM caches of
	// guest-VA→system-PA translations consulted by the assisted-copy and
	// buffer-mapping paths before the full per-page walks of §5.2, with
	// deterministic invalidation on page-table edits, EPT changes, grant
	// revocation, and driver-VM restart. Off by default (the paper's
	// walk-every-time behavior); the "walkcache" experiment measures the
	// hit-rate speedup.
	TLB bool
	// GrantBatch batches grant hypercalls: a file operation's whole grant
	// vector is declared in one hypervisor crossing and backend validations
	// hit the hypervisor's cached vector instead of re-scanning the shared
	// page. Off by default.
	GrantBatch bool
	// Admission maps a QoS class (kernel.Task.QoS) to the CVD ring occupancy
	// at which that class stops being admitted: once a device's ring holds
	// that many in-flight requests, further requests from the class fail
	// fast with EAGAIN instead of queueing. Classes absent from the map are
	// admitted until the ring is full (EBUSY). Applied to every frontend a
	// guest paravirtualizes. nil disables admission control (the default).
	Admission map[uint8]int
	// HandoverDrain bounds the quiesce stage of a planned driver-VM handover
	// (HandoverDriverVM): if in-flight operations have not completed this
	// long after the frontends enter drain mode, the handover aborts back to
	// the still-live predecessor. Zero selects handover.DefaultDrainDeadline.
	HandoverDrain sim.Duration
	// DriverShards partitions the machine's devices across N driver VMs
	// (default 1 — the paper's single driver VM of Figure 1(c)). The standard
	// devices are placed round-robin across shards at boot; harness devices
	// registered via OnDriverVMBoot route by PinDevice pin or a stable hash
	// of the path (hv.Placement). Each shard has its own kernel, its own CVD
	// backends, its own supervisor (under Supervision), and restarts or hands
	// over independently, so one shard's outage leaves the other shards'
	// guests undisturbed. Paradice machines only; the baselines always run 1.
	DriverShards int
	// Workers sizes each driver-VM shard's shared backend worker pool
	// (cvd.Pool): per-channel dispatchers enqueue forwarded operations into
	// per-channel FIFO queues drained by this many worker threads under
	// deficit round-robin, bounding driver-VM thread count and isolating
	// quiet guests from a hot one. Zero keeps the paper's thread-per-
	// operation behavior.
	Workers int
	// FairQuantum is the worker pool's deficit-round-robin quantum: how many
	// consecutive operations one channel may be served before the scheduler
	// moves on (default 1 — strict round-robin). Ignored unless Workers > 0.
	FairQuantum int
}

func (c Config) withDefaults() Config {
	if c.HostRAM == 0 {
		c.HostRAM = 512 << 20
	}
	if c.DriverRAM == 0 {
		c.DriverRAM = 64 << 20
	}
	if c.GuestRAM == 0 {
		c.GuestRAM = 64 << 20
	}
	if c.VRAM == 0 {
		c.VRAM = 1 << 30
	}
	if c.DIPartitions == 0 {
		c.DIPartitions = 2
	}
	if c.DriverShards < 1 {
		c.DriverShards = 1
	}
	if c.FairQuantum < 1 {
		c.FairQuantum = 1
	}
	return c
}

// Standard device paths on every Machine.
const (
	PathGPU      = "/dev/dri/card0"
	PathMouse    = "/dev/input/event0"
	PathKeyboard = "/dev/input/event1"
	PathCamera   = "/dev/video0"
	PathAudio    = "/dev/snd/pcmC0D0p"
	PathNetmap   = "/dev/netmap"
)

// DriverShard is one driver VM of a (possibly sharded) machine: its VM and
// kernel, and — when Config.Workers > 0 — the worker pool shared by every
// CVD backend in it. A restart or handover of the shard replaces VM, K, and
// Pool in place; the DriverShard pointer itself is stable for the machine's
// lifetime.
type DriverShard struct {
	Index int
	VM    *hv.VM
	K     *kernel.Kernel
	Pool  *cvd.Pool
}

// Machine is one assembled platform.
type Machine struct {
	Kind Kind
	Env  *sim.Env
	HV   *hv.Hypervisor

	// DriverVM/DriverK host the real drivers (and, on the baselines, the
	// applications too). On a sharded machine they alias shard 0.
	DriverVM *hv.VM
	DriverK  *kernel.Kernel

	// Devices and their drivers.
	GPU      *gpu.GPU
	DRM      *drm.Driver
	NIC      *nic.NIC
	Netmap   *netmapdrv.Driver
	Mouse    *input.Device
	Evdev    *evdev.Driver
	Keyboard *input.Device
	Kbdev    *evdev.Driver
	Camera   *camera.Device
	UVC      *uvc.Driver
	Audio    *audio.Device
	PCM      *pcm.Driver

	// GPUDomain and MCGate are the isolation handles for the GPU.
	GPUDomain *iommu.Domain
	MCGate    *hv.Gate

	cfg        Config
	gpuModel   drm.Model
	drmSpec    map[devfile.IoctlCmd]*ioctlan.CmdSpec
	guests     []*Guest
	foreground *Guest

	// Driver-VM sharding: the shards (shard 0 aliased by DriverVM/DriverK)
	// and the path→shard routing table.
	shards    []*DriverShard
	placement *hv.Placement

	// Driver-VM restart/supervision state. On a sharded machine each shard
	// has its own supervisor; supervisor aliases shard 0's.
	restarting   bool
	restartEpoch uint64
	supervisor   *supervise.Supervisor
	supervisors  []*supervise.Supervisor
	// handovers is the machine's planned-handover episode log (committed and
	// aborted alike), in order.
	handovers []handover.Episode
	// onDriverBoot hooks run against every freshly booted driver kernel
	// (construction, restart replacement, handover successor).
	onDriverBoot []func(*kernel.Kernel) error
}

// vramBase is where the GPU aperture sits in system-physical space, clear
// of host RAM.
const vramBase = 0x8_0000_0000

// New builds a Paradice machine: hypervisor, driver VM with all five device
// classes assigned, drivers loaded, ready for AddGuest.
func New(cfg Config) (*Machine, error) { return build(KindParadice, cfg) }

// NewNative builds the native baseline: the same devices and drivers on a
// bare machine (interrupts at native latency, no CVD, no hypervisor in the
// data path).
func NewNative(cfg Config) (*Machine, error) { return build(KindNative, cfg) }

// NewDeviceAssignment builds the direct device assignment baseline: one VM
// owns the devices; interrupts route through the hypervisor.
func NewDeviceAssignment(cfg Config) (*Machine, error) { return build(KindDeviceAssign, cfg) }

func build(kind Kind, cfg Config) (*Machine, error) {
	cfg = cfg.withDefaults()
	env := sim.NewEnv()
	h := hv.New(env, cfg.HostRAM)
	if cfg.TLB {
		// Armed before any VM exists, so every VM — driver and guests alike —
		// gets its translation cache and invalidation hooks from creation.
		h.EnableTLB()
	}
	m := &Machine{Kind: kind, Env: env, HV: h, cfg: cfg}

	// Create the devices once — they are hardware and survive driver VM
	// restarts. An explicit Config.VRAM overrides the model's memory size.
	model, err0 := drm.LookupModel(cfg.GPUModel)
	if err0 != nil {
		return nil, err0
	}
	vram := cfg.VRAM
	if cfg.VRAM == 1<<30 && model.VRAM != 0 {
		vram = model.VRAM
	}
	m.cfg.VRAM = vram
	m.GPU = gpu.New(env, h.Phys, vramBase, vram)
	m.NIC = nic.New(env)
	mouseLat := perf.CostVMExitIRQ
	if kind == KindNative {
		mouseLat = perf.CostNativeIRQ
	}
	m.Mouse = input.New(env, "mouse", sim.Duration(mouseLat))
	m.Keyboard = input.New(env, "keyboard", sim.Duration(mouseLat))
	m.Camera = camera.New(env)
	m.Audio = audio.New(env)

	var err error
	m.gpuModel, err = drm.LookupModel(cfg.GPUModel)
	if err != nil {
		return nil, err
	}
	m.drmSpec, err = drm.AnalyzedSpecs()
	if err != nil {
		return nil, err
	}

	// Device placement across driver-VM shards. The baselines always run a
	// single "shard" (their one machine/VM owns everything); on a Paradice
	// machine the standard devices go round-robin in canonical class order,
	// so e.g. 2 shards split GPU+input from NIC+camera+audio.
	if kind != KindParadice {
		m.cfg.DriverShards = 1
	}
	m.placement = hv.NewPlacement(m.cfg.DriverShards)
	for i, path := range []string{PathGPU, PathNetmap, PathMouse, PathKeyboard, PathCamera, PathAudio} {
		m.placement.Assign(path, i%m.placement.Shards())
	}
	m.shards = make([]*DriverShard, m.placement.Shards())
	for i := range m.shards {
		m.shards[i] = &DriverShard{Index: i}
	}
	for i := range m.shards {
		if err := m.bootShard(i); err != nil {
			return nil, err
		}
	}
	if cfg.Supervision {
		if kind != KindParadice {
			return nil, fmt.Errorf("paradice: supervision requires a driver VM (Paradice machines only)")
		}
		if m.cfg.RequestDeadline == 0 {
			m.cfg.RequestDeadline = 50 * sim.Millisecond
		}
		// One supervisor per shard, each sweeping (and restarting) only its
		// own shard's channels. With a single shard the proc-panic hook and
		// sweep behavior are exactly the single-supervisor seed's.
		for _, sh := range m.shards {
			scfg := cfg.Supervise
			if len(m.shards) > 1 {
				name := sh.K.Name
				scfg.OwnsProc = func(proc string) bool {
					return strings.HasSuffix(proc, "@"+name)
				}
			}
			m.supervisors = append(m.supervisors, supervise.Start(env, shardTarget{m: m, idx: sh.Index}, scfg))
		}
		m.supervisor = m.supervisors[0]
		env.OnProcPanic = func(pp *sim.ProcPanic) bool {
			for _, s := range m.supervisors {
				if s.HandleProcPanic(pp) {
					return true
				}
			}
			return false
		}
	}
	return m, nil
}

// bootShard creates shard i's driver VM and kernel, assigns the shard's
// devices to it, attaches their drivers, replays the boot hooks, and (when
// Config.Workers > 0) starts the shard's worker pool. Called at machine
// construction and again by RestartDriverShard; shard 0 doubles as the
// machine's DriverVM/DriverK.
func (m *Machine) bootShard(i int) error {
	drvVM, drvK, err := m.newShardVM(i)
	if err != nil {
		return err
	}
	sh := m.shards[i]
	sh.VM, sh.K = drvVM, drvK
	if i == 0 {
		m.DriverVM, m.DriverK = drvVM, drvK
	}
	if err := m.attachDrivers(drvVM, drvK, i); err != nil {
		return err
	}
	if err := m.runDriverBootHooks(drvK); err != nil {
		return err
	}
	if m.cfg.Workers > 0 && m.Kind == KindParadice {
		sh.Pool = cvd.NewPool(drvK, m.cfg.Workers, m.cfg.FairQuantum)
	}
	return nil
}

// Shards returns the machine's driver-VM shards (length 1 unless
// Config.DriverShards asked for more).
func (m *Machine) Shards() []*DriverShard { return m.shards }

// ShardFor returns the driver-VM shard serving a device path — the pinned
// shard for the standard devices and PinDevice'd paths, the stable hash
// route otherwise.
func (m *Machine) ShardFor(path string) *DriverShard {
	return m.shards[m.placement.Route(path)]
}

// PinDevice routes a device path to a specific driver-VM shard, overriding
// the hash fallback. Call before any guest paravirtualizes the path; the
// device itself must be registered in that shard's kernel (OnDriverVMBoot
// hooks run against every shard, so hook-installed devices qualify
// everywhere).
func (m *Machine) PinDevice(path string, shard int) error {
	if m.Kind != KindParadice {
		return ErrNoDriverVM
	}
	if shard < 0 || shard >= len(m.shards) {
		return fmt.Errorf("paradice: shard %d out of range (machine has %d)", shard, len(m.shards))
	}
	m.placement.Assign(path, shard)
	return nil
}

// OnDriverVMBoot registers fn to run against the driver kernel of every
// driver VM this machine boots from now on — restart replacements and
// handover successors alike, in every shard — and runs it against each
// current driver kernel immediately. Harnesses use it to install auxiliary
// devices (e.g. the load sink) that must exist in every driver-VM
// generation, or a Reconnect after a restart (and a CompleteHandover during
// a handover) cannot find the device in the replacement kernel.
func (m *Machine) OnDriverVMBoot(fn func(*kernel.Kernel) error) error {
	if m.Kind != KindParadice {
		return ErrNoDriverVM
	}
	m.onDriverBoot = append(m.onDriverBoot, fn)
	for _, sh := range m.shards {
		if err := fn(sh.K); err != nil {
			return err
		}
	}
	return nil
}

// runDriverBootHooks replays the registered OnDriverVMBoot hooks against a
// freshly booted driver kernel.
func (m *Machine) runDriverBootHooks(k *kernel.Kernel) error {
	for _, fn := range m.onDriverBoot {
		if err := fn(k); err != nil {
			return err
		}
	}
	return nil
}

// newShardVM boots shard i's driver VM and kernel WITHOUT attaching any
// device. A planned handover calls this during its prepare stage: the
// successor boots side-by-side while the predecessor — still the shard's
// VM, still owning its devices — keeps serving. Shard 0 keeps the seed's
// "driver" name (its generations are byte-compatible with the unsharded
// machine); shard i > 0 is "driver<i+1>". Every generation gets its own
// event lane, so a sharded machine's shards interleave through the
// deterministic lane merge.
func (m *Machine) newShardVM(i int) (*hv.VM, *kernel.Kernel, error) {
	name := "driver"
	if i > 0 {
		name = fmt.Sprintf("driver%d", i+1)
	}
	drvVM, err := m.HV.CreateVM(name, m.cfg.DriverRAM)
	if err != nil {
		return nil, nil, err
	}
	drvK := kernel.New(name, kernel.Linux, m.Env, drvVM.Space, m.cfg.DriverRAM)
	drvK.Lane = m.Env.AllocLane()
	if m.Kind != KindNative {
		// Threads in a VM pay the vCPU-kick penalty on wake-ups.
		drvK.WakePenalty = perf.CostVMExitIRQ
	}
	return drvVM, drvK, nil
}

// attachDrivers assigns shard's devices to the given driver VM and attaches
// their drivers, replacing the machine's driver handles for those devices.
// From this point the shard's devices interrupt into drvVM and DMA through
// its domains — the previous driver VM, if any, no longer serves them. On a
// single-shard machine every device belongs to shard 0 and this is the full
// seed attach sequence.
func (m *Machine) attachDrivers(drvVM *hv.VM, drvK *kernel.Kernel, shard int) error {
	owns := func(path string) bool { return m.placement.Route(path) == shard }
	// irqFor wires a device interrupt to a driver-VM ISR with the
	// platform's delivery latency.
	irqFor := func(isr func()) func() {
		if m.Kind == KindNative {
			return func() { m.Env.After(perf.CostNativeIRQ, isr) }
		}
		vec := drvVM.AllocVector()
		drvVM.RegisterISR(vec, isr)
		return func() { m.HV.DeviceInterrupt(drvVM, vec) }
	}

	// GPU + DRM.
	if owns(PathGPU) {
		bars := []hv.BAR{{Name: "gpu-vram", SPA: vramBase, Size: m.cfg.VRAM}}
		assign := m.HV.AssignDevice
		if m.cfg.DataIsolation {
			assign = m.HV.AssignDeviceIsolated
		}
		dom, gpas, err := assign(drvVM, "gpu", bars)
		if err != nil {
			return err
		}
		m.GPUDomain = dom
		var gpuRaise func()
		drmDrv, err := drm.AttachModel(drvK, m.GPU, m.gpuModel, gpas[0], func(isr func()) {
			gpuRaise = irqFor(isr)
		})
		if err != nil {
			return err
		}
		m.DRM = drmDrv
		m.GPU.Connect(&iommu.DMA{Dom: dom, Phys: m.HV.Phys, Env: m.Env}, func() { gpuRaise() })
		m.MCGate = hv.NewGate("gpu-mc")
		if m.cfg.DataIsolation {
			// The hypervisor takes the MC register page away from the driver
			// VM (§5.3 change iii) and the driver switches to the
			// isolation-compatible configuration.
			m.MCGate.Revoke()
			if err := m.DRM.EnableDataIsolation(m.HV, drvVM, dom, m.MCGate); err != nil {
				return err
			}
		}
	}

	// NIC + netmap.
	if owns(PathNetmap) {
		nicDom, _, err := m.HV.AssignDevice(drvVM, "nic", nil)
		if err != nil {
			return err
		}
		m.NIC.Connect(&iommu.DMA{Dom: nicDom, Phys: m.HV.Phys, Env: m.Env})
		m.Netmap, err = netmapdrv.Attach(drvK, m.NIC)
		if err != nil {
			return err
		}
	}

	// Input devices + evdev.
	if owns(PathMouse) {
		m.Evdev = evdev.Attach(drvK, m.Mouse, PathMouse)
	}
	if owns(PathKeyboard) {
		m.Kbdev = evdev.Attach(drvK, m.Keyboard, PathKeyboard)
	}

	// Camera + UVC.
	if owns(PathCamera) {
		camDom, _, err := m.HV.AssignDevice(drvVM, "camera", nil)
		if err != nil {
			return err
		}
		m.Camera.Connect(&iommu.DMA{Dom: camDom, Phys: m.HV.Phys, Env: m.Env})
		m.UVC = uvc.Attach(drvK, m.Camera, PathCamera)
	}

	// Audio + PCM.
	if owns(PathAudio) {
		audDom, _, err := m.HV.AssignDevice(drvVM, "audio", nil)
		if err != nil {
			return err
		}
		m.Audio.Connect(&iommu.DMA{Dom: audDom, Phys: m.HV.Phys, Env: m.Env})
		m.PCM, err = pcm.Attach(drvK, m.Audio, PathAudio)
		if err != nil {
			return err
		}
	}
	return nil
}

// AppKernel returns the kernel applications run on for the baseline
// platforms. On a Paradice machine, use AddGuest and the Guest's kernel.
func (m *Machine) AppKernel() *kernel.Kernel {
	return m.DriverK
}

// Guests returns the guest VMs added so far.
func (m *Machine) Guests() []*Guest { return m.guests }

// StartTrace installs a fresh tracer on the machine's environment and
// returns it. Every layer a request touches — system call, CVD frontend,
// hypervisor, inter-VM interrupts, CVD backend, driver, device — emits spans
// and metrics into it from then on; export with trace.WriteChrome /
// WriteMetrics. Tracing reads the virtual clock but never advances it, so a
// traced run's timings are bit-identical to an untraced run of the same
// seed. Call StopTrace when done (tests must, or the tracer registry pins
// the environment for the process lifetime).
func (m *Machine) StartTrace() *trace.Tracer {
	t := trace.New()
	trace.Install(m.Env, t)
	return t
}

// StopTrace detaches the machine's tracer, returning it (nil if none was
// installed). The returned tracer's events and metrics remain readable.
func (m *Machine) StopTrace() *trace.Tracer {
	t := trace.Get(m.Env)
	trace.Uninstall(m.Env)
	return t
}

// Tracer returns the machine's installed tracer, or nil.
func (m *Machine) Tracer() *trace.Tracer { return trace.Get(m.Env) }

// Run drives the simulation until the event calendar drains.
func (m *Machine) Run() { m.Env.Run() }

// RunUntil drives the simulation up to the given time.
func (m *Machine) RunUntil(t sim.Time) { m.Env.RunUntil(t) }

// Errors.
var errNotParadice = fmt.Errorf("paradice: guests exist only on a Paradice machine")
