package usrlib

import (
	"encoding/binary"

	"paradice/internal/devfile"
	"paradice/internal/driver/netmapdrv"
	"paradice/internal/kernel"
	"paradice/internal/mem"
	"paradice/internal/sim"
)

// NetmapCtx is the netmap user API: the mmap'ed ring and buffer area plus
// the poll-per-batch sync discipline of pkt-gen.
type NetmapCtx struct {
	T  *kernel.Task
	P  *kernel.Process
	FD int

	Base     mem.GuestVirt // mapped area: ring page + buffers
	NumSlots int
	BufSize  int
	head     uint32
}

// Ring page field offsets (mirroring the driver's layout).
const (
	nmOffHead   = 0
	nmOffTail   = 4
	nmOffRxHead = 16
	nmOffRxTail = 20
	nmSlotTab   = 64
)

// CostFillPerPkt is the user-space cost to construct one packet in a netmap
// buffer (header templating + slot update), per the netmap paper's ~100 ns
// per-packet generator cost.
const CostFillPerPkt = 100 * sim.Nanosecond

// OpenNetmap opens /dev/netmap, registers the interface, and maps the
// shared area.
func OpenNetmap(t *kernel.Task, path string) (*NetmapCtx, error) {
	fd, err := t.Open(path, devfile.ORdWr)
	if err != nil {
		return nil, err
	}
	arg, err := t.Proc.Alloc(16)
	if err != nil {
		return nil, err
	}
	if _, err := t.Ioctl(fd, netmapdrv.NIOCREGIF, arg); err != nil {
		return nil, err
	}
	out := make([]byte, 16)
	if err := t.Proc.Mem.Read(arg, out); err != nil {
		return nil, err
	}
	numSlots := int(binary.LittleEndian.Uint32(out[0:]))
	bufSize := int(binary.LittleEndian.Uint32(out[4:]))
	memPages := binary.LittleEndian.Uint32(out[8:])
	base, err := t.Mmap(fd, uint64(memPages)*mem.PageSize, 0)
	if err != nil {
		return nil, err
	}
	return &NetmapCtx{T: t, P: t.Proc, FD: fd, Base: base, NumSlots: numSlots, BufSize: bufSize}, nil
}

// Close unmaps and closes.
func (n *NetmapCtx) Close() error { return n.T.Close(n.FD) }

// bufVA returns the user address of slot i's packet buffer.
func (n *NetmapCtx) bufVA(slot int) mem.GuestVirt {
	return n.Base + mem.PageSize + mem.GuestVirt(slot*n.BufSize)
}

// Tail reads the ring tail the driver last published.
func (n *NetmapCtx) Tail() (uint32, error) {
	var b [4]byte
	if err := n.P.UserRead(n.T, n.Base+nmOffTail, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// Free returns how many slots the application may fill right now without
// overwriting packets the hardware has not transmitted.
func (n *NetmapCtx) Free() (int, error) {
	tail, err := n.Tail()
	if err != nil {
		return 0, err
	}
	return (int(tail) + n.NumSlots - int(n.head) - 1) % n.NumSlots, nil
}

// Drain syncs until the hardware has transmitted everything outstanding, so
// a rate measurement does not count packets still sitting in the ring.
func (n *NetmapCtx) Drain() error {
	for {
		free, err := n.Free()
		if err != nil {
			return err
		}
		if free == n.NumSlots-1 {
			return nil
		}
		if err := n.Sync(); err != nil {
			return err
		}
		// Let the wire make progress before re-checking.
		n.T.Sim().Advance(10 * sim.Microsecond)
	}
}

// FillBatch writes batch packets of pktLen bytes into consecutive ring
// slots and advances the ring head — the generator's inner loop.
func (n *NetmapCtx) FillBatch(batch, pktLen int, payload byte) error {
	pkt := make([]byte, pktLen)
	for i := range pkt {
		pkt[i] = payload + byte(i)
	}
	for i := 0; i < batch; i++ {
		slot := int(n.head)
		if err := n.P.UserWrite(n.T, n.bufVA(slot), pkt); err != nil {
			return err
		}
		var lenB [4]byte
		binary.LittleEndian.PutUint32(lenB[:], uint32(pktLen))
		if err := n.P.UserWrite(n.T, n.Base+nmSlotTab+mem.GuestVirt(slot*4), lenB[:]); err != nil {
			return err
		}
		n.T.Sim().Advance(CostFillPerPkt)
		n.head = (n.head + 1) % uint32(n.NumSlots)
	}
	var headB [4]byte
	binary.LittleEndian.PutUint32(headB[:], n.head)
	return n.P.UserWrite(n.T, n.Base+nmOffHead, headB[:])
}

// Sync issues the per-batch poll that hands the filled slots to hardware,
// blocking while the ring is out of space.
func (n *NetmapCtx) Sync() error {
	for {
		mask, err := n.T.Poll(n.FD, devfile.PollOut, -1)
		if err != nil {
			return err
		}
		if mask&devfile.PollOut != 0 {
			return nil
		}
	}
}

// --- receive side ---

// rxBufVA returns the user address of RX slot i's packet buffer (the RX
// buffer area follows the TX buffers).
func (n *NetmapCtx) rxBufVA(slot int) mem.GuestVirt {
	return n.Base + mem.PageSize + mem.GuestVirt(n.NumSlots*n.BufSize) +
		mem.GuestVirt(slot*n.BufSize)
}

// RecvBatch waits for received frames (one poll, like pkt-gen's receive
// side), reads every pending frame, and advances the RX head. Returns the
// frames' payloads.
func (n *NetmapCtx) RecvBatch() ([][]byte, error) {
	if _, err := n.T.Poll(n.FD, devfile.PollIn, -1); err != nil {
		return nil, err
	}
	var hb, tb [4]byte
	if err := n.P.UserRead(n.T, n.Base+nmOffRxHead, hb[:]); err != nil {
		return nil, err
	}
	if err := n.P.UserRead(n.T, n.Base+nmOffRxTail, tb[:]); err != nil {
		return nil, err
	}
	head := binary.LittleEndian.Uint32(hb[:])
	tail := binary.LittleEndian.Uint32(tb[:])
	var out [][]byte
	for head != tail {
		var lb [4]byte
		if err := n.P.UserRead(n.T, n.Base+nmSlotTab+mem.GuestVirt(n.NumSlots*4)+mem.GuestVirt(head*4), lb[:]); err != nil {
			return nil, err
		}
		length := int(binary.LittleEndian.Uint32(lb[:]))
		if length < 0 || length > n.BufSize {
			length = 0
		}
		frame := make([]byte, length)
		if err := n.P.UserRead(n.T, n.rxBufVA(int(head)), frame); err != nil {
			return nil, err
		}
		out = append(out, frame)
		head = (head + 1) % uint32(n.NumSlots)
	}
	binary.LittleEndian.PutUint32(hb[:], head)
	if err := n.P.UserWrite(n.T, n.Base+nmOffRxHead, hb[:]); err != nil {
		return nil, err
	}
	// A follow-up poll lets the driver repost the consumed buffers.
	if _, err := n.T.Poll(n.FD, devfile.PollIn|devfile.PollOut, 0); err != nil {
		return nil, err
	}
	return out, nil
}
