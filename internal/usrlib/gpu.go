// Package usrlib contains the user-space device libraries the workloads
// link against — the role Mesa/Gallium, libdrm, and the netmap API play in
// the paper's evaluation. Everything here runs as guest application code:
// it touches the device only through file operations on the device file and
// through memory the device file mmaps, which is exactly why it works
// unchanged on native, device-assignment, and Paradice platforms.
package usrlib

import (
	"encoding/binary"
	"math"

	"paradice/internal/devfile"
	"paradice/internal/device/gpu"
	"paradice/internal/driver/drm"
	"paradice/internal/kernel"
	"paradice/internal/mem"
)

// GPUCtx is a libdrm-style connection to the GPU device file.
type GPUCtx struct {
	T  *kernel.Task
	P  *kernel.Process
	FD int

	// scratch is a reusable user buffer for ioctl argument structs and
	// command-stream staging.
	scratch mem.GuestVirt
}

const scratchSize = 2 * mem.PageSize

// OpenGPU opens the GPU device file and prepares the scratch area.
func OpenGPU(t *kernel.Task, path string) (*GPUCtx, error) {
	fd, err := t.Open(path, devfile.ORdWr)
	if err != nil {
		return nil, err
	}
	scratch, err := t.Proc.Alloc(scratchSize)
	if err != nil {
		return nil, err
	}
	return &GPUCtx{T: t, P: t.Proc, FD: fd, scratch: scratch}, nil
}

// Close releases the device file.
func (g *GPUCtx) Close() error { return g.T.Close(g.FD) }

func (g *GPUCtx) ioctl(cmd devfile.IoctlCmd, arg []byte) (int32, []byte, error) {
	if err := g.P.Mem.Write(g.scratch, arg); err != nil {
		return 0, nil, err
	}
	ret, err := g.T.Ioctl(g.FD, cmd, g.scratch)
	if err != nil {
		return ret, nil, err
	}
	out := make([]byte, len(arg))
	if err := g.P.Mem.Read(g.scratch, out); err != nil {
		return ret, nil, err
	}
	return ret, out, nil
}

// Info queries the device identity.
func (g *GPUCtx) Info() (vendor, device uint32, vram uint64, err error) {
	_, out, err := g.ioctl(drm.IoctlInfo, make([]byte, 32))
	if err != nil {
		return 0, 0, 0, err
	}
	return binary.LittleEndian.Uint32(out[0:]),
		binary.LittleEndian.Uint32(out[4:]),
		binary.LittleEndian.Uint64(out[8:]), nil
}

// CreateBO allocates a VRAM buffer object and returns its handle.
func (g *GPUCtx) CreateBO(size uint64) (uint32, error) {
	arg := make([]byte, 16)
	binary.LittleEndian.PutUint64(arg[0:], size)
	_, out, err := g.ioctl(drm.IoctlGemCreate, arg)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(out[0:]), nil
}

// MapBO maps a buffer object into the application and returns its address.
func (g *GPUCtx) MapBO(handle uint32, size uint64) (mem.GuestVirt, error) {
	arg := make([]byte, 16)
	binary.LittleEndian.PutUint32(arg[0:], handle)
	_, out, err := g.ioctl(drm.IoctlGemMmap, arg)
	if err != nil {
		return 0, err
	}
	pgoff := binary.LittleEndian.Uint64(out[8:])
	return g.T.Mmap(g.FD, size, pgoff)
}

// UnmapBO unmaps a previously mapped buffer object.
func (g *GPUCtx) UnmapBO(va mem.GuestVirt, size uint64) error {
	return g.T.Munmap(va, size)
}

// SubmitIB encodes a command stream as a one-chunk CS ioctl: the header and
// chunk descriptor are built in user memory, so the driver's nested copies
// execute against real application bytes. Returns the fence sequence.
func (g *GPUCtx) SubmitIB(words []uint32) (uint32, error) {
	// Layout within scratch: [0:16) header, [16:32) chunk desc,
	// [64: ...) IB words.
	ibOff := mem.GuestVirt(64)
	ib := make([]byte, len(words)*4)
	for i, w := range words {
		binary.LittleEndian.PutUint32(ib[i*4:], w)
	}
	if len(ib) > scratchSize-64 {
		return 0, kernel.EINVAL
	}
	if err := g.P.Mem.Write(g.scratch+ibOff, ib); err != nil {
		return 0, err
	}
	desc := make([]byte, 16)
	binary.LittleEndian.PutUint64(desc[0:], uint64(g.scratch+ibOff))
	binary.LittleEndian.PutUint32(desc[8:], uint32(len(words)))
	binary.LittleEndian.PutUint32(desc[12:], drm.ChunkIB)
	descOff := mem.GuestVirt(16)
	if err := g.P.Mem.Write(g.scratch+descOff, desc); err != nil {
		return 0, err
	}
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint32(hdr[0:], 1) // one chunk
	binary.LittleEndian.PutUint64(hdr[8:], uint64(g.scratch+descOff))
	if err := g.P.Mem.Write(g.scratch, hdr); err != nil {
		return 0, err
	}
	ret, err := g.T.Ioctl(g.FD, drm.IoctlCS, g.scratch)
	if err != nil {
		return 0, err
	}
	return uint32(ret), nil
}

// WaitFence blocks until the fence has signaled.
func (g *GPUCtx) WaitFence(fence uint32) error {
	arg := make([]byte, 8)
	binary.LittleEndian.PutUint32(arg[0:], fence)
	// The wait argument lives past the CS staging area in scratch.
	waitOff := mem.GuestVirt(32)
	if err := g.P.Mem.Write(g.scratch+waitOff, arg); err != nil {
		return err
	}
	_, err := g.T.Ioctl(g.FD, drm.IoctlWaitFence, g.scratch+waitOff)
	return err
}

// Draw submits a draw of the given GPU work with an optional texture and
// waits for it — one frame's worth of rendering.
func (g *GPUCtx) Draw(dst, tex uint32, cycles uint64) error {
	fence, err := g.SubmitIB([]uint32{
		gpu.OpDraw, dst, tex, uint32(cycles), uint32(cycles >> 32),
	})
	if err != nil {
		return err
	}
	return g.WaitFence(fence)
}

// Compute submits an order-n matrix multiplication C = A*B over three
// buffer objects and waits for completion.
func (g *GPUCtx) Compute(a, b, c uint32, n int) error {
	fence, err := g.SubmitIB([]uint32{gpu.OpCompute, a, b, c, uint32(n)})
	if err != nil {
		return err
	}
	return g.WaitFence(fence)
}

// WriteF32 stores a float32 slice into mapped memory (with page-fault
// handling, since mapped buffer objects fault in on first touch).
func (g *GPUCtx) WriteF32(va mem.GuestVirt, data []float32) error {
	buf := make([]byte, len(data)*4)
	for i, v := range data {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
	}
	return g.P.UserWrite(g.T, va, buf)
}

// ReadF32 loads a float32 slice from mapped memory.
func (g *GPUCtx) ReadF32(va mem.GuestVirt, n int) ([]float32, error) {
	buf := make([]byte, n*4)
	if err := g.P.UserRead(g.T, va, buf); err != nil {
		return nil, err
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	return out, nil
}
