package usrlib

import (
	"paradice/internal/devfile"
	"paradice/internal/kernel"
)

// This file packages the §8 application-side recovery idiom: when the driver
// VM is restarted under a running application, file descriptors opened before
// the restart are stale — in-flight operations fail with EREMOTE (or
// ETIMEDOUT when a per-request deadline fired first), and later operations on
// the stale fd fail with EINVAL. The fix is always the same: reopen the
// device file and retry. WithReopen is that loop; applications that link it
// survive driver VM restarts without code changes, which is the whole point
// of recovery at the device file boundary.

// IsRestartErr reports whether err is one of the transient errnos a driver
// VM restart produces at the device file boundary: EREMOTE (operation was in
// flight when the driver VM died), ETIMEDOUT (per-request deadline fired on
// an unresponsive backend), or EINVAL (the fd went stale across the
// restart). ENODEV is deliberately NOT transient — it means the supervisor
// exhausted its restart budget and degraded the device, so retrying is
// hopeless.
func IsRestartErr(err error) bool {
	return kernel.IsErrno(err, kernel.EREMOTE) ||
		kernel.IsErrno(err, kernel.ETIMEDOUT) ||
		kernel.IsErrno(err, kernel.EINVAL)
}

// WithReopen opens the device file at path and runs op on the descriptor.
// When op fails with a restart-transient errno, the descriptor is closed,
// the device file reopened, and op retried — up to attempts tries in total.
// Any other error (including ENODEV from a degraded device) is returned
// immediately; so is the last transient error once attempts are exhausted.
//
// The reopen itself may also fail transiently (the replacement driver VM is
// still booting); that consumes an attempt too, so a bounded caller cannot
// spin forever against a machine that never heals.
func WithReopen(t *kernel.Task, path string, flags devfile.OpenFlags, attempts int, op func(fd int) error) error {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for try := 0; try < attempts; try++ {
		var fd int
		fd, err = t.Open(path, flags)
		if err != nil {
			if IsRestartErr(err) {
				continue
			}
			return err
		}
		err = op(fd)
		t.Close(fd)
		if err == nil || !IsRestartErr(err) {
			return err
		}
	}
	return err
}
