package usrlib_test

import (
	"testing"

	"paradice"
	"paradice/internal/kernel"
	"paradice/internal/mem"
	"paradice/internal/usrlib"
)

func runNative(t *testing.T, fn func(p *kernel.Process, tk *kernel.Task, m *paradice.Machine)) {
	t.Helper()
	m, err := paradice.NewNative(paradice.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.AppKernel().NewProcess("app")
	if err != nil {
		t.Fatal(err)
	}
	p.SpawnTask("main", func(tk *kernel.Task) { fn(p, tk, m) })
	m.Run()
}

func TestOpenGPUAndInfo(t *testing.T) {
	runNative(t, func(p *kernel.Process, tk *kernel.Task, m *paradice.Machine) {
		g, err := usrlib.OpenGPU(tk, paradice.PathGPU)
		if err != nil {
			t.Error(err)
			return
		}
		defer g.Close()
		vendor, device, vram, err := g.Info()
		if err != nil {
			t.Error(err)
			return
		}
		if vendor != 0x1002 || device != 0x6779 || vram != 1<<30 {
			t.Errorf("info = %#x %#x %d", vendor, device, vram)
		}
	})
}

func TestWriteReadF32ThroughMappedBO(t *testing.T) {
	runNative(t, func(p *kernel.Process, tk *kernel.Task, m *paradice.Machine) {
		g, err := usrlib.OpenGPU(tk, paradice.PathGPU)
		if err != nil {
			t.Error(err)
			return
		}
		bo, err := g.CreateBO(mem.PageSize)
		if err != nil {
			t.Error(err)
			return
		}
		va, err := g.MapBO(bo, mem.PageSize)
		if err != nil {
			t.Error(err)
			return
		}
		data := []float32{1.5, -2.25, 3.125, 0}
		if err := g.WriteF32(va, data); err != nil {
			t.Error(err)
			return
		}
		got, err := g.ReadF32(va, len(data))
		if err != nil {
			t.Error(err)
			return
		}
		for i := range data {
			if got[i] != data[i] {
				t.Errorf("f32[%d] = %f, want %f", i, got[i], data[i])
			}
		}
		if err := g.UnmapBO(va, mem.PageSize); err != nil {
			t.Error(err)
		}
	})
}

func TestSubmitIBOversizeRejected(t *testing.T) {
	runNative(t, func(p *kernel.Process, tk *kernel.Task, m *paradice.Machine) {
		g, err := usrlib.OpenGPU(tk, paradice.PathGPU)
		if err != nil {
			t.Error(err)
			return
		}
		words := make([]uint32, 4096) // larger than the scratch staging area
		if _, err := g.SubmitIB(words); err == nil {
			t.Error("oversize IB accepted")
		}
	})
}

func TestDrawWaitsForFence(t *testing.T) {
	runNative(t, func(p *kernel.Process, tk *kernel.Task, m *paradice.Machine) {
		g, err := usrlib.OpenGPU(tk, paradice.PathGPU)
		if err != nil {
			t.Error(err)
			return
		}
		fb, err := g.CreateBO(mem.PageSize)
		if err != nil {
			t.Error(err)
			return
		}
		start := tk.Sim().Now()
		if err := g.Draw(fb, 0, 3_000_000); err != nil {
			t.Error(err)
			return
		}
		if e := tk.Sim().Now().Sub(start); e < 3_000_000 {
			t.Errorf("Draw returned after %v, GPU work is 3ms", e)
		}
	})
}

func TestNetmapCtxLayout(t *testing.T) {
	runNative(t, func(p *kernel.Process, tk *kernel.Task, m *paradice.Machine) {
		nm, err := usrlib.OpenNetmap(tk, paradice.PathNetmap)
		if err != nil {
			t.Error(err)
			return
		}
		defer nm.Close()
		if nm.NumSlots != 256 || nm.BufSize != 2048 {
			t.Errorf("layout %d/%d", nm.NumSlots, nm.BufSize)
		}
		free, err := nm.Free()
		if err != nil || free != nm.NumSlots-1 {
			t.Errorf("initial free = %d err=%v", free, err)
		}
		if err := nm.FillBatch(4, 64, 0xAB); err != nil {
			t.Error(err)
			return
		}
		if err := nm.Sync(); err != nil {
			t.Error(err)
			return
		}
		if err := nm.Drain(); err != nil {
			t.Error(err)
			return
		}
		free, _ = nm.Free()
		if free != nm.NumSlots-1 {
			t.Errorf("free after drain = %d", free)
		}
	})
	// (packet content verified by the NIC checksum in driver tests)
}

// The netmap receive path end to end: frames injected at the wire are
// DMA-written into the mapped RX buffers and read by the application.
func TestNetmapReceivePath(t *testing.T) {
	runNative(t, func(p *kernel.Process, tk *kernel.Task, m *paradice.Machine) {
		nm, err := usrlib.OpenNetmap(tk, paradice.PathNetmap)
		if err != nil {
			t.Error(err)
			return
		}
		defer nm.Close()
		for i := 0; i < 5; i++ {
			frame := make([]byte, 60+i)
			for j := range frame {
				frame[j] = byte(i*16 + j)
			}
			m.NIC.InjectRx(frame)
		}
		frames, err := nm.RecvBatch()
		if err != nil {
			t.Error(err)
			return
		}
		for len(frames) < 5 {
			more, err := nm.RecvBatch()
			if err != nil {
				t.Error(err)
				return
			}
			frames = append(frames, more...)
		}
		if len(frames) != 5 {
			t.Errorf("received %d frames, want 5", len(frames))
			return
		}
		for i, f := range frames {
			if len(f) != 60+i {
				t.Errorf("frame %d length %d, want %d", i, len(f), 60+i)
				continue
			}
			for j, b := range f {
				if b != byte(i*16+j) {
					t.Errorf("frame %d byte %d = %#x", i, j, b)
					break
				}
			}
		}
		if m.NIC.RxPackets != 5 || m.NIC.RxDrops != 0 {
			t.Errorf("nic rx=%d drops=%d", m.NIC.RxPackets, m.NIC.RxDrops)
		}
	})
}

// With no receive buffers posted (device not opened/registered), frames
// from the wire are dropped, as on hardware.
func TestNetmapRxDropsWithoutBuffers(t *testing.T) {
	m, err := paradice.NewNative(paradice.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m.NIC.InjectRx(make([]byte, 64))
	m.Run()
	if m.NIC.RxDrops != 1 {
		t.Fatalf("drops = %d, want 1", m.NIC.RxDrops)
	}
}
