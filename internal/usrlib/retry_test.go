package usrlib_test

// Tests for the §8 application-side recovery idiom: WithReopen must carry an
// application across a driver VM restart (stale fd → EINVAL → reopen →
// success), refuse to retry a degraded device (ENODEV is not transient), and
// give up once its attempt budget is spent.

import (
	"testing"

	"paradice"
	"paradice/internal/devfile"
	"paradice/internal/driver/drm"
	"paradice/internal/kernel"
	"paradice/internal/usrlib"
)

func TestIsRestartErrClassification(t *testing.T) {
	for _, e := range []kernel.Errno{kernel.EREMOTE, kernel.ETIMEDOUT, kernel.EINVAL} {
		if !usrlib.IsRestartErr(e) {
			t.Errorf("%v should be restart-transient", e)
		}
	}
	for _, e := range []kernel.Errno{kernel.ENODEV, kernel.EIO, kernel.EACCES} {
		if usrlib.IsRestartErr(e) {
			t.Errorf("%v must not be restart-transient", e)
		}
	}
	if usrlib.IsRestartErr(nil) {
		t.Error("nil classified as restart-transient")
	}
}

func newGuestRig(t *testing.T) (*paradice.Machine, *paradice.Guest) {
	t.Helper()
	m, err := paradice.New(paradice.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := m.AddGuest("guest", paradice.Linux)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Paravirtualize(paradice.PathGPU); err != nil {
		t.Fatal(err)
	}
	return m, g
}

// gemCreate issues one GEM-create ioctl on fd — a minimal real operation
// that needs live per-fd driver state, so it distinguishes a fresh fd from a
// stale one.
func gemCreate(tk *kernel.Task, fd int) error {
	arg, err := tk.Proc.Alloc(16)
	if err != nil {
		return err
	}
	buf := make([]byte, 16)
	buf[1] = 0x10 // size = 4096
	if err := tk.Proc.Mem.Write(arg, buf); err != nil {
		return err
	}
	_, err = tk.Ioctl(fd, drm.IoctlGemCreate, arg)
	return err
}

func TestWithReopenSurvivesDriverVMRestart(t *testing.T) {
	m, g := newGuestRig(t)
	attempts := 0
	var opErr error
	p, err := g.NewProcess("app")
	if err != nil {
		t.Fatal(err)
	}
	p.SpawnTask("main", func(tk *kernel.Task) {
		opErr = usrlib.WithReopen(tk, paradice.PathGPU, devfile.ORdWr, 3, func(fd int) error {
			attempts++
			if attempts == 1 {
				// The driver VM is restarted while this fd is open: the fd
				// goes stale, the op fails transiently, WithReopen reopens.
				if err := m.RestartDriverVM(); err != nil {
					t.Error(err)
				}
			}
			return gemCreate(tk, fd)
		})
	})
	m.Run()
	if opErr != nil {
		t.Fatalf("WithReopen did not survive the restart: %v", opErr)
	}
	if attempts != 2 {
		t.Fatalf("op ran %d times, want 2 (stale-fd failure + retry)", attempts)
	}
}

func TestWithReopenDoesNotRetryDegradedDevice(t *testing.T) {
	_, g := newGuestRig(t)
	g.Frontends[paradice.PathGPU].SetDegraded(true)
	attempts := 0
	var opErr error
	p, err := g.NewProcess("app")
	if err != nil {
		t.Fatal(err)
	}
	p.SpawnTask("main", func(tk *kernel.Task) {
		opErr = usrlib.WithReopen(tk, paradice.PathGPU, devfile.ORdWr, 5, func(fd int) error {
			attempts++
			return nil
		})
	})
	g.M.Run()
	if !kernel.IsErrno(opErr, kernel.ENODEV) {
		t.Fatalf("err = %v, want ENODEV surfaced immediately", opErr)
	}
	if attempts != 0 {
		t.Fatalf("op ran %d times on a degraded device, want 0", attempts)
	}
}

func TestWithReopenExhaustsAttempts(t *testing.T) {
	_, g := newGuestRig(t)
	// The backend is dead and nobody restarts it: every open fast-fails
	// EREMOTE until the attempt budget runs out.
	g.Backends[paradice.PathGPU].Kill()
	attempts := 0
	var opErr error
	p, err := g.NewProcess("app")
	if err != nil {
		t.Fatal(err)
	}
	p.SpawnTask("main", func(tk *kernel.Task) {
		opErr = usrlib.WithReopen(tk, paradice.PathGPU, devfile.ORdWr, 3, func(fd int) error {
			attempts++
			return nil
		})
	})
	g.M.Run()
	if !kernel.IsErrno(opErr, kernel.EREMOTE) {
		t.Fatalf("err = %v, want the last transient EREMOTE", opErr)
	}
	if attempts != 0 {
		t.Fatalf("op ran %d times with a dead backend, want 0", attempts)
	}
}
