// Package grant implements Paradice's grant table (§4.1, §5.1): a single
// memory page shared between a guest VM's CVD frontend and the hypervisor.
// Before forwarding a file operation, the frontend declares the operation's
// legitimate memory operations as entries in this page; the backend attaches
// the entry's reference number to every hypervisor memory-operation request,
// and the hypervisor validates each request against the declared entries.
//
// The table is a real byte-encoded page — both sides parse the same bytes,
// the frontend through its guest address space and the hypervisor through
// the page's system-physical address — so nothing about the validation can
// accidentally rely on Go state smuggled across the VM boundary.
package grant

import (
	"encoding/binary"
	"fmt"

	"paradice/internal/mem"
)

// Kind classifies a declared memory operation.
type Kind uint8

// Memory operation kinds.
const (
	KindInvalid  Kind = iota
	KindCopyTo        // driver copies data TO guest process memory
	KindCopyFrom      // driver copies data FROM guest process memory
	KindMapPage       // driver maps pages INTO the guest process address space
	KindUnmap         // driver unmaps pages from the guest process address space
)

func (k Kind) String() string {
	switch k {
	case KindCopyTo:
		return "copy-to-user"
	case KindCopyFrom:
		return "copy-from-user"
	case KindMapPage:
		return "map-page"
	case KindUnmap:
		return "unmap-page"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Op is one legitimate memory operation: the driver may perform accesses of
// the given kind anywhere within [VA, VA+Len).
type Op struct {
	Kind Kind
	VA   mem.GuestVirt
	Len  uint64
}

// Page layout: 128 slots of 32 bytes each.
const (
	slotSize  = 32
	slotCount = mem.PageSize / slotSize

	offRef    = 0  // u32; 0 means free
	offKind   = 4  // u8
	offVA     = 8  // u64
	offLen    = 16 // u64
	offPTRoot = 24 // u64 (guest page-table root of the issuing process)
)

// Slots is the number of grant entries one table page holds.
const Slots = slotCount

// Accessor is how one side of the boundary reads and writes the shared page.
type Accessor interface {
	ReadAt(off int, b []byte) error
	WriteAt(off int, b []byte) error
}

// GuestAccessor accesses the page through a guest-physical address — the
// frontend's view.
type GuestAccessor struct {
	Space *mem.GuestSpace
	GPA   mem.GuestPhys
}

// ReadAt implements Accessor.
func (a *GuestAccessor) ReadAt(off int, b []byte) error {
	return a.Space.Read(a.GPA+mem.GuestPhys(off), b)
}

// WriteAt implements Accessor.
func (a *GuestAccessor) WriteAt(off int, b []byte) error {
	return a.Space.Write(a.GPA+mem.GuestPhys(off), b)
}

// PhysAccessor accesses the page through its system-physical address — the
// hypervisor's view.
type PhysAccessor struct {
	Phys *mem.PhysMem
	SPA  mem.SysPhys
}

// ReadAt implements Accessor.
func (a *PhysAccessor) ReadAt(off int, b []byte) error {
	return a.Phys.Read(a.SPA+mem.SysPhys(off), b)
}

// WriteAt implements Accessor.
func (a *PhysAccessor) WriteAt(off int, b []byte) error {
	return a.Phys.Write(a.SPA+mem.SysPhys(off), b)
}

// Table is the frontend's handle for declaring and revoking grants.
type Table struct {
	acc     Accessor
	nextRef uint32
	// onRevoke subscribers run after a reference's slots are zeroed. The
	// grant-map cache registers here: a mapping established under a revoked
	// reference must be torn down deterministically, in the same instant the
	// declaration disappears from the shared page, so a driver VM holding a
	// stale mapping faults instead of silently reading freed guest memory.
	onRevoke []func(ref uint32)
	// onDeclare subscribers run after a declaration's slots are all written —
	// never on the rolled-back table-full path, whose partial slots are gone
	// by the time Declare returns. The hypervisor's grant-validation cache
	// (Config.GrantBatch) primes itself here, modeling the batched hypercall
	// that hands the hypervisor the whole entry vector in one crossing.
	onDeclare []func(ref uint32, ptRoot mem.GuestPhys, ops []Op)
}

// NewTable wraps a zeroed shared page.
func NewTable(acc Accessor) *Table {
	return &Table{acc: acc, nextRef: 1}
}

// Declare writes the operations into free slots under a fresh reference
// number and returns the reference. ptRoot is the page-table root of the
// process issuing the file operation; the hypervisor walks that table when
// executing the operations.
func (t *Table) Declare(ptRoot mem.GuestPhys, ops []Op) (uint32, error) {
	if len(ops) == 0 {
		return 0, fmt.Errorf("grant: empty declaration")
	}
	ref := t.nextRef
	t.nextRef++
	if t.nextRef == 0 { // refs must stay nonzero
		t.nextRef = 1
	}
	written := 0
	for slot := 0; slot < slotCount && written < len(ops); slot++ {
		var refB [4]byte
		if err := t.acc.ReadAt(slot*slotSize+offRef, refB[:]); err != nil {
			return 0, err
		}
		if binary.LittleEndian.Uint32(refB[:]) != 0 {
			continue
		}
		if err := writeSlot(t.acc, slot, ref, ptRoot, ops[written]); err != nil {
			return 0, err
		}
		written++
	}
	if written < len(ops) {
		// Roll back what we wrote: the table page is full.
		_ = revoke(t.acc, ref)
		return 0, fmt.Errorf("grant: table full (%d slots)", slotCount)
	}
	for _, fn := range t.onDeclare {
		fn(ref, ptRoot, ops)
	}
	return ref, nil
}

// Revoke frees every slot declared under ref and notifies OnRevoke
// subscribers so cached state keyed on the reference (grant-map cache
// entries) is invalidated in the same instant.
func (t *Table) Revoke(ref uint32) error {
	if err := revoke(t.acc, ref); err != nil {
		return err
	}
	if ref != 0 {
		for _, fn := range t.onRevoke {
			fn(ref)
		}
	}
	return nil
}

// OnRevoke registers fn to run after every successful Revoke, with the
// revoked reference. Registration order is invocation order (determinism).
func (t *Table) OnRevoke(fn func(ref uint32)) {
	t.onRevoke = append(t.onRevoke, fn)
}

// OnDeclare registers fn to run after every fully successful Declare, with
// the fresh reference, the issuing process's page-table root, and the
// declared operation vector. Registration order is invocation order. The
// callback must not retain ops past its return without copying.
func (t *Table) OnDeclare(fn func(ref uint32, ptRoot mem.GuestPhys, ops []Op)) {
	t.onDeclare = append(t.onDeclare, fn)
}

func writeSlot(acc Accessor, slot int, ref uint32, ptRoot mem.GuestPhys, op Op) error {
	var buf [slotSize]byte
	binary.LittleEndian.PutUint32(buf[offRef:], ref)
	buf[offKind] = uint8(op.Kind)
	binary.LittleEndian.PutUint64(buf[offVA:], uint64(op.VA))
	binary.LittleEndian.PutUint64(buf[offLen:], op.Len)
	binary.LittleEndian.PutUint64(buf[offPTRoot:], uint64(ptRoot))
	return acc.WriteAt(slot*slotSize, buf[:])
}

func revoke(acc Accessor, ref uint32) error {
	var zero [slotSize]byte
	for slot := 0; slot < slotCount; slot++ {
		var refB [4]byte
		if err := acc.ReadAt(slot*slotSize+offRef, refB[:]); err != nil {
			return err
		}
		if binary.LittleEndian.Uint32(refB[:]) == ref {
			if err := acc.WriteAt(slot*slotSize, zero[:]); err != nil {
				return err
			}
		}
	}
	return nil
}

// FindRef scans the page for any slot declared under ref and returns its
// page-table root. It performs NO kind or range checking — it exists for
// diagnostics and for the fault-injection harness's deliberately weakened
// grant check ("grant.validate.skip"), never as a validation path.
func FindRef(acc Accessor, ref uint32) (mem.GuestPhys, bool, error) {
	if ref == 0 {
		return 0, false, nil
	}
	for slot := 0; slot < slotCount; slot++ {
		var buf [slotSize]byte
		if err := acc.ReadAt(slot*slotSize, buf[:]); err != nil {
			return 0, false, err
		}
		if binary.LittleEndian.Uint32(buf[offRef:]) == ref {
			return mem.GuestPhys(binary.LittleEndian.Uint64(buf[offPTRoot:])), true, nil
		}
	}
	return 0, false, nil
}

// DeniedError reports a memory operation the grant table does not cover —
// the hypervisor's strict runtime check failing a compromised driver VM.
type DeniedError struct {
	Ref  uint32
	Kind Kind
	VA   mem.GuestVirt
	Len  uint64
}

func (e *DeniedError) Error() string {
	return fmt.Sprintf("grant: ref %d does not permit %v of %d bytes at %v",
		e.Ref, e.Kind, e.Len, e.VA)
}

// Validate is the hypervisor's check: it scans the page for an entry with
// the given reference and kind whose range covers [va, va+n), and returns
// the page-table root declared with it. Unmap requests are additionally
// satisfied by a MapPage entry covering the range, since tearing down a
// granted mapping is always legitimate.
func Validate(acc Accessor, ref uint32, kind Kind, va mem.GuestVirt, n uint64) (mem.GuestPhys, error) {
	if ref == 0 {
		return 0, &DeniedError{Ref: ref, Kind: kind, VA: va, Len: n}
	}
	for slot := 0; slot < slotCount; slot++ {
		var buf [slotSize]byte
		if err := acc.ReadAt(slot*slotSize, buf[:]); err != nil {
			return 0, err
		}
		if binary.LittleEndian.Uint32(buf[offRef:]) != ref {
			continue
		}
		k := Kind(buf[offKind])
		if k != kind && !(kind == KindUnmap && k == KindMapPage) {
			continue
		}
		eva := mem.GuestVirt(binary.LittleEndian.Uint64(buf[offVA:]))
		elen := binary.LittleEndian.Uint64(buf[offLen:])
		if va >= eva && uint64(va)+n <= uint64(eva)+elen && uint64(va)+n >= uint64(va) {
			return mem.GuestPhys(binary.LittleEndian.Uint64(buf[offPTRoot:])), nil
		}
	}
	return 0, &DeniedError{Ref: ref, Kind: kind, VA: va, Len: n}
}
