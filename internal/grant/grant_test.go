package grant

import (
	"errors"
	"testing"
	"testing/quick"

	"paradice/internal/mem"
)

// byteAccessor is a plain in-memory page for unit tests.
type byteAccessor struct{ page [mem.PageSize]byte }

func (a *byteAccessor) ReadAt(off int, b []byte) error {
	copy(b, a.page[off:])
	return nil
}
func (a *byteAccessor) WriteAt(off int, b []byte) error {
	copy(a.page[off:], b)
	return nil
}

func TestDeclareValidateRevoke(t *testing.T) {
	acc := &byteAccessor{}
	tab := NewTable(acc)
	ref, err := tab.Declare(0x7000, []Op{
		{Kind: KindCopyTo, VA: 0x40000000, Len: 256},
		{Kind: KindCopyFrom, VA: 0x40001000, Len: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	root, err := Validate(acc, ref, KindCopyTo, 0x40000010, 100)
	if err != nil {
		t.Fatal(err)
	}
	if root != 0x7000 {
		t.Fatalf("ptRoot = %v, want gpa:0x7000", root)
	}
	if _, err := Validate(acc, ref, KindCopyFrom, 0x40001000, 64); err != nil {
		t.Fatal(err)
	}
	if err := tab.Revoke(ref); err != nil {
		t.Fatal(err)
	}
	if _, err := Validate(acc, ref, KindCopyTo, 0x40000010, 100); err == nil {
		t.Fatal("validate succeeded after revoke")
	}
}

func TestValidateRejectsOutOfRange(t *testing.T) {
	acc := &byteAccessor{}
	tab := NewTable(acc)
	ref, _ := tab.Declare(0x7000, []Op{{Kind: KindCopyTo, VA: 0x1000, Len: 256}})
	cases := []struct {
		va mem.GuestVirt
		n  uint64
	}{
		{0x0FFF, 10},  // starts before
		{0x10F0, 32},  // runs past the end
		{0x2000, 8},   // entirely elsewhere
		{0x1000, 257}, // one byte too long
	}
	for _, c := range cases {
		_, err := Validate(acc, ref, KindCopyTo, c.va, c.n)
		var d *DeniedError
		if !errors.As(err, &d) {
			t.Fatalf("Validate(%v,%d) = %v, want DeniedError", c.va, c.n, err)
		}
	}
	// Exactly the declared range is allowed.
	if _, err := Validate(acc, ref, KindCopyTo, 0x1000, 256); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsWrongKind(t *testing.T) {
	acc := &byteAccessor{}
	tab := NewTable(acc)
	ref, _ := tab.Declare(0x7000, []Op{{Kind: KindCopyTo, VA: 0x1000, Len: 256}})
	if _, err := Validate(acc, ref, KindCopyFrom, 0x1000, 16); err == nil {
		t.Fatal("a copy-to grant validated a copy-from request")
	}
}

func TestValidateRejectsWrongRef(t *testing.T) {
	acc := &byteAccessor{}
	tab := NewTable(acc)
	ref, _ := tab.Declare(0x7000, []Op{{Kind: KindCopyTo, VA: 0x1000, Len: 256}})
	if _, err := Validate(acc, ref+1, KindCopyTo, 0x1000, 16); err == nil {
		t.Fatal("wrong ref validated")
	}
	if _, err := Validate(acc, 0, KindCopyTo, 0x1000, 16); err == nil {
		t.Fatal("ref 0 validated")
	}
}

func TestUnmapSatisfiedByMapGrant(t *testing.T) {
	acc := &byteAccessor{}
	tab := NewTable(acc)
	ref, _ := tab.Declare(0x7000, []Op{{Kind: KindMapPage, VA: 0x40000000, Len: 8 * mem.PageSize}})
	if _, err := Validate(acc, ref, KindUnmap, 0x40002000, mem.PageSize); err != nil {
		t.Fatalf("unmap within a map grant should validate: %v", err)
	}
	if _, err := Validate(acc, ref, KindCopyTo, 0x40000000, 16); err == nil {
		t.Fatal("map grant validated a copy")
	}
}

func TestTableFullRollsBack(t *testing.T) {
	acc := &byteAccessor{}
	tab := NewTable(acc)
	// Fill all 64 slots.
	for i := 0; i < Slots; i++ {
		if _, err := tab.Declare(0x7000, []Op{{Kind: KindCopyTo, VA: 0x1000, Len: 16}}); err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
	}
	ref, err := tab.Declare(0x7000, []Op{{Kind: KindCopyTo, VA: 0x2000, Len: 16}})
	if err == nil {
		t.Fatalf("129th declaration succeeded with ref %d", ref)
	}
}

func TestRevokeFreesSlots(t *testing.T) {
	acc := &byteAccessor{}
	tab := NewTable(acc)
	var refs []uint32
	for i := 0; i < Slots; i++ {
		ref, err := tab.Declare(0x7000, []Op{{Kind: KindCopyTo, VA: 0x1000, Len: 16}})
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
	}
	for _, r := range refs {
		if err := tab.Revoke(r); err != nil {
			t.Fatal(err)
		}
	}
	// All 64 slots free again.
	for i := 0; i < Slots; i++ {
		if _, err := tab.Declare(0x7000, []Op{{Kind: KindCopyTo, VA: 0x1000, Len: 16}}); err != nil {
			t.Fatalf("slot %d after revoke-all: %v", i, err)
		}
	}
}

func TestOverlappingLenOverflowRejected(t *testing.T) {
	acc := &byteAccessor{}
	tab := NewTable(acc)
	ref, _ := tab.Declare(0x7000, []Op{{Kind: KindCopyTo, VA: 0x1000, Len: 256}})
	// va+n overflows uint64; must not validate.
	if _, err := Validate(acc, ref, KindCopyTo, 0x1000, ^uint64(0)); err == nil {
		t.Fatal("overflowing length validated")
	}
}

// Property: a validated request is always fully inside a declared range of
// the same ref and compatible kind (soundness of the runtime check).
func TestPropertyValidateSound(t *testing.T) {
	f := func(declVA uint32, declLen uint16, reqOff uint16, reqLen uint16, kindRaw uint8) bool {
		acc := &byteAccessor{}
		tab := NewTable(acc)
		kind := Kind(kindRaw%4 + 1)
		dlen := uint64(declLen) + 1
		ref, err := tab.Declare(0x7000, []Op{{Kind: kind, VA: mem.GuestVirt(declVA), Len: dlen}})
		if err != nil {
			return false
		}
		va := mem.GuestVirt(declVA) + mem.GuestVirt(reqOff)
		n := uint64(reqLen)
		_, err = Validate(acc, ref, kind, va, n)
		inside := uint64(reqOff)+n <= dlen
		return (err == nil) == inside
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if KindCopyTo.String() != "copy-to-user" || Kind(9).String() != "kind(9)" {
		t.Fatal("Kind.String wrong")
	}
}

// OnRevoke subscribers fire after every successful Revoke, in registration
// order, with the revoked ref — the hook the backend's grant-map cache hangs
// its invalidation on. A failed Revoke must not notify anyone.
func TestOnRevokeNotifiesSubscribersInOrder(t *testing.T) {
	acc := &byteAccessor{}
	tab := NewTable(acc)
	var calls []string
	tab.OnRevoke(func(ref uint32) { calls = append(calls, "a") })
	tab.OnRevoke(func(ref uint32) { calls = append(calls, "b") })
	ref1, err := tab.Declare(0x7000, []Op{{Kind: KindCopyTo, VA: 0x1000, Len: 64}})
	if err != nil {
		t.Fatal(err)
	}
	ref2, err := tab.Declare(0x7000, []Op{{Kind: KindCopyFrom, VA: 0x2000, Len: 64}})
	if err != nil {
		t.Fatal(err)
	}
	var seen []uint32
	tab.OnRevoke(func(ref uint32) { seen = append(seen, ref) })
	if err := tab.Revoke(ref1); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 2 || calls[0] != "a" || calls[1] != "b" {
		t.Fatalf("subscriber order = %v, want [a b]", calls)
	}
	if len(seen) != 1 || seen[0] != ref1 {
		t.Fatalf("seen = %v, want [%d]", seen, ref1)
	}
	// Revoke is idempotent: re-revoking ref1 is a no-op success, and it
	// re-notifies — subscribers (the map cache) must tolerate refs they no
	// longer hold state for.
	if err := tab.Revoke(ref1); err != nil {
		t.Fatalf("second revoke of ref1: %v", err)
	}
	if len(seen) != 2 || seen[1] != ref1 {
		t.Fatalf("seen = %v after idempotent re-revoke", seen)
	}
	if err := tab.Revoke(ref2); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen[2] != ref2 {
		t.Fatalf("seen = %v after revoking ref2", seen)
	}
}
