package ioctlan

// The backward program slicer: given a handler body, keep exactly the
// statements that are memory operations or that (transitively) feed the
// address/size arguments of one — the classic slicing criterion of
// Weiser's algorithm, applied the way the paper's Clang tool applies it.

// Slice reduces a handler body to its memory-operation slice.
func Slice(body []Stmt) []Stmt {
	needed := map[string]bool{} // locals the slice depends on
	// Two passes handle use-before-def ordering across loop iterations:
	// first discover all needed locals, then emit.
	for changed := true; changed; {
		changed = sliceNeeds(body, needed)
	}
	return sliceEmit(body, needed)
}

// sliceNeeds accumulates the set of locals that feed memory operations,
// returning whether anything new was discovered.
func sliceNeeds(body []Stmt, needed map[string]bool) bool {
	changed := false
	add := func(e Expr) {
		for _, name := range exprDeps(e) {
			if !needed[name] {
				needed[name] = true
				changed = true
			}
		}
	}
	var walk func([]Stmt, []Expr)
	walk = func(stmts []Stmt, conds []Expr) {
		for _, s := range stmts {
			switch s := s.(type) {
			case CopyFromUser:
				add(s.Src)
				add(s.Size)
				for _, c := range conds {
					add(c)
				}
			case CopyToUser:
				add(s.Dst)
				add(s.Size)
				for _, c := range conds {
					add(c)
				}
			case Let:
				if needed[s.Name] {
					add(s.Val)
				}
			case For:
				inner := conds
				if bodyHasMemOp(s.Body) || bodyFeedsNeeded(s.Body, needed) {
					add(s.Count)
					inner = append(append([]Expr(nil), conds...), s.Count)
				}
				walk(s.Body, inner)
			case If:
				if bodyHasMemOp(s.Then) || bodyHasMemOp(s.Else) ||
					bodyFeedsNeeded(s.Then, needed) || bodyFeedsNeeded(s.Else, needed) {
					add(s.Cond)
				}
				inner := append(append([]Expr(nil), conds...), s.Cond)
				walk(s.Then, inner)
				walk(s.Else, inner)
			}
		}
	}
	walk(body, nil)
	// Buffers read through LoadField need their defining CopyFromUser; the
	// exprDeps above already return the buffer name, and the CopyFromUser
	// case keeps any copy whose Dst is needed:
	var keepDefs func([]Stmt)
	keepDefs = func(stmts []Stmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case CopyFromUser:
				if needed[s.Dst] {
					add(s.Src)
					add(s.Size)
				}
			case For:
				keepDefs(s.Body)
			case If:
				keepDefs(s.Then)
				keepDefs(s.Else)
			}
		}
	}
	keepDefs(body)
	return changed
}

func sliceEmit(body []Stmt, needed map[string]bool) []Stmt {
	var out []Stmt
	for _, s := range body {
		switch s := s.(type) {
		case CopyFromUser, CopyToUser:
			out = append(out, s)
		case Let:
			if needed[s.Name] {
				out = append(out, s)
			}
		case For:
			inner := sliceEmit(s.Body, needed)
			if len(inner) > 0 {
				out = append(out, For{Var: s.Var, Count: s.Count, Body: inner})
			}
		case If:
			thenS := sliceEmit(s.Then, needed)
			elseS := sliceEmit(s.Else, needed)
			if len(thenS) > 0 || len(elseS) > 0 {
				out = append(out, If{Cond: s.Cond, Then: thenS, Else: elseS})
			}
		case DriverWork:
			// sliced away
		}
	}
	return out
}

func bodyHasMemOp(stmts []Stmt) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case CopyFromUser, CopyToUser:
			return true
		case For:
			if bodyHasMemOp(s.Body) {
				return true
			}
		case If:
			if bodyHasMemOp(s.Then) || bodyHasMemOp(s.Else) {
				return true
			}
		}
	}
	return false
}

func bodyFeedsNeeded(stmts []Stmt, needed map[string]bool) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case Let:
			if needed[s.Name] {
				return true
			}
		case CopyFromUser:
			if needed[s.Dst] {
				return true
			}
		case For:
			if needed[s.Var] || bodyFeedsNeeded(s.Body, needed) {
				return true
			}
		case If:
			if bodyFeedsNeeded(s.Then, needed) || bodyFeedsNeeded(s.Else, needed) {
				return true
			}
		}
	}
	return false
}

// exprDeps returns the local names (including LoadField source buffers) an
// expression reads.
func exprDeps(e Expr) []string {
	switch e := e.(type) {
	case Local:
		return []string{string(e)}
	case LoadField:
		return []string{e.Buf}
	case Bin:
		return append(exprDeps(e.L), exprDeps(e.R)...)
	default:
		return nil
	}
}

// dynamic reports whether an expression depends on user data (LoadField) or
// on a local bound from user data — decided after slicing by propagating
// through Lets and loop variables with data-dependent bounds.
func exprDynamic(e Expr, dyn map[string]bool) bool {
	switch e := e.(type) {
	case LoadField:
		return true
	case Local:
		return dyn[string(e)]
	case Bin:
		return exprDynamic(e.L, dyn) || exprDynamic(e.R, dyn)
	default:
		return false
	}
}
