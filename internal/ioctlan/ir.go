// Package ioctlan reproduces Paradice's ioctl static-analysis tool (§4.1,
// §5.3). The paper's tool parses driver C source with Clang, slices the
// ioctl handler down to the statements that affect its memory operations,
// executes simple slices offline to produce static grant entries, and
// executes slices with data dependences (nested copies) just-in-time in the
// CVD frontend.
//
// This reproduction cannot parse C with a stdlib-only Go toolchain, so
// drivers ship their ioctl handlers in two forms: the executable Go code,
// and an AST in the mini-IR defined here — the stand-in for Clang's parse
// tree. Everything downstream of the parse is reproduced: the backward
// slicer, the offline evaluator producing static entries, the runtime (JIT)
// evaluator resolving nested copies against live guest memory, and the
// extracted-code line counts the paper reports. A conformance property test
// in the cvd package proves that the memory operations a driver's Go
// handler actually performs are always covered by grants derived from this
// analysis.
package ioctlan

import (
	"fmt"

	"paradice/internal/devfile"
)

// Expr is an expression in the handler IR.
type Expr interface{ exprString() string }

// Arg is the ioctl's untyped pointer argument.
type Arg struct{}

// CmdSize is the payload size encoded in the ioctl command number (the
// OS-provided macro the paper's technique one leans on).
type CmdSize struct{}

// Const is an integer literal.
type Const uint64

// Local references the value of a Let binding or loop variable.
type Local string

// LoadField reads Size bytes at offset Off from a kernel buffer previously
// filled by CopyFromUser into the named local. Any memory operation whose
// arguments depend on a LoadField is a nested copy: its parameters come
// from user data and can only be resolved at runtime.
type LoadField struct {
	Buf  string
	Off  uint64
	Size uint64 // 1, 2, 4 or 8
}

// Bin is a binary arithmetic expression.
type Bin struct {
	Op   byte // '+', '-', '*'
	L, R Expr
}

func (Arg) exprString() string     { return "arg" }
func (CmdSize) exprString() string { return "_IOC_SIZE(cmd)" }
func (c Const) exprString() string { return fmt.Sprintf("%d", uint64(c)) }
func (l Local) exprString() string { return string(l) }
func (f LoadField) exprString() string {
	return fmt.Sprintf("%s[%d:%d]", f.Buf, f.Off, f.Off+f.Size)
}
func (b Bin) exprString() string {
	return fmt.Sprintf("(%s %c %s)", b.L.exprString(), b.Op, b.R.exprString())
}

// Stmt is a statement in the handler IR.
type Stmt interface{ stmtString() string }

// CopyFromUser copies Size bytes from user address Src into the kernel
// buffer named Dst.
type CopyFromUser struct {
	Dst  string
	Src  Expr
	Size Expr
}

// CopyToUser copies Size bytes to user address Dst. (The source kernel
// buffer is irrelevant to the analysis.)
type CopyToUser struct {
	Dst  Expr
	Size Expr
}

// Let binds a pure computation to a local name.
type Let struct {
	Name string
	Val  Expr
}

// For repeats Body Count times with Var bound to 0..Count-1.
type For struct {
	Var   string
	Count Expr
	Body  []Stmt
}

// If executes Then when Cond is nonzero, else Else. The slicer keeps both
// arms if either contains (or feeds) a memory operation; at runtime the
// evaluated condition picks the arm, and for offline evaluation a
// condition that cannot be decided statically makes the command dynamic.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// DriverWork is a statement with no memory-operation relevance — register
// pokes, command-ring writes, scheduling. The slicer removes these; they
// exist so slicing has something real to do, like the bulk of a C handler.
type DriverWork struct {
	What string
}

func (s CopyFromUser) stmtString() string {
	return fmt.Sprintf("copy_from_user(%s, %s, %s)", s.Dst, s.Src.exprString(), s.Size.exprString())
}
func (s CopyToUser) stmtString() string {
	return fmt.Sprintf("copy_to_user(%s, ..., %s)", s.Dst.exprString(), s.Size.exprString())
}
func (s Let) stmtString() string { return fmt.Sprintf("%s := %s", s.Name, s.Val.exprString()) }
func (s For) stmtString() string {
	return fmt.Sprintf("for %s < %s { ... %d stmts }", s.Var, s.Count.exprString(), len(s.Body))
}
func (s If) stmtString() string {
	return fmt.Sprintf("if %s { %d } else { %d }", s.Cond.exprString(), len(s.Then), len(s.Else))
}
func (s DriverWork) stmtString() string { return "driver: " + s.What }

// Prog is one ioctl command's handler in IR form.
type Prog struct {
	Cmd  devfile.IoctlCmd
	Name string
	Body []Stmt
}

// Format renders a statement list as indented pseudo-source, one line per
// statement — what the paper's tool emits as "extracted code".
func Format(stmts []Stmt) []string {
	var out []string
	var walk func([]Stmt, string)
	walk = func(body []Stmt, indent string) {
		for _, s := range body {
			out = append(out, indent+s.stmtString())
			switch s := s.(type) {
			case For:
				walk(s.Body, indent+"  ")
			case If:
				walk(s.Then, indent+"  ")
				if len(s.Else) > 0 {
					out = append(out, indent+"else:")
					walk(s.Else, indent+"  ")
				}
			}
		}
	}
	walk(stmts, "")
	return out
}

// Lines counts the statements in a statement list, recursively — the unit
// of the paper's "~760 lines of extracted code".
func Lines(stmts []Stmt) int {
	n := 0
	for _, s := range stmts {
		n++
		switch s := s.(type) {
		case For:
			n += Lines(s.Body)
		case If:
			n += Lines(s.Then) + Lines(s.Else)
		}
	}
	return n
}
