package ioctlan

import (
	"encoding/binary"
	"errors"
	"fmt"

	"paradice/internal/devfile"
	"paradice/internal/grant"
	"paradice/internal/mem"
)

// ErrDynamic marks a command whose memory operations depend on user data
// (nested copies) and therefore cannot be resolved offline.
var ErrDynamic = errors.New("ioctlan: memory operations depend on user data")

// StaticOp is one offline-resolved memory operation: the user address is
// ACoef*arg + Off (ACoef is 0 or 1 — addresses are either absolute or
// arg-relative), with a constant length.
type StaticOp struct {
	Kind grant.Kind
	// ACoef multiplies the ioctl pointer argument into the address.
	ACoef uint64
	// Off is the constant address term.
	Off uint64
	// Len is the operation length in bytes.
	Len uint64
}

// Materialize produces the grant operation for a concrete argument value.
func (s StaticOp) Materialize(arg uint64) grant.Op {
	return grant.Op{Kind: s.Kind, VA: mem.GuestVirt(s.ACoef*arg + s.Off), Len: s.Len}
}

// CmdSpec is the analyzer's result for one ioctl command: the slice of the
// handler that computes its memory operations, plus either offline-resolved
// static entries or the marker that the slice must run just-in-time.
type CmdSpec struct {
	Cmd     devfile.IoctlCmd
	Name    string
	Slice   []Stmt
	Static  []StaticOp // valid when !Dynamic
	Dynamic bool       // nested copies: execute Slice at runtime

	// OriginalLines and ExtractedLines report the slicing ratio, the
	// paper's "~760 lines of extracted code" metric.
	OriginalLines  int
	ExtractedLines int
}

// Analyze slices a handler and attempts offline execution, mirroring the
// paper's pipeline: slice -> execute without the device -> static entries,
// falling back to just-in-time execution for nested copies.
func Analyze(p *Prog) (*CmdSpec, error) {
	sl := Slice(p.Body)
	spec := &CmdSpec{
		Cmd:            p.Cmd,
		Name:           p.Name,
		Slice:          sl,
		OriginalLines:  Lines(p.Body),
		ExtractedLines: Lines(sl),
	}
	ops, err := execute(sl, symval{a: 1}, uint64(p.Cmd.Size()), nil)
	switch {
	case err == nil:
		for _, op := range ops {
			spec.Static = append(spec.Static, op.static)
		}
	case errors.Is(err, ErrDynamic):
		spec.Dynamic = true
	default:
		return nil, fmt.Errorf("ioctlan: %s: %w", p.Name, err)
	}
	return spec, nil
}

// UserReader resolves user-memory reads during just-in-time execution. The
// CVD frontend implements it over the issuing process's address space.
type UserReader interface {
	ReadUser(va mem.GuestVirt, buf []byte) error
}

// Ops produces the legitimate memory operations for one invocation:
// materialized static entries for offline-resolved commands, or a
// just-in-time execution of the extracted slice for nested-copy commands.
func (cs *CmdSpec) Ops(arg uint64, r UserReader) ([]grant.Op, error) {
	if !cs.Dynamic {
		out := make([]grant.Op, len(cs.Static))
		for i, s := range cs.Static {
			out[i] = s.Materialize(arg)
		}
		return out, nil
	}
	if r == nil {
		return nil, ErrDynamic
	}
	recs, err := execute(cs.Slice, symval{b: arg}, uint64(cs.Cmd.Size()), r)
	if err != nil {
		return nil, err
	}
	out := make([]grant.Op, len(recs))
	for i, rec := range recs {
		out[i] = rec.static.Materialize(0) // already concrete: ACoef folded
	}
	return out, nil
}

// MacroOps derives memory operations purely from the command number, the
// paper's first technique (§4.1): the OS-provided macros embed the payload
// size and copy direction, and the untyped pointer holds the address.
func MacroOps(cmd devfile.IoctlCmd, arg uint64) []grant.Op {
	var out []grant.Op
	if cmd.Size() == 0 {
		return nil
	}
	if cmd.Dir()&devfile.DirWrite != 0 {
		out = append(out, grant.Op{Kind: grant.KindCopyFrom, VA: mem.GuestVirt(arg), Len: uint64(cmd.Size())})
	}
	if cmd.Dir()&devfile.DirRead != 0 {
		out = append(out, grant.Op{Kind: grant.KindCopyTo, VA: mem.GuestVirt(arg), Len: uint64(cmd.Size())})
	}
	return out
}

// symval is a value linear in the ioctl argument: a*arg + b.
type symval struct {
	a, b uint64
}

func (v symval) concrete() (uint64, bool) { return v.b, v.a == 0 }

type opRec struct {
	static StaticOp
}

type execEnv struct {
	arg     symval
	cmdSize uint64
	locals  map[string]symval
	bufs    map[string][]byte // JIT: kernel copies of user data
	wanted  map[string]bool   // buffers some LoadField reads
	reader  UserReader        // nil = offline
	ops     []opRec
}

// loadedBufs collects the buffer names LoadField expressions read, so JIT
// execution fetches only the user data that feeds later operation
// arguments.
func loadedBufs(body []Stmt, into map[string]bool) {
	var walkExpr func(Expr)
	walkExpr = func(e Expr) {
		switch e := e.(type) {
		case LoadField:
			into[e.Buf] = true
		case Bin:
			walkExpr(e.L)
			walkExpr(e.R)
		}
	}
	for _, s := range body {
		switch s := s.(type) {
		case CopyFromUser:
			walkExpr(s.Src)
			walkExpr(s.Size)
		case CopyToUser:
			walkExpr(s.Dst)
			walkExpr(s.Size)
		case Let:
			walkExpr(s.Val)
		case For:
			walkExpr(s.Count)
			loadedBufs(s.Body, into)
		case If:
			walkExpr(s.Cond)
			loadedBufs(s.Then, into)
			loadedBufs(s.Else, into)
		}
	}
}

// execute runs a slice. With reader == nil this is offline execution: the
// argument stays symbolic and any touch of user data aborts with
// ErrDynamic. With a reader it is the JIT execution the frontend performs.
func execute(body []Stmt, arg symval, cmdSize uint64, reader UserReader) ([]opRec, error) {
	env := &execEnv{
		arg:     arg,
		cmdSize: cmdSize,
		locals:  make(map[string]symval),
		bufs:    make(map[string][]byte),
		wanted:  make(map[string]bool),
		reader:  reader,
	}
	loadedBufs(body, env.wanted)
	if err := env.run(body); err != nil {
		return nil, err
	}
	return env.ops, nil
}

func (e *execEnv) run(body []Stmt) error {
	for _, s := range body {
		switch s := s.(type) {
		case CopyFromUser:
			src, err := e.eval(s.Src)
			if err != nil {
				return err
			}
			size, err := e.eval(s.Size)
			if err != nil {
				return err
			}
			n, ok := size.concrete()
			if !ok {
				return ErrDynamic
			}
			e.ops = append(e.ops, opRec{StaticOp{Kind: grant.KindCopyFrom, ACoef: src.a, Off: src.b, Len: n}})
			if e.reader != nil && e.wanted[s.Dst] {
				buf := make([]byte, n)
				if err := e.reader.ReadUser(mem.GuestVirt(src.b), buf); err != nil {
					return err
				}
				e.bufs[s.Dst] = buf
			} else {
				e.bufs[s.Dst] = nil // defined; contents not needed (or offline)
			}
		case CopyToUser:
			dst, err := e.eval(s.Dst)
			if err != nil {
				return err
			}
			size, err := e.eval(s.Size)
			if err != nil {
				return err
			}
			n, ok := size.concrete()
			if !ok {
				return ErrDynamic
			}
			e.ops = append(e.ops, opRec{StaticOp{Kind: grant.KindCopyTo, ACoef: dst.a, Off: dst.b, Len: n}})
		case Let:
			v, err := e.eval(s.Val)
			if err != nil {
				return err
			}
			e.locals[s.Name] = v
		case For:
			count, err := e.eval(s.Count)
			if err != nil {
				return err
			}
			n, ok := count.concrete()
			if !ok {
				return ErrDynamic
			}
			for i := uint64(0); i < n; i++ {
				e.locals[s.Var] = symval{b: i}
				if err := e.run(s.Body); err != nil {
					return err
				}
			}
		case If:
			cond, err := e.eval(s.Cond)
			if err != nil {
				return err
			}
			c, ok := cond.concrete()
			if !ok {
				return ErrDynamic
			}
			arm := s.Else
			if c != 0 {
				arm = s.Then
			}
			if err := e.run(arm); err != nil {
				return err
			}
		case DriverWork:
			// only reachable on unsliced bodies; no effect on analysis
		}
	}
	return nil
}

func (e *execEnv) eval(x Expr) (symval, error) {
	switch x := x.(type) {
	case Arg:
		return e.arg, nil
	case CmdSize:
		return symval{b: e.cmdSize}, nil
	case Const:
		return symval{b: uint64(x)}, nil
	case Local:
		v, ok := e.locals[string(x)]
		if !ok {
			return symval{}, fmt.Errorf("ioctlan: undefined local %q", string(x))
		}
		return v, nil
	case LoadField:
		buf, defined := e.bufs[x.Buf]
		if !defined && e.reader == nil {
			return symval{}, fmt.Errorf("ioctlan: load from undefined buffer %q", x.Buf)
		}
		if e.reader == nil || buf == nil {
			return symval{}, ErrDynamic
		}
		if x.Off+x.Size > uint64(len(buf)) {
			return symval{}, fmt.Errorf("ioctlan: field [%d:%d] outside buffer %q (%d bytes)",
				x.Off, x.Off+x.Size, x.Buf, len(buf))
		}
		var v uint64
		switch x.Size {
		case 1:
			v = uint64(buf[x.Off])
		case 2:
			v = uint64(binary.LittleEndian.Uint16(buf[x.Off:]))
		case 4:
			v = uint64(binary.LittleEndian.Uint32(buf[x.Off:]))
		case 8:
			v = binary.LittleEndian.Uint64(buf[x.Off:])
		default:
			return symval{}, fmt.Errorf("ioctlan: bad field size %d", x.Size)
		}
		return symval{b: v}, nil
	case Bin:
		l, err := e.eval(x.L)
		if err != nil {
			return symval{}, err
		}
		r, err := e.eval(x.R)
		if err != nil {
			return symval{}, err
		}
		switch x.Op {
		case '+':
			return symval{a: l.a + r.a, b: l.b + r.b}, nil
		case '-':
			return symval{a: l.a - r.a, b: l.b - r.b}, nil
		case '*':
			if l.a != 0 && r.a != 0 {
				return symval{}, fmt.Errorf("ioctlan: nonlinear arg use")
			}
			if l.a != 0 {
				rc, _ := r.concrete()
				return symval{a: l.a * rc, b: l.b * rc}, nil
			}
			lc, _ := l.concrete()
			return symval{a: r.a * lc, b: r.b * lc}, nil
		default:
			return symval{}, fmt.Errorf("ioctlan: bad operator %c", x.Op)
		}
	default:
		return symval{}, fmt.Errorf("ioctlan: unknown expression %T", x)
	}
}
