package ioctlan

import (
	"encoding/binary"
	"strings"
	"testing"
	"testing/quick"

	"paradice/internal/devfile"
	"paradice/internal/grant"
	"paradice/internal/mem"
)

// mapReader serves user memory from a map of page-less flat bytes.
type mapReader map[mem.GuestVirt][]byte

func (m mapReader) ReadUser(va mem.GuestVirt, buf []byte) error {
	for base, data := range m {
		if va >= base && uint64(va)+uint64(len(buf)) <= uint64(base)+uint64(len(data)) {
			copy(buf, data[va-base:])
			return nil
		}
	}
	return grantDeny(va)
}

func grantDeny(va mem.GuestVirt) error {
	return &grant.DeniedError{VA: va}
}

// simpleProg: copy a struct in, poke the device, copy results out — the
// common macro-shaped command, with driver noise for the slicer to remove.
func simpleProg() *Prog {
	cmd := devfile.IOWR('t', 1, 32)
	return &Prog{
		Cmd:  cmd,
		Name: "SIMPLE",
		Body: []Stmt{
			DriverWork{What: "lock device mutex"},
			CopyFromUser{Dst: "req", Src: Arg{}, Size: CmdSize{}},
			DriverWork{What: "ring doorbell"},
			DriverWork{What: "wait for fence"},
			CopyToUser{Dst: Arg{}, Size: CmdSize{}},
			DriverWork{What: "unlock device mutex"},
		},
	}
}

// nestedProg models the Radeon CS pattern: a header struct holds a count
// and a user pointer to an array of chunk descriptors; each descriptor
// holds a pointer and length for a further copy. Two levels of nesting.
func nestedProg() *Prog {
	cmd := devfile.IOWR('t', 2, 24)
	return &Prog{
		Cmd:  cmd,
		Name: "NESTED_CS",
		Body: []Stmt{
			DriverWork{What: "validate GEM handles"},
			CopyFromUser{Dst: "hdr", Src: Arg{}, Size: Const(24)},
			Let{Name: "nchunks", Val: LoadField{Buf: "hdr", Off: 0, Size: 4}},
			Let{Name: "chunkp", Val: LoadField{Buf: "hdr", Off: 8, Size: 8}},
			DriverWork{What: "reserve ring space"},
			For{Var: "i", Count: Local("nchunks"), Body: []Stmt{
				CopyFromUser{
					Dst:  "chunk",
					Src:  Bin{Op: '+', L: Local("chunkp"), R: Bin{Op: '*', L: Local("i"), R: Const(16)}},
					Size: Const(16),
				},
				CopyFromUser{
					Dst:  "payload",
					Src:  LoadField{Buf: "chunk", Off: 0, Size: 8},
					Size: LoadField{Buf: "chunk", Off: 8, Size: 4},
				},
				DriverWork{What: "emit chunk to ring"},
			}},
			DriverWork{What: "kick command processor"},
		},
	}
}

func TestSliceRemovesDriverWork(t *testing.T) {
	p := simpleProg()
	sl := Slice(p.Body)
	if Lines(sl) != 2 {
		t.Fatalf("slice has %d lines, want 2 (the two copies)", Lines(sl))
	}
	for _, s := range sl {
		if _, bad := s.(DriverWork); bad {
			t.Fatal("driver work survived slicing")
		}
	}
}

func TestSliceKeepsDependencies(t *testing.T) {
	p := nestedProg()
	sl := Slice(p.Body)
	// Must keep: hdr copy, two Lets, the For with two copies inside.
	if Lines(sl) != 6 {
		t.Fatalf("slice has %d lines, want 6:\n%v", Lines(sl), sl)
	}
}

func TestAnalyzeSimpleIsStatic(t *testing.T) {
	spec, err := Analyze(simpleProg())
	if err != nil {
		t.Fatal(err)
	}
	if spec.Dynamic {
		t.Fatal("simple command classified dynamic")
	}
	if len(spec.Static) != 2 {
		t.Fatalf("static ops = %d, want 2", len(spec.Static))
	}
	ops, err := spec.Ops(0x4000_0000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ops[0].Kind != grant.KindCopyFrom || ops[0].VA != 0x4000_0000 || ops[0].Len != 32 {
		t.Fatalf("op0 = %+v", ops[0])
	}
	if ops[1].Kind != grant.KindCopyTo || ops[1].VA != 0x4000_0000 || ops[1].Len != 32 {
		t.Fatalf("op1 = %+v", ops[1])
	}
}

func TestAnalyzeNestedIsDynamic(t *testing.T) {
	spec, err := Analyze(nestedProg())
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Dynamic {
		t.Fatal("nested copies classified static")
	}
	if _, err := spec.Ops(0x1000, nil); err == nil {
		t.Fatal("dynamic Ops without a reader should fail")
	}
}

func TestJITResolvesNestedCopies(t *testing.T) {
	spec, err := Analyze(nestedProg())
	if err != nil {
		t.Fatal(err)
	}
	// Build user memory: header at 0x1000 with 2 chunks at 0x2000; chunk
	// payloads at 0x3000 (40 bytes) and 0x5000 (100 bytes).
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:], 2)
	binary.LittleEndian.PutUint64(hdr[8:], 0x2000)
	chunks := make([]byte, 32)
	binary.LittleEndian.PutUint64(chunks[0:], 0x3000)
	binary.LittleEndian.PutUint32(chunks[8:], 40)
	binary.LittleEndian.PutUint64(chunks[16:], 0x5000)
	binary.LittleEndian.PutUint32(chunks[24:], 100)
	r := mapReader{0x1000: hdr, 0x2000: chunks}
	ops, err := spec.Ops(0x1000, r)
	if err != nil {
		t.Fatal(err)
	}
	want := []grant.Op{
		{Kind: grant.KindCopyFrom, VA: 0x1000, Len: 24},
		{Kind: grant.KindCopyFrom, VA: 0x2000, Len: 16},
		{Kind: grant.KindCopyFrom, VA: 0x3000, Len: 40},
		{Kind: grant.KindCopyFrom, VA: 0x2010, Len: 16},
		{Kind: grant.KindCopyFrom, VA: 0x5000, Len: 100},
	}
	if len(ops) != len(want) {
		t.Fatalf("ops = %+v, want %d entries", ops, len(want))
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("op%d = %+v, want %+v", i, ops[i], want[i])
		}
	}
}

func TestMacroOps(t *testing.T) {
	ops := MacroOps(devfile.IOWR('x', 1, 48), 0x7000)
	if len(ops) != 2 || ops[0].Kind != grant.KindCopyFrom || ops[1].Kind != grant.KindCopyTo {
		t.Fatalf("IOWR macro ops = %+v", ops)
	}
	if ops[0].VA != 0x7000 || ops[0].Len != 48 {
		t.Fatalf("macro op = %+v", ops[0])
	}
	if got := MacroOps(devfile.IO('x', 2), 0x7000); len(got) != 0 {
		t.Fatalf("_IO macro ops = %+v, want none", got)
	}
	if got := MacroOps(devfile.IOR('x', 3, 8), 0x7000); len(got) != 1 || got[0].Kind != grant.KindCopyTo {
		t.Fatalf("_IOR macro ops = %+v", got)
	}
}

func TestConstantLoopUnrollsStatically(t *testing.T) {
	p := &Prog{
		Cmd:  devfile.IOW('t', 3, 8),
		Name: "FIXED_ARRAY",
		Body: []Stmt{
			For{Var: "i", Count: Const(3), Body: []Stmt{
				CopyFromUser{
					Dst:  "slot",
					Src:  Bin{Op: '+', L: Arg{}, R: Bin{Op: '*', L: Local("i"), R: Const(64)}},
					Size: Const(64),
				},
			}},
		},
	}
	spec, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Dynamic {
		t.Fatal("constant loop classified dynamic")
	}
	if len(spec.Static) != 3 {
		t.Fatalf("static ops = %d, want 3", len(spec.Static))
	}
	ops, _ := spec.Ops(0x1000, nil)
	for i, op := range ops {
		if op.VA != mem.GuestVirt(0x1000+i*64) || op.Len != 64 {
			t.Fatalf("op%d = %+v", i, op)
		}
	}
}

func TestIfWithArgIndependentCondition(t *testing.T) {
	p := &Prog{
		Cmd:  devfile.IOW('t', 4, 16),
		Name: "BRANCHY",
		Body: []Stmt{
			Let{Name: "mode", Val: Const(1)},
			If{Cond: Local("mode"),
				Then: []Stmt{CopyFromUser{Dst: "a", Src: Arg{}, Size: Const(16)}},
				Else: []Stmt{CopyFromUser{Dst: "b", Src: Arg{}, Size: Const(8)}}},
		},
	}
	spec, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Dynamic || len(spec.Static) != 1 || spec.Static[0].Len != 16 {
		t.Fatalf("spec = %+v", spec)
	}
}

func TestIfOnUserDataIsDynamic(t *testing.T) {
	p := &Prog{
		Cmd:  devfile.IOW('t', 5, 16),
		Name: "DATA_BRANCH",
		Body: []Stmt{
			CopyFromUser{Dst: "req", Src: Arg{}, Size: Const(16)},
			If{Cond: LoadField{Buf: "req", Off: 0, Size: 4},
				Then: []Stmt{CopyFromUser{Dst: "x", Src: LoadField{Buf: "req", Off: 8, Size: 8}, Size: Const(32)}}},
		},
	}
	spec, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Dynamic {
		t.Fatal("user-data branch classified static")
	}
	// JIT with condition false: only the header copy.
	hdr := make([]byte, 16)
	ops, err := spec.Ops(0x1000, mapReader{0x1000: hdr})
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 1 {
		t.Fatalf("ops = %+v, want 1", ops)
	}
	// Condition true: the nested copy appears.
	binary.LittleEndian.PutUint32(hdr[0:], 1)
	binary.LittleEndian.PutUint64(hdr[8:], 0x9000)
	ops, err = spec.Ops(0x1000, mapReader{0x1000: hdr})
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 || ops[1].VA != 0x9000 || ops[1].Len != 32 {
		t.Fatalf("ops = %+v", ops)
	}
}

// Property: JIT execution's first recorded op for the nested program always
// covers the header read at the argument address, for any argument.
func TestPropertyHeaderOpCoversArg(t *testing.T) {
	spec, err := Analyze(nestedProg())
	if err != nil {
		t.Fatal(err)
	}
	f := func(argRaw uint32, n uint8) bool {
		arg := mem.GuestVirt(argRaw)
		hdr := make([]byte, 24)
		binary.LittleEndian.PutUint32(hdr[0:], uint32(n%4))
		binary.LittleEndian.PutUint64(hdr[8:], uint64(arg)+0x100)
		chunks := make([]byte, 16*4)
		r := mapReader{arg: hdr, arg + 0x100: chunks}
		ops, err := spec.Ops(uint64(arg), r)
		if err != nil {
			return false
		}
		if len(ops) < 1 || ops[0].VA != arg || ops[0].Len != 24 {
			return false
		}
		// 1 header op + 2 per chunk.
		return len(ops) == 1+2*int(n%4)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLinesCountsRecursively(t *testing.T) {
	body := []Stmt{
		Let{Name: "a", Val: Const(1)},
		For{Var: "i", Count: Const(2), Body: []Stmt{
			If{Cond: Local("a"), Then: []Stmt{DriverWork{What: "x"}}},
		}},
	}
	if Lines(body) != 4 {
		t.Fatalf("Lines = %d, want 4", Lines(body))
	}
}

func TestUndefinedLocalError(t *testing.T) {
	p := &Prog{Cmd: devfile.IOW('t', 6, 8), Name: "BROKEN",
		Body: []Stmt{CopyFromUser{Dst: "x", Src: Local("nowhere"), Size: Const(8)}}}
	if _, err := Analyze(p); err == nil {
		t.Fatal("undefined local accepted")
	}
}

func TestFormatRendersSlices(t *testing.T) {
	spec, err := Analyze(nestedProg())
	if err != nil {
		t.Fatal(err)
	}
	lines := Format(spec.Slice)
	if len(lines) < 4 {
		t.Fatalf("formatted slice too short: %v", lines)
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"copy_from_user(hdr", "for i < nchunks", "hdr[0:4]"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("formatted slice missing %q:\n%s", want, joined)
		}
	}
	// Nested statements are indented.
	indented := false
	for _, l := range lines {
		if strings.HasPrefix(l, "  ") {
			indented = true
		}
	}
	if !indented {
		t.Fatal("no indentation in nested slice")
	}
}
