package kernel

import (
	"paradice/internal/mem"
	"paradice/internal/perf"
)

// This file is the kernel's user-memory access layer — the 13 functions the
// paper wraps with stubs in the driver VM kernel (§5.2), collapsed to the
// four that matter architecturally. Device drivers must use these for every
// touch of process memory. When the calling task is marked (a CVD backend
// worker executing a guest's file operation), the access is redirected to
// the hypervisor API; otherwise it acts on the local process address space.

// CopyFromUser copies len(buf) bytes from the user address src of the
// process the task is working for.
func CopyFromUser(c *FopCtx, src mem.GuestVirt, buf []byte) error {
	t := c.Task
	if t.Marked {
		return t.Remote.CopyFromUser(src, buf)
	}
	perf.Charge(t.Proc.K.Env, perf.Copy(len(buf), int(mem.PagesSpanned(uint64(src), uint64(len(buf))))))
	return t.Proc.UserRead(t, src, buf)
}

// CopyToUser copies data to the user address dst.
func CopyToUser(c *FopCtx, dst mem.GuestVirt, data []byte) error {
	t := c.Task
	if t.Marked {
		return t.Remote.CopyToUser(dst, data)
	}
	perf.Charge(t.Proc.K.Env, perf.Copy(len(data), int(mem.PagesSpanned(uint64(dst), uint64(len(data))))))
	return t.Proc.UserWrite(t, dst, data)
}

// InsertPFN maps the driver-VM page frame pfn (a guest-physical page of the
// kernel the driver runs in — RAM or a device BAR) at user address va. This
// is the paper's insert_pfn wrapper stub.
func InsertPFN(c *FopCtx, va mem.GuestVirt, pfn mem.GuestPhys) error {
	t := c.Task
	if !mem.PageAligned(uint64(va)) || !mem.PageAligned(uint64(pfn)) {
		return EINVAL
	}
	if t.Marked {
		if err := t.Remote.MapPage(va, pfn); err != nil {
			return err
		}
	} else {
		perf.Charge(t.Proc.K.Env, perf.CostMapPage)
		if err := t.Proc.PT.Map(va, pfn, mem.PermRW); err != nil {
			return EFAULT
		}
	}
	if v, ok := c.File.Proc.FindVMA(va); ok {
		v.notePage(va)
	}
	return nil
}

// UnmapPFN removes the user mapping at va previously created by InsertPFN.
// In the native flow the process kernel has already torn down its page
// table entry during munmap, so the local case is a no-op; in the remote
// flow the hypervisor must still destroy the EPT mapping (§5.2).
func UnmapPFN(c *FopCtx, va mem.GuestVirt) error {
	t := c.Task
	if t.Marked {
		return t.Remote.UnmapPage(va)
	}
	return nil
}
