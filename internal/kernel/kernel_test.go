package kernel

import (
	"bytes"
	"testing"

	"paradice/internal/devfile"
	"paradice/internal/mem"
	"paradice/internal/sim"
)

// newTestKernel boots a kernel over 8 MiB of EPT-backed RAM.
func newTestKernel(t testing.TB, flavor Flavor) *Kernel {
	t.Helper()
	env := sim.NewEnv()
	phys := mem.NewPhysMem()
	const ram = 8 << 20
	alloc := phys.NewAllocator("ram", 0x1000_0000, ram)
	base, err := alloc.AllocPages(ram / mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	ept := mem.NewEPT()
	for off := uint64(0); off < ram; off += mem.PageSize {
		if err := ept.Map(mem.GuestPhys(off), base+mem.SysPhys(off), mem.PermRW); err != nil {
			t.Fatal(err)
		}
	}
	space := &mem.GuestSpace{Phys: phys, EPT: ept}
	return New("testvm", flavor, env, space, ram)
}

// echoDriver is a toy device: Write stores bytes, Read returns them, an
// ioctl reverses a user buffer in place, Mmap exposes a device page.
type echoDriver struct {
	BaseOps
	data    []byte
	wq      *WaitQueue
	devPage mem.GuestPhys // "device memory" page (a kernel frame here)
	opens   int
	fasyncs []*File
}

const (
	echoReverse = devfile.IoctlCmd(0xBEEF)
	echoNoop    = devfile.IoctlCmd(0xB000)
)

func (d *echoDriver) Open(c *FopCtx) error {
	d.opens++
	return nil
}

func (d *echoDriver) Release(c *FopCtx) error {
	d.opens--
	return nil
}

func (d *echoDriver) Read(c *FopCtx, dst mem.GuestVirt, n int) (int, error) {
	for len(d.data) == 0 {
		if c.File.Nonblock() {
			return 0, EAGAIN
		}
		d.wq.Wait(c.Task)
	}
	if n > len(d.data) {
		n = len(d.data)
	}
	if err := CopyToUser(c, dst, d.data[:n]); err != nil {
		return 0, err
	}
	d.data = d.data[n:]
	return n, nil
}

func (d *echoDriver) Write(c *FopCtx, src mem.GuestVirt, n int) (int, error) {
	buf := make([]byte, n)
	if err := CopyFromUser(c, src, buf); err != nil {
		return 0, err
	}
	d.data = append(d.data, buf...)
	d.wq.Wake()
	for _, f := range d.fasyncs {
		if f.FasyncOn {
			f.Proc.DeliverSIGIO()
		}
	}
	return n, nil
}

func (d *echoDriver) Ioctl(c *FopCtx, cmd devfile.IoctlCmd, arg mem.GuestVirt) (int32, error) {
	switch cmd {
	case echoReverse:
		var hdr [8]byte // {va lo32, len}
		if err := CopyFromUser(c, arg, hdr[:]); err != nil {
			return 0, err
		}
		bufVA := mem.GuestVirt(uint32(hdr[0]) | uint32(hdr[1])<<8 | uint32(hdr[2])<<16 | uint32(hdr[3])<<24)
		n := int(hdr[4])
		buf := make([]byte, n)
		if err := CopyFromUser(c, bufVA, buf); err != nil {
			return 0, err
		}
		for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
			buf[i], buf[j] = buf[j], buf[i]
		}
		if err := CopyToUser(c, bufVA, buf); err != nil {
			return 0, err
		}
		return int32(n), nil
	case echoNoop:
		return 0, nil
	}
	return 0, ENOTTY
}

func (d *echoDriver) Mmap(c *FopCtx, v *VMA) error {
	if v.Start == 0 {
		return EINVAL // needs the VA range (FreeBSD patch test)
	}
	return nil // demand-fault
}

func (d *echoDriver) Fault(c *FopCtx, v *VMA, va mem.GuestVirt) error {
	return InsertPFN(c, va, d.devPage)
}

func (d *echoDriver) Poll(c *FopCtx, pt *PollTable) devfile.PollMask {
	pt.Register(d.wq)
	if len(d.data) > 0 {
		return devfile.PollIn
	}
	return 0
}

func (d *echoDriver) Fasync(c *FopCtx, on bool) error {
	if on {
		d.fasyncs = append(d.fasyncs, c.File)
	}
	return nil
}

func installEcho(t testing.TB, k *Kernel) *echoDriver {
	t.Helper()
	page, err := k.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	d := &echoDriver{wq: k.NewWaitQueue("echo"), devPage: page}
	k.RegisterDevice("/dev/echo", d, d)
	return d
}

func TestOpenMissingDevice(t *testing.T) {
	k := newTestKernel(t, Linux)
	p, _ := k.NewProcess("app")
	p.RunTask("main", func(tk *Task) {
		if _, err := tk.Open("/dev/nope", devfile.ORdWr); !IsErrno(err, ENOENT) {
			t.Errorf("open missing: %v, want ENOENT", err)
		}
	})
}

func TestReadWriteRoundtrip(t *testing.T) {
	k := newTestKernel(t, Linux)
	installEcho(t, k)
	p, _ := k.NewProcess("app")
	p.RunTask("main", func(tk *Task) {
		fd, err := tk.Open("/dev/echo", devfile.ORdWr)
		if err != nil {
			t.Fatal(err)
		}
		msg := []byte("hello, device file boundary")
		src, _ := p.AllocBytes(msg)
		if n, err := tk.Write(fd, src, len(msg)); err != nil || n != len(msg) {
			t.Fatalf("write: n=%d err=%v", n, err)
		}
		dst, _ := p.Alloc(64)
		n, err := tk.Read(fd, dst, 64)
		if err != nil || n != len(msg) {
			t.Fatalf("read: n=%d err=%v", n, err)
		}
		got := make([]byte, n)
		if err := p.Mem.Read(dst, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("read back %q, want %q", got, msg)
		}
		if err := tk.Close(fd); err != nil {
			t.Fatal(err)
		}
	})
}

func TestBlockingReadWakesOnWrite(t *testing.T) {
	k := newTestKernel(t, Linux)
	installEcho(t, k)
	reader, _ := k.NewProcess("reader")
	writer, _ := k.NewProcess("writer")
	var gotAt sim.Time
	reader.SpawnTask("r", func(tk *Task) {
		fd, _ := tk.Open("/dev/echo", devfile.ORdOnly)
		dst, _ := reader.Alloc(16)
		n, err := tk.Read(fd, dst, 16)
		if err != nil || n != 2 {
			t.Errorf("blocking read: n=%d err=%v", n, err)
		}
		gotAt = tk.Sim().Now()
	})
	writer.SpawnTask("w", func(tk *Task) {
		tk.Sim().Sleep(100 * sim.Microsecond)
		fd, _ := tk.Open("/dev/echo", devfile.OWrOnly)
		src, _ := writer.AllocBytes([]byte("hi"))
		if _, err := tk.Write(fd, src, 2); err != nil {
			t.Error(err)
		}
	})
	k.Env.Run()
	if gotAt < sim.Time(100*sim.Microsecond) {
		t.Fatalf("reader returned at %v, before the write", gotAt)
	}
	// The reader paid the wake-up latency.
	if gotAt < sim.Time(100*sim.Microsecond+30*sim.Microsecond) {
		t.Fatalf("reader returned at %v; expected wake-up cost after the write", gotAt)
	}
}

func TestNonblockReadReturnsEAGAIN(t *testing.T) {
	k := newTestKernel(t, Linux)
	installEcho(t, k)
	p, _ := k.NewProcess("app")
	p.RunTask("main", func(tk *Task) {
		fd, _ := tk.Open("/dev/echo", devfile.ORdOnly|devfile.ONonblock)
		dst, _ := p.Alloc(16)
		if _, err := tk.Read(fd, dst, 16); !IsErrno(err, EAGAIN) {
			t.Errorf("nonblock read of empty device: %v, want EAGAIN", err)
		}
	})
}

func TestIoctlReversesUserBuffer(t *testing.T) {
	k := newTestKernel(t, Linux)
	installEcho(t, k)
	p, _ := k.NewProcess("app")
	p.RunTask("main", func(tk *Task) {
		fd, _ := tk.Open("/dev/echo", devfile.ORdWr)
		payload := []byte("abcdef")
		bufVA, _ := p.AllocBytes(payload)
		hdr := []byte{byte(bufVA), byte(bufVA >> 8), byte(bufVA >> 16), byte(bufVA >> 24), byte(len(payload)), 0, 0, 0}
		argVA, _ := p.AllocBytes(hdr)
		ret, err := tk.Ioctl(fd, echoReverse, argVA)
		if err != nil || ret != int32(len(payload)) {
			t.Fatalf("ioctl: ret=%d err=%v", ret, err)
		}
		got := make([]byte, len(payload))
		if err := p.Mem.Read(bufVA, got); err != nil {
			t.Fatal(err)
		}
		if string(got) != "fedcba" {
			t.Fatalf("buffer = %q, want fedcba", got)
		}
	})
}

func TestMmapFaultMapsDevicePage(t *testing.T) {
	k := newTestKernel(t, Linux)
	d := installEcho(t, k)
	// Put a marker in the "device page" so the process can see it.
	marker := []byte("device-page-bytes")
	if err := k.Space.Write(d.devPage, marker); err != nil {
		t.Fatal(err)
	}
	p, _ := k.NewProcess("app")
	p.RunTask("main", func(tk *Task) {
		fd, _ := tk.Open("/dev/echo", devfile.ORdWr)
		va, err := tk.Mmap(fd, mem.PageSize, 0)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(marker))
		// This access faults, runs the driver's fault handler, retries.
		if err := p.UserRead(tk, va, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, marker) {
			t.Fatalf("mmap read %q, want %q", got, marker)
		}
		v, ok := p.FindVMA(va)
		if !ok || v.MappedPages() != 1 {
			t.Fatalf("VMA bookkeeping: ok=%v pages=%d", ok, v.MappedPages())
		}
		if err := tk.Munmap(va, mem.PageSize); err != nil {
			t.Fatal(err)
		}
		if err := p.UserRead(tk, va, got); !IsErrno(err, EFAULT) {
			t.Fatalf("read after munmap: %v, want EFAULT", err)
		}
	})
}

func TestFreeBSDMmapPatch(t *testing.T) {
	k := newTestKernel(t, FreeBSD)
	installEcho(t, k)
	p, _ := k.NewProcess("app")
	p.RunTask("main", func(tk *Task) {
		fd, _ := tk.Open("/dev/echo", devfile.ORdWr)
		// Patched (default): driver sees the VA range and accepts.
		if _, err := tk.Mmap(fd, mem.PageSize, 0); err != nil {
			t.Fatalf("patched FreeBSD mmap: %v", err)
		}
		// Unpatched: the handler cannot learn the VA range and fails —
		// demonstrating why the paper patches the FreeBSD kernel.
		k.SetFreeBSDMmapPatch(false)
		if _, err := tk.Mmap(fd, mem.PageSize, 0); !IsErrno(err, EINVAL) {
			t.Fatalf("unpatched FreeBSD mmap: %v, want EINVAL", err)
		}
	})
}

func TestPollTimeoutAndReady(t *testing.T) {
	k := newTestKernel(t, Linux)
	installEcho(t, k)
	p, _ := k.NewProcess("app")
	p.RunTask("main", func(tk *Task) {
		fd, _ := tk.Open("/dev/echo", devfile.ORdWr)
		start := tk.Sim().Now()
		mask, err := tk.Poll(fd, devfile.PollIn, 50*sim.Microsecond)
		if err != nil || mask != 0 {
			t.Fatalf("poll timeout: mask=%v err=%v", mask, err)
		}
		if e := tk.Sim().Now().Sub(start); e < 50*sim.Microsecond {
			t.Fatalf("poll returned after %v, want >= 50µs", e)
		}
		// Make it ready, poll again.
		src, _ := p.AllocBytes([]byte("x"))
		if _, err := tk.Write(fd, src, 1); err != nil {
			t.Fatal(err)
		}
		mask, err = tk.Poll(fd, devfile.PollIn, 50*sim.Microsecond)
		if err != nil || mask&devfile.PollIn == 0 {
			t.Fatalf("poll ready: mask=%v err=%v", mask, err)
		}
	})
}

func TestPollWokenByWriter(t *testing.T) {
	k := newTestKernel(t, Linux)
	installEcho(t, k)
	p, _ := k.NewProcess("app")
	w, _ := k.NewProcess("writer")
	var mask devfile.PollMask
	p.SpawnTask("poller", func(tk *Task) {
		fd, _ := tk.Open("/dev/echo", devfile.ORdOnly)
		mask, _ = tk.Poll(fd, devfile.PollIn, -1)
	})
	w.SpawnTask("writer", func(tk *Task) {
		tk.Sim().Sleep(80 * sim.Microsecond)
		fd, _ := tk.Open("/dev/echo", devfile.OWrOnly)
		src, _ := w.AllocBytes([]byte("y"))
		_, _ = tk.Write(fd, src, 1)
	})
	k.Env.Run()
	if mask&devfile.PollIn == 0 {
		t.Fatalf("poller mask = %v, want PollIn", mask)
	}
	if d := k.Env.Deadlocked(); len(d) != 0 {
		t.Fatalf("deadlocked: %v", d)
	}
}

func TestFasyncDeliversSIGIO(t *testing.T) {
	k := newTestKernel(t, Linux)
	installEcho(t, k)
	p, _ := k.NewProcess("app")
	w, _ := k.NewProcess("writer")
	sigios := 0
	p.OnSIGIO(func() { sigios++ })
	p.SpawnTask("main", func(tk *Task) {
		fd, _ := tk.Open("/dev/echo", devfile.ORdOnly)
		if err := tk.SetFasync(fd, true); err != nil {
			t.Error(err)
		}
	})
	w.SpawnTask("writer", func(tk *Task) {
		tk.Sim().Sleep(10 * sim.Microsecond)
		fd, _ := tk.Open("/dev/echo", devfile.OWrOnly)
		src, _ := w.AllocBytes([]byte("z"))
		_, _ = tk.Write(fd, src, 1)
	})
	k.Env.Run()
	if sigios != 1 {
		t.Fatalf("SIGIO delivered %d times, want 1", sigios)
	}
}

func TestOpenReleaseRefcount(t *testing.T) {
	k := newTestKernel(t, Linux)
	d := installEcho(t, k)
	p, _ := k.NewProcess("app")
	p.RunTask("main", func(tk *Task) {
		fd1, _ := tk.Open("/dev/echo", devfile.ORdWr)
		fd2, _ := tk.Open("/dev/echo", devfile.ORdWr)
		if d.opens != 2 {
			t.Fatalf("opens = %d, want 2", d.opens)
		}
		_ = tk.Close(fd1)
		_ = tk.Close(fd2)
		if d.opens != 0 {
			t.Fatalf("opens after close = %d, want 0", d.opens)
		}
		if err := tk.Close(fd1); !IsErrno(err, EINVAL) {
			t.Fatalf("double close: %v, want EINVAL", err)
		}
	})
}

func TestAllocFrameReuse(t *testing.T) {
	k := newTestKernel(t, Linux)
	f1, err := k.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	// Dirty it, free it, re-alloc: must come back zeroed.
	if err := k.Space.Write(f1, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	k.FreeFrame(f1)
	f2, err := k.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f2 != f1 {
		t.Fatalf("free list not reused: %v then %v", f1, f2)
	}
	var b [3]byte
	if err := k.Space.Read(f2, b[:]); err != nil {
		t.Fatal(err)
	}
	if b != [3]byte{} {
		t.Fatalf("recycled frame not zeroed: %v", b)
	}
}

func TestSysInfo(t *testing.T) {
	k := newTestKernel(t, Linux)
	k.SetSysInfo("gpu/vendor", "0x1002")
	if v, ok := k.SysInfo("gpu/vendor"); !ok || v != "0x1002" {
		t.Fatalf("SysInfo = %q, %v", v, ok)
	}
	if _, ok := k.SysInfo("missing"); ok {
		t.Fatal("missing key reported present")
	}
}

func TestProcessAllocDistinct(t *testing.T) {
	k := newTestKernel(t, Linux)
	p, _ := k.NewProcess("app")
	a, err := p.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Mem.Write(a, []byte("AAAA")); err != nil {
		t.Fatal(err)
	}
	if err := p.Mem.Write(b, []byte("BBBB")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if err := p.Mem.Read(a, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "AAAA" {
		t.Fatalf("allocation a corrupted: %q", got)
	}
}

func TestTwoProcessesIsolatedAddressSpaces(t *testing.T) {
	k := newTestKernel(t, Linux)
	p1, _ := k.NewProcess("p1")
	p2, _ := k.NewProcess("p2")
	a1, _ := p1.AllocBytes([]byte("p1-secret"))
	a2, _ := p2.AllocBytes([]byte("p2-secret"))
	// Same VA in both processes maps to different frames.
	if a1 != a2 {
		t.Fatalf("heap bases differ: %v vs %v — test assumes same layout", a1, a2)
	}
	g1 := make([]byte, 9)
	g2 := make([]byte, 9)
	if err := p1.Mem.Read(a1, g1); err != nil {
		t.Fatal(err)
	}
	if err := p2.Mem.Read(a2, g2); err != nil {
		t.Fatal(err)
	}
	if string(g1) != "p1-secret" || string(g2) != "p2-secret" {
		t.Fatalf("cross-process aliasing: %q / %q", g1, g2)
	}
}

func TestMarkRestore(t *testing.T) {
	k := newTestKernel(t, Linux)
	p, _ := k.NewProcess("app")
	tk := &Task{Proc: p, Name: "t"}
	restore := tk.Mark(nil)
	if !tk.Marked {
		t.Fatal("Mark did not set flag")
	}
	restore()
	if tk.Marked {
		t.Fatal("restore did not clear flag")
	}
}
