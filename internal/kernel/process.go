package kernel

import (
	"errors"
	"fmt"

	"paradice/internal/mem"
	"paradice/internal/perf"
)

// User address-space layout (32-bit guests).
const (
	heapBase = mem.GuestVirt(0x0800_0000)
	mmapBase = mem.GuestVirt(0x4000_0000)
	mmapTop  = mem.GuestVirt(0xB000_0000)
)

// Process is a user process: an address space backed by a real guest page
// table, a file-descriptor table, and the VMAs of its memory mappings.
type Process struct {
	K    *Kernel
	PID  int
	Name string
	PT   *mem.PageTable
	Mem  *mem.VirtSpace

	fds     map[int]*File
	nextFD  int
	vmas    []*VMA
	heapPtr mem.GuestVirt
	mmapPtr mem.GuestVirt

	// sigio, when set, runs on SIGIO delivery (fasync notification).
	sigio func()
}

// VMA is one memory mapping in a process address space.
type VMA struct {
	Proc  *Process
	Start mem.GuestVirt
	Len   uint64
	File  *File
	Pgoff uint64 // file offset of Start, in pages
	// Private is driver state attached to the mapping.
	Private any
	// OnUnmap, if set, runs when the mapping is torn down — after the
	// owning kernel has destroyed its own page-table entries, matching the
	// ordering of §5.2. The CVD frontend uses it to forward the unmap.
	OnUnmap func(c *FopCtx, v *VMA) error

	mapped map[mem.GuestVirt]bool // pages populated via InsertPFN
}

// notePage records that the page at va has been populated.
func (v *VMA) notePage(va mem.GuestVirt) {
	if v.mapped == nil {
		v.mapped = make(map[mem.GuestVirt]bool)
	}
	v.mapped[va] = true
}

// MappedPages returns how many pages of the mapping are populated.
func (v *VMA) MappedPages() int { return len(v.mapped) }

// Contains reports whether va falls inside the mapping.
func (v *VMA) Contains(va mem.GuestVirt) bool {
	return va >= v.Start && uint64(va) < uint64(v.Start)+v.Len
}

// NewProcess creates a process with an empty address space.
func (k *Kernel) NewProcess(name string) (*Process, error) {
	allocGP := func() (mem.GuestPhys, error) { return k.AllocFrame() }
	pt, err := mem.NewPageTable(k.Space, allocGP)
	if err != nil {
		return nil, err
	}
	p := &Process{
		K:       k,
		PID:     k.nextPID,
		Name:    name,
		PT:      pt,
		Mem:     &mem.VirtSpace{PT: pt, Space: k.Space},
		fds:     make(map[int]*File),
		nextFD:  3,
		heapPtr: heapBase,
		mmapPtr: mmapBase,
	}
	k.nextPID++
	k.procs[p.PID] = p
	return p, nil
}

// Alloc reserves n bytes of user heap, eagerly backed by fresh frames, and
// returns its base address. Allocations are page-granular under the hood.
func (p *Process) Alloc(n int) (mem.GuestVirt, error) {
	if n <= 0 {
		return 0, EINVAL
	}
	base := p.heapPtr
	pages := mem.PagesSpanned(uint64(base), uint64(n))
	// Advance to the next page boundary past the allocation.
	p.heapPtr = mem.GuestVirt(mem.PageBase(uint64(base)+uint64(n)+mem.PageSize-1)) + mem.PageSize
	for i := uint64(0); i < pages; i++ {
		va := mem.GuestVirt(mem.PageBase(uint64(base))) + mem.GuestVirt(i*mem.PageSize)
		if p.PT.Mapped(va) {
			continue // page shared with tail of previous allocation
		}
		gpa, err := p.K.AllocFrame()
		if err != nil {
			return 0, err
		}
		if err := p.PT.Map(va, gpa, mem.PermRW); err != nil {
			return 0, err
		}
	}
	return base, nil
}

// AllocBytes allocates user memory and initializes it with data.
func (p *Process) AllocBytes(data []byte) (mem.GuestVirt, error) {
	va, err := p.Alloc(len(data))
	if err != nil {
		return 0, err
	}
	return va, p.Mem.Write(va, data)
}

// reserveMmapRange picks an unused VA window for an mmap of length bytes.
func (p *Process) reserveMmapRange(length uint64) (mem.GuestVirt, error) {
	length = (length + mem.PageSize - 1) &^ (mem.PageSize - 1)
	if uint64(p.mmapPtr)+length > uint64(mmapTop) {
		return 0, ENOMEM
	}
	base := p.mmapPtr
	p.mmapPtr += mem.GuestVirt(length)
	return base, nil
}

// FindVMA returns the mapping containing va.
func (p *Process) FindVMA(va mem.GuestVirt) (*VMA, bool) {
	for _, v := range p.vmas {
		if v.Contains(va) {
			return v, true
		}
	}
	return nil, false
}

// UserRead reads user memory with page-fault handling: a fault inside an
// mmap'ed device region invokes the driver's fault handler (through the CVD
// when the region is paravirtualized) and retries.
func (p *Process) UserRead(t *Task, va mem.GuestVirt, buf []byte) error {
	return p.userAccess(t, va, buf, false)
}

// UserWrite writes user memory with page-fault handling.
func (p *Process) UserWrite(t *Task, va mem.GuestVirt, data []byte) error {
	return p.userAccess(t, va, data, true)
}

func (p *Process) userAccess(t *Task, va mem.GuestVirt, buf []byte, write bool) error {
	// Every page the access spans may fault once (demand paging); anything
	// beyond that means a fault handler that is not making progress.
	limit := mem.PagesSpanned(uint64(va), uint64(len(buf))) + 2
	for attempt := uint64(0); ; attempt++ {
		var err error
		if write {
			err = p.Mem.Write(va, buf)
		} else {
			err = p.Mem.Read(va, buf)
		}
		var pf *mem.PageFault
		if err == nil || !errors.As(err, &pf) {
			return err
		}
		if attempt >= limit {
			return EFAULT
		}
		if err := p.handleFault(t, pf.VA); err != nil {
			return err
		}
	}
}

// handleFault resolves a page fault at va by delegating to the VMA's file.
func (p *Process) handleFault(t *Task, va mem.GuestVirt) error {
	v, ok := p.FindVMA(va)
	if !ok || v.File == nil {
		return EFAULT
	}
	perf.Charge(p.K.Env, perf.CostPageFault)
	c := &FopCtx{Task: t, File: v.File}
	return v.File.Node.Ops.Fault(c, v, mem.GuestVirt(mem.PageBase(uint64(va))))
}

// OnSIGIO installs the process's SIGIO handler (the fasync consumer).
func (p *Process) OnSIGIO(fn func()) { p.sigio = fn }

// DeliverSIGIO schedules the process's SIGIO handler after the
// signal-delivery (scheduler wake-up) latency. Called by the kernel when a
// driver — or the CVD frontend, for a forwarded notification — kills fasync.
func (p *Process) DeliverSIGIO() {
	if p.sigio == nil {
		return
	}
	p.K.Env.After(perf.CostWakeup+p.K.WakePenalty, p.sigio)
}

func (p *Process) String() string {
	return fmt.Sprintf("%s/pid%d(%s)", p.K.Name, p.PID, p.Name)
}
