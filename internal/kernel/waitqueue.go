package kernel

import (
	"paradice/internal/devfile"
	"paradice/internal/perf"
	"paradice/internal/sim"
)

// WaitQueue is a kernel wait queue: tasks block on it, and a wake-up from
// (simulated) interrupt or driver context makes them runnable after the
// scheduler's wake-up latency. Drivers use wait queues for blocking reads
// and poll support; the CVD backend uses one per guest VM for its file
// operation queue.
type WaitQueue struct {
	env     *sim.Env
	name    string
	waiters []*sim.Event
	pollers []*sim.Event
}

// NewWaitQueue returns an empty wait queue on the kernel's clock.
func (k *Kernel) NewWaitQueue(name string) *WaitQueue {
	return &WaitQueue{env: k.Env, name: name}
}

// Wake makes all current waiters runnable (after the scheduler wake-up
// cost, charged on the waiter side) and fires all registered pollers.
func (wq *WaitQueue) Wake() {
	ws, ps := wq.waiters, wq.pollers
	wq.waiters, wq.pollers = nil, nil
	for _, ev := range ws {
		ev.Trigger()
	}
	for _, ev := range ps {
		ev.Trigger()
	}
}

// Wait blocks the task until the queue is woken, then charges the wake-up
// latency.
func (wq *WaitQueue) Wait(t *Task) {
	ev := wq.env.NewEvent(wq.name + "-wait")
	wq.waiters = append(wq.waiters, ev)
	t.sp.Wait(ev)
	t.sp.Advance(perf.CostWakeup + t.Proc.K.WakePenalty)
}

// WaitTimeout blocks until a wake-up or the timeout, reporting whether the
// queue was woken.
func (wq *WaitQueue) WaitTimeout(t *Task, d sim.Duration) bool {
	ev := wq.env.NewEvent(wq.name + "-wait")
	wq.waiters = append(wq.waiters, ev)
	woken := t.sp.WaitTimeout(ev, d)
	if woken {
		t.sp.Advance(perf.CostWakeup + t.Proc.K.WakePenalty)
	} else {
		// Withdraw so a later Wake does not count us.
		for i, w := range wq.waiters {
			if w == ev {
				wq.waiters = append(wq.waiters[:i], wq.waiters[i+1:]...)
				break
			}
		}
	}
	return woken
}

// PollTable collects the wait queues a poll call depends on; any wake on
// any of them ends the poll wait.
type PollTable struct {
	ev *sim.Event
	// Want is the event mask the poller is waiting for. Drivers normally
	// ignore it, but the CVD frontend forwards it so the backend knows when
	// to arm a poll-wake notification.
	Want devfile.PollMask
}

// NewPollTable returns a fresh poll table.
func (k *Kernel) NewPollTable() *PollTable {
	return &PollTable{ev: k.Env.NewEvent("polltable")}
}

// Register hooks the table onto a wait queue; the driver's poll handler
// calls this for each queue that may produce events.
func (pt *PollTable) Register(wq *WaitQueue) {
	wq.pollers = append(wq.pollers, pt.ev)
}

// Event exposes the table's wake event. The CVD backend uses it to arm
// asynchronous poll-wake notifications toward the frontend.
func (pt *PollTable) Event() *sim.Event { return pt.ev }

// wait blocks until any registered queue wakes or the timeout elapses.
func (pt *PollTable) wait(t *Task, d sim.Duration) bool {
	woken := t.sp.WaitTimeout(pt.ev, d)
	if woken {
		t.sp.Advance(perf.CostWakeup + t.Proc.K.WakePenalty)
	}
	return woken
}
