// Package kernel simulates the Unix-like OS kernels Paradice runs in: the
// driver VM kernel hosting real device drivers, and the guest VM kernels
// hosting applications. It provides processes with page-table-backed address
// spaces, a devfs with device files dispatching the classic file operations
// (read, write, ioctl, mmap, poll, fasync), wait queues, SIGIO delivery, and
// the user-memory access layer (copy_to_user and friends) whose wrapper
// stubs redirect marked tasks to the hypervisor — the mechanism of §5.2.
//
// Two flavors exist, Linux and FreeBSD, differing where the paper says they
// differ (§5.1): FreeBSD's mmap path must explicitly pass the virtual
// address range to the handler, and the file-operation tables are versioned.
package kernel

import (
	"fmt"

	"paradice/internal/mem"
	"paradice/internal/sim"
)

// Flavor selects the simulated OS personality.
type Flavor int

// Kernel flavors.
const (
	Linux Flavor = iota
	FreeBSD
)

func (f Flavor) String() string {
	if f == FreeBSD {
		return "freebsd"
	}
	return "linux"
}

// Kernel is one VM's operating system kernel.
type Kernel struct {
	Name   string
	Flavor Flavor
	Env    *sim.Env
	Space  *mem.GuestSpace // this VM's guest-physical view (EPT-backed)

	// Lane is the calendar lane this VM's tasks queue on (sim.AllocLane).
	// Zero — the default lane — is always valid; the machine layer assigns
	// one lane per VM so a large fleet's timer traffic stays partitioned.
	Lane int

	ramSize   uint64
	nextFrame mem.GuestPhys
	freeList  []mem.GuestPhys

	devfs   map[string]*DeviceNode
	sysinfo map[string]string
	procs   map[int]*Process
	nextPID int

	// freeBSDMmapPatch models the ~12 LoC the paper adds to the FreeBSD
	// kernel so mmap passes the virtual address range to the handler
	// (§5.1). On by default; tests disable it to show why it is needed.
	freeBSDMmapPatch bool

	// WakePenalty is added to every wait-queue wake-up. Zero on bare
	// metal; in a VM it models the vCPU kick the hypervisor performs to
	// make the woken thread run — the difference between the paper's
	// native (39 µs) and device-assignment (55 µs) mouse latencies.
	WakePenalty sim.Duration
}

// SetFreeBSDMmapPatch toggles the FreeBSD mmap address-range patch.
func (k *Kernel) SetFreeBSDMmapPatch(on bool) { k.freeBSDMmapPatch = on }

// DeviceNode is an entry in devfs: a path plus the driver's file operations.
type DeviceNode struct {
	Path string
	Ops  FileOps
	// Drv is the driver's per-device state, handed to every FopCtx.
	Drv any
}

// New boots a kernel over an EPT-backed guest-physical space with ramSize
// bytes of RAM mapped at guest-physical zero.
func New(name string, flavor Flavor, env *sim.Env, space *mem.GuestSpace, ramSize uint64) *Kernel {
	return &Kernel{
		Name:    name,
		Flavor:  flavor,
		Env:     env,
		Space:   space,
		ramSize: ramSize,
		// Guest-physical page zero is never handed out (the null page),
		// so a frame number of 0 can safely mean "none".
		nextFrame:        mem.PageSize,
		devfs:            make(map[string]*DeviceNode),
		sysinfo:          make(map[string]string),
		procs:            make(map[int]*Process),
		nextPID:          1,
		freeBSDMmapPatch: true,
	}
}

// AllocFrame returns a zeroed guest-physical page frame.
func (k *Kernel) AllocFrame() (mem.GuestPhys, error) {
	if n := len(k.freeList); n > 0 {
		gpa := k.freeList[n-1]
		k.freeList = k.freeList[:n-1]
		return gpa, k.zeroFrame(gpa)
	}
	if uint64(k.nextFrame)+mem.PageSize > k.ramSize {
		return 0, fmt.Errorf("%s: out of memory (%d bytes RAM)", k.Name, k.ramSize)
	}
	gpa := k.nextFrame
	k.nextFrame += mem.PageSize
	return gpa, k.zeroFrame(gpa)
}

// FreeFrame returns a frame to the kernel's free list.
func (k *Kernel) FreeFrame(gpa mem.GuestPhys) {
	k.freeList = append(k.freeList, gpa)
}

func (k *Kernel) zeroFrame(gpa mem.GuestPhys) error {
	var zero [mem.PageSize]byte
	return k.Space.Write(gpa, zero[:])
}

// RegisterDevice creates a device file in devfs. drv is the driver state
// made available to file operations via FopCtx.
func (k *Kernel) RegisterDevice(path string, ops FileOps, drv any) *DeviceNode {
	if _, dup := k.devfs[path]; dup {
		panic(fmt.Sprintf("%s: device %s already registered", k.Name, path))
	}
	n := &DeviceNode{Path: path, Ops: ops, Drv: drv}
	k.devfs[path] = n
	return n
}

// UnregisterDevice removes a device file.
func (k *Kernel) UnregisterDevice(path string) { delete(k.devfs, path) }

// LookupDevice returns the devfs node for path, if present.
func (k *Kernel) LookupDevice(path string) (*DeviceNode, bool) {
	n, ok := k.devfs[path]
	return n, ok
}

// DevicePaths returns all registered device paths (order unspecified).
func (k *Kernel) DevicePaths() []string {
	var out []string
	for p := range k.devfs {
		out = append(out, p)
	}
	return out
}

// SetSysInfo publishes a device-information key, the simulated equivalent of
// a /sys (Linux) or /dev/pci (FreeBSD) entry. Device info modules (§5.1)
// populate these in guest VMs.
func (k *Kernel) SetSysInfo(key, value string) { k.sysinfo[key] = value }

// SysInfo reads a device-information key.
func (k *Kernel) SysInfo(key string) (string, bool) {
	v, ok := k.sysinfo[key]
	return v, ok
}
