package kernel

import (
	"paradice/internal/devfile"
	"paradice/internal/mem"
	"paradice/internal/perf"
	"paradice/internal/sim"
)

// This file is the system-call layer: the entry points application code
// uses to reach device files. Each call charges system-call cost and
// dispatches to the device's file operations — which may belong to a real
// driver (native and driver-VM cases) or to the CVD frontend (guest case).

func (t *Task) charge(d sim.Duration) {
	if t.sp != nil {
		t.sp.Advance(d)
	}
}

func (t *Task) file(fd int) (*File, error) {
	f, ok := t.Proc.fds[fd]
	if !ok {
		return nil, EINVAL
	}
	return f, nil
}

// Open opens a device file and returns a file descriptor.
func (t *Task) Open(path string, flags devfile.OpenFlags) (int, error) {
	t.charge(perf.CostSyscall)
	node, ok := t.Proc.K.LookupDevice(path)
	if !ok {
		return -1, ENOENT
	}
	f := &File{Node: node, Flags: flags, Proc: t.Proc, refs: 1}
	c := &FopCtx{Task: t, File: f}
	if err := node.Ops.Open(c); err != nil {
		return -1, err
	}
	fd := t.Proc.nextFD
	t.Proc.nextFD++
	t.Proc.fds[fd] = f
	return fd, nil
}

// Close releases a file descriptor, invoking the driver's release handler
// on the last reference.
func (t *Task) Close(fd int) error {
	t.charge(perf.CostSyscall)
	f, err := t.file(fd)
	if err != nil {
		return err
	}
	delete(t.Proc.fds, fd)
	f.refs--
	if f.refs == 0 {
		return f.Node.Ops.Release(&FopCtx{Task: t, File: f})
	}
	return nil
}

// Read reads up to n bytes of device data into the user buffer at buf.
func (t *Task) Read(fd int, buf mem.GuestVirt, n int) (int, error) {
	t.charge(perf.CostSyscall)
	f, err := t.file(fd)
	if err != nil {
		return 0, err
	}
	return f.Node.Ops.Read(&FopCtx{Task: t, File: f}, buf, n)
}

// Write writes up to n bytes from the user buffer at buf to the device.
func (t *Task) Write(fd int, buf mem.GuestVirt, n int) (int, error) {
	t.charge(perf.CostSyscall)
	f, err := t.file(fd)
	if err != nil {
		return 0, err
	}
	return f.Node.Ops.Write(&FopCtx{Task: t, File: f}, buf, n)
}

// Ioctl issues a device-specific command. arg is the untyped pointer
// argument — for _IOR/_IOW/_IOWR commands, a user-space address.
func (t *Task) Ioctl(fd int, cmd devfile.IoctlCmd, arg mem.GuestVirt) (int32, error) {
	t.charge(perf.CostSyscall)
	f, err := t.file(fd)
	if err != nil {
		return 0, err
	}
	return f.Node.Ops.Ioctl(&FopCtx{Task: t, File: f}, cmd, arg)
}

// Mmap maps length bytes of the device at page offset pgoff into the
// process address space and returns the chosen virtual address.
func (t *Task) Mmap(fd int, length uint64, pgoff uint64) (mem.GuestVirt, error) {
	t.charge(perf.CostSyscall)
	f, err := t.file(fd)
	if err != nil {
		return 0, err
	}
	if length == 0 {
		return 0, EINVAL
	}
	base, err := t.Proc.reserveMmapRange(length)
	if err != nil {
		return 0, err
	}
	v := &VMA{Proc: t.Proc, Start: base, Len: length, File: f, Pgoff: pgoff}
	if t.Proc.K.Flavor == FreeBSD && !t.Proc.K.freeBSDMmapPatch {
		// Unpatched FreeBSD does not hand the handler the VA range the
		// mapping will occupy; the CVD frontend (and the Linux drivers
		// behind it) need those addresses, which is why the paper adds
		// ~12 LoC to the FreeBSD kernel (§5.1).
		v = &VMA{Proc: t.Proc, Len: length, File: f, Pgoff: pgoff}
	}
	if err := f.Node.Ops.Mmap(&FopCtx{Task: t, File: f}, v); err != nil {
		return 0, err
	}
	v.Start = base
	t.Proc.vmas = append(t.Proc.vmas, v)
	return base, nil
}

// Munmap tears down an mmap'ed range: the kernel destroys its own
// page-table entries first, and only then informs the mapping's owner
// (driver or CVD frontend), per the ordering in §5.2.
func (t *Task) Munmap(va mem.GuestVirt, length uint64) error {
	t.charge(perf.CostSyscall)
	var v *VMA
	var idx int
	for i, cand := range t.Proc.vmas {
		if cand.Start == va && cand.Len == length {
			v, idx = cand, i
			break
		}
	}
	if v == nil {
		return EINVAL
	}
	for page := range v.mapped {
		if err := t.Proc.PT.Unmap(page); err != nil {
			return err
		}
	}
	t.Proc.vmas = append(t.Proc.vmas[:idx], t.Proc.vmas[idx+1:]...)
	if v.OnUnmap != nil {
		return v.OnUnmap(&FopCtx{Task: t, File: v.File}, v)
	}
	return nil
}

// Poll waits up to timeout for any event in want on fd, returning the ready
// mask (0 on timeout). A negative timeout means wait forever.
func (t *Task) Poll(fd int, want devfile.PollMask, timeout sim.Duration) (devfile.PollMask, error) {
	t.charge(perf.CostSyscall)
	f, err := t.file(fd)
	if err != nil {
		return 0, err
	}
	c := &FopCtx{Task: t, File: f}
	deadline := t.Proc.K.Env.Now().Add(timeout)
	for {
		pt := t.Proc.K.NewPollTable()
		pt.Want = want
		mask := f.Node.Ops.Poll(c, pt)
		if mask&(want|devfile.PollErr|devfile.PollHup) != 0 {
			return mask, nil
		}
		var wait sim.Duration
		if timeout < 0 {
			wait = sim.Duration(1 << 60)
		} else {
			wait = deadline.Sub(t.Proc.K.Env.Now())
			if wait <= 0 {
				return 0, nil
			}
		}
		if !pt.wait(t, wait) && timeout >= 0 {
			return 0, nil
		}
	}
}

// SetFasync arms or disarms SIGIO notification on fd (the fcntl FASYNC
// path; §2.1's asynchronous notification).
func (t *Task) SetFasync(fd int, on bool) error {
	t.charge(perf.CostSyscall)
	f, err := t.file(fd)
	if err != nil {
		return err
	}
	if err := f.Node.Ops.Fasync(&FopCtx{Task: t, File: f}, on); err != nil {
		return err
	}
	f.FasyncOn = on
	return nil
}
