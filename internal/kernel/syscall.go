package kernel

import (
	"paradice/internal/devfile"
	"paradice/internal/mem"
	"paradice/internal/perf"
	"paradice/internal/sim"
	"paradice/internal/trace"
)

// This file is the system-call layer: the entry points application code
// uses to reach device files. Each call charges system-call cost and
// dispatches to the device's file operations — which may belong to a real
// driver (native and driver-VM cases) or to the CVD frontend (guest case).
//
// The system-call boundary is also where a request's trace begins: opBegin
// allocates the request ID, binds it to the calling sim proc (so layers that
// only see the Env — hypervisor, IOMMU — can attribute their spans), and
// opEnd closes the root span covering the operation end to end.

func (t *Task) charge(d sim.Duration) {
	if t.sp != nil {
		t.sp.Advance(d)
	}
}

// opBegin opens tracing for one system call: a fresh request ID bound to the
// calling proc, plus the start time of the root span. Returns (nil, 0, 0)
// when tracing is disabled — the nil tracer makes every later call a no-op,
// and no allocation has happened.
func (t *Task) opBegin() (*trace.Tracer, uint64, sim.Time) {
	tr := trace.Get(t.Proc.K.Env)
	if tr == nil {
		return nil, 0, 0
	}
	rid := tr.NewRID()
	tr.Bind(t.sp, rid)
	return tr, rid, tr.Now()
}

// spanSyscall emits the leaf span covering the syscall entry/exit charge.
func (t *Task) spanSyscall(tr *trace.Tracer, rid uint64, start sim.Time) {
	if tr == nil {
		return
	}
	tr.Span(rid, t.Proc.K.Name, trace.LayerSyscall, "syscall", start, tr.Now())
}

// opEnd closes the request's root span and releases the proc binding.
func (t *Task) opEnd(tr *trace.Tracer, rid uint64, start sim.Time, op, path string) {
	if tr == nil {
		return
	}
	tr.Unbind(t.sp)
	tr.Group(rid, t.Proc.K.Name, trace.LayerSyscall, op+" "+path, start, tr.Now())
}

func (t *Task) file(fd int) (*File, error) {
	f, ok := t.Proc.fds[fd]
	if !ok {
		return nil, EINVAL
	}
	return f, nil
}

// Open opens a device file and returns a file descriptor.
func (t *Task) Open(path string, flags devfile.OpenFlags) (int, error) {
	tr, rid, start := t.opBegin()
	t.charge(perf.CostSyscall)
	t.spanSyscall(tr, rid, start)
	node, ok := t.Proc.K.LookupDevice(path)
	if !ok {
		t.opEnd(tr, rid, start, "open", path)
		return -1, ENOENT
	}
	f := &File{Node: node, Flags: flags, Proc: t.Proc, refs: 1}
	c := &FopCtx{Task: t, File: f, RID: rid}
	if err := node.Ops.Open(c); err != nil {
		t.opEnd(tr, rid, start, "open", path)
		return -1, err
	}
	fd := t.Proc.nextFD
	t.Proc.nextFD++
	t.Proc.fds[fd] = f
	t.opEnd(tr, rid, start, "open", path)
	return fd, nil
}

// Close releases a file descriptor, invoking the driver's release handler
// on the last reference.
func (t *Task) Close(fd int) error {
	tr, rid, start := t.opBegin()
	t.charge(perf.CostSyscall)
	t.spanSyscall(tr, rid, start)
	f, err := t.file(fd)
	if err != nil {
		t.opEnd(tr, rid, start, "close", "?")
		return err
	}
	delete(t.Proc.fds, fd)
	f.refs--
	if f.refs == 0 {
		err = f.Node.Ops.Release(&FopCtx{Task: t, File: f, RID: rid})
	} else {
		err = nil
	}
	t.opEnd(tr, rid, start, "close", f.Node.Path)
	return err
}

// Read reads up to n bytes of device data into the user buffer at buf.
func (t *Task) Read(fd int, buf mem.GuestVirt, n int) (int, error) {
	tr, rid, start := t.opBegin()
	t.charge(perf.CostSyscall)
	t.spanSyscall(tr, rid, start)
	f, err := t.file(fd)
	if err != nil {
		t.opEnd(tr, rid, start, "read", "?")
		return 0, err
	}
	ret, err := f.Node.Ops.Read(&FopCtx{Task: t, File: f, RID: rid}, buf, n)
	t.opEnd(tr, rid, start, "read", f.Node.Path)
	return ret, err
}

// Write writes up to n bytes from the user buffer at buf to the device.
func (t *Task) Write(fd int, buf mem.GuestVirt, n int) (int, error) {
	tr, rid, start := t.opBegin()
	t.charge(perf.CostSyscall)
	t.spanSyscall(tr, rid, start)
	f, err := t.file(fd)
	if err != nil {
		t.opEnd(tr, rid, start, "write", "?")
		return 0, err
	}
	ret, err := f.Node.Ops.Write(&FopCtx{Task: t, File: f, RID: rid}, buf, n)
	t.opEnd(tr, rid, start, "write", f.Node.Path)
	return ret, err
}

// Ioctl issues a device-specific command. arg is the untyped pointer
// argument — for _IOR/_IOW/_IOWR commands, a user-space address.
func (t *Task) Ioctl(fd int, cmd devfile.IoctlCmd, arg mem.GuestVirt) (int32, error) {
	tr, rid, start := t.opBegin()
	t.charge(perf.CostSyscall)
	t.spanSyscall(tr, rid, start)
	f, err := t.file(fd)
	if err != nil {
		t.opEnd(tr, rid, start, "ioctl", "?")
		return 0, err
	}
	ret, err := f.Node.Ops.Ioctl(&FopCtx{Task: t, File: f, RID: rid}, cmd, arg)
	t.opEnd(tr, rid, start, "ioctl", f.Node.Path)
	return ret, err
}

// Mmap maps length bytes of the device at page offset pgoff into the
// process address space and returns the chosen virtual address.
func (t *Task) Mmap(fd int, length uint64, pgoff uint64) (mem.GuestVirt, error) {
	tr, rid, start := t.opBegin()
	t.charge(perf.CostSyscall)
	t.spanSyscall(tr, rid, start)
	base, err := t.mmap(fd, length, pgoff, rid)
	path := "?"
	if f, ferr := t.file(fd); ferr == nil {
		path = f.Node.Path
	}
	t.opEnd(tr, rid, start, "mmap", path)
	return base, err
}

func (t *Task) mmap(fd int, length uint64, pgoff uint64, rid uint64) (mem.GuestVirt, error) {
	f, err := t.file(fd)
	if err != nil {
		return 0, err
	}
	if length == 0 {
		return 0, EINVAL
	}
	base, err := t.Proc.reserveMmapRange(length)
	if err != nil {
		return 0, err
	}
	v := &VMA{Proc: t.Proc, Start: base, Len: length, File: f, Pgoff: pgoff}
	if t.Proc.K.Flavor == FreeBSD && !t.Proc.K.freeBSDMmapPatch {
		// Unpatched FreeBSD does not hand the handler the VA range the
		// mapping will occupy; the CVD frontend (and the Linux drivers
		// behind it) need those addresses, which is why the paper adds
		// ~12 LoC to the FreeBSD kernel (§5.1).
		v = &VMA{Proc: t.Proc, Len: length, File: f, Pgoff: pgoff}
	}
	if err := f.Node.Ops.Mmap(&FopCtx{Task: t, File: f, RID: rid}, v); err != nil {
		return 0, err
	}
	v.Start = base
	t.Proc.vmas = append(t.Proc.vmas, v)
	return base, nil
}

// Munmap tears down an mmap'ed range: the kernel destroys its own
// page-table entries first, and only then informs the mapping's owner
// (driver or CVD frontend), per the ordering in §5.2.
func (t *Task) Munmap(va mem.GuestVirt, length uint64) error {
	tr, rid, start := t.opBegin()
	t.charge(perf.CostSyscall)
	t.spanSyscall(tr, rid, start)
	var v *VMA
	var idx int
	for i, cand := range t.Proc.vmas {
		if cand.Start == va && cand.Len == length {
			v, idx = cand, i
			break
		}
	}
	if v == nil {
		t.opEnd(tr, rid, start, "munmap", "?")
		return EINVAL
	}
	path := "?"
	if v.File != nil {
		path = v.File.Node.Path
	}
	for page := range v.mapped {
		if err := t.Proc.PT.Unmap(page); err != nil {
			t.opEnd(tr, rid, start, "munmap", path)
			return err
		}
	}
	t.Proc.vmas = append(t.Proc.vmas[:idx], t.Proc.vmas[idx+1:]...)
	var err error
	if v.OnUnmap != nil {
		err = v.OnUnmap(&FopCtx{Task: t, File: v.File, RID: rid}, v)
	}
	t.opEnd(tr, rid, start, "munmap", path)
	return err
}

// Poll waits up to timeout for any event in want on fd, returning the ready
// mask (0 on timeout). A negative timeout means wait forever.
func (t *Task) Poll(fd int, want devfile.PollMask, timeout sim.Duration) (devfile.PollMask, error) {
	tr, rid, start := t.opBegin()
	t.charge(perf.CostSyscall)
	t.spanSyscall(tr, rid, start)
	f, err := t.file(fd)
	if err != nil {
		t.opEnd(tr, rid, start, "poll", "?")
		return 0, err
	}
	c := &FopCtx{Task: t, File: f, RID: rid}
	deadline := t.Proc.K.Env.Now().Add(timeout)
	for {
		pt := t.Proc.K.NewPollTable()
		pt.Want = want
		mask := f.Node.Ops.Poll(c, pt)
		if mask&(want|devfile.PollErr|devfile.PollHup) != 0 {
			t.opEnd(tr, rid, start, "poll", f.Node.Path)
			return mask, nil
		}
		var wait sim.Duration
		if timeout < 0 {
			wait = sim.Duration(1 << 60)
		} else {
			wait = deadline.Sub(t.Proc.K.Env.Now())
			if wait <= 0 {
				t.opEnd(tr, rid, start, "poll", f.Node.Path)
				return 0, nil
			}
		}
		if !pt.wait(t, wait) && timeout >= 0 {
			t.opEnd(tr, rid, start, "poll", f.Node.Path)
			return 0, nil
		}
	}
}

// SetFasync arms or disarms SIGIO notification on fd (the fcntl FASYNC
// path; §2.1's asynchronous notification).
func (t *Task) SetFasync(fd int, on bool) error {
	tr, rid, start := t.opBegin()
	t.charge(perf.CostSyscall)
	t.spanSyscall(tr, rid, start)
	f, err := t.file(fd)
	if err != nil {
		t.opEnd(tr, rid, start, "fasync", "?")
		return err
	}
	if err := f.Node.Ops.Fasync(&FopCtx{Task: t, File: f, RID: rid}, on); err != nil {
		t.opEnd(tr, rid, start, "fasync", f.Node.Path)
		return err
	}
	f.FasyncOn = on
	t.opEnd(tr, rid, start, "fasync", f.Node.Path)
	return nil
}
