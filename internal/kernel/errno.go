package kernel

import "fmt"

// Errno is a Unix error number surfaced by system calls and file operations.
type Errno int

// The errnos the simulated drivers and kernels use.
const (
	EPERM   Errno = 1
	ENOENT  Errno = 2
	EINTR   Errno = 4
	EIO     Errno = 5
	EAGAIN  Errno = 11
	ENOMEM  Errno = 12
	EACCES  Errno = 13
	EFAULT  Errno = 14
	EBUSY   Errno = 16
	ENODEV  Errno = 19
	EINVAL  Errno = 22
	ENOTTY  Errno = 25
	ENOSPC  Errno = 28
	ENOSYS  Errno = 38
	ETIME   Errno = 62
	EREMOTE Errno = 66
	// ETIMEDOUT is surfaced by the CVD frontend when a forwarded operation
	// outlives its per-request deadline (driver-VM supervision): the issuer
	// unblocks instead of waiting forever on a backend that may be dead.
	ETIMEDOUT Errno = 110
)

var errnoNames = map[Errno]string{
	EPERM: "EPERM", ENOENT: "ENOENT", EINTR: "EINTR", EIO: "EIO",
	EAGAIN: "EAGAIN", ENOMEM: "ENOMEM", EACCES: "EACCES", EFAULT: "EFAULT",
	EBUSY: "EBUSY", ENODEV: "ENODEV", EINVAL: "EINVAL", ENOTTY: "ENOTTY",
	ENOSPC: "ENOSPC", ENOSYS: "ENOSYS", ETIME: "ETIME", EREMOTE: "EREMOTE",
	ETIMEDOUT: "ETIMEDOUT",
}

func (e Errno) Error() string {
	if n, ok := errnoNames[e]; ok {
		return n
	}
	return fmt.Sprintf("errno(%d)", int(e))
}

// IsErrno reports whether err is the given errno.
func IsErrno(err error, want Errno) bool {
	e, ok := err.(Errno)
	return ok && e == want
}
