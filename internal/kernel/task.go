package kernel

import (
	"paradice/internal/mem"
	"paradice/internal/sim"
)

// Task is a thread of execution: a user application thread, or a kernel
// worker such as a CVD backend thread. Paradice's wrapper-stub mechanism
// (§5.2) lives here: when the CVD backend executes a file operation on
// behalf of a guest VM it marks the task, and the kio memory operations
// consult the mark to redirect to the hypervisor instead of local memory.
type Task struct {
	Proc *Process
	Name string

	// QoS is the task's quality-of-service class, consulted by the CVD
	// frontend's admission control: classes with a configured ring-occupancy
	// limit get EAGAIN instead of queueing once the shared ring is loaded
	// past their limit. Class 0 (the default) is the highest class.
	QoS uint8

	// Marked indicates this task is executing a file operation for a
	// remote guest process (the flag in task_struct the paper describes).
	Marked bool
	// Remote is the hypervisor-API conduit used while Marked.
	Remote RemoteOps

	sp *sim.Proc
}

// RemoteOps is the hypervisor memory-operation API as seen by the wrapper
// stubs in the driver VM kernel. The CVD backend implements it, attaching
// the file operation's grant reference to every request (§5.1).
type RemoteOps interface {
	// CopyToUser copies data into the remote guest process at dst.
	CopyToUser(dst mem.GuestVirt, src []byte) error
	// CopyFromUser copies len(buf) bytes from the remote guest process.
	CopyFromUser(src mem.GuestVirt, buf []byte) error
	// MapPage maps the driver-VM page frame pfn at va in the remote guest
	// process address space.
	MapPage(va mem.GuestVirt, pfn mem.GuestPhys) error
	// UnmapPage removes a previously mapped page at va.
	UnmapPage(va mem.GuestVirt) error
}

// SpawnTask starts fn as a new thread of this process on the simulation
// clock and returns the Task handle (available immediately; fn runs when
// the scheduler first hands it control).
func (p *Process) SpawnTask(name string, fn func(t *Task)) *Task {
	t := &Task{Proc: p, Name: name}
	p.K.Env.SpawnLane(p.K.Lane, p.K.Name+"/"+name, func(sp *sim.Proc) {
		t.sp = sp
		fn(t)
	})
	return t
}

// RunTask runs fn as a thread of this process and drives the simulation
// until the calendar drains — the sequential-experiment convenience.
func (p *Process) RunTask(name string, fn func(t *Task)) {
	p.SpawnTask(name, fn)
	p.K.Env.Run()
}

// AdoptTask binds a Task to an already-running simulation process. The CVD
// backend uses this for its worker threads.
func (p *Process) AdoptTask(name string, sp *sim.Proc) *Task {
	return &Task{Proc: p, Name: name, sp: sp}
}

// Sim returns the simulation process executing this task.
func (t *Task) Sim() *sim.Proc { return t.sp }

// Mark flags the task as executing for a remote guest via the given
// hypervisor conduit. The returned function restores the previous state;
// the CVD backend defers it around each forwarded file operation.
func (t *Task) Mark(remote RemoteOps) func() {
	prevM, prevR := t.Marked, t.Remote
	t.Marked, t.Remote = true, remote
	return func() { t.Marked, t.Remote = prevM, prevR }
}
