package kernel

import (
	"paradice/internal/devfile"
	"paradice/internal/mem"
)

// FileOps is the file-operations table a device driver implements — the
// boundary Paradice paravirtualizes. Handlers receive user-space addresses
// and must touch user memory only through the kio functions (CopyToUser,
// CopyFromUser, InsertPFN, UnmapPFN), which is what lets the wrapper stubs
// redirect a marked task's memory operations to the hypervisor unmodified.
type FileOps interface {
	// Open is called when a process opens the device file. The handler may
	// set c.File.Priv to per-open state.
	Open(c *FopCtx) error
	// Release is called on the last close of the file.
	Release(c *FopCtx) error
	// Read copies up to n bytes of device data to user address dst.
	Read(c *FopCtx, dst mem.GuestVirt, n int) (int, error)
	// Write consumes up to n bytes of user data at src.
	Write(c *FopCtx, src mem.GuestVirt, n int) (int, error)
	// Ioctl performs the device-specific command with the untyped pointer
	// argument arg (a user-space address for _IOR/_IOW/_IOWR commands).
	Ioctl(c *FopCtx, cmd devfile.IoctlCmd, arg mem.GuestVirt) (int32, error)
	// Mmap prepares a mapping of the device into [v.Start, v.Start+v.Len).
	// The handler either populates pages eagerly via InsertPFN or leaves
	// them to Fault.
	Mmap(c *FopCtx, v *VMA) error
	// Fault handles a page fault at va within an mmap'ed region.
	Fault(c *FopCtx, v *VMA, va mem.GuestVirt) error
	// Poll reports the current event mask and registers the poll table on
	// the driver's wait queues.
	Poll(c *FopCtx, pt *PollTable) devfile.PollMask
	// Fasync enables or disables asynchronous (SIGIO) notification.
	Fasync(c *FopCtx, on bool) error
}

// FopCtx is the context a file-operation handler runs with: the task
// performing the operation (possibly a marked CVD backend worker acting for
// a remote guest) and the open file.
type FopCtx struct {
	Task *Task
	File *File
	// RID is the trace request ID opened at the system-call boundary (0 when
	// tracing is disabled). The CVD frontend carries it through the ring
	// slot so backend-side spans land on the same request.
	RID uint64
}

// Drv returns the driver state registered with the device node.
func (c *FopCtx) Drv() any { return c.File.Node.Drv }

// File is one open file description.
type File struct {
	Node  *DeviceNode
	Flags devfile.OpenFlags
	Proc  *Process // the opening process
	Priv  any      // driver per-open state
	// FasyncOn tracks whether SIGIO notification is armed for this file.
	FasyncOn bool
	refs     int
}

// Nonblock reports whether the file is in non-blocking mode.
func (f *File) Nonblock() bool { return f.Flags&devfile.ONonblock != 0 }

// BaseOps provides default file operations that fail with the conventional
// errno, so drivers implement only what their device class supports.
type BaseOps struct{}

// Open implements FileOps.
func (BaseOps) Open(*FopCtx) error { return nil }

// Release implements FileOps.
func (BaseOps) Release(*FopCtx) error { return nil }

// Read implements FileOps.
func (BaseOps) Read(*FopCtx, mem.GuestVirt, int) (int, error) { return 0, EINVAL }

// Write implements FileOps.
func (BaseOps) Write(*FopCtx, mem.GuestVirt, int) (int, error) { return 0, EINVAL }

// Ioctl implements FileOps.
func (BaseOps) Ioctl(*FopCtx, devfile.IoctlCmd, mem.GuestVirt) (int32, error) {
	return 0, ENOTTY
}

// Mmap implements FileOps.
func (BaseOps) Mmap(*FopCtx, *VMA) error { return ENODEV }

// Fault implements FileOps.
func (BaseOps) Fault(*FopCtx, *VMA, mem.GuestVirt) error { return EFAULT }

// Poll implements FileOps.
func (BaseOps) Poll(*FopCtx, *PollTable) devfile.PollMask {
	return devfile.PollIn | devfile.PollOut
}

// Fasync implements FileOps.
func (BaseOps) Fasync(*FopCtx, bool) error { return nil }

var _ FileOps = BaseOps{}
