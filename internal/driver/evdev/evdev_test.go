package evdev

import (
	"testing"

	"paradice/internal/devfile"
	"paradice/internal/device/input"
	"paradice/internal/hv"
	"paradice/internal/kernel"
	"paradice/internal/sim"
)

func newRig(t testing.TB) (*kernel.Kernel, *input.Device, *Driver, *sim.Env) {
	t.Helper()
	env := sim.NewEnv()
	h := hv.New(env, 64<<20)
	vm, err := h.CreateVM("m", 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New("m", kernel.Linux, env, vm.Space, 16<<20)
	dev := input.New(env, "mouse", 500*sim.Nanosecond)
	d := Attach(k, dev, "/dev/input/event0")
	return k, dev, d, env
}

func TestEventsDeliveredInOrder(t *testing.T) {
	k, dev, _, env := newRig(t)
	p, _ := k.NewProcess("reader")
	var got []input.Event
	p.SpawnTask("r", func(tk *kernel.Task) {
		fd, err := tk.Open("/dev/input/event0", devfile.ORdOnly)
		if err != nil {
			t.Error(err)
			return
		}
		buf, _ := p.Alloc(EventSize * 8)
		for len(got) < 3 {
			n, err := tk.Read(fd, buf, EventSize*8)
			if err != nil {
				t.Error(err)
				return
			}
			raw := make([]byte, n)
			_ = p.Mem.Read(buf, raw)
			for off := 0; off+EventSize <= n; off += EventSize {
				got = append(got, DecodeEvent(raw[off:]))
			}
		}
	})
	for i := 0; i < 3; i++ {
		dev.InjectAt(sim.Time(i+1)*sim.Time(sim.Millisecond), input.EvRel, 0, int32(10+i))
	}
	env.Run()
	if len(got) != 3 {
		t.Fatalf("got %d events", len(got))
	}
	for i, e := range got {
		if e.Value != int32(10+i) || e.Type != input.EvRel {
			t.Fatalf("event %d = %+v", i, e)
		}
		if e.At < sim.Time(sim.Millisecond) {
			t.Fatalf("event %d missing timestamp: %v", i, e.At)
		}
	}
}

func TestEachReaderGetsEveryEvent(t *testing.T) {
	k, dev, _, env := newRig(t)
	counts := make([]int, 2)
	for i := 0; i < 2; i++ {
		i := i
		p, _ := k.NewProcess("reader")
		p.SpawnTask("r", func(tk *kernel.Task) {
			fd, _ := tk.Open("/dev/input/event0", devfile.ORdOnly)
			buf, _ := p.Alloc(EventSize)
			for counts[i] < 2 {
				if _, err := tk.Read(fd, buf, EventSize); err != nil {
					t.Error(err)
					return
				}
				counts[i]++
			}
		})
	}
	dev.InjectAt(sim.Time(sim.Millisecond), input.EvKey, 30, 1)
	dev.InjectAt(sim.Time(2*sim.Millisecond), input.EvKey, 30, 0)
	env.Run()
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("fan-out counts %v", counts)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	k, dev, d, env := newRig(t)
	p, _ := k.NewProcess("sluggish")
	p.SpawnTask("open-only", func(tk *kernel.Task) {
		_, _ = tk.Open("/dev/input/event0", devfile.ORdOnly)
	})
	for i := 0; i < maxQueued+50; i++ {
		dev.InjectAt(sim.Time(i+1)*sim.Time(sim.Microsecond), input.EvRel, 0, 1)
	}
	env.Run()
	if d.Dropped != 50 {
		t.Fatalf("dropped = %d, want 50", d.Dropped)
	}
}

func TestReleaseStopsDelivery(t *testing.T) {
	k, dev, d, env := newRig(t)
	p, _ := k.NewProcess("quitter")
	p.SpawnTask("openclose", func(tk *kernel.Task) {
		fd, _ := tk.Open("/dev/input/event0", devfile.ORdOnly)
		_ = tk.Close(fd)
	})
	dev.InjectAt(sim.Time(sim.Millisecond), input.EvRel, 0, 1)
	env.Run()
	if len(d.readers) != 0 {
		t.Fatalf("readers = %d after close", len(d.readers))
	}
}

func TestShortReadBufferEINVAL(t *testing.T) {
	k, dev, _, env := newRig(t)
	p, _ := k.NewProcess("tiny")
	p.SpawnTask("r", func(tk *kernel.Task) {
		fd, _ := tk.Open("/dev/input/event0", devfile.ORdOnly|devfile.ONonblock)
		buf, _ := p.Alloc(4)
		tk.Sim().Sleep(2 * sim.Millisecond) // let the event arrive
		if _, err := tk.Read(fd, buf, 4); !kernel.IsErrno(err, kernel.EINVAL) {
			t.Errorf("short read: %v", err)
		}
	})
	dev.InjectAt(sim.Time(sim.Millisecond), input.EvRel, 0, 1)
	env.Run()
}

func TestIRQLatencyAppliedBeforeReport(t *testing.T) {
	env := sim.NewEnv()
	dev := input.New(env, "slow", 16*sim.Microsecond)
	var at sim.Time
	dev.OnReport(func(e input.Event) { at = e.At })
	env.RunFunc("inject", func(pr *sim.Proc) {
		pr.Sleep(100 * sim.Microsecond)
		dev.Inject(input.EvRel, 0, 1)
	})
	if at != sim.Time(116*sim.Microsecond) {
		t.Fatalf("reported at %v, want 116µs", at)
	}
}
