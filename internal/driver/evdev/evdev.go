// Package evdev implements the Linux event-device driver for the simulated
// input devices: per-reader event queues, blocking reads, poll, and the
// fasync/SIGIO asynchronous notification path that §2.1 and §5.1 describe.
package evdev

import (
	"encoding/binary"

	"paradice/internal/devfile"
	"paradice/internal/device/input"
	"paradice/internal/kernel"
	"paradice/internal/mem"
	"paradice/internal/sim"
)

// EventSize is the wire size of one event record:
// {type u16, code u16, value i32, reportedAt i64}.
const EventSize = 16

// reader is one open file's event queue.
type reader struct {
	file  *kernel.File
	queue []input.Event
}

// Driver is the evdev driver bound to one input device.
type Driver struct {
	kernel.BaseOps
	K   *kernel.Kernel
	Dev *input.Device

	wq      *kernel.WaitQueue
	readers []*reader
	// Dropped counts events discarded due to a full reader queue.
	Dropped int
}

const maxQueued = 256

// Attach registers the device file (e.g. /dev/input/event0).
func Attach(k *kernel.Kernel, dev *input.Device, path string) *Driver {
	d := &Driver{K: k, Dev: dev, wq: k.NewWaitQueue("evdev-" + path)}
	dev.OnReport(d.report)
	k.RegisterDevice(path, d, d)
	return d
}

// report fans an event out to every reader, wakes poll/read waiters, and
// kills fasync.
func (d *Driver) report(ev input.Event) {
	for _, r := range d.readers {
		if len(r.queue) >= maxQueued {
			d.Dropped++
			continue
		}
		r.queue = append(r.queue, ev)
	}
	d.wq.Wake()
	for _, r := range d.readers {
		if r.file.FasyncOn {
			r.file.Proc.DeliverSIGIO()
		}
	}
}

// Open implements kernel.FileOps.
func (d *Driver) Open(c *kernel.FopCtx) error {
	r := &reader{file: c.File}
	c.File.Priv = r
	d.readers = append(d.readers, r)
	return nil
}

// Release implements kernel.FileOps.
func (d *Driver) Release(c *kernel.FopCtx) error {
	for i, r := range d.readers {
		if r.file == c.File {
			d.readers = append(d.readers[:i], d.readers[i+1:]...)
			break
		}
	}
	return nil
}

// Read implements kernel.FileOps: drain queued events, blocking when empty.
func (d *Driver) Read(c *kernel.FopCtx, dst mem.GuestVirt, n int) (int, error) {
	r, ok := c.File.Priv.(*reader)
	if !ok {
		return 0, kernel.EINVAL
	}
	for len(r.queue) == 0 {
		if c.File.Nonblock() {
			return 0, kernel.EAGAIN
		}
		d.wq.Wait(c.Task)
	}
	count := n / EventSize
	if count == 0 {
		return 0, kernel.EINVAL
	}
	if count > len(r.queue) {
		count = len(r.queue)
	}
	// Dequeue before copying: the hypervisor-assisted copy may yield the
	// processor, and concurrent readers of the same file must not see the
	// same events (the mutex-protected section of the real driver).
	events := r.queue[:count]
	r.queue = r.queue[count:]
	buf := make([]byte, count*EventSize)
	for i, e := range events {
		binary.LittleEndian.PutUint16(buf[i*EventSize+0:], e.Type)
		binary.LittleEndian.PutUint16(buf[i*EventSize+2:], e.Code)
		binary.LittleEndian.PutUint32(buf[i*EventSize+4:], uint32(e.Value))
		binary.LittleEndian.PutUint64(buf[i*EventSize+8:], uint64(e.At))
	}
	if err := kernel.CopyToUser(c, dst, buf); err != nil {
		return 0, err
	}
	return count * EventSize, nil
}

// Poll implements kernel.FileOps.
func (d *Driver) Poll(c *kernel.FopCtx, pt *kernel.PollTable) devfile.PollMask {
	pt.Register(d.wq)
	if r, ok := c.File.Priv.(*reader); ok && len(r.queue) > 0 {
		return devfile.PollIn
	}
	return 0
}

// Fasync implements kernel.FileOps (arming is tracked by File.FasyncOn).
func (d *Driver) Fasync(c *kernel.FopCtx, on bool) error { return nil }

// DecodeEvent parses one wire-format event.
func DecodeEvent(b []byte) input.Event {
	return input.Event{
		Type:  binary.LittleEndian.Uint16(b[0:]),
		Code:  binary.LittleEndian.Uint16(b[2:]),
		Value: int32(binary.LittleEndian.Uint32(b[4:])),
		At:    sim.Time(binary.LittleEndian.Uint64(b[8:])),
	}
}
