package drm

import (
	"encoding/binary"
	"testing"

	"paradice/internal/devfile"
	"paradice/internal/device/gpu"
	"paradice/internal/hv"
	"paradice/internal/iommu"
	"paradice/internal/kernel"
	"paradice/internal/mem"
	"paradice/internal/sim"
)

// rig is a native-style single-VM machine with the GPU assigned and the
// driver attached — the driver VM of a Paradice deployment, tested alone.
type rig struct {
	env *sim.Env
	h   *hv.Hypervisor
	vm  *hv.VM
	k   *kernel.Kernel
	g   *gpu.GPU
	d   *Driver
	dom *iommu.Domain
	isr func()
}

func newRig(t testing.TB, isolated bool) *rig {
	t.Helper()
	env := sim.NewEnv()
	h := hv.New(env, 128<<20)
	vm, err := h.CreateVM("driver", 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New("driver", kernel.Linux, env, vm.Space, 32<<20)
	const vramBase = 0x8_0000_0000
	g := gpu.New(env, h.Phys, vramBase, 64<<20)
	bars := []hv.BAR{{Name: "vram", SPA: vramBase, Size: 64 << 20}}
	assign := h.AssignDevice
	if isolated {
		assign = h.AssignDeviceIsolated
	}
	dom, gpas, err := assign(vm, "gpu", bars)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{env: env, h: h, vm: vm, k: k, g: g, dom: dom}
	d, err := Attach(k, g, gpas[0], func(isr func()) { r.isr = isr })
	if err != nil {
		t.Fatal(err)
	}
	g.Connect(&iommu.DMA{Dom: dom, Phys: h.Phys}, func() { env.After(sim.Microsecond, r.isr) })
	r.d = d
	return r
}

// app is a little libdrm-less client: it issues raw ioctls.
type app struct {
	p  *kernel.Process
	tk *kernel.Task
	fd int
}

func (r *rig) openApp(t testing.TB, tk *kernel.Task) *app {
	t.Helper()
	fd, err := tk.Open("/dev/dri/card0", devfile.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	return &app{p: tk.Proc, tk: tk, fd: fd}
}

func (a *app) ioctl(t testing.TB, cmd devfile.IoctlCmd, arg []byte) (int32, []byte) {
	t.Helper()
	va, err := a.p.AllocBytes(arg)
	if err != nil {
		t.Fatal(err)
	}
	ret, err := a.tk.Ioctl(a.fd, cmd, va)
	if err != nil {
		t.Fatalf("%v: %v", cmd, err)
	}
	out := make([]byte, len(arg))
	if err := a.p.Mem.Read(va, out); err != nil {
		t.Fatal(err)
	}
	return ret, out
}

func (a *app) createBO(t testing.TB, size uint64) uint32 {
	arg := make([]byte, 16)
	binary.LittleEndian.PutUint64(arg, size)
	_, out := a.ioctl(t, IoctlGemCreate, arg)
	return binary.LittleEndian.Uint32(out)
}

func (a *app) submitDraw(t testing.TB, dst, tex uint32, cycles uint64) int32 {
	words := []uint32{gpu.OpDraw, dst, tex, uint32(cycles), uint32(cycles >> 32)}
	ib := make([]byte, len(words)*4)
	for i, w := range words {
		binary.LittleEndian.PutUint32(ib[i*4:], w)
	}
	ibVA, err := a.p.AllocBytes(ib)
	if err != nil {
		t.Fatal(err)
	}
	desc := make([]byte, 16)
	binary.LittleEndian.PutUint64(desc[0:], uint64(ibVA))
	binary.LittleEndian.PutUint32(desc[8:], uint32(len(words)))
	binary.LittleEndian.PutUint32(desc[12:], ChunkIB)
	descVA, err := a.p.AllocBytes(desc)
	if err != nil {
		t.Fatal(err)
	}
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint32(hdr[0:], 1)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(descVA))
	ret, _ := a.ioctl(t, IoctlCS, hdr)
	return ret
}

func TestGemCreateAndInfo(t *testing.T) {
	r := newRig(t, false)
	p, _ := r.k.NewProcess("app")
	p.RunTask("main", func(tk *kernel.Task) {
		a := r.openApp(t, tk)
		h1 := a.createBO(t, 8192)
		h2 := a.createBO(t, 4096)
		if h1 == 0 || h2 == 0 || h1 == h2 {
			t.Fatalf("handles %d %d", h1, h2)
		}
		_, out := a.ioctl(t, IoctlInfo, make([]byte, 32))
		if binary.LittleEndian.Uint32(out[0:]) != VendorATI {
			t.Fatalf("vendor %#x", binary.LittleEndian.Uint32(out[0:]))
		}
		if binary.LittleEndian.Uint64(out[8:]) != 64<<20 {
			t.Fatalf("vram %d", binary.LittleEndian.Uint64(out[8:]))
		}
	})
}

func TestMmapBOAndWriteVRAM(t *testing.T) {
	r := newRig(t, false)
	p, _ := r.k.NewProcess("app")
	p.RunTask("main", func(tk *kernel.Task) {
		a := r.openApp(t, tk)
		h := a.createBO(t, 2*mem.PageSize)
		arg := make([]byte, 16)
		binary.LittleEndian.PutUint32(arg, h)
		_, out := a.ioctl(t, IoctlGemMmap, arg)
		pgoff := binary.LittleEndian.Uint64(out[8:])
		va, err := tk.Mmap(a.fd, 2*mem.PageSize, pgoff)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.UserWrite(tk, va+100, []byte("into vram")); err != nil {
			t.Fatal(err)
		}
		// The bytes are physically in the GPU aperture.
		buf := make([]byte, 9)
		off := pgoff * mem.PageSize
		if err := r.h.Phys.Read(r.g.VRAMBase()+mem.SysPhys(off)+100, buf); err != nil {
			t.Fatal(err)
		}
		if string(buf) != "into vram" {
			t.Fatalf("VRAM holds %q", buf)
		}
	})
}

func TestCSDrawAndFence(t *testing.T) {
	r := newRig(t, false)
	p, _ := r.k.NewProcess("app")
	p.RunTask("main", func(tk *kernel.Task) {
		a := r.openApp(t, tk)
		fb := a.createBO(t, mem.PageSize)
		fence := a.submitDraw(t, fb, 0, 500_000)
		if fence <= 0 {
			t.Fatalf("fence = %d", fence)
		}
		start := tk.Sim().Now()
		warg := make([]byte, 8)
		binary.LittleEndian.PutUint32(warg, uint32(fence))
		a.ioctl(t, IoctlWaitFence, warg)
		if e := tk.Sim().Now().Sub(start); e < 500*sim.Microsecond {
			t.Fatalf("fence wait returned after %v, draw takes 500µs", e)
		}
	})
	if r.d.Submissions != 1 {
		t.Fatalf("submissions = %d", r.d.Submissions)
	}
}

func TestCSRejectsBadHandleAndOpcode(t *testing.T) {
	r := newRig(t, false)
	p, _ := r.k.NewProcess("app")
	p.RunTask("main", func(tk *kernel.Task) {
		a := r.openApp(t, tk)
		fence := func(words []uint32) error {
			ib := make([]byte, len(words)*4)
			for i, w := range words {
				binary.LittleEndian.PutUint32(ib[i*4:], w)
			}
			ibVA, _ := a.p.AllocBytes(ib)
			desc := make([]byte, 16)
			binary.LittleEndian.PutUint64(desc[0:], uint64(ibVA))
			binary.LittleEndian.PutUint32(desc[8:], uint32(len(words)))
			binary.LittleEndian.PutUint32(desc[12:], ChunkIB)
			descVA, _ := a.p.AllocBytes(desc)
			hdr := make([]byte, 16)
			binary.LittleEndian.PutUint32(hdr[0:], 1)
			binary.LittleEndian.PutUint64(hdr[8:], uint64(descVA))
			hdrVA, _ := a.p.AllocBytes(hdr)
			_, err := tk.Ioctl(a.fd, IoctlCS, hdrVA)
			return err
		}
		if err := fence([]uint32{gpu.OpDraw, 999, 0, 1, 0}); !kernel.IsErrno(err, kernel.EINVAL) {
			t.Fatalf("bad handle: %v", err)
		}
		if err := fence([]uint32{77}); !kernel.IsErrno(err, kernel.EINVAL) {
			t.Fatalf("bad opcode: %v", err)
		}
		if err := fence([]uint32{gpu.OpDraw, 1}); !kernel.IsErrno(err, kernel.EINVAL) {
			t.Fatalf("truncated command: %v", err)
		}
	})
}

func TestGemCloseInvalidatesHandle(t *testing.T) {
	r := newRig(t, false)
	p, _ := r.k.NewProcess("app")
	p.RunTask("main", func(tk *kernel.Task) {
		a := r.openApp(t, tk)
		h := a.createBO(t, mem.PageSize)
		arg := make([]byte, 8)
		binary.LittleEndian.PutUint32(arg, h)
		a.ioctl(t, IoctlGemClose, arg)
		// The handle is gone: mmap lookup fails.
		marg := make([]byte, 16)
		binary.LittleEndian.PutUint32(marg, h)
		va, _ := p.AllocBytes(marg)
		if _, err := tk.Ioctl(a.fd, IoctlGemMmap, va); !kernel.IsErrno(err, kernel.EINVAL) {
			t.Fatalf("mmap of closed handle: %v", err)
		}
	})
}

func TestHandlesArePerFile(t *testing.T) {
	r := newRig(t, false)
	p1, _ := r.k.NewProcess("app1")
	p2, _ := r.k.NewProcess("app2")
	var h1 uint32
	p1.SpawnTask("a", func(tk *kernel.Task) {
		a := r.openApp(t, tk)
		h1 = a.createBO(t, mem.PageSize)
	})
	p2.SpawnTask("b", func(tk *kernel.Task) {
		tk.Sim().Sleep(sim.Millisecond)
		a := r.openApp(t, tk)
		// p2 must not be able to use p1's handle.
		marg := make([]byte, 16)
		binary.LittleEndian.PutUint32(marg, h1)
		va, _ := p2.AllocBytes(marg)
		if _, err := tk.Ioctl(a.fd, IoctlGemMmap, va); !kernel.IsErrno(err, kernel.EINVAL) {
			t.Errorf("cross-file handle use: %v", err)
		}
	})
	r.env.Run()
}

func TestVRAMExhaustionENOSPC(t *testing.T) {
	r := newRig(t, false)
	p, _ := r.k.NewProcess("app")
	p.RunTask("main", func(tk *kernel.Task) {
		a := r.openApp(t, tk)
		arg := make([]byte, 16)
		binary.LittleEndian.PutUint64(arg, 63<<20)
		va, _ := p.AllocBytes(arg)
		if _, err := tk.Ioctl(a.fd, IoctlGemCreate, va); err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint64(arg, 2<<20)
		va2, _ := p.AllocBytes(arg)
		if _, err := tk.Ioctl(a.fd, IoctlGemCreate, va2); !kernel.IsErrno(err, kernel.ENOSPC) {
			t.Fatalf("over-allocation: %v", err)
		}
	})
}

func TestVSyncCountedViaReasonBuffer(t *testing.T) {
	r := newRig(t, false)
	// The device posts a VSync reason and interrupts.
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], gpu.IRQVSync)
	if err := r.k.Space.Write(r.d.irqReasonGPA, b[:]); err != nil {
		t.Fatal(err)
	}
	r.isr()
	if r.d.VSyncs != 1 {
		t.Fatalf("vsyncs = %d", r.d.VSyncs)
	}
}

func TestDataIsolationRegionSwitching(t *testing.T) {
	r := newRig(t, true)
	gate := hv.NewGate("mc")
	gate.Revoke()
	r.d.EnableDataIsolation(r.h, r.vm, r.dom, gate)
	guest1, _ := r.h.CreateVM("g1", 4<<20)
	guest2, _ := r.h.CreateVM("g2", 4<<20)
	p1, _ := r.k.NewProcess("backend-g1")
	p2, _ := r.k.NewProcess("backend-g2")
	if err := r.d.AddGuestRegion(p1, guest1, 0, 32<<20); err != nil {
		t.Fatal(err)
	}
	if err := r.d.AddGuestRegion(p2, guest2, 32<<20, 64<<20); err != nil {
		t.Fatal(err)
	}
	// A CS from p1 activates region 1 and narrows the MC window.
	p1.SpawnTask("a", func(tk *kernel.Task) {
		a := r.openApp(t, tk)
		fb := a.createBO(t, mem.PageSize)
		a.submitDraw(t, fb, 0, 1000)
	})
	r.env.Run()
	if r.d.ActiveRegion() != p1 {
		t.Fatal("region 1 not active after p1's CS")
	}
	lo, hi := r.g.MCBounds()
	if lo != 0 || hi != 32<<20 {
		t.Fatalf("MC window [%#x,%#x)", lo, hi)
	}
	// p2's CS switches.
	p2.SpawnTask("b", func(tk *kernel.Task) {
		a := r.openApp(t, tk)
		fb := a.createBO(t, mem.PageSize)
		a.submitDraw(t, fb, 0, 1000)
	})
	r.env.Run()
	if r.d.ActiveRegion() != p2 {
		t.Fatal("region 2 not active after p2's CS")
	}
	lo, hi = r.g.MCBounds()
	if lo != 32<<20 || hi != 64<<20 {
		t.Fatalf("MC window [%#x,%#x)", lo, hi)
	}
	if r.g.Faults != 0 {
		t.Fatalf("legitimate runs faulted: %d", r.g.Faults)
	}
}

func TestDataIsolationRejectsUnknownProcess(t *testing.T) {
	r := newRig(t, true)
	gate := hv.NewGate("mc")
	gate.Revoke()
	r.d.EnableDataIsolation(r.h, r.vm, r.dom, gate)
	// No region registered for this process: BO allocation is refused.
	p, _ := r.k.NewProcess("stranger")
	p.RunTask("main", func(tk *kernel.Task) {
		a := r.openApp(t, tk)
		arg := make([]byte, 16)
		binary.LittleEndian.PutUint64(arg, mem.PageSize)
		va, _ := p.AllocBytes(arg)
		if _, err := tk.Ioctl(a.fd, IoctlGemCreate, va); !kernel.IsErrno(err, kernel.EACCES) {
			t.Fatalf("stranger allocation: %v", err)
		}
	})
}

func TestReleaseRegionPageZeroes(t *testing.T) {
	r := newRig(t, true)
	gate := hv.NewGate("mc")
	gate.Revoke()
	r.d.EnableDataIsolation(r.h, r.vm, r.dom, gate)
	guest, _ := r.h.CreateVM("g1", 4<<20)
	p, _ := r.k.NewProcess("backend")
	if err := r.d.AddGuestRegion(p, guest, 0, 32<<20); err != nil {
		t.Fatal(err)
	}
	if err := r.d.ReleaseRegionPage(p, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.d.ReleaseRegionPage(p, 999); err == nil {
		t.Fatal("bad pool index accepted")
	}
}

func TestAnalyzedSpecsCoverAllCommands(t *testing.T) {
	specs, err := AnalyzedSpecs()
	if err != nil {
		t.Fatal(err)
	}
	for _, cmd := range []devfile.IoctlCmd{IoctlGemCreate, IoctlGemMmap, IoctlCS,
		IoctlWaitFence, IoctlInfo, IoctlGemClose} {
		spec, ok := specs[cmd]
		if !ok {
			t.Fatalf("no spec for %v", cmd)
		}
		if cmd == IoctlCS && !spec.Dynamic {
			t.Fatal("CS must be dynamic")
		}
		if cmd != IoctlCS && spec.Dynamic {
			t.Fatalf("%v should be static", cmd)
		}
	}
}
