// Package drm implements a Radeon-like DRM GPU driver against the
// simulated Evergreen-class device: GEM buffer objects, a command-submission
// ioctl with the nested chunk copies that motivate the paper's ioctl
// analyzer (§4.1), fence waits, mmap of buffer objects via the page-fault
// path, and — in di.go — the ~400 LoC of device data isolation
// modifications described in §5.3.
//
// Like a real driver, it touches process memory only through the kernel's
// copy_to_user/copy_from_user/insert_pfn layer, so it runs unmodified both
// natively and behind the CVD with marked tasks.
package drm

import (
	"encoding/binary"

	"paradice/internal/devfile"
	"paradice/internal/device/gpu"
	"paradice/internal/iommu"
	"paradice/internal/kernel"
	"paradice/internal/mem"
	"paradice/internal/sim"
)

// The driver's ioctl commands ('d' is the DRM magic).
var (
	// IoctlGemCreate: in {size u64, flags u32, pad u32}, out {handle u32 ...}.
	IoctlGemCreate = devfile.IOWR('d', 0x01, 16)
	// IoctlGemMmap: in {handle u32, pad u32, ...}, out {pgoff u64 at offset 8}.
	IoctlGemMmap = devfile.IOWR('d', 0x02, 16)
	// IoctlCS: command submission; header {nchunks u32, pad u32, chunksPtr
	// u64}. The chunk array and chunk data are nested copies.
	IoctlCS = devfile.IOW('d', 0x03, 16)
	// IoctlWaitFence: in {seq u32, timeoutMs u32}.
	IoctlWaitFence = devfile.IOW('d', 0x04, 8)
	// IoctlInfo: out {vendor u32, device u32, vramSize u64, fence u32, ...}.
	IoctlInfo = devfile.IOR('d', 0x05, 32)
	// IoctlGemClose: in {handle u32, pad u32}.
	IoctlGemClose = devfile.IOW('d', 0x06, 8)
)

// CS chunk kinds.
const (
	ChunkIB = 1 // command words
)

// PCI identity of the paper's primary card (Radeon HD 6450, Caicos).
const (
	VendorATI  = 0x1002
	DeviceHD64 = 0x6779
)

// Model returns the card identity the driver was attached for.
func (d *Driver) Model() Model { return d.model }

// bo is a GEM buffer object in VRAM.
type bo struct {
	handle  uint32
	size    uint64
	vramOff uint64
}

// fileState is the per-open state (GEM handles are per file descriptor).
type fileState struct {
	bos    map[uint32]*bo
	nextBO uint32
}

// Driver is the DRM driver instance bound to one GPU.
type Driver struct {
	kernel.BaseOps
	K   *kernel.Kernel
	GPU *gpu.GPU

	// vramGPA is where the VRAM BAR appears in the driver VM's
	// guest-physical space; insert_pfn hands out pages from it.
	vramGPA mem.GuestPhys

	fenceWQ   *kernel.WaitQueue
	nextFence uint32

	// VRAM allocation state; under data isolation each guest allocates
	// from its own partition.
	vramNext uint64
	vramEnd  uint64

	// irqReasonGPA is the system-memory page the device writes interrupt
	// reasons to (0 when disabled for data isolation).
	irqReasonGPA mem.GuestPhys

	// model is the card identity the driver exposes (Table 1's GPUs).
	model Model

	di *dataIsolation // nil unless device data isolation is enabled

	// Software VSync emulation state (vsync.go).
	vsyncOn     bool
	vsyncArmed  bool
	vsyncPeriod sim.Duration
	vsyncCount  uint32
	vsyncWQ     *kernel.WaitQueue

	// Stats.
	Submissions int
	VSyncs      int
}

// VRAMGPA returns where the GPU's VRAM BAR appears in the driver VM's
// guest-physical space.
func (d *Driver) VRAMGPA() mem.GuestPhys { return d.vramGPA }

// Attach creates the driver for a GPU whose VRAM BAR appears at vramGPA in
// the driver VM, allocates the interrupt-reason buffer, and registers the
// device file. registerISR installs the driver's interrupt handler on the
// device's vector.
func Attach(k *kernel.Kernel, g *gpu.GPU, vramGPA mem.GuestPhys, registerISR func(func())) (*Driver, error) {
	return AttachModel(k, g, ModelHD6450, vramGPA, registerISR)
}

// AttachModel attaches the driver for a specific card model (Table 1 lists
// four makes and models behind the same device file boundary).
func AttachModel(k *kernel.Kernel, g *gpu.GPU, model Model, vramGPA mem.GuestPhys, registerISR func(func())) (*Driver, error) {
	d := &Driver{
		K:       k,
		GPU:     g,
		model:   model,
		vramGPA: vramGPA,
		fenceWQ: k.NewWaitQueue("drm-fence"),
		vramEnd: g.VRAMSize(),
	}
	reason, err := k.AllocFrame()
	if err != nil {
		return nil, err
	}
	d.irqReasonGPA = reason
	// Bus address == driver guest-physical address under device assignment.
	g.SetIRQReasonBuffer(iommu.BusAddr(reason))
	registerISR(d.isr)
	k.RegisterDevice("/dev/dri/card0", d, d)
	return d, nil
}

// isr handles the device interrupt: read the reason from the system-memory
// ring (normal operation) or treat everything as a fence (data isolation,
// §5.3), then wake fence waiters.
func (d *Driver) isr() {
	reason := uint32(gpu.IRQFence)
	if d.irqReasonGPA != 0 {
		var b [4]byte
		if err := d.K.Space.Read(d.irqReasonGPA, b[:]); err == nil {
			reason = binary.LittleEndian.Uint32(b[:])
		}
	}
	switch reason {
	case gpu.IRQVSync:
		d.VSyncs++
	default:
		d.fenceWQ.Wake()
	}
}

// allocVRAM carves size bytes (page-aligned) out of the caller's partition.
func (d *Driver) allocVRAM(c *kernel.FopCtx, size uint64) (uint64, error) {
	size = (size + mem.PageSize - 1) &^ (mem.PageSize - 1)
	lo, hi := &d.vramNext, d.vramEnd
	if d.di != nil {
		r, err := d.di.regionFor(c)
		if err != nil {
			return 0, err
		}
		lo, hi = &r.vramNext, r.vramHi
	}
	if *lo+size > hi {
		return 0, kernel.ENOSPC
	}
	off := *lo
	*lo += size
	if err := d.GPU.EnsureVRAM(off, size); err != nil {
		return 0, kernel.ENOMEM
	}
	return off, nil
}

// Open implements kernel.FileOps.
func (d *Driver) Open(c *kernel.FopCtx) error {
	c.File.Priv = &fileState{bos: make(map[uint32]*bo), nextBO: 1}
	return nil
}

// Release implements kernel.FileOps. (VRAM of a closed file is leaked, as
// in a deliberately simple allocator; real radeon uses TTM eviction.)
func (d *Driver) Release(c *kernel.FopCtx) error { return nil }

func fstate(c *kernel.FopCtx) (*fileState, error) {
	fs, ok := c.File.Priv.(*fileState)
	if !ok {
		return nil, kernel.EINVAL
	}
	return fs, nil
}

// Ioctl implements kernel.FileOps.
func (d *Driver) Ioctl(c *kernel.FopCtx, cmd devfile.IoctlCmd, arg mem.GuestVirt) (int32, error) {
	switch cmd {
	case IoctlGemCreate:
		return d.gemCreate(c, arg)
	case IoctlGemMmap:
		return d.gemMmap(c, arg)
	case IoctlCS:
		return d.cs(c, arg)
	case IoctlWaitFence:
		return d.waitFence(c, arg)
	case IoctlInfo:
		return d.info(c, arg)
	case IoctlGemClose:
		return d.gemClose(c, arg)
	case IoctlWaitVSync:
		return d.waitVSync(c, arg)
	}
	return 0, kernel.ENOTTY
}

func (d *Driver) gemCreate(c *kernel.FopCtx, arg mem.GuestVirt) (int32, error) {
	fs, err := fstate(c)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, 16)
	if err := kernel.CopyFromUser(c, arg, buf); err != nil {
		return 0, err
	}
	size := binary.LittleEndian.Uint64(buf[0:])
	if size == 0 {
		return 0, kernel.EINVAL
	}
	off, aerr := d.allocVRAM(c, size)
	if aerr != nil {
		return 0, aerr
	}
	b := &bo{handle: fs.nextBO, size: size, vramOff: off}
	fs.nextBO++
	fs.bos[b.handle] = b
	binary.LittleEndian.PutUint32(buf[0:], b.handle)
	if err := kernel.CopyToUser(c, arg, buf); err != nil {
		return 0, err
	}
	return 0, nil
}

func (d *Driver) gemMmap(c *kernel.FopCtx, arg mem.GuestVirt) (int32, error) {
	fs, err := fstate(c)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, 16)
	if err := kernel.CopyFromUser(c, arg, buf); err != nil {
		return 0, err
	}
	b := fs.bos[binary.LittleEndian.Uint32(buf[0:])]
	if b == nil {
		return 0, kernel.EINVAL
	}
	binary.LittleEndian.PutUint64(buf[8:], b.vramOff/mem.PageSize)
	if err := kernel.CopyToUser(c, arg, buf); err != nil {
		return 0, err
	}
	return 0, nil
}

func (d *Driver) gemClose(c *kernel.FopCtx, arg mem.GuestVirt) (int32, error) {
	fs, err := fstate(c)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, 8)
	if err := kernel.CopyFromUser(c, arg, buf); err != nil {
		return 0, err
	}
	h := binary.LittleEndian.Uint32(buf[0:])
	if fs.bos[h] == nil {
		return 0, kernel.EINVAL
	}
	delete(fs.bos, h)
	return 0, nil
}

// cs is the command-submission ioctl: the header names an array of chunk
// descriptors in user memory, each naming command data in user memory — the
// nested-copy structure the analyzer must extract (§4.1).
func (d *Driver) cs(c *kernel.FopCtx, arg mem.GuestVirt) (int32, error) {
	fs, err := fstate(c)
	if err != nil {
		return 0, err
	}
	hdr := make([]byte, 16)
	if err := kernel.CopyFromUser(c, arg, hdr); err != nil {
		return 0, err
	}
	nchunks := binary.LittleEndian.Uint32(hdr[0:])
	chunksPtr := mem.GuestVirt(binary.LittleEndian.Uint64(hdr[8:]))
	if nchunks > 64 {
		return 0, kernel.EINVAL
	}
	var cmds []gpu.EngineCmd
	for i := uint32(0); i < nchunks; i++ {
		desc := make([]byte, 16)
		if err := kernel.CopyFromUser(c, chunksPtr+mem.GuestVirt(i*16), desc); err != nil {
			return 0, err
		}
		dataPtr := mem.GuestVirt(binary.LittleEndian.Uint64(desc[0:]))
		lenDW := binary.LittleEndian.Uint32(desc[8:])
		kind := binary.LittleEndian.Uint32(desc[12:])
		data := make([]byte, lenDW*4)
		if err := kernel.CopyFromUser(c, dataPtr, data); err != nil {
			return 0, err
		}
		if kind != ChunkIB {
			continue // relocation chunks etc. carry no commands
		}
		parsed, perr := d.parseIB(fs, data)
		if perr != nil {
			return 0, perr
		}
		cmds = append(cmds, parsed...)
	}
	if d.di != nil {
		if err := d.di.activate(c); err != nil {
			return 0, err
		}
	}
	d.nextFence++
	fence := d.nextFence
	d.GPU.Submit(cmds, fence)
	d.Submissions++
	return int32(fence), nil
}

// parseIB decodes command words, translating BO handles to VRAM addresses.
func (d *Driver) parseIB(fs *fileState, data []byte) ([]gpu.EngineCmd, error) {
	words := make([]uint32, len(data)/4)
	for i := range words {
		words[i] = binary.LittleEndian.Uint32(data[i*4:])
	}
	lookup := func(h uint32) (*bo, error) {
		b := fs.bos[h]
		if b == nil {
			return nil, kernel.EINVAL
		}
		return b, nil
	}
	var cmds []gpu.EngineCmd
	for i := 0; i < len(words); {
		switch words[i] {
		case gpu.OpNop:
			i++
		case gpu.OpDraw: // [op, dstH, texH, cyclesLo, cyclesHi]
			if i+5 > len(words) {
				return nil, kernel.EINVAL
			}
			dst, err := lookup(words[i+1])
			if err != nil {
				return nil, err
			}
			tex := ^uint64(0)
			if words[i+2] != 0 {
				tb, err := lookup(words[i+2])
				if err != nil {
					return nil, err
				}
				tex = tb.vramOff
			}
			cycles := uint64(words[i+3]) | uint64(words[i+4])<<32
			cmds = append(cmds, gpu.Cmd(gpu.OpDraw, dst.vramOff, tex, cycles))
			i += 5
		case gpu.OpCompute: // [op, aH, bH, cH, order]
			if i+5 > len(words) {
				return nil, kernel.EINVAL
			}
			a, err := lookup(words[i+1])
			if err != nil {
				return nil, err
			}
			b, err := lookup(words[i+2])
			if err != nil {
				return nil, err
			}
			cc, err := lookup(words[i+3])
			if err != nil {
				return nil, err
			}
			n := uint64(words[i+4])
			if n*n*4 > a.size || n*n*4 > b.size || n*n*4 > cc.size {
				return nil, kernel.EINVAL
			}
			cmds = append(cmds, gpu.Cmd(gpu.OpCompute, a.vramOff, b.vramOff, cc.vramOff, n))
			i += 5
		case gpu.OpCopy: // [op, srcH, dstH, bytes]
			if i+4 > len(words) {
				return nil, kernel.EINVAL
			}
			src, err := lookup(words[i+1])
			if err != nil {
				return nil, err
			}
			dst, err := lookup(words[i+2])
			if err != nil {
				return nil, err
			}
			n := uint64(words[i+3])
			if n > src.size || n > dst.size {
				return nil, kernel.EINVAL
			}
			cmds = append(cmds, gpu.Cmd(gpu.OpCopy, src.vramOff, dst.vramOff, n))
			i += 4
		default:
			return nil, kernel.EINVAL
		}
	}
	return cmds, nil
}

func (d *Driver) waitFence(c *kernel.FopCtx, arg mem.GuestVirt) (int32, error) {
	buf := make([]byte, 8)
	if err := kernel.CopyFromUser(c, arg, buf); err != nil {
		return 0, err
	}
	seq := binary.LittleEndian.Uint32(buf[0:])
	for d.GPU.FenceSeq() < seq {
		d.fenceWQ.Wait(c.Task)
	}
	return int32(d.GPU.FenceSeq()), nil
}

func (d *Driver) info(c *kernel.FopCtx, arg mem.GuestVirt) (int32, error) {
	buf := make([]byte, 32)
	binary.LittleEndian.PutUint32(buf[0:], d.model.Vendor)
	binary.LittleEndian.PutUint32(buf[4:], d.model.Device)
	binary.LittleEndian.PutUint64(buf[8:], d.GPU.VRAMSize())
	binary.LittleEndian.PutUint32(buf[16:], d.GPU.FenceSeq())
	if err := kernel.CopyToUser(c, arg, buf); err != nil {
		return 0, err
	}
	return 0, nil
}

// Mmap implements kernel.FileOps: mappings are demand-faulted.
func (d *Driver) Mmap(c *kernel.FopCtx, v *kernel.VMA) error {
	fs, err := fstate(c)
	if err != nil {
		return err
	}
	if v.Start == 0 {
		return kernel.EINVAL
	}
	if _, ok := d.boByPgoff(fs, v.Pgoff, v.Len); !ok {
		return kernel.EINVAL
	}
	return nil
}

func (d *Driver) boByPgoff(fs *fileState, pgoff, length uint64) (*bo, bool) {
	for _, b := range fs.bos {
		if b.vramOff/mem.PageSize == pgoff {
			if length <= (b.size+mem.PageSize-1)&^(mem.PageSize-1) {
				return b, true
			}
			return nil, false
		}
	}
	return nil, false
}

// Fault implements kernel.FileOps: map the faulting VRAM page into the
// process via insert_pfn (redirected to the hypervisor for marked tasks).
func (d *Driver) Fault(c *kernel.FopCtx, v *kernel.VMA, va mem.GuestVirt) error {
	fs, err := fstate(c)
	if err != nil {
		return err
	}
	b, ok := d.boByPgoff(fs, v.Pgoff, v.Len)
	if !ok {
		return kernel.EFAULT
	}
	off := uint64(va) - uint64(v.Start)
	pfn := d.vramGPA + mem.GuestPhys(b.vramOff+off)
	return kernel.InsertPFN(c, va, pfn)
}

// Poll implements kernel.FileOps: readable when any fence has completed.
func (d *Driver) Poll(c *kernel.FopCtx, pt *kernel.PollTable) devfile.PollMask {
	pt.Register(d.fenceWQ)
	if d.GPU.FenceSeq() > 0 {
		return devfile.PollIn | devfile.PollOut
	}
	return devfile.PollOut
}
