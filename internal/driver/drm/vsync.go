package drm

import (
	"encoding/binary"

	"paradice/internal/devfile"
	"paradice/internal/kernel"
	"paradice/internal/mem"
	"paradice/internal/sim"
)

// Software VSync emulation — the solution §5.3 proposes for the interrupt
// the device data isolation configuration loses: "we are thinking of
// emulating the VSync interrupts in software. We do not expect high
// overhead since VSync happens relatively rarely, e.g., every 16ms for
// rendering 60 frames per second."
//
// The emulated vblank timer is armed lazily: it ticks only while someone is
// waiting on it, so an idle machine quiesces.

// IoctlWaitVSync blocks until the next (emulated) vertical blank:
// in/out {counter u32, pad u32}; returns the vblank counter.
var IoctlWaitVSync = devfile.IOWR('d', 0x07, 8)

// EnableSoftVSync enables the emulated vblank at the given refresh rate.
// Under device data isolation the hardware VSync interrupt cannot be used
// (the interrupt-reason buffer is disabled), so this timer stands in.
func (d *Driver) EnableSoftVSync(hz int) {
	if hz <= 0 {
		return
	}
	d.vsyncOn = true
	d.vsyncPeriod = sim.Duration(int64(sim.Second) / int64(hz))
	if d.vsyncWQ == nil {
		d.vsyncWQ = d.K.NewWaitQueue("drm-vsync")
	}
}

// DisableSoftVSync stops the emulated vblank.
func (d *Driver) DisableSoftVSync() { d.vsyncOn = false }

// armVSync schedules the next tick if none is pending.
func (d *Driver) armVSync() {
	if d.vsyncArmed || !d.vsyncOn {
		return
	}
	d.vsyncArmed = true
	d.K.Env.After(d.vsyncPeriod, d.vsyncTick)
}

func (d *Driver) vsyncTick() {
	d.vsyncArmed = false
	if !d.vsyncOn {
		return
	}
	d.VSyncs++
	d.vsyncCount++
	d.vsyncWQ.Wake()
}

// waitVSync blocks the caller until the next vblank. EINVAL when the
// emulation is not enabled.
func (d *Driver) waitVSync(c *kernel.FopCtx, arg mem.GuestVirt) (int32, error) {
	if !d.vsyncOn {
		return 0, kernel.EINVAL
	}
	buf := make([]byte, 8)
	if err := kernel.CopyFromUser(c, arg, buf); err != nil {
		return 0, err
	}
	target := d.vsyncCount + 1
	for d.vsyncCount < target {
		d.armVSync()
		d.vsyncWQ.Wait(c.Task)
	}
	binary.LittleEndian.PutUint32(buf, uint32(d.vsyncCount))
	if err := kernel.CopyToUser(c, arg, buf); err != nil {
		return 0, err
	}
	return int32(d.vsyncCount), nil
}
