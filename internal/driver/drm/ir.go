package drm

import (
	"paradice/internal/devfile"
	"paradice/internal/ioctlan"
)

// IoctlIR is the driver's ioctl handlers in the analyzer's IR — the stand-in
// for the C source the paper's Clang tool parses (§4.1). The CS handler has
// the two-level nested-copy structure (header -> chunk descriptors -> chunk
// data) that defeats the command-number macros and requires just-in-time
// slice execution in the CVD frontend; note the descriptor's length field is
// in 32-bit words, so the extracted slice multiplies it by four.
func IoctlIR() []*ioctlan.Prog {
	return []*ioctlan.Prog{
		{
			Cmd:  IoctlGemCreate,
			Name: "DRM_GEM_CREATE",
			Body: []ioctlan.Stmt{
				ioctlan.CopyFromUser{Dst: "req", Src: ioctlan.Arg{}, Size: ioctlan.CmdSize{}},
				ioctlan.DriverWork{What: "pin VRAM range"},
				ioctlan.DriverWork{What: "install GEM handle"},
				ioctlan.CopyToUser{Dst: ioctlan.Arg{}, Size: ioctlan.CmdSize{}},
			},
		},
		{
			Cmd:  IoctlGemMmap,
			Name: "DRM_GEM_MMAP",
			Body: []ioctlan.Stmt{
				ioctlan.CopyFromUser{Dst: "req", Src: ioctlan.Arg{}, Size: ioctlan.CmdSize{}},
				ioctlan.DriverWork{What: "compute fake mmap offset"},
				ioctlan.CopyToUser{Dst: ioctlan.Arg{}, Size: ioctlan.CmdSize{}},
			},
		},
		{
			Cmd:  IoctlCS,
			Name: "DRM_CS",
			Body: []ioctlan.Stmt{
				ioctlan.DriverWork{What: "acquire ring mutex"},
				ioctlan.CopyFromUser{Dst: "hdr", Src: ioctlan.Arg{}, Size: ioctlan.CmdSize{}},
				ioctlan.Let{Name: "nchunks", Val: ioctlan.LoadField{Buf: "hdr", Off: 0, Size: 4}},
				ioctlan.Let{Name: "chunks", Val: ioctlan.LoadField{Buf: "hdr", Off: 8, Size: 8}},
				ioctlan.DriverWork{What: "reserve IB space"},
				ioctlan.For{Var: "i", Count: ioctlan.Local("nchunks"), Body: []ioctlan.Stmt{
					ioctlan.CopyFromUser{
						Dst: "desc",
						Src: ioctlan.Bin{Op: '+', L: ioctlan.Local("chunks"),
							R: ioctlan.Bin{Op: '*', L: ioctlan.Local("i"), R: ioctlan.Const(16)}},
						Size: ioctlan.Const(16),
					},
					ioctlan.CopyFromUser{
						Dst: "ib",
						Src: ioctlan.LoadField{Buf: "desc", Off: 0, Size: 8},
						Size: ioctlan.Bin{Op: '*',
							L: ioctlan.LoadField{Buf: "desc", Off: 8, Size: 4},
							R: ioctlan.Const(4)},
					},
					ioctlan.DriverWork{What: "validate and emit IB"},
				}},
				ioctlan.DriverWork{What: "emit fence"},
				ioctlan.DriverWork{What: "kick command processor"},
				ioctlan.DriverWork{What: "release ring mutex"},
			},
		},
		{
			Cmd:  IoctlWaitFence,
			Name: "DRM_WAIT_FENCE",
			Body: []ioctlan.Stmt{
				ioctlan.CopyFromUser{Dst: "req", Src: ioctlan.Arg{}, Size: ioctlan.CmdSize{}},
				ioctlan.DriverWork{What: "sleep on fence wait queue"},
			},
		},
		{
			Cmd:  IoctlInfo,
			Name: "DRM_INFO",
			Body: []ioctlan.Stmt{
				ioctlan.DriverWork{What: "gather device identity"},
				ioctlan.CopyToUser{Dst: ioctlan.Arg{}, Size: ioctlan.CmdSize{}},
			},
		},
		{
			Cmd:  IoctlWaitVSync,
			Name: "DRM_WAIT_VSYNC",
			Body: []ioctlan.Stmt{
				ioctlan.CopyFromUser{Dst: "req", Src: ioctlan.Arg{}, Size: ioctlan.CmdSize{}},
				ioctlan.DriverWork{What: "sleep until vblank"},
				ioctlan.CopyToUser{Dst: ioctlan.Arg{}, Size: ioctlan.CmdSize{}},
			},
		},
		{
			Cmd:  IoctlGemClose,
			Name: "DRM_GEM_CLOSE",
			Body: []ioctlan.Stmt{
				ioctlan.CopyFromUser{Dst: "req", Src: ioctlan.Arg{}, Size: ioctlan.CmdSize{}},
				ioctlan.DriverWork{What: "drop handle reference"},
			},
		},
	}
}

// AnalyzedSpecs runs the analyzer over the driver's IR and returns the spec
// table the CVD frontend consumes.
func AnalyzedSpecs() (map[devfile.IoctlCmd]*ioctlan.CmdSpec, error) {
	out := make(map[devfile.IoctlCmd]*ioctlan.CmdSpec)
	for _, p := range IoctlIR() {
		spec, err := ioctlan.Analyze(p)
		if err != nil {
			return nil, err
		}
		out[p.Cmd] = spec
	}
	return out, nil
}
