package drm

import "fmt"

// Model identifies one of the GPUs the paper paravirtualizes (Table 1).
// Device data isolation is Evergreen-only (§5.3: "our changes only support
// the Radeon Evergreen series", whose memory controller exposes the
// accessible-VRAM bound registers §4.2 relies on).
type Model struct {
	Name      string
	Vendor    uint32
	Device    uint32
	VRAM      uint64
	Evergreen bool
	// DriverName is the stack a real system would load (Table 1's column).
	DriverName string
}

// The GPU models of Table 1.
var (
	ModelHD6450 = Model{
		Name: "ATI Radeon HD 6450", Vendor: 0x1002, Device: 0x6779,
		VRAM: 1 << 30, Evergreen: true, DriverName: "DRM/Radeon",
	}
	ModelHD4650 = Model{
		Name: "ATI Radeon HD 4650", Vendor: 0x1002, Device: 0x9498,
		VRAM: 512 << 20, Evergreen: false, DriverName: "DRM/Radeon",
	}
	ModelX1300 = Model{
		Name: "ATI Mobility Radeon X1300", Vendor: 0x1002, Device: 0x7149,
		VRAM: 256 << 20, Evergreen: false, DriverName: "DRM/Radeon",
	}
	ModelGM965 = Model{
		Name: "Intel Mobile GM965/GL960", Vendor: 0x8086, Device: 0x2a02,
		VRAM: 256 << 20, Evergreen: false, DriverName: "DRM/i915",
	}
)

// LookupModel resolves a model by short name ("hd6450", "hd4650", "x1300",
// "gm965"); the empty string selects the paper's primary card, the HD 6450.
func LookupModel(name string) (Model, error) {
	switch name {
	case "", "hd6450":
		return ModelHD6450, nil
	case "hd4650":
		return ModelHD4650, nil
	case "x1300":
		return ModelX1300, nil
	case "gm965":
		return ModelGM965, nil
	}
	return Model{}, fmt.Errorf("drm: unknown GPU model %q", name)
}
