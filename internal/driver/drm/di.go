package drm

import (
	"paradice/internal/device/gpu"
	"paradice/internal/hv"
	"paradice/internal/iommu"
	"paradice/internal/kernel"
	"paradice/internal/mem"
)

// This file is the reproduction of §5.3: the four sets of changes the paper
// makes to the Radeon driver (~400 LoC) so it functions under
// hypervisor-enforced device data isolation:
//
//  (i)  per-region page pools mapped into the IOMMU at initialization, with
//       the hypervisor zeroing pages on unmap;
//  (ii) per-region copies of device-managed buffers (the GPU address
//       translation buffer), created device-read-only to emulate write-only
//       CPU permissions (change iv);
//  (iii) the memory-controller register page unmapped from the driver VM,
//       with accesses going through a hypercall;
//  (iv) interrupts other than fences disabled, every interrupt interpreted
//       as a fence, because the interrupt-reason buffer would need a
//       device-writable, driver-readable system page that isolation forbids.

// regionState is the driver's bookkeeping for one guest VM's protected
// memory region.
type regionState struct {
	id       iommu.RegionID
	proc     *kernel.Process // the backend process serving this guest
	vramLo   uint64
	vramNext uint64
	vramHi   uint64
	pool     []mem.GuestPhys // system-memory page pool (change i)
	gart     mem.GuestPhys   // per-region address-translation buffer (change ii)
}

type dataIsolation struct {
	h      *hv.Hypervisor
	drvVM  *hv.VM
	dom    *iommu.Domain
	mcGate *hv.Gate
	gpu    *gpu.GPU
	// regions keyed by the process the file operations arrive on — each
	// guest VM's CVD channel has its own backend process.
	regions map[*kernel.Process]*regionState
	active  *regionState
	// poolPages is the per-region pool size mapped at initialization.
	poolPages int
}

// EnableDataIsolation converts the driver to the isolation-compatible
// configuration: the MC registers become hypercall-only (the hypervisor has
// revoked their MMIO page via the gate), and the interrupt-reason buffer is
// disabled so every interrupt is treated as a fence — which costs the VSync
// interrupt, exactly as the paper reports.
func (d *Driver) EnableDataIsolation(h *hv.Hypervisor, drvVM *hv.VM, dom *iommu.Domain, mcGate *hv.Gate) error {
	if !d.model.Evergreen && d.model.Name != "" {
		return kernel.EINVAL // §5.3: only the Evergreen series has the MC bound registers
	}
	d.di = &dataIsolation{
		h: h, drvVM: drvVM, dom: dom, mcGate: mcGate, gpu: d.GPU,
		regions:   make(map[*kernel.Process]*regionState),
		poolPages: 16,
	}
	d.irqReasonGPA = 0
	d.GPU.SetIRQReasonBuffer(0)
	return nil
}

// DataIsolationEnabled reports whether the driver runs in the §5.3
// configuration.
func (d *Driver) DataIsolationEnabled() bool { return d.di != nil }

// AddGuestRegion prepares a protected memory region for one guest VM: a
// VRAM partition [vramLo, vramHi) whose pages the hypervisor protects, a
// pool of driver-VM system pages staged in the IOMMU under the region, and
// the per-region GART buffer. proc is the CVD backend process serving that
// guest — the driver keys incoming file operations by it.
func (d *Driver) AddGuestRegion(proc *kernel.Process, guest *hv.VM, vramLo, vramHi uint64) error {
	di := d.di
	region := di.h.CreateRegion(guest)
	r := &regionState{id: region, proc: proc, vramLo: vramLo, vramNext: vramLo, vramHi: vramHi}

	// Change (i): allocate and stage the page pool during initialization.
	for i := 0; i < di.poolPages; i++ {
		pfn, err := d.K.AllocFrame()
		if err != nil {
			return err
		}
		if err := di.h.RegionAddSysPage(di.dom, region, di.drvVM, pfn); err != nil {
			return err
		}
		r.pool = append(r.pool, pfn)
	}

	// Change (ii): a GART buffer per region, device-read-only so the
	// driver keeps (emulated write-only) CPU access.
	gart, err := d.K.AllocFrame()
	if err != nil {
		return err
	}
	if err := di.h.RegionAddSysPageDeviceRO(di.dom, region, di.drvVM, gart); err != nil {
		return err
	}
	r.gart = gart

	// Protect the VRAM partition: the device pages become region-owned and
	// the driver VM loses CPU access to them. (The pages themselves remain
	// lazily backed; protection is an EPT-permission property.)
	if err := di.h.ProtectDeviceRange(di.drvVM, region, d.vramGPA+mem.GuestPhys(vramLo), vramHi-vramLo); err != nil {
		return err
	}
	di.regions[proc] = r
	return nil
}

// regionFor resolves the protected region a file operation belongs to, via
// the process its task runs as.
func (di *dataIsolation) regionFor(c *kernel.FopCtx) (*regionState, error) {
	r, ok := di.regions[c.Task.Proc]
	if !ok {
		return nil, kernel.EACCES
	}
	return r, nil
}

// activate switches the device to the requesting guest's region before a
// command submission: the hypervisor swaps the IOMMU live set and — through
// the hypercall gate — the MC accessible-VRAM window (§4.2: "the device has
// access permission to one memory region at a time").
func (di *dataIsolation) activate(c *kernel.FopCtx) error {
	r, err := di.regionFor(c)
	if err != nil {
		return err
	}
	if di.active == r {
		return nil
	}
	if err := di.h.RegionSwitch(di.dom, r.id); err != nil {
		return kernel.EIO
	}
	di.h.HypercallAccess(di.mcGate, func() {
		di.gpu.SetMCBounds(r.vramLo, r.vramHi)
	})
	di.active = r
	return nil
}

// ReleaseRegionPage returns a pool page to the hypervisor, which zeroes it
// before unmapping (change i's teardown path).
func (d *Driver) ReleaseRegionPage(proc *kernel.Process, idx int) error {
	r, ok := d.di.regions[proc]
	if !ok || idx >= len(r.pool) {
		return kernel.EINVAL
	}
	return d.di.h.RegionRemoveSysPage(d.di.dom, r.id, d.di.drvVM, r.pool[idx])
}

// ActiveRegion exposes the active region's owner process for tests.
func (d *Driver) ActiveRegion() *kernel.Process {
	if d.di == nil || d.di.active == nil {
		return nil
	}
	return d.di.active.proc
}
