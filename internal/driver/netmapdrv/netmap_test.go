package netmapdrv

import (
	"encoding/binary"
	"testing"

	"paradice/internal/devfile"
	"paradice/internal/device/nic"
	"paradice/internal/hv"
	"paradice/internal/iommu"
	"paradice/internal/kernel"
	"paradice/internal/mem"
	"paradice/internal/sim"
)

func newRig(t testing.TB) (*kernel.Kernel, *nic.NIC, *sim.Env) {
	t.Helper()
	env := sim.NewEnv()
	h := hv.New(env, 64<<20)
	vm, err := h.CreateVM("m", 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New("m", kernel.Linux, env, vm.Space, 16<<20)
	n := nic.New(env)
	dom, _, err := h.AssignDevice(vm, "nic", nil)
	if err != nil {
		t.Fatal(err)
	}
	n.Connect(&iommu.DMA{Dom: dom, Phys: h.Phys})
	if _, err := Attach(k, n); err != nil {
		t.Fatal(err)
	}
	return k, n, env
}

// nmApp drives the netmap API by hand (the usrlib version is tested
// elsewhere; this exercises the raw ring protocol).
func TestRawRingProtocol(t *testing.T) {
	k, n, env := newRig(t)
	p, _ := k.NewProcess("raw")
	p.SpawnTask("tx", func(tk *kernel.Task) {
		fd, err := tk.Open("/dev/netmap", devfile.ORdWr)
		if err != nil {
			t.Error(err)
			return
		}
		arg, _ := p.Alloc(16)
		if _, err := tk.Ioctl(fd, NIOCREGIF, arg); err != nil {
			t.Error(err)
			return
		}
		out := make([]byte, 16)
		_ = p.Mem.Read(arg, out)
		slots := binary.LittleEndian.Uint32(out[0:])
		pages := binary.LittleEndian.Uint32(out[8:])
		if slots != NumSlots || pages != memPages {
			t.Errorf("layout %d slots %d pages", slots, pages)
		}
		base, err := tk.Mmap(fd, uint64(pages)*mem.PageSize, 0)
		if err != nil {
			t.Error(err)
			return
		}
		// Write one packet into slot 0's buffer, set its length, bump head.
		pkt := []byte{1, 2, 3, 4, 5, 6, 7, 8}
		if err := p.UserWrite(tk, base+mem.PageSize, pkt); err != nil {
			t.Error(err)
			return
		}
		var lenB [4]byte
		binary.LittleEndian.PutUint32(lenB[:], 8)
		if err := p.UserWrite(tk, base+slotTab, lenB[:]); err != nil {
			t.Error(err)
			return
		}
		var headB [4]byte
		binary.LittleEndian.PutUint32(headB[:], 1)
		if err := p.UserWrite(tk, base+offHead, headB[:]); err != nil {
			t.Error(err)
			return
		}
		if _, err := tk.Poll(fd, devfile.PollOut, -1); err != nil {
			t.Error(err)
			return
		}
		// Wait for the wire.
		tk.Sim().Sleep(10 * sim.Microsecond)
		// Tail advanced past our packet.
		var tailB [4]byte
		if err := p.UserRead(tk, base+offTail, tailB[:]); err != nil {
			t.Error(err)
			return
		}
		if binary.LittleEndian.Uint32(tailB[:]) != 1 {
			t.Errorf("tail = %d", binary.LittleEndian.Uint32(tailB[:]))
		}
	})
	env.Run()
	if n.TxPackets != 1 || n.TxBytes != 8 {
		t.Fatalf("nic: %d pkts %d bytes", n.TxPackets, n.TxBytes)
	}
	want := uint32(0)
	for _, b := range []byte{1, 2, 3, 4, 5, 6, 7, 8} {
		want = want*31 + uint32(b)
	}
	if n.Checksum != want {
		t.Fatalf("checksum %#x want %#x", n.Checksum, want)
	}
}

func TestSingleClient(t *testing.T) {
	k, _, env := newRig(t)
	p, _ := k.NewProcess("app")
	p.SpawnTask("main", func(tk *kernel.Task) {
		if _, err := tk.Open("/dev/netmap", devfile.ORdWr); err != nil {
			t.Error(err)
		}
		if _, err := tk.Open("/dev/netmap", devfile.ORdWr); !kernel.IsErrno(err, kernel.EBUSY) {
			t.Errorf("second client: %v", err)
		}
	})
	env.Run()
}

func TestUnknownIoctl(t *testing.T) {
	k, _, env := newRig(t)
	p, _ := k.NewProcess("app")
	p.SpawnTask("main", func(tk *kernel.Task) {
		fd, _ := tk.Open("/dev/netmap", devfile.ORdWr)
		if _, err := tk.Ioctl(fd, devfile.IO('N', 0x55), 0); !kernel.IsErrno(err, kernel.ENOTTY) {
			t.Errorf("unknown ioctl: %v", err)
		}
	})
	env.Run()
}

func TestOversizeMmapRejected(t *testing.T) {
	k, _, env := newRig(t)
	p, _ := k.NewProcess("app")
	p.SpawnTask("main", func(tk *kernel.Task) {
		fd, _ := tk.Open("/dev/netmap", devfile.ORdWr)
		arg, _ := p.Alloc(16)
		if _, err := tk.Ioctl(fd, NIOCREGIF, arg); err != nil {
			t.Error(err)
			return
		}
		if _, err := tk.Mmap(fd, uint64(memPages+1)*mem.PageSize, 0); !kernel.IsErrno(err, kernel.EINVAL) {
			t.Errorf("oversize mmap: %v", err)
		}
	})
	env.Run()
}

func TestBogusSlotLengthClamped(t *testing.T) {
	k, n, env := newRig(t)
	p, _ := k.NewProcess("hostile")
	p.SpawnTask("tx", func(tk *kernel.Task) {
		fd, _ := tk.Open("/dev/netmap", devfile.ORdWr)
		arg, _ := p.Alloc(16)
		_, _ = tk.Ioctl(fd, NIOCREGIF, arg)
		base, err := tk.Mmap(fd, uint64(memPages)*mem.PageSize, 0)
		if err != nil {
			t.Error(err)
			return
		}
		// Claim a 1 MB packet in a 2 KB buffer.
		var lenB [4]byte
		binary.LittleEndian.PutUint32(lenB[:], 1<<20)
		_ = p.UserWrite(tk, base+slotTab, lenB[:])
		var headB [4]byte
		binary.LittleEndian.PutUint32(headB[:], 1)
		_ = p.UserWrite(tk, base+offHead, headB[:])
		_, _ = tk.Poll(fd, devfile.PollOut, -1)
	})
	env.Run()
	if n.TxBytes > BufSize {
		t.Fatalf("driver transmitted %d bytes from a hostile slot length", n.TxBytes)
	}
}
