// Package netmapdrv implements the netmap framework's device file
// (/dev/netmap) over the simulated e1000-class NIC — the configuration the
// paper uses to show that Paradice serves even a framework that bypasses
// the kernel network stack (§6.1.2, Figure 2).
//
// The netmap data path is exactly the real one: the application mmaps a
// shared region holding the ring descriptor page and packet buffers, writes
// packets and advances the ring head, and issues one poll per batch to sync
// the ring with the hardware. Under Paradice the mmap'ed pages are driver VM
// memory mapped cross-VM by the hypervisor, so the guest's packet bytes are
// read by the NIC's DMA engine from the very pages the guest wrote.
package netmapdrv

import (
	"encoding/binary"

	"paradice/internal/devfile"
	"paradice/internal/device/nic"
	"paradice/internal/iommu"
	"paradice/internal/kernel"
	"paradice/internal/mem"
	"paradice/internal/perf"
	"paradice/internal/sim"
)

// NIOCREGIF binds the file to the interface and reports the memory layout:
// in/out {numSlots u32, bufSize u32, memPages u32, pad u32}.
var NIOCREGIF = devfile.IOWR('N', 0x01, 16)

// Ring geometry.
const (
	NumSlots = 256
	BufSize  = 2048

	// Ring page layout (page 0 of the mapped area).
	offHead   = 0  // u32: first TX slot the app has filled (app writes)
	offTail   = 4  // u32: first TX slot still owned by hardware (driver writes)
	offN      = 8  // u32: slot count
	offBuf    = 12 // u32: buffer size
	offRxHead = 16 // u32: first RX slot the app has consumed (app writes)
	offRxTail = 20 // u32: first RX slot still empty (driver writes)
	slotTab   = 64 // TX slot array: {len u32} per slot; buffer index == slot index
	// rxSlotTab is the RX slot array, after the 256 TX slots.
	rxSlotTab = slotTab + NumSlots*4
)

// memPages is the size of the whole mapped area: one ring page plus the TX
// and RX packet buffers.
const memPages = 1 + 2*NumSlots*BufSize/mem.PageSize

// rxBufPage returns the page index of RX slot i's buffer.
func rxBufPage(i int) int { return 1 + NumSlots*BufSize/mem.PageSize + i*BufSize/mem.PageSize }

// Driver is the netmap control device.
type Driver struct {
	kernel.BaseOps
	K   *kernel.Kernel
	NIC *nic.NIC

	pages    []mem.GuestPhys // ring page + buffer pages (driver VM frames)
	txWQ     *kernel.WaitQueue
	rxWQ     *kernel.WaitQueue
	opened   bool
	hwNext   uint32 // next TX slot to hand to hardware
	hwDone   uint32 // TX slots completed by hardware (total, mod 2^32)
	hwQueued uint32 // TX slots handed to hardware (total)
	rxTail   uint32 // next RX slot the hardware will fill
	rxPosted uint32 // RX slots currently owned by hardware
}

// Attach allocates the shared memory area and registers /dev/netmap.
func Attach(k *kernel.Kernel, n *nic.NIC) (*Driver, error) {
	d := &Driver{K: k, NIC: n, txWQ: k.NewWaitQueue("netmap-tx"), rxWQ: k.NewWaitQueue("netmap-rx")}
	for i := 0; i < memPages; i++ {
		pg, err := k.AllocFrame()
		if err != nil {
			return nil, err
		}
		d.pages = append(d.pages, pg)
	}
	n.OnTxComplete(func() {
		d.hwDone++
		d.writeRing(offTail, d.hwDone%NumSlots)
		d.txWQ.Wake()
	})
	n.OnRxComplete(func(length int) {
		// The frame landed in RX slot rxTail's buffer: publish its length
		// and advance the tail.
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(length))
		_ = d.K.Space.Write(d.pages[0]+mem.GuestPhys(rxSlotTab+int(d.rxTail)*4), b[:])
		d.rxTail = (d.rxTail + 1) % NumSlots
		d.rxPosted--
		d.writeRing(offRxTail, d.rxTail)
		d.rxWQ.Wake()
	})
	k.RegisterDevice("/dev/netmap", d, d)
	return d, nil
}

func (d *Driver) readRing(off int) uint32 {
	var b [4]byte
	if err := d.K.Space.Read(d.pages[0]+mem.GuestPhys(off), b[:]); err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b[:])
}

func (d *Driver) writeRing(off int, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_ = d.K.Space.Write(d.pages[0]+mem.GuestPhys(off), b[:])
}

// Open implements kernel.FileOps. The e1000e netmap driver supports a
// single netmap client at a time (§5.1: "we only allow access from one
// guest VM at a time because their drivers do not support concurrent
// access").
func (d *Driver) Open(c *kernel.FopCtx) error {
	if d.opened {
		return kernel.EBUSY
	}
	d.opened = true
	return nil
}

// Release implements kernel.FileOps.
func (d *Driver) Release(c *kernel.FopCtx) error {
	d.opened = false
	return nil
}

// Ioctl implements kernel.FileOps.
func (d *Driver) Ioctl(c *kernel.FopCtx, cmd devfile.IoctlCmd, arg mem.GuestVirt) (int32, error) {
	if cmd != NIOCREGIF {
		return 0, kernel.ENOTTY
	}
	buf := make([]byte, 16)
	if err := kernel.CopyFromUser(c, arg, buf); err != nil {
		return 0, err
	}
	// Initialize the ring page.
	d.writeRing(offHead, 0)
	d.writeRing(offTail, 0)
	d.writeRing(offRxHead, 0)
	d.writeRing(offRxTail, 0)
	d.writeRing(offN, NumSlots)
	d.writeRing(offBuf, BufSize)
	d.hwNext, d.hwDone, d.hwQueued = 0, 0, 0
	d.rxTail, d.rxPosted = 0, 0
	// Hand every RX buffer to the hardware.
	for i := 0; i < NumSlots-1; i++ {
		d.postRx(i)
	}
	binary.LittleEndian.PutUint32(buf[0:], NumSlots)
	binary.LittleEndian.PutUint32(buf[4:], BufSize)
	binary.LittleEndian.PutUint32(buf[8:], memPages)
	if err := kernel.CopyToUser(c, arg, buf); err != nil {
		return 0, err
	}
	return 0, nil
}

// Mmap implements kernel.FileOps: the whole shared area, demand-faulted.
func (d *Driver) Mmap(c *kernel.FopCtx, v *kernel.VMA) error {
	if v.Start == 0 || v.Len > uint64(memPages)*mem.PageSize {
		return kernel.EINVAL
	}
	return nil
}

// Fault implements kernel.FileOps.
func (d *Driver) Fault(c *kernel.FopCtx, v *kernel.VMA, va mem.GuestVirt) error {
	idx := (uint64(va) - uint64(v.Start)) / mem.PageSize
	if idx >= uint64(len(d.pages)) {
		return kernel.EFAULT
	}
	return kernel.InsertPFN(c, va, d.pages[idx])
}

// postRx gives RX slot i's buffer to the hardware.
func (d *Driver) postRx(i int) {
	page := rxBufPage(i)
	off := i * BufSize % mem.PageSize
	d.NIC.PostRxBuffer(iommu.BusAddr(d.pages[page])+iommu.BusAddr(off), BufSize)
	d.rxPosted++
}

// rxSync reposts the buffers of RX slots the application has consumed and
// reports whether received frames are pending. Ring ownership: unconsumed
// frames occupy [rxHead, rxTail), the hardware owns the next rxPosted slots
// from rxTail, and everything else is free to repost (the hardware never
// owns more than NumSlots-1 slots, so full and empty stay distinguishable).
func (d *Driver) rxSync() (pending bool) {
	head := d.readRing(offRxHead)
	unconsumed := (d.rxTail + NumSlots - head) % NumSlots
	for d.rxPosted+unconsumed < NumSlots-1 {
		d.postRx(int((d.rxTail + d.rxPosted) % NumSlots))
	}
	return head != d.rxTail
}

// txSync is the heart of the netmap poll: hand every newly filled slot to
// the hardware (which DMA-reads the packet bytes from the buffer pages) and
// report whether the ring has free space.
func (d *Driver) txSync() (space bool) {
	perf.Charge(d.K.Env, perf.CostNetmapSync)
	head := d.readRing(offHead)
	synced := 0
	for d.hwNext != head {
		slot := d.hwNext
		var b [4]byte
		_ = d.K.Space.Read(d.pages[0]+mem.GuestPhys(slotTab+slot*4), b[:])
		length := int(binary.LittleEndian.Uint32(b[:]))
		if length <= 0 || length > BufSize {
			length = 64
		}
		bufPage := 1 + int(slot)*BufSize/mem.PageSize
		bufOff := int(slot) * BufSize % mem.PageSize
		bus := iommu.BusAddr(d.pages[bufPage]) + iommu.BusAddr(bufOff)
		d.NIC.EnqueueTx(bus, length)
		d.hwQueued++
		synced++
		d.hwNext = (d.hwNext + 1) % NumSlots
	}
	perf.Charge(d.K.Env, sim.Duration(synced)*perf.CostNetmapPerPkt)
	// Space remains while fewer than NumSlots-1 packets are in flight.
	return d.hwQueued-d.hwDone < NumSlots-1
}

// Poll implements kernel.FileOps: one poll per batch syncs both rings.
func (d *Driver) Poll(c *kernel.FopCtx, pt *kernel.PollTable) devfile.PollMask {
	pt.Register(d.txWQ)
	pt.Register(d.rxWQ)
	var mask devfile.PollMask
	if d.txSync() {
		mask |= devfile.PollOut
	}
	if d.rxSync() {
		mask |= devfile.PollIn
	}
	return mask
}
