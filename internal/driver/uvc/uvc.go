// Package uvc implements a V4L2-style webcam driver over the simulated
// sensor: format negotiation, driver-allocated mmap buffers, the
// qbuf/dqbuf streaming loop, and the single-open restriction the paper
// notes for camera drivers (§3.2.3, §5.1).
package uvc

import (
	"encoding/binary"

	"paradice/internal/devfile"
	"paradice/internal/device/camera"
	"paradice/internal/iommu"
	"paradice/internal/kernel"
	"paradice/internal/mem"
)

// V4L2-flavored ioctls ('V' magic).
var (
	// VidiocSFmt: in/out {width u32, height u32, sizeimage u32, pad u32}.
	VidiocSFmt = devfile.IOWR('V', 0x01, 16)
	// VidiocReqbufs: in/out {count u32, pad u32}.
	VidiocReqbufs = devfile.IOWR('V', 0x02, 8)
	// VidiocQuerybuf: in/out {index u32, pad u32, pgoff u64, length u32, pad u32}.
	VidiocQuerybuf = devfile.IOWR('V', 0x03, 24)
	// VidiocQbuf: in {index u32, pad u32}.
	VidiocQbuf = devfile.IOW('V', 0x04, 8)
	// VidiocDqbuf: out {index u32, seq u32}.
	VidiocDqbuf = devfile.IOR('V', 0x05, 8)
	// VidiocStreamOn / StreamOff: no payload.
	VidiocStreamOn  = devfile.IO('V', 0x06)
	VidiocStreamOff = devfile.IO('V', 0x07)
)

// MaxBuffers bounds a REQBUFS allocation.
const MaxBuffers = 8

// frameBuf is one driver-allocated capture buffer.
type frameBuf struct {
	pages  []mem.GuestPhys
	length int
	queued bool
}

// Driver is the webcam driver.
type Driver struct {
	kernel.BaseOps
	K   *kernel.Kernel
	Cam *camera.Device

	opened bool
	bufs   []*frameBuf
	done   []uint32 // indexes of filled buffers, FIFO
	seqs   map[int]uint32
	wq     *kernel.WaitQueue
}

// Attach registers /dev/video0.
func Attach(k *kernel.Kernel, cam *camera.Device, path string) *Driver {
	d := &Driver{K: k, Cam: cam, wq: k.NewWaitQueue("uvc"), seqs: make(map[int]uint32)}
	cam.OnFrame(func(index int, seq uint32) {
		d.done = append(d.done, uint32(index))
		d.seqs[index] = seq
		d.wq.Wake()
	})
	k.RegisterDevice(path, d, d)
	return d
}

// Open implements kernel.FileOps — one process at a time (§5.1).
func (d *Driver) Open(c *kernel.FopCtx) error {
	if d.opened {
		return kernel.EBUSY
	}
	d.opened = true
	return nil
}

// Release implements kernel.FileOps.
func (d *Driver) Release(c *kernel.FopCtx) error {
	d.Cam.StreamOff()
	d.opened = false
	d.bufs = nil
	d.done = nil
	return nil
}

// Ioctl implements kernel.FileOps.
func (d *Driver) Ioctl(c *kernel.FopCtx, cmd devfile.IoctlCmd, arg mem.GuestVirt) (int32, error) {
	switch cmd {
	case VidiocSFmt:
		return d.sFmt(c, arg)
	case VidiocReqbufs:
		return d.reqbufs(c, arg)
	case VidiocQuerybuf:
		return d.querybuf(c, arg)
	case VidiocQbuf:
		return d.qbuf(c, arg)
	case VidiocDqbuf:
		return d.dqbuf(c, arg)
	case VidiocStreamOn:
		d.Cam.StreamOn()
		return 0, nil
	case VidiocStreamOff:
		d.Cam.StreamOff()
		return 0, nil
	}
	return 0, kernel.ENOTTY
}

func (d *Driver) sFmt(c *kernel.FopCtx, arg mem.GuestVirt) (int32, error) {
	buf := make([]byte, 16)
	if err := kernel.CopyFromUser(c, arg, buf); err != nil {
		return 0, err
	}
	w := int(binary.LittleEndian.Uint32(buf[0:]))
	h := int(binary.LittleEndian.Uint32(buf[4:]))
	found := false
	for _, r := range camera.Resolutions {
		if r.W == w && r.H == h {
			d.Cam.SetResolution(r)
			found = true
			break
		}
	}
	if !found {
		return 0, kernel.EINVAL
	}
	binary.LittleEndian.PutUint32(buf[8:], uint32(d.Cam.FrameBytes()))
	if err := kernel.CopyToUser(c, arg, buf); err != nil {
		return 0, err
	}
	return 0, nil
}

func (d *Driver) reqbufs(c *kernel.FopCtx, arg mem.GuestVirt) (int32, error) {
	buf := make([]byte, 8)
	if err := kernel.CopyFromUser(c, arg, buf); err != nil {
		return 0, err
	}
	count := binary.LittleEndian.Uint32(buf[0:])
	if count == 0 || count > MaxBuffers {
		return 0, kernel.EINVAL
	}
	size := d.Cam.FrameBytes()
	pages := (size + mem.PageSize - 1) / mem.PageSize
	d.bufs = nil
	for i := uint32(0); i < count; i++ {
		fb := &frameBuf{length: size}
		for p := 0; p < pages; p++ {
			pg, err := d.K.AllocFrame()
			if err != nil {
				return 0, kernel.ENOMEM
			}
			fb.pages = append(fb.pages, pg)
		}
		d.bufs = append(d.bufs, fb)
	}
	if err := kernel.CopyToUser(c, arg, buf); err != nil {
		return 0, err
	}
	return 0, nil
}

func (d *Driver) querybuf(c *kernel.FopCtx, arg mem.GuestVirt) (int32, error) {
	buf := make([]byte, 24)
	if err := kernel.CopyFromUser(c, arg, buf); err != nil {
		return 0, err
	}
	idx := binary.LittleEndian.Uint32(buf[0:])
	if int(idx) >= len(d.bufs) {
		return 0, kernel.EINVAL
	}
	// The mmap cookie encodes the buffer index.
	binary.LittleEndian.PutUint64(buf[8:], uint64(idx)<<8)
	binary.LittleEndian.PutUint32(buf[16:], uint32(d.bufs[idx].length))
	if err := kernel.CopyToUser(c, arg, buf); err != nil {
		return 0, err
	}
	return 0, nil
}

func (d *Driver) qbuf(c *kernel.FopCtx, arg mem.GuestVirt) (int32, error) {
	buf := make([]byte, 8)
	if err := kernel.CopyFromUser(c, arg, buf); err != nil {
		return 0, err
	}
	idx := int(binary.LittleEndian.Uint32(buf[0:]))
	if idx >= len(d.bufs) || d.bufs[idx].queued {
		return 0, kernel.EINVAL
	}
	fb := d.bufs[idx]
	fb.queued = true
	chunks := make([]iommu.BusAddr, len(fb.pages))
	for i, pg := range fb.pages {
		chunks[i] = iommu.BusAddr(pg)
	}
	d.Cam.QueueBuffer(idx, chunks, fb.length)
	return 0, nil
}

func (d *Driver) dqbuf(c *kernel.FopCtx, arg mem.GuestVirt) (int32, error) {
	for len(d.done) == 0 {
		if c.File.Nonblock() {
			return 0, kernel.EAGAIN
		}
		d.wq.Wait(c.Task)
	}
	idx := d.done[0]
	d.done = d.done[1:]
	d.bufs[idx].queued = false
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint32(buf[0:], idx)
	binary.LittleEndian.PutUint32(buf[4:], d.seqs[int(idx)])
	if err := kernel.CopyToUser(c, arg, buf); err != nil {
		return 0, err
	}
	return 0, nil
}

// Mmap implements kernel.FileOps: one buffer per mapping, selected by the
// QUERYBUF cookie.
func (d *Driver) Mmap(c *kernel.FopCtx, v *kernel.VMA) error {
	if v.Start == 0 {
		return kernel.EINVAL
	}
	idx := int(v.Pgoff >> 8)
	if idx >= len(d.bufs) || v.Len > uint64(len(d.bufs[idx].pages))*mem.PageSize {
		return kernel.EINVAL
	}
	return nil
}

// Fault implements kernel.FileOps.
func (d *Driver) Fault(c *kernel.FopCtx, v *kernel.VMA, va mem.GuestVirt) error {
	idx := int(v.Pgoff >> 8)
	if idx >= len(d.bufs) {
		return kernel.EFAULT
	}
	p := (uint64(va) - uint64(v.Start)) / mem.PageSize
	if p >= uint64(len(d.bufs[idx].pages)) {
		return kernel.EFAULT
	}
	return kernel.InsertPFN(c, va, d.bufs[idx].pages[p])
}

// Poll implements kernel.FileOps.
func (d *Driver) Poll(c *kernel.FopCtx, pt *kernel.PollTable) devfile.PollMask {
	pt.Register(d.wq)
	if len(d.done) > 0 {
		return devfile.PollIn
	}
	return 0
}
