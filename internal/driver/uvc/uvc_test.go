package uvc

import (
	"encoding/binary"
	"testing"

	"paradice/internal/devfile"
	"paradice/internal/device/camera"
	"paradice/internal/hv"
	"paradice/internal/iommu"
	"paradice/internal/kernel"
	"paradice/internal/mem"
	"paradice/internal/sim"
)

func newRig(t testing.TB) (*kernel.Kernel, *camera.Device, *Driver, *sim.Env) {
	t.Helper()
	env := sim.NewEnv()
	h := hv.New(env, 128<<20)
	vm, err := h.CreateVM("m", 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New("m", kernel.Linux, env, vm.Space, 64<<20)
	cam := camera.New(env)
	dom, _, err := h.AssignDevice(vm, "cam", nil)
	if err != nil {
		t.Fatal(err)
	}
	cam.Connect(&iommu.DMA{Dom: dom, Phys: h.Phys})
	d := Attach(k, cam, "/dev/video0")
	return k, cam, d, env
}

type camApp struct {
	p   *kernel.Process
	tk  *kernel.Task
	fd  int
	arg mem.GuestVirt
}

func (a *camApp) ioctl(t testing.TB, cmd devfile.IoctlCmd, in []byte) []byte {
	t.Helper()
	if in != nil {
		if err := a.p.Mem.Write(a.arg, in); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.tk.Ioctl(a.fd, cmd, a.arg); err != nil {
		t.Fatalf("%v: %v", cmd, err)
	}
	out := make([]byte, 32)
	if err := a.p.Mem.Read(a.arg, out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestStreamingLoopDeliversPatternFrames(t *testing.T) {
	k, _, _, env := newRig(t)
	p, _ := k.NewProcess("guvcview")
	p.SpawnTask("cap", func(tk *kernel.Task) {
		fd, err := tk.Open("/dev/video0", devfile.ORdWr)
		if err != nil {
			t.Error(err)
			return
		}
		arg, _ := p.Alloc(32)
		a := &camApp{p: p, tk: tk, fd: fd, arg: arg}
		// Negotiate 1280x720.
		fmtIn := make([]byte, 16)
		binary.LittleEndian.PutUint32(fmtIn[0:], 1280)
		binary.LittleEndian.PutUint32(fmtIn[4:], 720)
		out := a.ioctl(t, VidiocSFmt, fmtIn)
		size := binary.LittleEndian.Uint32(out[8:])
		if size != 1280*720*2 {
			t.Errorf("sizeimage = %d", size)
		}
		// Two buffers, mapped.
		req := make([]byte, 8)
		binary.LittleEndian.PutUint32(req, 2)
		a.ioctl(t, VidiocReqbufs, req)
		mapLen := (uint64(size) + mem.PageSize - 1) &^ (mem.PageSize - 1)
		var vas [2]mem.GuestVirt
		for i := 0; i < 2; i++ {
			q := make([]byte, 24)
			binary.LittleEndian.PutUint32(q, uint32(i))
			out := a.ioctl(t, VidiocQuerybuf, q)
			pgoff := binary.LittleEndian.Uint64(out[8:])
			va, err := tk.Mmap(fd, mapLen, pgoff)
			if err != nil {
				t.Error(err)
				return
			}
			vas[i] = va
			qb := make([]byte, 8)
			binary.LittleEndian.PutUint32(qb, uint32(i))
			a.ioctl(t, VidiocQbuf, qb)
		}
		a.ioctl(t, VidiocStreamOn, nil)
		for f := 0; f < 4; f++ {
			out := a.ioctl(t, VidiocDqbuf, nil)
			idx := binary.LittleEndian.Uint32(out[0:])
			seq := binary.LittleEndian.Uint32(out[4:])
			probe := make([]byte, 8)
			if err := p.UserRead(tk, vas[idx]+8, probe); err != nil {
				t.Error(err)
				return
			}
			for i, b := range probe {
				if b != camera.FramePattern(seq, 8+i) {
					t.Errorf("frame %d byte %d = %#x", seq, i, b)
				}
			}
			qb := make([]byte, 8)
			binary.LittleEndian.PutUint32(qb, idx)
			a.ioctl(t, VidiocQbuf, qb)
		}
		a.ioctl(t, VidiocStreamOff, nil)
	})
	env.Run()
}

func TestSingleOpenEnforced(t *testing.T) {
	k, _, _, env := newRig(t)
	p1, _ := k.NewProcess("first")
	p2, _ := k.NewProcess("second")
	p1.SpawnTask("a", func(tk *kernel.Task) {
		if _, err := tk.Open("/dev/video0", devfile.ORdWr); err != nil {
			t.Error(err)
		}
	})
	p2.SpawnTask("b", func(tk *kernel.Task) {
		tk.Sim().Sleep(sim.Millisecond)
		if _, err := tk.Open("/dev/video0", devfile.ORdWr); !kernel.IsErrno(err, kernel.EBUSY) {
			t.Errorf("second open: %v, want EBUSY (§5.1)", err)
		}
	})
	env.Run()
}

func TestInvalidRequests(t *testing.T) {
	k, _, _, env := newRig(t)
	p, _ := k.NewProcess("app")
	p.SpawnTask("main", func(tk *kernel.Task) {
		fd, _ := tk.Open("/dev/video0", devfile.ORdWr)
		arg, _ := p.Alloc(32)
		// Unsupported resolution.
		in := make([]byte, 16)
		binary.LittleEndian.PutUint32(in[0:], 640)
		binary.LittleEndian.PutUint32(in[4:], 480)
		_ = p.Mem.Write(arg, in)
		if _, err := tk.Ioctl(fd, VidiocSFmt, arg); !kernel.IsErrno(err, kernel.EINVAL) {
			t.Errorf("bad format: %v", err)
		}
		// Too many buffers.
		req := make([]byte, 8)
		binary.LittleEndian.PutUint32(req, MaxBuffers+1)
		_ = p.Mem.Write(arg, req)
		if _, err := tk.Ioctl(fd, VidiocReqbufs, arg); !kernel.IsErrno(err, kernel.EINVAL) {
			t.Errorf("too many buffers: %v", err)
		}
		// Queue a nonexistent buffer.
		binary.LittleEndian.PutUint32(req, 7)
		_ = p.Mem.Write(arg, req)
		if _, err := tk.Ioctl(fd, VidiocQbuf, arg); !kernel.IsErrno(err, kernel.EINVAL) {
			t.Errorf("bad qbuf: %v", err)
		}
		// Unknown ioctl.
		if _, err := tk.Ioctl(fd, devfile.IO('V', 0x7F), 0); !kernel.IsErrno(err, kernel.ENOTTY) {
			t.Errorf("unknown ioctl: %v", err)
		}
	})
	env.Run()
}

func TestNonblockDqbufEAGAIN(t *testing.T) {
	k, _, _, env := newRig(t)
	p, _ := k.NewProcess("app")
	p.SpawnTask("main", func(tk *kernel.Task) {
		fd, _ := tk.Open("/dev/video0", devfile.ORdWr|devfile.ONonblock)
		arg, _ := p.Alloc(8)
		if _, err := tk.Ioctl(fd, VidiocDqbuf, arg); !kernel.IsErrno(err, kernel.EAGAIN) {
			t.Errorf("nonblock dqbuf: %v", err)
		}
	})
	env.Run()
}

func TestReleaseResetsState(t *testing.T) {
	k, cam, _, env := newRig(t)
	p, _ := k.NewProcess("app")
	p.SpawnTask("main", func(tk *kernel.Task) {
		fd, _ := tk.Open("/dev/video0", devfile.ORdWr)
		arg, _ := p.Alloc(8)
		req := make([]byte, 8)
		binary.LittleEndian.PutUint32(req, 2)
		_ = p.Mem.Write(arg, req)
		if _, err := tk.Ioctl(fd, VidiocReqbufs, arg); err != nil {
			t.Error(err)
		}
		if _, err := tk.Ioctl(fd, VidiocStreamOn, 0); err != nil {
			t.Error(err)
		}
		_ = tk.Close(fd)
		// Reopen works (single-open slot freed, streaming stopped).
		if _, err := tk.Open("/dev/video0", devfile.ORdWr); err != nil {
			t.Error(err)
		}
	})
	env.Run()
	_ = cam
}
