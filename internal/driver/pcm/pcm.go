// Package pcm implements an ALSA-style PCM playback driver over the
// simulated HD Audio codec: hardware-parameter negotiation and a blocking
// write path that backpressures at the DMA ring, so playback proceeds at
// exactly the sample rate.
package pcm

import (
	"encoding/binary"

	"paradice/internal/devfile"
	"paradice/internal/device/audio"
	"paradice/internal/iommu"
	"paradice/internal/kernel"
	"paradice/internal/mem"
)

// IoctlHwParams configures the stream: in/out {rate u32, frameBytes u32}.
var IoctlHwParams = devfile.IOWR('A', 0x01, 8)

// IoctlDrain blocks until the buffered samples have played out.
var IoctlDrain = devfile.IO('A', 0x02)

// ringPages is the DMA buffer size (16 KiB ≈ 85 ms at CD rate).
const ringPages = 4

// Driver is the PCM playback device.
type Driver struct {
	kernel.BaseOps
	K   *kernel.Kernel
	Dev *audio.Device

	ring   []mem.GuestPhys
	wr     int
	wq     *kernel.WaitQueue
	opened bool
}

// Attach allocates the DMA ring and registers the device file.
func Attach(k *kernel.Kernel, dev *audio.Device, path string) (*Driver, error) {
	d := &Driver{K: k, Dev: dev, wq: k.NewWaitQueue("pcm")}
	chunks := make([]iommu.BusAddr, ringPages)
	for i := 0; i < ringPages; i++ {
		pg, err := k.AllocFrame()
		if err != nil {
			return nil, err
		}
		d.ring = append(d.ring, pg)
		chunks[i] = iommu.BusAddr(pg)
	}
	dev.Configure(dev.Rate(), dev.FrameBytes(), chunks, ringPages*mem.PageSize)
	dev.OnDrain(d.wq.Wake)
	k.RegisterDevice(path, d, d)
	return d, nil
}

// Open implements kernel.FileOps (one playback stream at a time).
func (d *Driver) Open(c *kernel.FopCtx) error {
	if d.opened {
		return kernel.EBUSY
	}
	d.opened = true
	return nil
}

// Release implements kernel.FileOps.
func (d *Driver) Release(c *kernel.FopCtx) error {
	d.opened = false
	return nil
}

// Ioctl implements kernel.FileOps.
func (d *Driver) Ioctl(c *kernel.FopCtx, cmd devfile.IoctlCmd, arg mem.GuestVirt) (int32, error) {
	switch cmd {
	case IoctlHwParams:
		buf := make([]byte, 8)
		if err := kernel.CopyFromUser(c, arg, buf); err != nil {
			return 0, err
		}
		rate := int(binary.LittleEndian.Uint32(buf[0:]))
		fsz := int(binary.LittleEndian.Uint32(buf[4:]))
		if rate < 8000 || rate > 192000 || fsz < 1 || fsz > 16 {
			return 0, kernel.EINVAL
		}
		chunks := make([]iommu.BusAddr, len(d.ring))
		for i, pg := range d.ring {
			chunks[i] = iommu.BusAddr(pg)
		}
		d.Dev.Configure(rate, fsz, chunks, ringPages*mem.PageSize)
		if err := kernel.CopyToUser(c, arg, buf); err != nil {
			return 0, err
		}
		return 0, nil
	case IoctlDrain:
		for d.Dev.BufferLevel() > 0 {
			d.wq.Wait(c.Task)
		}
		return 0, nil
	}
	return 0, kernel.ENOTTY
}

// Write implements kernel.FileOps: copy samples into the DMA ring, blocking
// while it is full — the backpressure that paces playback at the sample
// rate.
func (d *Driver) Write(c *kernel.FopCtx, src mem.GuestVirt, n int) (int, error) {
	written := 0
	for written < n {
		space := d.Dev.RingSize() - d.Dev.BufferLevel()
		for space == 0 {
			if c.File.Nonblock() {
				if written > 0 {
					return written, nil
				}
				return 0, kernel.EAGAIN
			}
			d.wq.Wait(c.Task)
			space = d.Dev.RingSize() - d.Dev.BufferLevel()
		}
		chunk := n - written
		if chunk > space {
			chunk = space
		}
		// Copy into the ring at the write offset, page by page.
		remaining := chunk
		for remaining > 0 {
			page := d.wr / mem.PageSize
			off := d.wr % mem.PageSize
			c2 := mem.PageSize - off
			if c2 > remaining {
				c2 = remaining
			}
			buf := make([]byte, c2)
			if err := kernel.CopyFromUser(c, src+mem.GuestVirt(written+(chunk-remaining)), buf); err != nil {
				return written, err
			}
			if err := d.K.Space.Write(d.ring[page]+mem.GuestPhys(off), buf); err != nil {
				return written, kernel.EIO
			}
			d.wr = (d.wr + c2) % d.Dev.RingSize()
			remaining -= c2
		}
		d.Dev.Feed(chunk)
		written += chunk
	}
	return written, nil
}

// Poll implements kernel.FileOps.
func (d *Driver) Poll(c *kernel.FopCtx, pt *kernel.PollTable) devfile.PollMask {
	pt.Register(d.wq)
	if d.Dev.BufferLevel() < d.Dev.RingSize() {
		return devfile.PollOut
	}
	return 0
}
