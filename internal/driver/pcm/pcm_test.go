package pcm

import (
	"encoding/binary"
	"testing"

	"paradice/internal/devfile"
	"paradice/internal/device/audio"
	"paradice/internal/hv"
	"paradice/internal/iommu"
	"paradice/internal/kernel"
	"paradice/internal/sim"
)

func newRig(t testing.TB) (*kernel.Kernel, *audio.Device, *sim.Env) {
	t.Helper()
	env := sim.NewEnv()
	h := hv.New(env, 64<<20)
	vm, err := h.CreateVM("m", 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New("m", kernel.Linux, env, vm.Space, 16<<20)
	dev := audio.New(env)
	dom, _, err := h.AssignDevice(vm, "hda", nil)
	if err != nil {
		t.Fatal(err)
	}
	dev.Connect(&iommu.DMA{Dom: dom, Phys: h.Phys})
	if _, err := Attach(k, dev, "/dev/snd/pcmC0D0p"); err != nil {
		t.Fatal(err)
	}
	return k, dev, env
}

func TestWriteBlocksAtRingAndPlaysAll(t *testing.T) {
	k, dev, env := newRig(t)
	p, _ := k.NewProcess("aplay")
	const total = 96000 // 0.5s at 48kHz * 4B
	var elapsed sim.Duration
	p.SpawnTask("play", func(tk *kernel.Task) {
		fd, err := tk.Open("/dev/snd/pcmC0D0p", devfile.OWrOnly)
		if err != nil {
			t.Error(err)
			return
		}
		buf, _ := p.Alloc(8192)
		chunk := make([]byte, 8192)
		for i := range chunk {
			chunk[i] = byte(i)
		}
		_ = p.Mem.Write(buf, chunk)
		start := tk.Sim().Now()
		for w := 0; w < total; {
			n := 8192
			if total-w < n {
				n = total - w
			}
			wrote, err := tk.Write(fd, buf, n)
			if err != nil {
				t.Error(err)
				return
			}
			w += wrote
		}
		if _, err := tk.Ioctl(fd, IoctlDrain, 0); err != nil {
			t.Error(err)
		}
		elapsed = tk.Sim().Now().Sub(start)
	})
	env.Run()
	if dev.FramesPlayed != total/4 {
		t.Fatalf("frames played = %d, want %d", dev.FramesPlayed, total/4)
	}
	if elapsed < 490*sim.Millisecond || elapsed > 560*sim.Millisecond {
		t.Fatalf("0.5s clip played in %v", elapsed)
	}
	if dev.Checksum == 0 {
		t.Fatal("codec never read sample bytes")
	}
}

func TestHwParams(t *testing.T) {
	k, dev, env := newRig(t)
	p, _ := k.NewProcess("app")
	p.SpawnTask("main", func(tk *kernel.Task) {
		fd, _ := tk.Open("/dev/snd/pcmC0D0p", devfile.OWrOnly)
		arg, _ := p.Alloc(8)
		hw := make([]byte, 8)
		binary.LittleEndian.PutUint32(hw[0:], 44100)
		binary.LittleEndian.PutUint32(hw[4:], 2)
		_ = p.Mem.Write(arg, hw)
		if _, err := tk.Ioctl(fd, IoctlHwParams, arg); err != nil {
			t.Error(err)
		}
		// Bad rate.
		binary.LittleEndian.PutUint32(hw[0:], 999999)
		_ = p.Mem.Write(arg, hw)
		if _, err := tk.Ioctl(fd, IoctlHwParams, arg); !kernel.IsErrno(err, kernel.EINVAL) {
			t.Errorf("bad rate: %v", err)
		}
	})
	env.Run()
	if dev.Rate() != 44100 || dev.FrameBytes() != 2 {
		t.Fatalf("params not applied: %d/%d", dev.Rate(), dev.FrameBytes())
	}
}

func TestSingleOpen(t *testing.T) {
	k, _, env := newRig(t)
	p, _ := k.NewProcess("app")
	p.SpawnTask("main", func(tk *kernel.Task) {
		if _, err := tk.Open("/dev/snd/pcmC0D0p", devfile.OWrOnly); err != nil {
			t.Error(err)
		}
		if _, err := tk.Open("/dev/snd/pcmC0D0p", devfile.OWrOnly); !kernel.IsErrno(err, kernel.EBUSY) {
			t.Errorf("second open: %v", err)
		}
	})
	env.Run()
}

func TestNonblockWriteEAGAINWhenFull(t *testing.T) {
	k, dev, env := newRig(t)
	p, _ := k.NewProcess("app")
	p.SpawnTask("main", func(tk *kernel.Task) {
		fd, _ := tk.Open("/dev/snd/pcmC0D0p", devfile.OWrOnly|devfile.ONonblock)
		buf, _ := p.Alloc(dev.RingSize())
		// First write fills the ring.
		n, err := tk.Write(fd, buf, dev.RingSize())
		if err != nil || n != dev.RingSize() {
			t.Errorf("fill: n=%d err=%v", n, err)
		}
		// Ring full: nonblocking write returns EAGAIN immediately.
		if _, err := tk.Write(fd, buf, 16); !kernel.IsErrno(err, kernel.EAGAIN) {
			t.Errorf("full nonblock write: %v", err)
		}
	})
	env.Run()
}

func TestPollOutWhenSpace(t *testing.T) {
	k, _, env := newRig(t)
	p, _ := k.NewProcess("app")
	p.SpawnTask("main", func(tk *kernel.Task) {
		fd, _ := tk.Open("/dev/snd/pcmC0D0p", devfile.OWrOnly)
		mask, err := tk.Poll(fd, devfile.PollOut, sim.Millisecond)
		if err != nil || mask&devfile.PollOut == 0 {
			t.Errorf("poll on empty ring: mask=%v err=%v", mask, err)
		}
	})
	env.Run()
}
