// Package handover implements the staged state machine of a planned
// driver-VM handover (ROADMAP item 4c): the production alternative to §8's
// crash-style RestartDriverVM. A restart fails every in-flight request with
// EREMOTE and cold-starts every cache; a handover boots the successor
// side-by-side (prepare), lets in-flight work finish while new posts park at
// the frontends (quiesce), atomically rebinds the channels (switch), and on
// any stage failure rolls back to the still-live predecessor (abort).
//
// The package is mechanism-only: it owns the staging, the drain deadline,
// the fault points, the trace/counter emission, and the episode record. What
// each stage actually does is supplied through Hooks — the Paradice machine
// wires them to successor boot, CVD drain mode, and channel rebinding, and
// the faults stress harness wires a bare single-channel rig to the same
// engine.
package handover

import (
	"errors"
	"fmt"

	"paradice/internal/faults"
	"paradice/internal/sim"
	"paradice/internal/trace"
)

// Stage identifies where in the handover state machine an episode is (or
// where it died).
type Stage int

// Handover stages, in order.
const (
	StagePrepare Stage = iota // successor booting and pre-warming
	StageQuiesce              // frontends draining; in-flight work finishing
	StageSwitch               // channels rebinding to the successor
	StageDone                 // committed
)

func (s Stage) String() string {
	switch s {
	case StagePrepare:
		return "prepare"
	case StageQuiesce:
		return "quiesce"
	case StageSwitch:
		return "switch"
	case StageDone:
		return "done"
	}
	return "?"
}

// Sentinel errors distinguishing which stage failed. Returned errors wrap
// these; the cause (injected fault, drain deadline, hook error) rides in the
// message.
var (
	ErrPrepare      = errors.New("handover: prepare failed")
	ErrDrainTimeout = errors.New("handover: drain deadline exceeded")
	ErrSwitch       = errors.New("handover: switch failed")
)

// Config tunes one handover run.
type Config struct {
	// DrainDeadline bounds the quiesce stage: if in-flight operations have
	// not finished this long after BeginDrain, the handover aborts back to
	// the predecessor rather than hold new posts parked indefinitely. Zero
	// selects DefaultDrainDeadline.
	DrainDeadline sim.Duration
	// DrainQuantum is how often the quiesce stage re-checks for idleness.
	// Zero selects DefaultDrainQuantum.
	DrainQuantum sim.Duration
}

// Defaults for Config's zero values. The deadline comfortably covers any
// request a healthy backend will answer (the supervision-era request deadline
// is shorter); only a wedged predecessor — which should be restarted, not
// handed over — runs into it.
const (
	DefaultDrainDeadline = 2 * sim.Millisecond
	DefaultDrainQuantum  = 20 * sim.Microsecond
)

// Hooks are the stage implementations the engine drives. BeginDrain,
// EndDrain, and Abort must not fail; Prepare and Switch may. EndDrain is
// guaranteed to run exactly once after BeginDrain on every exit path —
// commit, drain timeout, and switch failure alike — so parked posts are
// always released, toward whichever backend owns the ring by then.
type Hooks struct {
	// Prepare boots and pre-warms the successor, predecessor untouched.
	Prepare func() error
	// BeginDrain parks new posts at the frontends; in-flight work continues.
	BeginDrain func()
	// DrainIdle reports whether all in-flight work has completed.
	DrainIdle func() bool
	// EndDrain releases parked posts.
	EndDrain func()
	// Switch rebinds the channels to the successor and retires the
	// predecessor. An error here means the predecessor was left intact.
	Switch func() error
	// Abort rolls back whatever the failed run built (discard successor
	// preps). Called once per aborted episode, after EndDrain when the
	// failure happened inside the drain window.
	Abort func(stage Stage, cause string)
}

// Episode records one handover attempt for the state-change log and tests.
type Episode struct {
	Start, End sim.Time
	Stage      Stage // StageDone, or the stage that aborted
	Aborted    bool
	Cause      string       // abort cause ("" when committed)
	DrainWait  sim.Duration // BeginDrain until the ring went idle (or gave up)
	Pause      sim.Duration // BeginDrain until EndDrain: the service pause ("downtime")
}

// Run executes one handover episode. It is driven from whatever context the
// caller has: on a sim proc the quiesce stage sleeps between idleness checks;
// in host context (tests driving the machine directly) it performs a single
// check, since no simulated time can pass while it holds control.
//
// Fault points: "machine.handover.fail" aborts before prepare (the planned-
// maintenance request itself is refused); "handover.drain.timeout" forces the
// quiesce stage to give up immediately; "handover.warm.fail" is consulted by
// the CVD prepare path and surfaces here as a Prepare error.
func Run(env *sim.Env, cfg Config, h Hooks) (Episode, error) {
	tr := trace.Get(env)
	tr.Add("machine.handover.attempts", 1)
	ep := Episode{Start: env.Now()}
	// Requests overlapping the handover are episode-flagged in the flight
	// recorder (and captured as outliers), committed and aborted runs alike.
	fl := tr.Flight()
	fl.BeginEpisode()
	defer fl.EndEpisode()

	if d := faults.Point(env, "machine.handover.fail"); d != nil {
		return abort(env, ep, StagePrepare, h, fmt.Errorf("%w: %v", ErrPrepare, d.Error()))
	}
	if err := h.Prepare(); err != nil {
		return abort(env, ep, StagePrepare, h, fmt.Errorf("%w: %v", ErrPrepare, err))
	}

	ep.Stage = StageQuiesce
	drainStart := env.Now()
	h.BeginDrain()
	idle := waitIdle(env, cfg, h)
	ep.DrainWait = env.Now().Sub(drainStart)
	if !idle {
		h.EndDrain()
		ep.Pause = env.Now().Sub(drainStart)
		return abort(env, ep, StageQuiesce, h, ErrDrainTimeout)
	}

	ep.Stage = StageSwitch
	if err := h.Switch(); err != nil {
		h.EndDrain()
		ep.Pause = env.Now().Sub(drainStart)
		return abort(env, ep, StageSwitch, h, fmt.Errorf("%w: %v", ErrSwitch, err))
	}
	h.EndDrain()

	ep.Stage = StageDone
	ep.End = env.Now()
	ep.Pause = ep.End.Sub(drainStart)
	tr.Add("machine.handover.completed", 1)
	tr.Set("machine.handover.pause_ns", uint64(ep.Pause))
	tr.Group(0, "driver-vm", trace.LayerSupervisor, "handover", ep.Start, ep.End)
	return ep, nil
}

// waitIdle polls DrainIdle until it reports true or the deadline passes.
// The "handover.drain.timeout" fault point, consulted once on entry, forces
// an immediate give-up — the injected form of a predecessor that never goes
// idle, without having to wedge a real backend.
func waitIdle(env *sim.Env, cfg Config, h Hooks) bool {
	if faults.Point(env, "handover.drain.timeout") != nil {
		return false
	}
	deadline := cfg.DrainDeadline
	if deadline <= 0 {
		deadline = DefaultDrainDeadline
	}
	quantum := cfg.DrainQuantum
	if quantum <= 0 {
		quantum = DefaultDrainQuantum
	}
	p := env.CurrentProc()
	if p == nil {
		// Host context: no simulated time can pass while we hold control, so
		// the ring is as idle now as it will ever be.
		return h.DrainIdle()
	}
	limit := env.Now().Add(deadline)
	for !h.DrainIdle() {
		if env.Now() >= limit {
			return false
		}
		p.Sleep(quantum)
	}
	return true
}

// abort finalizes a failed episode: the state-change consumers see the
// counters and the trace instant, the caller's Abort hook unwinds whatever
// the run built, and the episode records where and why.
func abort(env *sim.Env, ep Episode, stage Stage, h Hooks, err error) (Episode, error) {
	ep.Stage = stage
	ep.Aborted = true
	ep.Cause = err.Error()
	ep.End = env.Now()
	tr := trace.Get(env)
	tr.Add("machine.handover.aborted", 1)
	tr.Instant(0, "driver-vm", trace.LayerSupervisor, "handover-abort:"+stage.String(), ep.Cause)
	tr.Group(0, "driver-vm", trace.LayerSupervisor, "handover-aborted", ep.Start, ep.End)
	if h.Abort != nil {
		h.Abort(stage, ep.Cause)
	}
	return ep, err
}
