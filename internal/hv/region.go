package hv

import (
	"fmt"

	"paradice/internal/iommu"
	"paradice/internal/mem"
	"paradice/internal/perf"
)

// This file implements device data isolation (§4.2): non-overlapping
// protected memory regions per guest VM, carved from driver VM system
// memory and device memory, with hypervisor-enforced access permissions —
// no CPU read from the driver VM, guest access only through the hypervisor
// memory operations, and device access to one region at a time through the
// IOMMU.

// Region is one guest VM's protected memory region.
type Region struct {
	ID    iommu.RegionID
	Owner VMID
	// sysPages are the driver-VM pages pooled into the region, keyed by
	// driver guest-physical frame.
	sysPages map[mem.GuestPhys]mem.SysPhys
}

// CreateRegion allocates a protected memory region owned by the given guest.
func (h *Hypervisor) CreateRegion(owner *VM) iommu.RegionID {
	id := h.nextRegion
	h.nextRegion++
	h.regions[id] = &Region{
		ID:       id,
		Owner:    owner.ID,
		sysPages: make(map[mem.GuestPhys]mem.SysPhys),
	}
	return id
}

// RegionOwner returns the guest VM that owns a region.
func (h *Hypervisor) RegionOwner(id iommu.RegionID) (VMID, bool) {
	r, ok := h.regions[id]
	if !ok {
		return 0, false
	}
	return r.Owner, true
}

// RegionAddSysPage moves the driver VM page at pfn into a protected region:
// the driver VM's EPT permissions for the page are removed entirely (§5.3
// change iv: x86 has no write-only mappings, so both read and write go),
// and the page is staged in the device's IOMMU domain under the region so
// the device can reach it only while that region is active. Called by the
// modified driver in its initialization phase via hypercall.
func (h *Hypervisor) RegionAddSysPage(dom *iommu.Domain, id iommu.RegionID, driver *VM, pfn mem.GuestPhys) error {
	r, ok := h.regions[id]
	if !ok {
		return fmt.Errorf("hv: unknown region %d", id)
	}
	perf.Charge(h.Env, perf.CostHypercall)
	spa, err := driver.EPT.Translate(pfn, 0)
	if err != nil {
		return err
	}
	if _, dup := h.protPages[mem.Frame(uint64(spa))]; dup {
		return fmt.Errorf("hv: page %v already in a protected region", pfn)
	}
	if err := driver.EPT.SetPerm(pfn, 0); err != nil {
		return err
	}
	// Bus address = driver guest-physical address (device-assignment
	// convention), with full permissions while the region is active.
	if err := dom.AddPage(id, iommu.BusAddr(pfn), spa, mem.PermRW); err != nil {
		_ = driver.EPT.SetPerm(pfn, mem.PermRW)
		return err
	}
	r.sysPages[pfn] = spa
	h.protPages[mem.Frame(uint64(spa))] = id
	return nil
}

// RegionAddSysPageDeviceRO stages a driver-VM page that the device may only
// read, while the driver VM keeps read/write CPU access. This emulates
// write-only-for-CPU permissions (§5.3 change iv): buffers such as the GPU
// address-translation table that the driver must update but the device must
// not be able to overwrite.
func (h *Hypervisor) RegionAddSysPageDeviceRO(dom *iommu.Domain, id iommu.RegionID, driver *VM, pfn mem.GuestPhys) error {
	if _, ok := h.regions[id]; !ok && id != iommu.RegionGlobal {
		return fmt.Errorf("hv: unknown region %d", id)
	}
	perf.Charge(h.Env, perf.CostHypercall)
	spa, err := driver.EPT.Translate(pfn, 0)
	if err != nil {
		return err
	}
	return dom.AddPage(id, iommu.BusAddr(pfn), spa, mem.PermRead)
}

// RegionRemoveSysPage withdraws a page from a region: the hypervisor zeros
// it before unmapping (§5.3), restores the driver VM's access, and drops
// the IOMMU staging.
func (h *Hypervisor) RegionRemoveSysPage(dom *iommu.Domain, id iommu.RegionID, driver *VM, pfn mem.GuestPhys) error {
	r, ok := h.regions[id]
	if !ok {
		return fmt.Errorf("hv: unknown region %d", id)
	}
	spa, ok := r.sysPages[pfn]
	if !ok {
		return fmt.Errorf("hv: page %v not in region %d", pfn, id)
	}
	perf.Charge(h.Env, perf.CostHypercall)
	if err := h.Phys.Zero(spa, mem.PageSize); err != nil {
		return err
	}
	if err := dom.RemovePage(id, iommu.BusAddr(pfn)); err != nil {
		return err
	}
	if err := driver.EPT.SetPerm(pfn, mem.PermRW); err != nil {
		return err
	}
	delete(r.sysPages, pfn)
	delete(h.protPages, mem.Frame(uint64(spa)))
	return nil
}

// RegionSwitch activates a region on the device's IOMMU domain: the
// previous region's pages leave the live table and the new region's pages
// enter it (§4.2: "the device has access permission to one memory region at
// a time").
func (h *Hypervisor) RegionSwitch(dom *iommu.Domain, id iommu.RegionID) error {
	if _, ok := h.regions[id]; !ok && id != iommu.RegionGlobal {
		return fmt.Errorf("hv: unknown region %d", id)
	}
	perf.Charge(h.Env, perf.CostHypercall)
	return dom.Switch(id)
}

// ProtectDeviceRange marks device-memory pages (a BAR-backed SPA range) as
// belonging to a region, so MapToGuest enforces ownership for device memory
// exactly as for system memory, and strips the driver VM's EPT access to
// them. gpa is where the range appears in the driver VM's guest-physical
// space.
func (h *Hypervisor) ProtectDeviceRange(driver *VM, id iommu.RegionID, gpa mem.GuestPhys, size uint64) error {
	if _, ok := h.regions[id]; !ok {
		return fmt.Errorf("hv: unknown region %d", id)
	}
	for off := uint64(0); off < size; off += mem.PageSize {
		spa, err := driver.EPT.Translate(gpa+mem.GuestPhys(off), 0)
		if err != nil {
			return err
		}
		if err := driver.EPT.SetPerm(gpa+mem.GuestPhys(off), 0); err != nil {
			return err
		}
		h.protPages[mem.Frame(uint64(spa))] = id
	}
	return nil
}

// Gate guards an MMIO register page the hypervisor has taken away from the
// driver VM (§5.3 change iii: the GPU memory-controller registers). Once
// revoked, driver accesses fault; the driver must go through Hypercall.
type Gate struct {
	name    string
	revoked bool
}

// NewGate returns an open gate for a named register page.
func NewGate(name string) *Gate { return &Gate{name: name} }

// Revoke unmaps the register page from the driver VM.
func (g *Gate) Revoke() { g.revoked = true }

// Revoked reports whether the gate is closed to direct driver access.
func (g *Gate) Revoked() bool { return g.revoked }

// Check returns an error if direct driver access is no longer permitted.
func (g *Gate) Check() error {
	if g.revoked {
		return fmt.Errorf("hv: MMIO page %s unmapped from driver VM", g.name)
	}
	return nil
}

// HypercallAccess runs fn with hypervisor privilege regardless of the
// gate's state, charging hypercall cost.
func (h *Hypervisor) HypercallAccess(g *Gate, fn func()) {
	perf.Charge(h.Env, perf.CostHypercall)
	fn()
}
