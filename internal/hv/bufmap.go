package hv

import (
	"fmt"

	"paradice/internal/faults"
	"paradice/internal/grant"
	"paradice/internal/iommu"
	"paradice/internal/mem"
	"paradice/internal/perf"
	"paradice/internal/sim"
	"paradice/internal/trace"
)

// This file implements the reverse of memops.go's MapToGuest: mapping a
// GUEST process buffer into the DRIVER VM, so the backend can satisfy
// repeated read/write data movement through one established mapping instead
// of a hypervisor-assisted copy per request (the grant-map cache's
// substrate). The mapping is validated against the guest's grant table
// exactly like a copy would be, and its EPT permissions are derived from the
// grant kind — so a driver VM misusing a cached mapping faults exactly as a
// fresh map (or a fresh assisted copy) would.

// GuestMapping is one established driver-VM mapping of a guest process
// buffer. It records the grant authorization it was created under; all data
// movement through it goes page by page through the driver VM's EPT with
// the access permission of the attempted operation, so revocation (which
// destroys the EPT entries) and wrong-direction access (a write through a
// read-only mapping) fault rather than silently touching guest memory.
type GuestMapping struct {
	h      *Hypervisor
	guest  *VM
	driver *VM

	// The authorization this mapping was validated under.
	Ref  uint32
	Kind grant.Kind
	VA   mem.GuestVirt // granted byte range (not page-rounded)
	Len  uint64

	base   mem.GuestPhys // first driver-GPA of the mapped window pages
	npages int
	perm   mem.Perm
	dead   bool

	// dma, when non-nil, is the IOMMU domain the mapping's pages were
	// added to for direct device DMA (zero-copy receive into guest buffers).
	dma *iommu.Domain
}

// mapPerm derives the driver-side EPT permission from the grant kind: a
// copy-to-user grant authorizes the driver to write the guest buffer (and
// read it back), a copy-from-user grant authorizes reading only. Any other
// kind cannot back a data mapping.
func mapPerm(kind grant.Kind) (mem.Perm, error) {
	switch kind {
	case grant.KindCopyTo:
		return mem.PermRW, nil
	case grant.KindCopyFrom:
		return mem.PermRead, nil
	default:
		return 0, fmt.Errorf("hv: grant kind %v cannot back a buffer mapping", kind)
	}
}

// MapGuestBuffer maps the guest process pages spanning [va, va+n) into the
// driver VM's map window, validated against the guest's grant table under
// ref/kind. The walk direction and the resulting EPT permission both come
// from the kind, so the mapping can never be used for an access the grant
// would not have allowed as a copy. Charges one CostMapPage per page — the
// up-front cost the grant-map cache amortizes across requests.
func (h *Hypervisor) MapGuestBuffer(guest *VM, ref uint32, kind grant.Kind, va mem.GuestVirt, n uint64, driver *VM) (*GuestMapping, error) {
	if n == 0 {
		return nil, fmt.Errorf("hv: empty MapGuestBuffer")
	}
	if d := faults.Point(h.Env, "hv.map"); d != nil {
		return nil, d.Error()
	}
	perm, err := mapPerm(kind)
	if err != nil {
		return nil, err
	}
	pt, err := h.validate(guest, ref, kind, va, n)
	if err != nil {
		return nil, err
	}
	walkAccess := mem.PermRead
	if kind == grant.KindCopyTo {
		walkAccess = mem.PermWrite
	}
	npages := int(mem.PagesSpanned(uint64(va), n))
	tr, rid := h.tracer()
	mstart := tr.Now()
	if guest.tlb == nil {
		// Dormant: the per-page establishment work is one upfront charge,
		// byte-identical to the seed.
		perf.Charge(h.Env, sim.Duration(npages)*perf.CostMapPage)
		tr.Span(rid, "hv", trace.LayerHV, "map-buffer", mstart, tr.Now())
	}
	tr.Add("hv.map.pages", uint64(npages))
	base, err := driver.EPT.FindUnusedRange(mapWindowLo, mapWindowHi, npages)
	if err != nil {
		return nil, err
	}
	for i := 0; i < npages; i++ {
		pva := mem.GuestVirt(mem.PageBase(uint64(va))) + mem.GuestVirt(i)*mem.PageSize
		var spaPage mem.SysPhys
		if guest.tlb != nil {
			// Armed: per-page charging so a cached translation replaces
			// exactly the walk share of the establishment cost. A cold armed
			// establishment (all misses) costs the same npages·CostMapPage as
			// the dormant lump.
			if cached, hit := guest.tlb.lookup(pt.Root(), pva, walkAccess); hit {
				perf.Charge(h.Env, perf.CostMapPage-perf.CostCopyPerPage+perf.CostTLBHit)
				tr.Add("hv.tlb.hit", 1)
				spaPage = cached
			} else {
				perf.Charge(h.Env, perf.CostMapPage)
				tr.Add("hv.tlb.miss", 1)
				gpa, err := pt.Walk(pva, walkAccess)
				if err != nil {
					unmapPages(driver, base, i)
					return nil, err
				}
				spa, err := guest.EPT.Translate(gpa, 0)
				if err != nil {
					unmapPages(driver, base, i)
					return nil, err
				}
				spaPage = mem.SysPhys(mem.PageBase(uint64(spa)))
				guest.tlb.insert(pt.Root(), pva, spaPage, walkAccess)
			}
		} else {
			gpa, err := pt.Walk(pva, walkAccess)
			if err != nil {
				unmapPages(driver, base, i)
				return nil, err
			}
			spa, err := guest.EPT.Translate(gpa, 0)
			if err != nil {
				unmapPages(driver, base, i)
				return nil, err
			}
			spaPage = mem.SysPhys(mem.PageBase(uint64(spa)))
		}
		if err := driver.EPT.Map(base+mem.GuestPhys(i)*mem.PageSize, spaPage, perm); err != nil {
			unmapPages(driver, base, i)
			return nil, err
		}
	}
	if guest.tlb != nil {
		tr.Span(rid, "hv", trace.LayerHV, "map-buffer", mstart, tr.Now())
	}
	return &GuestMapping{
		h: h, guest: guest, driver: driver,
		Ref: ref, Kind: kind, VA: va, Len: n,
		base: base, npages: npages, perm: perm,
	}, nil
}

func unmapPages(driver *VM, base mem.GuestPhys, n int) {
	for i := 0; i < n; i++ {
		_ = driver.EPT.Unmap(base + mem.GuestPhys(i)*mem.PageSize)
	}
}

// Covers reports whether the mapping's authorization satisfies an access of
// kind over [va, va+n) under the same grant reference.
func (m *GuestMapping) Covers(ref uint32, kind grant.Kind, va mem.GuestVirt, n uint64) bool {
	return !m.dead && m.Ref == ref && m.Kind == kind &&
		va >= m.VA && uint64(va)+n <= uint64(m.VA)+m.Len && uint64(va)+n >= uint64(va)
}

// Dead reports whether the mapping has been torn down.
func (m *GuestMapping) Dead() bool { return m.dead }

// Copy moves data between buf and the mapped guest buffer at va, page by
// page through the DRIVER VM's EPT with the access permission of this
// operation — which is the whole security argument for caching: a revoked
// mapping has no EPT entries left and faults; a write through a read-only
// (copy-from-user) mapping violates the EPT permission exactly as a fresh
// map would.
func (m *GuestMapping) Copy(va mem.GuestVirt, buf []byte, write bool) error {
	if m.dead {
		return fmt.Errorf("hv: access through revoked mapping of %v", m.VA)
	}
	if d := faults.Point(m.h.Env, "hv.copy"); d != nil {
		return d.Error()
	}
	if va < mem.GuestVirt(mem.PageBase(uint64(m.VA))) ||
		uint64(va)+uint64(len(buf)) > mem.PageBase(uint64(m.VA))+uint64(m.npages)*mem.PageSize {
		return fmt.Errorf("hv: access outside mapping of %v", m.VA)
	}
	access := mem.PermRead
	if write {
		access = mem.PermWrite
	}
	tr, rid := m.h.tracer()
	cstart := tr.Now()
	perf.Charge(m.h.Env, perf.MapCopy(len(buf)))
	tr.Span(rid, "hv", trace.LayerHV, "map-copy", cstart, tr.Now())
	tr.Add("hv.mapcopy.ops", 1)
	tr.Add("hv.mapcopy.bytes", uint64(len(buf)))
	off := uint64(va) - mem.PageBase(uint64(m.VA))
	for len(buf) > 0 {
		gpa := m.base + mem.GuestPhys(mem.PageBase(off))
		spa, err := m.driver.EPT.Translate(gpa, access)
		if err != nil {
			return err
		}
		n := mem.PageSize - mem.PageOffset(off)
		if n > uint64(len(buf)) {
			n = uint64(len(buf))
		}
		if write {
			err = m.h.Phys.Write(spa+mem.SysPhys(mem.PageOffset(off)), buf[:n])
		} else {
			err = m.h.Phys.Read(spa+mem.SysPhys(mem.PageOffset(off)), buf[:n])
		}
		if err != nil {
			return err
		}
		off += n
		buf = buf[n:]
	}
	return nil
}

// EnableDMA registers the mapping's pages in a device's IOMMU domain at bus
// addresses equal to the driver-GPA window, letting the device DMA directly
// into (or out of) the guest buffer — the zero-copy endgame of the fast
// path. Unmap removes the pages again, so a revoked mapping also stops
// being a DMA target.
func (m *GuestMapping) EnableDMA(dom *iommu.Domain) error {
	if m.dead {
		return fmt.Errorf("hv: EnableDMA on revoked mapping of %v", m.VA)
	}
	spas := make([]mem.SysPhys, m.npages)
	for i := range spas {
		spa, err := m.driver.EPT.Translate(m.base+mem.GuestPhys(i)*mem.PageSize, 0)
		if err != nil {
			return err
		}
		spas[i] = spa
	}
	if err := dom.GrantPages(iommu.BusAddr(m.base), spas, m.perm); err != nil {
		return err
	}
	m.dma = dom
	return nil
}

// DMABase returns the bus address a device should use to reach the start of
// the mapped (page-aligned) window after EnableDMA.
func (m *GuestMapping) DMABase() iommu.BusAddr { return iommu.BusAddr(m.base) }

// Unmap destroys the mapping: every driver-EPT entry is removed (subsequent
// access through the cached mapping faults) and any IOMMU registration is
// revoked. Idempotent. Charges the same per-page teardown cost as
// UnmapFromGuest when running in process context.
func (m *GuestMapping) Unmap() {
	if m.dead {
		return
	}
	m.dead = true
	if m.dma != nil {
		_ = m.dma.RevokePages(iommu.BusAddr(m.base), m.npages)
		m.dma = nil
	}
	tr, rid := m.h.tracer()
	ustart := tr.Now()
	perf.Charge(m.h.Env, sim.Duration(m.npages)*perf.CostMapPage)
	tr.Span(rid, "hv", trace.LayerHV, "unmap-buffer", ustart, tr.Now())
	tr.Add("hv.unmap.pages", uint64(m.npages))
	unmapPages(m.driver, m.base, m.npages)
}
