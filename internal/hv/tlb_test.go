package hv

import (
	"bytes"
	"testing"

	"paradice/internal/grant"
	"paradice/internal/mem"
	"paradice/internal/perf"
	"paradice/internal/sim"
)

// timeOp runs fn in simulation process context and returns the virtual time
// it charged.
func timeOp(env *sim.Env, fn func()) sim.Duration {
	var d sim.Duration
	env.RunFunc("op", func(p *sim.Proc) {
		start := env.Now()
		fn()
		d = env.Now().Sub(start)
	})
	return d
}

// threePageRig maps three user pages and declares copy grants both ways over
// all of them.
func threePageRig(t *testing.T, h *Hypervisor) (*guestRig, mem.GuestVirt, uint32) {
	t.Helper()
	g := newGuestRig(t, h, "guest")
	va := mem.GuestVirt(0x40000000)
	for i := 0; i < 3; i++ {
		g.mapUserPage(t, va+mem.GuestVirt(i)*mem.PageSize)
	}
	ref, err := g.grants.Declare(g.pt.Root(), []grant.Op{
		{Kind: grant.KindCopyTo, VA: va, Len: 3 * mem.PageSize},
		{Kind: grant.KindCopyFrom, VA: va, Len: 3 * mem.PageSize},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, va, ref
}

// A cold armed copy must charge exactly what the dormant path charges: the
// TLB never makes a first touch cheaper, it only amortizes reuse.
func TestTLBColdCopyChargesMatchDormant(t *testing.T) {
	const n = 2*mem.PageSize + 512 // spans 3 pages
	run := func(tlb bool) sim.Duration {
		env := sim.NewEnv()
		h := New(env, 64<<20)
		if tlb {
			h.EnableTLB()
		}
		g, va, ref := threePageRig(t, h)
		return timeOp(env, func() {
			if err := h.CopyToGuest(g.vm, ref, va, make([]byte, n)); err != nil {
				t.Error(err)
			}
		})
	}
	dormant, cold := run(false), run(true)
	if dormant != cold {
		t.Fatalf("cold armed copy charged %v, dormant charged %v", cold, dormant)
	}
	want := perf.CostGrantDeclare + perf.Copy(n, 3)
	if dormant != want {
		t.Fatalf("dormant copy charged %v, want %v", dormant, want)
	}
}

// A warm copy replaces each page's walk share with CostTLBHit; the grant
// validation and the per-byte memcpy share are unchanged.
func TestTLBWarmCopyChargesHitCost(t *testing.T) {
	const n = 2*mem.PageSize + 512
	env := sim.NewEnv()
	h := New(env, 64<<20)
	h.EnableTLB()
	g, va, ref := threePageRig(t, h)
	buf := make([]byte, n)
	timeOp(env, func() {
		if err := h.CopyToGuest(g.vm, ref, va, buf); err != nil {
			t.Error(err)
		}
	})
	warm := timeOp(env, func() {
		if err := h.CopyToGuest(g.vm, ref, va, buf); err != nil {
			t.Error(err)
		}
	})
	want := perf.CostGrantDeclare + 3*perf.CostTLBHit + sim.Duration(n)*perf.CostCopyPerKB/1024
	if warm != want {
		t.Fatalf("warm copy charged %v, want %v", warm, want)
	}
	if warm >= perf.CostGrantDeclare+perf.Copy(n, 3) {
		t.Fatalf("warm copy (%v) not cheaper than cold (%v)", warm, perf.CostGrantDeclare+perf.Copy(n, 3))
	}
}

// Hostile: the guest unmaps, then remaps, a page whose translation is warm
// in the TLB. The next copy must fault through the cache (unmapped) and then
// observe the NEW frame (remapped) — never the stale translation.
func TestTLBRemapWhileCachedFaultsThroughCache(t *testing.T) {
	env := sim.NewEnv()
	h := New(env, 64<<20)
	h.EnableTLB()
	g, va, ref := threePageRig(t, h)
	buf := make([]byte, 16)
	if err := h.CopyToGuest(g.vm, ref, va, []byte("original frame A")); err != nil {
		t.Fatal(err)
	}
	if _, hit := g.vm.tlb.lookup(g.pt.Root(), va, mem.PermWrite); !hit {
		t.Fatal("translation not cached after copy")
	}

	// Unmap: the PT-edit hook must invalidate in the same instant.
	if err := g.pt.Unmap(va); err != nil {
		t.Fatal(err)
	}
	if _, hit := g.vm.tlb.lookup(g.pt.Root(), va, mem.PermRead); hit {
		t.Fatal("stale translation survived Unmap")
	}
	if err := h.CopyFromGuest(g.vm, ref, va, buf); err == nil {
		t.Fatal("copy through unmapped page succeeded — stale TLB entry served")
	}

	// Remap the same VA to a DIFFERENT frame holding different bytes.
	newGPA := g.next
	g.next += mem.PageSize
	if err := g.vm.Space.Write(newGPA, []byte("fresh frame B   ")); err != nil {
		t.Fatal(err)
	}
	if err := g.pt.Map(va, newGPA, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := h.CopyFromGuest(g.vm, ref, va, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte("fresh frame B   ")) {
		t.Fatalf("copy after remap read %q — stale translation", buf)
	}
}

// Hostile: an EPT change flushes the VM's whole TLB; a warm translation
// whose guest-physical backing lost its EPT entry must fault, not serve the
// cached system-physical address.
func TestTLBEPTChangeFlushesCache(t *testing.T) {
	env := sim.NewEnv()
	h := New(env, 64<<20)
	h.EnableTLB()
	g, va, ref := threePageRig(t, h)
	if err := h.CopyToGuest(g.vm, ref, va, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if len(g.vm.tlb.entries) == 0 {
		t.Fatal("no entries cached")
	}
	// Find the backing GPA and rip out its EPT entry.
	gpa, err := g.pt.Walk(va, mem.PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.vm.EPT.Unmap(mem.GuestPhys(mem.PageBase(uint64(gpa)))); err != nil {
		t.Fatal(err)
	}
	if len(g.vm.tlb.entries) != 0 {
		t.Fatalf("%d entries survived the EPT change", len(g.vm.tlb.entries))
	}
	if err := h.CopyToGuest(g.vm, ref, va, make([]byte, 64)); err == nil {
		t.Fatal("copy succeeded with the EPT entry gone — stale translation served")
	}
}

// A translation proven by a read walk must not satisfy a write access: the
// permission bits ride the cache entry, and an insufficient permission is a
// miss that takes (and, on a read-only page, faults in) the full walk.
func TestTLBPermissionNotUpgradedByCache(t *testing.T) {
	env := sim.NewEnv()
	h := New(env, 64<<20)
	h.EnableTLB()
	g := newGuestRig(t, h, "guest")
	va := mem.GuestVirt(0x40000000)
	// Read-only user page.
	gpa := g.next
	g.next += mem.PageSize
	if err := g.pt.Map(va, gpa, mem.PermRead); err != nil {
		t.Fatal(err)
	}
	ref, err := g.grants.Declare(g.pt.Root(), []grant.Op{
		{Kind: grant.KindCopyTo, VA: va, Len: mem.PageSize},
		{Kind: grant.KindCopyFrom, VA: va, Len: mem.PageSize},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.CopyFromGuest(g.vm, ref, va, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if _, hit := g.vm.tlb.lookup(g.pt.Root(), va, mem.PermWrite); hit {
		t.Fatal("read walk cached a write-capable translation")
	}
	if err := h.CopyToGuest(g.vm, ref, va, make([]byte, 16)); err == nil {
		t.Fatal("write through read-only page succeeded")
	}
}

// Satellite: partial-fault behavior of the armed copy. A copy that faults on
// page k charges exactly the walks it performed, leaves pages 0..k-1 as a
// deterministic destination prefix, and never caches the faulting page.
func TestTLBCopyPartialFault(t *testing.T) {
	env := sim.NewEnv()
	h := New(env, 64<<20)
	h.EnableTLB()
	g := newGuestRig(t, h, "guest")
	va := mem.GuestVirt(0x40000000)
	g.mapUserPage(t, va)
	g.mapUserPage(t, va+mem.PageSize)
	// Third page deliberately unmapped.
	n := int(3 * mem.PageSize)
	ref, err := g.grants.Declare(g.pt.Root(), []grant.Op{{Kind: grant.KindCopyTo, VA: va, Len: uint64(n)}})
	if err != nil {
		t.Fatal(err)
	}
	src := bytes.Repeat([]byte{0xAB}, n)
	var copyErr error
	d := timeOp(env, func() {
		copyErr = h.CopyToGuest(g.vm, ref, va, src)
	})
	if copyErr == nil {
		t.Fatal("copy across an unmapped page succeeded")
	}
	if _, ok := copyErr.(*mem.PageFault); !ok {
		t.Fatalf("copy error %T (%v), want *mem.PageFault", copyErr, copyErr)
	}
	// Exactly 3 walk attempts (all misses: two proven, one faulted) plus the
	// memcpy share of the 2 pages that actually moved.
	want := perf.CostGrantDeclare + 3*perf.CostCopyPerPage +
		sim.Duration(2*mem.PageSize)*perf.CostCopyPerKB/1024
	if d != want {
		t.Fatalf("partial-fault copy charged %v, want %v", d, want)
	}
	// Deterministic destination prefix: both reachable pages fully written.
	got := make([]byte, 2*mem.PageSize)
	if err := g.user().Read(va, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src[:2*mem.PageSize]) {
		t.Fatal("destination prefix not the copied bytes")
	}
	// The two proven pages are cached; the faulting page is not.
	if _, hit := g.vm.tlb.lookup(g.pt.Root(), va+mem.GuestVirt(mem.PageSize), mem.PermWrite); !hit {
		t.Fatal("proven page not cached")
	}
	if _, hit := g.vm.tlb.lookup(g.pt.Root(), va+2*mem.GuestVirt(mem.PageSize), mem.PermRead); hit {
		t.Fatal("faulting page left in the TLB")
	}
}

// The grant-validation cache: a batched declare primes the vector, a
// validation hit charges CostTLBHit, and a revocation drops the reference so
// a revoked-while-cached validation is denied — never served stale.
func TestGrantCacheHitAndRevokedValidationDenied(t *testing.T) {
	env := sim.NewEnv()
	h := New(env, 64<<20)
	g := newGuestRig(t, h, "guest")
	h.EnableGrantCache(g.vm, g.grants)
	va := mem.GuestVirt(0x40000000)
	g.mapUserPage(t, va)
	ref, err := g.grants.Declare(g.pt.Root(), []grant.Op{{Kind: grant.KindCopyTo, VA: va, Len: 256}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.vm.grantCache.lookup(ref, grant.KindCopyTo, va, 256); !ok {
		t.Fatal("declare did not prime the grant cache")
	}
	d := timeOp(env, func() {
		if err := h.CopyToGuest(g.vm, ref, va, make([]byte, 256)); err != nil {
			t.Error(err)
		}
	})
	want := perf.CostTLBHit + perf.Copy(256, 1)
	if d != want {
		t.Fatalf("cached validation + copy charged %v, want %v", d, want)
	}
	// Out-of-range and wrong-kind requests still miss the cache and are
	// denied by the full scan — caching must not weaken the check.
	if err := h.CopyToGuest(g.vm, ref, va+200, make([]byte, 100)); err == nil {
		t.Fatal("overflow past grant accepted by cached validation")
	}
	if err := h.CopyFromGuest(g.vm, ref, va, make([]byte, 8)); err == nil {
		t.Fatal("wrong-direction access accepted by cached validation")
	}
	// Revoke: the cache entry dies with the declaration.
	if err := g.grants.Revoke(ref); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.vm.grantCache.lookup(ref, grant.KindCopyTo, va, 256); ok {
		t.Fatal("revoked reference survived in the grant cache")
	}
	if err := h.CopyToGuest(g.vm, ref, va, make([]byte, 16)); err == nil {
		t.Fatal("copy under revoked grant succeeded")
	}
}

// A rolled-back declaration (table full) must never prime the cache: the
// OnDeclare hook only fires after every slot was written.
func TestGrantCacheRollbackNotPrimed(t *testing.T) {
	env := sim.NewEnv()
	h := New(env, 64<<20)
	g := newGuestRig(t, h, "guest")
	h.EnableGrantCache(g.vm, g.grants)
	va := mem.GuestVirt(0x40000000)
	ops := make([]grant.Op, grant.Slots+1)
	for i := range ops {
		ops[i] = grant.Op{Kind: grant.KindCopyTo, VA: va, Len: 16}
	}
	if _, err := g.grants.Declare(g.pt.Root(), ops); err == nil {
		t.Fatal("oversized declaration succeeded")
	}
	if len(g.vm.grantCache.decls) != 0 {
		t.Fatalf("rolled-back declaration primed %d cache entries", len(g.vm.grantCache.decls))
	}
}

// FlushTranslationCaches (the RestartDriverVM hook) empties both caches.
func TestFlushTranslationCaches(t *testing.T) {
	env := sim.NewEnv()
	h := New(env, 64<<20)
	h.EnableTLB()
	g, va, ref := threePageRig(t, h)
	h.EnableGrantCache(g.vm, g.grants)
	ref2, err := g.grants.Declare(g.pt.Root(), []grant.Op{{Kind: grant.KindCopyTo, VA: va, Len: 64}})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.CopyToGuest(g.vm, ref, va, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if len(g.vm.tlb.entries) == 0 || len(g.vm.grantCache.decls) == 0 {
		t.Fatal("caches not populated")
	}
	epoch := g.vm.tlb.epoch
	h.FlushTranslationCaches()
	if len(g.vm.tlb.entries) != 0 || len(g.vm.grantCache.decls) != 0 {
		t.Fatal("caches survived the flush")
	}
	if g.vm.tlb.epoch != epoch+1 {
		t.Fatalf("flush did not enter a new epoch (%d -> %d)", epoch, g.vm.tlb.epoch)
	}
	// The flushed state revalidates rather than failing: the grant table
	// bytes still hold ref2, so the scan path accepts it cold.
	if err := h.CopyToGuest(g.vm, ref2, va, make([]byte, 64)); err != nil {
		t.Fatalf("post-flush revalidation failed: %v", err)
	}
}

// MapGuestBuffer with the TLB armed: a cold establishment charges the
// dormant npages·CostMapPage, a warm one replaces each page's walk share
// with CostTLBHit.
func TestTLBMapGuestBufferWarmCharges(t *testing.T) {
	const n = 2 * mem.PageSize
	env := sim.NewEnv()
	h := New(env, 64<<20)
	h.EnableTLB()
	g, va, ref := threePageRig(t, h)
	drv, _ := h.CreateVM("driver", 4<<20)
	cold := timeOp(env, func() {
		m, err := h.MapGuestBuffer(g.vm, ref, grant.KindCopyTo, va, n, drv)
		if err != nil {
			t.Error(err)
			return
		}
		m.Unmap()
	})
	coldWant := perf.CostGrantDeclare + 2*perf.CostMapPage + // establish (misses)
		2*perf.CostMapPage // teardown
	if cold != coldWant {
		t.Fatalf("cold map+unmap charged %v, want %v", cold, coldWant)
	}
	warm := timeOp(env, func() {
		m, err := h.MapGuestBuffer(g.vm, ref, grant.KindCopyTo, va, n, drv)
		if err != nil {
			t.Error(err)
			return
		}
		m.Unmap()
	})
	warmWant := perf.CostGrantDeclare +
		2*(perf.CostMapPage-perf.CostCopyPerPage+perf.CostTLBHit) +
		2*perf.CostMapPage
	if warm != warmWant {
		t.Fatalf("warm map+unmap charged %v, want %v", warm, warmWant)
	}
}
