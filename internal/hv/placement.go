package hv

import "hash/fnv"

// Placement partitions device files across driver-VM shards. The paper runs
// one driver VM owning every device; scaling guest count past what one
// driver VM's vCPU can serve calls for sharding the devices across several,
// each with its own CVD backends (and, optionally, its own worker pool).
// Placement is the routing layer: explicit pins for devices whose shard is
// decided at attach time (the machine's standard devices, or a harness
// calling PinDevice), and a deterministic hash fallback for everything else,
// so any path always routes to the same shard in every run.
type Placement struct {
	shards int
	pins   map[string]int
}

// NewPlacement creates a placement over the given number of shards (values
// < 1 mean 1 — the paper's single driver VM).
func NewPlacement(shards int) *Placement {
	if shards < 1 {
		shards = 1
	}
	return &Placement{shards: shards, pins: make(map[string]int)}
}

// Shards returns the shard count.
func (p *Placement) Shards() int { return p.shards }

// Assign pins a device path to a shard. Out-of-range shards are clamped into
// [0, shards); re-assigning overwrites the pin.
func (p *Placement) Assign(path string, shard int) {
	if shard < 0 {
		shard = 0
	}
	p.pins[path] = shard % p.shards
}

// Lookup reports the pinned shard for a path, if any.
func (p *Placement) Lookup(path string) (int, bool) {
	s, ok := p.pins[path]
	return s, ok
}

// Route returns the shard serving a path: its pin when one exists, else a
// stable FNV-1a hash of the path — deterministic across runs and processes,
// so unpinned paths (per-guest bench sinks, harness devices) spread across
// shards without any coordination.
func (p *Placement) Route(path string) int {
	if s, ok := p.pins[path]; ok {
		return s
	}
	h := fnv.New32a()
	h.Write([]byte(path))
	return int(h.Sum32() % uint32(p.shards))
}
