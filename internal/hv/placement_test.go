package hv

import "testing"

func TestPlacementClampsShardCount(t *testing.T) {
	for _, n := range []int{-3, 0, 1} {
		if got := NewPlacement(n).Shards(); got != 1 {
			t.Fatalf("NewPlacement(%d).Shards() = %d, want 1", n, got)
		}
	}
	if got := NewPlacement(4).Shards(); got != 4 {
		t.Fatalf("NewPlacement(4).Shards() = %d, want 4", got)
	}
}

func TestPlacementPinOverridesHash(t *testing.T) {
	p := NewPlacement(4)
	if _, ok := p.Lookup("/dev/gpu"); ok {
		t.Fatal("fresh placement has a pin for /dev/gpu")
	}
	hashed := p.Route("/dev/gpu")
	p.Assign("/dev/gpu", (hashed+1)%4)
	if got := p.Route("/dev/gpu"); got != (hashed+1)%4 {
		t.Fatalf("Route after Assign = %d, want %d", got, (hashed+1)%4)
	}
	if s, ok := p.Lookup("/dev/gpu"); !ok || s != (hashed+1)%4 {
		t.Fatalf("Lookup = (%d, %v), want (%d, true)", s, ok, (hashed+1)%4)
	}
	// Re-assignment overwrites; out-of-range pins clamp into [0, shards).
	p.Assign("/dev/gpu", -7)
	if got := p.Route("/dev/gpu"); got != 0 {
		t.Fatalf("Route after negative Assign = %d, want 0", got)
	}
	p.Assign("/dev/gpu", 6)
	if got := p.Route("/dev/gpu"); got != 2 {
		t.Fatalf("Route after Assign(6) mod 4 = %d, want 2", got)
	}
}

// The hash fallback is the routing contract for unpinned paths: stable
// across placements (same path, same shard count, same answer — it is a
// pure function, deterministic across runs and processes), always in
// range, and collapsing to shard 0 on a single-shard placement.
func TestPlacementHashRouteStableAndInRange(t *testing.T) {
	paths := []string{"/dev/loadsink0", "/dev/loadsink1", "/dev/stressdev", "/dev/dri/card0", "/dev/netmap"}
	a, b := NewPlacement(4), NewPlacement(4)
	for _, path := range paths {
		ra, rb := a.Route(path), b.Route(path)
		if ra != rb {
			t.Fatalf("Route(%q) unstable: %d vs %d", path, ra, rb)
		}
		if ra < 0 || ra >= 4 {
			t.Fatalf("Route(%q) = %d out of range [0,4)", path, ra)
		}
	}
	single := NewPlacement(1)
	for _, path := range paths {
		if got := single.Route(path); got != 0 {
			t.Fatalf("single-shard Route(%q) = %d, want 0", path, got)
		}
	}
}
