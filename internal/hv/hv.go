// Package hv implements the Type-I hypervisor of Paradice's design
// (Figure 1(c)): VM lifecycle with EPT-backed memory, device assignment
// through the IOMMU, inter-VM interrupts and shared pages for the CVD
// transport, the hypervisor-assisted memory operations of §5.2 with the
// strict grant-table checks of §4.1, and the protected memory regions of
// §4.2 for device data isolation.
package hv

import (
	"fmt"

	"paradice/internal/faults"
	"paradice/internal/grant"
	"paradice/internal/iommu"
	"paradice/internal/mem"
	"paradice/internal/perf"
	"paradice/internal/sim"
	"paradice/internal/trace"
)

// VMID identifies a virtual machine.
type VMID int

// Hypervisor is the bare-metal hypervisor owning physical memory, EPTs, and
// the IOMMU.
type Hypervisor struct {
	Env  *sim.Env
	Phys *mem.PhysMem

	hostAlloc *mem.Allocator
	vms       []*VM

	// Cross-VM mmap records: (guest, process page-table root, va) -> gpa,
	// kept so unmap can destroy the EPT entry the map created.
	mapped map[mapKey]mem.GuestPhys

	// Protected memory region bookkeeping (device data isolation).
	regions    map[iommu.RegionID]*Region
	nextRegion iommu.RegionID
	protPages  map[uint64]iommu.RegionID // SPA frame -> owning region

	// tlbEnabled arms the software TLB (tlb.go) on every existing and
	// future VM.
	tlbEnabled bool
}

type mapKey struct {
	vm     VMID
	ptRoot mem.GuestPhys
	va     mem.GuestVirt
}

// VM is one virtual machine: its EPT, its guest-physical space view, and
// its interrupt lines.
type VM struct {
	ID      VMID
	Name    string
	EPT     *mem.EPT
	Space   *mem.GuestSpace
	RAM     uint64
	RAMBase mem.SysPhys // contiguous system-physical backing

	hv       *Hypervisor
	isr      map[int]func()
	grantSPA mem.SysPhys // registered grant-table page (0 = none)
	barNext  mem.GuestPhys
	nextVec  int

	// Software TLB and grant-validation cache (tlb.go); nil until armed via
	// EnableTLB / EnableGrantCache, and every consult is nil-gated, so the
	// dormant paths stay byte-identical to the seed.
	tlb         *vmTLB
	grantCache  *grantCache
	grantTables map[*grant.Table]bool // tables already subscribed (idempotence)
}

// AllocVector reserves a fresh interrupt vector on this VM.
func (vm *VM) AllocVector() int {
	vm.nextVec++
	return 31 + vm.nextVec
}

// Guest-physical layout constants.
const (
	// barWindow is where assigned-device BARs appear in a VM's guest-
	// physical space.
	barWindow = mem.GuestPhys(0xC000_0000)
	// mapWindow is where the hypervisor places cross-VM mmap and shared
	// pages (an unused guest-physical hole; §5.2: "any guest physical page
	// address ... as long as it is not used by the guest OS").
	mapWindowLo = mem.GuestPhys(0x8000_0000)
	mapWindowHi = mem.GuestPhys(0xC000_0000)
)

// New creates a hypervisor owning hostRAM bytes of system memory.
func New(env *sim.Env, hostRAM uint64) *Hypervisor {
	phys := mem.NewPhysMem()
	return &Hypervisor{
		Env:        env,
		Phys:       phys,
		hostAlloc:  phys.NewAllocator("host-ram", 0x1_0000_0000, hostRAM),
		mapped:     make(map[mapKey]mem.GuestPhys),
		regions:    make(map[iommu.RegionID]*Region),
		nextRegion: iommu.RegionGlobal + 1,
		protPages:  make(map[uint64]iommu.RegionID),
	}
}

// CreateVM allocates a VM with ram bytes of memory mapped at guest-physical
// zero.
func (h *Hypervisor) CreateVM(name string, ram uint64) (*VM, error) {
	if !mem.PageAligned(ram) || ram == 0 {
		return nil, fmt.Errorf("hv: VM RAM must be a positive page multiple, got %d", ram)
	}
	base, err := h.hostAlloc.AllocPages(int(ram / mem.PageSize))
	if err != nil {
		return nil, err
	}
	ept := mem.NewEPT()
	for off := uint64(0); off < ram; off += mem.PageSize {
		if err := ept.Map(mem.GuestPhys(off), base+mem.SysPhys(off), mem.PermRW); err != nil {
			return nil, err
		}
	}
	vm := &VM{
		ID:      VMID(len(h.vms) + 1),
		Name:    name,
		EPT:     ept,
		Space:   &mem.GuestSpace{Phys: h.Phys, EPT: ept},
		RAM:     ram,
		RAMBase: base,
		hv:      h,
		isr:     make(map[int]func()),
		barNext: barWindow,
	}
	h.vms = append(h.vms, vm)
	if h.tlbEnabled {
		h.armTLB(vm)
	}
	return vm, nil
}

// VMs returns all created VMs.
func (h *Hypervisor) VMs() []*VM { return h.vms }

// RegisterISR installs the VM's handler for an interrupt vector.
func (vm *VM) RegisterISR(vector int, fn func()) { vm.isr[vector] = fn }

// tracer returns the environment's tracer (nil when tracing is off) and the
// request ID bound to the process currently in hypervisor context, so memory
// operations and interrupt sends executed on a CVD worker's behalf land on
// the forwarded request's trace.
func (h *Hypervisor) tracer() (*trace.Tracer, uint64) {
	tr := trace.Get(h.Env)
	if tr == nil {
		return nil, 0
	}
	return tr, tr.RIDOf(h.Env.CurrentProc())
}

// SendInterrupt raises an inter-VM interrupt into the target VM. The
// handler runs after the inter-VM interrupt delivery latency; the sender
// continues immediately (the send itself is a cheap event-channel kick,
// charged as a hypercall).
func (h *Hypervisor) SendInterrupt(target *VM, vector int) {
	tr, rid := h.tracer()
	start := tr.Now()
	perf.Charge(h.Env, perf.CostHypercall)
	tr.Span(rid, "hv", trace.LayerHV, "hypercall", start, tr.Now())
	fn := target.isr[vector]
	if fn == nil {
		return // spurious interrupt: no handler registered
	}
	if faults.Point(h.Env, "hv.irq.drop") != nil {
		tr.Add("hv.irq.dropped", 1)
		return // injected fault: the interrupt is lost in delivery
	}
	if tr != nil {
		now := tr.Now()
		tr.Span(rid, target.Name, trace.LayerIRQ, "inter-vm-irq", now, now.Add(perf.CostInterVMIRQ))
		tr.Add("hv.irq.sent", 1)
	}
	h.Env.After(perf.CostInterVMIRQ, fn)
	if faults.Point(h.Env, "hv.irq.dup") != nil {
		// Injected fault: the interrupt is delivered twice. ISRs must be
		// idempotent (re-scanning the ring, re-triggering a fired event).
		// Traced as an instant, not a second span: the duplicate rides
		// concurrently with the real delivery and must not double-count in
		// the request's latency budget.
		tr.Add("hv.irq.duplicated", 1)
		h.Env.After(perf.CostInterVMIRQ, fn)
	}
}

// DeviceInterrupt raises a (pass-through) device interrupt into the VM the
// device is assigned to, modeling the hypervisor-routed delivery latency of
// device assignment.
func (h *Hypervisor) DeviceInterrupt(target *VM, vector int) {
	fn := target.isr[vector]
	if fn == nil {
		return
	}
	if tr, rid := h.tracer(); tr != nil {
		now := tr.Now()
		tr.Span(rid, target.Name, trace.LayerIRQ, "device-irq", now, now.Add(perf.CostVMExitIRQ))
		tr.Add("hv.irq.device", 1)
	}
	h.Env.After(perf.CostVMExitIRQ, fn)
}

// SharePage maps the owner VM's page at gpa into the peer VM and returns
// the peer's guest-physical address for it. This is how the CVD frontend
// and backend obtain their shared ring page (§5.1).
func (h *Hypervisor) SharePage(owner *VM, gpa mem.GuestPhys, peer *VM) (mem.GuestPhys, error) {
	spa, err := owner.EPT.Translate(gpa, 0)
	if err != nil {
		return 0, err
	}
	peerGPA, err := peer.EPT.FindUnusedRange(mapWindowLo, mapWindowHi, 1)
	if err != nil {
		return 0, err
	}
	if err := peer.EPT.Map(peerGPA, mem.SysPhys(mem.PageBase(uint64(spa))), mem.PermRW); err != nil {
		return 0, err
	}
	return peerGPA, nil
}

// RegisterGrantTable records the guest's grant-table page (§5.1: "a single
// memory page shared between the frontend VM and the hypervisor").
func (h *Hypervisor) RegisterGrantTable(vm *VM, gpa mem.GuestPhys) error {
	spa, err := vm.EPT.Translate(gpa, 0)
	if err != nil {
		return err
	}
	vm.grantSPA = mem.SysPhys(mem.PageBase(uint64(spa)))
	return nil
}

// BAR describes a device register or memory aperture to map into a VM.
type BAR struct {
	Name string
	SPA  mem.SysPhys
	Size uint64
}

// AssignDevice gives a VM direct access to a device: its BARs are mapped
// into the VM's guest-physical space and an IOMMU domain is created that
// lets the device DMA to every physical address of that VM (§3.1). Returns
// the domain and the guest-physical address of each BAR.
func (h *Hypervisor) AssignDevice(vm *VM, dev string, bars []BAR) (*iommu.Domain, []mem.GuestPhys, error) {
	return h.assignDevice(vm, dev, bars, true)
}

// AssignDeviceIsolated assigns a device for the device data isolation
// configuration: the hypervisor creates no initial IOMMU mappings, and DMA
// becomes possible only through pages the driver explicitly asks to add to
// protected memory regions (§4.2).
func (h *Hypervisor) AssignDeviceIsolated(vm *VM, dev string, bars []BAR) (*iommu.Domain, []mem.GuestPhys, error) {
	return h.assignDevice(vm, dev, bars, false)
}

func (h *Hypervisor) assignDevice(vm *VM, dev string, bars []BAR, blanketDMA bool) (*iommu.Domain, []mem.GuestPhys, error) {
	dom := iommu.NewDomain(dev)
	if blanketDMA {
		if err := dom.MapRange(0, vm.RAMBase, int(vm.RAM/mem.PageSize), mem.PermRW); err != nil {
			return nil, nil, err
		}
	}
	gpas := make([]mem.GuestPhys, len(bars))
	for i, b := range bars {
		if !mem.PageAligned(uint64(b.SPA)) || !mem.PageAligned(b.Size) {
			return nil, nil, fmt.Errorf("hv: BAR %s not page aligned", b.Name)
		}
		gpa := vm.barNext
		vm.barNext += mem.GuestPhys(b.Size)
		for off := uint64(0); off < b.Size; off += mem.PageSize {
			if err := vm.EPT.Map(gpa+mem.GuestPhys(off), b.SPA+mem.SysPhys(off), mem.PermRW); err != nil {
				return nil, nil, err
			}
		}
		gpas[i] = gpa
	}
	return dom, gpas, nil
}

// Hypercall runs fn in hypervisor context, charging one VM transition.
// Drivers modified for device data isolation use this for accesses the
// hypervisor has revoked from the driver VM (§5.3).
func (h *Hypervisor) Hypercall(fn func()) {
	tr, rid := h.tracer()
	start := tr.Now()
	perf.Charge(h.Env, perf.CostHypercall)
	tr.Span(rid, "hv", trace.LayerHV, "hypercall", start, tr.Now())
	fn()
}
