package hv

import (
	"bytes"
	"strings"
	"testing"

	"paradice/internal/grant"
	"paradice/internal/iommu"
	"paradice/internal/mem"
	"paradice/internal/sim"
)

// guestRig is a minimal guest: a VM, a frame allocator over its RAM, a
// process page table, and a registered grant table page.
type guestRig struct {
	vm     *VM
	next   mem.GuestPhys
	pt     *mem.PageTable
	grants *grant.Table
}

func newGuestRig(t testing.TB, h *Hypervisor, name string) *guestRig {
	t.Helper()
	vm, err := h.CreateVM(name, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	g := &guestRig{vm: vm}
	alloc := func() (mem.GuestPhys, error) {
		gpa := g.next
		g.next += mem.PageSize
		if uint64(gpa) >= vm.RAM {
			t.Fatal("guest rig out of RAM")
		}
		var zero [mem.PageSize]byte
		return gpa, vm.Space.Write(gpa, zero[:])
	}
	pt, err := mem.NewPageTable(vm.Space, alloc)
	if err != nil {
		t.Fatal(err)
	}
	g.pt = pt
	grantGPA, _ := alloc()
	if err := h.RegisterGrantTable(vm, grantGPA); err != nil {
		t.Fatal(err)
	}
	g.grants = grant.NewTable(&grant.GuestAccessor{Space: vm.Space, GPA: grantGPA})
	return g
}

// mapUserPage backs a user VA with a fresh guest frame.
func (g *guestRig) mapUserPage(t testing.TB, va mem.GuestVirt) mem.GuestPhys {
	t.Helper()
	gpa := g.next
	g.next += mem.PageSize
	if err := g.pt.Map(va, gpa, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	return gpa
}

func (g *guestRig) user() *mem.VirtSpace {
	return &mem.VirtSpace{PT: g.pt, Space: g.vm.Space}
}

func TestCreateVMBacksRAM(t *testing.T) {
	h := New(sim.NewEnv(), 64<<20)
	vm, err := h.CreateVM("g1", 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Space.WriteU64(0x1000, 42); err != nil {
		t.Fatal(err)
	}
	v, err := vm.Space.ReadU64(0x1000)
	if err != nil || v != 42 {
		t.Fatalf("RAM roundtrip: %d, %v", v, err)
	}
	// Past end of RAM: unmapped.
	if err := vm.Space.WriteU64(mem.GuestPhys(vm.RAM), 1); err == nil {
		t.Fatal("write past RAM end succeeded")
	}
}

func TestInterruptDeliveryLatency(t *testing.T) {
	env := sim.NewEnv()
	h := New(env, 64<<20)
	vm, _ := h.CreateVM("g1", 4<<20)
	var firedAt sim.Time = -1
	vm.RegisterISR(1, func() { firedAt = env.Now() })
	env.RunFunc("sender", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		h.SendInterrupt(vm, 1)
	})
	want := sim.Time(10 * sim.Microsecond).Add(16*sim.Microsecond + 400*sim.Nanosecond)
	if firedAt != want {
		t.Fatalf("ISR at %v, want %v", firedAt, want)
	}
	// Unregistered vector: no panic.
	h.SendInterrupt(vm, 99)
	env.Run()
}

func TestSharePageBothSidesSeeBytes(t *testing.T) {
	h := New(sim.NewEnv(), 64<<20)
	a, _ := h.CreateVM("a", 4<<20)
	b, _ := h.CreateVM("b", 4<<20)
	ownGPA := mem.GuestPhys(0x3000)
	peerGPA, err := h.SharePage(a, ownGPA, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Space.Write(ownGPA+8, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if err := b.Space.Read(peerGPA+8, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "ping" {
		t.Fatalf("peer read %q", got)
	}
	if err := b.Space.Write(peerGPA+100, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	if err := a.Space.Read(ownGPA+100, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "pong" {
		t.Fatalf("owner read %q", got)
	}
}

func TestCopyToGuestValidated(t *testing.T) {
	h := New(sim.NewEnv(), 64<<20)
	g := newGuestRig(t, h, "guest")
	drv, _ := h.CreateVM("driver", 4<<20)
	_ = drv
	va := mem.GuestVirt(0x40000000)
	g.mapUserPage(t, va)
	ref, err := g.grants.Declare(g.pt.Root(), []grant.Op{{Kind: grant.KindCopyTo, VA: va, Len: 128}})
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("driver data for the guest")
	if err := h.CopyToGuest(g.vm, ref, va+4, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := g.user().Read(va+4, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("guest sees %q", got)
	}
}

func TestCopyFromGuestValidated(t *testing.T) {
	h := New(sim.NewEnv(), 64<<20)
	g := newGuestRig(t, h, "guest")
	va := mem.GuestVirt(0x40000000)
	g.mapUserPage(t, va)
	if err := g.user().Write(va, []byte("app ioctl struct")); err != nil {
		t.Fatal(err)
	}
	ref, _ := g.grants.Declare(g.pt.Root(), []grant.Op{{Kind: grant.KindCopyFrom, VA: va, Len: 64}})
	buf := make([]byte, 16)
	if err := h.CopyFromGuest(g.vm, ref, va, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "app ioctl struct" {
		t.Fatalf("driver got %q", buf)
	}
}

// The strict runtime checks of §4.1: a compromised driver VM asking to
// write outside the declared range — e.g. into guest kernel memory — is
// refused.
func TestCompromisedDriverCopyRejected(t *testing.T) {
	h := New(sim.NewEnv(), 64<<20)
	g := newGuestRig(t, h, "guest")
	va := mem.GuestVirt(0x40000000)
	g.mapUserPage(t, va)
	g.mapUserPage(t, 0x40001000) // adjacent page: mapped but not granted
	ref, _ := g.grants.Declare(g.pt.Root(), []grant.Op{{Kind: grant.KindCopyTo, VA: va, Len: 256}})
	attacks := []struct {
		name string
		err  error
	}{
		{"overflow past grant", h.CopyToGuest(g.vm, ref, va+200, make([]byte, 100))},
		{"different page", h.CopyToGuest(g.vm, ref, 0x40001000, make([]byte, 8))},
		{"wrong direction", h.CopyFromGuest(g.vm, ref, va, make([]byte, 8))},
		{"forged ref", h.CopyToGuest(g.vm, ref+7, va, make([]byte, 8))},
	}
	for _, a := range attacks {
		if a.err == nil {
			t.Errorf("%s: succeeded, want denial", a.name)
		}
	}
	// The legitimate operation still works.
	if err := h.CopyToGuest(g.vm, ref, va, make([]byte, 256)); err != nil {
		t.Fatalf("legitimate copy rejected: %v", err)
	}
}

func TestMapToGuestAndUnmap(t *testing.T) {
	h := New(sim.NewEnv(), 64<<20)
	g := newGuestRig(t, h, "guest")
	drv, _ := h.CreateVM("driver", 4<<20)
	// Driver-side page with a marker.
	pfn := mem.GuestPhys(0x5000)
	if err := drv.Space.Write(pfn, []byte("mapped straight from the driver VM")); err != nil {
		t.Fatal(err)
	}
	va := mem.GuestVirt(0x50000000)
	// The CVD frontend pre-creates intermediate levels (§5.2).
	if err := g.pt.EnsureIntermediates(va); err != nil {
		t.Fatal(err)
	}
	ref, _ := g.grants.Declare(g.pt.Root(), []grant.Op{{Kind: grant.KindMapPage, VA: va, Len: mem.PageSize}})
	if err := h.MapToGuest(g.vm, ref, va, drv, pfn); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 34)
	if err := g.user().Read(va, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "mapped straight from the driver VM" {
		t.Fatalf("guest sees %q", got)
	}
	// Guest writes flow back to the same physical page.
	if err := g.user().Write(va+100, []byte("guest-write")); err != nil {
		t.Fatal(err)
	}
	check := make([]byte, 11)
	if err := drv.Space.Read(pfn+100, check); err != nil {
		t.Fatal(err)
	}
	if string(check) != "guest-write" {
		t.Fatalf("driver sees %q", check)
	}
	// Unmap: guest kernel clears its PT first, then the driver informs the
	// hypervisor, which destroys only the EPT entry.
	if err := g.pt.Unmap(va); err != nil {
		t.Fatal(err)
	}
	if err := h.UnmapFromGuest(g.vm, ref, va); err != nil {
		t.Fatal(err)
	}
	if err := g.user().Read(va, got); err == nil {
		t.Fatal("read after unmap succeeded")
	}
	if err := h.UnmapFromGuest(g.vm, ref, va); err == nil {
		t.Fatal("double unmap succeeded")
	}
}

func TestMapToGuestRequiresIntermediates(t *testing.T) {
	h := New(sim.NewEnv(), 64<<20)
	g := newGuestRig(t, h, "guest")
	drv, _ := h.CreateVM("driver", 4<<20)
	va := mem.GuestVirt(0x60000000)
	ref, _ := g.grants.Declare(g.pt.Root(), []grant.Op{{Kind: grant.KindMapPage, VA: va, Len: mem.PageSize}})
	// Without EnsureIntermediates the hypervisor must refuse (it only ever
	// fixes the last level) and must roll its EPT entry back.
	before := g.vm.EPT.Count()
	if err := h.MapToGuest(g.vm, ref, va, drv, 0x5000); err == nil {
		t.Fatal("map without intermediates succeeded")
	}
	if g.vm.EPT.Count() != before {
		t.Fatal("failed map leaked an EPT entry")
	}
}

func TestMapToGuestUngrantedRejected(t *testing.T) {
	h := New(sim.NewEnv(), 64<<20)
	g := newGuestRig(t, h, "guest")
	drv, _ := h.CreateVM("driver", 4<<20)
	va := mem.GuestVirt(0x60000000)
	if err := g.pt.EnsureIntermediates(va); err != nil {
		t.Fatal(err)
	}
	ref, _ := g.grants.Declare(g.pt.Root(), []grant.Op{{Kind: grant.KindMapPage, VA: va, Len: mem.PageSize}})
	// A compromised driver VM tries to map over a different VA (e.g. the
	// guest kernel's memory).
	if err := h.MapToGuest(g.vm, ref, va+mem.PageSize, drv, 0x5000); err == nil {
		t.Fatal("out-of-grant map succeeded")
	}
}

func TestProtectedRegionLifecycle(t *testing.T) {
	h := New(sim.NewEnv(), 64<<20)
	g := newGuestRig(t, h, "guest")
	drv, _ := h.CreateVM("driver", 4<<20)
	dom := iommu.NewDomain("gpu")
	region := h.CreateRegion(g.vm)
	pfn := mem.GuestPhys(0x8000)
	// Driver still owns the page: write something first.
	if err := drv.Space.Write(pfn, []byte("secret texture")); err != nil {
		t.Fatal(err)
	}
	if err := h.RegionAddSysPage(dom, region, drv, pfn); err != nil {
		t.Fatal(err)
	}
	// The driver VM CPU can no longer read it (§4.2 attack two).
	if err := drv.Space.Read(pfn, make([]byte, 4)); err == nil {
		t.Fatal("driver VM read protected page")
	}
	if err := drv.Space.Write(pfn, []byte{1}); err == nil {
		t.Fatal("driver VM wrote protected page")
	}
	// The device reaches it only while the region is active (attack three).
	if _, err := dom.Translate(iommu.BusAddr(pfn), mem.PermRead); err == nil {
		t.Fatal("device reached region page before switch")
	}
	if err := h.RegionSwitch(dom, region); err != nil {
		t.Fatal(err)
	}
	spa, err := dom.Translate(iommu.BusAddr(pfn), mem.PermRead)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 14)
	if err := h.Phys.Read(spa, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "secret texture" {
		t.Fatalf("device DMA sees %q", got)
	}
	// Removing the page zeroes it and restores driver access.
	if err := h.RegionRemoveSysPage(dom, region, drv, pfn); err != nil {
		t.Fatal(err)
	}
	if err := drv.Space.Read(pfn, got); err != nil {
		t.Fatalf("driver access not restored: %v", err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("page not zeroed before release")
		}
	}
}

// Attack one of §4.2: the malicious guest cannot use the hypervisor API to
// reach a protected region owned by another guest.
func TestRegionOwnershipEnforcedOnMap(t *testing.T) {
	h := New(sim.NewEnv(), 64<<20)
	victim := newGuestRig(t, h, "victim")
	attacker := newGuestRig(t, h, "attacker")
	drv, _ := h.CreateVM("driver", 4<<20)
	dom := iommu.NewDomain("gpu")
	region := h.CreateRegion(victim.vm)
	pfn := mem.GuestPhys(0x8000)
	if err := h.RegionAddSysPage(dom, region, drv, pfn); err != nil {
		t.Fatal(err)
	}
	// The compromised driver VM tries to map the victim's page into the
	// attacker (with a perfectly valid grant from the attacker's side).
	va := mem.GuestVirt(0x50000000)
	if err := attacker.pt.EnsureIntermediates(va); err != nil {
		t.Fatal(err)
	}
	ref, _ := attacker.grants.Declare(attacker.pt.Root(), []grant.Op{{Kind: grant.KindMapPage, VA: va, Len: mem.PageSize}})
	err := h.MapToGuest(attacker.vm, ref, va, drv, pfn)
	if err == nil || !strings.Contains(err.Error(), "protected region") {
		t.Fatalf("cross-guest map: err = %v, want protected-region denial", err)
	}
	// Mapping into the owner works.
	if err := victim.pt.EnsureIntermediates(va); err != nil {
		t.Fatal(err)
	}
	vref, _ := victim.grants.Declare(victim.pt.Root(), []grant.Op{{Kind: grant.KindMapPage, VA: va, Len: mem.PageSize}})
	if err := h.MapToGuest(victim.vm, vref, va, drv, pfn); err != nil {
		t.Fatalf("owner map failed: %v", err)
	}
}

func TestAssignDeviceMapsBARsAndDMA(t *testing.T) {
	h := New(sim.NewEnv(), 64<<20)
	drv, _ := h.CreateVM("driver", 4<<20)
	// A fake device BAR: two pages of "registers/VRAM".
	barAlloc := h.Phys.NewAllocator("dev-bar", 0x2000_0000, 2*mem.PageSize)
	barBase, _ := barAlloc.AllocPages(2)
	dom, gpas, err := h.AssignDevice(drv, "fakedev", []BAR{{Name: "bar0", SPA: barBase, Size: 2 * mem.PageSize}})
	if err != nil {
		t.Fatal(err)
	}
	if len(gpas) != 1 {
		t.Fatalf("got %d BAR GPAs", len(gpas))
	}
	// Driver VM can touch the BAR through its guest-physical space.
	if err := drv.Space.Write(gpas[0]+16, []byte("reg")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 3)
	if err := h.Phys.Read(barBase+16, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "reg" {
		t.Fatalf("BAR write landed as %q", got)
	}
	// Device can DMA anywhere in driver VM RAM (bus = driver GPA).
	dma := &iommu.DMA{Dom: dom, Phys: h.Phys}
	if err := dma.Write(0x1000, []byte("dma!")); err != nil {
		t.Fatal(err)
	}
	if err := drv.Space.Read(0x1000, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "dma" {
		t.Fatalf("DMA landed as %q", got)
	}
	// But not outside it.
	if err := dma.Write(iommu.BusAddr(drv.RAM), []byte{1}); err == nil {
		t.Fatal("DMA past driver VM RAM succeeded")
	}
}

func TestGate(t *testing.T) {
	h := New(sim.NewEnv(), 64<<20)
	g := NewGate("gpu-mc")
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
	g.Revoke()
	if err := g.Check(); err == nil {
		t.Fatal("revoked gate passed Check")
	}
	ran := false
	h.HypercallAccess(g, func() { ran = true })
	if !ran {
		t.Fatal("hypercall access did not run")
	}
}

func TestDeviceROPageStopsDeviceWrites(t *testing.T) {
	h := New(sim.NewEnv(), 64<<20)
	g := newGuestRig(t, h, "guest")
	drv, _ := h.CreateVM("driver", 4<<20)
	dom := iommu.NewDomain("gpu")
	region := h.CreateRegion(g.vm)
	pfn := mem.GuestPhys(0x9000)
	if err := h.RegionAddSysPageDeviceRO(dom, region, drv, pfn); err != nil {
		t.Fatal(err)
	}
	if err := h.RegionSwitch(dom, region); err != nil {
		t.Fatal(err)
	}
	dma := &iommu.DMA{Dom: dom, Phys: h.Phys}
	if _, err := dma.ReadU64(iommu.BusAddr(pfn)); err != nil {
		t.Fatalf("device read of RO page: %v", err)
	}
	if err := dma.WriteU64(iommu.BusAddr(pfn), 1); err == nil {
		t.Fatal("device wrote an RO page")
	}
	// The driver VM keeps CPU read/write (emulated write-only semantics).
	if err := drv.Space.WriteU64(pfn, 7); err != nil {
		t.Fatal(err)
	}
}
