package hv

import (
	"fmt"

	"paradice/internal/faults"
	"paradice/internal/grant"
	"paradice/internal/mem"
	"paradice/internal/perf"
	"paradice/internal/sim"
	"paradice/internal/trace"
)

// This file implements the hypervisor API for the two kinds of driver
// memory operations (§5.2): copying between driver-VM buffers and guest
// process memory, and mapping driver-VM pages into guest process address
// spaces. Every operation is validated against the guest's grant table
// first (§4.1) — the driver VM is untrusted, so nothing it claims is
// believed without a matching declaration from the guest's CVD frontend.

func (vm *VM) grantAccessor() (*grant.PhysAccessor, error) {
	if vm.grantSPA == 0 {
		return nil, fmt.Errorf("hv: %s has no registered grant table", vm.Name)
	}
	return &grant.PhysAccessor{Phys: vm.hv.Phys, SPA: vm.grantSPA}, nil
}

// validate checks the request against the guest's grant table and returns
// the guest page table loaded from the declared root.
func (h *Hypervisor) validate(guest *VM, ref uint32, kind grant.Kind, va mem.GuestVirt, n uint64) (*mem.PageTable, error) {
	acc, err := guest.grantAccessor()
	if err != nil {
		return nil, err
	}
	tr, rid := h.tracer()
	vstart := tr.Now()
	// Grant-validation cache (tlb.go): when the frontend's batched declare
	// primed this reference's vector, the covering check is a cached-vector
	// replay at CostTLBHit instead of a shared-page scan at CostGrantDeclare.
	// Never primed while Config.GrantBatch is off, so the dormant charge and
	// event sequence below is byte-identical to the seed. The injected-fault
	// points still run in their exact dormant order — and BEFORE the cached
	// result is used, so a fault schedule denies a cached validation exactly
	// as it denies a scanned one.
	var cachedRoot mem.GuestPhys
	cacheHit := false
	if guest.grantCache != nil {
		cachedRoot, cacheHit = guest.grantCache.lookup(ref, kind, va, n)
	}
	if cacheHit {
		perf.Charge(h.Env, perf.CostTLBHit)
	} else {
		perf.Charge(h.Env, perf.CostGrantDeclare)
	}
	tr.Span(rid, "hv", trace.LayerHV, "grant-validate", vstart, tr.Now())
	tr.Add("hv.grant.validations", 1)
	if faults.Point(h.Env, "grant.validate") != nil {
		// Injected validation failure: behave exactly as if no covering
		// grant entry existed.
		return nil, &grant.DeniedError{Ref: ref, Kind: kind, VA: va, Len: n}
	}
	if faults.Point(h.Env, "grant.validate.skip") != nil {
		// Deliberately WEAKENED check (see the faults package doc): accept
		// any entry with a matching reference, ignoring kind and range.
		// Exists solely so the stress harness can prove it catches a broken
		// grant check; never armed outside that self-test.
		if ptRoot, ok, ferr := grant.FindRef(acc, ref); ferr == nil && ok {
			return mem.LoadPageTable(guest.Space, ptRoot), nil
		}
	}
	if cacheHit {
		tr.Add("hv.grant.cache.hit", 1)
		return mem.LoadPageTable(guest.Space, cachedRoot), nil
	}
	tr.Add("hv.grant.scans", 1)
	ptRoot, err := grant.Validate(acc, ref, kind, va, n)
	if err != nil {
		return nil, err
	}
	return mem.LoadPageTable(guest.Space, ptRoot), nil
}

// CopyToGuest copies src into the guest process's memory at dst, performing
// the per-page two-level translation walk of §5.2. The request must be
// covered by a copy-to-user grant under ref.
func (h *Hypervisor) CopyToGuest(guest *VM, ref uint32, dst mem.GuestVirt, src []byte) error {
	if d := faults.Point(h.Env, "hv.copy"); d != nil {
		return d.Error()
	}
	pt, err := h.validate(guest, ref, grant.KindCopyTo, dst, uint64(len(src)))
	if err != nil {
		return err
	}
	return h.copyGuest(guest, pt, dst, src, true)
}

// CopyFromGuest fills buf from the guest process's memory at src under a
// copy-from-user grant.
func (h *Hypervisor) CopyFromGuest(guest *VM, ref uint32, src mem.GuestVirt, buf []byte) error {
	if d := faults.Point(h.Env, "hv.copy"); d != nil {
		return d.Error()
	}
	pt, err := h.validate(guest, ref, grant.KindCopyFrom, src, uint64(len(buf)))
	if err != nil {
		return err
	}
	return h.copyGuest(guest, pt, src, buf, false)
}

// copyGuest walks the guest page tables in software, then the EPT, page by
// page — "contiguous pages in the VM address spaces are not necessarily
// contiguous in the system physical address space" (§5.2). With the
// software TLB armed it delegates to copyGuestTLB; the dormant body below
// is byte-identical to the seed, single upfront charge included.
func (h *Hypervisor) copyGuest(guest *VM, pt *mem.PageTable, va mem.GuestVirt, buf []byte, write bool) error {
	if guest.tlb != nil {
		return h.copyGuestTLB(guest, pt, va, buf, write)
	}
	npages := int(mem.PagesSpanned(uint64(va), uint64(len(buf))))
	tr, rid := h.tracer()
	cstart := tr.Now()
	perf.Charge(h.Env, perf.Copy(len(buf), npages))
	// The copy span covers the per-page guest-page-table walk + EPT walk +
	// physical transfer of §5.2 — they are one charge in the cost model.
	tr.Span(rid, "hv", trace.LayerHV, "copy", cstart, tr.Now())
	tr.Add("hv.copy.ops", 1)
	tr.Add("hv.copy.bytes", uint64(len(buf)))
	addr := uint64(va)
	for len(buf) > 0 {
		access := mem.PermRead
		if write {
			access = mem.PermWrite
		}
		gpa, err := pt.Walk(mem.GuestVirt(addr), access)
		if err != nil {
			return err
		}
		// Privileged EPT walk: presence check only.
		spa, err := guest.EPT.Translate(gpa, 0)
		if err != nil {
			return err
		}
		n := mem.PageSize - mem.PageOffset(addr)
		if n > uint64(len(buf)) {
			n = uint64(len(buf))
		}
		if write {
			err = h.Phys.Write(spa, buf[:n])
		} else {
			err = h.Phys.Read(spa, buf[:n])
		}
		if err != nil {
			return err
		}
		addr += n
		buf = buf[n:]
	}
	return nil
}

// copyGuestTLB is the copy path with the software TLB armed: each page's
// translation is probed in the cache first — a hit charges CostTLBHit, a
// miss performs and charges the full walk (CostCopyPerPage) and inserts the
// proven translation. Bytes are copied page by page as translations resolve,
// so a copy that faults on page k leaves pages 0..k-1 as a deterministic
// destination prefix and charges exactly the k hits/misses it performed —
// and the faulting page, whose walk never succeeded, is never inserted. The
// per-byte memcpy share is charged once at the end from the bytes actually
// moved, mirroring the dormant perf.Copy breakdown exactly: a cold armed
// copy that succeeds costs the same as a dormant one.
func (h *Hypervisor) copyGuestTLB(guest *VM, pt *mem.PageTable, va mem.GuestVirt, buf []byte, write bool) error {
	tr, rid := h.tracer()
	cstart := tr.Now()
	access := mem.PermRead
	if write {
		access = mem.PermWrite
	}
	addr := uint64(va)
	bytesDone := 0
	var copyErr error
	for len(buf) > 0 {
		vpage := mem.GuestVirt(mem.PageBase(addr))
		var spa mem.SysPhys
		if spaPage, hit := guest.tlb.lookup(pt.Root(), vpage, access); hit {
			perf.Charge(h.Env, perf.CostTLBHit)
			tr.Add("hv.tlb.hit", 1)
			spa = spaPage + mem.SysPhys(mem.PageOffset(addr))
		} else {
			perf.Charge(h.Env, perf.CostCopyPerPage)
			tr.Add("hv.tlb.miss", 1)
			gpa, err := pt.Walk(mem.GuestVirt(addr), access)
			if err != nil {
				copyErr = err
				break
			}
			// Privileged EPT walk: presence check only.
			spa, err = guest.EPT.Translate(gpa, 0)
			if err != nil {
				copyErr = err
				break
			}
			guest.tlb.insert(pt.Root(), vpage, mem.SysPhys(mem.PageBase(uint64(spa))), access)
		}
		n := mem.PageSize - mem.PageOffset(addr)
		if n > uint64(len(buf)) {
			n = uint64(len(buf))
		}
		var err error
		if write {
			err = h.Phys.Write(spa, buf[:n])
		} else {
			err = h.Phys.Read(spa, buf[:n])
		}
		if err != nil {
			copyErr = err
			break
		}
		addr += n
		bytesDone += int(n)
		buf = buf[n:]
	}
	perf.Charge(h.Env, sim.Duration(bytesDone)*perf.CostCopyPerKB/1024)
	tr.Span(rid, "hv", trace.LayerHV, "copy", cstart, tr.Now())
	tr.Add("hv.copy.ops", 1)
	tr.Add("hv.copy.bytes", uint64(bytesDone))
	return copyErr
}

// MapToGuest maps the driver VM's page frame pfn into the guest process at
// va: the hypervisor picks an unused guest-physical page, fixes the EPT,
// and fixes the last level of the guest page table (the CVD frontend has
// pre-created the intermediate levels; §5.2). The request must be covered
// by a map grant. If the page belongs to a protected memory region, the
// region's owner must be this guest — the first attack of §4.2.
func (h *Hypervisor) MapToGuest(guest *VM, ref uint32, va mem.GuestVirt, driver *VM, pfn mem.GuestPhys) error {
	if !mem.PageAligned(uint64(va)) || !mem.PageAligned(uint64(pfn)) {
		return fmt.Errorf("hv: unaligned MapToGuest %v -> %v", pfn, va)
	}
	if d := faults.Point(h.Env, "hv.map"); d != nil {
		return d.Error()
	}
	pt, err := h.validate(guest, ref, grant.KindMapPage, va, mem.PageSize)
	if err != nil {
		return err
	}
	spa, err := driver.EPT.Translate(pfn, 0)
	if err != nil {
		return err
	}
	if region, prot := h.protPages[mem.Frame(uint64(spa))]; prot {
		if r := h.regions[region]; r == nil || r.Owner != guest.ID {
			return fmt.Errorf("hv: page %v belongs to another guest's protected region", pfn)
		}
	}
	tr, rid := h.tracer()
	mstart := tr.Now()
	perf.Charge(h.Env, perf.CostMapPage)
	tr.Span(rid, "hv", trace.LayerHV, "map-page", mstart, tr.Now())
	tr.Add("hv.map.pages", 1)
	gpa, err := guest.EPT.FindUnusedRange(mapWindowLo, mapWindowHi, 1)
	if err != nil {
		return err
	}
	if err := guest.EPT.Map(gpa, spa, mem.PermRW); err != nil {
		return err
	}
	if err := pt.SetLeaf(va, gpa, mem.PermRW); err != nil {
		_ = guest.EPT.Unmap(gpa)
		return err
	}
	h.mapped[mapKey{guest.ID, pt.Root(), va}] = gpa
	return nil
}

// UnmapFromGuest destroys the EPT mapping created by MapToGuest. Only the
// EPT entry is touched: the guest kernel has already destroyed its own
// page-table entry before informing the driver (§5.2).
func (h *Hypervisor) UnmapFromGuest(guest *VM, ref uint32, va mem.GuestVirt) error {
	if d := faults.Point(h.Env, "hv.unmap"); d != nil {
		return d.Error()
	}
	pt, err := h.validate(guest, ref, grant.KindUnmap, va, mem.PageSize)
	if err != nil {
		return err
	}
	key := mapKey{guest.ID, pt.Root(), va}
	gpa, ok := h.mapped[key]
	if !ok {
		return fmt.Errorf("hv: no hypervisor mapping at %v to unmap", va)
	}
	delete(h.mapped, key)
	tr, rid := h.tracer()
	ustart := tr.Now()
	perf.Charge(h.Env, perf.CostMapPage)
	tr.Span(rid, "hv", trace.LayerHV, "unmap-page", ustart, tr.Now())
	tr.Add("hv.unmap.pages", 1)
	return guest.EPT.Unmap(gpa)
}
