package hv

import (
	"paradice/internal/grant"
	"paradice/internal/mem"
)

// This file implements the hypervisor's deterministic software TLB and the
// grant-validation cache behind the batched grant hypercalls — the two
// per-request sublinearity optimizations of this reproduction.
//
// §5.2 prices every hypervisor-assisted memory operation as per-page
// two-level walks (guest page table, then EPT). A real hypervisor's walks are
// served by the hardware TLB and paging-structure caches after the first
// touch; this software TLB models that: a per-VM cache of
// guest-VA→system-PA translations plus permission bits, keyed by
// (VM, address-space epoch, page), consulted by copyGuest and MapGuestBuffer
// before falling back to the full walk. A hit charges perf.CostTLBHit
// instead of the walk's share of the per-page cost.
//
// Correctness rests entirely on invalidation being deterministic and
// complete, because a stale translation would break the isolation argument
// of §4/§5.2 (a revoked or remapped page served from the cache). Every
// mutation of either translation level reaches the cache synchronously:
//
//   - guest page-table leaf edits (mem.GuestSpace.OnPTEdit, fired by
//     PageTable.SetLeaf/Unmap in the same instant the PTE word changes)
//     invalidate the single (root, page) entry;
//   - any EPT mutation (mem.EPT.OnChange, fired by Map/Unmap/SetPerm)
//     flushes the whole VM's cache by bumping its epoch — EPT changes are
//     rare and page-attributable only with a reverse map, so wholesale
//     flush is the deterministic choice;
//   - grant revocation (grant.Table.OnRevoke) drops the revoked reference
//     from the grant-validation cache;
//   - RestartDriverVM flushes every VM's translation and grant caches.
//
// The grant-validation cache models Xen-style batched grant operations: the
// frontend's Declare hands the hypervisor its whole entry vector in one
// crossing (grant.Table.OnDeclare), so the backend-side validation of a
// slot's grant set becomes a cached-vector check (perf.CostTLBHit) instead
// of a shared-page scan per memory operation (perf.CostGrantDeclare).

// tlbKey identifies one cached translation: the address space (the issuing
// process's page-table root) and the virtual page.
type tlbKey struct {
	root  mem.GuestPhys
	vpage mem.GuestVirt
}

// tlbEntry is one cached translation: the system-physical page the virtual
// page resolved to, and the union of access permissions that full walks have
// proven for it. A lookup whose access is not covered by perm misses, so a
// write through a page only ever walked for read still takes (and faults on)
// the full walk.
type tlbEntry struct {
	spaPage mem.SysPhys
	perm    mem.Perm
}

// vmTLB is one VM's software TLB. epoch counts wholesale flushes; a flush
// bumps it and replaces the entry map, which is equivalent to tagging every
// entry with the epoch it was inserted under (the issue's (VM, epoch, page)
// key) without the lazy sweep.
type vmTLB struct {
	epoch   uint64
	entries map[tlbKey]tlbEntry
}

func newVMTLB() *vmTLB {
	return &vmTLB{entries: make(map[tlbKey]tlbEntry)}
}

// lookup returns the cached system-physical page for (root, vpage) if the
// entry's proven permissions cover access.
func (t *vmTLB) lookup(root mem.GuestPhys, vpage mem.GuestVirt, access mem.Perm) (mem.SysPhys, bool) {
	e, ok := t.entries[tlbKey{root, vpage}]
	if !ok || !e.perm.Allows(access) {
		return 0, false
	}
	return e.spaPage, true
}

// insert records a translation proven by a successful full walk with the
// given access, OR-upgrading the permissions of an existing entry. A
// successful write walk proves read too (present pages are always readable
// in this page-table model).
func (t *vmTLB) insert(root mem.GuestPhys, vpage mem.GuestVirt, spaPage mem.SysPhys, access mem.Perm) {
	perm := mem.PermRead
	if access&mem.PermWrite != 0 {
		perm = mem.PermRW
	}
	k := tlbKey{root, vpage}
	if e, ok := t.entries[k]; ok {
		perm |= e.perm
	}
	t.entries[k] = tlbEntry{spaPage: spaPage, perm: perm}
}

// invalidatePage drops the entry for one (root, page) and reports whether
// one was present.
func (t *vmTLB) invalidatePage(root mem.GuestPhys, vpage mem.GuestVirt) bool {
	k := tlbKey{root, vpage}
	if _, ok := t.entries[k]; !ok {
		return false
	}
	delete(t.entries, k)
	return true
}

// flush drops every entry and enters the next address-space epoch. Returns
// the number of entries dropped.
func (t *vmTLB) flush() int {
	n := len(t.entries)
	t.epoch++
	t.entries = make(map[tlbKey]tlbEntry)
	return n
}

// grantDecl is one cached grant declaration: the vector the frontend handed
// the hypervisor in its batched declare crossing.
type grantDecl struct {
	ptRoot mem.GuestPhys
	ops    []grant.Op
}

// grantCache is one VM's cache of declared grant vectors, keyed by
// reference. Primed by grant.Table.OnDeclare (only ever after a fully
// successful Declare — the rolled-back table-full path never fires the
// hook), dropped by OnRevoke and on driver-VM restart.
type grantCache struct {
	decls map[uint32]grantDecl
}

func newGrantCache() *grantCache {
	return &grantCache{decls: make(map[uint32]grantDecl)}
}

func (c *grantCache) prime(ref uint32, ptRoot mem.GuestPhys, ops []grant.Op) {
	c.decls[ref] = grantDecl{ptRoot: ptRoot, ops: append([]grant.Op(nil), ops...)}
}

func (c *grantCache) drop(ref uint32) {
	delete(c.decls, ref)
}

func (c *grantCache) flush() {
	c.decls = make(map[uint32]grantDecl)
}

// lookup replays grant.Validate's exact covering check against the cached
// vector: an op with the requested kind (unmap requests are additionally
// satisfied by a map-page op) whose range covers [va, va+n).
func (c *grantCache) lookup(ref uint32, kind grant.Kind, va mem.GuestVirt, n uint64) (mem.GuestPhys, bool) {
	if ref == 0 {
		return 0, false
	}
	d, ok := c.decls[ref]
	if !ok {
		return 0, false
	}
	for _, op := range d.ops {
		if op.Kind != kind && !(kind == grant.KindUnmap && op.Kind == grant.KindMapPage) {
			continue
		}
		if va >= op.VA && uint64(va)+n <= uint64(op.VA)+op.Len && uint64(va)+n >= uint64(va) {
			return d.ptRoot, true
		}
	}
	return 0, false
}

// EnableTLB arms the software TLB: every existing and future VM gets a
// per-VM translation cache with its invalidation hooks wired. Idempotent.
func (h *Hypervisor) EnableTLB() {
	if h.tlbEnabled {
		return
	}
	h.tlbEnabled = true
	for _, vm := range h.vms {
		h.armTLB(vm)
	}
}

// TLBEnabled reports whether the software TLB is armed.
func (h *Hypervisor) TLBEnabled() bool { return h.tlbEnabled }

// armTLB creates vm's TLB and subscribes it to both translation levels.
func (h *Hypervisor) armTLB(vm *VM) {
	if vm.tlb != nil {
		return
	}
	vm.tlb = newVMTLB()
	vm.Space.OnPTEdit = func(root mem.GuestPhys, va mem.GuestVirt) {
		if vm.tlb.invalidatePage(root, va) {
			tr, _ := h.tracer()
			tr.Add("hv.tlb.invalidate", 1)
		}
	}
	vm.EPT.OnChange = func() {
		if n := vm.tlb.flush(); n > 0 {
			tr, _ := h.tracer()
			tr.Add("hv.tlb.invalidate", uint64(n))
		}
	}
}

// EnableGrantCache arms the grant-validation cache for a guest VM's grant
// table: successful declarations prime the cache (the batched declare
// crossing), revocations drop their reference. Idempotent per (VM, table).
func (h *Hypervisor) EnableGrantCache(vm *VM, t *grant.Table) {
	if vm.grantCache == nil {
		vm.grantCache = newGrantCache()
	}
	if vm.grantTables == nil {
		vm.grantTables = make(map[*grant.Table]bool)
	}
	if vm.grantTables[t] {
		return
	}
	vm.grantTables[t] = true
	t.OnDeclare(func(ref uint32, ptRoot mem.GuestPhys, ops []grant.Op) {
		vm.grantCache.prime(ref, ptRoot, ops)
	})
	t.OnRevoke(func(ref uint32) {
		vm.grantCache.drop(ref)
	})
}

// FlushTranslationCaches empties every VM's software TLB and grant-
// validation cache. RestartDriverVM calls this: the restart is the one
// architectural event that invalidates everything at once (backends die,
// mappings are torn down, the driver VM's address space is rebuilt), so the
// caches restart cold, exactly like the grant-map cache does.
func (h *Hypervisor) FlushTranslationCaches() {
	for _, vm := range h.vms {
		h.FlushVMTranslationCaches(vm)
	}
}

// FlushVMTranslationCaches empties ONE VM's software TLB and grant-validation
// cache. A planned handover calls this for the retiring predecessor driver VM
// only: its address space is going away, but the guest VMs' caches — guest
// page-table translations, grant vectors — describe guest state the handover
// never touched, and keeping them warm is half the point of handing over
// instead of restarting.
func (h *Hypervisor) FlushVMTranslationCaches(vm *VM) {
	if vm == nil {
		return
	}
	if vm.tlb != nil {
		if n := vm.tlb.flush(); n > 0 {
			tr, _ := h.tracer()
			tr.Add("hv.tlb.invalidate", uint64(n))
		}
	}
	if vm.grantCache != nil {
		vm.grantCache.flush()
	}
}
