package hv

// Tests for MapGuestBuffer / GuestMapping — the grant-map cache's substrate.
// The contract under test: a mapping is validated against the grant table
// exactly like an assisted copy, its EPT permission comes from the grant
// kind, and after Unmap (revocation) every access faults instead of reading
// stale memory.

import (
	"bytes"
	"testing"

	"paradice/internal/grant"
	"paradice/internal/iommu"
	"paradice/internal/mem"
	"paradice/internal/sim"
)

// bufRig maps a 3-page user buffer in a guest and declares one grant over it.
func bufRig(t *testing.T, kind grant.Kind) (*Hypervisor, *guestRig, *VM, mem.GuestVirt, uint32) {
	t.Helper()
	h := New(sim.NewEnv(), 64<<20)
	g := newGuestRig(t, h, "guest")
	driver, err := h.CreateVM("driver", 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	va := mem.GuestVirt(0x40000000)
	for i := 0; i < 3; i++ {
		g.mapUserPage(t, va+mem.GuestVirt(i)*mem.PageSize)
	}
	n := uint64(3 * mem.PageSize)
	ref, err := g.grants.Declare(g.pt.Root(), []grant.Op{{Kind: kind, VA: va, Len: n}})
	if err != nil {
		t.Fatal(err)
	}
	return h, g, driver, va, ref
}

func TestMapGuestBufferRoundTrip(t *testing.T) {
	h, g, driver, va, ref := bufRig(t, grant.KindCopyTo)
	m, err := h.MapGuestBuffer(g.vm, ref, grant.KindCopyTo, va, 3*mem.PageSize, driver)
	if err != nil {
		t.Fatal(err)
	}
	// Write through the mapping (the driver filling a guest read buffer),
	// straddling a page boundary.
	msg := bytes.Repeat([]byte("boundary"), 1024) // 8 KB
	at := va + mem.GuestVirt(mem.PageSize) - 100
	if err := m.Copy(at, msg, true); err != nil {
		t.Fatal(err)
	}
	// The bytes really landed in the guest process's memory.
	got := make([]byte, len(msg))
	if err := g.user().Read(at, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("mapped write did not reach guest memory")
	}
	// And read back through the mapping (copy-to-user grants allow both).
	back := make([]byte, len(msg))
	if err := m.Copy(at, back, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, msg) {
		t.Fatal("mapped read did not observe guest memory")
	}
	if !m.Covers(ref, grant.KindCopyTo, va, 3*mem.PageSize) {
		t.Fatal("mapping does not cover its own declared range")
	}
	if m.Covers(ref, grant.KindCopyFrom, va, 8) {
		t.Fatal("mapping covers the wrong kind")
	}
	if m.Covers(ref, grant.KindCopyTo, va+3*mem.GuestVirt(mem.PageSize), 1) {
		t.Fatal("mapping covers bytes past its declared range")
	}
}

// A copy-from-user grant authorizes reading the guest buffer only: the
// mapping's EPT permission is read-only and a write through it faults — the
// same denial an assisted copy in the wrong direction would get.
func TestMapGuestBufferWrongDirectionFaults(t *testing.T) {
	h, g, driver, va, ref := bufRig(t, grant.KindCopyFrom)
	if err := g.user().Write(va, []byte("guest-owned bytes")); err != nil {
		t.Fatal(err)
	}
	m, err := h.MapGuestBuffer(g.vm, ref, grant.KindCopyFrom, va, 3*mem.PageSize, driver)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 17)
	if err := m.Copy(va, got, false); err != nil {
		t.Fatal(err)
	}
	if string(got) != "guest-owned bytes" {
		t.Fatalf("read through copy-from mapping = %q", got)
	}
	if err := m.Copy(va, []byte("overwrite"), true); err == nil {
		t.Fatal("write through a read-only (copy-from-user) mapping did not fault")
	}
}

// Kind/range mismatches are caught at map time by grant validation, exactly
// as a mismatched copy would be.
func TestMapGuestBufferValidatesGrant(t *testing.T) {
	h, g, driver, va, ref := bufRig(t, grant.KindCopyTo)
	if _, err := h.MapGuestBuffer(g.vm, ref, grant.KindCopyFrom, va, mem.PageSize, driver); err == nil {
		t.Fatal("mapping under the wrong kind succeeded")
	}
	if _, err := h.MapGuestBuffer(g.vm, ref, grant.KindCopyTo, va, 4*mem.PageSize, driver); err == nil {
		t.Fatal("mapping past the granted range succeeded")
	}
	if err := g.grants.Revoke(ref); err != nil {
		t.Fatal(err)
	}
	if _, err := h.MapGuestBuffer(g.vm, ref, grant.KindCopyTo, va, mem.PageSize, driver); err == nil {
		t.Fatal("mapping under a revoked grant succeeded")
	}
}

// Unmap destroys the driver-EPT entries: subsequent access faults rather than
// silently reading memory the grant no longer covers. Idempotent.
func TestUnmappedBufferFaults(t *testing.T) {
	h, g, driver, va, ref := bufRig(t, grant.KindCopyTo)
	m, err := h.MapGuestBuffer(g.vm, ref, grant.KindCopyTo, va, 3*mem.PageSize, driver)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Copy(va, []byte("live"), true); err != nil {
		t.Fatal(err)
	}
	m.Unmap()
	if !m.Dead() {
		t.Fatal("mapping not dead after Unmap")
	}
	if err := m.Copy(va, make([]byte, 4), false); err == nil {
		t.Fatal("read through an unmapped buffer did not fault")
	}
	if err := m.Copy(va, []byte("late"), true); err == nil {
		t.Fatal("write through an unmapped buffer did not fault")
	}
	m.Unmap() // idempotent
}

// EnableDMA registers the mapped window in an IOMMU domain; Unmap revokes the
// registration, so a revoked mapping also stops being a DMA target.
func TestMapGuestBufferDMALifecycle(t *testing.T) {
	h, g, driver, va, ref := bufRig(t, grant.KindCopyTo)
	m, err := h.MapGuestBuffer(g.vm, ref, grant.KindCopyTo, va, 3*mem.PageSize, driver)
	if err != nil {
		t.Fatal(err)
	}
	dom := iommu.NewDomain("nic")
	if err := m.EnableDMA(dom); err != nil {
		t.Fatal(err)
	}
	if _, err := dom.Translate(m.DMABase(), mem.PermWrite); err != nil {
		t.Fatalf("device DMA into the mapped guest buffer faulted: %v", err)
	}
	m.Unmap()
	if _, err := dom.Translate(m.DMABase(), mem.PermWrite); err == nil {
		t.Fatal("device DMA still translates after the mapping was revoked")
	}
	// EnableDMA on a dead mapping is refused.
	if err := m.EnableDMA(dom); err == nil {
		t.Fatal("EnableDMA on a dead mapping succeeded")
	}
}
