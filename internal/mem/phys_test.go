package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPageHelpers(t *testing.T) {
	if PageBase(0x1234) != 0x1000 {
		t.Errorf("PageBase(0x1234) = %#x", PageBase(0x1234))
	}
	if PageOffset(0x1234) != 0x234 {
		t.Errorf("PageOffset(0x1234) = %#x", PageOffset(0x1234))
	}
	if Frame(0x1234) != 1 {
		t.Errorf("Frame(0x1234) = %d", Frame(0x1234))
	}
	if PagesSpanned(0xFFF, 2) != 2 {
		t.Errorf("PagesSpanned(0xFFF,2) = %d, want 2", PagesSpanned(0xFFF, 2))
	}
	if PagesSpanned(0, 0) != 0 {
		t.Errorf("PagesSpanned(0,0) = %d, want 0", PagesSpanned(0, 0))
	}
	if PagesSpanned(0, PageSize) != 1 {
		t.Errorf("PagesSpanned(0,PageSize) = %d, want 1", PagesSpanned(0, PageSize))
	}
}

func TestPhysReadWriteRoundtrip(t *testing.T) {
	m := NewPhysMem()
	a := m.NewAllocator("ram", 0, 16*PageSize)
	base, err := a.AllocPages(3)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 2*PageSize+100) // crosses two page boundaries
	for i := range data {
		data[i] = byte(i * 7)
	}
	start := base + 500
	if err := m.Write(start, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := m.Read(start, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page roundtrip mismatch")
	}
}

func TestPhysBusError(t *testing.T) {
	m := NewPhysMem()
	err := m.Read(0x100000, make([]byte, 8))
	if _, ok := err.(*BusError); !ok {
		t.Fatalf("read of unbacked memory: err = %v, want BusError", err)
	}
	err = m.Write(0x100000, []byte{1})
	if _, ok := err.(*BusError); !ok {
		t.Fatalf("write of unbacked memory: err = %v, want BusError", err)
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	m := NewPhysMem()
	a := m.NewAllocator("tiny", 0, 2*PageSize)
	if _, err := a.AllocPage(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AllocPage(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AllocPage(); err == nil {
		t.Fatal("third page from a 2-page range should fail")
	}
}

func TestRangeOverlapPanics(t *testing.T) {
	m := NewPhysMem()
	m.AddRange("a", 0, 4*PageSize)
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping AddRange did not panic")
		}
	}()
	m.AddRange("b", 2*PageSize, 4*PageSize)
}

func TestZero(t *testing.T) {
	m := NewPhysMem()
	a := m.NewAllocator("ram", 0, 4*PageSize)
	base, _ := a.AllocPages(2)
	fill := bytes.Repeat([]byte{0xAA}, 2*PageSize)
	if err := m.Write(base, fill); err != nil {
		t.Fatal(err)
	}
	if err := m.Zero(base+100, PageSize); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2*PageSize)
	if err := m.Read(base, buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		want := byte(0xAA)
		if i >= 100 && i < 100+PageSize {
			want = 0
		}
		if b != want {
			t.Fatalf("byte %d = %#x, want %#x", i, b, want)
		}
	}
}

func TestU64Roundtrip(t *testing.T) {
	m := NewPhysMem()
	a := m.NewAllocator("ram", 0, PageSize)
	base, _ := a.AllocPage()
	if err := m.WriteU64(base+8, 0xDEADBEEFCAFEF00D); err != nil {
		t.Fatal(err)
	}
	v, err := m.ReadU64(base + 8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xDEADBEEFCAFEF00D {
		t.Fatalf("ReadU64 = %#x", v)
	}
}

// Property: writing a random blob at a random in-range offset then reading
// it back returns the identical blob.
func TestPropertyPhysRoundtrip(t *testing.T) {
	m := NewPhysMem()
	a := m.NewAllocator("ram", 0, 64*PageSize)
	base, _ := a.AllocPages(64)
	f := func(off uint16, blob []byte) bool {
		if len(blob) > 32*PageSize {
			blob = blob[:32*PageSize]
		}
		start := base + SysPhys(off)
		if err := m.Write(start, blob); err != nil {
			return false
		}
		got := make([]byte, len(blob))
		if err := m.Read(start, got); err != nil {
			return false
		}
		return bytes.Equal(got, blob)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermString(t *testing.T) {
	if PermRW.String() != "rw" || PermRead.String() != "r-" || Perm(0).String() != "--" {
		t.Fatalf("perm strings wrong: %q %q %q", PermRW, PermRead, Perm(0))
	}
}
