package mem

import "fmt"

// EPT is an extended page table: the hypervisor-maintained second-level
// translation from guest-physical to system-physical addresses, with
// per-page read/write permissions. One EPT exists per VM.
//
// Device data isolation (§4.2) works by removing permissions here: the
// driver VM's EPT entries for protected memory regions lose PermRead (and,
// because x86 has no write-only mappings, PermWrite too).
type EPT struct {
	entries map[uint64]eptEntry // guest frame number -> entry

	// OnChange, when set, is invoked after every successful mutation — Map,
	// Unmap, SetPerm. The hypervisor's software TLB subscribes here: any
	// change to the guest-physical→system-physical layer flushes that VM's
	// cached translations wholesale, so a page whose EPT entry was removed or
	// permission-stripped can never be served out of the cache. nil (the
	// default) costs nothing.
	OnChange func()
}

type eptEntry struct {
	spa  SysPhys
	perm Perm
}

// NewEPT returns an empty EPT.
func NewEPT() *EPT {
	return &EPT{entries: make(map[uint64]eptEntry)}
}

// Map installs a translation for the page at gpa. Both addresses must be
// page-aligned and the slot must be empty.
func (e *EPT) Map(gpa GuestPhys, spa SysPhys, perm Perm) error {
	if !PageAligned(uint64(gpa)) || !PageAligned(uint64(spa)) {
		return fmt.Errorf("ept: unaligned map %v -> %v", gpa, spa)
	}
	f := Frame(uint64(gpa))
	if _, ok := e.entries[f]; ok {
		return fmt.Errorf("ept: %v already mapped", gpa)
	}
	e.entries[f] = eptEntry{spa: spa, perm: perm}
	if e.OnChange != nil {
		e.OnChange()
	}
	return nil
}

// Unmap removes the translation for the page at gpa.
func (e *EPT) Unmap(gpa GuestPhys) error {
	f := Frame(uint64(gpa))
	if _, ok := e.entries[f]; !ok {
		return fmt.Errorf("ept: unmap of unmapped %v", gpa)
	}
	delete(e.entries, f)
	if e.OnChange != nil {
		e.OnChange()
	}
	return nil
}

// SetPerm changes the permissions of an existing mapping.
func (e *EPT) SetPerm(gpa GuestPhys, perm Perm) error {
	f := Frame(uint64(gpa))
	ent, ok := e.entries[f]
	if !ok {
		return fmt.Errorf("ept: SetPerm of unmapped %v", gpa)
	}
	ent.perm = perm
	e.entries[f] = ent
	if e.OnChange != nil {
		e.OnChange()
	}
	return nil
}

// Lookup returns the mapping for the page containing gpa, if present.
func (e *EPT) Lookup(gpa GuestPhys) (spa SysPhys, perm Perm, ok bool) {
	ent, ok := e.entries[Frame(uint64(gpa))]
	return ent.spa, ent.perm, ok
}

// Mapped reports whether the page containing gpa has a translation.
func (e *EPT) Mapped(gpa GuestPhys) bool {
	_, ok := e.entries[Frame(uint64(gpa))]
	return ok
}

// Translate converts gpa to a system physical address, checking that the
// mapping allows the requested access. The page offset is preserved.
func (e *EPT) Translate(gpa GuestPhys, access Perm) (SysPhys, error) {
	ent, ok := e.entries[Frame(uint64(gpa))]
	if !ok {
		return 0, &EPTViolation{GPA: gpa, Access: access}
	}
	if !ent.perm.Allows(access) {
		return 0, &EPTViolation{GPA: gpa, Access: access, Allowed: ent.perm, Mapped: true}
	}
	return ent.spa + SysPhys(PageOffset(uint64(gpa))), nil
}

// FindUnusedRange returns the guest-physical address of n consecutive
// unmapped pages within [lo, hi). This is how the hypervisor picks guest
// physical page addresses for cross-VM mmap (§5.2: "the hypervisor finds
// unused page addresses in the guest and uses them for this purpose").
func (e *EPT) FindUnusedRange(lo, hi GuestPhys, n int) (GuestPhys, error) {
	if n <= 0 {
		return 0, fmt.Errorf("ept: FindUnusedRange(%d)", n)
	}
	run := 0
	start := Frame(uint64(lo))
	for f := Frame(uint64(lo)); f < Frame(uint64(hi)); f++ {
		if _, used := e.entries[f]; used {
			run = 0
			start = f + 1
			continue
		}
		run++
		if run == n {
			return GuestPhys(start << PageShift), nil
		}
	}
	return 0, fmt.Errorf("ept: no %d-page gap in [%v, %v)", n, lo, hi)
}

// Count returns the number of mapped pages (diagnostics).
func (e *EPT) Count() int { return len(e.entries) }
