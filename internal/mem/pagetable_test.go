package mem

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

// newTestSpace builds a little guest-physical world: an EPT-backed space and
// a guest-frame allocator drawing from it.
func newTestSpace(t testing.TB, npages int) (*GuestSpace, func() (GuestPhys, error)) {
	t.Helper()
	phys := NewPhysMem()
	a := phys.NewAllocator("guest-ram", 0x1000000, uint64(npages)*PageSize)
	ept := NewEPT()
	space := &GuestSpace{Phys: phys, EPT: ept}
	var nextGPA GuestPhys
	alloc := func() (GuestPhys, error) {
		spa, err := a.AllocPage()
		if err != nil {
			return 0, err
		}
		gpa := nextGPA
		nextGPA += PageSize
		if err := ept.Map(gpa, spa, PermRW); err != nil {
			return 0, err
		}
		return gpa, nil
	}
	return space, alloc
}

func TestPageTableMapWalk(t *testing.T) {
	space, alloc := newTestSpace(t, 64)
	pt, err := NewPageTable(space, alloc)
	if err != nil {
		t.Fatal(err)
	}
	target, _ := alloc()
	va := GuestVirt(0x40001000)
	if err := pt.Map(va, target, PermRW); err != nil {
		t.Fatal(err)
	}
	gpa, err := pt.Walk(va+0x123, PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if gpa != target+0x123 {
		t.Fatalf("Walk = %v, want %v", gpa, target+0x123)
	}
}

func TestPageTableWalkFaultsOnUnmapped(t *testing.T) {
	space, alloc := newTestSpace(t, 64)
	pt, _ := NewPageTable(space, alloc)
	_, err := pt.Walk(0x40000000, PermRead)
	var pf *PageFault
	if !errors.As(err, &pf) || pf.Present {
		t.Fatalf("err = %v, want not-present PageFault", err)
	}
}

func TestPageTableWritePermission(t *testing.T) {
	space, alloc := newTestSpace(t, 64)
	pt, _ := NewPageTable(space, alloc)
	target, _ := alloc()
	if err := pt.Map(0x40000000, target, PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := pt.Walk(0x40000000, PermRead); err != nil {
		t.Fatal(err)
	}
	_, err := pt.Walk(0x40000000, PermWrite)
	var pf *PageFault
	if !errors.As(err, &pf) || !pf.Present {
		t.Fatalf("err = %v, want present PageFault (write to RO page)", err)
	}
}

func TestSetLeafRequiresIntermediates(t *testing.T) {
	space, alloc := newTestSpace(t, 64)
	pt, _ := NewPageTable(space, alloc)
	target, _ := alloc()
	va := GuestVirt(0x80000000)
	if err := pt.SetLeaf(va, target, PermRW); err == nil {
		t.Fatal("SetLeaf without intermediates should fail")
	}
	if err := pt.EnsureIntermediates(va); err != nil {
		t.Fatal(err)
	}
	if err := pt.SetLeaf(va, target, PermRW); err != nil {
		t.Fatalf("SetLeaf after EnsureIntermediates: %v", err)
	}
	if _, err := pt.Walk(va, PermRead); err != nil {
		t.Fatal(err)
	}
}

// The hypervisor loads the same table through LoadPageTable (it cannot
// allocate guest frames) and must be able to both walk it and fix leaves.
func TestHypervisorViewOfGuestTable(t *testing.T) {
	space, alloc := newTestSpace(t, 64)
	pt, _ := NewPageTable(space, alloc)
	va := GuestVirt(0x40000000)
	if err := pt.EnsureIntermediates(va); err != nil {
		t.Fatal(err)
	}
	hvView := LoadPageTable(space, pt.Root())
	target, _ := alloc()
	if err := hvView.SetLeaf(va, target, PermRW); err != nil {
		t.Fatal(err)
	}
	// The guest's own view sees the hypervisor's edit: same frames.
	gpa, err := pt.Walk(va, PermRead)
	if err != nil || gpa != target {
		t.Fatalf("guest walk after hypervisor SetLeaf: gpa=%v err=%v", gpa, err)
	}
	// But the hypervisor view cannot create intermediates.
	if err := hvView.SetLeaf(0xBFC00000, target, PermRW); err == nil {
		t.Fatal("hypervisor view grew intermediate levels")
	}
}

func TestUnmapThenWalkFaults(t *testing.T) {
	space, alloc := newTestSpace(t, 64)
	pt, _ := NewPageTable(space, alloc)
	target, _ := alloc()
	if err := pt.Map(0x40000000, target, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := pt.Unmap(0x40000000); err != nil {
		t.Fatal(err)
	}
	if _, err := pt.Walk(0x40000000, PermRead); err == nil {
		t.Fatal("walk after unmap should fault")
	}
	if err := pt.Unmap(0x40000000); err == nil {
		t.Fatal("double unmap should fail")
	}
}

func TestDoubleMapFails(t *testing.T) {
	space, alloc := newTestSpace(t, 64)
	pt, _ := NewPageTable(space, alloc)
	target, _ := alloc()
	if err := pt.Map(0x40000000, target, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := pt.Map(0x40000000, target, PermRW); err == nil {
		t.Fatal("double map should fail")
	}
}

func TestVirtSpaceRoundtrip(t *testing.T) {
	space, alloc := newTestSpace(t, 64)
	pt, _ := NewPageTable(space, alloc)
	// Map three virtually-contiguous pages onto whatever frames come back.
	base := GuestVirt(0x40000000)
	for i := 0; i < 3; i++ {
		gpa, _ := alloc()
		if err := pt.Map(base+GuestVirt(i*PageSize), gpa, PermRW); err != nil {
			t.Fatal(err)
		}
	}
	vs := &VirtSpace{PT: pt, Space: space}
	data := make([]byte, 2*PageSize+500)
	for i := range data {
		data[i] = byte(i * 13)
	}
	if err := vs.Write(base+100, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := vs.Read(base+100, got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d mismatch", i)
		}
	}
	if err := vs.WriteU32(base+8, 0xCAFEBABE); err != nil {
		t.Fatal(err)
	}
	if v, _ := vs.ReadU32(base + 8); v != 0xCAFEBABE {
		t.Fatalf("U32 roundtrip = %#x", v)
	}
}

// Property: mapping distinct pages at distinct VAs and writing a distinct
// marker through each VA never aliases — every marker reads back intact.
func TestPropertyNoAliasing(t *testing.T) {
	f := func(seed uint8) bool {
		space, alloc := newTestSpace(t, 256)
		pt, err := NewPageTable(space, alloc)
		if err != nil {
			return false
		}
		vs := &VirtSpace{PT: pt, Space: space}
		n := 8 + int(seed)%16
		vas := make([]GuestVirt, n)
		for i := 0; i < n; i++ {
			// Spread VAs across PDPT/PD boundaries.
			vas[i] = GuestVirt(uint64(i) * 0x00200000) // one PD entry apart
			gpa, err := alloc()
			if err != nil {
				return false
			}
			if err := pt.Map(vas[i], gpa, PermRW); err != nil {
				return false
			}
			if err := vs.WriteU64(vas[i], uint64(seed)<<32|uint64(i)); err != nil {
				return false
			}
		}
		for i := 0; i < n; i++ {
			v, err := vs.ReadU64(vas[i])
			if err != nil || v != uint64(seed)<<32|uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: Walk agrees with Map for random page-aligned VAs across the
// 32-bit space.
func TestPropertyWalkMatchesMap(t *testing.T) {
	space, alloc := newTestSpace(t, 2048)
	pt, err := NewPageTable(space, alloc)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[GuestVirt]GuestPhys{}
	f := func(raw uint32) bool {
		va := GuestVirt(PageBase(uint64(raw)))
		if _, dup := seen[va]; dup {
			want := seen[va]
			got, err := pt.Walk(va, PermRead)
			return err == nil && got == want
		}
		gpa, err := alloc()
		if err != nil {
			return true // ran out of frames; vacuous
		}
		if err := pt.Map(va, gpa, PermRW); err != nil {
			return false
		}
		seen[va] = gpa
		got, err := pt.Walk(va, PermRead)
		return err == nil && got == gpa
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAddrStrings(t *testing.T) {
	for _, c := range []struct {
		v    fmt.Stringer
		want string
	}{
		{SysPhys(0x1000), "spa:0x1000"},
		{GuestPhys(0x2000), "gpa:0x2000"},
		{GuestVirt(0x3000), "gva:0x3000"},
	} {
		if c.v.String() != c.want {
			t.Errorf("%v != %s", c.v, c.want)
		}
	}
}
