// Package mem simulates the memory system Paradice runs on: sparse system
// physical memory made of 4 KiB frames, extended page tables (EPTs) mapping
// guest-physical to system-physical addresses with permissions, and
// PAE-style guest page tables whose entries live inside simulated guest
// frames and are walked in software — exactly the walk the Paradice
// hypervisor performs in §5.2 of the paper.
package mem

import "fmt"

// PageSize is the size of a memory page/frame in bytes.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// SysPhys is a system (host) physical address.
type SysPhys uint64

// GuestPhys is a guest physical address, translated to SysPhys by an EPT.
type GuestPhys uint64

// GuestVirt is a guest virtual address, translated to GuestPhys by the
// guest's own page tables. Guests are 32-bit x86 PAE per the paper, so only
// the low 32 bits are meaningful.
type GuestVirt uint64

// PageAligned reports whether a is a multiple of PageSize.
func PageAligned(a uint64) bool { return a&(PageSize-1) == 0 }

// PageBase returns a rounded down to a page boundary.
func PageBase(a uint64) uint64 { return a &^ (PageSize - 1) }

// PageOffset returns the offset of a within its page.
func PageOffset(a uint64) uint64 { return a & (PageSize - 1) }

// Frame returns the frame number containing a.
func Frame(a uint64) uint64 { return a >> PageShift }

// PagesSpanned returns how many pages the byte range [addr, addr+size)
// touches. A zero-size range touches no pages.
func PagesSpanned(addr, size uint64) uint64 {
	if size == 0 {
		return 0
	}
	first := Frame(addr)
	last := Frame(addr + size - 1)
	return last - first + 1
}

func (a SysPhys) String() string   { return fmt.Sprintf("spa:%#x", uint64(a)) }
func (a GuestPhys) String() string { return fmt.Sprintf("gpa:%#x", uint64(a)) }
func (a GuestVirt) String() string { return fmt.Sprintf("gva:%#x", uint64(a)) }
