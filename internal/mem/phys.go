package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// PhysMem is the machine's system physical memory: a sparse collection of
// 4 KiB frames. Frames come into existence when an Allocator hands them out
// or when a device exposes its memory at a physical range (a BAR); touching
// an unbacked address is a BusError.
type PhysMem struct {
	frames map[uint64]*[PageSize]byte
	ranges []PhysRange
}

// PhysRange is a named carve-out of the physical address space, used for
// diagnostics and for the Table 2-style memory map dump.
type PhysRange struct {
	Name string
	Base SysPhys
	Size uint64
}

// NewPhysMem returns empty physical memory.
func NewPhysMem() *PhysMem {
	return &PhysMem{frames: make(map[uint64]*[PageSize]byte)}
}

// AddRange registers a named physical range. Ranges must not overlap.
func (m *PhysMem) AddRange(name string, base SysPhys, size uint64) PhysRange {
	if !PageAligned(uint64(base)) || !PageAligned(size) {
		panic(fmt.Sprintf("mem: range %s not page aligned (%v + %#x)", name, base, size))
	}
	for _, r := range m.ranges {
		if uint64(base) < uint64(r.Base)+r.Size && uint64(r.Base) < uint64(base)+size {
			panic(fmt.Sprintf("mem: range %s overlaps %s", name, r.Name))
		}
	}
	r := PhysRange{Name: name, Base: base, Size: size}
	m.ranges = append(m.ranges, r)
	return r
}

// Ranges returns the registered ranges sorted by base address.
func (m *PhysMem) Ranges() []PhysRange {
	out := append([]PhysRange(nil), m.ranges...)
	sort.Slice(out, func(i, j int) bool { return out[i].Base < out[j].Base })
	return out
}

// Populate backs the page containing pa with a zeroed frame. Populating an
// already-backed page is a no-op.
func (m *PhysMem) Populate(pa SysPhys) {
	f := Frame(uint64(pa))
	if m.frames[f] == nil {
		m.frames[f] = new([PageSize]byte)
	}
}

// Backed reports whether the page containing pa has a frame.
func (m *PhysMem) Backed(pa SysPhys) bool {
	return m.frames[Frame(uint64(pa))] != nil
}

// FrameBytes returns the backing frame for the page containing pa, or nil.
func (m *PhysMem) FrameBytes(pa SysPhys) *[PageSize]byte {
	return m.frames[Frame(uint64(pa))]
}

// Read copies len(buf) bytes starting at pa into buf, crossing page
// boundaries as needed.
func (m *PhysMem) Read(pa SysPhys, buf []byte) error {
	return m.access(pa, buf, false)
}

// Write copies data into physical memory starting at pa.
func (m *PhysMem) Write(pa SysPhys, data []byte) error {
	return m.access(pa, data, true)
}

func (m *PhysMem) access(pa SysPhys, buf []byte, write bool) error {
	addr := uint64(pa)
	for len(buf) > 0 {
		frame := m.frames[Frame(addr)]
		if frame == nil {
			op := "read"
			if write {
				op = "write"
			}
			return &BusError{Addr: SysPhys(addr), Op: op}
		}
		off := PageOffset(addr)
		n := PageSize - off
		if n > uint64(len(buf)) {
			n = uint64(len(buf))
		}
		if write {
			copy(frame[off:off+n], buf[:n])
		} else {
			copy(buf[:n], frame[off:off+n])
		}
		addr += n
		buf = buf[n:]
	}
	return nil
}

// ReadU64 reads a little-endian 64-bit word at pa (must not cross a page).
func (m *PhysMem) ReadU64(pa SysPhys) (uint64, error) {
	var b [8]byte
	if err := m.Read(pa, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// WriteU64 writes a little-endian 64-bit word at pa.
func (m *PhysMem) WriteU64(pa SysPhys, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return m.Write(pa, b[:])
}

// Zero clears n bytes starting at pa. Used by the hypervisor when recycling
// protected-region pages (§5.3: "the hypervisor zeros out the pages before
// unmapping").
func (m *PhysMem) Zero(pa SysPhys, n uint64) error {
	zero := make([]byte, PageSize)
	addr := uint64(pa)
	for n > 0 {
		chunk := uint64(PageSize) - PageOffset(addr)
		if chunk > n {
			chunk = n
		}
		if err := m.Write(SysPhys(addr), zero[:chunk]); err != nil {
			return err
		}
		addr += chunk
		n -= chunk
	}
	return nil
}

// Allocator hands out frames from a physical range, bump-style.
type Allocator struct {
	mem  *PhysMem
	r    PhysRange
	next SysPhys
}

// NewAllocator carves a named range out of physical memory and returns an
// allocator over it.
func (m *PhysMem) NewAllocator(name string, base SysPhys, size uint64) *Allocator {
	r := m.AddRange(name, base, size)
	return &Allocator{mem: m, r: r, next: base}
}

// AllocPage returns the physical address of a fresh zeroed page.
func (a *Allocator) AllocPage() (SysPhys, error) {
	if uint64(a.next) >= uint64(a.r.Base)+a.r.Size {
		return 0, fmt.Errorf("mem: range %s exhausted", a.r.Name)
	}
	pa := a.next
	a.next += PageSize
	a.mem.Populate(pa)
	return pa, nil
}

// AllocPages returns the base address of n fresh contiguous zeroed pages.
func (a *Allocator) AllocPages(n int) (SysPhys, error) {
	if n <= 0 {
		return 0, fmt.Errorf("mem: AllocPages(%d)", n)
	}
	base := a.next
	for i := 0; i < n; i++ {
		if _, err := a.AllocPage(); err != nil {
			return 0, err
		}
	}
	return base, nil
}

// Range returns the range this allocator draws from.
func (a *Allocator) Range() PhysRange { return a.r }

// Used returns the number of bytes allocated so far.
func (a *Allocator) Used() uint64 { return uint64(a.next - a.r.Base) }
