package mem

import "fmt"

// Perm is a page access permission bit set.
type Perm uint8

// Permission bits.
const (
	PermRead Perm = 1 << iota
	PermWrite
)

// PermRW is read+write.
const PermRW = PermRead | PermWrite

func (p Perm) String() string {
	s := [2]byte{'-', '-'}
	if p&PermRead != 0 {
		s[0] = 'r'
	}
	if p&PermWrite != 0 {
		s[1] = 'w'
	}
	return string(s[:])
}

// Allows reports whether p grants every bit in access.
func (p Perm) Allows(access Perm) bool { return p&access == access }

// BusError reports access to a system physical address with no frame behind
// it — the simulated equivalent of a machine check.
type BusError struct {
	Addr SysPhys
	Op   string // "read" or "write"
}

func (e *BusError) Error() string {
	return fmt.Sprintf("bus error: %s of unbacked %v", e.Op, e.Addr)
}

// EPTViolation reports a guest-physical access the EPT does not permit.
// On hardware this would be a VM exit; in Paradice it is how the hypervisor
// stops a compromised driver VM from reading protected memory regions.
type EPTViolation struct {
	GPA     GuestPhys
	Access  Perm
	Allowed Perm
	Mapped  bool
}

func (e *EPTViolation) Error() string {
	if !e.Mapped {
		return fmt.Sprintf("EPT violation: %v not mapped", e.GPA)
	}
	return fmt.Sprintf("EPT violation: %v access %v but EPT allows %v",
		e.GPA, e.Access, e.Allowed)
}

// PageFault reports a guest-virtual access the guest page tables do not map
// or do not permit.
type PageFault struct {
	VA      GuestVirt
	Access  Perm
	Present bool
}

func (e *PageFault) Error() string {
	if !e.Present {
		return fmt.Sprintf("page fault: %v not present", e.VA)
	}
	return fmt.Sprintf("page fault: %v access %v denied", e.VA, e.Access)
}
