package mem

import "encoding/binary"

// VirtSpace is a process's view of memory: guest-virtual addresses
// translated by the process page table, then by the VM's EPT. This is the
// access path for simulated CPU code running inside a VM, so both
// page-table permissions and EPT permissions apply.
type VirtSpace struct {
	PT    *PageTable
	Space *GuestSpace
}

// Read copies len(buf) bytes from guest-virtual va.
func (v *VirtSpace) Read(va GuestVirt, buf []byte) error {
	return v.access(va, buf, PermRead)
}

// Write copies data to guest-virtual va.
func (v *VirtSpace) Write(va GuestVirt, data []byte) error {
	return v.access(va, data, PermWrite)
}

func (v *VirtSpace) access(va GuestVirt, buf []byte, perm Perm) error {
	addr := uint64(va)
	for len(buf) > 0 {
		gpa, err := v.PT.Walk(GuestVirt(addr), perm)
		if err != nil {
			return err
		}
		n := PageSize - PageOffset(addr)
		if n > uint64(len(buf)) {
			n = uint64(len(buf))
		}
		if perm == PermWrite {
			err = v.Space.Write(gpa, buf[:n])
		} else {
			err = v.Space.Read(gpa, buf[:n])
		}
		if err != nil {
			return err
		}
		addr += n
		buf = buf[n:]
	}
	return nil
}

// ReadU32 reads a little-endian 32-bit word at va.
func (v *VirtSpace) ReadU32(va GuestVirt) (uint32, error) {
	var b [4]byte
	if err := v.Read(va, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// WriteU32 writes a little-endian 32-bit word at va.
func (v *VirtSpace) WriteU32(va GuestVirt, x uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], x)
	return v.Write(va, b[:])
}

// ReadU64 reads a little-endian 64-bit word at va.
func (v *VirtSpace) ReadU64(va GuestVirt) (uint64, error) {
	var b [8]byte
	if err := v.Read(va, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// WriteU64 writes a little-endian 64-bit word at va.
func (v *VirtSpace) WriteU64(va GuestVirt, x uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], x)
	return v.Write(va, b[:])
}
