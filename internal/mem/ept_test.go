package mem

import (
	"errors"
	"testing"
)

func TestEPTMapTranslate(t *testing.T) {
	e := NewEPT()
	if err := e.Map(0x10000, 0x400000, PermRW); err != nil {
		t.Fatal(err)
	}
	spa, err := e.Translate(0x10123, PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if spa != 0x400123 {
		t.Fatalf("Translate = %v, want spa:0x400123", spa)
	}
}

func TestEPTDoubleMapFails(t *testing.T) {
	e := NewEPT()
	if err := e.Map(0x10000, 0x400000, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := e.Map(0x10000, 0x500000, PermRW); err == nil {
		t.Fatal("double map succeeded")
	}
}

func TestEPTViolationUnmapped(t *testing.T) {
	e := NewEPT()
	_, err := e.Translate(0x999000, PermRead)
	var v *EPTViolation
	if !errors.As(err, &v) || v.Mapped {
		t.Fatalf("err = %v, want unmapped EPTViolation", err)
	}
}

func TestEPTPermissionEnforced(t *testing.T) {
	e := NewEPT()
	if err := e.Map(0x10000, 0x400000, PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Translate(0x10000, PermRead); err != nil {
		t.Fatalf("read with read perm: %v", err)
	}
	_, err := e.Translate(0x10000, PermWrite)
	var v *EPTViolation
	if !errors.As(err, &v) || !v.Mapped {
		t.Fatalf("write with read-only perm: err = %v, want mapped EPTViolation", err)
	}
}

// Translate with zero access bits is a presence-only check: this is the
// hypervisor's privileged walk, which must work even on pages whose EPT
// permissions have been stripped for device data isolation.
func TestEPTPrivilegedWalkIgnoresPerms(t *testing.T) {
	e := NewEPT()
	if err := e.Map(0x10000, 0x400000, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Translate(0x10000, 0); err != nil {
		t.Fatalf("presence-only translate failed: %v", err)
	}
	if _, err := e.Translate(0x10000, PermRead); err == nil {
		t.Fatal("read of no-perm page should fault")
	}
}

func TestEPTSetPerm(t *testing.T) {
	e := NewEPT()
	if err := e.Map(0x10000, 0x400000, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := e.SetPerm(0x10000, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Translate(0x10000, PermRead); err == nil {
		t.Fatal("read after perm strip should fault")
	}
	if err := e.SetPerm(0x20000, PermRW); err == nil {
		t.Fatal("SetPerm of unmapped page should fail")
	}
}

func TestEPTUnmap(t *testing.T) {
	e := NewEPT()
	if err := e.Map(0x10000, 0x400000, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := e.Unmap(0x10000); err != nil {
		t.Fatal(err)
	}
	if e.Mapped(0x10000) {
		t.Fatal("still mapped after unmap")
	}
	if err := e.Unmap(0x10000); err == nil {
		t.Fatal("double unmap should fail")
	}
}

func TestEPTFindUnusedRange(t *testing.T) {
	e := NewEPT()
	// Occupy pages 0,1,2 and 4 of the window; 3 is free, 5.. are free.
	lo, hi := GuestPhys(0x100000), GuestPhys(0x200000)
	for _, f := range []uint64{0, 1, 2, 4} {
		if err := e.Map(lo+GuestPhys(f*PageSize), SysPhys(0x400000+f*PageSize), PermRW); err != nil {
			t.Fatal(err)
		}
	}
	got, err := e.FindUnusedRange(lo, hi, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != lo+3*PageSize {
		t.Fatalf("1-page gap at %v, want %v", got, lo+3*PageSize)
	}
	got, err = e.FindUnusedRange(lo, hi, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != lo+5*PageSize {
		t.Fatalf("2-page gap at %v, want %v", got, lo+5*PageSize)
	}
	if _, err := e.FindUnusedRange(lo, lo+2*PageSize, 1); err == nil {
		t.Fatal("full window should report no gap")
	}
}

func TestGuestSpaceEnforcesEPT(t *testing.T) {
	phys := NewPhysMem()
	a := phys.NewAllocator("ram", 0, 16*PageSize)
	spa, _ := a.AllocPage()
	ept := NewEPT()
	if err := ept.Map(0x5000, spa, PermRead); err != nil {
		t.Fatal(err)
	}
	s := &GuestSpace{Phys: phys, EPT: ept}
	if err := s.Write(0x5000, []byte{1}); err == nil {
		t.Fatal("write through read-only EPT mapping should fail")
	}
	if err := ept.SetPerm(0x5000, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteU64(0x5010, 42); err != nil {
		t.Fatal(err)
	}
	v, err := s.ReadU64(0x5010)
	if err != nil || v != 42 {
		t.Fatalf("roundtrip via guest space: v=%d err=%v", v, err)
	}
}

func TestGuestSpaceCrossPage(t *testing.T) {
	phys := NewPhysMem()
	a := phys.NewAllocator("ram", 0, 16*PageSize)
	spa1, _ := a.AllocPage()
	// A hole, then the next backing frame — guest-contiguous pages need not
	// be system-contiguous (§5.2: translation must be per page).
	if _, err := a.AllocPage(); err != nil {
		t.Fatal(err)
	}
	spa2, _ := a.AllocPage()
	ept := NewEPT()
	if err := ept.Map(0x10000, spa1, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := ept.Map(0x11000, spa2, PermRW); err != nil {
		t.Fatal(err)
	}
	s := &GuestSpace{Phys: phys, EPT: ept}
	data := make([]byte, 300)
	for i := range data {
		data[i] = byte(i)
	}
	if err := s.Write(0x10F00, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 300)
	if err := s.Read(0x10F00, got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d mismatch", i)
		}
	}
	// Verify the split actually landed in two discontiguous frames.
	var b1 [1]byte
	if err := phys.Read(spa1+0xF00, b1[:]); err != nil || b1[0] != 0 {
		t.Fatalf("first frame byte = %d err=%v", b1[0], err)
	}
	if err := phys.Read(spa2, b1[:]); err != nil || b1[0] != 0 {
		t.Fatalf("second frame byte = %d err=%v", b1[0], err)
	}
}
