package mem

import "fmt"

// PageTable is a PAE-style three-level guest page table. Its table frames
// live in guest-physical memory and its entries are little-endian 64-bit
// words inside those frames, so the structure can be walked both by the
// guest kernel that owns it and — through the guest's EPT — by the
// hypervisor performing the software walk of §5.2.
//
// Virtual address layout (32-bit PAE):
//
//	bits 31-30: PDPT index (4 entries)
//	bits 29-21: page directory index (512 entries)
//	bits 20-12: page table index (512 entries)
//	bits 11-0:  page offset
type PageTable struct {
	space *GuestSpace
	root  GuestPhys // the PDPT page
	alloc func() (GuestPhys, error)
}

// Page table entry bits.
const (
	pteBits     = 12
	ptePresent  = 1 << 0
	pteWritable = 1 << 1
	pteAddrMask = ^uint64(PageSize-1) & ((1 << 52) - 1)
)

func pdptIndex(va GuestVirt) uint64 { return (uint64(va) >> 30) & 0x3 }
func pdIndex(va GuestVirt) uint64   { return (uint64(va) >> 21) & 0x1ff }
func ptIndex(va GuestVirt) uint64   { return (uint64(va) >> 12) & 0x1ff }

// NewPageTable allocates a fresh root (PDPT) frame via alloc and returns the
// table. space is the address space the table frames live in; alloc hands
// out zeroed guest-physical frames from the owning kernel's allocator.
func NewPageTable(space *GuestSpace, alloc func() (GuestPhys, error)) (*PageTable, error) {
	root, err := alloc()
	if err != nil {
		return nil, err
	}
	return &PageTable{space: space, root: root, alloc: alloc}, nil
}

// LoadPageTable wraps an existing table rooted at root, accessed through
// space. This is what the hypervisor does: it walks a guest's table through
// the guest's EPT view without being able to allocate guest frames.
func LoadPageTable(space *GuestSpace, root GuestPhys) *PageTable {
	return &PageTable{space: space, root: root}
}

// Root returns the guest-physical address of the PDPT page.
func (pt *PageTable) Root() GuestPhys { return pt.root }

func (pt *PageTable) readEntry(table GuestPhys, index uint64) (uint64, error) {
	return pt.space.ReadU64(table + GuestPhys(index*8))
}

func (pt *PageTable) writeEntry(table GuestPhys, index uint64, v uint64) error {
	return pt.space.WriteU64(table+GuestPhys(index*8), v)
}

// nextLevel returns the table page an entry points at, allocating and
// installing a fresh one if create is set and the entry is empty.
func (pt *PageTable) nextLevel(table GuestPhys, index uint64, create bool) (GuestPhys, error) {
	ent, err := pt.readEntry(table, index)
	if err != nil {
		return 0, err
	}
	if ent&ptePresent != 0 {
		return GuestPhys(ent & pteAddrMask), nil
	}
	if !create {
		return 0, errNotPresent
	}
	if pt.alloc == nil {
		return 0, fmt.Errorf("mem: page table has no allocator for intermediate levels")
	}
	page, err := pt.alloc()
	if err != nil {
		return 0, err
	}
	if err := pt.writeEntry(table, index, uint64(page)|ptePresent|pteWritable); err != nil {
		return 0, err
	}
	return page, nil
}

var errNotPresent = fmt.Errorf("mem: entry not present")

// EnsureIntermediates creates the PDPT/PD/PT levels covering va but not the
// leaf entry itself. The CVD frontend uses this before forwarding mmap, so
// the hypervisor only ever has to fix the last level (§5.2).
func (pt *PageTable) EnsureIntermediates(va GuestVirt) error {
	pd, err := pt.nextLevel(pt.root, pdptIndex(va), true)
	if err != nil {
		return err
	}
	_, err = pt.nextLevel(pd, pdIndex(va), true)
	return err
}

// leafTable walks to the page-table page covering va without creating
// anything. Returns errNotPresent wrapped in a PageFault if a level is
// missing.
func (pt *PageTable) leafTable(va GuestVirt) (GuestPhys, error) {
	pd, err := pt.nextLevel(pt.root, pdptIndex(va), false)
	if err != nil {
		return 0, err
	}
	return pt.nextLevel(pd, pdIndex(va), false)
}

// Map installs a leaf translation va -> gpa with the given permissions,
// creating intermediate levels as needed. The slot must be empty.
func (pt *PageTable) Map(va GuestVirt, gpa GuestPhys, perm Perm) error {
	if !PageAligned(uint64(va)) || !PageAligned(uint64(gpa)) {
		return fmt.Errorf("mem: unaligned map %v -> %v", va, gpa)
	}
	if err := pt.EnsureIntermediates(va); err != nil {
		return err
	}
	return pt.SetLeaf(va, gpa, perm)
}

// SetLeaf installs a leaf translation, requiring intermediates to exist
// already. This is the only page-table mutation the hypervisor performs on a
// guest's behalf. The slot must be empty.
func (pt *PageTable) SetLeaf(va GuestVirt, gpa GuestPhys, perm Perm) error {
	leaf, err := pt.leafTable(va)
	if err != nil {
		if err == errNotPresent {
			return fmt.Errorf("mem: SetLeaf(%v): intermediate levels missing", va)
		}
		return err
	}
	ent, err := pt.readEntry(leaf, ptIndex(va))
	if err != nil {
		return err
	}
	if ent&ptePresent != 0 {
		return fmt.Errorf("mem: %v already mapped", va)
	}
	v := uint64(gpa) | ptePresent
	if perm&PermWrite != 0 {
		v |= pteWritable
	}
	if err := pt.writeEntry(leaf, ptIndex(va), v); err != nil {
		return err
	}
	if pt.space.OnPTEdit != nil {
		pt.space.OnPTEdit(pt.root, GuestVirt(PageBase(uint64(va))))
	}
	return nil
}

// Unmap clears the leaf translation for va.
func (pt *PageTable) Unmap(va GuestVirt) error {
	leaf, err := pt.leafTable(va)
	if err != nil {
		if err == errNotPresent {
			return &PageFault{VA: va}
		}
		return err
	}
	ent, err := pt.readEntry(leaf, ptIndex(va))
	if err != nil {
		return err
	}
	if ent&ptePresent == 0 {
		return &PageFault{VA: va}
	}
	if err := pt.writeEntry(leaf, ptIndex(va), 0); err != nil {
		return err
	}
	if pt.space.OnPTEdit != nil {
		pt.space.OnPTEdit(pt.root, GuestVirt(PageBase(uint64(va))))
	}
	return nil
}

// Walk translates va (page-aligned or not; the offset is preserved) to a
// guest-physical address, checking the requested access against the leaf
// permissions.
func (pt *PageTable) Walk(va GuestVirt, access Perm) (GuestPhys, error) {
	leaf, err := pt.leafTable(va)
	if err != nil {
		if err == errNotPresent {
			return 0, &PageFault{VA: va, Access: access}
		}
		return 0, err
	}
	ent, err := pt.readEntry(leaf, ptIndex(va))
	if err != nil {
		return 0, err
	}
	if ent&ptePresent == 0 {
		return 0, &PageFault{VA: va, Access: access}
	}
	if access&PermWrite != 0 && ent&pteWritable == 0 {
		return 0, &PageFault{VA: va, Access: access, Present: true}
	}
	return GuestPhys(ent&pteAddrMask) + GuestPhys(PageOffset(uint64(va))), nil
}

// Mapped reports whether va has a present leaf entry.
func (pt *PageTable) Mapped(va GuestVirt) bool {
	_, err := pt.Walk(va, 0)
	return err == nil
}
