package mem

import "encoding/binary"

// GuestSpace is a VM's view of its guest-physical address space: every
// access translates through the VM's EPT (enforcing EPT permissions) and
// lands in system physical memory.
//
// All simulated CPU work inside a VM — kernel code, drivers, applications —
// touches memory through a GuestSpace. That single choke point is what makes
// the isolation arguments of §4 testable: if the driver VM's EPT forbids
// reading a protected region, no code path in the driver VM can read it.
type GuestSpace struct {
	Phys *PhysMem
	EPT  *EPT

	// OnPTEdit, when set, is invoked after every successful leaf mutation of
	// a PageTable whose frames live in this space — SetLeaf and Unmap — with
	// the root of the edited table and the virtual page that changed. The
	// hypervisor's software TLB (internal/hv/tlb.go) subscribes here so a
	// remapped or unmapped page is invalidated in the same instant the PTE
	// word changes; nil (the default) costs nothing.
	OnPTEdit func(root GuestPhys, va GuestVirt)
}

// Read copies len(buf) bytes from guest-physical gpa, page by page.
func (s *GuestSpace) Read(gpa GuestPhys, buf []byte) error {
	return s.access(gpa, buf, PermRead)
}

// Write copies data to guest-physical gpa, page by page.
func (s *GuestSpace) Write(gpa GuestPhys, data []byte) error {
	return s.access(gpa, data, PermWrite)
}

func (s *GuestSpace) access(gpa GuestPhys, buf []byte, perm Perm) error {
	addr := uint64(gpa)
	for len(buf) > 0 {
		spa, err := s.EPT.Translate(GuestPhys(addr), perm)
		if err != nil {
			return err
		}
		n := PageSize - PageOffset(addr)
		if n > uint64(len(buf)) {
			n = uint64(len(buf))
		}
		if perm == PermWrite {
			err = s.Phys.Write(spa, buf[:n])
		} else {
			err = s.Phys.Read(spa, buf[:n])
		}
		if err != nil {
			return err
		}
		addr += n
		buf = buf[n:]
	}
	return nil
}

// ReadU64 reads a little-endian 64-bit word at gpa.
func (s *GuestSpace) ReadU64(gpa GuestPhys) (uint64, error) {
	var b [8]byte
	if err := s.Read(gpa, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// WriteU64 writes a little-endian 64-bit word at gpa.
func (s *GuestSpace) WriteU64(gpa GuestPhys, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return s.Write(gpa, b[:])
}
