package load

import (
	"paradice/internal/devfile"
	"paradice/internal/kernel"
	"paradice/internal/mem"
	"paradice/internal/sim"
)

// SinkPath is the conventional device path for the load sink.
const SinkPath = "/dev/loadsink"

// Cmd returns the sink's ioctl command for a payload of the given size
// (_IOW: the payload is copied in, nothing comes back).
func Cmd(size int) devfile.IoctlCmd { return devfile.IOW('L', 0x01, uint32(size)) }

// Sink is the load sink device: a driver whose file operations consume the
// request payload and then occupy a single serial service unit for a
// size-dependent service time. The serial unit is the deliberate bottleneck
// — it gives the device a well-defined capacity (1/serviceTime), so offered
// load beyond it backs requests up into the CVD ring, which is exactly the
// regime admission control and the tail-latency experiment probe. (The CVD
// backend itself dispatches concurrently, so without a serial stage the
// ring would never fill.)
type Sink struct {
	kernel.BaseOps

	// Ops counts completed operations; Busiest tracks the high-water mark
	// of the service queue (waiters behind the unit).
	Ops     uint64
	Busiest int

	res   *sim.Resource
	base  sim.Duration
	perKB sim.Duration
}

// NewSink creates a sink whose service time for an n-byte payload is
// base + perKB*n/1024, served by one unit in FIFO order.
func NewSink(env *sim.Env, base, perKB sim.Duration) *Sink {
	return &Sink{res: env.NewResource("loadsink", 1), base: base, perKB: perKB}
}

// ServiceTime returns the configured service time for an n-byte payload.
func (s *Sink) ServiceTime(n int) sim.Duration {
	return s.base + s.perKB*sim.Duration(n)/1024
}

// Capacity returns the sink's throughput ceiling for an n-byte payload, in
// operations per simulated second.
func (s *Sink) Capacity(n int) float64 { return 1 / s.ServiceTime(n).Seconds() }

// Ioctl implements the sink operation: copy the payload in, then hold the
// serial unit for the service time.
func (s *Sink) Ioctl(c *kernel.FopCtx, cmd devfile.IoctlCmd, arg mem.GuestVirt) (int32, error) {
	n := int(cmd.Size())
	if n > 0 {
		buf := make([]byte, n)
		if err := kernel.CopyFromUser(c, arg, buf); err != nil {
			return 0, err
		}
	}
	s.serve(c, n)
	return 0, nil
}

// Write is the sink's bulk-data entry: same consume-and-serve semantics as
// the ioctl, but reached through the file write path, so on a CVD channel
// with the map cache enabled a large-enough payload rides the bulk-grant
// fast path (reqFlagMapHint) instead of the per-request assisted copy. The
// handover experiment uses it as the map-cache witness traffic.
func (s *Sink) Write(c *kernel.FopCtx, src mem.GuestVirt, n int) (int, error) {
	if n > 0 {
		buf := make([]byte, n)
		if err := kernel.CopyFromUser(c, src, buf); err != nil {
			return 0, err
		}
	}
	s.serve(c, n)
	return n, nil
}

// serve holds the serial service unit for an n-byte payload's service time.
func (s *Sink) serve(c *kernel.FopCtx, n int) {
	if q := s.res.QueueLen(); q > s.Busiest {
		s.Busiest = q
	}
	p := c.Task.Sim()
	s.res.Acquire(p)
	p.Advance(s.ServiceTime(n))
	s.res.Release()
	s.Ops++
}
