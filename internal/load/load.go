// Package load is the open-loop workload harness: it drives many concurrent
// guest processes against a paravirtualized device file with seeded arrival
// processes on the virtual clock, and reports per-QoS-class end-to-end
// latency histograms and drop counts.
//
// Open-loop means arrivals are scheduled independently of completions — the
// request stream a production frontend sees — and every latency is measured
// from the request's *scheduled* arrival time, not from when a busy client
// finally got around to issuing it. That convention makes queueing delay
// (including a client falling behind its own arrival stream) part of the
// measured latency instead of silently vanishing, the coordinated-omission
// mistake closed-loop harnesses make.
//
// Everything is deterministic: arrivals come from a seeded math/rand stream,
// time is the simulation's virtual clock, and the per-class histograms are
// trace.Hist (exact quantiles up to trace.HistSampleCap observations). Two
// runs with the same Profile produce byte-identical results.
package load

import (
	"errors"
	"fmt"
	"math/rand"

	"paradice/internal/devfile"
	"paradice/internal/kernel"
	"paradice/internal/sim"
	"paradice/internal/trace"
)

// Arrival selects the arrival process.
type Arrival int

const (
	// Poisson arrivals: independent exponential interarrival gaps at the
	// profile's mean rate — the memoryless aggregate of many clients.
	Poisson Arrival = iota
	// Bursty arrivals: an on/off (interrupted Poisson) process. On- and
	// off-period lengths are exponential with means OnMean/OffMean, and
	// arrivals occur only during on periods, at the rate that preserves the
	// profile's long-run mean. Bursts are what expose queue buildup that a
	// smooth Poisson stream at the same mean rate hides.
	Bursty
)

func (a Arrival) String() string {
	if a == Bursty {
		return "bursty"
	}
	return "poisson"
}

// Class is one request class in the mix: a QoS tag (kernel.Task.QoS), a
// payload size, and a weight giving its share of arrivals.
type Class struct {
	Name   string
	QoS    uint8
	Size   int // ioctl payload bytes
	Weight int // share of arrivals (relative to the other classes)
	// SLO is the class's per-request latency objective (0 = none). The
	// witness classes feed it to the flight recorder as the outlier-capture
	// threshold and to the SLO watchdog as the burn objective.
	SLO sim.Duration
}

// Profile describes one open-loop run.
type Profile struct {
	// Path is the device file the clients issue requests against.
	Path string
	// Classes is the request mix; at least one, weights >= 1.
	Classes []Class
	// Arrival selects Poisson or Bursty arrivals.
	Arrival Arrival
	// Rate is the long-run mean arrival rate in requests per simulated
	// second, across all classes.
	Rate float64
	// OnMean/OffMean are the mean on/off period lengths for Bursty
	// arrivals; zero selects 2 ms each (a 50% duty cycle, so on-period
	// rate is 2x the mean).
	OnMean, OffMean sim.Duration
	// Clients is how many concurrent guest processes issue the requests;
	// arrivals are dealt round-robin, so each client carries Rate/Clients.
	Clients int
	// Duration is the arrival window: requests are scheduled in
	// [0, Duration). Clients drain their remaining requests after it.
	Duration sim.Duration
	// Seed seeds the arrival stream (gap lengths and class picks).
	Seed int64
}

// Thresholds returns the per-QoS-class latency objectives of the profile's
// classes — the map trace.FlightConfig.ClassThresholds takes. Classes
// without an SLO are absent (no latency-based outlier capture for them).
func (p Profile) Thresholds() map[uint8]sim.Duration {
	out := make(map[uint8]sim.Duration)
	for _, c := range p.Classes {
		if c.SLO > 0 {
			out[c.QoS] = c.SLO
		}
	}
	return out
}

// ClassStats is the per-class outcome of a run.
type ClassStats struct {
	Class  Class
	Issued uint64 // requests issued (scheduled arrivals that ran)
	OK     uint64 // completed successfully
	// Throttled counts EAGAIN refusals — QoS admission control shedding
	// the class at its ring-occupancy limit.
	Throttled uint64
	// Rejected counts EBUSY refusals — the ring itself was full.
	Rejected uint64
	// Errors counts any other errno.
	Errors uint64
	// Lat is the end-to-end latency histogram of OK requests, measured
	// from scheduled arrival to completion.
	Lat trace.Hist
}

// Result is the outcome of a run.
type Result struct {
	// Offered is the number of scheduled arrivals.
	Offered uint64
	// Classes holds per-class stats, in Profile.Classes order.
	Classes []ClassStats
	// CloseBusy counts device closes bounced with an honest errno — a
	// still-full ring, or a dead backend under fault injection. The release
	// cannot be retried once the fd is gone, so these are tallied, not
	// failed.
	CloseBusy uint64
	// Violations records non-errno failures (harness or kernel bugs —
	// a correct run has none).
	Violations []string
}

// OK returns the total successful completions across classes.
func (r *Result) OK() uint64 {
	var n uint64
	for i := range r.Classes {
		n += r.Classes[i].OK
	}
	return n
}

// Dropped returns the total shed requests (EAGAIN + EBUSY) across classes.
func (r *Result) Dropped() uint64 {
	var n uint64
	for i := range r.Classes {
		n += r.Classes[i].Throttled + r.Classes[i].Rejected
	}
	return n
}

type arrival struct {
	at    sim.Time
	class int
}

// Generator owns one open-loop run: the precomputed arrival schedule and
// the client tasks that execute it.
type Generator struct {
	prof     Profile
	arrivals []arrival
	res      Result
	running  int // client tasks not yet finished
}

// NewGenerator precomputes the arrival schedule for the profile. The
// schedule is a pure function of the profile (seed included), so the same
// profile always yields the same run.
func NewGenerator(p Profile) (*Generator, error) {
	if p.Path == "" {
		return nil, fmt.Errorf("load: profile needs a device path")
	}
	if len(p.Classes) == 0 {
		return nil, fmt.Errorf("load: profile needs at least one class")
	}
	if p.Rate <= 0 || p.Clients <= 0 || p.Duration <= 0 {
		return nil, fmt.Errorf("load: rate, clients, and duration must be positive")
	}
	total := 0
	for _, c := range p.Classes {
		if c.Weight <= 0 {
			return nil, fmt.Errorf("load: class %q needs weight >= 1", c.Name)
		}
		if c.Size <= 0 {
			return nil, fmt.Errorf("load: class %q needs a payload size", c.Name)
		}
		total += c.Weight
	}
	if p.OnMean <= 0 {
		p.OnMean = 2 * sim.Millisecond
	}
	if p.OffMean <= 0 {
		p.OffMean = 2 * sim.Millisecond
	}
	g := &Generator{prof: p}
	g.res.Classes = make([]ClassStats, len(p.Classes))
	for i, c := range p.Classes {
		g.res.Classes[i].Class = c
	}
	g.genArrivals(total)
	return g, nil
}

// genArrivals fills the schedule from the seeded stream. Gap lengths are
// exponential; class picks are weighted draws from the same stream.
func (g *Generator) genArrivals(totalWeight int) {
	p := g.prof
	rng := rand.New(rand.NewSource(p.Seed))
	pick := func() int {
		r := rng.Intn(totalWeight)
		for i, c := range p.Classes {
			r -= c.Weight
			if r < 0 {
				return i
			}
		}
		return len(p.Classes) - 1
	}
	horizon := p.Duration.Seconds()
	emit := func(t float64) {
		g.arrivals = append(g.arrivals,
			arrival{at: sim.Time(t * 1e9), class: pick()})
	}
	switch p.Arrival {
	case Bursty:
		// Interrupted Poisson: the on-period rate is scaled up by the
		// inverse duty cycle so the long-run mean stays Rate.
		duty := p.OnMean.Seconds() / (p.OnMean.Seconds() + p.OffMean.Seconds())
		rateOn := p.Rate / duty
		t := 0.0
		on := true
		phaseEnd := rng.ExpFloat64() * p.OnMean.Seconds()
		for t < horizon {
			if !on {
				t = phaseEnd
				on = true
				phaseEnd = t + rng.ExpFloat64()*p.OnMean.Seconds()
				continue
			}
			gap := rng.ExpFloat64() / rateOn
			if t+gap > phaseEnd {
				t = phaseEnd
				on = false
				phaseEnd = t + rng.ExpFloat64()*p.OffMean.Seconds()
				continue
			}
			t += gap
			if t >= horizon {
				break
			}
			emit(t)
		}
	default: // Poisson
		t := 0.0
		for {
			t += rng.ExpFloat64() / p.Rate
			if t >= horizon {
				break
			}
			emit(t)
		}
	}
	g.res.Offered = uint64(len(g.arrivals))
}

// Offered returns the number of scheduled arrivals.
func (g *Generator) Offered() uint64 { return g.res.Offered }

// Start creates the client processes in the guest kernel and spawns one
// task per client executing its share of the schedule. The caller drives
// the simulation (Run / RunUntil); Result is valid once the clients have
// drained — Done reports that.
func (g *Generator) Start(k *kernel.Kernel) error {
	p := g.prof
	maxSize := 0
	for _, c := range p.Classes {
		if c.Size > maxSize {
			maxSize = c.Size
		}
	}
	// Deal the time-ordered schedule round-robin: client i gets arrivals
	// i, i+Clients, i+2*Clients, ... — each client's list stays ordered.
	for i := 0; i < p.Clients; i++ {
		proc, err := k.NewProcess(fmt.Sprintf("load%d", i))
		if err != nil {
			return fmt.Errorf("load: client %d: %w", i, err)
		}
		var mine []arrival
		for j := i; j < len(g.arrivals); j += p.Clients {
			mine = append(mine, g.arrivals[j])
		}
		g.running++
		proc.SpawnTask("client", func(t *kernel.Task) {
			defer func() { g.running-- }()
			g.client(t, proc, mine, maxSize)
		})
	}
	return nil
}

// client is one guest process's run: open the device, replay the assigned
// arrivals, classify every outcome.
func (g *Generator) client(t *kernel.Task, proc *kernel.Process, mine []arrival, maxSize int) {
	if len(mine) == 0 {
		return
	}
	// The open storm: every client opens the device at start, and on a CVD
	// path the opens themselves ride the 100-slot ring, so with more
	// clients than slots some opens bounce with EBUSY. Retry on a
	// deterministic backoff — the storm drains within a few ring
	// round-trip batches.
	fd := -1
	for attempt := 0; attempt < 10000; attempt++ {
		f, err := t.Open(g.prof.Path, devfile.ORdWr)
		if err == nil {
			fd = f
			break
		}
		if kernel.IsErrno(err, kernel.EBUSY) || kernel.IsErrno(err, kernel.EAGAIN) {
			t.Sim().Sleep(20 * sim.Microsecond)
			continue
		}
		if isErrno(err) {
			// An honest errno beyond backpressure — a dead backend or an
			// expired deadline under fault injection. The device is
			// legitimately unreachable: charge the whole schedule as errors
			// and bow out rather than calling it a harness violation.
			for _, a := range mine {
				g.res.Classes[a.class].Issued++
				g.res.Classes[a.class].Errors++
			}
			return
		}
		g.violation("open %s: %v", g.prof.Path, err)
		return
	}
	if fd < 0 {
		g.violation("open %s: EBUSY after 10000 attempts", g.prof.Path)
		return
	}
	buf, err := proc.Alloc(maxSize)
	if err != nil {
		g.violation("alloc: %v", err)
		return
	}
	if err := proc.Mem.Write(buf, make([]byte, maxSize)); err != nil {
		g.violation("fill: %v", err)
		return
	}
	for _, a := range mine {
		if now := t.Sim().Now(); a.at > now {
			t.Sim().Sleep(a.at.Sub(now))
		}
		// A late start (the client fell behind its own stream) issues
		// immediately; the lateness lands in the measured latency.
		st := &g.res.Classes[a.class]
		t.QoS = st.Class.QoS
		st.Issued++
		_, err := t.Ioctl(fd, Cmd(st.Class.Size), buf)
		switch {
		case err == nil:
			st.OK++
			st.Lat.Observe(t.Sim().Now().Sub(a.at))
		case kernel.IsErrno(err, kernel.EAGAIN):
			st.Throttled++
		case kernel.IsErrno(err, kernel.EBUSY):
			st.Rejected++
		default:
			if isErrno(err) {
				st.Errors++
			} else {
				g.violation("ioctl class %s: %v", st.Class.Name, err)
			}
		}
	}
	// Close rides the ring too. It cannot be retried (the fd is gone once
	// the syscall runs), so a close bounced with an honest errno — a
	// still-full ring, or a dead backend under fault injection — is counted
	// rather than treated as a harness violation.
	t.QoS = 0
	if err := t.Close(fd); err != nil {
		if isErrno(err) {
			g.res.CloseBusy++
		} else {
			g.violation("close: %v", err)
		}
	}
}

// isErrno reports whether an error is an honest kernel errno — the only
// failure a correct data path may show a guest task, and therefore the
// line between a workload outcome and a harness violation.
func isErrno(err error) bool {
	var e kernel.Errno
	return errors.As(err, &e)
}

func (g *Generator) violation(format string, args ...any) {
	g.res.Violations = append(g.res.Violations, fmt.Sprintf(format, args...))
}

// Done reports whether every client task has finished its schedule.
func (g *Generator) Done() bool { return g.running == 0 }

// Result returns the run's outcome. Call after the simulation has drained
// the clients (Done).
func (g *Generator) Result() *Result { return &g.res }
