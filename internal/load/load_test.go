package load

import (
	"reflect"
	"testing"

	"paradice/internal/kernel"
	"paradice/internal/mem"
	"paradice/internal/sim"
)

// newTestKernel boots a kernel over EPT-backed RAM, with the sink device
// registered locally (no CVD in the loop — these tests cover the harness
// itself; the CVD path is exercised by internal/bench and internal/faults).
func newTestKernel(t testing.TB, ram uint64) (*kernel.Kernel, *Sink) {
	t.Helper()
	env := sim.NewEnv()
	phys := mem.NewPhysMem()
	alloc := phys.NewAllocator("ram", 0x1000_0000, ram)
	base, err := alloc.AllocPages(int(ram / mem.PageSize))
	if err != nil {
		t.Fatal(err)
	}
	ept := mem.NewEPT()
	for off := uint64(0); off < ram; off += mem.PageSize {
		if err := ept.Map(mem.GuestPhys(off), base+mem.SysPhys(off), mem.PermRW); err != nil {
			t.Fatal(err)
		}
	}
	space := &mem.GuestSpace{Phys: phys, EPT: ept}
	k := kernel.New("loadvm", kernel.Linux, env, space, ram)
	sink := NewSink(env, 2*sim.Microsecond, 1*sim.Microsecond)
	k.RegisterDevice(SinkPath, sink, sink)
	return k, sink
}

func testProfile(kind Arrival, seed int64) Profile {
	return Profile{
		Path: SinkPath,
		Classes: []Class{
			{Name: "rt", QoS: 0, Size: 256, Weight: 1},
			{Name: "bulk", QoS: 2, Size: 2048, Weight: 3},
		},
		Arrival:  kind,
		Rate:     200_000, // near the sink's ~2.4 µs mixed service time
		Clients:  40,
		Duration: 5 * sim.Millisecond,
		Seed:     seed,
	}
}

func runProfile(t *testing.T, p Profile) (*Result, *Sink) {
	t.Helper()
	k, sink := newTestKernel(t, 32<<20)
	g, err := NewGenerator(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(k); err != nil {
		t.Fatal(err)
	}
	k.Env.Run()
	if !g.Done() {
		t.Fatal("clients did not drain")
	}
	return g.Result(), sink
}

func TestOpenLoopAccounting(t *testing.T) {
	for _, kind := range []Arrival{Poisson, Bursty} {
		res, sink := runProfile(t, testProfile(kind, 7))
		if res.Offered == 0 {
			t.Fatalf("%v: no arrivals generated", kind)
		}
		var issued uint64
		for _, cs := range res.Classes {
			issued += cs.Issued
			if got := cs.OK + cs.Throttled + cs.Rejected + cs.Errors; got != cs.Issued {
				t.Errorf("%v class %s: outcomes %d != issued %d", kind, cs.Class.Name, got, cs.Issued)
			}
			if cs.Lat.Count != cs.OK {
				t.Errorf("%v class %s: %d latency samples for %d OK", kind, cs.Class.Name, cs.Lat.Count, cs.OK)
			}
		}
		if issued != res.Offered {
			t.Errorf("%v: issued %d != offered %d", kind, issued, res.Offered)
		}
		if len(res.Violations) != 0 {
			t.Errorf("%v: violations: %v", kind, res.Violations)
		}
		if sink.Ops != res.OK() {
			t.Errorf("%v: sink served %d, harness counted %d OK", kind, sink.Ops, res.OK())
		}
		// No admission control and no ring in this rig: nothing sheds.
		if res.Dropped() != 0 {
			t.Errorf("%v: unexpected drops: %d", kind, res.Dropped())
		}
	}
}

// The class mix follows the weights (1:3 here) to within a loose tolerance.
func TestClassMix(t *testing.T) {
	res, _ := runProfile(t, testProfile(Poisson, 11))
	rt, bulk := res.Classes[0].Issued, res.Classes[1].Issued
	frac := float64(rt) / float64(rt+bulk)
	if frac < 0.15 || frac > 0.35 {
		t.Errorf("rt fraction %.2f, want ~0.25 (rt=%d bulk=%d)", frac, rt, bulk)
	}
}

// Same profile, same seed: byte-identical results — the property every
// downstream gate (bench determinism, stress replay) rests on.
func TestGeneratorDeterministic(t *testing.T) {
	for _, kind := range []Arrival{Poisson, Bursty} {
		a, _ := runProfile(t, testProfile(kind, 3))
		b, _ := runProfile(t, testProfile(kind, 3))
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%v: two same-seed runs differ", kind)
		}
		c, _ := runProfile(t, testProfile(kind, 4))
		if reflect.DeepEqual(a.Classes, c.Classes) {
			t.Errorf("%v: different seeds produced identical runs", kind)
		}
	}
}

// Overload stretches the tail: at 2x the sink's capacity the p99 measured
// from scheduled arrival time must far exceed the unloaded service time,
// and the serial unit must actually have queued.
func TestOverloadBuildsQueue(t *testing.T) {
	p := testProfile(Poisson, 5)
	p.Rate = 800_000 // ~2x capacity for the mixed service time
	res, sink := runProfile(t, p)
	if sink.Busiest == 0 {
		t.Fatal("overload never queued at the sink")
	}
	p99 := res.Classes[1].Lat.Quantile(0.99)
	if p99 < 100*sim.Microsecond {
		t.Errorf("overload p99 = %v, want growing queueing delay", p99)
	}
}
