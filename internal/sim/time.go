// Package sim provides a deterministic discrete-event simulation kernel.
//
// Everything in the Paradice reproduction that has a temporal dimension —
// inter-VM interrupts, device DMA completion, GPU command execution, polling
// loops — runs on this kernel. There is no wall clock anywhere: simulated
// time advances only when a process sleeps or an event fires, so identical
// inputs always produce identical timings.
//
// The kernel follows the classic process-interaction style (as in SimPy):
// processes are goroutines that run one at a time under strict hand-off
// control of the scheduler, and yield by sleeping, waiting on events, or
// acquiring resources.
package sim

import "fmt"

// Time is an absolute simulated time in nanoseconds since simulation start.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Common durations, mirroring time.Duration conventions.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Microseconds returns the duration as a floating-point number of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / 1e3 }

func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/1e6)
	case d >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(d)/1e3)
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

func (t Time) String() string { return Duration(t).String() }
