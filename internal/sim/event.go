package sim

// Event is a one-shot condition processes can wait on. Triggering an event
// wakes all current waiters; waiters arriving after the trigger return
// immediately. Reset re-arms the event for reuse (the wait-queue pattern the
// kernels build on).
type Event struct {
	env       *Env
	name      string
	fired     bool
	waiters   []*Proc
	callbacks []func()
}

// NewEvent returns an un-fired event.
func (e *Env) NewEvent(name string) *Event {
	return &Event{env: e, name: name}
}

// Fired reports whether the event has been triggered.
func (ev *Event) Fired() bool { return ev.fired }

// Trigger fires the event now, waking all waiters at the current time.
// Triggering an already-fired event is a no-op.
func (ev *Event) Trigger() {
	if ev.fired {
		return
	}
	ev.fired = true
	for _, p := range ev.waiters {
		p.scheduleResume(ev.env.now)
	}
	ev.waiters = nil
	for _, fn := range ev.callbacks {
		ev.env.At(ev.env.now, fn)
	}
	ev.callbacks = nil
}

// TriggerAfter fires the event d from now.
func (ev *Event) TriggerAfter(d Duration) {
	ev.env.After(d, ev.Trigger)
}

// Reset re-arms a fired event so it can be waited on and triggered again.
func (ev *Event) Reset() { ev.fired = false }

// OnFire registers fn to run (in scheduler context) when the event fires.
// If the event has already fired, fn runs at the current time.
func (ev *Event) OnFire(fn func()) {
	if ev.fired {
		ev.env.At(ev.env.now, fn)
		return
	}
	ev.callbacks = append(ev.callbacks, fn)
}

// Wait suspends p until the event fires. Returns immediately if already fired.
func (p *Proc) Wait(ev *Event) {
	if ev.fired {
		return
	}
	ev.waiters = append(ev.waiters, p)
	p.block()
}

// WaitTimeout suspends p until the event fires or d elapses, whichever comes
// first. It reports whether the event fired (true) or the wait timed out.
func (p *Proc) WaitTimeout(ev *Event, d Duration) bool {
	if ev.fired {
		return true
	}
	deadline := p.env.now.Add(d)
	ev.waiters = append(ev.waiters, p)
	p.scheduleResume(deadline)
	p.block()
	if ev.fired {
		return true
	}
	// Timed out: withdraw from the waiter list so a later Trigger does not
	// schedule a stale resume.
	for i, w := range ev.waiters {
		if w == p {
			ev.waiters = append(ev.waiters[:i], ev.waiters[i+1:]...)
			break
		}
	}
	return false
}
