package sim

import (
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEnv()
	if e.Now() != 0 {
		t.Fatalf("new env at t=%v, want 0", e.Now())
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	e := NewEnv()
	var end Time
	e.RunFunc("sleeper", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		p.Sleep(7 * Microsecond)
		end = p.Now()
	})
	if end != Time(12*Microsecond) {
		t.Fatalf("end = %v, want 12µs", end)
	}
}

func TestCallbackOrdering(t *testing.T) {
	e := NewEnv()
	var order []int
	e.After(3*Microsecond, func() { order = append(order, 3) })
	e.After(1*Microsecond, func() { order = append(order, 1) })
	e.After(2*Microsecond, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEnv()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(Microsecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time callbacks ran out of order: %v", order)
		}
	}
}

func TestTwoProcessesInterleave(t *testing.T) {
	e := NewEnv()
	var trace []string
	e.Spawn("a", func(p *Proc) {
		p.Sleep(1 * Microsecond)
		trace = append(trace, "a1")
		p.Sleep(2 * Microsecond)
		trace = append(trace, "a3")
	})
	e.Spawn("b", func(p *Proc) {
		p.Sleep(2 * Microsecond)
		trace = append(trace, "b2")
		p.Sleep(2 * Microsecond)
		trace = append(trace, "b4")
	})
	e.Run()
	want := []string{"a1", "b2", "a3", "b4"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestEventWakesWaiters(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent("ready")
	var woke []Time
	for i := 0; i < 3; i++ {
		e.Spawn("waiter", func(p *Proc) {
			p.Wait(ev)
			woke = append(woke, p.Now())
		})
	}
	e.Spawn("trigger", func(p *Proc) {
		p.Sleep(10 * Microsecond)
		ev.Trigger()
	})
	e.Run()
	if len(woke) != 3 {
		t.Fatalf("woke %d waiters, want 3", len(woke))
	}
	for _, tm := range woke {
		if tm != Time(10*Microsecond) {
			t.Fatalf("waiter woke at %v, want 10µs", tm)
		}
	}
}

func TestWaitOnFiredEventReturnsImmediately(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent("done")
	ev.Trigger()
	var at Time = -1
	e.RunFunc("late", func(p *Proc) {
		p.Wait(ev)
		at = p.Now()
	})
	if at != 0 {
		t.Fatalf("late waiter resumed at %v, want 0", at)
	}
}

func TestWaitTimeoutExpires(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent("never")
	var fired bool
	var at Time
	e.RunFunc("w", func(p *Proc) {
		fired = p.WaitTimeout(ev, 200*Microsecond)
		at = p.Now()
	})
	if fired {
		t.Fatal("WaitTimeout reported fired for an event that never fired")
	}
	if at != Time(200*Microsecond) {
		t.Fatalf("timed out at %v, want 200µs", at)
	}
}

func TestWaitTimeoutEventWins(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent("soon")
	var fired bool
	var at Time
	e.Spawn("w", func(p *Proc) {
		fired = p.WaitTimeout(ev, 200*Microsecond)
		at = p.Now()
	})
	e.After(50*Microsecond, ev.Trigger)
	e.Run()
	if !fired {
		t.Fatal("WaitTimeout missed the event")
	}
	if at != Time(50*Microsecond) {
		t.Fatalf("woke at %v, want 50µs", at)
	}
}

// A stale timeout resume must not corrupt a process that has since moved on
// to waiting on something else. This is the regression test for the
// generation-counter logic.
func TestStaleTimeoutResumeIsIgnored(t *testing.T) {
	e := NewEnv()
	ev1 := e.NewEvent("first")
	ev2 := e.NewEvent("second")
	var stages []Time
	e.Spawn("w", func(p *Proc) {
		if !p.WaitTimeout(ev1, 100*Microsecond) {
			t.Error("ev1 should fire before its timeout")
		}
		stages = append(stages, p.Now())
		p.Wait(ev2) // stale resume for the 100µs timeout must not end this wait
		stages = append(stages, p.Now())
	})
	e.After(10*Microsecond, ev1.Trigger)
	e.After(500*Microsecond, ev2.Trigger)
	e.Run()
	if len(stages) != 2 {
		t.Fatalf("stages = %v, want 2 entries", stages)
	}
	if stages[0] != Time(10*Microsecond) || stages[1] != Time(500*Microsecond) {
		t.Fatalf("stages = %v, want [10µs 500µs]", stages)
	}
}

func TestEventResetReuse(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent("tick")
	var wakes []Time
	e.Spawn("w", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Wait(ev)
			ev.Reset()
			wakes = append(wakes, p.Now())
		}
	})
	e.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10 * Microsecond)
			ev.Trigger()
		}
	})
	e.Run()
	if len(wakes) != 3 {
		t.Fatalf("wakes = %v, want 3 wakes", wakes)
	}
}

func TestResourceFIFO(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("gpu", 1)
	var order []string
	worker := func(name string, start, hold Duration) {
		e.Spawn(name, func(p *Proc) {
			p.Sleep(start)
			r.Acquire(p)
			order = append(order, name+"+")
			p.Sleep(hold)
			order = append(order, name+"-")
			r.Release()
		})
	}
	worker("a", 0, 30*Microsecond)
	worker("b", 1*Microsecond, 10*Microsecond)
	worker("c", 2*Microsecond, 10*Microsecond)
	e.Run()
	want := []string{"a+", "a-", "b+", "b-", "c+", "c-"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("duo", 2)
	var maxInUse int
	for i := 0; i < 5; i++ {
		e.Spawn("w", func(p *Proc) {
			r.Acquire(p)
			if r.InUse() > maxInUse {
				maxInUse = r.InUse()
			}
			p.Sleep(10 * Microsecond)
			r.Release()
		})
	}
	e.Run()
	if maxInUse != 2 {
		t.Fatalf("max in use = %d, want 2", maxInUse)
	}
}

func TestDeadlockedReportsBlockedProc(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent("never")
	e.Spawn("stuck", func(p *Proc) { p.Wait(ev) })
	e.Run()
	d := e.Deadlocked()
	if len(d) != 1 || d[0] != "stuck" {
		t.Fatalf("Deadlocked() = %v, want [stuck]", d)
	}
}

func TestRunUntilStopsAtLimit(t *testing.T) {
	e := NewEnv()
	var ran []Duration
	e.After(10*Microsecond, func() { ran = append(ran, 10*Microsecond) })
	e.After(30*Microsecond, func() { ran = append(ran, 30*Microsecond) })
	e.RunUntil(Time(20 * Microsecond))
	if len(ran) != 1 {
		t.Fatalf("ran = %v, want only the 10µs callback", ran)
	}
	if e.Now() != Time(20*Microsecond) {
		t.Fatalf("now = %v, want 20µs", e.Now())
	}
	e.Run()
	if len(ran) != 2 {
		t.Fatalf("second Run did not pick up the remaining callback: %v", ran)
	}
}

// Property: for any list of non-negative delays, callbacks fire in
// nondecreasing time order and the clock never moves backwards.
func TestPropertyMonotonicClock(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEnv()
		var last Time = -1
		ok := true
		for _, d := range delays {
			e.After(Duration(d)*Nanosecond, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: sleeping a sequence of delays lands exactly on their sum.
func TestPropertySleepSum(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEnv()
		var want Time
		for _, d := range delays {
			want = want.Add(Duration(d))
		}
		var got Time
		e.RunFunc("s", func(p *Proc) {
			for _, d := range delays {
				p.Sleep(Duration(d))
			}
			got = p.Now()
		})
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500 * Nanosecond, "500ns"},
		{35 * Microsecond, "35.000µs"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestNegativeSleepClampsToZero(t *testing.T) {
	e := NewEnv()
	e.RunFunc("n", func(p *Proc) {
		p.Sleep(-5)
		if p.Now() != 0 {
			t.Errorf("negative sleep moved clock to %v", p.Now())
		}
	})
}

// A panicking process must surface on the Run caller's goroutine as a
// *ProcPanic — recoverable by a harness — not crash an unrelated goroutine.
func TestProcPanicTrapsToRunCaller(t *testing.T) {
	e := NewEnv()
	e.Spawn("healthy", func(p *Proc) { p.Sleep(Microsecond) })
	e.Spawn("bomb", func(p *Proc) {
		p.Sleep(10 * Nanosecond)
		panic("boom")
	})
	var got *ProcPanic
	func() {
		defer func() {
			r := recover()
			pp, ok := r.(*ProcPanic)
			if !ok {
				t.Fatalf("recovered %T (%v), want *ProcPanic", r, r)
			}
			got = pp
		}()
		e.Run()
	}()
	if got.Proc != "bomb" || got.Value != "boom" || len(got.Stack) == 0 {
		t.Fatalf("trap = {Proc:%q Value:%v stack %d bytes}", got.Proc, got.Value, len(got.Stack))
	}
}
