package sim

// Resource is a counted resource with a FIFO wait queue. The GPU command
// processor, for instance, is a capacity-1 Resource: guest VMs' command
// submissions acquire it in arrival order, which is what produces the linear
// multi-VM scaling of Figure 6.
type Resource struct {
	env      *Env
	name     string
	capacity int
	inUse    int
	waiters  []*Proc
}

// NewResource returns a resource with the given capacity (must be >= 1).
func (e *Env) NewResource(name string, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{env: e, name: name, capacity: capacity}
}

// Acquire blocks p until a unit of the resource is available, then takes it.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.inUse++
		return
	}
	r.waiters = append(r.waiters, p)
	p.block()
	// Release granted the unit to us before resuming.
}

// TryAcquire takes a unit if one is immediately available.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.inUse++
		return true
	}
	return false
}

// Release returns a unit, handing it to the longest-waiting process if any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: release of idle resource " + r.name)
	}
	if len(r.waiters) > 0 {
		next := r.waiters[0]
		r.waiters = r.waiters[1:]
		// The unit transfers directly: inUse stays constant.
		next.scheduleResume(r.env.now)
		return
	}
	r.inUse--
}

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting.
func (r *Resource) QueueLen() int { return len(r.waiters) }
