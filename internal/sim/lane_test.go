package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// laneWorkload drives a deterministic mixed workload — timers, cross-proc
// event wake-ups, same-instant ties, stale resumes via WaitTimeout races —
// and returns the observed execution log. When lanes is 0 everything runs on
// the default lane; otherwise each worker is pinned to its own lane.
func laneWorkload(lanes int) []string {
	e := NewEnv()
	ids := make([]int, 4)
	for i := range ids {
		if lanes > 0 {
			ids[i] = e.AllocLane()
		}
	}
	var log []string
	ev := e.NewEvent("lane-test")
	for i := range ids {
		i := i
		spawn := func(name string, fn func(p *Proc)) {
			if lanes > 0 {
				e.SpawnLane(ids[i], name, fn)
			} else {
				e.Spawn(name, fn)
			}
		}
		spawn(fmt.Sprintf("worker%d", i), func(p *Proc) {
			rng := rand.New(rand.NewSource(int64(42 + i)))
			for step := 0; step < 40; step++ {
				switch rng.Intn(4) {
				case 0:
					p.Sleep(Duration(rng.Intn(5)) * Microsecond)
				case 1:
					// Same-instant tie with sibling workers.
					p.Yield()
				case 2:
					if !p.WaitTimeout(ev, Duration(1+rng.Intn(3))*Microsecond) {
						log = append(log, fmt.Sprintf("t=%v w%d timeout", p.Now(), i))
					}
				case 3:
					ev.Trigger()
					ev.Reset()
				}
				log = append(log, fmt.Sprintf("t=%v w%d step%d", p.Now(), i, step))
				// Cross-lane callback: scheduled from this worker's context,
				// so it lands on this worker's lane but mutates shared state.
				p.Env().After(Duration(rng.Intn(3))*Microsecond, func() {
					log = append(log, fmt.Sprintf("t=%v cb from w%d", e.Now(), i))
				})
			}
		})
	}
	e.Run()
	return log
}

// TestLaneMergeOrderIdentity is the lanes-refactor contract: partitioning the
// calendar into per-worker lanes must replay the exact total order of the
// single flat calendar, because entries keep globally monotonic sequence
// numbers and the merge heap compares (time, seq) like the flat heap did.
func TestLaneMergeOrderIdentity(t *testing.T) {
	flat := laneWorkload(0)
	laned := laneWorkload(4)
	if !reflect.DeepEqual(flat, laned) {
		max := len(flat)
		if len(laned) > max {
			max = len(laned)
		}
		for i := 0; i < max; i++ {
			var a, b string
			if i < len(flat) {
				a = flat[i]
			}
			if i < len(laned) {
				b = laned[i]
			}
			if a != b {
				t.Fatalf("execution logs diverge at entry %d:\n  flat:  %q\n  laned: %q", i, a, b)
			}
		}
		t.Fatalf("execution logs differ in length: flat %d, laned %d", len(flat), len(laned))
	}
}

// TestLaneDeterminism runs the laned workload twice and requires identical
// logs — the property every stress sweep leans on.
func TestLaneDeterminism(t *testing.T) {
	a := laneWorkload(4)
	b := laneWorkload(4)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("laned workload not deterministic across runs")
	}
}

// TestLaneInheritance pins down the routing rules: SpawnLane pins the proc,
// children and callbacks inherit the spawner's lane, and host-context spawns
// land on lane 0.
func TestLaneInheritance(t *testing.T) {
	e := NewEnv()
	lane := e.AllocLane()
	if lane != 1 {
		t.Fatalf("first AllocLane = %d, want 1", lane)
	}
	var childLane, cbChildLane = -1, -1
	e.SpawnLane(lane, "parent", func(p *Proc) {
		p.Sleep(Microsecond)
		child := e.Spawn("child", func(p *Proc) { p.Yield() })
		childLane = child.Lane()
		e.After(Microsecond, func() {
			cb := e.Spawn("cb-child", func(p *Proc) { p.Yield() })
			cbChildLane = cb.Lane()
		})
	})
	host := e.Spawn("host", func(p *Proc) { p.Yield() })
	if host.Lane() != 0 {
		t.Fatalf("host-context spawn on lane %d, want 0", host.Lane())
	}
	e.Run()
	if childLane != lane {
		t.Fatalf("child inherited lane %d, want %d", childLane, lane)
	}
	if cbChildLane != lane {
		t.Fatalf("callback child inherited lane %d, want %d", cbChildLane, lane)
	}
	if e.Lanes() != 2 {
		t.Fatalf("Lanes() = %d, want 2", e.Lanes())
	}
}

// TestLaneManyVMsDrain exercises the merge heap with a fleet-sized lane count
// and interleaved timers, checking the clock still advances monotonically and
// every process drains.
func TestLaneManyVMsDrain(t *testing.T) {
	e := NewEnv()
	const vms = 128
	var last Time
	var ran int
	for i := 0; i < vms; i++ {
		i := i
		lane := e.AllocLane()
		e.SpawnLane(lane, fmt.Sprintf("vm%d", i), func(p *Proc) {
			for s := 0; s < 20; s++ {
				p.Sleep(Duration(1+(i*7+s*3)%11) * Microsecond)
				if p.Now() < last {
					t.Errorf("clock went backwards: %v after %v", p.Now(), last)
				}
				last = p.Now()
				ran++
			}
		})
	}
	e.Run()
	if ran != vms*20 {
		t.Fatalf("ran %d steps, want %d", ran, vms*20)
	}
	if dl := e.Deadlocked(); dl != nil {
		t.Fatalf("deadlocked procs: %v", dl)
	}
}
