package sim

import (
	"container/heap"
	"fmt"
)

// Env is a simulation environment: a virtual clock plus an event calendar.
// An Env is not safe for concurrent use; all mutation happens either from the
// goroutine driving Run or from the single simulation process the scheduler
// has handed control to.
//
// The calendar is partitioned into lanes — one per simulated machine, by
// convention — each an independently heap-ordered queue. The scheduler merges
// lanes through a small second-level heap keyed by each lane's head entry, so
// the dispatch order is identical to a single global calendar (every entry
// still carries a globally monotonic sequence number, and the merge compares
// (time, seq) exactly as the flat calendar did) while per-lane push/pop cost
// scales with that machine's backlog rather than the whole fleet's. Lane 0
// always exists and is the default; AllocLane adds more.
type Env struct {
	now     Time
	seq     uint64
	lanes   []*laneQ // per-machine calendars; lanes[0] is the default lane
	order   laneHeap // non-empty lanes, keyed by each lane's head (at, seq)
	ctxLane int      // lane of the currently dispatched item; callbacks inherit it
	current *Proc    // process currently holding the hand-off token, if any

	yield   chan yieldKind // processes signal the scheduler here
	running bool
	nprocs  int     // live (not yet finished) processes
	procs   []*Proc // all spawned processes, for Deadlocked reporting
	trap    *ProcPanic

	// Observer, when non-nil, receives a structured event per scheduling
	// decision (callback dispatch, process resume) with its virtual
	// timestamp. internal/trace implements this to fold scheduler activity
	// into the unified trace; it must read time only, never advance it.
	Observer SchedObserver

	// Trace, when non-nil, receives a printf-style line per scheduling
	// decision. This is the legacy debugging hook kept as a compatibility
	// shim; structured consumers should use Observer instead.
	Trace func(format string, args ...any)

	// OnProcPanic, when non-nil, is consulted before a trapped process
	// panic is re-raised on the Run caller's goroutine. Returning true
	// consumes the panic — the simulation keeps running with the panicked
	// process simply gone, which is how a supervisor models "a thread in
	// the driver VM oopsed" without tearing the whole experiment down.
	// Returning false preserves the default re-panic behavior. The handler
	// runs in scheduler context and must not block.
	OnProcPanic func(*ProcPanic) bool
}

// SchedObserver receives one structured event per scheduling decision. Both
// methods run in scheduler context and must not block, mutate simulation
// state, or advance the clock.
type SchedObserver interface {
	// SchedCallback fires when a calendar callback is dispatched at time at.
	SchedCallback(at Time)
	// SchedResume fires when process proc is handed the token at time at.
	SchedResume(at Time, proc string)
}

type yieldKind int

const (
	yieldBlocked yieldKind = iota // process blocked on timer/event/resource
	yieldDone                     // process function returned
)

// NewEnv returns an empty environment at time zero.
func NewEnv() *Env {
	return &Env{
		yield: make(chan yieldKind),
		lanes: []*laneQ{{pos: -1}},
	}
}

// AllocLane adds a calendar lane and returns its index. Lanes are cheap;
// allocate one per simulated machine so its timer/resume traffic sorts in a
// private heap. Lane indices are only meaningful within this Env.
func (e *Env) AllocLane() int {
	e.lanes = append(e.lanes, &laneQ{pos: -1})
	return len(e.lanes) - 1
}

// Lanes returns the number of calendar lanes, including the default lane 0.
func (e *Env) Lanes() int { return len(e.lanes) }

// Now returns the current simulated time.
func (e *Env) Now() Time { return e.now }

// CurrentProc returns the process currently holding the hand-off token, or
// nil when called from scheduler/callback context.
func (e *Env) CurrentProc() *Proc { return e.current }

type item struct {
	at   Time
	seq  uint64
	lane int    // calendar lane the entry is queued on
	fn   func() // callback to run (scheduler context), or nil
	p    *Proc  // process to resume (mutually exclusive with fn)
	gen  uint64 // resume generation; stale if != p.resumeGen when popped
}

type calendar []*item

func (c calendar) Len() int { return len(c) }
func (c calendar) Less(i, j int) bool {
	if c[i].at != c[j].at {
		return c[i].at < c[j].at
	}
	return c[i].seq < c[j].seq
}
func (c calendar) Swap(i, j int) { c[i], c[j] = c[j], c[i] }
func (c *calendar) Push(x any)   { *c = append(*c, x.(*item)) }
func (c *calendar) Pop() any {
	old := *c
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*c = old[:n-1]
	return it
}

// laneQ is one calendar lane: an independent heap of pending entries plus the
// lane's position in the merge heap (-1 while the lane is empty).
type laneQ struct {
	cal calendar
	pos int
}

// laneHeap orders the non-empty lanes by their head entry's (at, seq) — the
// merge rule. Because seq is assigned globally at schedule time, popping the
// merge heap's root lane head-by-head replays the exact total order a single
// flat calendar would have produced.
type laneHeap []*laneQ

func (h laneHeap) Len() int { return len(h) }
func (h laneHeap) Less(i, j int) bool {
	a, b := h[i].cal[0], h[j].cal[0]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}
func (h laneHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].pos = i
	h[j].pos = j
}
func (h *laneHeap) Push(x any) {
	l := x.(*laneQ)
	l.pos = len(*h)
	*h = append(*h, l)
}
func (h *laneHeap) Pop() any {
	old := *h
	n := len(old)
	l := old[n-1]
	old[n-1] = nil
	l.pos = -1
	*h = old[:n-1]
	return l
}

func (e *Env) schedule(it *item) {
	if it.at < e.now {
		panic(fmt.Sprintf("sim: scheduling in the past: %v < %v", it.at, e.now))
	}
	it.seq = e.seq
	e.seq++
	if len(e.lanes) == 0 {
		// Zero-value Env (tests construct these): materialize lane 0.
		e.lanes = []*laneQ{{pos: -1}}
	}
	it.lane = e.ctxLane
	if it.p != nil {
		it.lane = it.p.lane
	}
	if it.lane < 0 || it.lane >= len(e.lanes) {
		panic(fmt.Sprintf("sim: scheduling on unallocated lane %d (have %d)", it.lane, len(e.lanes)))
	}
	l := e.lanes[it.lane]
	heap.Push(&l.cal, it)
	if l.pos < 0 {
		heap.Push(&e.order, l)
	} else if l.cal[0] == it {
		// The new entry displaced the lane head (earlier time; seq is
		// monotonic so equal times never displace): re-key the merge heap.
		heap.Fix(&e.order, l.pos)
	}
}

// peek returns the globally next entry without removing it.
func (e *Env) peek() *item {
	if e.order.Len() == 0 {
		return nil
	}
	return e.order[0].cal[0]
}

// popHead removes and returns the globally next entry, re-keying the merge
// heap for the lane it came from.
func (e *Env) popHead() *item {
	l := e.order[0]
	it := heap.Pop(&l.cal).(*item)
	if l.cal.Len() == 0 {
		heap.Pop(&e.order)
	} else {
		heap.Fix(&e.order, 0)
	}
	return it
}

// At schedules fn to run at absolute time t in scheduler context.
// fn must not block or advance time; to do timed work, spawn a process.
func (e *Env) At(t Time, fn func()) {
	e.schedule(&item{at: t, fn: fn})
}

// After schedules fn to run d from now in scheduler context.
func (e *Env) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now.Add(d), fn)
}

// Run executes scheduled work until the calendar is empty, then returns.
// Processes still blocked on events when the calendar drains remain blocked;
// Deadlocked reports them.
func (e *Env) Run() {
	e.RunUntil(Time(1<<62 - 1))
}

// RunUntil executes scheduled work up to and including time limit.
func (e *Env) RunUntil(limit Time) {
	if e.running {
		panic("sim: Run re-entered")
	}
	e.running = true
	defer func() { e.running = false }()
	for {
		it := e.peek()
		if it == nil {
			break
		}
		if it.p != nil && (it.p.finished || it.gen != it.p.resumeGen) {
			// Stale resume (dead process or superseded wake-up): discard
			// without letting it advance the clock.
			e.popHead()
			continue
		}
		if it.at > limit {
			break
		}
		e.popHead()
		e.now = it.at
		e.ctxLane = it.lane
		switch {
		case it.fn != nil:
			if e.Observer != nil {
				e.Observer.SchedCallback(e.now)
			}
			if e.Trace != nil {
				e.Trace("t=%v callback", e.now)
			}
			it.fn()
		case it.p != nil:
			it.p.queued = false
			e.resume(it.p)
		}
	}
	e.ctxLane = 0
	if limit < Time(1<<62-1) && e.now < limit {
		e.now = limit
	}
}

// resume hands control to p and waits for it to yield back.
func (e *Env) resume(p *Proc) {
	if e.Observer != nil {
		e.Observer.SchedResume(e.now, p.name)
	}
	if e.Trace != nil {
		e.Trace("t=%v resume %s", e.now, p.name)
	}
	e.current = p
	p.wake <- struct{}{}
	k := <-e.yield
	e.current = nil
	if k == yieldDone {
		e.nprocs--
		if e.trap != nil {
			// The process goroutine panicked: re-raise on the Run caller's
			// goroutine so a harness can recover (and report, say, the
			// reproducing seed) instead of the whole program dying on a
			// goroutine nobody can recover from — unless a registered
			// OnProcPanic handler (a supervisor) consumes it first.
			tr := e.trap
			e.trap = nil
			if e.OnProcPanic == nil || !e.OnProcPanic(tr) {
				panic(tr)
			}
		}
	}
}

// ProcPanic is the value re-panicked on the goroutine driving Run when a
// simulation process panics: the process name, the original panic value,
// and the stack captured at the panic site.
type ProcPanic struct {
	Proc  string
	Value any
	Stack []byte
}

func (pp *ProcPanic) Error() string {
	return fmt.Sprintf("sim: process %s panicked: %v\n%s", pp.Proc, pp.Value, pp.Stack)
}

func (pp *ProcPanic) String() string { return pp.Error() }

// Deadlocked returns the names of processes that are still alive but have no
// pending calendar entry — i.e. they are waiting on events that will never
// fire. Useful in tests after Run returns.
func (e *Env) Deadlocked() []string {
	if e.nprocs == 0 {
		return nil
	}
	var names []string
	for _, p := range e.procs {
		if !p.finished && !p.queued {
			names = append(names, p.name)
		}
	}
	return names
}
