package sim

import (
	"fmt"
	"runtime/debug"
)

// Proc is a simulation process: a goroutine that runs only while it holds the
// scheduler's hand-off token. At most one Proc executes at any instant, so
// process bodies may freely mutate shared simulation state without locks.
type Proc struct {
	env       *Env
	name      string
	lane      int // calendar lane the process's resumes queue on
	wake      chan struct{}
	finished  bool
	queued    bool   // has a pending calendar resume entry
	resumeGen uint64 // bumped per scheduled resume; stale entries are skipped
}

// Spawn creates a process running fn, scheduled to start now. The process
// inherits the calendar lane of the context spawning it (the current item's
// lane inside Run, lane 0 from host context); use SpawnLane to pin one.
// fn receives the process handle for sleeping and waiting.
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{env: e, name: name, lane: e.ctxLane, wake: make(chan struct{})}
	e.nprocs++
	e.procs = append(e.procs, p)
	go func() {
		<-p.wake // wait for first resume
		defer func() {
			p.finished = true
			if r := recover(); r != nil {
				// Capture the panic for the scheduler to re-raise on the
				// Run caller's goroutine (see Env.resume); the channel send
				// orders the write before the scheduler's read.
				e.trap = &ProcPanic{Proc: p.name, Value: r, Stack: debug.Stack()}
			}
			e.yield <- yieldDone
		}()
		fn(p)
	}()
	p.scheduleResume(e.now)
	return p
}

// SpawnLane is Spawn with the process pinned to calendar lane lane (as
// returned by AllocLane; 0 is the default lane). All the process's timer and
// resume entries queue on that lane, as do callbacks and children it
// schedules while running.
func (e *Env) SpawnLane(lane int, name string, fn func(p *Proc)) *Proc {
	if len(e.lanes) == 0 {
		e.lanes = []*laneQ{{pos: -1}}
	}
	if lane < 0 || lane >= len(e.lanes) {
		panic(fmt.Sprintf("sim: SpawnLane on unallocated lane %d (have %d)", lane, len(e.lanes)))
	}
	prev := e.ctxLane
	e.ctxLane = lane
	p := e.Spawn(name, fn)
	e.ctxLane = prev
	return p
}

// Lane returns the calendar lane the process is pinned to.
func (p *Proc) Lane() int { return p.lane }

// RunFunc spawns fn as a process and runs the environment until the calendar
// drains. It is a convenience for tests and sequential experiments.
func (e *Env) RunFunc(name string, fn func(p *Proc)) {
	e.Spawn(name, fn)
	e.Run()
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.env.now }

func (p *Proc) scheduleResume(at Time) {
	p.queued = true
	p.resumeGen++
	p.env.schedule(&item{at: at, p: p, gen: p.resumeGen})
}

// block yields control to the scheduler and returns when resumed.
func (p *Proc) block() {
	if p.env.current != p {
		panic(fmt.Sprintf("sim: %s yielding while not current", p.name))
	}
	p.env.yield <- yieldBlocked
	<-p.wake
}

// Sleep suspends the process for d of simulated time.
// Other processes and callbacks scheduled within the window run meanwhile.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.scheduleResume(p.env.now.Add(d))
	p.block()
}

// Advance is Sleep under a name that reads better when the elapsed time
// models work being performed (a hypercall, a memory copy, wire time).
func (p *Proc) Advance(d Duration) { p.Sleep(d) }

// Yield cedes the processor without advancing time, letting any other work
// scheduled at the current instant run first.
func (p *Proc) Yield() { p.Sleep(0) }
