// Package faults is the deterministic fault-injection layer of the
// simulation. Paradice's isolation claims (§4.1, §4.2, §8 of the paper) are
// about what happens when something goes wrong — a compromised guest
// scribbles on the shared ring page, a hypercall fails, the driver VM dies
// mid-operation — and this package makes "something goes wrong" a
// first-class, reproducible input instead of a hand-written test case.
//
// A Plan decides, deterministically from a seed or an explicit script,
// whether each named injection point fires. Layers consult the plan at
// their existing choke points through Point, which is a no-op (nil) when no
// plan is installed, so the production data path pays one map lookup and
// nothing else.
//
// # Injection points
//
// Point names are plain strings so any layer (or test harness) can define
// its own. The core registry, wired through the repository:
//
//	grant.declare        CVD frontend: grant-table declaration fails as if
//	                     the table page were full (guest sees ENOMEM).
//	grant.validate       hypervisor: a driver memory operation is denied as
//	                     if no covering grant existed (driver sees EFAULT).
//	grant.validate.skip  hypervisor: the grant check is WEAKENED — any entry
//	                     with a matching reference passes, kind and range
//	                     unchecked. This is a deliberate bug-injection point
//	                     whose only purpose is proving the stress harness
//	                     catches a broken isolation invariant; nothing
//	                     enables it outside that self-test.
//	hv.copy              hypervisor: CopyToGuest/CopyFromGuest hypercall
//	                     fails with EFAULT before touching memory.
//	hv.map, hv.unmap     hypervisor: MapToGuest/UnmapFromGuest fails.
//	hv.irq.drop          hypervisor: an inter-VM interrupt is lost.
//	hv.irq.dup           hypervisor: an inter-VM interrupt is delivered
//	                     twice (ISRs must be idempotent).
//	cvd.backend.die      CVD backend: the dispatcher dies mid-run, as when
//	                     the driver VM crashes; posted operations are never
//	                     answered until a Reconnect.
//	cvd.heartbeat.drop   CVD backend: a watchdog heartbeat is consumed but
//	                     never acknowledged — the driver VM looks dead to the
//	                     supervisor while still serving requests (tests the
//	                     K-miss threshold against false positives).
//	cvd.heartbeat.delay  CVD backend: the heartbeat acknowledgement is
//	                     deferred by Arg nanoseconds of virtual time — a
//	                     slow-but-healthy driver VM.
//	machine.restart.fail driver VM restart: the replacement driver VM fails
//	                     to boot; the machine is untouched and the supervisor
//	                     charges the attempt against its backoff budget.
//	machine.handover.fail
//	                     planned handover: the attempt is refused before the
//	                     successor boots; the machine is untouched.
//	handover.warm.fail   planned handover: a channel's successor pre-warm
//	                     (device re-probe / cache transfer) fails during the
//	                     switch stage; the handover aborts back to the
//	                     still-live predecessor.
//	handover.drain.timeout
//	                     planned handover: the quiesce stage gives up
//	                     immediately, as if in-flight operations never
//	                     finished draining; the handover aborts and parked
//	                     posts proceed against the predecessor.
//	iommu.translate      IOMMU: a device DMA access faults.
//	driver.evil          test drivers: attempt an undeclared memory
//	                     operation (the compromised-driver probe the stress
//	                     harness pairs with the canary checks).
//
// # Reproduction
//
// Everything a Plan does derives from its seed (or explicit FailAt
// scripts), and the simulation underneath is already deterministic, so a
// failing stress run is reproduced by re-running with the printed seed —
// see the "Fault injection" section of EXPERIMENTS.md.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"paradice/internal/sim"
	"paradice/internal/trace"
)

// Plan decides which injection points fire. A Plan belongs to one
// simulation environment at a time; all of its decisions are deterministic
// in the seed and the (deterministic) order the simulation consults it.
type Plan struct {
	seed     int64
	rng      *rand.Rand
	probs    map[string]float64
	scripts  map[string]map[int]uint64 // point -> hit number -> payload
	hits     map[string]int
	injected map[string]int
}

// New returns an empty plan: no point fires until Probability or FailAt
// arms it. The seed feeds both the plan's own coin flips and Rand.
func New(seed int64) *Plan {
	return &Plan{
		seed:     seed,
		rng:      rand.New(rand.NewSource(seed)),
		probs:    make(map[string]float64),
		scripts:  make(map[string]map[int]uint64),
		hits:     make(map[string]int),
		injected: make(map[string]int),
	}
}

// Seed returns the seed the plan was built from.
func (p *Plan) Seed() int64 { return p.seed }

// Rand exposes the plan's deterministic random source, for harnesses that
// generate workloads or corruption patterns under the same seed.
func (p *Plan) Rand() *rand.Rand { return p.rng }

// Probability arms point to fire with probability prob on every
// consultation. Returns the plan for chaining.
func (p *Plan) Probability(point string, prob float64) *Plan {
	p.probs[point] = prob
	return p
}

// FailAt scripts point to fire on exactly its hit-th consultation
// (1-based). Returns the plan for chaining.
func (p *Plan) FailAt(point string, hit int) *Plan { return p.FailAtWith(point, hit, 0) }

// FailAtWith is FailAt with a payload the injection site can interpret
// (an errno, a byte count — site-defined).
func (p *Plan) FailAtWith(point string, hit int, arg uint64) *Plan {
	s := p.scripts[point]
	if s == nil {
		s = make(map[int]uint64)
		p.scripts[point] = s
	}
	s[hit] = arg
	return p
}

// Hits reports how many times point has been consulted.
func (p *Plan) Hits(point string) int { return p.hits[point] }

// Injected reports how many times point actually fired.
func (p *Plan) Injected(point string) int { return p.injected[point] }

// TotalInjected sums fired injections across all points.
func (p *Plan) TotalInjected() int {
	n := 0
	for _, v := range p.injected {
		n += v
	}
	return n
}

// String summarizes the plan's activity — handy in failure messages.
func (p *Plan) String() string {
	var names []string
	for name := range p.hits {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "faults.Plan(seed=%d)", p.seed)
	for _, name := range names {
		fmt.Fprintf(&b, " %s=%d/%d", name, p.injected[name], p.hits[name])
	}
	return b.String()
}

// decide consults the plan for one hit of a point. It runs only from
// simulation context (one goroutine at a time by the sim hand-off
// discipline), so the plan's own state needs no lock.
func (p *Plan) decide(name string) *Decision {
	p.hits[name]++
	h := p.hits[name]
	if arg, ok := p.scripts[name][h]; ok {
		p.injected[name]++
		return &Decision{Point: name, Hit: h, Arg: arg, plan: p}
	}
	if prob := p.probs[name]; prob > 0 && p.rng.Float64() < prob {
		p.injected[name]++
		return &Decision{Point: name, Hit: h, plan: p}
	}
	return nil
}

// Decision is one fired injection: the site inspects it (and may draw from
// Rand) to shape the failure.
type Decision struct {
	Point string // the consulted point name
	Hit   int    // 1-based consultation count at which it fired
	Arg   uint64 // FailAtWith payload (0 for probabilistic firings)

	plan *Plan
}

// Rand returns the owning plan's deterministic random source.
func (d *Decision) Rand() *rand.Rand { return d.plan.rng }

// Error returns a descriptive error for sites that surface the injection
// directly.
func (d *Decision) Error() error {
	return fmt.Errorf("faults: injected %s (hit %d)", d.Point, d.Hit)
}

// The registry maps environments to installed plans. Distinct environments
// live on distinct (possibly parallel) test goroutines, hence the lock;
// within one environment, consultation is serialized by the simulation.
var (
	regMu sync.Mutex
	reg   = make(map[*sim.Env]*Plan)
)

// Install attaches a plan to an environment, replacing any previous one.
func Install(env *sim.Env, p *Plan) {
	regMu.Lock()
	defer regMu.Unlock()
	reg[env] = p
}

// Uninstall detaches the environment's plan. Always pair with Install in
// tests, or the registry pins the environment for the process lifetime.
func Uninstall(env *sim.Env) {
	regMu.Lock()
	defer regMu.Unlock()
	delete(reg, env)
}

// Installed returns the environment's plan, or nil.
func Installed(env *sim.Env) *Plan {
	regMu.Lock()
	defer regMu.Unlock()
	return reg[env]
}

// Point consults the environment's plan for one hit of the named point.
// It returns nil — inject nothing — when env is nil, no plan is installed,
// or the plan decides against it. This is the only call production code
// makes into this package.
func Point(env *sim.Env, name string) *Decision {
	if env == nil {
		return nil
	}
	regMu.Lock()
	p := reg[env]
	regMu.Unlock()
	if p == nil {
		return nil
	}
	d := p.decide(name)
	if d != nil {
		// A fired injection is an observable event: the trace shows it inline
		// with the request it hit, and the metrics dump counts it per point.
		if tr := trace.Get(env); tr != nil {
			tr.Instant(tr.RIDOf(env.CurrentProc()), "faults", trace.LayerFaults, name, "")
			tr.Add("faults.injected."+name, 1)
		}
	}
	return d
}
