package faults_test

// The seeded randomized stress harness of the fault-injection layer: each
// seed builds a tiny Paradice deployment (hypervisor, driver VM, guest VM,
// one paravirtualized device file), arms a randomized fault plan, runs a
// randomized guest workload through the device-file boundary while faults
// fire, then — if anything is still blocked once the fault window closes —
// performs the §8 recovery (driver VM restart + Reconnect) and checks the
// invariants that must survive ANY fault schedule:
//
//   - liveness: every guest task eventually unblocks;
//   - honest errors: whatever a task observed is a real errno, never a
//     Go-level failure leaking across the VM boundary;
//   - isolation: guest memory the guest never granted (the canary) is
//     byte-identical after the run, even though the driver was actively
//     trying to scribble on it ("driver.evil");
//   - no backend panic: a sim process panicking is trapped and reported;
//   - monotone virtual clock.
//
// Every 4th seed additionally arms one optional subsystem (driver-VM
// supervision, the bulk-transfer fast path, the translation caches, or the
// open-loop load generator — residues 3/1/2/0; force one everywhere with
// the matching -stress.* flag), so injected faults land on each feature in
// a quarter of the sweep without losing the plain-configuration coverage.
// The flight recorder rides the open-loop residue (or every seed with
// -stress.flightrec): its digests, attribution, and outlier captures are
// part of the byte-identical replay contract, and on invariant failure a
// forensics replay writes them to a temp artifact directory.
//
// With -stress.multivm, every seed additionally hosts two extra guest VMs —
// own kernels, own processes, own ungranted canaries — whose channels share
// the driver VM with the main guest; their workloads are rng-free functions
// of the seed, so the flag never perturbs the base run's fault schedule, and
// the isolation invariants become per-guest.
//
// On failure the reproducing seed is printed; re-run with
// -stress.seed=<seed> to replay the exact simulation.

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"paradice/internal/cvd"
	"paradice/internal/devfile"
	"paradice/internal/faults"
	"paradice/internal/handover"
	"paradice/internal/hv"
	"paradice/internal/kernel"
	"paradice/internal/load"
	"paradice/internal/mem"
	"paradice/internal/sim"
	"paradice/internal/supervise"
	"paradice/internal/trace"
)

var (
	stressSeeds      = flag.Int("stress.seeds", 1000, "number of seeds TestStressSeeded sweeps")
	stressSeed       = flag.Int64("stress.seed", -1, "replay a single stress seed (reproduction)")
	stressSupervised = flag.Bool("stress.supervised", false, "run every seed under driver-VM supervision (default: every 4th seed)")
	stressFastpath   = flag.Bool("stress.fastpath", false, "run every seed with the bulk-transfer fast path armed (default: every 4th seed)")
	stressWalkcache  = flag.Bool("stress.walkcache", false, "run every seed with the software TLB and batched grant hypercalls armed (default: every 4th seed)")
	stressOpenloop   = flag.Bool("stress.openloop", false, "run every seed with the open-loop load generator armed (default: every 4th seed)")
	stressHandover   = flag.Bool("stress.handover", false, "perform a planned driver-VM handover mid-run on every 4th seed (dormant unless set)")
	stressFlightrec  = flag.Bool("stress.flightrec", false, "arm the flight recorder on every seed (default: every 4th seed)")
	stressAdaptive   = flag.Bool("stress.adaptive", false, "run every seed on the adaptive transport with submission/completion batching armed (dormant unless set)")
	stressMultiVM    = flag.Bool("stress.multivm", false, "add two extra guest VMs with their own channels, workloads, and canaries on every seed (dormant unless set)")
)

const (
	stressPath = "/dev/stressdev"
	vmRAM      = 4 << 20
)

var (
	sdNoop = devfile.IO('S', 0)
	sdXor  = devfile.IOWR('S', 1, 32)
)

// stressDriver is the device driver in the driver VM: a byte store with
// read/write/ioctl/mmap, plus a compromised-driver probe — when the
// "driver.evil" point fires during a write, it attempts a copy the guest
// never declared, aimed at the harness's canary.
type stressDriver struct {
	kernel.BaseOps
	env    *sim.Env
	wq     *kernel.WaitQueue
	pages  []mem.GuestPhys
	data   []byte
	evilVA mem.GuestVirt

	evilAllowed int // undeclared copies the hypervisor let through (violations)
	evilDenied  int // undeclared copies the grant check stopped
}

func (d *stressDriver) Read(c *kernel.FopCtx, dst mem.GuestVirt, n int) (int, error) {
	for len(d.data) == 0 {
		if c.File.Nonblock() {
			return 0, kernel.EAGAIN
		}
		d.wq.Wait(c.Task)
	}
	if n > len(d.data) {
		n = len(d.data)
	}
	chunk := d.data[:n]
	d.data = d.data[n:]
	if err := kernel.CopyToUser(c, dst, chunk); err != nil {
		return 0, err
	}
	return n, nil
}

func (d *stressDriver) Write(c *kernel.FopCtx, src mem.GuestVirt, n int) (int, error) {
	buf := make([]byte, n)
	if err := kernel.CopyFromUser(c, src, buf); err != nil {
		return 0, err
	}
	if faults.Point(d.env, "driver.evil") != nil && d.evilVA != 0 {
		// The compromised-driver probe: this operation's grant covers only
		// the write's source range, so a strict hypervisor must refuse this.
		if err := kernel.CopyToUser(c, d.evilVA, []byte("pwnpwnpwn")); err != nil {
			d.evilDenied++
		} else {
			d.evilAllowed++
		}
	}
	d.data = append(d.data, buf...)
	d.wq.Wake()
	return n, nil
}

func (d *stressDriver) Ioctl(c *kernel.FopCtx, cmd devfile.IoctlCmd, arg mem.GuestVirt) (int32, error) {
	switch cmd {
	case sdNoop:
		return 0, nil
	case sdXor:
		buf := make([]byte, 32)
		if err := kernel.CopyFromUser(c, arg, buf); err != nil {
			return 0, err
		}
		for i := range buf {
			buf[i] ^= 0xFF
		}
		if err := kernel.CopyToUser(c, arg, buf); err != nil {
			return 0, err
		}
		return 0, nil
	}
	return 0, kernel.ENOTTY
}

func (d *stressDriver) Mmap(c *kernel.FopCtx, v *kernel.VMA) error {
	if v.Len > uint64(len(d.pages))*mem.PageSize {
		return kernel.EINVAL
	}
	return nil
}

func (d *stressDriver) Fault(c *kernel.FopCtx, v *kernel.VMA, va mem.GuestVirt) error {
	idx := (uint64(va) - uint64(v.Start)) / mem.PageSize
	if idx >= uint64(len(d.pages)) {
		return kernel.EFAULT
	}
	return kernel.InsertPFN(c, va, d.pages[idx])
}

func newStressDriver(k *kernel.Kernel, evilVA mem.GuestVirt) (*stressDriver, error) {
	d := &stressDriver{env: k.Env, wq: k.NewWaitQueue("stressdrv"), evilVA: evilVA}
	for i := 0; i < 2; i++ {
		pg, err := k.AllocFrame()
		if err != nil {
			return nil, err
		}
		d.pages = append(d.pages, pg)
	}
	k.RegisterDevice(stressPath, d, d)
	return d, nil
}

// stressTarget adapts the bare cvd rig to internal/supervise: the one
// supervised channel is the rig's frontend/backend pair, and Restart is the
// §8 recovery (fresh driver VM + Reconnect) performed automatically under
// fire. Restart here is instantaneous on the virtual clock — the stress
// harness probes correctness under fault schedules, not recovery latency
// (the root package's MTTR tests charge the real reboot cost).
type stressTarget struct {
	env      *sim.Env
	h        *hv.Hypervisor
	fe       *cvd.Frontend
	be       *cvd.Backend
	canaryVA mem.GuestVirt
	drivers  []*stressDriver
	gen      int
}

func (st *stressTarget) Channels() []supervise.Channel { return []supervise.Channel{st} }
func (st *stressTarget) ID() string                    { return "guest:" + stressPath }
func (st *stressTarget) Alive() bool                   { return st.be.Alive() }
func (st *stressTarget) OnDeath(fn func())             { st.be.OnDeath(fn) }
func (st *stressTarget) SetDegraded(on bool)           { st.fe.SetDegraded(on) }
func (st *stressTarget) Heartbeat(p *sim.Proc, timeout sim.Duration) bool {
	return st.fe.Heartbeat(p, timeout)
}

func (st *stressTarget) Restart() error {
	if d := faults.Point(st.env, "machine.restart.fail"); d != nil {
		// The replacement driver VM fails to boot; the supervisor counts
		// the attempt against its backoff budget.
		return d.Error()
	}
	st.be.Stop()
	st.gen++
	name := fmt.Sprintf("driver-r%d", st.gen)
	vm, err := st.h.CreateVM(name, vmRAM)
	if err != nil {
		return err
	}
	k := kernel.New(name, kernel.Linux, st.env, vm.Space, vm.RAM)
	drv, err := newStressDriver(k, st.canaryVA)
	if err != nil {
		return err
	}
	st.drivers = append(st.drivers, drv)
	be, err := cvd.Reconnect(st.fe, st.h, vm, k, stressPath)
	if err != nil {
		return err
	}
	st.be = be
	return nil
}

// evilTotals sums the compromised-driver probe counters across the original
// driver and every supervised-restart replacement.
func (st *stressTarget) evilTotals() (allowed, denied int) {
	for _, d := range st.drivers {
		allowed += d.evilAllowed
		denied += d.evilDenied
	}
	return
}

// isErrnoOrNil reports whether a task-visible error is an honest errno (or
// no error at all) — the only outcomes a fault schedule is allowed to
// produce at the syscall boundary.
func isErrnoOrNil(err error) bool {
	if err == nil {
		return true
	}
	var e kernel.Errno
	return errors.As(err, &e)
}

type stressOp int

const (
	opWrite stressOp = iota
	opRead
	opXor
	opNoop
	opMmapCycle
	opKinds
)

// traceCapture, when passed to runOne, runs the whole simulation under the
// observability layer and receives its exported Chrome trace, metrics dump,
// and flight-recorder dump — the byte strings the determinism invariant
// compares across replays. forceFlight arms the flight recorder regardless
// of the seed's residue (the recorder is a pure observer — arming it never
// advances the virtual clock — so a forensics replay stays exact).
type traceCapture struct {
	trace       []byte
	metrics     []byte
	flight      []byte
	forceFlight bool
}

// runOne executes one seeded stress simulation and returns nil if every
// invariant held. With weaken set, the run instead arms the deliberately
// broken grant check ("grant.validate.skip") plus one scripted evil driver
// copy — the harness must then DETECT the isolation violation and return an
// error naming the canary; that self-test is what makes the green runs
// trustworthy.
func runOne(seed int64, weaken bool, cap *traceCapture) (retErr error) {
	defer func() {
		if r := recover(); r != nil {
			// A sim process panicking anywhere (backend included) is itself
			// an invariant violation; sim traps it to this goroutine.
			retErr = fmt.Errorf("invariant: simulation panicked: %v", r)
		}
	}()

	plan := faults.New(seed)
	rng := plan.Rand()
	env := sim.NewEnv()
	var fr *trace.FlightRecorder
	if cap != nil {
		tr := trace.New()
		trace.Install(env, tr)
		defer func() {
			trace.Uninstall(env)
			var tb, mb bytes.Buffer
			if err := tr.WriteChrome(&tb); err != nil && retErr == nil {
				retErr = err
			}
			if err := tr.WriteMetrics(&mb); err != nil && retErr == nil {
				retErr = err
			}
			cap.trace, cap.metrics = tb.Bytes(), mb.Bytes()
			if fr != nil {
				var fb bytes.Buffer
				if err := fr.WriteDump(&fb); err != nil && retErr == nil {
					retErr = err
				}
				cap.flight = fb.Bytes()
			}
		}()
	}

	// Every 4th seed (or all of them under -stress.supervised) runs with the
	// driver-VM supervisor armed: deaths the plan injects are then healed
	// automatically, under fire, while the workload keeps issuing operations.
	// Derived from the seed alone so -stress.seed replay stays exact.
	supervised := !weaken && (*stressSupervised || seed%4 == 3)

	// Every 4th seed (a different residue, so the two features also cross
	// under the -stress.* flags) arms the bulk-transfer fast path: the
	// grant-map cache at a threshold low enough that the tiny stress
	// read/write payloads route through it, plus doorbell coalescing in
	// interrupt mode. The isolation invariants below (canary, honest errnos,
	// liveness) must hold with cached mappings and batched doorbells exactly
	// as they do on the per-request assisted-copy path. The weakened run
	// stays on the copy path — its point is the evil copy slipping past a
	// broken grant check, which the map path would obscure.
	fastpath := !weaken && (*stressFastpath || seed%4 == 1)

	// A third residue arms the translation caches: the hypervisor's software
	// TLB plus batched grant hypercalls. Injected faults land on warm caches
	// here — a denied validation, a dropped copy, or a mid-burst driver death
	// must behave identically whether the translation was walked or cached,
	// and the canary stays untouchable either way. The weakened run again
	// stays dormant so the broken-check canary signal is unobscured.
	walkcache := !weaken && (*stressWalkcache || seed%4 == 2)

	// The fourth residue arms the open-loop load generator: a second
	// paravirtualized device (the load sink) shares the same guest and
	// driver VMs, and a seeded open-loop client mix — two QoS classes, the
	// bulk class admission-limited — floods it while the fault plan fires
	// on both channels. The sink channel is deliberately NOT part of the
	// phase-2 recovery: its per-request deadline is what must keep the
	// generator's clients live when the plan kills that backend, and every
	// outcome the clients observe must still be an honest errno.
	openloop := !weaken && (*stressOpenloop || seed%4 == 0)

	// The flight recorder rides the open-loop residue (or every seed under
	// -stress.flightrec): always-on digests over the very runs that flood the
	// ring, with the injected errnos, sheds, and restart episodes landing as
	// tail-based outlier captures. On a plain sweep (no traceCapture) a
	// retention-free tracer carries the digests so a 4 ms flood stays
	// O(ring capacity); a capturing run reuses its full tracer, and the dump
	// joins the byte-identical replay contract. Weakened runs stay dark so
	// the canary signal is unobscured.
	flightrec := !weaken && (*stressFlightrec || seed%4 == 0 || (cap != nil && cap.forceFlight))
	if flightrec {
		tr := trace.Get(env)
		if tr == nil {
			tr = trace.New()
			tr.SetEventRetention(false)
			trace.Install(env, tr)
			defer trace.Uninstall(env)
		}
		fr = tr.ArmFlightRecorder(trace.FlightConfig{
			Threshold: 2 * sim.Millisecond,
		})
	}

	// With -stress.handover, every 4th seed — the open-loop residue, so the
	// quiesce stage drains a ring that the generator keeps refilling —
	// additionally performs a planned driver-VM handover mid-run, with the
	// handover's own fault points armed so the sweep exercises every abort
	// path. Dormant unless the flag is set, so the default sweep (and its
	// byte-identical trace exports) is untouched. Supervised seeds skip it:
	// the harness-level handover and the supervisor would be two lifecycle
	// managers fighting over one channel.
	handoverArmed := !weaken && !supervised && *stressHandover && seed%4 == 0

	// The multi-VM arm (dormant unless -stress.multivm): two extra guest VMs
	// join the deployment, each with its own kernel, process, ungranted
	// canary, and CVD channel to the same stress device in the shared driver
	// VM. Their workloads are derived from the seed by plain arithmetic, not
	// the plan's rng, so arming the flag changes NOTHING in the base run's
	// random sequence — the same seed produces the same fault schedule with
	// or without the extra guests. The invariants become per-guest: every
	// extra guest's tasks stay live on per-request deadlines alone (their
	// channels are deliberately left out of the phase-2 recovery, like the
	// sink channel), they observe only honest errnos, and each guest's canary
	// — memory no operation from ANY guest ever granted — is byte-identical
	// after the run, however the shared driver VM died, restarted, or
	// scribbled.
	multivm := !weaken && *stressMultiVM

	h := hv.New(env, 64<<20)
	driverVM, err := h.CreateVM("driver", vmRAM)
	if err != nil {
		return err
	}
	driverK := kernel.New("driver", kernel.Linux, env, driverVM.Space, driverVM.RAM)
	guestVM, err := h.CreateVM("guest", vmRAM)
	if err != nil {
		return err
	}
	guestK := kernel.New("guest", kernel.Linux, env, guestVM.Space, guestVM.RAM)

	app, err := guestK.NewProcess("stress-app")
	if err != nil {
		return err
	}
	// The canary: guest process memory no operation ever declares a grant
	// for. Whatever faults fire, the driver VM must not be able to touch it.
	canary := []byte("grant-table-protected-canary-42!")
	canaryVA, err := app.AllocBytes(canary)
	if err != nil {
		return err
	}

	drv, err := newStressDriver(driverK, canaryVA)
	if err != nil {
		return err
	}

	mode := cvd.Interrupts
	if !weaken && rng.Intn(2) == 1 {
		mode = cvd.Polling
	}
	// The adaptive arm overrides the transport AFTER the rng draw above, so
	// the rest of the seed's random sequence — and thus its fault schedule —
	// is identical to the static-mode run of the same seed.
	adaptive := !weaken && *stressAdaptive
	if adaptive {
		mode = cvd.Adaptive
	}
	var deadline sim.Duration
	if supervised {
		// Supervised deployments run with per-request deadlines so an issuer
		// stuck behind a dead backend unblocks with ETIMEDOUT.
		deadline = 5 * sim.Millisecond
	}
	cfg := cvd.Config{
		HV: h, GuestVM: guestVM, GuestK: guestK,
		DriverVM: driverVM, DriverK: driverK,
		DevicePath: stressPath, Mode: mode,
		RequestDeadline: deadline,
	}
	if fastpath {
		cfg.MapCache = true
		cfg.MapThreshold = 1 // the stress payloads are tiny; force the map path
		cfg.CoalesceWindow = 20 * sim.Microsecond
	}
	if walkcache {
		cfg.TLB = true
		cfg.GrantBatch = true
	}
	if adaptive {
		// Batching rides the adaptive arm: multi-entry submission doorbells
		// and shared response IRQs under every fault the plan can throw.
		cfg.BatchSize = 8
		cfg.CoalesceWindow = 20 * sim.Microsecond
	}
	fe, be, err := cvd.Connect(cfg)
	if err != nil {
		return err
	}

	var gen *load.Generator
	if openloop {
		sink := load.NewSink(env, 2*sim.Microsecond, sim.Microsecond)
		driverK.RegisterDevice(load.SinkPath, sink, sink)
		if _, _, err := cvd.Connect(cvd.Config{
			HV: h, GuestVM: guestVM, GuestK: guestK,
			DriverVM: driverVM, DriverK: driverK,
			DevicePath: load.SinkPath, Mode: mode,
			// Liveness under fire: nothing ever reconnects this channel,
			// so requests stranded by a killed backend must unblock with
			// ETIMEDOUT on their own.
			RequestDeadline: 5 * sim.Millisecond,
			Admission:       map[uint8]int{2: 60},
		}); err != nil {
			return err
		}
		arr := load.Poisson
		if rng.Intn(2) == 1 {
			arr = load.Bursty
		}
		gen, err = load.NewGenerator(load.Profile{
			Path: load.SinkPath,
			Classes: []load.Class{
				{Name: "rt", QoS: 0, Size: 128, Weight: 1},
				{Name: "bulk", QoS: 2, Size: 1024, Weight: 2},
			},
			Arrival:  arr,
			Rate:     40_000,
			Clients:  8,
			Duration: 4 * sim.Millisecond,
			Seed:     seed,
		})
		if err != nil {
			return err
		}
		if err := gen.Start(guestK); err != nil {
			return err
		}
	}

	// The extra guests of the multi-VM arm. Setup consumes no rng: workload
	// shapes are pure arithmetic on (seed, guest, task, op), so reproduction
	// by seed is exact under the flag too.
	type xguest struct {
		app      *kernel.Process
		canary   []byte
		canaryVA mem.GuestVirt
		done     []bool
		viol     []error
	}
	var xguests []*xguest
	if multivm {
		for gi := 0; gi < 2; gi++ {
			name := fmt.Sprintf("guest-x%d", gi)
			vm, err := h.CreateVM(name, vmRAM)
			if err != nil {
				return err
			}
			k := kernel.New(name, kernel.Linux, env, vm.Space, vm.RAM)
			xapp, err := k.NewProcess(name + "-app")
			if err != nil {
				return err
			}
			xc := []byte(fmt.Sprintf("multi-guest-canary-%02d-intact!!", gi))
			xcVA, err := xapp.AllocBytes(xc)
			if err != nil {
				return err
			}
			// Same transport options as the main channel; the deadline is the
			// extra channel's only liveness mechanism (nothing ever reconnects
			// it), exactly like the sink channel.
			xcfg := cfg
			xcfg.GuestVM, xcfg.GuestK = vm, k
			xcfg.RequestDeadline = 5 * sim.Millisecond
			if _, _, err := cvd.Connect(xcfg); err != nil {
				return err
			}
			const xTasks, xOps = 2, 4
			xg := &xguest{app: xapp, canary: xc, canaryVA: xcVA,
				done: make([]bool, xTasks), viol: make([]error, xTasks)}
			xguests = append(xguests, xg)
			for ti := 0; ti < xTasks; ti++ {
				ti := ti
				ops := make([]stressOp, xOps)
				for j := range ops {
					// opWrite..opNoop, spread across guests/tasks by seed
					// arithmetic — deterministic, rng-free.
					ops[j] = stressOp((seed + int64(gi*7+ti*3+j)) % int64(opMmapCycle))
				}
				wbuf := []byte(fmt.Sprintf("xguest-%d-task-%d-payload", gi, ti))
				wVA, err := xapp.AllocBytes(wbuf)
				if err != nil {
					return err
				}
				rVA, err := xapp.Alloc(64)
				if err != nil {
					return err
				}
				xVA, err := xapp.AllocBytes(make([]byte, 32))
				if err != nil {
					return err
				}
				xapp.SpawnTask(fmt.Sprintf("xstress-%d-%d", gi, ti), func(tk *kernel.Task) {
					flags := devfile.ORdWr | devfile.ONonblock
					fd, err := tk.Open(stressPath, flags)
					if err != nil {
						if !isErrnoOrNil(err) {
							xg.viol[ti] = fmt.Errorf("open leaked non-errno error: %w", err)
						}
						xg.done[ti] = true
						return
					}
					for _, op := range ops {
						var err error
						switch op {
						case opWrite:
							_, err = tk.Write(fd, wVA, len(wbuf))
						case opRead:
							_, err = tk.Read(fd, rVA, 64)
						case opXor:
							_, err = tk.Ioctl(fd, sdXor, xVA)
						case opNoop:
							_, err = tk.Ioctl(fd, sdNoop, 0)
						}
						if err == nil {
							continue
						}
						if !isErrnoOrNil(err) {
							xg.viol[ti] = fmt.Errorf("op %d leaked non-errno error: %w", op, err)
							break
						}
						if kernel.IsErrno(err, kernel.EREMOTE) || kernel.IsErrno(err, kernel.EINVAL) ||
							kernel.IsErrno(err, kernel.ETIMEDOUT) {
							if fd2, err2 := tk.Open(stressPath, flags); err2 == nil {
								fd = fd2
							} else if !isErrnoOrNil(err2) {
								xg.viol[ti] = fmt.Errorf("reopen leaked non-errno error: %w", err2)
								break
							}
						}
					}
					if err := tk.Close(fd); err != nil && !isErrnoOrNil(err) {
						xg.viol[ti] = fmt.Errorf("close leaked non-errno error: %w", err)
					}
					xg.done[ti] = true
				})
			}
		}
	}

	// Arm the plan. The weakened run keeps everything else quiet so the one
	// evil copy demonstrably slips through the broken check.
	if weaken {
		plan.Probability("grant.validate.skip", 1.0)
		plan.FailAt("driver.evil", 1)
	} else {
		plan.Probability("grant.declare", 0.01)
		plan.Probability("grant.validate", 0.01)
		plan.Probability("hv.copy", 0.02)
		plan.Probability("hv.map", 0.01)
		plan.Probability("hv.unmap", 0.01)
		plan.Probability("hv.irq.drop", 0.02)
		plan.Probability("hv.irq.dup", 0.02)
		plan.Probability("driver.evil", 0.05)
		if rng.Intn(2) == 0 {
			// Half the seeds also kill the driver VM partway through.
			plan.FailAt("cvd.backend.die", 1+rng.Intn(40))
		}
		if supervised {
			// Supervised seeds additionally stress the supervision machinery
			// itself: occasional swallowed heartbeat acks and restart-time
			// boot failures.
			plan.Probability("cvd.heartbeat.drop", 0.02)
			plan.Probability("machine.restart.fail", 0.1)
		}
		if handoverArmed {
			// Handover seeds arm every abort path of the planned migration;
			// each abort must leave the predecessor serving (the liveness and
			// canary invariants below then apply to it unchanged).
			plan.Probability("machine.handover.fail", 0.1)
			plan.Probability("handover.drain.timeout", 0.1)
			plan.Probability("handover.warm.fail", 0.1)
		}
	}
	faults.Install(env, plan)
	defer faults.Uninstall(env)

	var sup *supervise.Supervisor
	var st *stressTarget
	if supervised {
		st = &stressTarget{env: env, h: h, fe: fe, be: be,
			canaryVA: canaryVA, drivers: []*stressDriver{drv}}
		sup = supervise.Start(env, st, supervise.Config{
			HeartbeatEvery: 2 * sim.Millisecond,
			BackoffBase:    sim.Millisecond,
			BackoffCap:     8 * sim.Millisecond,
			MaxRestarts:    3,
			StableAfter:    20 * sim.Millisecond,
		})
	}

	// The planned-handover arm: a proc kicks a cvd-level handover of the
	// stress channel at 3 ms — squarely inside the fault window and the
	// open-loop arrival window — through the same staged engine the Machine
	// uses. liveBE tracks the serving backend across the switch so phase 2's
	// manual recovery stops the right one.
	liveBE := be
	var hoDrivers []*stressDriver
	var hoEp handover.Episode
	var hoErr error
	hoRan := false
	if handoverArmed {
		env.Spawn("stress-handover", func(p *sim.Proc) {
			p.Sleep(3 * sim.Millisecond)
			var succVM *hv.VM
			var succK *kernel.Kernel
			var prep *cvd.HandoverPrep
			hoEp, hoErr = handover.Run(env, handover.Config{DrainDeadline: 2 * sim.Millisecond}, handover.Hooks{
				Prepare: func() error {
					vm, err := h.CreateVM(fmt.Sprintf("driver-h%d", seed), vmRAM)
					if err != nil {
						return err
					}
					k := kernel.New(vm.Name, kernel.Linux, env, vm.Space, vm.RAM)
					d2, err := newStressDriver(k, canaryVA)
					if err != nil {
						return err
					}
					hoDrivers = append(hoDrivers, d2)
					succVM, succK = vm, k
					return nil
				},
				BeginDrain: func() { fe.BeginDrain(10 * sim.Millisecond) },
				DrainIdle:  func() bool { return fe.Occupancy() == 0 },
				EndDrain:   func() { fe.EndDrain() },
				Switch: func() error {
					pr, err := cvd.PrepareHandover(fe, h, succVM, succK)
					if err != nil {
						return err
					}
					prep = pr
					pred := liveBE
					be2, err := cvd.CompleteHandover(fe, prep, succVM, succK, stressPath)
					if err != nil {
						return err
					}
					liveBE = be2
					if pred != nil {
						pred.Stop()
					}
					return nil
				},
				Abort: func(stage handover.Stage, cause string) {
					if prep != nil {
						prep.Discard()
					}
				},
			})
			hoRan = true
		})
	}

	// Randomized workload: a few tasks, each issuing a few operations.
	// Everything is drawn from the plan's rng before the simulation starts,
	// so the whole run is a pure function of the seed.
	nTasks := 3 + rng.Intn(5)
	opsPer := 2 + rng.Intn(6)
	if weaken {
		nTasks, opsPer = 1, 2
	}
	taskOps := make([][]stressOp, nTasks)
	for i := range taskOps {
		taskOps[i] = make([]stressOp, opsPer)
		for j := range taskOps[i] {
			if weaken {
				taskOps[i][j] = opWrite
			} else {
				taskOps[i][j] = stressOp(rng.Intn(int(opKinds)))
			}
		}
	}

	done := make([]bool, nTasks)
	violations := make([]error, nTasks)
	for i := 0; i < nTasks; i++ {
		i := i
		wbuf := []byte(fmt.Sprintf("task-%02d-payload-bytes", i))
		wVA, err := app.AllocBytes(wbuf)
		if err != nil {
			return err
		}
		rVA, err := app.Alloc(64)
		if err != nil {
			return err
		}
		xVA, err := app.AllocBytes(make([]byte, 32))
		if err != nil {
			return err
		}
		app.SpawnTask(fmt.Sprintf("stress-%d", i), func(tk *kernel.Task) {
			flags := devfile.ORdWr | devfile.ONonblock
			fd, err := tk.Open(stressPath, flags)
			if err != nil {
				if !isErrnoOrNil(err) {
					violations[i] = fmt.Errorf("open leaked non-errno error: %w", err)
				}
				done[i] = true
				return
			}
			for _, op := range taskOps[i] {
				var err error
				switch op {
				case opWrite:
					_, err = tk.Write(fd, wVA, len(wbuf))
				case opRead:
					_, err = tk.Read(fd, rVA, 64)
				case opXor:
					_, err = tk.Ioctl(fd, sdXor, xVA)
				case opNoop:
					_, err = tk.Ioctl(fd, sdNoop, 0)
				case opMmapCycle:
					var va mem.GuestVirt
					va, err = tk.Mmap(fd, mem.PageSize, 0)
					if err == nil {
						// Touching may fail under injected map faults; the
						// invariant is only that it neither panics nor hangs.
						var b [4]byte
						_ = app.UserRead(tk, va, b[:])
						_ = tk.Munmap(va, mem.PageSize)
					}
				}
				if err == nil {
					continue
				}
				if !isErrnoOrNil(err) {
					violations[i] = fmt.Errorf("op %d leaked non-errno error: %w", op, err)
					break
				}
				if kernel.IsErrno(err, kernel.EREMOTE) || kernel.IsErrno(err, kernel.EINVAL) ||
					kernel.IsErrno(err, kernel.ETIMEDOUT) {
					// Driver VM restarted under us (or a request outlived its
					// deadline): the fd is stale, exactly as §8 describes.
					// Reopen and carry on.
					if fd2, err2 := tk.Open(stressPath, flags); err2 == nil {
						fd = fd2
					} else if !isErrnoOrNil(err2) {
						violations[i] = fmt.Errorf("reopen leaked non-errno error: %w", err2)
						break
					}
				}
			}
			if err := tk.Close(fd); err != nil && !isErrnoOrNil(err) {
				violations[i] = fmt.Errorf("close leaked non-errno error: %w", err)
			}
			done[i] = true
		})
	}

	// Phase 1: run with faults firing. 50ms of simulated time is far beyond
	// what the workload needs when nothing is stuck. A supervisor, when
	// armed, heals injected deaths inside this window; its watchdog keeps
	// the calendar busy, so stop it before any full calendar drain.
	env.RunUntil(env.Now().Add(50 * sim.Millisecond))
	if sup != nil {
		sup.Stop()
	}
	t1 := env.Now()

	allDone := func() bool {
		for _, d := range done {
			if !d {
				return false
			}
		}
		return true
	}
	xAllDone := func() bool {
		for _, xg := range xguests {
			for _, d := range xg.done {
				if !d {
					return false
				}
			}
		}
		return true
	}

	// Phase 2: the fault window closes. If anything is still blocked — the
	// driver VM died, or a doorbell/response interrupt was dropped with no
	// later traffic to re-scan the ring — run the paper's recovery: restart
	// the driver VM and reconnect the frontend. The open-loop sink channel
	// is deliberately left out of the recovery: its clients must drain on
	// per-request deadlines alone, so phase 2 only removes the fault plan
	// and lets the calendar run dry for them.
	if !allDone() || (gen != nil && !gen.Done()) || !xAllDone() {
		faults.Uninstall(env)
		if !allDone() {
			cur := liveBE // a committed handover may have replaced the backend
			if st != nil {
				cur = st.be // the supervisor may have replaced the backend
			}
			cur.Stop()
			driverVM2, err := h.CreateVM("driver-restarted", vmRAM)
			if err != nil {
				return err
			}
			driverK2 := kernel.New("driver-restarted", kernel.Linux, env, driverVM2.Space, driverVM2.RAM)
			if _, err := newStressDriver(driverK2, canaryVA); err != nil {
				return err
			}
			if _, err := cvd.Reconnect(fe, h, driverVM2, driverK2, stressPath); err != nil {
				return err
			}
			// The manual operator restart also lifts any degraded-mode
			// verdict a budget-exhausted supervisor left behind, as
			// Machine.RestartDriverVM does.
			fe.SetDegraded(false)
		}
		env.Run()
	}
	if env.Now() < t1 {
		return fmt.Errorf("invariant: virtual clock ran backwards (%v -> %v)", t1, env.Now())
	}

	// Invariant: liveness. Every task has returned from every syscall.
	if !allDone() {
		blocked := 0
		for _, d := range done {
			if !d {
				blocked++
			}
		}
		return fmt.Errorf("invariant: %d/%d tasks still blocked after recovery (deadlocked: %v; %v)",
			blocked, nTasks, env.Deadlocked(), plan)
	}
	// Invariant: open-loop liveness and honesty. The generator's clients
	// drained despite the fault schedule (the sink channel's deadlines are
	// the only thing unsticking them from a killed backend), and none of
	// them saw anything but an honest errno.
	if gen != nil {
		if !gen.Done() {
			return fmt.Errorf("invariant: open-loop clients still blocked after recovery (deadlocked: %v; %v)",
				env.Deadlocked(), plan)
		}
		lr := gen.Result()
		if len(lr.Violations) > 0 {
			return fmt.Errorf("invariant: open-loop generator: %d violations, first: %s (%v)",
				len(lr.Violations), lr.Violations[0], plan)
		}
		if lr.Offered == 0 {
			return fmt.Errorf("invariant: open-loop generator scheduled no arrivals (%v)", plan)
		}
	}
	// Invariant: handover honesty. The episode log must agree with the
	// returned error — a "successful" handover that did not reach StageDone
	// (or an abort that claims it committed) means the engine lost track of
	// which driver VM owns the channel.
	if hoRan {
		if hoErr == nil && (hoEp.Aborted || hoEp.Stage != handover.StageDone) {
			return fmt.Errorf("invariant: handover returned nil but episode %+v (%v)", hoEp, plan)
		}
		if hoErr != nil && !hoEp.Aborted {
			return fmt.Errorf("invariant: handover failed (%v) but episode not aborted: %+v (%v)", hoErr, hoEp, plan)
		}
	}
	// Invariant: honest errnos only.
	for i, v := range violations {
		if v != nil {
			return fmt.Errorf("invariant: task %d: %v (%v)", i, v, plan)
		}
	}
	// Invariant: isolation. The canary was never granted; it must be intact,
	// and no undeclared driver copy may have been allowed through — counting
	// the replacement drivers supervised restarts installed, which the fault
	// plan attacks just like the original.
	evilAllowed, evilDenied := drv.evilAllowed, drv.evilDenied
	if st != nil {
		evilAllowed, evilDenied = st.evilTotals()
	}
	for _, d := range hoDrivers {
		// Handover-successor drivers face the same evil-copy probe.
		evilAllowed += d.evilAllowed
		evilDenied += d.evilDenied
	}
	got := make([]byte, len(canary))
	if err := app.Mem.Read(canaryVA, got); err != nil {
		return fmt.Errorf("canary readback: %v", err)
	}
	if string(got) != string(canary) {
		return fmt.Errorf("invariant: canary corrupted: %q -> %q (evil allowed=%d denied=%d; %v)",
			canary, got, evilAllowed, evilDenied, plan)
	}
	if evilAllowed > 0 {
		return fmt.Errorf("invariant: hypervisor allowed %d undeclared driver copies (%v)",
			evilAllowed, plan)
	}
	// Invariants, per extra guest of the multi-VM arm: liveness on deadlines
	// alone, honest errnos only, and an intact canary — one guest's traffic
	// (or the shared driver VM's death) must never leak into another guest's
	// ungranted memory.
	for gi, xg := range xguests {
		for ti, d := range xg.done {
			if !d {
				return fmt.Errorf("invariant: extra guest %d task %d still blocked after recovery (deadlocked: %v; %v)",
					gi, ti, env.Deadlocked(), plan)
			}
		}
		for ti, v := range xg.viol {
			if v != nil {
				return fmt.Errorf("invariant: extra guest %d task %d: %v (%v)", gi, ti, v, plan)
			}
		}
		got := make([]byte, len(xg.canary))
		if err := xg.app.Mem.Read(xg.canaryVA, got); err != nil {
			return fmt.Errorf("extra guest %d canary readback: %v", gi, err)
		}
		if !bytes.Equal(got, xg.canary) {
			return fmt.Errorf("invariant: extra guest %d canary corrupted: %q -> %q (%v)",
				gi, xg.canary, got, plan)
		}
	}
	return nil
}

// writeForensics replays a failing seed under the full observability layer —
// flight recorder force-armed — and writes the flight-recorder dump, metrics
// snapshot, and Chrome trace to a temp artifact directory. The simulation is
// a pure function of the seed and the recorder is a pure observer, so the
// replay reproduces the failure exactly; the artifacts are what a bug report
// attaches next to the reproduction command. Returns the directory ("" if
// the artifacts could not be written — forensics must never mask the real
// failure).
func writeForensics(t *testing.T, seed int64) string {
	t.Helper()
	c := traceCapture{forceFlight: true}
	_ = runOne(seed, false, &c) // same invariant failure, now instrumented
	dir, err := os.MkdirTemp("", fmt.Sprintf("stress-forensics-seed%d-", seed))
	if err != nil {
		t.Logf("forensics: %v", err)
		return ""
	}
	for name, data := range map[string][]byte{
		"flightrec.txt": c.flight,
		"metrics.txt":   c.metrics,
		"trace.json":    c.trace,
	} {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Logf("forensics: %v", err)
			return ""
		}
	}
	return dir
}

// TestStressSeeded sweeps seeds (1000 by default: -stress.seeds) and fails
// on the first seed whose run breaks an invariant, printing the reproduction
// command and writing flight-recorder forensics for the failing seed.
func TestStressSeeded(t *testing.T) {
	if *stressSeed >= 0 {
		if err := runOne(*stressSeed, false, nil); err != nil {
			t.Fatalf("seed %d: %v\nforensics: %s", *stressSeed, err, writeForensics(t, *stressSeed))
		}
		return
	}
	n := int64(*stressSeeds)
	if raceEnabled && n > 100 {
		// Each seeded simulation is ~30x slower under the race detector;
		// sweep a slice of the seed space there and the full breadth in the
		// plain run.
		n = 100
	}
	for seed := int64(0); seed < n; seed++ {
		if err := runOne(seed, false, nil); err != nil {
			t.Fatalf("stress invariant broken at seed %d: %v\nreproduce: go test ./internal/faults -run TestStressSeeded -stress.seed=%d\nforensics: %s",
				seed, err, seed, writeForensics(t, seed))
		}
	}
}

// TestStressDeterministic replays one seed twice and demands identical fault
// activity — the property the whole reproduce-by-seed workflow rests on.
func TestStressDeterministic(t *testing.T) {
	summary := func() string {
		// runOne uninstalls its plan, so capture activity via a fresh run's
		// returned state: re-run and compare the error strings and a probe
		// plan's trace.
		if err := runOne(7, false, nil); err != nil {
			return "err: " + err.Error()
		}
		return "ok"
	}
	a, b := summary(), summary()
	if a != b {
		t.Fatalf("same seed diverged:\n%s\nvs\n%s", a, b)
	}
}

// TestStressTraceDeterministic replays 50 stress seeds twice each under the
// observability layer and demands byte-identical exports: the Chrome trace
// file and the metrics dump are pure functions of (seed, config), exactly
// like the simulation itself. This is the property that makes a trace file
// attached to a bug report trustworthy — re-running the printed seed
// regenerates it bit for bit.
func TestStressTraceDeterministic(t *testing.T) {
	n := int64(50)
	if *stressAdaptive || *stressMultiVM {
		// The adaptive and multi-VM arms sweep wider: stance switching and
		// batch flush timing (adaptive) and cross-guest interleavings over
		// the shared driver VM (multivm) add schedules the base runs never
		// exercise, and the whole point of each arm is that none of them
		// leak into the exports.
		n = 250
	}
	if raceEnabled {
		n = 10 // each traced run is ~30x slower under the race detector
	}
	for seed := int64(0); seed < n; seed++ {
		run := func() (trc, met, fl []byte) {
			var c traceCapture
			if err := runOne(seed, false, &c); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return c.trace, c.metrics, c.flight
		}
		t1, m1, f1 := run()
		t2, m2, f2 := run()
		if len(t1) == 0 || len(m1) == 0 {
			t.Fatalf("seed %d: empty trace (%d bytes) or metrics (%d bytes) export", seed, len(t1), len(m1))
		}
		if seed%4 == 0 && len(f1) == 0 {
			t.Fatalf("seed %d: flight recorder armed (open-loop residue) but dump is empty", seed)
		}
		if !bytes.Equal(t1, t2) {
			t.Fatalf("seed %d: trace file diverged between identical runs (%d vs %d bytes)", seed, len(t1), len(t2))
		}
		if !bytes.Equal(m1, m2) {
			t.Fatalf("seed %d: metrics dump diverged between identical runs:\n--- run 1\n%s\n--- run 2\n%s", seed, m1, m2)
		}
		if !bytes.Equal(f1, f2) {
			t.Fatalf("seed %d: flight-recorder dump diverged between identical runs:\n--- run 1\n%s\n--- run 2\n%s", seed, f1, f2)
		}
	}
}

// TestHarnessCatchesWeakenedGrantCheck arms the deliberately broken grant
// check and verifies the harness catches the resulting isolation violation —
// proof the canary invariant has teeth.
func TestHarnessCatchesWeakenedGrantCheck(t *testing.T) {
	err := runOne(4242, true, nil)
	if err == nil {
		t.Fatal("weakened grant check went undetected: the stress harness has no teeth")
	}
	if !strings.Contains(err.Error(), "canary") {
		t.Fatalf("weakened grant check detected, but not via the canary: %v", err)
	}
	t.Logf("caught as intended (seed 4242): %v", err)
}
