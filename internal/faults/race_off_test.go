//go:build !race

package faults_test

// raceEnabled mirrors the race detector's presence so the stress sweep can
// scale its seed count: full breadth normally, a slice of it under -race,
// where each simulation costs ~30x more.
const raceEnabled = false
