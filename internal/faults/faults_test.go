package faults

import (
	"testing"

	"paradice/internal/sim"
)

// Two plans with the same seed and the same consultation order make
// identical decisions — the property seed reproduction rests on.
func TestPlanDeterministic(t *testing.T) {
	run := func(seed int64) []bool {
		p := New(seed).Probability("a", 0.5).Probability("b", 0.1)
		var got []bool
		for i := 0; i < 200; i++ {
			got = append(got, p.decide("a") != nil, p.decide("b") != nil)
		}
		return got
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical seeds", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical decision streams")
	}
}

func TestScriptedFailAt(t *testing.T) {
	p := New(1).FailAtWith("x", 3, 77)
	for i := 1; i <= 5; i++ {
		d := p.decide("x")
		if (d != nil) != (i == 3) {
			t.Fatalf("hit %d: fired=%v", i, d != nil)
		}
		if i == 3 && (d.Hit != 3 || d.Arg != 77) {
			t.Fatalf("hit 3 decision = %+v", d)
		}
	}
	if p.Hits("x") != 5 || p.Injected("x") != 1 {
		t.Fatalf("hits=%d injected=%d, want 5/1", p.Hits("x"), p.Injected("x"))
	}
}

func TestUnarmedPointNeverFires(t *testing.T) {
	p := New(7)
	for i := 0; i < 1000; i++ {
		if p.decide("never") != nil {
			t.Fatal("unarmed point fired")
		}
	}
}

func TestInstallPointUninstall(t *testing.T) {
	env := sim.NewEnv()
	if Point(env, "a") != nil {
		t.Fatal("no plan installed, yet Point fired")
	}
	if Point(nil, "a") != nil {
		t.Fatal("nil env must be a no-op")
	}
	p := New(3).FailAt("a", 1)
	Install(env, p)
	if Installed(env) != p {
		t.Fatal("Installed did not return the plan")
	}
	if Point(env, "a") == nil {
		t.Fatal("scripted first hit did not fire through Point")
	}
	Uninstall(env)
	if Point(env, "a") != nil || Installed(env) != nil {
		t.Fatal("plan survived Uninstall")
	}
}

func TestProbabilityRoughlyHonored(t *testing.T) {
	p := New(99).Probability("p", 0.3)
	fired := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if p.decide("p") != nil {
			fired++
		}
	}
	if fired < n/5 || fired > n/2 {
		t.Fatalf("prob 0.3 fired %d/%d times", fired, n)
	}
}
