//go:build race

package faults_test

// See race_off_test.go.
const raceEnabled = true
