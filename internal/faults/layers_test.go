package faults_test

// Per-layer property tests: each wired injection point, exercised in
// isolation, produces exactly the failure its layer promises — errors
// surface as errnos, memory stays untouched, interrupts drop or duplicate
// without corrupting ISR state.

import (
	"bytes"
	"testing"

	"paradice/internal/cvd"
	"paradice/internal/devfile"
	"paradice/internal/faults"
	"paradice/internal/hv"
	"paradice/internal/iommu"
	"paradice/internal/kernel"
	"paradice/internal/mem"
	"paradice/internal/sim"
)

// miniRig is the smallest deployment that exercises the CVD choke points:
// one guest, one driver VM, one stress device.
type miniRig struct {
	env     *sim.Env
	h       *hv.Hypervisor
	guestK  *kernel.Kernel
	driverK *kernel.Kernel
	app     *kernel.Process
	drv     *stressDriver
	fe      *cvd.Frontend
	be      *cvd.Backend
}

func newMiniRig(t *testing.T) *miniRig {
	t.Helper()
	env := sim.NewEnv()
	h := hv.New(env, 64<<20)
	driverVM, err := h.CreateVM("driver", 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	driverK := kernel.New("driver", kernel.Linux, env, driverVM.Space, driverVM.RAM)
	guestVM, err := h.CreateVM("guest", 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	guestK := kernel.New("guest", kernel.Linux, env, guestVM.Space, guestVM.RAM)
	drv, err := newStressDriver(driverK, 0)
	if err != nil {
		t.Fatal(err)
	}
	fe, be, err := cvd.Connect(cvd.Config{
		HV: h, GuestVM: guestVM, GuestK: guestK,
		DriverVM: driverVM, DriverK: driverK,
		DevicePath: stressPath, Mode: cvd.Interrupts,
	})
	if err != nil {
		t.Fatal(err)
	}
	app, err := guestK.NewProcess("app")
	if err != nil {
		t.Fatal(err)
	}
	return &miniRig{env: env, h: h, guestK: guestK, driverK: driverK,
		app: app, drv: drv, fe: fe, be: be}
}

// An injected hypercall copy failure surfaces as EFAULT to the guest and
// leaves the driver's memory untouched; the channel then carries the next
// operation normally.
func TestInjectedCopyFaultSurfacesAsEFAULT(t *testing.T) {
	r := newMiniRig(t)
	faults.Install(r.env, faults.New(1).FailAt("hv.copy", 1))
	defer faults.Uninstall(r.env)
	var errFirst, errSecond error
	r.app.SpawnTask("main", func(tk *kernel.Task) {
		fd, err := tk.Open(stressPath, devfile.OWrOnly)
		if err != nil {
			t.Error(err)
			return
		}
		src, _ := r.app.AllocBytes([]byte("payload"))
		_, errFirst = tk.Write(fd, src, 7)
		_, errSecond = tk.Write(fd, src, 7)
	})
	r.env.Run()
	if !kernel.IsErrno(errFirst, kernel.EFAULT) {
		t.Fatalf("first write: %v, want EFAULT", errFirst)
	}
	if errSecond != nil {
		t.Fatalf("second write: %v, want success", errSecond)
	}
	// The faulted copy never reached the driver: only the second write's
	// bytes are in its store.
	if string(r.drv.data) != "payload" {
		t.Fatalf("driver data = %q, want exactly one payload", r.drv.data)
	}
}

// An injected grant-declaration failure surfaces as ENOMEM before anything
// crosses the boundary; the table is not leaked and the next declaration
// works.
func TestInjectedDeclareFailureSurfacesAsENOMEM(t *testing.T) {
	r := newMiniRig(t)
	faults.Install(r.env, faults.New(1).FailAt("grant.declare", 1))
	defer faults.Uninstall(r.env)
	var errFirst, errSecond error
	r.app.SpawnTask("main", func(tk *kernel.Task) {
		fd, err := tk.Open(stressPath, devfile.OWrOnly)
		if err != nil {
			t.Error(err)
			return
		}
		src, _ := r.app.AllocBytes([]byte("x"))
		_, errFirst = tk.Write(fd, src, 1)
		_, errSecond = tk.Write(fd, src, 1)
	})
	r.env.Run()
	if !kernel.IsErrno(errFirst, kernel.ENOMEM) {
		t.Fatalf("first write: %v, want ENOMEM", errFirst)
	}
	if errSecond != nil {
		t.Fatalf("second write: %v, want success", errSecond)
	}
	if r.be.OpsHandled == 0 {
		t.Fatal("backend handled nothing; the channel should still work")
	}
}

// An injected grant-validation denial makes the hypervisor refuse a
// perfectly legitimate driver copy — the driver sees the same EFAULT a
// compromised driver would, and the guest gets an honest errno.
func TestInjectedValidateDenialSurfacesAsEFAULT(t *testing.T) {
	r := newMiniRig(t)
	faults.Install(r.env, faults.New(1).FailAt("grant.validate", 1))
	defer faults.Uninstall(r.env)
	var errFirst error
	r.app.SpawnTask("main", func(tk *kernel.Task) {
		fd, err := tk.Open(stressPath, devfile.OWrOnly)
		if err != nil {
			t.Error(err)
			return
		}
		src, _ := r.app.AllocBytes([]byte("y"))
		_, errFirst = tk.Write(fd, src, 1)
	})
	r.env.Run()
	if !kernel.IsErrno(errFirst, kernel.EFAULT) {
		t.Fatalf("write under injected denial: %v, want EFAULT", errFirst)
	}
	if len(r.drv.data) != 0 {
		t.Fatalf("driver data = %q, want none (copy was denied)", r.drv.data)
	}
}

// Dropped and duplicated inter-VM interrupts: a drop means the ISR never
// runs, a dup means it runs twice; ISR counts are exact.
func TestInjectedIRQDropAndDup(t *testing.T) {
	env := sim.NewEnv()
	h := hv.New(env, 16<<20)
	vm, err := h.CreateVM("v", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	vec := vm.AllocVector()
	fired := 0
	vm.RegisterISR(vec, func() { fired++ })
	// A dropped delivery returns before the dup point is consulted, so the
	// dup point's first hit is the SECOND send.
	faults.Install(env, faults.New(1).
		FailAt("hv.irq.drop", 1). // first send: lost
		FailAt("hv.irq.dup", 1))  // second send: doubled
	defer faults.Uninstall(env)
	h.SendInterrupt(vm, vec)
	env.Run()
	if fired != 0 {
		t.Fatalf("dropped interrupt fired %d times", fired)
	}
	h.SendInterrupt(vm, vec)
	env.Run()
	if fired != 2 {
		t.Fatalf("duplicated interrupt fired %d times, want 2", fired)
	}
	h.SendInterrupt(vm, vec)
	env.Run()
	if fired != 3 {
		t.Fatalf("plain interrupt brought the count to %d, want 3", fired)
	}
}

// An injected IOMMU translation fault kills one device DMA access at the
// IOMMU — physical memory is untouched — and the next access works.
func TestInjectedIOMMUTranslationFault(t *testing.T) {
	env := sim.NewEnv()
	phys := mem.NewPhysMem()
	alloc := phys.NewAllocator("dev", 0, 1<<20)
	spa, err := alloc.AllocPages(1)
	if err != nil {
		t.Fatal(err)
	}
	dom := iommu.NewDomain("testdev")
	if err := dom.MapRange(0, spa, 1, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	dma := &iommu.DMA{Dom: dom, Phys: phys, Env: env}
	faults.Install(env, faults.New(1).FailAt("iommu.translate", 2))
	defer faults.Uninstall(env)

	if err := dma.Write(0, []byte("dma data")); err != nil {
		t.Fatalf("first DMA write: %v", err)
	}
	err = dma.Write(0, []byte("OVERWRITE"))
	if _, ok := err.(*iommu.DMAFault); !ok {
		t.Fatalf("second DMA write: %v, want *iommu.DMAFault", err)
	}
	got := make([]byte, 8)
	if err := dma.Read(0, got); err != nil {
		t.Fatalf("third DMA read: %v", err)
	}
	if !bytes.Equal(got, []byte("dma data")) {
		t.Fatalf("faulted DMA modified memory: %q", got)
	}
}

// A backend killed by the fault plan stops dispatching; Hits/Injected
// bookkeeping lets the harness tell exactly when.
func TestInjectedBackendDeathStopsDispatch(t *testing.T) {
	r := newMiniRig(t)
	plan := faults.New(1).FailAt("cvd.backend.die", 6)
	faults.Install(r.env, plan)
	defer faults.Uninstall(r.env)
	completed := 0
	r.app.SpawnTask("main", func(tk *kernel.Task) {
		fd, err := tk.Open(stressPath, devfile.OWrOnly)
		if err != nil {
			t.Error(err)
			return
		}
		src, _ := r.app.AllocBytes([]byte("z"))
		for i := 0; i < 10; i++ {
			if _, err := tk.Write(fd, src, 1); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
			completed++
		}
		t.Error("all writes returned despite the backend dying")
	})
	r.env.RunUntil(sim.Time(20 * sim.Millisecond))
	if plan.Injected("cvd.backend.die") != 1 {
		t.Fatalf("backend death injected %d times, want 1", plan.Injected("cvd.backend.die"))
	}
	if completed == 0 || completed == 10 {
		t.Fatalf("completed writes = %d, want some but not all", completed)
	}
	// The post-death operation hangs until a Reconnect — exactly the state
	// the restart-under-load test (internal/cvd) recovers from.
	if got := r.env.Deadlocked(); len(got) == 0 {
		t.Fatal("no deadlocked process; the post-death write should be blocked")
	}
}
