// Package devinfo implements Paradice's device info modules (§5.1): small
// guest kernel modules that export the device information applications need
// before they can use a device — PCI identity for the GPU's libraries, the
// input device's capabilities, supported camera resolutions — plus the
// virtual PCI bus the guests hang Paradice devices from. These are the only
// per-class components a new device class needs, which is the crux of the
// paper's low-engineering-effort claim (Table 1).
package devinfo

import (
	"fmt"

	"paradice/internal/device/camera"
	"paradice/internal/kernel"
)

// InstallVirtualPCIBus creates the virtual PCI bus Paradice devices appear
// on in the guest.
func InstallVirtualPCIBus(k *kernel.Kernel) {
	k.SetSysInfo("bus/pci0", "paradice-virtual-pci")
}

// InstallGPU exports the GPU's PCI identity and memory size, which
// userspace (the X server, Mesa/Gallium) reads to pick its driver stack.
func InstallGPU(k *kernel.Kernel, vendor, device uint32, vramBytes uint64) {
	k.SetSysInfo("pci0/gpu/vendor", fmt.Sprintf("%#x", vendor))
	k.SetSysInfo("pci0/gpu/device", fmt.Sprintf("%#x", device))
	k.SetSysInfo("pci0/gpu/vram_bytes", fmt.Sprintf("%d", vramBytes))
	k.SetSysInfo("pci0/gpu/driver", "radeon")
}

// InstallInput exports an input device's identity and event capabilities.
func InstallInput(k *kernel.Kernel, path, name string, evBits uint32) {
	k.SetSysInfo("input/"+path+"/name", name)
	k.SetSysInfo("input/"+path+"/ev", fmt.Sprintf("%#x", evBits))
}

// InstallCamera exports the camera's supported capture modes.
func InstallCamera(k *kernel.Kernel, path, name string) {
	k.SetSysInfo("video/"+path+"/name", name)
	modes := ""
	for i, r := range camera.Resolutions {
		if i > 0 {
			modes += " "
		}
		modes += fmt.Sprintf("%dx%d", r.W, r.H)
	}
	k.SetSysInfo("video/"+path+"/modes", modes)
}

// InstallAudio exports the audio controller's identity and rate range.
func InstallAudio(k *kernel.Kernel, path, name string) {
	k.SetSysInfo("sound/"+path+"/name", name)
	k.SetSysInfo("sound/"+path+"/rates", "8000-192000")
}

// InstallNetmapEthernet exports the netmap-capable interface's identity.
func InstallNetmapEthernet(k *kernel.Kernel, ifname string) {
	k.SetSysInfo("net/"+ifname+"/driver", "e1000e+netmap")
	k.SetSysInfo("net/"+ifname+"/speed", "1000")
}
