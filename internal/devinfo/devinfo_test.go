package devinfo

import (
	"strings"
	"testing"

	"paradice/internal/hv"
	"paradice/internal/kernel"
	"paradice/internal/sim"
)

func newKernel(t testing.TB) *kernel.Kernel {
	t.Helper()
	env := sim.NewEnv()
	h := hv.New(env, 32<<20)
	vm, err := h.CreateVM("g", 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	return kernel.New("g", kernel.Linux, env, vm.Space, 8<<20)
}

func TestGPUInfoExported(t *testing.T) {
	k := newKernel(t)
	InstallVirtualPCIBus(k)
	InstallGPU(k, 0x1002, 0x6779, 1<<30)
	if v, ok := k.SysInfo("pci0/gpu/vendor"); !ok || v != "0x1002" {
		t.Fatalf("vendor = %q, %v", v, ok)
	}
	if v, ok := k.SysInfo("pci0/gpu/device"); !ok || v != "0x6779" {
		t.Fatalf("device = %q, %v", v, ok)
	}
	if v, ok := k.SysInfo("pci0/gpu/driver"); !ok || v != "radeon" {
		t.Fatalf("driver = %q, %v", v, ok)
	}
	if _, ok := k.SysInfo("bus/pci0"); !ok {
		t.Fatal("virtual PCI bus missing")
	}
}

func TestCameraModesListAllResolutions(t *testing.T) {
	k := newKernel(t)
	InstallCamera(k, "/dev/video0", "Logitech HD Pro Webcam C920")
	modes, ok := k.SysInfo("video//dev/video0/modes")
	if !ok {
		t.Fatal("modes missing")
	}
	for _, want := range []string{"1280x720", "1600x896", "1920x1080"} {
		if !strings.Contains(modes, want) {
			t.Fatalf("modes %q missing %s", modes, want)
		}
	}
}

func TestOtherClasses(t *testing.T) {
	k := newKernel(t)
	InstallInput(k, "/dev/input/event0", "Dell USB Mouse", 6)
	InstallAudio(k, "/dev/snd/pcmC0D0p", "Intel Panther Point")
	InstallNetmapEthernet(k, "em0")
	for _, key := range []string{
		"input//dev/input/event0/name",
		"sound//dev/snd/pcmC0D0p/rates",
		"net/em0/driver",
	} {
		if _, ok := k.SysInfo(key); !ok {
			t.Fatalf("missing %s", key)
		}
	}
}
