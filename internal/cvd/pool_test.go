package cvd

import (
	"testing"

	"paradice/internal/devfile"
	"paradice/internal/hv"
	"paradice/internal/kernel"
	"paradice/internal/sim"
)

// poolRig is a driver VM with a worker pool serving two guest channels to
// the same test device — the smallest topology where the pool's fairness
// and per-channel ordering contracts are observable.
type poolRig struct {
	env     *sim.Env
	pool    *Pool
	driverK *kernel.Kernel
	guests  [2]*kernel.Kernel
	fes     [2]*Frontend
	bes     [2]*Backend
}

func newPoolRig(t *testing.T, workers, quantum int) *poolRig {
	t.Helper()
	env := sim.NewEnv()
	h := hv.New(env, 256<<20)
	driverVM, err := h.CreateVM("driver", 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	driverK := kernel.New("driver", kernel.Linux, env, driverVM.Space, driverVM.RAM)
	driverK.Lane = env.AllocLane()
	drv := &testDriver{k: driverK, wq: driverK.NewWaitQueue("testdrv")}
	driverK.RegisterDevice("/dev/testdev", drv, drv)
	pool := NewPool(driverK, workers, quantum)

	r := &poolRig{env: env, pool: pool, driverK: driverK}
	for i, name := range []string{"guest0", "guest1"} {
		vm, err := h.CreateVM(name, 32<<20)
		if err != nil {
			t.Fatal(err)
		}
		k := kernel.New(name, kernel.Linux, env, vm.Space, vm.RAM)
		k.Lane = env.AllocLane()
		fe, be, err := Connect(Config{
			HV: h, GuestVM: vm, GuestK: k,
			DriverVM: driverVM, DriverK: driverK,
			DevicePath: "/dev/testdev", Mode: Polling,
			Pool: pool,
		})
		if err != nil {
			t.Fatal(err)
		}
		r.guests[i], r.fes[i], r.bes[i] = k, fe, be
	}
	return r
}

// Per-channel FIFO: however many workers race over the queues, one
// channel's operations must be STARTED in post order — the same guarantee
// the thread-per-op dispatcher gives (it spawns handlers in slot-scan
// order). seq is the frontend's monotonic post counter, so the serve-order
// trace per backend must be strictly increasing.
func TestPoolPerChannelFIFO(t *testing.T) {
	r := newPoolRig(t, 3, 2)
	type serve struct {
		be  *Backend
		seq uint32
	}
	var serves []serve
	r.pool.onServe = func(b *Backend, seq uint32) {
		serves = append(serves, serve{b, seq})
	}

	for gi := 0; gi < 2; gi++ {
		gi := gi
		p, err := r.guests[gi].NewProcess("burst")
		if err != nil {
			t.Fatal(err)
		}
		// Several tasks per guest so posts from one channel overlap in the
		// ring while the pool is backed up.
		for ti := 0; ti < 3; ti++ {
			p.SpawnTask("t", func(tk *kernel.Task) {
				fd, err := tk.Open("/dev/testdev", devfile.ORdWr)
				if err != nil {
					t.Error(err)
					return
				}
				buf, _ := p.Alloc(256)
				for n := 0; n < 20; n++ {
					if _, err := tk.Write(fd, buf, 256); err != nil {
						t.Error(err)
						return
					}
				}
				tk.Close(fd)
			})
		}
	}
	r.env.Run()

	if r.pool.Served == 0 {
		t.Fatal("pool served nothing — operations bypassed it")
	}
	last := map[*Backend]uint32{}
	for i, s := range serves {
		if prev, seen := last[s.be]; seen && s.seq <= prev {
			t.Fatalf("serve %d: channel %s seq %d after %d — per-channel FIFO broken",
				i, s.be.guestVM.Name, s.seq, prev)
		}
		last[s.be] = s.seq
	}
	if len(last) != 2 {
		t.Fatalf("served %d channels, want 2", len(last))
	}
}

// Deficit round-robin: with both channels backlogged and quantum q, the
// serve trace must never run more than q consecutive operations from one
// channel — the hot channel cannot monopolize the workers.
func TestPoolQuantumBound(t *testing.T) {
	const quantum = 2
	r := newPoolRig(t, 1, quantum) // one worker: the serve trace is the schedule
	var trace []*Backend
	r.pool.onServe = func(b *Backend, seq uint32) { trace = append(trace, b) }

	for gi := 0; gi < 2; gi++ {
		gi := gi
		p, err := r.guests[gi].NewProcess("flood")
		if err != nil {
			t.Fatal(err)
		}
		for ti := 0; ti < 4; ti++ {
			p.SpawnTask("t", func(tk *kernel.Task) {
				fd, err := tk.Open("/dev/testdev", devfile.ORdWr)
				if err != nil {
					t.Error(err)
					return
				}
				buf, _ := p.Alloc(64)
				for n := 0; n < 25; n++ {
					if _, err := tk.Write(fd, buf, 64); err != nil {
						t.Error(err)
						return
					}
				}
				tk.Close(fd)
			})
		}
	}
	r.env.Run()

	// Only the steady middle of the trace is load-bearing: while BOTH
	// channels hold backlog, runs are bounded by the quantum. (Head and
	// tail, where one channel hasn't started or has finished, are exempt —
	// DRR lets a lone channel run freely.)
	both := map[*Backend]bool{}
	firstBoth, lastBoth := -1, -1
	for i, b := range trace {
		both[b] = true
		if len(both) == 2 {
			if firstBoth < 0 {
				firstBoth = i
			}
			lastBoth = i
		}
	}
	if firstBoth < 0 {
		t.Fatal("trace never contains both channels")
	}
	run, maxRun := 0, 0
	for i := firstBoth; i < lastBoth; i++ {
		if i > firstBoth && trace[i] == trace[i-1] {
			run++
		} else {
			run = 1
		}
		if run > maxRun {
			maxRun = run
		}
	}
	// A channel's queue can drain mid-run and refill (pacing gaps), which
	// legally restarts its deficit; allow one extra quantum of slack but
	// catch monopolization.
	if maxRun > 2*quantum {
		t.Fatalf("max consecutive serves from one channel = %d, want <= %d (quantum %d)",
			maxRun, 2*quantum, quantum)
	}
	if r.pool.MaxDepth == 0 {
		t.Fatal("queues never backed up — the bound was not exercised")
	}
}

// Leave drops a departing channel's backlog and the stats stay coherent:
// everything enqueued is eventually served or dropped, never lost.
func TestPoolLeaveDropsBacklog(t *testing.T) {
	r := newPoolRig(t, 1, 1)
	p, err := r.guests[0].NewProcess("app")
	if err != nil {
		t.Fatal(err)
	}
	p.SpawnTask("t", func(tk *kernel.Task) {
		fd, err := tk.Open("/dev/testdev", devfile.ORdWr)
		if err != nil {
			t.Error(err)
			return
		}
		buf, _ := p.Alloc(64)
		for n := 0; n < 10; n++ {
			tk.Write(fd, buf, 64)
		}
		tk.Close(fd)
	})
	r.env.Run()
	served := r.pool.Served

	// Stop the channel with operations never posted again: its queue must
	// be discarded, not served against a dead ring.
	r.bes[0].Stop()
	if r.bes[0].pool != nil {
		t.Fatal("stopped backend still attached to the pool")
	}
	r.env.Run()
	if r.pool.Served != served {
		t.Fatalf("pool served %d more ops after the channel left", r.pool.Served-served)
	}
	if got := r.pool.Enqueued - r.pool.Served - r.pool.Dropped; got != 0 {
		t.Fatalf("stats leak: enqueued %d != served %d + dropped %d",
			r.pool.Enqueued, r.pool.Served, r.pool.Dropped)
	}
}
