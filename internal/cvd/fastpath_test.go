package cvd

// Tests for the bulk-transfer fast path: the backend's grant-map cache and
// frontend doorbell coalescing. Invalidation (revoke, release, reconnect) and
// the hostile revoke-while-mapped case live here too — the fast path must
// fault exactly where the per-request assisted copy would, never read stale
// memory.

import (
	"bytes"
	"testing"

	"paradice/internal/devfile"
	"paradice/internal/grant"
	"paradice/internal/kernel"
	"paradice/internal/sim"
)

// withMapCache enables the fast path for every transfer size.
func withMapCache(threshold int) func(*Config) {
	return func(c *Config) {
		c.MapCache = true
		c.MapThreshold = threshold
	}
}

func TestMapCacheAmortizesRepeatedTransfers(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux, withMapCache(1))
	msg := bytes.Repeat([]byte("paradice!"), 400) // 3600 bytes, crosses pages
	r.runApp(t, func(p *kernel.Process, tk *kernel.Task) {
		fd, err := tk.Open("/dev/testdev", devfile.ORdWr)
		if err != nil {
			t.Fatal(err)
		}
		src, _ := p.AllocBytes(msg)
		dst, _ := p.Alloc(len(msg))
		for i := 0; i < 5; i++ {
			if n, err := tk.Write(fd, src, len(msg)); err != nil || n != len(msg) {
				t.Fatalf("write %d: n=%d err=%v", i, n, err)
			}
			n, err := tk.Read(fd, dst, len(msg))
			if err != nil || n != len(msg) {
				t.Fatalf("read %d: n=%d err=%v", i, n, err)
			}
			got := make([]byte, n)
			if err := p.Mem.Read(dst, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, msg) {
				t.Fatalf("iteration %d: data corrupted through the map cache", i)
			}
		}
	})
	hits, misses, _ := r.be.MapCacheStats()
	// One mapping per direction, established on the first write and the first
	// read; everything after is a hit.
	if misses != 2 {
		t.Fatalf("misses = %d, want 2 (one per direction)", misses)
	}
	if hits != 8 {
		t.Fatalf("hits = %d, want 8 (4 repeat writes + 4 repeat reads)", hits)
	}
}

func TestMapCacheBelowThresholdUsesAssistedCopy(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux, withMapCache(DefaultMapThreshold))
	r.runApp(t, func(p *kernel.Process, tk *kernel.Task) {
		fd, _ := tk.Open("/dev/testdev", devfile.ORdWr)
		src, _ := p.AllocBytes(bytes.Repeat([]byte{0xAB}, 64))
		for i := 0; i < 10; i++ {
			if _, err := tk.Write(fd, src, 64); err != nil {
				t.Fatal(err)
			}
		}
	})
	hits, misses, _ := r.be.MapCacheStats()
	if hits != 0 || misses != 0 {
		t.Fatalf("64-byte transfers touched the map cache (hits=%d misses=%d); threshold is %d",
			hits, misses, DefaultMapThreshold)
	}
}

func TestMapCacheInvalidatesOnBufferChange(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux, withMapCache(1))
	const n = 4096
	r.runApp(t, func(p *kernel.Process, tk *kernel.Task) {
		fd, _ := tk.Open("/dev/testdev", devfile.ORdWr)
		bufA, _ := p.AllocBytes(bytes.Repeat([]byte{1}, n))
		bufB, _ := p.AllocBytes(bytes.Repeat([]byte{2}, n))
		if _, err := tk.Write(fd, bufA, n); err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Write(fd, bufA, n); err != nil {
			t.Fatal(err)
		}
		// The app switches buffers: the frontend revokes bufA's bulk grant
		// (tearing the cached mapping down through OnRevoke) and declares a
		// fresh one, so the next request misses and re-maps.
		if _, err := tk.Write(fd, bufB, n); err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Write(fd, bufB, n); err != nil {
			t.Fatal(err)
		}
	})
	hits, misses, invals := r.be.MapCacheStats()
	if misses != 2 {
		t.Fatalf("misses = %d, want 2 (one per buffer)", misses)
	}
	if hits != 2 {
		t.Fatalf("hits = %d, want 2", hits)
	}
	if invals < 1 {
		t.Fatalf("invalidations = %d, want >= 1 (bufA's revoke must tear its mapping down)", invals)
	}
	if string(r.drv.data[:n]) != string(bytes.Repeat([]byte{1}, n)) {
		t.Fatal("bufA data corrupted")
	}
}

func TestMapCacheInvalidatesOnRelease(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux, withMapCache(1))
	r.runApp(t, func(p *kernel.Process, tk *kernel.Task) {
		fd, _ := tk.Open("/dev/testdev", devfile.ORdWr)
		src, _ := p.AllocBytes(bytes.Repeat([]byte{3}, 4096))
		if _, err := tk.Write(fd, src, 4096); err != nil {
			t.Fatal(err)
		}
		if err := tk.Close(fd); err != nil {
			t.Fatal(err)
		}
	})
	_, _, invals := r.be.MapCacheStats()
	if invals < 1 {
		t.Fatalf("invalidations = %d; closing the file must drop its cached mapping", invals)
	}
	// The frontend's bulk-grant bookkeeping is empty too: nothing keeps the
	// released file's buffer granted.
	if len(r.fe.bulk) != 0 {
		t.Fatalf("%d bulk grants survive the release", len(r.fe.bulk))
	}
}

// The hostile case: a grant is revoked while the backend's cached mapping of
// it is live. The revocation must destroy the mapping's driver-EPT entries in
// the same instant — a later access through the stale mapping (or a request
// reusing the revoked reference) must fault, never silently read guest memory
// the grant no longer covers.
func TestMapCacheRevokedWhileMappedFaults(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux, withMapCache(1))
	const n = 4096
	r.runApp(t, func(p *kernel.Process, tk *kernel.Task) {
		fd, _ := tk.Open("/dev/testdev", devfile.ORdWr)
		src, _ := p.AllocBytes(bytes.Repeat([]byte{7}, n))
		if _, err := tk.Write(fd, src, n); err != nil {
			t.Fatal(err)
		}
		// Grab the live mapping the first write established, then revoke its
		// grant out from under the cache (a malicious or confused guest can
		// revoke whenever it likes).
		key := mapKey{fileID: 0, kind: grant.KindCopyFrom}
		m := r.be.mapc.entries[key]
		if m == nil {
			t.Fatal("no cached mapping after the first hinted write")
		}
		bg := r.fe.bulk[bulkKey{fileID: 0, kind: grant.KindCopyFrom}]
		if bg.ref == 0 {
			t.Fatal("no live bulk grant after the first hinted write")
		}
		if err := r.fe.grants.Revoke(bg.ref); err != nil {
			t.Fatal(err)
		}
		// The OnRevoke subscription tore the mapping down synchronously.
		if !m.Dead() {
			t.Fatal("cached mapping still alive after its grant was revoked")
		}
		if err := m.Copy(src, make([]byte, 16), false); err == nil {
			t.Fatal("access through the revoked mapping did not fault")
		}
		// A request still riding the revoked reference faults at re-map
		// (grant validation), surfacing EFAULT — not stale data.
		if _, err := tk.Write(fd, src, n); !kernel.IsErrno(err, kernel.EFAULT) {
			t.Fatalf("write under revoked grant: %v, want EFAULT", err)
		}
	})
	_, _, invals := r.be.MapCacheStats()
	if invals < 1 {
		t.Fatalf("invalidations = %d, want >= 1", invals)
	}
}

func TestMapCacheColdAfterReconnect(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux, withMapCache(1))
	const n = 4096
	app, _ := r.guestK.NewProcess("app")
	var fd int
	msg := bytes.Repeat([]byte{9}, n)
	app.SpawnTask("warm", func(tk *kernel.Task) {
		fd, _ = tk.Open("/dev/testdev", devfile.ORdWr)
		src, _ := app.AllocBytes(msg)
		for i := 0; i < 3; i++ {
			if _, err := tk.Write(fd, src, n); err != nil {
				t.Fatal(err)
			}
		}
	})
	r.env.Run()
	if hits, misses, _ := r.be.MapCacheStats(); hits != 2 || misses != 1 {
		t.Fatalf("warm-up: hits=%d misses=%d, want 2/1", hits, misses)
	}

	// Driver VM restart: the successor backend must start with a cold cache
	// (its EPT has none of the old mappings) and rebuild on first use.
	r.be.Stop()
	driverVM2, err := r.h.CreateVM("driver2", 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	driverK2 := kernel.New("driver2", kernel.Linux, r.env, driverVM2.Space, driverVM2.RAM)
	drv2 := &testDriver{k: driverK2, wq: driverK2.NewWaitQueue("testdrv2")}
	driverK2.RegisterDevice("/dev/testdev", drv2, drv2)
	be2, err := Reconnect(r.fe, r.h, driverVM2, driverK2, "/dev/testdev")
	if err != nil {
		t.Fatal(err)
	}
	if h, m, i := be2.MapCacheStats(); h != 0 || m != 0 || i != 0 {
		t.Fatalf("successor backend's cache not cold: %d/%d/%d", h, m, i)
	}

	fresh, _ := r.guestK.NewProcess("fresh")
	fresh.SpawnTask("main", func(tk *kernel.Task) {
		fd2, err := tk.Open("/dev/testdev", devfile.ORdWr)
		if err != nil {
			t.Fatal(err)
		}
		src, _ := fresh.AllocBytes(msg)
		for i := 0; i < 3; i++ {
			if _, err := tk.Write(fd2, src, n); err != nil {
				t.Fatal(err)
			}
		}
	})
	r.env.Run()
	if hits, misses, _ := be2.MapCacheStats(); misses != 1 || hits != 2 {
		t.Fatalf("post-restart: hits=%d misses=%d, want 2/1 (cold start, then amortize)", hits, misses)
	}
	if !bytes.Equal(drv2.data, bytes.Repeat(msg, 3)) {
		t.Fatal("post-restart data corrupted")
	}
}

func TestCoalescedDoorbellSharesOneIRQ(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux, func(c *Config) {
		c.CoalesceWindow = 50 * sim.Microsecond
	})
	app, _ := r.guestK.NewProcess("app")
	opened := r.env.NewEvent("opened")
	var fd int
	app.SpawnTask("opener", func(tk *kernel.Task) {
		fd, _ = tk.Open("/dev/testdev", devfile.OWrOnly)
		opened.Trigger()
	})
	const writers = 8
	for i := 0; i < writers; i++ {
		i := i
		app.SpawnTask("writer", func(tk *kernel.Task) {
			tk.Sim().Wait(opened)
			src, _ := app.AllocBytes([]byte{byte('A' + i)})
			if _, err := tk.Write(fd, src, 1); err != nil {
				t.Error(err)
			}
		})
	}
	r.env.Run()
	// The open rings its own doorbell; the 8 near-simultaneous writes share
	// exactly one more.
	if r.fe.DoorbellIRQs != 2 {
		t.Fatalf("DoorbellIRQs = %d, want 2 (open + one coalesced flush)", r.fe.DoorbellIRQs)
	}
	if r.fe.CoalescedKicks != writers-1 {
		t.Fatalf("CoalescedKicks = %d, want %d", r.fe.CoalescedKicks, writers-1)
	}
	if r.be.WakeIRQs != 2 {
		t.Fatalf("backend WakeIRQs = %d, want 2", r.be.WakeIRQs)
	}
	// Coalescing batches notification, not execution: FIFO order holds.
	if string(r.drv.data) != "ABCDEFGH" {
		t.Fatalf("driver saw order %q, want ABCDEFGH", r.drv.data)
	}
}

func TestCoalescingLeavesPollingPathAlone(t *testing.T) {
	r := newRig(t, Polling, kernel.Linux, func(c *Config) {
		c.CoalesceWindow = 50 * sim.Microsecond
	})
	r.runApp(t, func(p *kernel.Process, tk *kernel.Task) {
		fd, _ := tk.Open("/dev/testdev", devfile.OWrOnly)
		src, _ := p.AllocBytes([]byte("poll"))
		for i := 0; i < 4; i++ {
			if _, err := tk.Write(fd, src, 4); err != nil {
				t.Fatal(err)
			}
		}
	})
	if r.fe.CoalescedKicks != 0 {
		t.Fatalf("CoalescedKicks = %d in polling mode, want 0", r.fe.CoalescedKicks)
	}
	if r.be.PolledPosts == 0 {
		t.Fatal("polling mode never hit the polled fast path under coalescing config")
	}
}

// A doorbell flush that fires after its backend died must not ring: the
// reconnect sweep already failed everything, and the successor's doorbell is
// not the flush's to ring.
func TestCoalescedFlushAfterBackendDeathIsDropped(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux, func(c *Config) {
		c.CoalesceWindow = 100 * sim.Microsecond
	})
	r.fe.SetDeadline(2 * sim.Millisecond)
	app, _ := r.guestK.NewProcess("app")
	openDone := r.env.NewEvent("open-done")
	var werr error
	app.SpawnTask("main", func(tk *kernel.Task) {
		fd, err := tk.Open("/dev/testdev", devfile.OWrOnly)
		if err != nil {
			t.Error(err)
			return
		}
		openDone.Trigger()
		src, _ := app.AllocBytes([]byte("x"))
		_, werr = tk.Write(fd, src, 1)
	})
	// Kill the backend inside the write's coalescing window: the flush timer
	// is armed but the doorbell owner is gone.
	var irqsAfterOpen uint64
	r.env.Spawn("killer", func(p *sim.Proc) {
		p.Wait(openDone)
		irqsAfterOpen = r.fe.DoorbellIRQs
		p.Sleep(20 * sim.Microsecond) // the write posted within ~2µs; its flush is ~100µs out
		r.be.Kill()
	})
	r.env.RunUntil(r.env.Now().Add(20 * sim.Millisecond))
	if !kernel.IsErrno(werr, kernel.ETIMEDOUT) {
		t.Fatalf("write against a killed backend: %v, want ETIMEDOUT", werr)
	}
	if r.fe.DoorbellIRQs != irqsAfterOpen {
		t.Fatalf("DoorbellIRQs went %d -> %d; the orphaned flush must not ring",
			irqsAfterOpen, r.fe.DoorbellIRQs)
	}
}

// A flush armed before BeginDrain whose pending set retired during the drain
// must not ring the predecessor's doorbell mid-switch. The drain itself does
// not drop flushes — a flush with slots still posted MUST ring, or the
// quiesce would never see the ring empty — but a flush with nothing left to
// announce has no business waking the predecessor or scribbling submission
// descriptor words into a ring that is about to change owners. After the
// switch commits, the successor's channel must work normally.
func TestCoalescedFlushAcrossHandoverDrainIsDropped(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux, func(c *Config) {
		c.CoalesceWindow = 100 * sim.Microsecond
	})
	// The successor driver VM, booted and ready before the drain begins.
	driverVM2, err := r.h.CreateVM("driver2", 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	driverK2 := kernel.New("driver2", kernel.Linux, r.env, driverVM2.Space, driverVM2.RAM)
	drv2 := &testDriver{k: driverK2, wq: driverK2.NewWaitQueue("testdrv2")}
	driverK2.RegisterDevice("/dev/testdev", drv2, drv2)

	var irqsAtDrain uint64
	var be2 *Backend
	r.env.Spawn("handover", func(p *sim.Proc) {
		// A post arms the flush timer, then retires inside the window — the
		// backend picked it up off another wake and completed it, and the
		// issuer collected the response (white-box: recycle directly).
		slot, ok := r.fe.allocSlot()
		if !ok {
			t.Error("no free slot")
			return
		}
		r.fe.ring.writeRequest(slot, request{op: opNone, rid: 11})
		r.fe.postDoorbell(11, slot)
		r.fe.ring.recycleSlot(slot)

		// Planned handover starts inside the flush window: drain, prepare the
		// successor, and let the armed flush fire mid-drain.
		r.fe.BeginDrain(0)
		irqsAtDrain = r.fe.DoorbellIRQs
		prep, err := PrepareHandover(r.fe, r.h, driverVM2, driverK2)
		if err != nil {
			t.Error(err)
			return
		}
		p.Sleep(150 * sim.Microsecond) // the 100 µs flush fires during the drain
		if r.fe.DoorbellIRQs != irqsAtDrain {
			t.Errorf("DoorbellIRQs went %d -> %d during the drain; the empty flush must not ring",
				irqsAtDrain, r.fe.DoorbellIRQs)
		}
		if n := r.fe.ring.readU32(hdrSubCount); n != 0 {
			t.Errorf("hdrSubCount = %d mid-switch, want 0 (no descriptor scribbled)", n)
		}
		be2, err = CompleteHandover(r.fe, prep, driverVM2, driverK2, "/dev/testdev")
		if err != nil {
			t.Error(err)
			return
		}
		r.fe.EndDrain()
	})
	r.env.RunUntil(sim.Time(sim.Millisecond))
	if be2 == nil {
		t.Fatal("handover never completed")
	}

	// The successor's channel batches and completes normally.
	r.runApp(t, func(p *kernel.Process, tk *kernel.Task) {
		fd, err := tk.Open("/dev/testdev", devfile.OWrOnly)
		if err != nil {
			t.Fatal(err)
		}
		src, _ := p.AllocBytes([]byte("ok"))
		if _, err := tk.Write(fd, src, 2); err != nil {
			t.Fatal(err)
		}
	})
	if string(drv2.data) != "ok" {
		t.Fatalf("successor driver saw %q, want %q", drv2.data, "ok")
	}
}
