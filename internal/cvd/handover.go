package cvd

import (
	"fmt"
	"sort"

	"paradice/internal/devfile"
	"paradice/internal/faults"
	"paradice/internal/hv"
	"paradice/internal/kernel"
	"paradice/internal/mem"
	"paradice/internal/trace"
)

// Planned driver-VM handover support (ROADMAP item 4c): the production
// counterpart of Reconnect. Where Reconnect rebuilds a channel after its
// driver VM has already died — failing everything in flight with EREMOTE and
// starting every cache cold — a handover runs while the predecessor is still
// alive and healthy, in two halves:
//
//   - PrepareHandover runs with the predecessor still serving: it shares the
//     ring into the successor VM, pre-creates the successor backend's kernel
//     process, and pre-maps the frontend's live bulk grants into the
//     successor so its grant-map cache starts warm. Everything here is
//     fallible and touches nothing the predecessor depends on; a failure (or
//     a later abort) discards the prep and leaves the channel exactly as it
//     was.
//
//   - CompleteHandover runs after the ring has been drained (the frontend in
//     drain mode, occupancy zero): it harvests the predecessor's open-file
//     table, bumps the restart epoch, and binds the pre-built successor
//     backend. Past the epoch bump it has no failure path — the one fallible
//     step (device lookup) happens first — and no simulated time passes
//     between the bump and the rebind, so the switch is atomic in virtual
//     time.
//
// Unlike Reconnect there is no failInflight: the caller drained the ring, so
// there is nothing in flight to fail. That is the whole point.

// warmFile records one predecessor file instance for lazy re-open on the
// successor (Backend.lookupFile).
type warmFile struct {
	flags  devfile.OpenFlags
	fasync bool
}

// warmVMA records one predecessor mmap for replay when its file is re-opened.
type warmVMA struct {
	start mem.GuestVirt
	len   uint64
	pgoff uint64
}

// warmMap is one guest data buffer pre-mapped into the successor driver VM
// during prepare, keyed like the map-cache entry it will seed.
type warmMap struct {
	key mapKey
	m   *hv.GuestMapping
}

// HandoverPrep is the successor-side state built by PrepareHandover, consumed
// by exactly one of CompleteHandover (the switch commits) or Discard (the
// handover aborts).
type HandoverPrep struct {
	fe    *Frontend
	beGPA mem.GuestPhys
	proc  *kernel.Process
	warm  []warmMap
}

// PrepareHandover pre-builds one channel's successor state against a freshly
// booted (but not yet serving) driver VM, while the predecessor backend keeps
// serving the ring untouched. The "handover.warm.fail" fault point injects a
// pre-warm failure (a successor that cannot re-probe the device state it
// needs); real failures come from page sharing, process creation, or buffer
// mapping. On any error nothing leaks: partial pre-maps are discarded.
func PrepareHandover(fe *Frontend, h *hv.Hypervisor, succVM *hv.VM, succK *kernel.Kernel) (*HandoverPrep, error) {
	if fe.backend == nil || fe.backend.stopped {
		return nil, fmt.Errorf("cvd: handover from a dead backend on %s (use Reconnect)", fe.path)
	}
	if d := faults.Point(h.Env, "handover.warm.fail"); d != nil {
		return nil, d.Error()
	}
	beGPA, err := h.SharePage(fe.guestVM, fe.ringGPA, succVM)
	if err != nil {
		return nil, err
	}
	// Pre-create the successor backend's kernel process now: it is the only
	// fallible part of backend construction, and CompleteHandover must not be
	// able to fail after it bumps the ring epoch.
	proc, err := succK.NewProcess("cvd-backend-" + fe.guestVM.Name)
	if err != nil {
		return nil, err
	}
	prep := &HandoverPrep{fe: fe, beGPA: beGPA, proc: proc}
	if fe.mapCache {
		// Pre-map the frontend's live bulk grants into the successor, paying
		// the per-page mapping walks now — while the predecessor still serves
		// — instead of as post-switch cache misses. Sorted for deterministic
		// charge order.
		keys := make([]bulkKey, 0, len(fe.bulk))
		for k := range fe.bulk {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].fileID != keys[j].fileID {
				return keys[i].fileID < keys[j].fileID
			}
			return keys[i].kind < keys[j].kind
		})
		for _, k := range keys {
			bg := fe.bulk[k]
			m, err := h.MapGuestBuffer(fe.guestVM, bg.ref, k.kind, bg.va, bg.n, succVM)
			if err != nil {
				prep.Discard()
				return nil, err
			}
			prep.warm = append(prep.warm, warmMap{key: mapKey{fileID: k.fileID, kind: k.kind}, m: m})
		}
	}
	trace.Get(h.Env).Add("cvd.handover.prewarmed_maps", uint64(len(prep.warm)))
	return prep, nil
}

// Discard releases a prep that will not be committed (the handover aborted):
// the pre-established successor mappings are torn down. The predecessor never
// knew the prep existed, so there is nothing else to undo.
func (p *HandoverPrep) Discard() {
	for _, wm := range p.warm {
		wm.m.Unmap()
	}
	p.warm = nil
}

// CompleteHandover commits one channel's switch to the successor driver VM.
// The caller must have drained the ring (frontend in drain mode, occupancy
// zero): with no slot in flight the predecessor's file table is stable and
// there is nothing to fail over.
//
// Ordering: the device lookup — the only remaining failure — comes first;
// then the predecessor's open files and mmaps are harvested for lazy warm
// re-open; then the epoch bump retires the predecessor's right to the ring;
// then the pre-built backend binds. No simulated time passes after the bump,
// so no post can observe a ring that has an epoch but no owner.
func CompleteHandover(fe *Frontend, prep *HandoverPrep, driverVM *hv.VM, driverK *kernel.Kernel, devicePath string) (*Backend, error) {
	node, ok := driverK.LookupDevice(devicePath)
	if !ok {
		return nil, fmt.Errorf("cvd: no device %s in successor %s", devicePath, driverK.Name)
	}
	// Harvest the predecessor's open-file table: files the guest holds that
	// the successor's driver has never seen. The successor re-opens them
	// lazily on first use (Backend.lookupFile) instead of invalidating every
	// guest descriptor the way a crash restart does.
	pred := fe.backend
	warmFiles := make(map[uint16]warmFile, len(pred.files))
	warmVMAs := make(map[uint16][]warmVMA)
	fileIDs := make([]int, 0, len(pred.files))
	for id := range pred.files {
		fileIDs = append(fileIDs, int(id))
	}
	sort.Ints(fileIDs)
	for _, idi := range fileIDs {
		id := uint16(idi)
		f := pred.files[id]
		warmFiles[id] = warmFile{flags: f.Flags, fasync: f.FasyncOn}
		if vm := pred.vmas[id]; len(vm) > 0 {
			starts := make([]mem.GuestVirt, 0, len(vm))
			for s := range vm {
				starts = append(starts, s)
			}
			sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
			for _, s := range starts {
				v := vm[s]
				warmVMAs[id] = append(warmVMAs[id], warmVMA{start: v.Start, len: v.Len, pgoff: v.Pgoff})
			}
		}
	}
	// Enter the next restart epoch, then bind the pre-built backend. Same
	// rationale as Reconnect: anything left of the predecessor — a dispatcher
	// pass, a deferred heartbeat ack — observes the mismatch on its next ring
	// write and discards.
	fe.ring.writeU32(hdrEpoch, fe.ring.readU32(hdrEpoch)+1)
	vecToBackend := driverVM.AllocVector()
	be := newBackendWith(prep.proc, fe.hv, driverVM, fe.guestVM, driverK, node,
		prep.beGPA, fe.mode, fe.window, vecToBackend, fe.vecResp, fe.vecNotif)
	// Successors keep the channel's batching behavior across the switch.
	be.batchSize = fe.batchSize
	be.batchWait = fe.coalesce
	if fe.mapCache {
		be.enableMapCache(fe.grants)
		// Seed the successor's map cache with the pre-established mappings.
		// Each is injected only if its bulk grant is still the one it was
		// mapped under — a release or buffer change that slipped in via an
		// in-flight operation during the drain revoked the grant, and a
		// mapping under a revoked grant must not serve anything.
		for _, wm := range prep.warm {
			bg, live := fe.bulk[bulkKey{fileID: wm.key.fileID, kind: wm.key.kind}]
			if !live || bg.ref != wm.m.Ref || wm.m.Dead() {
				wm.m.Unmap()
				continue
			}
			be.mapc.entries[wm.key] = wm.m
		}
		prep.warm = nil
	}
	be.warmFiles = warmFiles
	be.warmVMAs = warmVMAs
	be.frontendDoorbell = fe.scanDone
	fe.driverVM = driverVM
	fe.vecToBackend = vecToBackend
	fe.backend = be
	return be, nil
}
