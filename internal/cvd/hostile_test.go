package cvd

import (
	"testing"
	"testing/quick"

	"paradice/internal/devfile"
	"paradice/internal/faults"
	"paradice/internal/kernel"
	"paradice/internal/sim"
)

// A malicious guest does not have to use the CVD frontend at all: it can
// scribble anything into the shared ring page. The backend must survive
// arbitrary garbage — returning errors, never crashing, never executing an
// operation on a file the guest does not hold.

// hostilePost writes a raw request into the ring from "guest userspace"
// (really: directly through the guest's view of the shared page, which is
// exactly what a compromised guest kernel could do).
func hostilePost(r *rig, slot int, op uint8, fileID uint16, ref uint32, a0, a1, a2 uint64) {
	pg := r.fe.ring
	pg.writeRequest(slot, request{
		slot: slot, op: op, fileID: fileID, ref: ref,
		seq: r.fe.nextSeq, arg0: a0, arg1: a1, arg2: a2,
	})
	r.fe.nextSeq++
	r.h.SendInterrupt(r.driverVM, r.fe.vecToBackend)
}

func TestHostileRingGarbageSurvives(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux)
	f := func(op uint8, fileID uint16, ref uint32, a0, a1, a2 uint64) bool {
		hostilePost(r, 3, op, fileID, ref, a0, a1, a2)
		r.env.RunUntil(r.env.Now().Add(sim.Duration(sim.Millisecond)))
		// The backend either completed the slot with an error or is
		// legitimately blocked (a blocking op); either way the machine is
		// alive: a well-formed operation still works.
		pg := r.fe.ring
		if pg.slotState(3) == slotDone {
			pg.setSlotState(3, slotFree)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
	// After the storm, a real application still gets service.
	app, _ := r.guestK.NewProcess("app")
	ok := false
	app.SpawnTask("main", func(tk *kernel.Task) {
		fd, err := tk.Open("/dev/testdev", devfile.ORdWr)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := tk.Ioctl(fd, tdNoop, 0); err != nil {
			t.Error(err)
			return
		}
		ok = true
	})
	r.env.Run()
	if !ok {
		t.Fatal("machine unusable after hostile ring garbage")
	}
}

// Forged file IDs: operations on handles the guest never opened fail with
// EINVAL rather than touching another channel's files.
func TestHostileForgedFileID(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux)
	hostilePost(r, 5, opRead, 999, 0, 0x40000000, 64, 0)
	r.env.RunUntil(r.env.Now().Add(sim.Duration(sim.Millisecond)))
	pg := r.fe.ring
	if pg.slotState(5) != slotDone {
		t.Fatal("backend did not answer the forged request")
	}
	ret, errno := pg.readResponse(5)
	if ret != -1 || kernel.Errno(errno) != kernel.EINVAL {
		t.Fatalf("forged fileID: ret=%d errno=%d, want -1/EINVAL", ret, errno)
	}
}

// Forged grant references on a real file: the driver's memory operations
// are refused by the hypervisor and the operation fails cleanly.
func TestHostileForgedGrantRef(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux)
	// Open legitimately to obtain fileID 0.
	app, _ := r.guestK.NewProcess("app")
	app.SpawnTask("main", func(tk *kernel.Task) {
		if _, err := tk.Open("/dev/testdev", devfile.ORdWr); err != nil {
			t.Error(err)
		}
	})
	r.env.Run()
	// Write with a grant ref the guest never declared.
	hostilePost(r, 7, opWrite, 0, 0xDEAD, 0x40000000, 32, 0)
	r.env.RunUntil(r.env.Now().Add(sim.Duration(sim.Millisecond)))
	pg := r.fe.ring
	ret, errno := pg.readResponse(7)
	if pg.slotState(7) != slotDone || kernel.Errno(errno) != kernel.EFAULT {
		t.Fatalf("forged ref write: state=%d ret=%d errno=%d, want EFAULT", pg.slotState(7), ret, errno)
	}
}

// Seeded storm of raw byte scribbles over the entire ring page — header,
// slot states, opcodes, sequence numbers, everything — interleaved with
// doorbell kicks. Unlike the structured forgeries above, this drives the
// backend through arbitrary byte-level states. The corruption stream comes
// from a fault plan's deterministic rng, so a failure reproduces from the
// printed seed.
func TestHostileRandomRingCorruption(t *testing.T) {
	const seed = 0xC0DE
	r := newRig(t, Interrupts, kernel.Linux)
	plan := faults.New(seed)
	faults.Install(r.env, plan)
	defer faults.Uninstall(r.env)
	rng := plan.Rand()
	defer func() {
		if p := recover(); p != nil {
			t.Fatalf("backend crashed under ring corruption (seed %#x): %v", seed, p)
		}
	}()
	const pageBytes = hdrSize + slotCount*slotSize
	for round := 0; round < 200; round++ {
		buf := make([]byte, 1+rng.Intn(16))
		rng.Read(buf)
		off := rng.Intn(pageBytes - len(buf))
		if err := r.fe.ring.acc.WriteAt(off, buf); err != nil {
			t.Fatal(err)
		}
		r.h.SendInterrupt(r.driverVM, r.fe.vecToBackend)
		r.env.RunUntil(r.env.Now().Add(200 * sim.Microsecond))
	}
	r.env.RunUntil(r.env.Now().Add(5 * sim.Millisecond))

	// The guest corrupted only its own channel. Scrub the page (the state a
	// rebooted guest channel would present) and demand service.
	if err := r.fe.ring.acc.WriteAt(0, make([]byte, pageBytes)); err != nil {
		t.Fatal(err)
	}
	app, _ := r.guestK.NewProcess("app")
	ok := false
	app.SpawnTask("main", func(tk *kernel.Task) {
		fd, err := tk.Open("/dev/testdev", devfile.ORdWr)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := tk.Ioctl(fd, tdNoop, 0); err != nil {
			t.Error(err)
			return
		}
		ok = true
	})
	r.env.Run()
	if !ok {
		t.Fatalf("machine unusable after seeded ring corruption (seed %#x)", seed)
	}
}

// An unknown opcode gets ENOSYS.
func TestHostileUnknownOpcode(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux)
	app, _ := r.guestK.NewProcess("app")
	app.SpawnTask("main", func(tk *kernel.Task) {
		_, _ = tk.Open("/dev/testdev", devfile.ORdWr)
	})
	r.env.Run()
	hostilePost(r, 9, 200, 0, 0, 0, 0, 0)
	r.env.RunUntil(r.env.Now().Add(sim.Duration(sim.Millisecond)))
	_, errno := r.fe.ring.readResponse(9)
	if kernel.Errno(errno) != kernel.ENOSYS {
		t.Fatalf("unknown op errno = %d, want ENOSYS", errno)
	}
}
