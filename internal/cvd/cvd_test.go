package cvd

import (
	"bytes"
	"encoding/binary"
	"testing"

	"paradice/internal/devfile"
	"paradice/internal/hv"
	"paradice/internal/ioctlan"
	"paradice/internal/kernel"
	"paradice/internal/mem"
	"paradice/internal/sim"
)

// ---- test device driver (lives in the driver VM) ----

// testDriver is a device with one of everything: a byte store exercised by
// read/write, a plain ioctl, a nested-copy ioctl (the Radeon CS pattern), a
// malicious ioctl that performs an undeclared memory operation, mmap-able
// device pages, poll, and fasync.
type testDriver struct {
	kernel.BaseOps
	k       *kernel.Kernel
	data    []byte
	wq      *kernel.WaitQueue
	pages   []mem.GuestPhys // "device memory" pages
	fasyncs []*kernel.File
	chunks  [][]byte // payloads gathered by the nested ioctl
}

var (
	tdNoop    = devfile.IO('T', 0)
	tdStruct  = devfile.IOWR('T', 1, 32) // macro-shaped: copy in + copy out
	tdNested  = devfile.IOW('T', 2, 16)  // header {count u32, pad u32, ptr u64}
	tdEvil    = devfile.IO('T', 3)       // tries an undeclared copy
	tdEvilMap = devfile.IO('T', 4)       // tries an undeclared map
)

// tdNestedIR is the IR form of the nested handler — what the paper's Clang
// tool would have extracted from the C source.
func tdNestedIR() *ioctlan.Prog {
	return &ioctlan.Prog{
		Cmd:  tdNested,
		Name: "TD_NESTED",
		Body: []ioctlan.Stmt{
			ioctlan.DriverWork{What: "validate state"},
			ioctlan.CopyFromUser{Dst: "hdr", Src: ioctlan.Arg{}, Size: ioctlan.CmdSize{}},
			ioctlan.Let{Name: "count", Val: ioctlan.LoadField{Buf: "hdr", Off: 0, Size: 4}},
			ioctlan.Let{Name: "ptr", Val: ioctlan.LoadField{Buf: "hdr", Off: 8, Size: 8}},
			ioctlan.For{Var: "i", Count: ioctlan.Local("count"), Body: []ioctlan.Stmt{
				ioctlan.CopyFromUser{
					Dst: "desc",
					Src: ioctlan.Bin{Op: '+', L: ioctlan.Local("ptr"),
						R: ioctlan.Bin{Op: '*', L: ioctlan.Local("i"), R: ioctlan.Const(16)}},
					Size: ioctlan.Const(16),
				},
				ioctlan.CopyFromUser{
					Dst:  "payload",
					Src:  ioctlan.LoadField{Buf: "desc", Off: 0, Size: 8},
					Size: ioctlan.LoadField{Buf: "desc", Off: 8, Size: 4},
				},
				ioctlan.DriverWork{What: "queue chunk"},
			}},
		},
	}
}

func (d *testDriver) Read(c *kernel.FopCtx, dst mem.GuestVirt, n int) (int, error) {
	for len(d.data) == 0 {
		if c.File.Nonblock() {
			return 0, kernel.EAGAIN
		}
		d.wq.Wait(c.Task)
	}
	if n > len(d.data) {
		n = len(d.data)
	}
	// Dequeue before copying (the mutex-protected section of a real
	// driver): the hypervisor-assisted copy may yield the processor, and
	// another handler thread must not see the same bytes.
	chunk := d.data[:n]
	d.data = d.data[n:]
	if err := kernel.CopyToUser(c, dst, chunk); err != nil {
		return 0, err
	}
	return n, nil
}

func (d *testDriver) Write(c *kernel.FopCtx, src mem.GuestVirt, n int) (int, error) {
	buf := make([]byte, n)
	if err := kernel.CopyFromUser(c, src, buf); err != nil {
		return 0, err
	}
	d.data = append(d.data, buf...)
	d.wq.Wake()
	for _, f := range d.fasyncs {
		if f.FasyncOn {
			f.Proc.DeliverSIGIO()
		}
	}
	return n, nil
}

func (d *testDriver) Ioctl(c *kernel.FopCtx, cmd devfile.IoctlCmd, arg mem.GuestVirt) (int32, error) {
	switch cmd {
	case tdNoop:
		return 0, nil
	case tdStruct:
		buf := make([]byte, 32)
		if err := kernel.CopyFromUser(c, arg, buf); err != nil {
			return 0, err
		}
		for i := range buf {
			buf[i] ^= 0xFF
		}
		if err := kernel.CopyToUser(c, arg, buf); err != nil {
			return 0, err
		}
		return 0, nil
	case tdNested:
		hdr := make([]byte, 16)
		if err := kernel.CopyFromUser(c, arg, hdr); err != nil {
			return 0, err
		}
		count := binary.LittleEndian.Uint32(hdr[0:])
		ptr := mem.GuestVirt(binary.LittleEndian.Uint64(hdr[8:]))
		for i := uint32(0); i < count; i++ {
			desc := make([]byte, 16)
			if err := kernel.CopyFromUser(c, ptr+mem.GuestVirt(i*16), desc); err != nil {
				return 0, err
			}
			p := mem.GuestVirt(binary.LittleEndian.Uint64(desc[0:]))
			n := binary.LittleEndian.Uint32(desc[8:])
			payload := make([]byte, n)
			if err := kernel.CopyFromUser(c, p, payload); err != nil {
				return 0, err
			}
			d.chunks = append(d.chunks, payload)
		}
		return int32(count), nil
	case tdEvil:
		// A compromised driver tries to write to guest memory the guest
		// never granted for this operation.
		err := kernel.CopyToUser(c, 0x40000000, []byte("pwn"))
		if err != nil {
			return -1, err
		}
		return 0, nil
	case tdEvilMap:
		// ... or to map a driver page over ungranted guest addresses.
		err := kernel.InsertPFN(c, 0x7F000000, d.pages[0])
		if err != nil {
			return -1, err
		}
		return 0, nil
	}
	return 0, kernel.ENOTTY
}

func (d *testDriver) Mmap(c *kernel.FopCtx, v *kernel.VMA) error {
	if v.Len > uint64(len(d.pages))*mem.PageSize {
		return kernel.EINVAL
	}
	return nil // demand fault
}

func (d *testDriver) Fault(c *kernel.FopCtx, v *kernel.VMA, va mem.GuestVirt) error {
	idx := (uint64(va) - uint64(v.Start)) / mem.PageSize
	if idx >= uint64(len(d.pages)) {
		return kernel.EFAULT
	}
	return kernel.InsertPFN(c, va, d.pages[idx])
}

func (d *testDriver) Poll(c *kernel.FopCtx, pt *kernel.PollTable) devfile.PollMask {
	pt.Register(d.wq)
	if len(d.data) > 0 {
		return devfile.PollIn | devfile.PollOut
	}
	return devfile.PollOut
}

func (d *testDriver) Fasync(c *kernel.FopCtx, on bool) error {
	if on {
		d.fasyncs = append(d.fasyncs, c.File)
	}
	return nil
}

// ---- rig ----

type rig struct {
	env      *sim.Env
	h        *hv.Hypervisor
	driverVM *hv.VM
	driverK  *kernel.Kernel
	guestVM  *hv.VM
	guestK   *kernel.Kernel
	fe       *Frontend
	be       *Backend
	drv      *testDriver
}

func newRig(t testing.TB, mode Mode, guestFlavor kernel.Flavor, opts ...func(*Config)) *rig {
	t.Helper()
	env := sim.NewEnv()
	h := hv.New(env, 256<<20)
	driverVM, err := h.CreateVM("driver", 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	driverK := kernel.New("driver", kernel.Linux, env, driverVM.Space, driverVM.RAM)
	guestVM, err := h.CreateVM("guest", 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	guestK := kernel.New("guest", guestFlavor, env, guestVM.Space, guestVM.RAM)

	drv := &testDriver{k: driverK, wq: driverK.NewWaitQueue("testdrv")}
	for i := 0; i < 4; i++ {
		pg, err := driverK.AllocFrame()
		if err != nil {
			t.Fatal(err)
		}
		drv.pages = append(drv.pages, pg)
	}
	driverK.RegisterDevice("/dev/testdev", drv, drv)

	spec, err := ioctlan.Analyze(tdNestedIR())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		HV: h, GuestVM: guestVM, GuestK: guestK,
		DriverVM: driverVM, DriverK: driverK,
		DevicePath: "/dev/testdev", Mode: mode,
		Specs: map[devfile.IoctlCmd]*ioctlan.CmdSpec{tdNested: spec},
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	fe, be, err := Connect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{env: env, h: h, driverVM: driverVM, driverK: driverK,
		guestVM: guestVM, guestK: guestK, fe: fe, be: be, drv: drv}
}

func (r *rig) runApp(t testing.TB, fn func(p *kernel.Process, tk *kernel.Task)) {
	t.Helper()
	p, err := r.guestK.NewProcess("app")
	if err != nil {
		t.Fatal(err)
	}
	p.SpawnTask("main", func(tk *kernel.Task) { fn(p, tk) })
	r.env.Run()
}

// ---- tests ----

func TestForwardedReadWrite(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux)
	r.runApp(t, func(p *kernel.Process, tk *kernel.Task) {
		fd, err := tk.Open("/dev/testdev", devfile.ORdWr)
		if err != nil {
			t.Fatal(err)
		}
		msg := []byte("crossing the device file boundary")
		src, _ := p.AllocBytes(msg)
		n, err := tk.Write(fd, src, len(msg))
		if err != nil || n != len(msg) {
			t.Fatalf("write: n=%d err=%v", n, err)
		}
		dst, _ := p.Alloc(64)
		n, err = tk.Read(fd, dst, 64)
		if err != nil || n != len(msg) {
			t.Fatalf("read: n=%d err=%v", n, err)
		}
		got := make([]byte, n)
		if err := p.Mem.Read(dst, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("got %q want %q", got, msg)
		}
		if err := tk.Close(fd); err != nil {
			t.Fatal(err)
		}
	})
	// The driver's bytes really lived in the driver VM: the guest VM's EPT
	// never mapped the driver's heap, only the ring page.
	if r.fe.RoundTrips < 4 {
		t.Fatalf("round trips = %d, want >= 4 (open/write/read/release)", r.fe.RoundTrips)
	}
}

// The §6.1.1 microbenchmark: a no-op file operation forwarded with
// interrupts costs ~35 µs, dominated by two inter-VM interrupts; polling
// reduces it to ~2 µs.
func TestNoopLatencyInterrupts(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux)
	var rt sim.Duration
	r.runApp(t, func(p *kernel.Process, tk *kernel.Task) {
		fd, _ := tk.Open("/dev/testdev", devfile.ORdWr)
		const iters = 100
		start := tk.Sim().Now()
		for i := 0; i < iters; i++ {
			if _, err := tk.Ioctl(fd, tdNoop, 0); err != nil {
				t.Fatal(err)
			}
		}
		rt = tk.Sim().Now().Sub(start) / iters
	})
	if rt < 30*sim.Microsecond || rt > 40*sim.Microsecond {
		t.Fatalf("no-op round trip = %v, want ~35µs", rt)
	}
}

func TestNoopLatencyPolling(t *testing.T) {
	r := newRig(t, Polling, kernel.Linux)
	var rt sim.Duration
	r.runApp(t, func(p *kernel.Process, tk *kernel.Task) {
		fd, _ := tk.Open("/dev/testdev", devfile.ORdWr)
		const iters = 100
		start := tk.Sim().Now()
		for i := 0; i < iters; i++ {
			if _, err := tk.Ioctl(fd, tdNoop, 0); err != nil {
				t.Fatal(err)
			}
		}
		rt = tk.Sim().Now().Sub(start) / iters
	})
	if rt < sim.Microsecond || rt > 4*sim.Microsecond {
		t.Fatalf("polled no-op round trip = %v, want ~2µs", rt)
	}
}

func TestMacroIoctlRoundtrip(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux)
	r.runApp(t, func(p *kernel.Process, tk *kernel.Task) {
		fd, _ := tk.Open("/dev/testdev", devfile.ORdWr)
		payload := bytes.Repeat([]byte{0x0F}, 32)
		arg, _ := p.AllocBytes(payload)
		if _, err := tk.Ioctl(fd, tdStruct, arg); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 32)
		if err := p.Mem.Read(arg, got); err != nil {
			t.Fatal(err)
		}
		for _, b := range got {
			if b != 0xF0 {
				t.Fatalf("ioctl result byte %#x, want 0xF0", b)
			}
		}
	})
}

func TestNestedIoctlJITGrants(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux)
	r.runApp(t, func(p *kernel.Process, tk *kernel.Task) {
		fd, _ := tk.Open("/dev/testdev", devfile.ORdWr)
		// Two chunks at scattered user addresses.
		pay1, _ := p.AllocBytes([]byte("first chunk payload"))
		pay2, _ := p.AllocBytes([]byte("second"))
		descs := make([]byte, 32)
		binary.LittleEndian.PutUint64(descs[0:], uint64(pay1))
		binary.LittleEndian.PutUint32(descs[8:], 19)
		binary.LittleEndian.PutUint64(descs[16:], uint64(pay2))
		binary.LittleEndian.PutUint32(descs[24:], 6)
		descVA, _ := p.AllocBytes(descs)
		hdr := make([]byte, 16)
		binary.LittleEndian.PutUint32(hdr[0:], 2)
		binary.LittleEndian.PutUint64(hdr[8:], uint64(descVA))
		argVA, _ := p.AllocBytes(hdr)
		ret, err := tk.Ioctl(fd, tdNested, argVA)
		if err != nil || ret != 2 {
			t.Fatalf("nested ioctl: ret=%d err=%v", ret, err)
		}
	})
	if len(r.drv.chunks) != 2 ||
		string(r.drv.chunks[0]) != "first chunk payload" ||
		string(r.drv.chunks[1]) != "second" {
		t.Fatalf("driver chunks = %q", r.drv.chunks)
	}
}

// A compromised driver VM performing memory operations the guest never
// declared is stopped by the hypervisor's grant checks, while the rest of
// the operation completes normally — fault isolation per §4.1.
func TestUndeclaredDriverOpsRejected(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux)
	r.runApp(t, func(p *kernel.Process, tk *kernel.Task) {
		fd, _ := tk.Open("/dev/testdev", devfile.ORdWr)
		// Map something at the evil target so only the grant check can say no.
		if _, err := p.AllocBytes([]byte("victim")); err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Ioctl(fd, tdEvil, 0); !kernel.IsErrno(err, kernel.EFAULT) {
			t.Fatalf("evil copy ioctl: %v, want EFAULT", err)
		}
		if _, err := tk.Ioctl(fd, tdEvilMap, 0); !kernel.IsErrno(err, kernel.EFAULT) {
			t.Fatalf("evil map ioctl: %v, want EFAULT", err)
		}
	})
}

func TestForwardedMmapFaultMunmap(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux)
	marker := []byte("driver VM device page 2")
	if err := r.driverVM.Space.Write(r.drv.pages[2], marker); err != nil {
		t.Fatal(err)
	}
	r.runApp(t, func(p *kernel.Process, tk *kernel.Task) {
		fd, _ := tk.Open("/dev/testdev", devfile.ORdWr)
		va, err := tk.Mmap(fd, 4*mem.PageSize, 0)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(marker))
		// Touch page 2: fault -> forwarded -> driver InsertPFN -> hypervisor
		// fixes EPT + guest page table.
		if err := p.UserRead(tk, va+2*mem.PageSize, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, marker) {
			t.Fatalf("mapped page reads %q", got)
		}
		// Guest writes land in the driver VM page (shared memory, not copy).
		if err := p.UserWrite(tk, va+2*mem.PageSize+64, []byte("from guest")); err != nil {
			t.Fatal(err)
		}
		check := make([]byte, 10)
		if err := r.driverVM.Space.Read(r.drv.pages[2]+64, check); err != nil {
			t.Fatal(err)
		}
		if string(check) != "from guest" {
			t.Fatalf("driver page has %q", check)
		}
		if err := tk.Munmap(va, 4*mem.PageSize); err != nil {
			t.Fatal(err)
		}
		if err := p.UserRead(tk, va+2*mem.PageSize, got); err == nil {
			t.Fatal("read after munmap succeeded")
		}
	})
}

func TestForwardedPollWakes(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux)
	app, _ := r.guestK.NewProcess("app")
	var mask devfile.PollMask
	var wokeAt sim.Time
	app.SpawnTask("poller", func(tk *kernel.Task) {
		fd, _ := tk.Open("/dev/testdev", devfile.ORdOnly)
		mask, _ = tk.Poll(fd, devfile.PollIn, -1)
		wokeAt = tk.Sim().Now()
	})
	// A driver-VM local process writes 500µs later, waking the guest poller
	// through the backend's poll-wake notification.
	writer, _ := r.driverK.NewProcess("local-writer")
	writer.SpawnTask("w", func(tk *kernel.Task) {
		tk.Sim().Sleep(500 * sim.Microsecond)
		fd, _ := tk.Open("/dev/testdev", devfile.OWrOnly)
		src, _ := writer.AllocBytes([]byte("evt"))
		if _, err := tk.Write(fd, src, 3); err != nil {
			t.Error(err)
		}
	})
	r.env.Run()
	if mask&devfile.PollIn == 0 {
		t.Fatalf("poll mask = %v, want PollIn", mask)
	}
	if wokeAt < sim.Time(500*sim.Microsecond) {
		t.Fatalf("poller woke at %v, before the event", wokeAt)
	}
	if d := r.env.Deadlocked(); len(d) > 1 { // the CVD dispatcher parks forever by design
		t.Fatalf("deadlocked: %v", d)
	}
}

func TestForwardedFasyncSIGIO(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux)
	app, _ := r.guestK.NewProcess("app")
	sigios := 0
	app.OnSIGIO(func() { sigios++ })
	app.SpawnTask("main", func(tk *kernel.Task) {
		fd, _ := tk.Open("/dev/testdev", devfile.ORdOnly)
		if err := tk.SetFasync(fd, true); err != nil {
			t.Error(err)
		}
	})
	writer, _ := r.driverK.NewProcess("local-writer")
	writer.SpawnTask("w", func(tk *kernel.Task) {
		tk.Sim().Sleep(300 * sim.Microsecond)
		fd, _ := tk.Open("/dev/testdev", devfile.OWrOnly)
		src, _ := writer.AllocBytes([]byte("e"))
		_, _ = tk.Write(fd, src, 1)
	})
	r.env.Run()
	if sigios != 1 {
		t.Fatalf("guest received %d SIGIOs, want 1", sigios)
	}
}

func TestQueueCapRejectsFlood(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux)
	// A malicious guest floods the queue from many threads; the 100-slot
	// cap (§5.1) bounds it and the 101st concurrent post fails with EBUSY.
	app, _ := r.guestK.NewProcess("flooder")
	opened := r.env.NewEvent("opened")
	var fd int
	app.SpawnTask("opener", func(tk *kernel.Task) {
		fd, _ = tk.Open("/dev/testdev", devfile.ORdOnly)
		opened.Trigger()
	})
	busy := 0
	done := 0
	for i := 0; i < slotCount+10; i++ {
		app.SpawnTask("flood", func(tk *kernel.Task) {
			tk.Sim().Wait(opened)
			// Blocking reads: each occupies a queue slot and never returns.
			dst, _ := app.Alloc(8)
			if _, err := tk.Read(fd, dst, 8); kernel.IsErrno(err, kernel.EBUSY) {
				busy++
			} else {
				done++
			}
		})
	}
	r.env.RunUntil(sim.Time(50 * sim.Millisecond))
	if busy < 9 {
		t.Fatalf("EBUSY rejections = %d, want >= 9 (cap of %d slots)", busy, slotCount)
	}
	if r.fe.Rejected != uint64(busy) {
		t.Fatalf("frontend Rejected = %d, busy = %d", r.fe.Rejected, busy)
	}
}

func TestFreeBSDGuestOverLinuxDriverVM(t *testing.T) {
	// The cross-OS deployment of §5.1: FreeBSD guest, Linux driver VM.
	r := newRig(t, Interrupts, kernel.FreeBSD)
	if r.guestK.Flavor != kernel.FreeBSD || r.driverK.Flavor != kernel.Linux {
		t.Fatal("rig flavors wrong")
	}
	r.runApp(t, func(p *kernel.Process, tk *kernel.Task) {
		fd, err := tk.Open("/dev/testdev", devfile.ORdWr)
		if err != nil {
			t.Fatal(err)
		}
		msg := []byte("bsd app, linux driver")
		src, _ := p.AllocBytes(msg)
		if _, err := tk.Write(fd, src, len(msg)); err != nil {
			t.Fatal(err)
		}
		// mmap works because the FreeBSD kernel patch passes the VA range.
		va, err := tk.Mmap(fd, mem.PageSize, 0)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 4)
		if err := p.UserRead(tk, va, buf); err != nil {
			t.Fatal(err)
		}
	})
}

func TestPollingModeStillCorrect(t *testing.T) {
	r := newRig(t, Polling, kernel.Linux)
	r.runApp(t, func(p *kernel.Process, tk *kernel.Task) {
		fd, _ := tk.Open("/dev/testdev", devfile.ORdWr)
		msg := []byte("polled path data")
		src, _ := p.AllocBytes(msg)
		if _, err := tk.Write(fd, src, len(msg)); err != nil {
			t.Fatal(err)
		}
		dst, _ := p.Alloc(32)
		n, err := tk.Read(fd, dst, 32)
		if err != nil || n != len(msg) {
			t.Fatalf("read: n=%d err=%v", n, err)
		}
		got := make([]byte, n)
		_ = p.Mem.Read(dst, got)
		if !bytes.Equal(got, msg) {
			t.Fatalf("got %q", got)
		}
	})
	if r.be.PolledPosts == 0 {
		t.Fatal("polling mode never hit the polled fast path")
	}
}

func TestFIFOOrdering(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux)
	app, _ := r.guestK.NewProcess("app")
	opened := r.env.NewEvent("opened")
	var fd int
	app.SpawnTask("opener", func(tk *kernel.Task) {
		fd, _ = tk.Open("/dev/testdev", devfile.OWrOnly)
		opened.Trigger()
	})
	// Writers post in a fixed order at the same instant; the backend must
	// execute them in post order (slot seq FIFO).
	for i := 0; i < 5; i++ {
		i := i
		app.SpawnTask("writer", func(tk *kernel.Task) {
			tk.Sim().Wait(opened)
			src, _ := app.AllocBytes([]byte{byte('A' + i)})
			if _, err := tk.Write(fd, src, 1); err != nil {
				t.Error(err)
			}
		})
	}
	r.env.Run()
	if string(r.drv.data) != "ABCDE" {
		t.Fatalf("driver saw order %q, want ABCDE", r.drv.data)
	}
}

func TestGrantSlotsRecycled(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux)
	r.runApp(t, func(p *kernel.Process, tk *kernel.Task) {
		fd, _ := tk.Open("/dev/testdev", devfile.ORdWr)
		src, _ := p.AllocBytes(bytes.Repeat([]byte{1}, 16))
		// Far more operations than the grant table has slots: each op's
		// grant must be revoked after its round trip.
		for i := 0; i < 300; i++ {
			if _, err := tk.Write(fd, src, 16); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
		}
	})
}
