package cvd

// Tests for the translation-cache fast path (Config.TLB + Config.GrantBatch)
// at the CVD layer: batched declares collapse a scatter-gather grant vector
// into one hypervisor crossing, armed requests produce identical data to
// dormant ones, and the hostile revoke-while-mapped case still faults with
// every cache armed — the caches amortize cost, never authority.

import (
	"bytes"
	"encoding/binary"
	"testing"

	"paradice/internal/devfile"
	"paradice/internal/grant"
	"paradice/internal/kernel"
	"paradice/internal/trace"
)

// withWalkcache arms the software TLB and batched grant hypercalls.
func withWalkcache() func(*Config) {
	return func(c *Config) {
		c.TLB = true
		c.GrantBatch = true
	}
}

// nestedChunks issues one tdNested ioctl carrying n scattered payload chunks
// and returns what the driver gathered.
func nestedChunks(t *testing.T, r *rig, n int) {
	t.Helper()
	r.runApp(t, func(p *kernel.Process, tk *kernel.Task) {
		fd, _ := tk.Open("/dev/testdev", devfile.ORdWr)
		descs := make([]byte, 16*n)
		for i := 0; i < n; i++ {
			// Scatter the payloads: each AllocBytes lands at a fresh address,
			// so no two entries of the grant vector can merge.
			pay, _ := p.AllocBytes([]byte{byte('a' + i), byte('0' + i), '!'})
			binary.LittleEndian.PutUint64(descs[16*i:], uint64(pay))
			binary.LittleEndian.PutUint32(descs[16*i+8:], 3)
		}
		descVA, _ := p.AllocBytes(descs)
		hdr := make([]byte, 16)
		binary.LittleEndian.PutUint32(hdr[0:], uint32(n))
		binary.LittleEndian.PutUint64(hdr[8:], uint64(descVA))
		argVA, _ := p.AllocBytes(hdr)
		ret, err := tk.Ioctl(fd, tdNested, argVA)
		if err != nil || int(ret) != n {
			t.Fatalf("nested ioctl: ret=%d err=%v", ret, err)
		}
	})
	if len(r.drv.chunks) != n {
		t.Fatalf("driver gathered %d chunks, want %d", len(r.drv.chunks), n)
	}
	for i, c := range r.drv.chunks {
		if want := []byte{byte('a' + i), byte('0' + i), '!'}; !bytes.Equal(c, want) {
			t.Fatalf("chunk %d = %q, want %q", i, c, want)
		}
	}
}

// TestBatchedDeclareSingleCrossing is the acceptance criterion for batched
// grant hypercalls: a scatter-gather declare of 8+ entries (the nested
// ioctl's header + descriptor block + 8 scattered payloads) costs ONE
// frontend crossing with GrantBatch on, where the per-entry path pays one
// crossing per entry — and the gathered data is identical either way.
func TestBatchedDeclareSingleCrossing(t *testing.T) {
	crossings := func(opts ...func(*Config)) uint64 {
		r := newRig(t, Interrupts, kernel.Linux, opts...)
		tr := trace.New()
		trace.Install(r.env, tr)
		defer trace.Uninstall(r.env)
		nestedChunks(t, r, 8)
		return tr.Metrics().Counter("cvd.fe.grant.crossings")
	}
	perEntry := crossings()
	if perEntry < 8 {
		t.Fatalf("unbatched 8-chunk declare took %d crossings, expected >= 8", perEntry)
	}
	batched := crossings(withWalkcache())
	if batched != 1 {
		t.Fatalf("batched 8-chunk declare took %d crossings, want 1 (unbatched: %d)", batched, perEntry)
	}
}

// TestWalkcacheArmedDataIntegrity runs the macro-shaped IOWR ioctl repeatedly
// with the TLB and grant cache armed: every round trip's bytes must be exact,
// and by the steady state both caches must actually be serving hits.
func TestWalkcacheArmedDataIntegrity(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux, withWalkcache())
	tr := trace.New()
	trace.Install(r.env, tr)
	defer trace.Uninstall(r.env)
	r.runApp(t, func(p *kernel.Process, tk *kernel.Task) {
		fd, _ := tk.Open("/dev/testdev", devfile.ORdWr)
		arg, _ := p.Alloc(32)
		for i := 0; i < 4; i++ {
			payload := bytes.Repeat([]byte{byte(0x10 + i)}, 32)
			if err := p.Mem.Write(arg, payload); err != nil {
				t.Fatal(err)
			}
			if _, err := tk.Ioctl(fd, tdStruct, arg); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, 32)
			if err := p.Mem.Read(arg, got); err != nil {
				t.Fatal(err)
			}
			for _, b := range got {
				if b != byte(0x10+i)^0xFF {
					t.Fatalf("iteration %d: result byte %#x through armed caches", i, b)
				}
			}
		}
	})
	m := tr.Metrics()
	if m.Counter("hv.tlb.hit") == 0 {
		t.Fatal("four identical ioctls produced no TLB hits")
	}
	if m.Counter("hv.grant.cache.hit") == 0 {
		t.Fatal("batched declares produced no grant-cache validation hits")
	}
}

// TestWalkcacheRevokedWhileMappedFaults replays the hostile
// revoke-while-mapped scenario with EVERY cache armed: map cache, software
// TLB, and grant-validation cache. The revocation must still tear the
// mapping down in the same instant, and a request riding the revoked
// reference must still be denied — a cached validation or translation must
// never outlive the grant that justified it.
func TestWalkcacheRevokedWhileMappedFaults(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux, withMapCache(1), withWalkcache())
	const n = 4096
	r.runApp(t, func(p *kernel.Process, tk *kernel.Task) {
		fd, _ := tk.Open("/dev/testdev", devfile.ORdWr)
		src, _ := p.AllocBytes(bytes.Repeat([]byte{7}, n))
		if _, err := tk.Write(fd, src, n); err != nil {
			t.Fatal(err)
		}
		key := mapKey{fileID: 0, kind: grant.KindCopyFrom}
		m := r.be.mapc.entries[key]
		if m == nil {
			t.Fatal("no cached mapping after the first hinted write")
		}
		bg := r.fe.bulk[bulkKey{fileID: 0, kind: grant.KindCopyFrom}]
		if bg.ref == 0 {
			t.Fatal("no live bulk grant after the first hinted write")
		}
		if err := r.fe.grants.Revoke(bg.ref); err != nil {
			t.Fatal(err)
		}
		if !m.Dead() {
			t.Fatal("cached mapping still alive after its grant was revoked")
		}
		if err := m.Copy(src, make([]byte, 16), false); err == nil {
			t.Fatal("access through the revoked mapping did not fault")
		}
		// The grant-validation cache subscribed to the same revocation: a
		// request reusing the revoked reference is denied at validation, not
		// served from the cached vector.
		if _, err := tk.Write(fd, src, n); !kernel.IsErrno(err, kernel.EFAULT) {
			t.Fatalf("write under revoked grant: %v, want EFAULT", err)
		}
	})
	_, _, invals := r.be.MapCacheStats()
	if invals < 1 {
		t.Fatalf("invalidations = %d, want >= 1", invals)
	}
}
