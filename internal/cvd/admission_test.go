package cvd

import (
	"testing"

	"paradice/internal/devfile"
	"paradice/internal/kernel"
	"paradice/internal/sim"
)

// QoS admission control: a class with an occupancy limit is refused with
// EAGAIN once the ring holds that many in-flight requests, while unlimited
// classes keep the full 100-slot cap. The limited class never claims a
// slot, so shedding it costs no ring space.
func TestAdmissionShedsLimitedClass(t *testing.T) {
	const limit = 10
	r := newRig(t, Interrupts, kernel.Linux, func(c *Config) {
		c.Admission = map[uint8]int{2: limit}
	})
	app, _ := r.guestK.NewProcess("app")
	opened := r.env.NewEvent("opened")
	var fd int
	app.SpawnTask("opener", func(tk *kernel.Task) {
		fd, _ = tk.Open("/dev/testdev", devfile.ORdOnly)
		opened.Trigger()
	})
	// Occupy exactly `limit` slots with blocking reads (nothing is written,
	// so they park on the driver's wait queue and hold their slots).
	for i := 0; i < limit; i++ {
		app.SpawnTask("holder", func(tk *kernel.Task) {
			tk.Sim().Wait(opened)
			dst, _ := app.Alloc(8)
			tk.Read(fd, dst, 8)
		})
	}
	var lowErr, highErr error
	var occAtProbe int
	app.SpawnTask("probe", func(tk *kernel.Task) {
		tk.Sim().Wait(opened)
		tk.Sim().Sleep(5 * sim.Millisecond) // let the holders post
		occAtProbe = r.fe.Occupancy()
		tk.QoS = 2
		_, lowErr = tk.Ioctl(fd, tdNoop, 0)
		tk.QoS = 0
		_, highErr = tk.Ioctl(fd, tdNoop, 0)
	})
	r.env.RunUntil(sim.Time(50 * sim.Millisecond))
	if occAtProbe < limit {
		t.Fatalf("occupancy at probe = %d, want >= %d", occAtProbe, limit)
	}
	if !kernel.IsErrno(lowErr, kernel.EAGAIN) {
		t.Fatalf("limited class got %v, want EAGAIN", lowErr)
	}
	if highErr != nil {
		t.Fatalf("unlimited class got %v, want success past the limit", highErr)
	}
	if r.fe.Throttled != 1 {
		t.Fatalf("Throttled = %d, want 1", r.fe.Throttled)
	}
	if r.fe.Rejected != 0 {
		t.Fatalf("Rejected = %d, want 0 (admission must shed before slot claim)", r.fe.Rejected)
	}
}

// SetAdmission(nil) disables admission control: the previously limited
// class is admitted again.
func TestAdmissionDisable(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux, func(c *Config) {
		c.Admission = map[uint8]int{2: 0} // limit 0: shed even on an empty ring
	})
	var first, second error
	r.runApp(t, func(p *kernel.Process, tk *kernel.Task) {
		fd, err := tk.Open("/dev/testdev", devfile.ORdOnly)
		if err != nil {
			t.Fatal(err)
		}
		tk.QoS = 2
		_, first = tk.Ioctl(fd, tdNoop, 0)
		r.fe.SetAdmission(nil)
		_, second = tk.Ioctl(fd, tdNoop, 0)
	})
	if !kernel.IsErrno(first, kernel.EAGAIN) {
		t.Fatalf("limited class got %v, want EAGAIN", first)
	}
	if second != nil {
		t.Fatalf("after disable got %v, want success", second)
	}
}
