// Package cvd implements Paradice's Common Virtual Driver — the single pair
// of paravirtual drivers that serves every device class (§3.2.1). The
// frontend lives in a guest VM kernel and exposes a virtual device file; the
// backend lives in the driver VM kernel and replays forwarded file
// operations against the real driver. They communicate through a real
// shared memory page (the ring) and inter-VM interrupts, with an optional
// polling mode for high-performance workloads (§5.1).
//
// Before forwarding an operation, the frontend declares the operation's
// legitimate memory operations in the guest's grant table — derived from the
// file operation's own arguments, from the ioctl command-number macros, or
// from the analyzer's extracted slices (§4.1) — and the backend attaches the
// grant reference to every hypervisor memory-operation request it makes on
// the driver's behalf.
package cvd

import (
	"encoding/binary"

	"paradice/internal/grant"
)

// Op codes of forwarded file operations.
const (
	opNone    = 0
	opOpen    = 1
	opRelease = 2
	opRead    = 3
	opWrite   = 4
	opIoctl   = 5
	opMmap    = 6
	opMunmap  = 7
	opFault   = 8
	opPoll    = 9
	opFasync  = 10
)

// Slot states.
const (
	slotFree    = 0
	slotPosted  = 1
	slotRunning = 2
	slotDone    = 3
)

// Ring page layout: a 96-byte header followed by 100 40-byte slots — the
// paper's cap of 100 queued operations per guest VM falls out of the slot
// count.
const (
	hdrPostSeq      = 0  // u32: monotonically increasing post counter
	hdrBackendPoll  = 4  // u32: backend is spinning on the page
	hdrFrontendPoll = 8  // u32: count of requesters spinning for responses
	hdrNotifBits    = 12 // u32: pending notification bits
	hdrHbReq        = 16 // u32: watchdog heartbeat sequence (frontend side)
	hdrHbAck        = 20 // u32: last heartbeat sequence the backend echoed
	hdrEpoch        = 24 // u32: restart epoch of the backend owning the ring
	hdrDrain        = 28 // u32: planned handover in progress; new posts park
	hdrMode         = 32 // u32: frontend's adaptive stance (0 irq, 1 poll); advisory
	hdrSubCount     = 36 // u32: submission batch descriptor count since last consume
	hdrSubBits      = 40 // 4×u32 bitmap of posted slots in the batch (bit s = slot s)
	hdrDoneCount    = 56 // u32: completion count since last scan
	hdrDoneBits     = 60 // 4×u32 bitmap of completed slots (bit s = slot s)
	hdrSize         = 96

	// bitmapWords is the width of the submission/completion descriptor
	// bitmaps: 4×32 = 128 bits covers slotCount with room to spare. Both
	// bitmaps are ADVISORY — either side may scribble them, so readers
	// validate every bit against the actual slot state and ignore bits at or
	// beyond slotCount.
	bitmapWords = 4

	slotSize  = 40
	slotCount = 100

	// Slot field offsets.
	sState = 0  // u32
	sOp    = 4  // u8
	sFile  = 6  // u16: frontend-assigned file instance id
	sRef   = 8  // u32: grant reference (0 = none)
	sSeq   = 12 // u32: FIFO sequence
	sArg0  = 16 // u64
	sArg1  = 24 // u64
	sRet   = 32 // i32 (response); u32 arg2 low half in requests
	sErrno = 36 // i32 (response); u32 trace request ID in requests
)

// Request flag bits, carried in bits 8..15 of the slot's op word.
const (
	// reqFlagMapHint marks a request whose data movement should go through
	// the backend's grant-map cache: the frontend kept the grant alive
	// across requests, so a mapping established for it stays valid and
	// amortizes. Requests without the hint (one-shot grants, ioctls) use the
	// per-request assisted copy.
	reqFlagMapHint = 1 << 0
)

// Notification bits (backend -> frontend).
const (
	notifPollWake = 1 << 0 // a driver wait queue woke; re-evaluate poll
	notifSIGIO    = 1 << 1 // kill_fasync fired; deliver SIGIO
)

// page wraps a grant.Accessor (either side's view of the shared frame) with
// typed field access. All channel state crosses the VM boundary through
// these bytes and nothing else.
type page struct {
	acc grant.Accessor
}

func (p page) readU32(off int) uint32 {
	var b [4]byte
	if err := p.acc.ReadAt(off, b[:]); err != nil {
		panic("cvd: ring page inaccessible: " + err.Error())
	}
	return binary.LittleEndian.Uint32(b[:])
}

func (p page) writeU32(off int, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	if err := p.acc.WriteAt(off, b[:]); err != nil {
		panic("cvd: ring page inaccessible: " + err.Error())
	}
}

func (p page) readU64(off int) uint64 {
	var b [8]byte
	if err := p.acc.ReadAt(off, b[:]); err != nil {
		panic("cvd: ring page inaccessible: " + err.Error())
	}
	return binary.LittleEndian.Uint64(b[:])
}

func (p page) writeU64(off int, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	if err := p.acc.WriteAt(off, b[:]); err != nil {
		panic("cvd: ring page inaccessible: " + err.Error())
	}
}

func slotOff(slot int) int { return hdrSize + slot*slotSize }

// request is a decoded slot request.
type request struct {
	slot   int
	op     uint8
	flags  uint8 // reqFlag bits
	fileID uint16
	ref    uint32
	seq    uint32
	arg0   uint64
	arg1   uint64
	arg2   uint64 // request reuse of the sRet field (low 32 bits)
	rid    uint32 // trace request ID; request reuse of the sErrno field
}

func (p page) writeRequest(slot int, r request) {
	base := slotOff(slot)
	p.writeU32(base+sOp, uint32(r.op)|uint32(r.flags)<<8|uint32(r.fileID)<<16)
	p.writeU32(base+sRef, r.ref)
	p.writeU32(base+sSeq, r.seq)
	p.writeU64(base+sArg0, r.arg0)
	p.writeU64(base+sArg1, r.arg1)
	p.writeU32(base+sRet, uint32(r.arg2))
	// The errno word carries the trace request ID frontend -> backend; the
	// response overwrites it. The ring page is exactly full (96-byte header
	// + 100×40-byte slots), so tracing reuses dead request-direction bytes
	// rather than growing the slot.
	p.writeU32(base+sErrno, r.rid)
	p.writeU32(base+sState, slotPosted)
}

func (p page) readRequest(slot int) request {
	base := slotOff(slot)
	opFile := p.readU32(base + sOp)
	return request{
		slot:   slot,
		op:     uint8(opFile),
		flags:  uint8(opFile >> 8),
		fileID: uint16(opFile >> 16),
		ref:    p.readU32(base + sRef),
		seq:    p.readU32(base + sSeq),
		arg0:   p.readU64(base + sArg0),
		arg1:   p.readU64(base + sArg1),
		arg2:   uint64(p.readU32(base + sRet)),
		rid:    p.readU32(base + sErrno),
	}
}

func (p page) writeResponse(slot int, ret int32, errno int32) {
	base := slotOff(slot)
	p.writeU32(base+sRet, uint32(ret))
	p.writeU32(base+sErrno, uint32(errno))
	p.writeU32(base+sState, slotDone)
	// Publish a completion descriptor so the frontend's scan is O(batch):
	// set the slot's done bit and bump the count. The words are advisory —
	// the scan re-validates against slot state — so a hostile peer clearing
	// them degrades to a deadline, never to corruption.
	p.setBitmapBit(hdrDoneBits, slot)
	p.writeU32(hdrDoneCount, p.readU32(hdrDoneCount)+1)
}

func (p page) readResponse(slot int) (ret int32, errno int32) {
	base := slotOff(slot)
	return int32(p.readU32(base + sRet)), int32(p.readU32(base + sErrno))
}

// recycleSlot returns a slot to the free pool, scrubbing the response words
// first. The sErrno word carries the trace request ID in the request
// direction, so a slot freed WITHOUT a response having overwritten it (an
// abandoned request reclaimed after a timeout or a reconnect) would
// otherwise leave a stale RID where the next reader expects an errno. Every
// path that frees a slot without reading a response must come through here.
func (p page) recycleSlot(slot int) {
	base := slotOff(slot)
	p.writeU32(base+sRet, 0)
	p.writeU32(base+sErrno, 0)
	p.writeU32(base+sState, slotFree)
}

func (p page) slotState(slot int) uint32 { return p.readU32(slotOff(slot) + sState) }
func (p page) setSlotState(slot int, st uint32) {
	p.writeU32(slotOff(slot)+sState, st)
}

// setBitmapBit ORs slot's bit into the descriptor bitmap rooted at base
// (hdrSubBits or hdrDoneBits). Out-of-range slots are ignored — the bitmaps
// are advisory and must never become a way to write outside their words.
func (p page) setBitmapBit(base, slot int) {
	if slot < 0 || slot >= bitmapWords*32 {
		return
	}
	off := base + 4*(slot/32)
	p.writeU32(off, p.readU32(off)|1<<uint(slot%32))
}

// takeBitmap reads and clears the descriptor bitmap rooted at base. The
// caller validates each set bit against the actual slot state before acting
// on it: the words cross the VM boundary and are untrusted.
func (p page) takeBitmap(base int) [bitmapWords]uint32 {
	var bits [bitmapWords]uint32
	for w := 0; w < bitmapWords; w++ {
		off := base + 4*w
		bits[w] = p.readU32(off)
		if bits[w] != 0 {
			p.writeU32(off, 0)
		}
	}
	return bits
}

// postNotif ORs bits into the pending-notification field.
func (p page) postNotif(bits uint32) {
	p.writeU32(hdrNotifBits, p.readU32(hdrNotifBits)|bits)
}

// takeNotifs reads and clears the pending-notification bits.
func (p page) takeNotifs() uint32 {
	bits := p.readU32(hdrNotifBits)
	if bits != 0 {
		p.writeU32(hdrNotifBits, 0)
	}
	return bits
}
