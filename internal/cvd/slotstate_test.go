package cvd

// Regression tests for three slot-state bugs on the timeout/reconnect paths:
//
//  1. a polled request bounded by the per-request deadline used to spin the
//     whole poll window before starting the deadline clock, overshooting the
//     deadline by the window (and the hdrFrontendPoll word must be balanced
//     on every exit of the spin);
//  2. a slot freed by the reconnect sweep without a response kept the trace
//     request ID in its sErrno bytes (the request-direction reuse), leaving a
//     stale RID where the next reader expects an errno;
//  3. a timed-out slot reclaimed and reposted in a new restart epoch could be
//     scribbled on by a handler thread of the pre-restart backend — one that
//     was never stopped because its driver VM was wedged, not dead;
//  4. the coalesced-doorbell flush closure captured the ARMING post's request
//     ID and kicked with it when the window expired, regardless of what had
//     happened to the slot in between: a slot that timed out and was
//     reclaimed inside the window produced a doorbell for nothing, and one
//     that was reclaimed and REPOSTED produced a doorbell attributed to the
//     stale RID instead of the slot's current occupant.

import (
	"bytes"
	"testing"

	"paradice/internal/devfile"
	"paradice/internal/kernel"
	"paradice/internal/sim"
	"paradice/internal/trace"
)

// Bug 1: the polled wait must be bounded by the deadline. Pre-fix, a doomed
// request in polling mode burned the full 200 µs window with hdrFrontendPoll
// raised and only then armed the deadline timer, so it returned at
// window+deadline instead of the deadline.
func TestPollingTimeoutRespectsDeadlineExactly(t *testing.T) {
	for _, tc := range []struct {
		name     string
		deadline sim.Duration
	}{
		{"deadline-above-window", sim.Millisecond},      // spin the window, then wait the rest
		{"deadline-below-window", 100 * sim.Microsecond}, // the spin itself is truncated
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(t, Polling, kernel.Linux)
			r.fe.SetDeadline(tc.deadline)
			var took sim.Duration
			r.runApp(t, func(p *kernel.Process, tk *kernel.Task) {
				fd, err := tk.Open("/dev/testdev", devfile.ORdOnly)
				if err != nil {
					t.Fatal(err)
				}
				dst, _ := p.Alloc(16)
				// Nothing to read: the handler parks in the driver and the
				// request must fail at the deadline, not window+deadline.
				start := tk.Sim().Now()
				_, rerr := tk.Read(fd, dst, 16)
				took = tk.Sim().Now().Sub(start)
				if !kernel.IsErrno(rerr, kernel.ETIMEDOUT) {
					t.Fatalf("blocked polled read: %v, want ETIMEDOUT", rerr)
				}
			})
			if took < tc.deadline {
				t.Fatalf("timed out after %v, before the %v deadline", took, tc.deadline)
			}
			// Post/grant overhead is under a couple of microseconds; the
			// pre-fix overshoot was the whole 200 µs window.
			if slack := took - tc.deadline; slack > 20*sim.Microsecond {
				t.Fatalf("timed out %v late (took %v, deadline %v); the spin must count against the deadline",
					slack, took, tc.deadline)
			}
			// The abandon path must not leave the backend believing a
			// frontend is still spinning for responses.
			if w := r.fe.ring.readU32(hdrFrontendPoll); w != 0 {
				t.Fatalf("hdrFrontendPoll = %d after the timeout, want 0", w)
			}
			if r.fe.TimedOut != 1 {
				t.Fatalf("TimedOut = %d, want 1", r.fe.TimedOut)
			}
		})
	}
}

// Bug 2: with tracing on, the request's trace RID rides the slot's sErrno
// bytes frontend -> backend. A backend killed between slotRunning and
// completion never overwrites them; the reconnect sweep used to free the
// abandoned slot with the RID still in place. Every observed errno must be a
// real errno (ETIMEDOUT for the abandoned issuer, EREMOTE for the swept one),
// and every freed slot's errno word must read zero.
func TestReconnectSweepScrubsTraceRIDFromAbandonedSlots(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux)
	tr := trace.New()
	trace.Install(r.env, tr)
	defer trace.Uninstall(r.env)
	r.fe.SetDeadline(sim.Millisecond)

	app, _ := r.guestK.NewProcess("app")
	opened := r.env.NewEvent("opened")
	var fd int
	var err1, err2 error
	app.SpawnTask("opener", func(tk *kernel.Task) {
		fd, _ = tk.Open("/dev/testdev", devfile.ORdOnly)
		opened.Trigger()
	})
	// Reader 1 posts immediately: it times out at 1 ms and abandons its slot
	// while the handler is parked in the driver.
	app.SpawnTask("reader1", func(tk *kernel.Task) {
		tk.Sim().Wait(opened)
		dst, _ := app.Alloc(16)
		_, err1 = tk.Read(fd, dst, 16)
	})
	// Reader 2 posts at 1.5 ms: still inside its own deadline when the
	// backend is killed, so the sweep fails it with EREMOTE.
	app.SpawnTask("reader2", func(tk *kernel.Task) {
		tk.Sim().Wait(opened)
		tk.Sim().Sleep(1500 * sim.Microsecond)
		dst, _ := app.Alloc(16)
		_, err2 = tk.Read(fd, dst, 16)
	})
	// The driver VM dies at 2 ms with reader1's slot abandoned (slotRunning,
	// no response ever written) and reader2's in flight; then a fresh driver
	// VM reconnects.
	r.env.Spawn("supervisor", func(p *sim.Proc) {
		p.Sleep(2 * sim.Millisecond)
		r.be.Kill()
		driverVM2, err := r.h.CreateVM("driver2", 32<<20)
		if err != nil {
			t.Error(err)
			return
		}
		driverK2 := kernel.New("driver2", kernel.Linux, r.env, driverVM2.Space, driverVM2.RAM)
		drv2 := &testDriver{k: driverK2, wq: driverK2.NewWaitQueue("testdrv2")}
		driverK2.RegisterDevice("/dev/testdev", drv2, drv2)
		if _, err := Reconnect(r.fe, r.h, driverVM2, driverK2, "/dev/testdev"); err != nil {
			t.Error(err)
		}
	})
	r.env.RunUntil(r.env.Now().Add(20 * sim.Millisecond))

	if !kernel.IsErrno(err1, kernel.ETIMEDOUT) {
		t.Fatalf("reader1: %v, want ETIMEDOUT", err1)
	}
	if !kernel.IsErrno(err2, kernel.EREMOTE) {
		t.Fatalf("reader2: %v, want EREMOTE (a real errno, never a request ID)", err2)
	}
	// Every slot is free AND scrubbed: a raw errno word still holding a trace
	// RID is exactly the bug — the next reader of the slot would surface it
	// as an errno.
	for s := 0; s < slotCount; s++ {
		if st := r.fe.ring.slotState(s); st != slotFree {
			t.Fatalf("slot %d in state %d after the sweep, want free", s, st)
		}
		if raw := r.fe.ring.readU32(slotOff(s) + sErrno); raw != 0 {
			t.Fatalf("slot %d freed with errno word = %d (a stale trace RID)", s, raw)
		}
	}
}

// Bug 3: the wedged-VM interleaving. A request times out and its slot is
// abandoned; the watchdog declares the driver VM wedged and reconnects
// WITHOUT stopping the old backend (a wedged VM cannot be stopped — that is
// the §8 false-positive case); the sweep reclaims the slot and a new-epoch
// request reposts it. When the old backend's handler thread finally wakes, it
// still holds the slot index — the restart-epoch guard must make it discard
// its response instead of scribbling over the new owner's slot.
func TestEpochGuardDiscardsWedgedBackendLateResponse(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux)
	r.fe.SetDeadline(sim.Millisecond)

	app, _ := r.guestK.NewProcess("app")
	reposted := r.env.NewEvent("reposted")
	var readErr, werr error
	var wn int
	app.SpawnTask("main", func(tk *kernel.Task) {
		fd, err := tk.Open("/dev/testdev", devfile.ORdWr)
		if err != nil {
			t.Error(err)
			return
		}
		dst, _ := app.Alloc(64)
		// The read's handler parks in the wedged driver's wait queue; the
		// issuer abandons the slot at the 1 ms deadline.
		_, readErr = tk.Read(fd, dst, 16)

		// Watchdog verdict: wedged. Reconnect to a fresh driver VM without
		// stopping the old backend — its dispatcher and the parked handler
		// thread are still alive in the old driver VM.
		driverVM2, err := r.h.CreateVM("driver2", 32<<20)
		if err != nil {
			t.Error(err)
			return
		}
		driverK2 := kernel.New("driver2", kernel.Linux, r.env, driverVM2.Space, driverVM2.RAM)
		drv2 := &testDriver{k: driverK2, wq: driverK2.NewWaitQueue("testdrv2")}
		driverK2.RegisterDevice("/dev/testdev", drv2, drv2)
		if _, err := Reconnect(r.fe, r.h, driverVM2, driverK2, "/dev/testdev"); err != nil {
			t.Error(err)
			return
		}

		// New epoch: reopen and repost into the reclaimed slot.
		fd2, err := tk.Open("/dev/testdev", devfile.OWrOnly)
		if err != nil {
			t.Error(err)
			return
		}
		src, _ := app.AllocBytes([]byte("seven b"))
		wn, werr = tk.Write(fd2, src, 7)
		reposted.Trigger()
	})

	// Only after the slot has been reclaimed and reused: feed the wedged
	// driver so its parked handler thread wakes and tries to complete the
	// long-abandoned read.
	feeder, _ := r.driverK.NewProcess("feeder")
	feeder.SpawnTask("w", func(tk *kernel.Task) {
		tk.Sim().Wait(reposted)
		tk.Sim().Sleep(sim.Millisecond)
		fd, _ := tk.Open("/dev/testdev", devfile.OWrOnly)
		src, _ := feeder.AllocBytes(bytes.Repeat([]byte{7}, 16))
		if _, err := tk.Write(fd, src, 16); err != nil {
			t.Error(err)
		}
	})
	r.env.RunUntil(r.env.Now().Add(50 * sim.Millisecond))

	if !kernel.IsErrno(readErr, kernel.ETIMEDOUT) {
		t.Fatalf("abandoned read: %v, want ETIMEDOUT", readErr)
	}
	if werr != nil || wn != 7 {
		t.Fatalf("new-epoch write: n=%d err=%v, want 7/nil", wn, werr)
	}
	// The late handler's response was discarded: no slot is stuck in
	// slotDone (or any other state) from a backend that no longer owns the
	// ring.
	for s := 0; s < slotCount; s++ {
		if st := r.fe.ring.slotState(s); st != slotFree {
			t.Fatalf("slot %d left in state %d by the wedged backend's late handler", s, st)
		}
	}
}

// Bug 4a: a coalesced flush whose entire pending set retired inside the
// window must ring nothing. Pre-fix, the flush closure captured the arming
// post's RID and kicked unconditionally when the window expired — a doorbell
// for a slot that timed out and was reclaimed, waking the backend for
// nothing and attributing the kick to a request that had already failed out.
func TestOrphanedCoalescedFlushDoesNotRing(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux, func(c *Config) {
		c.CoalesceWindow = 50 * sim.Microsecond
	})
	r.env.Spawn("whitebox", func(p *sim.Proc) {
		slot, ok := r.fe.allocSlot()
		if !ok {
			t.Error("no free slot")
			return
		}
		// Post and arm the flush timer, then reclaim the slot inside the
		// window — the interleaving scanDone produces when the issuer timed
		// out, abandoned the slot, and the late response arrived before the
		// flush fired.
		r.fe.ring.writeRequest(slot, request{op: opNone, rid: 11})
		r.fe.postDoorbell(11, slot)
		r.fe.ring.recycleSlot(slot)
		p.Sleep(200 * sim.Microsecond) // well past the window
	})
	r.env.RunUntil(sim.Time(sim.Millisecond))
	if r.fe.DoorbellIRQs != 0 {
		t.Fatalf("DoorbellIRQs = %d, want 0: the flush's only slot retired inside the window", r.fe.DoorbellIRQs)
	}
	if r.fe.BatchFlushes != 0 {
		t.Fatalf("BatchFlushes = %d, want 0", r.fe.BatchFlushes)
	}
	// Nothing may have been scribbled into the submission descriptor either.
	if n := r.fe.ring.readU32(hdrSubCount); n != 0 {
		t.Fatalf("hdrSubCount = %d after an empty flush, want 0", n)
	}
	for w := 0; w < bitmapWords; w++ {
		if bits := r.fe.ring.readU32(hdrSubBits + 4*w); bits != 0 {
			t.Fatalf("hdrSubBits word %d = %#x after an empty flush, want 0", w, bits)
		}
	}
}

// Bug 4b: a slot reclaimed and REPOSTED inside the window is a live request
// again — the flush must ring for it, attributed to the slot's CURRENT
// request ID, not the stale RID of the post that armed the timer. The kick's
// attribution is observable through the poll-cross trace span: with the
// backend-poll word raised, kickBackend records the crossing with the RID it
// was handed.
func TestCoalescedFlushAttributesCurrentRID(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux, func(c *Config) {
		c.CoalesceWindow = 50 * sim.Microsecond
	})
	tr := trace.New()
	trace.Install(r.env, tr)
	defer trace.Uninstall(r.env)
	r.env.Spawn("whitebox", func(p *sim.Proc) {
		slot, ok := r.fe.allocSlot()
		if !ok {
			t.Error("no free slot")
			return
		}
		// RID 11 posts and arms the flush; its request times out, the slot is
		// reclaimed, and RID 22 reposts the SAME slot inside the window.
		r.fe.ring.writeRequest(slot, request{op: opNone, rid: 11})
		r.fe.postDoorbell(11, slot)
		r.fe.ring.recycleSlot(slot)
		r.fe.ring.writeRequest(slot, request{op: opNone, rid: 22})
		r.fe.postDoorbell(22, slot)
		// Raise the backend-poll word so the flush's kick takes the traced
		// poll-cross path, making its RID attribution observable.
		r.fe.ring.writeU32(hdrBackendPoll, 1)
		p.Sleep(200 * sim.Microsecond)
	})
	r.env.RunUntil(sim.Time(sim.Millisecond))
	if r.fe.BatchFlushes != 1 {
		t.Fatalf("BatchFlushes = %d, want 1 (the reposted slot is live)", r.fe.BatchFlushes)
	}
	var kicks []uint64
	for _, e := range tr.Events() {
		if e.Name == "poll-cross" && e.Layer == trace.LayerIRQ && e.VM == r.driverVM.Name {
			kicks = append(kicks, e.RID)
		}
	}
	if len(kicks) != 1 {
		t.Fatalf("doorbell poll-cross spans = %d, want exactly 1 (one flush, one kick)", len(kicks))
	}
	if kicks[0] != 22 {
		t.Fatalf("flush kicked with RID %d, want 22 (the slot's current occupant, not the stale armer)", kicks[0])
	}
}
