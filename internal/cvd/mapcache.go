package cvd

import (
	"sort"

	"paradice/internal/grant"
	"paradice/internal/hv"
	"paradice/internal/mem"
	"paradice/internal/perf"
	"paradice/internal/trace"
)

// The grant-map cache: the backend's bulk-transfer fast path.
//
// The slow path pays a hypervisor-assisted copy per read/write — a grant
// validation plus per-page guest-page-table and EPT walks every time (§4.1,
// perf.Copy). When the frontend keeps a data buffer's grant alive across
// requests (reqFlagMapHint), the backend instead maps the granted pages into
// the driver VM once (hv.MapGuestBuffer, validated against the grant table
// like any copy) and moves subsequent data through the established mapping
// at memcpy speed (perf.MapCopy), paying only a cached-authorization check
// (perf.CostMapCacheHit) per request.
//
// Invalidation is deterministic and total:
//   - grant revoke: grant.Table.OnRevoke fires invalidateRef in the same
//     instant the declaration leaves the shared page; the mapping's driver-EPT
//     entries are destroyed, so a stale access faults instead of silently
//     touching freed guest memory;
//   - file release: the backend drops the file's entries when it replays the
//     release;
//   - reconnect / driver-VM restart / backend death: Stop and die drop every
//     entry; the successor backend starts cold.
//
// Permissions are the grant's: a mapping cached under a copy-to-user grant is
// writable, one under copy-from-user is read-only, and hv.GuestMapping.Copy
// moves every byte through the driver VM's EPT with the permission of the
// attempted access — so misusing a cached mapping faults exactly as a fresh
// map (or a fresh assisted copy) would.

// mapKey identifies one cached mapping: a file's read buffer and write
// buffer cache independently, so a device that streams both ways does not
// thrash a single entry.
type mapKey struct {
	fileID uint16
	kind   grant.Kind
}

// mapCache is one backend's cache of established guest-buffer mappings.
type mapCache struct {
	b       *Backend
	entries map[mapKey]*hv.GuestMapping

	// Stats observable by tests and the bench harness.
	Hits          uint64
	Misses        uint64
	Invalidations uint64
}

// enableMapCache arms the fast path on this backend and subscribes it to the
// guest's grant table so revocations tear cached mappings down in the same
// instant. The subscription outlives the backend (the table has no
// unsubscribe, deliberately — determinism over bookkeeping); a dead backend's
// callback finds an empty cache and does nothing.
func (b *Backend) enableMapCache(t *grant.Table) {
	mc := &mapCache{b: b, entries: make(map[mapKey]*hv.GuestMapping)}
	b.mapc = mc
	t.OnRevoke(mc.invalidateRef)
}

// MapCacheStats returns the backend's grant-map cache counters
// (zero values when the fast path is disabled).
func (b *Backend) MapCacheStats() (hits, misses, invalidations uint64) {
	if b.mapc == nil {
		return 0, 0, 0
	}
	return b.mapc.Hits, b.mapc.Misses, b.mapc.Invalidations
}

// access moves data between buf and the guest buffer at va for the given
// file, through a cached mapping when one covers the access, establishing
// one over the request's whole granted buffer [bufVA, bufVA+bufLen) on a
// miss. write is the direction of the guest-memory access (true for
// copy-to-user). Returns any mapping or validation error — the conduit
// surfaces it as EFAULT, the same shape an assisted copy's denial takes.
func (mc *mapCache) access(rid uint64, fileID uint16, ref uint32, kind grant.Kind,
	bufVA mem.GuestVirt, bufLen uint64, va mem.GuestVirt, buf []byte, write bool) error {
	b := mc.b
	tr := trace.Get(b.hv.Env)
	key := mapKey{fileID: fileID, kind: kind}
	if m := mc.entries[key]; m != nil && m.Covers(ref, kind, va, uint64(len(buf))) {
		mc.Hits++
		tr.Add("cvd.mapcache.hits", 1)
		start := tr.Now()
		perf.Charge(b.hv.Env, perf.CostMapCacheHit)
		tr.Span(rid, b.driverVM.Name, trace.LayerBE, "map-hit", start, tr.Now())
		return m.Copy(va, buf, write)
	}
	// Miss: whatever is cached under this key no longer matches the request
	// (different buffer, different grant, or already torn down) — drop it and
	// map the request's full granted range so later sub-range accesses hit.
	mc.Misses++
	tr.Add("cvd.mapcache.misses", 1)
	start := tr.Now()
	if m := mc.entries[key]; m != nil {
		mc.Invalidations++
		tr.Add("cvd.mapcache.invalidations", 1)
		m.Unmap()
		delete(mc.entries, key)
	}
	m, err := b.hv.MapGuestBuffer(b.guestVM, ref, kind, bufVA, bufLen, b.driverVM)
	if err != nil {
		tr.Span(rid, b.driverVM.Name, trace.LayerBE, "map-miss", start, tr.Now())
		return err
	}
	mc.entries[key] = m
	tr.Span(rid, b.driverVM.Name, trace.LayerBE, "map-miss", start, tr.Now())
	return m.Copy(va, buf, write)
}

// invalidateRef tears down every cached mapping established under ref. It
// runs from grant.Table.Revoke — the hypervisor destroying the driver-EPT
// entries in the same instant the grant disappears from the shared page.
func (mc *mapCache) invalidateRef(ref uint32) {
	for _, key := range mc.sortedKeys() {
		if m := mc.entries[key]; m != nil && m.Ref == ref {
			mc.Invalidations++
			trace.Get(mc.b.hv.Env).Add("cvd.mapcache.invalidations", 1)
			m.Unmap()
			delete(mc.entries, key)
		}
	}
}

// release drops the cached mappings of one file instance (backend replay of
// the file's release).
func (mc *mapCache) release(fileID uint16) {
	for _, kind := range []grant.Kind{grant.KindCopyTo, grant.KindCopyFrom} {
		key := mapKey{fileID: fileID, kind: kind}
		if m := mc.entries[key]; m != nil {
			mc.Invalidations++
			trace.Get(mc.b.hv.Env).Add("cvd.mapcache.invalidations", 1)
			m.Unmap()
			delete(mc.entries, key)
		}
	}
}

// dropAll tears down every cached mapping — backend teardown (Stop, die):
// the driver VM is going away, and its EPT must not keep windows into guest
// buffers it no longer has any business reaching.
func (mc *mapCache) dropAll() {
	for _, key := range mc.sortedKeys() {
		if m := mc.entries[key]; m != nil {
			m.Unmap()
			delete(mc.entries, key)
		}
	}
}

// sortedKeys returns the cache keys in a deterministic order, so teardown
// charges and trace spans are reproducible run to run.
func (mc *mapCache) sortedKeys() []mapKey {
	keys := make([]mapKey, 0, len(mc.entries))
	for k := range mc.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].fileID != keys[j].fileID {
			return keys[i].fileID < keys[j].fileID
		}
		return keys[i].kind < keys[j].kind
	})
	return keys
}
