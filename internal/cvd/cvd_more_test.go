package cvd

import (
	"testing"

	"paradice/internal/devfile"
	"paradice/internal/kernel"
	"paradice/internal/sim"
)

// The polling window: a backend that just finished an operation spins for
// 200 µs; operations arriving inside the window take the fast path,
// operations arriving after it pay the interrupt.
func TestPollingWindowExpiry(t *testing.T) {
	r := newRig(t, Polling, kernel.Linux)
	p, _ := r.guestK.NewProcess("app")
	var hotRT, coldRT sim.Duration
	p.SpawnTask("main", func(tk *kernel.Task) {
		fd, _ := tk.Open("/dev/testdev", devfile.ORdWr)
		// Warm up.
		if _, err := tk.Ioctl(fd, tdNoop, 0); err != nil {
			t.Error(err)
			return
		}
		// Hot: immediately after the previous op, inside the window.
		start := tk.Sim().Now()
		_, _ = tk.Ioctl(fd, tdNoop, 0)
		hotRT = tk.Sim().Now().Sub(start)
		// Cold: sleep past the 200 µs window first.
		tk.Sim().Sleep(300 * sim.Microsecond)
		start = tk.Sim().Now()
		_, _ = tk.Ioctl(fd, tdNoop, 0)
		coldRT = tk.Sim().Now().Sub(start)
	})
	r.env.Run()
	if hotRT > 5*sim.Microsecond {
		t.Fatalf("hot polled round trip = %v, want a few µs", hotRT)
	}
	if coldRT < 15*sim.Microsecond {
		t.Fatalf("cold round trip = %v; should pay the interrupt after the window", coldRT)
	}
}

// The notification gate (§5.1's foreground model): gated-off backends drop
// notifications instead of delivering them.
func TestNotifyGateDropsNotifications(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux)
	allowed := true
	r.be.SetNotifyGate(func() bool { return allowed })
	app, _ := r.guestK.NewProcess("app")
	sigios := 0
	app.OnSIGIO(func() { sigios++ })
	app.SpawnTask("main", func(tk *kernel.Task) {
		fd, _ := tk.Open("/dev/testdev", devfile.ORdOnly)
		_ = tk.SetFasync(fd, true)
	})
	write := func(delay sim.Duration) {
		w, _ := r.driverK.NewProcess("writer")
		w.SpawnTask("w", func(tk *kernel.Task) {
			tk.Sim().Sleep(delay)
			fd, _ := tk.Open("/dev/testdev", devfile.OWrOnly)
			src, _ := w.AllocBytes([]byte("x"))
			_, _ = tk.Write(fd, src, 1)
		})
	}
	write(100 * sim.Microsecond) // delivered
	r.env.At(sim.Time(200*sim.Microsecond), func() { allowed = false })
	write(300 * sim.Microsecond) // dropped
	r.env.Run()
	if sigios != 1 {
		t.Fatalf("SIGIOs = %d, want 1 (second gated off)", sigios)
	}
	if r.be.NotifsDropped != 1 {
		t.Fatalf("dropped = %d, want 1", r.be.NotifsDropped)
	}
}

// Concurrent operations from several guest processes on one channel: each
// gets its own slot and its own response.
func TestConcurrentOpsDistinctResponses(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux)
	app, _ := r.guestK.NewProcess("app")
	opened := r.env.NewEvent("opened")
	var fd int
	app.SpawnTask("opener", func(tk *kernel.Task) {
		fd, _ = tk.Open("/dev/testdev", devfile.ORdWr)
		// Preload data so reads return distinct prefixes.
		src, _ := app.AllocBytes([]byte("abcdefgh"))
		_, _ = tk.Write(fd, src, 8)
		opened.Trigger()
	})
	got := make([]byte, 4)
	for i := 0; i < 4; i++ {
		i := i
		app.SpawnTask("reader", func(tk *kernel.Task) {
			tk.Sim().Wait(opened)
			dst, _ := app.Alloc(1)
			n, err := tk.Read(fd, dst, 1)
			if err != nil || n != 1 {
				t.Errorf("reader %d: n=%d err=%v", i, n, err)
				return
			}
			b := make([]byte, 1)
			_ = app.Mem.Read(dst, b)
			got[i] = b[0]
		})
	}
	r.env.Run()
	seen := map[byte]bool{}
	for i, b := range got {
		if b == 0 {
			t.Fatalf("reader %d got nothing", i)
		}
		if seen[b] {
			t.Fatalf("byte %q delivered twice: responses crossed", b)
		}
		seen[b] = true
	}
}

// Backend statistics reflect the transport's behavior.
func TestBackendStats(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux)
	r.runApp(t, func(p *kernel.Process, tk *kernel.Task) {
		fd, _ := tk.Open("/dev/testdev", devfile.ORdWr)
		for i := 0; i < 5; i++ {
			_, _ = tk.Ioctl(fd, tdNoop, 0)
		}
	})
	if r.be.OpsHandled < 6 { // open + 5 noops
		t.Fatalf("ops handled = %d", r.be.OpsHandled)
	}
	if r.be.WakeIRQs == 0 {
		t.Fatal("interrupt mode never woke the dispatcher by IRQ")
	}
}

// A Paradice mmap under the FreeBSD guest without the kernel patch fails
// exactly as §5.1 predicts, and works with it.
func TestFreeBSDPatchGatesMmapThroughCVD(t *testing.T) {
	r := newRig(t, Interrupts, kernel.FreeBSD)
	r.runApp(t, func(p *kernel.Process, tk *kernel.Task) {
		fd, _ := tk.Open("/dev/testdev", devfile.ORdWr)
		r.guestK.SetFreeBSDMmapPatch(false)
		if _, err := tk.Mmap(fd, 4096, 0); !kernel.IsErrno(err, kernel.EINVAL) {
			t.Fatalf("unpatched guest mmap: %v", err)
		}
		r.guestK.SetFreeBSDMmapPatch(true)
		if _, err := tk.Mmap(fd, 4096, 0); err != nil {
			t.Fatalf("patched guest mmap: %v", err)
		}
	})
}
