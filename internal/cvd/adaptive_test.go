package cvd

// Tests for the adaptive transport: NAPI-style per-channel switching between
// interrupt and poll stance driven by the observed arrival rate, plus the
// multi-entry completion batching that rides the same knobs. The key safety
// property — an adaptive channel under sparse load is the EXACT interrupt
// path, bit-identical on the virtual clock — is asserted directly here and
// again by the dormant goldens in the bench package.

import (
	"testing"

	"paradice/internal/devfile"
	"paradice/internal/kernel"
	"paradice/internal/sim"
)

// A burst of concurrent requesters pushes the inter-arrival EWMA below the
// poll threshold: the channel flips to poll stance, posts start hitting the
// spinning backend IRQ-free, and after the load stops one sparse post flips
// it back to interrupts.
func TestAdaptiveSwitchesToPollUnderLoadAndBack(t *testing.T) {
	r := newRig(t, Adaptive, kernel.Linux)
	app, _ := r.guestK.NewProcess("app")
	opened := r.env.NewEvent("opened")
	var fd int
	app.SpawnTask("opener", func(tk *kernel.Task) {
		fd, _ = tk.Open("/dev/testdev", devfile.ORdWr)
		opened.Trigger()
	})
	const workers, opsEach = 8, 30
	for i := 0; i < workers; i++ {
		app.SpawnTask("worker", func(tk *kernel.Task) {
			tk.Sim().Wait(opened)
			for j := 0; j < opsEach; j++ {
				if _, err := tk.Ioctl(fd, tdNoop, 0); err != nil {
					t.Error(err)
					return
				}
			}
		})
	}
	r.env.Run()
	if !r.fe.stancePoll {
		t.Fatal("frontend never entered poll stance under 8-way closed-loop load")
	}
	if r.fe.ModeSwitches == 0 {
		t.Fatal("ModeSwitches = 0, want >= 1")
	}
	if r.be.PolledPosts == 0 {
		t.Fatal("no post was ever observed by the spinning backend: poll stance never engaged the polled path")
	}
	switchesUnderLoad := r.fe.ModeSwitches

	// One sparse post after a long idle gap: the capped gap yanks the EWMA
	// back above the threshold and the channel re-arms interrupts BEFORE
	// forwarding, so the op itself takes the interrupt path.
	app.SpawnTask("straggler", func(tk *kernel.Task) {
		tk.Sim().Sleep(5 * sim.Millisecond)
		if _, err := tk.Ioctl(fd, tdNoop, 0); err != nil {
			t.Error(err)
		}
	})
	r.env.Run()
	if r.fe.stancePoll {
		t.Fatal("frontend still in poll stance after a 5 ms idle gap")
	}
	if r.fe.ModeSwitches <= switchesUnderLoad {
		t.Fatalf("ModeSwitches = %d, want > %d (the idle gap must flip the stance back)",
			r.fe.ModeSwitches, switchesUnderLoad)
	}
}

// An adaptive channel under sparse load must be the interrupt path exactly:
// same virtual-clock timings, same IRQ counts, op for op. This is the
// dormancy guarantee that lets Adaptive be configured fleet-wide without
// perturbing latency-sensitive idle channels.
func TestAdaptiveQuiescentMatchesInterruptsExactly(t *testing.T) {
	run := func(mode Mode) (elapsed sim.Duration, doorbells, wakes uint64) {
		r := newRig(t, mode, kernel.Linux)
		var end sim.Time
		r.runApp(t, func(p *kernel.Process, tk *kernel.Task) {
			fd, _ := tk.Open("/dev/testdev", devfile.ORdWr)
			for i := 0; i < 20; i++ {
				tk.Sim().Sleep(200 * sim.Microsecond) // far above the poll threshold
				if _, err := tk.Ioctl(fd, tdNoop, 0); err != nil {
					t.Fatal(err)
				}
			}
			end = tk.Sim().Now()
		})
		return sim.Duration(end), r.fe.DoorbellIRQs, r.be.WakeIRQs
	}
	iElapsed, iDoorbells, iWakes := run(Interrupts)
	aElapsed, aDoorbells, aWakes := run(Adaptive)
	if aElapsed != iElapsed {
		t.Fatalf("quiescent adaptive elapsed %v, interrupts %v: must be bit-identical", aElapsed, iElapsed)
	}
	if aDoorbells != iDoorbells || aWakes != iWakes {
		t.Fatalf("IRQ counts diverge: adaptive %d/%d, interrupts %d/%d",
			aDoorbells, aWakes, iDoorbells, iWakes)
	}
}

// Completion batching: with BatchSize set, up to BatchSize completions share
// one response IRQ under the size+deadline policy, mirroring the submission
// side. Execution order is untouched — batching delays notification, never
// reorders work.
func TestCompletionBatchingSharesResponseIRQ(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux, func(c *Config) {
		c.CoalesceWindow = 50 * sim.Microsecond
		c.BatchSize = 8
	})
	app, _ := r.guestK.NewProcess("app")
	opened := r.env.NewEvent("opened")
	var fd int
	app.SpawnTask("opener", func(tk *kernel.Task) {
		fd, _ = tk.Open("/dev/testdev", devfile.OWrOnly)
		opened.Trigger()
	})
	const writers = 8
	for i := 0; i < writers; i++ {
		i := i
		app.SpawnTask("writer", func(tk *kernel.Task) {
			tk.Sim().Wait(opened)
			src, _ := app.AllocBytes([]byte{byte('A' + i)})
			if _, err := tk.Write(fd, src, 1); err != nil {
				t.Error(err)
			}
		})
	}
	r.env.Run()
	// The open's completion flushes alone at the deadline; the 8 writes'
	// completions hit the size trigger and share one more response IRQ.
	if r.be.RespFlushes != 2 {
		t.Fatalf("RespFlushes = %d, want 2 (open solo + one full write batch)", r.be.RespFlushes)
	}
	if string(r.drv.data) != "ABCDEFGH" {
		t.Fatalf("driver saw order %q, want ABCDEFGH", r.drv.data)
	}
	// Submission side batched too: the 8 posts shared one doorbell.
	if r.fe.DoorbellIRQs != 2 {
		t.Fatalf("DoorbellIRQs = %d, want 2", r.fe.DoorbellIRQs)
	}
}

// The watchdog heartbeat must bypass completion batching: supervision's
// detection latency cannot be inflated by a batch window.
func TestHeartbeatBypassesCompletionBatch(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux, func(c *Config) {
		c.CoalesceWindow = 500 * sim.Microsecond
		c.BatchSize = 32
	})
	ok := false
	r.env.Spawn("watchdog", func(p *sim.Proc) {
		ok = r.fe.Heartbeat(p, 200*sim.Microsecond)
	})
	r.env.RunUntil(sim.Time(sim.Millisecond))
	if !ok {
		t.Fatal("heartbeat missed its 200 µs budget under a 500 µs batch window: acks must bypass the batch")
	}
	if r.be.RespFlushes != 0 {
		t.Fatalf("RespFlushes = %d for a heartbeat-only run, want 0", r.be.RespFlushes)
	}
}
