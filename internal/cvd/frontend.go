package cvd

import (
	"fmt"
	"math/bits"

	"paradice/internal/devfile"
	"paradice/internal/faults"
	"paradice/internal/grant"
	"paradice/internal/hv"
	"paradice/internal/ioctlan"
	"paradice/internal/kernel"
	"paradice/internal/mem"
	"paradice/internal/perf"
	"paradice/internal/sim"
	"paradice/internal/trace"
)

// Frontend is the CVD frontend: it implements kernel.FileOps for a virtual
// device file in the guest, declaring each operation's legitimate memory
// operations in the guest's grant table and forwarding the operation through
// the shared ring page to the backend.
type Frontend struct {
	hv       *hv.Hypervisor
	guestVM  *hv.VM
	driverVM *hv.VM
	guestK   *kernel.Kernel
	mode     Mode
	window   sim.Duration
	ring     page
	grants   *grant.Table
	specs    map[devfile.IoctlCmd]*ioctlan.CmdSpec

	respEvents   [slotCount]*sim.Event
	nextFileID   uint16
	nextSeq      uint32
	ringGPA      mem.GuestPhys
	vecToBackend int
	vecResp      int
	vecNotif     int
	pollWQ       *kernel.WaitQueue
	fasyncFiles  []*kernel.File
	backend      *Backend

	// deadline bounds how long a forwarded operation may wait for its
	// response (0 = forever, the pre-supervision behavior). A request that
	// outlives it fails with ETIMEDOUT and its slot is abandoned — reclaimed
	// when a late response eventually lands or a Reconnect sweeps the ring.
	deadline sim.Duration
	// abandoned marks slots whose issuer timed out and left; the backend
	// may still be executing them, so they are not freed until the response
	// (or a Reconnect) arrives.
	abandoned [slotCount]bool
	// degraded fails every operation fast with ENODEV: the supervisor
	// exhausted its restart budget on this device and gave up (§8 recovery's
	// terminal state). Cleared by a successful driver-VM restart.
	degraded bool

	// Drain mode (planned driver-VM handover). While draining, in-flight
	// slots complete on the current backend but NEW posts park at the
	// frontend — queued on drainEvent, bounded by drainBound — instead of
	// entering the ring or failing EREMOTE. EndDrain releases every parked
	// post against whichever backend then owns the ring: the successor after
	// a completed switch, the still-live predecessor after an abort. Either
	// way nothing is lost. The draining flag is frontend-local (trusted);
	// the hdrDrain header word mirrors it only as the cross-VM-visible
	// signal, so hostile ring bytes cannot park or unpark anyone.
	draining   bool
	drainEvent *sim.Event
	drainBound sim.Duration

	// Bulk-transfer fast path (grant-map cache). When enabled, read/write
	// data buffers of at least mapThreshold bytes get a long-lived bulk
	// grant (one per file and direction) kept alive across requests, and the
	// requests carry reqFlagMapHint so the backend serves them through its
	// grant-map cache. bulk tracks the live bulk grants; they are revoked
	// when the buffer changes and when the file is released — each
	// revocation tears down the backend's cached mapping in the same
	// instant (grant.Table.OnRevoke).
	mapCache     bool
	mapThreshold int
	bulk         map[bulkKey]bulkGrant

	// Doorbell batching. With coalesce > 0 (interrupt-stance posts only),
	// posts accumulate in a pending set sharing one inter-VM IRQ, flushed by
	// a size+deadline policy: the first pending post arms a flush timer for
	// the coalesce window (the deadline), and reaching batchSize posts
	// flushes immediately. The flush publishes a submission batch descriptor
	// (hdrSubCount + hdrSubBits) and rings once, attributed to the oldest
	// still-posted member's CURRENT rid — never to a RID whose slot was
	// reclaimed and reposted inside the window. flushGen invalidates an
	// armed deadline timer once a size-triggered flush has already run.
	// The polling path never comes through here.
	coalesce   sim.Duration
	batchSize  int
	pending    []int
	pendingRID [slotCount]uint64
	inPending  [slotCount]bool
	flushGen   uint64

	// Adaptive transport (Mode == Adaptive): NAPI-style stance switching
	// driven by the observed arrival rate on the virtual clock. arrAvg is an
	// integer EWMA of inter-post gaps; when it drops below
	// perf.AdaptivePollGap the channel enters poll stance (requesters spin
	// for completions and posts kick directly, as in static Polling), and
	// when arrivals thin out it re-arms interrupts. The stance is mirrored
	// into the hdrMode ring word for cross-VM observability; the mirror is
	// advisory and never read back.
	stancePoll bool
	arrAvg     sim.Duration
	lastPost   sim.Time

	// Batched grant hypercalls (Config.GrantBatch). When set, declare prices
	// a multi-entry grant set as ONE hypervisor crossing — CostGrantDeclare
	// for the first entry plus CostGrantEntry per further entry — instead of
	// CostGrantDeclare per entry, and the hypervisor's grant-validation
	// cache is primed by the declaration (grant.Table.OnDeclare) so backend
	// memory operations validate against the cached vector.
	grantBatch bool

	// QoS admission control (Config.Admission). admission maps a task's
	// QoS class to the ring occupancy at which that class stops being
	// admitted: a request whose class has a limit configured is refused
	// with EAGAIN — before claiming a slot — once the ring already holds
	// that many in-flight requests. Classes without an entry are admitted
	// until the ring itself is full (EBUSY). This is the backpressure that
	// keeps low-priority open-loop load from starving latency-critical
	// classes of the 100 shared slots. admitNames are the per-class trace
	// counter names, precomputed so the hot path never builds strings.
	admission  map[uint8]int
	admitNames map[uint8]string

	// Heartbeat state (driver-VM supervision): hbSeq is the last posted
	// heartbeat sequence, hbEvent fires when the backend's ack for it is
	// observed by the response ISR.
	hbSeq   uint32
	hbEvent *sim.Event

	// Stats for tests and benches.
	RoundTrips     uint64
	Rejected       uint64 // posts rejected because the queue was full
	Throttled      uint64 // posts refused by QoS admission control (EAGAIN)
	TimedOut       uint64 // requests failed by the per-request deadline
	FastFailed     uint64 // requests refused outright (dead backend / degraded)
	DoorbellIRQs   uint64 // doorbell inter-VM IRQs actually sent
	CoalescedKicks uint64 // posts that shared a flushed doorbell (batch size - 1 per flush)
	QueuedPosts    uint64 // posts parked at the frontend during a drain
	BatchFlushes   uint64 // doorbell flushes sent (each covers >= 1 posted slots)
	ModeSwitches   uint64 // adaptive stance flips, either direction

	// SpinTime accumulates the virtual time requesters spent busy-polling
	// for completions — the CPU cost of poll stance the latency numbers
	// alone cannot show. The adaptive bench gates on it at low load.
	SpinTime sim.Duration

	// path is the guest-visible device path; vm the guest kernel's name.
	// m holds the per-path metric names, precomputed at Connect so the hot
	// path never builds strings. qdepthHigh is the high-water ring
	// occupancy, mirrored into the qdepth.max gauge.
	path       string
	vm         string
	m          feMetricNames
	qdepthHigh int
}

// feMetricNames are the frontend's per-channel metric names, built once at
// Connect time (tracing must cost nothing but a map lookup when off, and no
// string concatenation when on). Names are keyed "cvd.<path>@<vm>" — the
// guest VM qualifier keeps multi-guest dumps per-guest attributable: two
// guests paravirtualizing the same device path must not fold their counters
// into one series.
type feMetricNames struct {
	ops, bytes, rejected, throttled, timedOut, fastFailed string
	queued, lat, qdepth, qdepthMax                        string
	errTimedOut, errNoDev, errRemote, errBusy, errAgain   string
}

func newFeMetricNames(vm, path string) feMetricNames {
	p := "cvd." + path + "@" + vm
	return feMetricNames{
		ops:         p + ".ops",
		bytes:       p + ".bytes",
		rejected:    p + ".rejected",
		throttled:   p + ".throttled",
		timedOut:    p + ".timedout",
		fastFailed:  p + ".fastfailed",
		queued:      p + ".queued",
		lat:         p + ".roundtrip",
		qdepth:      p + ".qdepth",
		qdepthMax:   p + ".qdepth.max",
		errTimedOut: p + ".errno.ETIMEDOUT",
		errNoDev:    p + ".errno.ENODEV",
		errRemote:   p + ".errno.EREMOTE",
		errBusy:     p + ".errno.EBUSY",
		errAgain:    p + ".errno.EAGAIN",
	}
}

var _ kernel.FileOps = (*Frontend)(nil)

// vmaState is the frontend's per-mapping bookkeeping: the long-lived map
// grant (faults arrive after the mmap call returns) and the backend file
// instance.
type vmaState struct {
	ref    uint32
	fileID uint16
}

func devfileFlags(v uint64) devfile.OpenFlags { return devfile.OpenFlags(v) }
func devfileCmd(v uint64) devfile.IoctlCmd    { return devfile.IoctlCmd(v) }

func (fe *Frontend) fileID(c *kernel.FopCtx) uint16 {
	id, _ := c.File.Priv.(uint16)
	return id
}

// kickBackend makes the backend notice a newly posted slot: a shared-page
// observation if it is spinning, an inter-VM interrupt otherwise. rid labels
// the crossing's trace span (0 for heartbeats and other unattributed kicks).
func (fe *Frontend) kickBackend(rid uint64) {
	if fe.ring.readU32(hdrBackendPoll) == 1 {
		fe.backend.PolledPosts++
		if tr := trace.Get(fe.hv.Env); tr != nil {
			now := tr.Now()
			tr.Span(rid, fe.driverVM.Name, trace.LayerIRQ, "poll-cross", now, now.Add(perf.CostPollCross))
		}
		fe.hv.Env.After(perf.CostPollCross, fe.backend.doorbell.Trigger)
		return
	}
	fe.DoorbellIRQs++
	fe.hv.SendInterrupt(fe.driverVM, fe.vecToBackend)
}

// postDoorbell notifies the backend of a newly posted request slot. With
// batching configured (coalesce > 0) and the channel in interrupt stance,
// the slot joins the pending set instead of kicking: the first member arms
// a flush timer for the coalesce deadline, reaching batchSize flushes at
// once, and the whole set shares the single inter-VM IRQ the flush sends
// (one CostInterVMIRQ for the batch). The polling path is untouched — a
// spinning backend observes the page directly, IRQ-free — and watchdog
// heartbeats call kickBackend directly so detection latency is never
// inflated by the batching window.
func (fe *Frontend) postDoorbell(rid uint64, slot int) {
	if fe.coalesce <= 0 || fe.mode == Polling || (fe.mode == Adaptive && fe.stancePoll) {
		fe.kickBackend(rid)
		return
	}
	if fe.inPending[slot] {
		// The slot was reclaimed and reposted inside the window (a timed-out
		// request swept by a late response, then the slot reused). The
		// pending set already covers the slot, but the flush must attribute
		// its kick to the CURRENT occupant — not to the RID that armed the
		// timer and has since failed out.
		fe.pendingRID[slot] = rid
		return
	}
	fe.pendingRID[slot] = rid
	fe.inPending[slot] = true
	fe.pending = append(fe.pending, slot)
	if fe.batchSize > 0 && len(fe.pending) >= fe.batchSize {
		// Size trigger: the batch is full, flush now. Bumping flushGen (done
		// inside flushPending) invalidates the armed deadline timer.
		fe.flushPending(fe.backend)
		return
	}
	if len(fe.pending) == 1 {
		// Deadline trigger: the first pending post arms the flush timer.
		be := fe.backend
		gen := fe.flushGen
		fe.hv.Env.After(fe.coalesce, func() {
			if fe.flushGen != gen {
				return // a size-triggered flush already covered this window
			}
			fe.flushPending(be)
		})
	}
}

// flushPending sends the one doorbell covering the current pending set. The
// set is re-validated at flush time: only slots still posted are counted and
// published in the submission descriptor, and the kick is attributed to the
// oldest still-posted member's current rid. A flush whose backend died, was
// superseded (restart epoch moved on), or whose pending set has entirely
// retired inside the window rings nothing — it no longer owns a doorbell, or
// has nothing to announce, and must not scribble descriptor words a
// successor now owns.
func (fe *Frontend) flushPending(be *Backend) {
	fe.flushGen++
	pending := fe.pending
	fe.pending = fe.pending[:0]
	for _, s := range pending {
		fe.inPending[s] = false
	}
	if fe.backend != be || be == nil || !be.ringCurrent() {
		// The channel reconnected, handed over, or its backend died inside
		// the window: the reconnect sweep has already failed everything that
		// was posted, and the flush must not ring a doorbell it no longer
		// owns. (During a drain the predecessor still owns the ring and its
		// in-flight posts — a flush then proceeds, or the quiesce would
		// never see the ring empty.)
		return
	}
	posted := 0
	var firstRID uint64
	for _, s := range pending {
		if fe.ring.slotState(s) != slotPosted {
			continue // retired (or picked up) inside the window; nothing to announce
		}
		if posted == 0 {
			firstRID = fe.pendingRID[s]
		}
		fe.ring.setBitmapBit(hdrSubBits, s)
		posted++
	}
	if posted == 0 {
		return
	}
	fe.ring.writeU32(hdrSubCount, fe.ring.readU32(hdrSubCount)+uint32(posted))
	fe.BatchFlushes++
	if posted > 1 {
		// Per-flush accounting: every member beyond the one that pays for
		// the kick shared the IRQ. Counted here — not per-post — so the
		// stat agrees with what the flush actually sent.
		fe.CoalescedKicks += uint64(posted - 1)
		trace.Get(fe.hv.Env).Add("cvd.doorbell.coalesced", uint64(posted-1))
	}
	tr := trace.Get(fe.hv.Env)
	tr.Add("cvd.doorbell.flushes", 1)
	tr.ObserveCount("cvd.doorbell.batch", uint64(posted))
	fe.kickBackend(firstRID)
}

// scanDone fires the response event of every slot named by the ring's
// completion descriptor (hdrDoneCount + hdrDoneBits) — O(batch), not
// O(slotCount). It runs from the response ISR (interrupt mode) or as the
// spinning requester's page observation (polling mode). The descriptor words
// cross the VM boundary and are untrusted: every bit is validated against
// the actual slot state, so hostile counts or stray bits degrade to a no-op
// (and, for the issuer, an honest deadline), never a panic or a false
// completion. Completion bits persist in the ring until consumed, so a
// dropped response IRQ is recovered by the next scan exactly as the full
// sweep recovered it. Slots whose issuer timed out and left are reclaimed
// here — the late response is discarded, never delivered.
func (fe *Frontend) scanDone() {
	if fe.ring.readU32(hdrDoneCount) != 0 {
		fe.ring.writeU32(hdrDoneCount, 0)
	}
	words := fe.ring.takeBitmap(hdrDoneBits)
	for w, word := range words {
		for word != 0 {
			b := bits.TrailingZeros32(word)
			word &^= 1 << uint(b)
			s := w*32 + b
			if s >= slotCount || fe.ring.slotState(s) != slotDone {
				continue // hostile or stale bit: no completed slot behind it
			}
			if fe.abandoned[s] {
				fe.abandoned[s] = false
				fe.ring.recycleSlot(s)
				continue
			}
			fe.respEvents[s].Trigger()
		}
	}
	if fe.hbEvent != nil && fe.ring.readU32(hdrHbAck) == fe.hbSeq {
		fe.hbEvent.Trigger()
	}
}

// handleNotifs dispatches backend notifications: poll wake-ups re-evaluate
// pending polls; SIGIO notifications deliver the signal to every guest
// process that armed fasync on this device (§5.1's asynchronous
// notification path).
func (fe *Frontend) handleNotifs() {
	bits := fe.ring.takeNotifs()
	if bits&notifPollWake != 0 {
		fe.pollWQ.Wake()
	}
	if bits&notifSIGIO != 0 {
		for _, f := range fe.fasyncFiles {
			if f.FasyncOn {
				f.Proc.DeliverSIGIO()
			}
		}
	}
}

// adaptiveGapCap clamps the inter-post gap fed to the adaptive EWMA: one
// long idle period must swing the stance to interrupts immediately-ish, but
// not so far that the first burst after it spends dozens of requests paying
// IRQ costs before the average recovers. 8x the threshold re-converges to
// poll stance within ~8 back-to-back posts.
const adaptiveGapCap = 8 * perf.AdaptivePollGap

// updateStance feeds one post arrival into the adaptive EWMA and flips the
// channel's stance when the average crosses perf.AdaptivePollGap: fast
// arrivals (average below the threshold — roughly, requests arriving more
// often than an IRQ round trip costs) enter poll stance; sparse arrivals
// re-arm interrupts, NAPI-style. Pure bookkeeping on the virtual clock — it
// never advances time, so Adaptive at steady state prices exactly like the
// static mode it is currently imitating.
func (fe *Frontend) updateStance() {
	if fe.mode != Adaptive {
		return
	}
	now := fe.hv.Env.Now()
	gap := now.Sub(fe.lastPost)
	fe.lastPost = now
	if gap > adaptiveGapCap || fe.arrAvg == 0 {
		gap = adaptiveGapCap
	}
	if fe.arrAvg == 0 {
		fe.arrAvg = gap // first post: start in interrupt stance
	} else {
		fe.arrAvg += (gap - fe.arrAvg) / 4
	}
	poll := fe.arrAvg < perf.AdaptivePollGap
	if poll == fe.stancePoll {
		return
	}
	fe.stancePoll = poll
	fe.ModeSwitches++
	var v uint32
	name := "mode-to-interrupts"
	if poll {
		v, name = 1, "mode-to-poll"
	}
	fe.ring.writeU32(hdrMode, v)
	tr := trace.Get(fe.hv.Env)
	tr.Add("cvd.adaptive.switches", 1)
	tr.Set("cvd.adaptive.stance", uint64(v))
	tr.Instant(0, fe.vm, trace.LayerFE, name, fe.path)
}

// pollNow reports whether this request should take the polled completion
// path: always in static Polling, and in Adaptive whenever the channel is
// currently in poll stance.
func (fe *Frontend) pollNow() bool {
	if fe.window <= 0 {
		return false
	}
	return fe.mode == Polling || (fe.mode == Adaptive && fe.stancePoll)
}

// slotClaimed reserves a slot between allocation and posting.
const slotClaimed = 4

func (fe *Frontend) allocSlot() (int, bool) {
	for s := 0; s < slotCount; s++ {
		if fe.ring.slotState(s) == slotFree {
			fe.ring.setSlotState(s, slotClaimed)
			return s, true
		}
	}
	return 0, false
}

// roundTrip forwards one file operation and waits for its response.
//
// Fast-fail paths (driver-VM supervision): a degraded device refuses
// everything with ENODEV; a dead backend (post-Stop, pre-Reconnect) refuses
// with EREMOTE instead of enqueueing onto a ring nobody will drain. With a
// per-request deadline configured, a request the backend never answers fails
// with ETIMEDOUT and its slot is abandoned rather than leaking the issuer.
func (fe *Frontend) roundTrip(c *kernel.FopCtx, r request) (int32, kernel.Errno) {
	t := c.Task
	tr := trace.Get(fe.guestK.Env)
	rid := c.RID
	start := tr.Now()
	tr.Add(fe.m.ops, 1)
	// Flight-recorder annotations: the class as soon as the request is
	// seen, the outcome on every return path. A disarmed (nil) recorder
	// no-ops throughout.
	fl := tr.Flight()
	fl.Note(rid, t.QoS)
	parked := false
	if fe.draining {
		// Planned handover in progress: park the post at the frontend until
		// the switch completes (or the drain aborts back to the predecessor),
		// then fall through to the normal path against whichever backend owns
		// the ring by then. This is the zero-loss alternative to EREMOTE, so
		// the park comes BEFORE the dead-backend check: a post arriving in
		// the switch window must see the successor, not the torn-down
		// predecessor. The wait is bounded in case an EndDrain is lost to a
		// bug — never in a healthy handover, where EndDrain runs on every
		// exit path.
		parked = true
		fe.QueuedPosts++
		tr.Add(fe.m.queued, 1)
		bound := fe.drainBound
		if bound <= 0 {
			bound = DefaultDrainBound
		}
		t.Sim().WaitTimeout(fe.drainEvent, bound)
	}
	if fe.degraded {
		fe.FastFailed++
		tr.Add(fe.m.fastFailed, 1)
		tr.Add(fe.m.errNoDev, 1)
		fl.Outcome(rid, int32(kernel.ENODEV), false)
		return -1, kernel.ENODEV
	}
	if fe.backend == nil || fe.backend.stopped {
		fe.FastFailed++
		tr.Add(fe.m.fastFailed, 1)
		tr.Add(fe.m.errRemote, 1)
		fl.Outcome(rid, int32(kernel.EREMOTE), false)
		return -1, kernel.EREMOTE
	}
	if lim, limited := fe.admission[t.QoS]; limited && !parked &&
		r.op != opOpen && r.op != opRelease && fe.Occupancy() >= lim {
		// Admission control: this QoS class is not allowed to deepen the
		// queue past its occupancy limit. EAGAIN tells an open-loop client
		// to shed the request rather than pile onto a saturated ring.
		// Lifecycle operations (open/release) are exempt — shedding a
		// release would leak the backend file, and neither adds load worth
		// shedding.
		fe.Throttled++
		tr.Add(fe.m.throttled, 1)
		tr.Add(fe.admitNames[t.QoS], 1)
		tr.Add(fe.m.errAgain, 1)
		fl.Outcome(rid, int32(kernel.EAGAIN), true)
		return -1, kernel.EAGAIN
	}
	slot, ok := fe.allocSlot()
	if !ok && parked {
		// A replayed burst of parked posts can momentarily exceed the ring's
		// 100 slots. A parked post was promised zero loss, so it retries for
		// a bounded while instead of turning the planned handover into EBUSY
		// for its issuer; the burst drains at the device's service rate. The
		// unparked path below is untouched (the §5.1 DoS cap).
		for i := 0; i < drainRetrySlots && !ok; i++ {
			t.Sim().Sleep(drainRetryGap)
			slot, ok = fe.allocSlot()
		}
	}
	if !ok {
		// All 100 queue slots in use: the DoS cap of §5.1.
		fe.Rejected++
		tr.Add(fe.m.rejected, 1)
		tr.Add(fe.m.errBusy, 1)
		fl.Outcome(rid, int32(kernel.EBUSY), true)
		return -1, kernel.EBUSY
	}
	// Queue-depth gauges: the depth after this claim, and its high-water
	// mark. The scan is O(slotCount) but only runs under an installed
	// tracer — the uninstrumented hot path is untouched.
	if tr != nil {
		occ := fe.Occupancy()
		if occ > fe.qdepthHigh {
			fe.qdepthHigh = occ
			tr.Set(fe.m.qdepthMax, uint64(occ))
		}
		tr.Set(fe.m.qdepth, uint64(occ))
	}
	r.slot = slot
	r.seq = fe.nextSeq
	r.rid = uint32(rid)
	fe.nextSeq++
	ev := fe.respEvents[slot]
	ev.Reset()
	t.Sim().Advance(perf.CostPost)
	tr.Span(rid, fe.vm, trace.LayerFE, "post", start, tr.Now())
	fe.updateStance()
	fe.ring.writeRequest(slot, r)
	fe.postDoorbell(rid, slot)
	answered := true
	if fe.pollNow() {
		// The polled wait is bounded by the request deadline, not just the
		// window: previously a doomed request spun the whole window with
		// hdrFrontendPoll raised and only then started the deadline clock,
		// overshooting the deadline by the window. Bounding the spin keeps
		// the deadline exact — and the counter is decremented on BOTH exits
		// of the spin, before any of the timeout returns below, so an
		// abandoned (ETIMEDOUT) request can never leave the backend
		// believing a frontend is still spinning.
		spin := fe.window
		if fe.deadline > 0 && fe.deadline < spin {
			spin = fe.deadline
		}
		fe.ring.writeU32(hdrFrontendPoll, fe.ring.readU32(hdrFrontendPoll)+1)
		spinStart := fe.hv.Env.Now()
		woken := t.Sim().WaitTimeout(ev, spin)
		fe.SpinTime += fe.hv.Env.Now().Sub(spinStart)
		fe.ring.writeU32(hdrFrontendPoll, fe.ring.readU32(hdrFrontendPoll)-1)
		if !woken {
			switch {
			case fe.deadline == 0:
				t.Sim().Wait(ev)
			case spin >= fe.deadline:
				// The spin consumed the whole deadline budget.
				answered = false
			default:
				answered = t.Sim().WaitTimeout(ev, fe.deadline-spin)
			}
		}
	} else {
		answered = fe.waitResponse(t, ev)
	}
	if !answered && fe.ring.slotState(slot) != slotDone {
		// Deadline expired with no response. The backend may still be
		// executing the operation, so the slot cannot be freed; mark it
		// abandoned and let scanDone (or a Reconnect sweep) reclaim it.
		fe.abandoned[slot] = true
		fe.TimedOut++
		tr.Add(fe.m.timedOut, 1)
		tr.Add(fe.m.errTimedOut, 1)
		fl.Outcome(rid, int32(kernel.ETIMEDOUT), false)
		return -1, kernel.ETIMEDOUT
	}
	cstart := tr.Now()
	t.Sim().Advance(perf.CostComplete)
	tr.Span(rid, fe.vm, trace.LayerFE, "complete", cstart, tr.Now())
	ret, errno := fe.ring.readResponse(slot)
	fe.ring.recycleSlot(slot)
	fe.RoundTrips++
	tr.Observe(fe.m.lat, tr.Now().Sub(start))
	fl.Outcome(rid, int32(errno), false)
	if (r.op == opRead || r.op == opWrite) && errno == 0 && ret > 0 {
		tr.Add(fe.m.bytes, uint64(ret))
	}
	return ret, kernel.Errno(errno)
}

// waitResponse blocks until the slot's response event fires, bounded by the
// per-request deadline when one is configured. Reports whether the event
// fired (a completed slot whose interrupt was lost still counts as answered
// via the caller's direct slot-state check).
func (fe *Frontend) waitResponse(t *kernel.Task, ev *sim.Event) bool {
	if fe.deadline > 0 {
		return t.Sim().WaitTimeout(ev, fe.deadline)
	}
	t.Sim().Wait(ev)
	return true
}

// SetDeadline installs the per-request deadline for subsequent operations
// (0 disables). Supervision enables this so a request stuck behind a dead
// driver VM times out with ETIMEDOUT instead of blocking its issuer forever.
func (fe *Frontend) SetDeadline(d sim.Duration) { fe.deadline = d }

// SetAdmission installs per-QoS-class admission limits: a request from a
// class present in the map is refused with EAGAIN when the ring already
// holds limit in-flight requests. Classes absent from the map are admitted
// until the ring is full. nil (or empty) disables admission control.
func (fe *Frontend) SetAdmission(limits map[uint8]int) {
	if len(limits) == 0 {
		fe.admission, fe.admitNames = nil, nil
		return
	}
	fe.admission = make(map[uint8]int, len(limits))
	fe.admitNames = make(map[uint8]string, len(limits))
	for cls, lim := range limits {
		fe.admission[cls] = lim
		fe.admitNames[cls] = fmt.Sprintf("cvd.%s@%s.eagain.class%d", fe.path, fe.vm, cls)
	}
}

// Occupancy returns the number of ring slots currently in flight (claimed,
// posted, running, or completed-but-uncollected) — the queue depth the
// admission limits are compared against.
func (fe *Frontend) Occupancy() int {
	n := 0
	for s := 0; s < slotCount; s++ {
		if fe.ring.slotState(s) != slotFree {
			n++
		}
	}
	return n
}

// Drain-mode constants: the defensive bound on a parked post's wait (the
// handover engine always EndDrains far sooner), and the polite retry loop a
// parked post runs when the replay burst momentarily fills the ring.
const (
	// DefaultDrainBound caps a parked post's wait when BeginDrain was given
	// no bound. Generous: it only matters if an EndDrain is lost to a bug.
	DefaultDrainBound = 250 * sim.Millisecond
	drainRetrySlots   = 400
	drainRetryGap     = 5 * sim.Microsecond
)

// BeginDrain enters drain mode for a planned handover: in-flight slots keep
// completing on the current backend, while new posts park at the frontend
// (bounded by bound; <=0 selects DefaultDrainBound) until EndDrain. The
// hdrDrain ring word is raised as the cross-VM-visible signal; behavior is
// driven by the frontend-local flag, so hostile ring bytes are inert.
func (fe *Frontend) BeginDrain(bound sim.Duration) {
	fe.draining = true
	fe.drainBound = bound
	fe.drainEvent.Reset()
	fe.ring.writeU32(hdrDrain, 1)
}

// EndDrain leaves drain mode and releases every parked post. Runs on every
// exit of a handover — after the switch commits (parked posts replay against
// the successor) and after an abort (they proceed against the still-live
// predecessor).
func (fe *Frontend) EndDrain() {
	fe.draining = false
	fe.ring.writeU32(hdrDrain, 0)
	fe.drainEvent.Trigger()
}

// Draining reports whether the frontend is parking new posts.
func (fe *Frontend) Draining() bool { return fe.draining }

// SetDegraded enters or leaves degraded mode: every subsequent operation
// fails immediately with ENODEV. The supervisor degrades a device when its
// restart budget is exhausted; a later successful driver-VM restart clears
// the flag.
func (fe *Frontend) SetDegraded(on bool) { fe.degraded = on }

// Degraded reports whether the device is in degraded (fail-fast) mode.
func (fe *Frontend) Degraded() bool { return fe.degraded }

// Heartbeat posts one watchdog heartbeat — a cheap ring no-op that consumes
// no request slot — and waits up to timeout for the backend to echo it.
// It runs on the supervisor's own sim proc, not a guest task. Returns false
// on a dead backend, a swallowed ack, or an ack later than the timeout.
func (fe *Frontend) Heartbeat(p *sim.Proc, timeout sim.Duration) bool {
	if fe.backend == nil || fe.backend.stopped {
		return false
	}
	perf.Charge(fe.hv.Env, perf.CostWatchdogPing)
	fe.hbSeq++
	fe.ring.writeU32(hdrHbReq, fe.hbSeq)
	fe.hbEvent.Reset()
	fe.kickBackend(0)
	if fe.ring.readU32(hdrHbAck) == fe.hbSeq {
		return true
	}
	p.WaitTimeout(fe.hbEvent, timeout)
	return fe.ring.readU32(hdrHbAck) == fe.hbSeq
}

// declare writes a grant set for the issuing process and charges the
// declaration cost. Empty op lists yield reference 0 (no grant).
//
// Unbatched (the paper's behavior), each entry is its own hypervisor
// crossing: len(ops)·CostGrantDeclare. With Config.GrantBatch the whole
// vector goes in one crossing — CostGrantDeclare plus CostGrantEntry per
// further entry — and the hypervisor caches the vector for validation
// (grant.Table.OnDeclare). A single-entry batched declare costs exactly the
// unbatched amount. The cvd.fe.grant.crossings counter records actual
// crossings so the walkcache experiment can show an 8-entry declare
// dropping from 8 crossings to 1.
func (fe *Frontend) declare(c *kernel.FopCtx, ops []grant.Op) (uint32, error) {
	if len(ops) == 0 {
		return 0, nil
	}
	if d := faults.Point(fe.guestK.Env, "grant.declare"); d != nil {
		// Injected fault: the declaration fails as if the table page were
		// full; callers surface ENOMEM to the application.
		return 0, d.Error()
	}
	tr := trace.Get(fe.guestK.Env)
	start := tr.Now()
	if fe.grantBatch {
		perf.Charge(fe.guestK.Env, perf.CostGrantDeclare+sim.Duration(len(ops)-1)*perf.CostGrantEntry)
		tr.Add("cvd.fe.grant.crossings", 1)
	} else {
		perf.Charge(fe.guestK.Env, sim.Duration(len(ops))*perf.CostGrantDeclare)
		tr.Add("cvd.fe.grant.crossings", uint64(len(ops)))
	}
	tr.Span(c.RID, fe.vm, trace.LayerFE, "grant-declare", start, tr.Now())
	return fe.grants.Declare(c.Task.Proc.PT.Root(), ops)
}

// bulkKey identifies one bulk grant: a file's read buffer and write buffer
// are tracked independently.
type bulkKey struct {
	fileID uint16
	kind   grant.Kind
}

// bulkGrant is one live long-lived data-buffer grant backing the map cache.
type bulkGrant struct {
	va  mem.GuestVirt
	n   uint64
	ref uint32
}

// dataRef produces the grant reference for one read/write data buffer.
//
// Slow path (map cache off, or the transfer is under the threshold): declare
// a one-shot grant; the caller revokes it when the operation returns, and the
// backend moves the data with a hypervisor-assisted copy.
//
// Fast path: reuse (or declare) a bulk grant kept alive across requests and
// mark the request with reqFlagMapHint, so the backend's grant-map cache can
// amortize one cross-VM mapping over every request touching the buffer. A
// changed buffer revokes the old bulk grant first — which also tears down the
// backend's cached mapping, via grant.Table.OnRevoke, in the same instant.
func (fe *Frontend) dataRef(c *kernel.FopCtx, fileID uint16, kind grant.Kind,
	va mem.GuestVirt, n int) (ref uint32, flags uint8, oneshot bool, err error) {
	if !fe.mapCache || n < fe.mapThreshold {
		ref, err = fe.declare(c, []grant.Op{{Kind: kind, VA: va, Len: uint64(n)}})
		return ref, 0, true, err
	}
	key := bulkKey{fileID: fileID, kind: kind}
	if bg, ok := fe.bulk[key]; ok {
		if va >= bg.va && uint64(va)+uint64(n) <= uint64(bg.va)+bg.n {
			// The buffer (or a sub-range of it) is already granted: nothing
			// to declare, nothing to validate per-request — that is the
			// frontend half of the amortization.
			return bg.ref, reqFlagMapHint, false, nil
		}
		delete(fe.bulk, key)
		fe.grants.Revoke(bg.ref)
	}
	ref, err = fe.declare(c, []grant.Op{{Kind: kind, VA: va, Len: uint64(n)}})
	if err != nil || ref == 0 {
		return ref, 0, true, err
	}
	fe.bulk[key] = bulkGrant{va: va, n: uint64(n), ref: ref}
	return ref, reqFlagMapHint, false, nil
}

// dropBulk revokes the file's bulk grants (file release). Each revocation
// invalidates the backend's cached mapping through the grant table's
// OnRevoke subscription.
func (fe *Frontend) dropBulk(fileID uint16) {
	for _, kind := range []grant.Kind{grant.KindCopyTo, grant.KindCopyFrom} {
		key := bulkKey{fileID: fileID, kind: kind}
		if bg, ok := fe.bulk[key]; ok {
			delete(fe.bulk, key)
			fe.grants.Revoke(bg.ref)
		}
	}
}

func errOr[T any](v T, e kernel.Errno) (T, error) {
	if e != 0 {
		return v, e
	}
	return v, nil
}

// Open implements kernel.FileOps.
func (fe *Frontend) Open(c *kernel.FopCtx) error {
	id := fe.nextFileID
	fe.nextFileID++
	_, errno := fe.roundTrip(c, request{op: opOpen, fileID: id, arg0: uint64(c.File.Flags)})
	if errno != 0 {
		return errno
	}
	c.File.Priv = id
	return nil
}

// Release implements kernel.FileOps.
func (fe *Frontend) Release(c *kernel.FopCtx) error {
	id := fe.fileID(c)
	for i, f := range fe.fasyncFiles {
		if f == c.File {
			fe.fasyncFiles = append(fe.fasyncFiles[:i], fe.fasyncFiles[i+1:]...)
			break
		}
	}
	_, errno := fe.roundTrip(c, request{op: opRelease, fileID: id})
	// The file's bulk grants die with it, whether or not the release made it
	// across; revoking them tears down the backend's cached mappings.
	fe.dropBulk(id)
	return errOrNil(errno)
}

func errOrNil(e kernel.Errno) error {
	if e != 0 {
		return e
	}
	return nil
}

// Read implements kernel.FileOps: the read arguments directly identify the
// one legitimate memory operation (§4.1).
func (fe *Frontend) Read(c *kernel.FopCtx, dst mem.GuestVirt, n int) (int, error) {
	var ref uint32
	var flags uint8
	id := fe.fileID(c)
	if n > 0 {
		var oneshot bool
		var err error
		ref, flags, oneshot, err = fe.dataRef(c, id, grant.KindCopyTo, dst, n)
		if err != nil {
			return 0, kernel.ENOMEM
		}
		if oneshot && ref != 0 {
			defer fe.grants.Revoke(ref)
		}
	}
	ret, errno := fe.roundTrip(c, request{op: opRead, fileID: id, flags: flags, ref: ref, arg0: uint64(dst), arg1: uint64(n)})
	return errOr(int(ret), errno)
}

// Write implements kernel.FileOps.
func (fe *Frontend) Write(c *kernel.FopCtx, src mem.GuestVirt, n int) (int, error) {
	var ref uint32
	var flags uint8
	id := fe.fileID(c)
	if n > 0 {
		var oneshot bool
		var err error
		ref, flags, oneshot, err = fe.dataRef(c, id, grant.KindCopyFrom, src, n)
		if err != nil {
			return 0, kernel.ENOMEM
		}
		if oneshot && ref != 0 {
			defer fe.grants.Revoke(ref)
		}
	}
	ret, errno := fe.roundTrip(c, request{op: opWrite, fileID: id, flags: flags, ref: ref, arg0: uint64(src), arg1: uint64(n)})
	return errOr(int(ret), errno)
}

// userReader lets just-in-time slice execution read the issuing process's
// memory (§4.1: the frontend executes the extracted code at runtime).
type userReader struct{ c *kernel.FopCtx }

func (r userReader) ReadUser(va mem.GuestVirt, buf []byte) error {
	return r.c.Task.Proc.UserRead(r.c.Task, va, buf)
}

// Ioctl implements kernel.FileOps: memory operations come from the
// analyzer's command spec when one is registered (static entries, or
// just-in-time slice execution for nested copies), falling back to the
// command-number macros.
func (fe *Frontend) Ioctl(c *kernel.FopCtx, cmd devfile.IoctlCmd, arg mem.GuestVirt) (int32, error) {
	var ops []grant.Op
	if spec, ok := fe.specs[cmd]; ok {
		var err error
		ops, err = spec.Ops(uint64(arg), userReader{c})
		if err != nil {
			return -1, kernel.EFAULT
		}
	} else {
		ops = ioctlan.MacroOps(cmd, uint64(arg))
	}
	ref, err := fe.declare(c, ops)
	if err != nil {
		return -1, kernel.ENOMEM
	}
	if ref != 0 {
		defer fe.grants.Revoke(ref)
	}
	ret, errno := fe.roundTrip(c, request{op: opIoctl, fileID: fe.fileID(c), ref: ref, arg0: uint64(cmd), arg1: uint64(arg)})
	return errOr(ret, errno)
}

// Mmap implements kernel.FileOps: the frontend pre-creates all page-table
// levels except the last for the mapping range, declares a long-lived map
// grant covering it, and forwards the operation (§5.2).
func (fe *Frontend) Mmap(c *kernel.FopCtx, v *kernel.VMA) error {
	if v.Start == 0 {
		// The kernel did not pass the VA range (unpatched FreeBSD, §5.1);
		// the Linux driver behind the boundary cannot work without it.
		return kernel.EINVAL
	}
	for off := uint64(0); off < v.Len; off += mem.PageSize {
		if err := v.Proc.PT.EnsureIntermediates(v.Start + mem.GuestVirt(off)); err != nil {
			return kernel.ENOMEM
		}
	}
	ref, err := fe.declare(c, []grant.Op{{Kind: grant.KindMapPage, VA: v.Start, Len: v.Len}})
	if err != nil {
		return kernel.ENOMEM
	}
	id := fe.fileID(c)
	_, errno := fe.roundTrip(c, request{op: opMmap, fileID: id, ref: ref,
		arg0: uint64(v.Start), arg1: v.Len, arg2: v.Pgoff})
	if errno != 0 {
		fe.grants.Revoke(ref)
		return errno
	}
	v.Private = vmaState{ref: ref, fileID: id}
	v.OnUnmap = fe.onUnmap
	return nil
}

// onUnmap runs when the guest process unmaps: the guest kernel clears its
// own page-table leaves first, then the unmap is forwarded so the driver is
// informed and the hypervisor destroys the EPT entries; finally the map
// grant is revoked.
func (fe *Frontend) onUnmap(c *kernel.FopCtx, v *kernel.VMA) error {
	st, _ := v.Private.(vmaState)
	for off := uint64(0); off < v.Len; off += mem.PageSize {
		va := v.Start + mem.GuestVirt(off)
		if v.Proc.PT.Mapped(va) {
			if err := v.Proc.PT.Unmap(va); err != nil {
				return err
			}
		}
	}
	_, errno := fe.roundTrip(c, request{op: opMunmap, fileID: st.fileID, ref: st.ref, arg0: uint64(v.Start)})
	fe.grants.Revoke(st.ref)
	return errOrNil(errno)
}

// Fault implements kernel.FileOps: a page fault in a forwarded mapping is
// itself forwarded, under the mapping's long-lived grant.
func (fe *Frontend) Fault(c *kernel.FopCtx, v *kernel.VMA, va mem.GuestVirt) error {
	st, ok := v.Private.(vmaState)
	if !ok {
		return kernel.EFAULT
	}
	_, errno := fe.roundTrip(c, request{op: opFault, fileID: st.fileID, ref: st.ref,
		arg0: uint64(va), arg1: uint64(v.Start)})
	return errOrNil(errno)
}

// Poll implements kernel.FileOps: the mask query is forwarded; if nothing
// is ready the backend arms a poll-wake notification, which wakes the
// frontend's local wait queue and makes the guest kernel re-query.
func (fe *Frontend) Poll(c *kernel.FopCtx, pt *kernel.PollTable) devfile.PollMask {
	pt.Register(fe.pollWQ)
	want := pt.Want
	if want == 0 {
		want = devfile.PollIn | devfile.PollOut
	}
	ret, errno := fe.roundTrip(c, request{op: opPoll, fileID: fe.fileID(c), arg0: uint64(want)})
	if errno != 0 {
		return devfile.PollErr
	}
	return devfile.PollMask(ret)
}

// Fasync implements kernel.FileOps.
func (fe *Frontend) Fasync(c *kernel.FopCtx, on bool) error {
	var v uint64
	if on {
		v = 1
	}
	_, errno := fe.roundTrip(c, request{op: opFasync, fileID: fe.fileID(c), arg0: v})
	if errno != 0 {
		return errno
	}
	if on {
		fe.fasyncFiles = append(fe.fasyncFiles, c.File)
	}
	return nil
}
