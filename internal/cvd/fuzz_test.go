package cvd

// Fuzz targets for the CVD ring-parsing surface. The shared ring page is
// writable by the peer VM, so every word of it — header fields (post
// counter, poll flags, notification bits, heartbeat sequences, restart
// epoch) and slot fields (state, op, flags, file id, grant ref, seq, args) —
// is hostile input. The contract under fuzz: arbitrary bytes NEVER panic the
// host code on either side; they surface as honest errnos (or as the
// scribbling guest wedging its own channel, which the grant table makes a
// self-inflicted wound, §4.1). The simulation is a DES, so every run
// terminates when the event queue drains — no timeouts needed.
//
// CI runs these continuously in the nightly job (go test -fuzz smoke); the
// checked-in corpus below covers the interesting boundary patterns.

import (
	"testing"

	"paradice/internal/devfile"
	"paradice/internal/kernel"
	"paradice/internal/mem"
	"paradice/internal/sim"
)

// scribble writes data over the ring page at an offset derived from its
// first byte, so the fuzzer can reach the header and any slot alignment.
func scribble(r *rig, data []byte) {
	if len(data) == 0 {
		return
	}
	off := int(data[0]) * 16 % mem.PageSize
	if off+len(data) > mem.PageSize {
		data = data[:mem.PageSize-off]
	}
	if len(data) == 0 {
		return
	}
	if err := r.fe.ring.acc.WriteAt(off, data); err != nil {
		panic("fuzz rig ring inaccessible: " + err.Error())
	}
}

// probe issues one legitimate operation after the hostile bytes landed. The
// channel may be wedged (the guest sabotaged itself), but the attempt must
// come back as a Go error or a success — never a panic — and the run must
// terminate.
func probe(r *rig, t *testing.T) {
	t.Helper()
	r.fe.SetDeadline(2 * sim.Millisecond) // a wedged channel times out honestly
	r.runApp(t, func(p *kernel.Process, tk *kernel.Task) {
		fd, err := tk.Open("/dev/testdev", devfile.ORdWr)
		if err != nil {
			return // honest errno: acceptable outcome under sabotage
		}
		src, err := p.AllocBytes([]byte("probe"))
		if err != nil {
			return
		}
		_, _ = tk.Write(fd, src, 5)
		_, _ = tk.Ioctl(fd, tdNoop, 0)
	})
}

func ringSeedCorpus(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, mem.PageSize))
	// A posted slot with garbage op/fileID/ref/args at slot 0 (first byte 6
	// steers the offset to 96 = hdrSize).
	f.Add([]byte{6, 0, 0, 0, slotPosted, 0, 0, 0, 0xFF, 0xEE, 0xDD, 0xCC,
		0xBB, 0xAA, 0x99, 0x88, 0x77, 0x66, 0x55, 0x44,
		0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	// Header scribble: post counter, poll flags, notif bits, heartbeat
	// request/ack, and restart epoch all saturated.
	f.Add([]byte{0, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
		0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
		0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
		0xFF, 0xFF, 0xFF, 0xFF})
	// Every slot marked done with negative-looking ret/errno words.
	all := make([]byte, mem.PageSize)
	for s := 0; s < slotCount; s++ {
		base := hdrSize + s*slotSize
		all[base+sState] = slotDone
		for i := 0; i < 8; i++ {
			all[base+sRet+i] = 0x80
		}
	}
	f.Add(all)
}

// FuzzRingHostileGuestBytes plays a malicious guest: arbitrary bytes land on
// the ring, then the backend's doorbell rings. The backend parses whatever
// slot and header state it finds — unknown ops, dangling file ids, garbage
// grant references, wild VAs — and must answer with errnos, not panics.
func FuzzRingHostileGuestBytes(f *testing.F) {
	ringSeedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		r := newRig(t, Interrupts, kernel.Linux)
		scribble(r, data)
		r.h.SendInterrupt(r.driverVM, r.fe.vecToBackend)
		r.env.Run()
		probe(r, t)
	})
}

// FuzzRingHostileBackendBytes plays a compromised driver VM: a legitimate
// request goes in flight, then hostile bytes overwrite the ring — responses,
// notification bits, heartbeat words, the restart epoch — and the frontend's
// response scan and notification handler parse them. Errnos only, no panics,
// and the guest-side kernel survives to issue another operation.
func FuzzRingHostileBackendBytes(f *testing.F) {
	ringSeedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		r := newRig(t, Interrupts, kernel.Linux)
		r.fe.SetDeadline(2 * sim.Millisecond)
		r.runApp(t, func(p *kernel.Process, tk *kernel.Task) {
			fd, err := tk.Open("/dev/testdev", devfile.ORdWr)
			if err != nil {
				return
			}
			src, _ := p.AllocBytes([]byte("payload"))
			_, _ = tk.Write(fd, src, 7)
		})
		scribble(r, data)
		// The frontend's two ISRs parse the scribbled state directly.
		r.fe.scanDone()
		r.fe.handleNotifs()
		r.env.Run()
		probe(r, t)
	})
}

// batchSeedCorpus seeds the hostile patterns specific to the multi-entry
// batch descriptor words. First byte 2 steers scribble's offset to 32 =
// hdrMode, so one payload spans mode, hdrSubCount, the four hdrSubBits
// words, hdrDoneCount, and the four hdrDoneBits words.
func batchSeedCorpus(f *testing.F) {
	ringSeedCorpus(f)
	// Everything saturated: mode garbage, counts huge, both bitmaps full.
	sat := make([]byte, 1+44)
	sat[0] = 2
	for i := 1; i < len(sat); i++ {
		sat[i] = 0xFF
	}
	f.Add(sat)
	// Count/bitmap disagreement: hdrSubCount enormous, bitmap empty. The
	// dispatcher must clamp the advisory count, not trust it.
	lie := make([]byte, 1+8)
	lie[0] = 2
	lie[5], lie[6], lie[7], lie[8] = 0xFF, 0xFF, 0xFF, 0xFF // hdrSubCount
	f.Add(lie)
	// Bitmap bits naming slot indices >= slotCount (bits 96..127 live in the
	// last word; slotCount is 100, so most are out of range).
	wild := make([]byte, 1+24)
	wild[0] = 2
	wild[5] = 1                                                     // hdrSubCount = 1
	wild[21], wild[22], wild[23], wild[24] = 0xFF, 0xFF, 0xFF, 0xFF // hdrSubBits[3]
	f.Add(wild)
	// Done bits asserted for every slot regardless of slot state: scanDone
	// must validate each bit against the actual slot word.
	done := make([]byte, 1+44)
	done[0] = 2
	for i := 25; i < len(done); i++ { // hdrDoneCount + hdrDoneBits
		done[i] = 0xFF
	}
	f.Add(done)
}

// FuzzBatchDescriptorHostileWords attacks the multi-entry batch descriptor:
// hostile submission counts/bitmaps are parsed by the backend's dispatcher
// (consumeSubBatch) and hostile completion counts/bitmaps by the frontend's
// response scan (scanDone). Both words are advisory by design — every bit is
// validated against the authoritative slot state — so arbitrary values must
// surface as no-ops or honest errnos, never panics, on a channel with
// batching and the adaptive stance armed.
func FuzzBatchDescriptorHostileWords(f *testing.F) {
	batchSeedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		r := newRig(t, Adaptive, kernel.Linux, func(c *Config) {
			c.CoalesceWindow = 20 * sim.Microsecond
			c.BatchSize = 8
		})
		// A legitimate operation first, so slots exist in realistic states
		// when the hostile words land.
		r.runApp(t, func(p *kernel.Process, tk *kernel.Task) {
			fd, err := tk.Open("/dev/testdev", devfile.ORdWr)
			if err != nil {
				return
			}
			src, _ := p.AllocBytes([]byte("payload"))
			_, _ = tk.Write(fd, src, 7)
		})
		scribble(r, data)
		// Drive both descriptor consumers against the scribbled words.
		r.h.SendInterrupt(r.driverVM, r.fe.vecToBackend)
		r.fe.scanDone()
		r.env.Run()
		probe(r, t)
	})
}

// FuzzReconnectEpochHostileWords scribbles the ring mid-flight and then runs
// the reconnect path — the one consumer of the restart-epoch word — against
// it. Reconnect must either succeed (attaching a successor backend at a
// bumped epoch) or fail with an error; the epoch word's value, however
// hostile, must never panic the epoch arithmetic or let the stale backend
// keep serving.
func FuzzReconnectEpochHostileWords(f *testing.F) {
	ringSeedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		r := newRig(t, Interrupts, kernel.Linux)
		r.runApp(t, func(p *kernel.Process, tk *kernel.Task) {
			fd, err := tk.Open("/dev/testdev", devfile.ORdWr)
			if err != nil {
				return
			}
			src, _ := p.AllocBytes([]byte("payload"))
			_, _ = tk.Write(fd, src, 7)
		})
		r.be.Stop()
		scribble(r, data)
		be2, err := Reconnect(r.fe, r.h, r.driverVM, r.driverK, "/dev/testdev")
		if err != nil {
			return // an honest failure is acceptable; a panic is not
		}
		if be2.Alive() == r.be.Alive() && r.be.Alive() {
			t.Fatal("stale backend still alive after reconnect")
		}
		r.be = be2
		probe(r, t)
	})
}
