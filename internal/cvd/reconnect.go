package cvd

import (
	"fmt"

	"paradice/internal/hv"
	"paradice/internal/kernel"
)

// Driver VM restart support (§8): "a malicious guest VM can break the
// device ... One possible solution is to detect the broken device and
// restart it by simply restarting the driver VM." The frontends — guest
// state — survive; the backends die with the driver VM and are rebuilt
// against the new one.

// Stop terminates the backend: the dispatcher exits, and no part of the
// backend touches the ring page again. The ordering is deliberate and
// load-bearing for reconnection: stopped is set BEFORE the doorbell fires,
// so by the time Stop returns, (i) the dispatcher can only observe
// stopped=true and exit, and (ii) any in-flight handler thread — which
// checks stopped after executing its operation, before writing a response —
// will discard its result rather than scribble on a ring a successor
// backend may by then own. In-flight operations are therefore never
// answered by a stopped backend; Reconnect fails them with EREMOTE.
// Part of driver VM teardown; audited by the faults stress harness.
func (b *Backend) Stop() {
	b.stopped = true
	b.dropMapCache()
	if b.pool != nil {
		b.pool.Leave(b)
	}
	b.doorbell.Trigger()
}

// Reconnect binds an existing frontend to a freshly booted driver VM: the
// guest's ring page is shared into the new VM, a new backend dispatcher
// starts there, and any operations that were in flight when the old driver
// VM died are failed with EREMOTE so their issuers unblock. Guest file
// descriptors opened before the restart are invalid afterwards (the new
// driver has no state for them); applications reopen the device, exactly
// as after a real driver VM restart.
func Reconnect(fe *Frontend, h *hv.Hypervisor, driverVM *hv.VM, driverK *kernel.Kernel, devicePath string) (*Backend, error) {
	node, ok := driverK.LookupDevice(devicePath)
	if !ok {
		return nil, fmt.Errorf("cvd: no device %s in restarted %s", devicePath, driverK.Name)
	}
	beGPA, err := h.SharePage(fe.guestVM, fe.ringGPA, driverVM)
	if err != nil {
		return nil, err
	}
	// Enter the next restart epoch BEFORE the successor backend attaches:
	// the new backend snapshots the bumped word, while anything left of the
	// old one — a dispatcher that was never stopped because its driver VM
	// was wedged rather than dead, a handler thread still holding a slot
	// index — observes the mismatch on its next ring write and discards.
	// Without this, a late pre-restart handler could complete into a slot
	// that was reclaimed and reposted in the new epoch.
	fe.ring.writeU32(hdrEpoch, fe.ring.readU32(hdrEpoch)+1)
	vecToBackend := driverVM.AllocVector()
	be, err := newBackend(h, driverVM, fe.guestVM, driverK, node,
		beGPA, fe.mode, fe.window, vecToBackend, fe.vecResp, fe.vecNotif)
	if err != nil {
		return nil, err
	}
	// The successor inherits the channel's batching knobs: the frontend keeps
	// flushing submission descriptors, so the new backend must keep consuming
	// (and completion-batching) them.
	be.batchSize = fe.batchSize
	be.batchWait = fe.coalesce
	if fe.mapCache {
		// The successor starts with a cold map cache, re-subscribed to the
		// guest's grant table; the frontend's live bulk grants simply miss
		// once and re-map against the new driver VM.
		be.enableMapCache(fe.grants)
	}
	be.frontendDoorbell = fe.scanDone
	fe.driverVM = driverVM
	fe.vecToBackend = vecToBackend
	fe.backend = be
	fe.failInflight()
	return be, nil
}

// failInflight completes every non-free slot with EREMOTE and wakes its
// waiter — requests the dead driver VM will never answer. Slots already in
// slotDone keep their real response: the old backend finished the work but
// its completion interrupt may have been lost with the driver VM, so only
// the waiter's event needs (re-)triggering. Abandoned slots — their issuer
// already timed out with ETIMEDOUT — have no waiter and are simply
// reclaimed; the dead backend can never deliver their late response.
func (fe *Frontend) failInflight() {
	for s := 0; s < slotCount; s++ {
		st := fe.ring.slotState(s)
		if fe.abandoned[s] && st != slotFree {
			fe.abandoned[s] = false
			// recycleSlot, not a bare state write: a slot abandoned in
			// slotPosted/slotRunning still carries the trace request ID in
			// its sErrno bytes (the request-direction reuse); freeing it
			// without scrubbing would leave a stale RID where the next
			// reader of the slot expects an errno.
			fe.ring.recycleSlot(s)
			continue
		}
		switch st {
		case slotPosted, slotRunning:
			fe.ring.writeResponse(s, -1, int32(kernel.EREMOTE))
			fe.respEvents[s].Trigger()
		case slotDone:
			fe.respEvents[s].Trigger()
		}
	}
}
