package cvd

import (
	"bytes"
	"testing"

	"paradice/internal/devfile"
	"paradice/internal/faults"
	"paradice/internal/kernel"
	"paradice/internal/sim"
)

// The §8 restart scenario under load: the driver VM dies (injected via the
// fault plan) with a pile of operations in flight — some already running in
// driver handler threads, some still posted in the ring. Every issuer must
// unblock with EREMOTE (none may hang, none may see a fabricated success),
// and after Reconnect to a fresh driver VM the device works again.
func TestDriverVMDeathUnderLoadThenReconnect(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux)
	plan := faults.New(1).FailAt("cvd.backend.die", 6)
	faults.Install(r.env, plan)
	defer faults.Uninstall(r.env)

	const nReaders = 12
	app, _ := r.guestK.NewProcess("app")
	opened := r.env.NewEvent("opened")
	var fd int
	app.SpawnTask("opener", func(tk *kernel.Task) {
		var err error
		fd, err = tk.Open("/dev/testdev", devfile.ORdOnly)
		if err != nil {
			t.Error(err)
		}
		opened.Trigger()
	})
	// Blocking reads on an empty device: each occupies a ring slot, and the
	// first few dispatched ones also block inside the driver on its wait
	// queue — both in-flight shapes the restart has to fail cleanly.
	results := make([]error, nReaders)
	done := make([]bool, nReaders)
	for i := 0; i < nReaders; i++ {
		i := i
		app.SpawnTask("reader", func(tk *kernel.Task) {
			tk.Sim().Wait(opened)
			dst, _ := app.Alloc(16)
			_, results[i] = tk.Read(fd, dst, 16)
			done[i] = true
		})
	}

	r.env.RunUntil(r.env.Now().Add(20 * sim.Millisecond))
	if plan.Injected("cvd.backend.die") != 1 {
		t.Fatalf("backend death injected %d times, want 1", plan.Injected("cvd.backend.die"))
	}
	for i, d := range done {
		if d {
			t.Fatalf("reader %d returned (%v) before the restart", i, results[i])
		}
	}

	// Recovery: boot a fresh driver VM with a fresh driver and reconnect.
	faults.Uninstall(r.env)
	driverVM2, err := r.h.CreateVM("driver-restarted", 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	driverK2 := kernel.New("driver-restarted", kernel.Linux, r.env, driverVM2.Space, driverVM2.RAM)
	drv2 := &testDriver{k: driverK2, wq: driverK2.NewWaitQueue("testdrv2")}
	driverK2.RegisterDevice("/dev/testdev", drv2, drv2)
	r.be.Stop()
	if _, err := Reconnect(r.fe, r.h, driverVM2, driverK2, "/dev/testdev"); err != nil {
		t.Fatal(err)
	}
	r.env.Run()

	// Every issuer unblocked, every one with EREMOTE.
	for i, d := range done {
		if !d {
			t.Fatalf("reader %d still blocked after reconnect (deadlocked: %v)", i, r.env.Deadlocked())
		}
		if !kernel.IsErrno(results[i], kernel.EREMOTE) {
			t.Fatalf("reader %d got %v, want EREMOTE", i, results[i])
		}
	}

	// Service is restored: a fresh open against the new driver VM round-trips.
	var got []byte
	fresh, _ := r.guestK.NewProcess("fresh")
	fresh.SpawnTask("main", func(tk *kernel.Task) {
		fd, err := tk.Open("/dev/testdev", devfile.ORdWr)
		if err != nil {
			t.Error(err)
			return
		}
		msg := []byte("post-restart service")
		src, _ := fresh.AllocBytes(msg)
		if _, err := tk.Write(fd, src, len(msg)); err != nil {
			t.Error(err)
			return
		}
		dst, _ := fresh.Alloc(32)
		n, err := tk.Read(fd, dst, 32)
		if err != nil {
			t.Error(err)
			return
		}
		got = make([]byte, n)
		_ = fresh.Mem.Read(dst, got)
	})
	r.env.Run()
	if !bytes.Equal(got, []byte("post-restart service")) {
		t.Fatalf("post-restart read = %q", got)
	}
}

// A response interrupt lost in delivery leaves the waiter blocked on a slot
// the backend already completed; failInflight during Reconnect re-triggers
// done slots too, so the waiter unblocks with the REAL response, not
// EREMOTE.
func TestReconnectRecoversDroppedResponseIRQ(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux)
	// Hits on hv.irq.drop: 1 = open's doorbell to the backend, 2 = open's
	// response, 3 = write's doorbell, 4 = write's response. Drop only the
	// write's response.
	faults.Install(r.env, faults.New(1).FailAt("hv.irq.drop", 4))
	defer faults.Uninstall(r.env)

	app, _ := r.guestK.NewProcess("app")
	var werr error
	var wn int
	wdone := false
	app.SpawnTask("main", func(tk *kernel.Task) {
		fd, err := tk.Open("/dev/testdev", devfile.OWrOnly)
		if err != nil {
			t.Error(err)
			return
		}
		src, _ := app.AllocBytes([]byte("lost-irq"))
		wn, werr = tk.Write(fd, src, 8)
		wdone = true
	})
	r.env.RunUntil(r.env.Now().Add(20 * sim.Millisecond))
	if wdone {
		t.Fatalf("write returned (%d, %v) despite its response IRQ being dropped", wn, werr)
	}
	// The driver executed the write; only the completion signal was lost.
	if string(r.drv.data) != "lost-irq" {
		t.Fatalf("driver data = %q; the operation itself should have run", r.drv.data)
	}

	faults.Uninstall(r.env)
	driverVM2, err := r.h.CreateVM("driver-restarted", 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	driverK2 := kernel.New("driver-restarted", kernel.Linux, r.env, driverVM2.Space, driverVM2.RAM)
	drv2 := &testDriver{k: driverK2, wq: driverK2.NewWaitQueue("testdrv2")}
	driverK2.RegisterDevice("/dev/testdev", drv2, drv2)
	r.be.Stop()
	if _, err := Reconnect(r.fe, r.h, driverVM2, driverK2, "/dev/testdev"); err != nil {
		t.Fatal(err)
	}
	r.env.Run()
	if !wdone {
		t.Fatal("write still blocked after reconnect")
	}
	// The slot was already Done: the waiter gets the backend's real answer.
	if werr != nil || wn != 8 {
		t.Fatalf("write after recovery: n=%d err=%v, want n=8 err=nil", wn, werr)
	}
}
