package cvd

import (
	"fmt"

	"paradice/internal/devfile"
	"paradice/internal/grant"
	"paradice/internal/hv"
	"paradice/internal/ioctlan"
	"paradice/internal/kernel"
	"paradice/internal/perf"
	"paradice/internal/sim"
)

// Config describes one paravirtualized device file: which guest sees it,
// which driver VM device backs it, and how the channel behaves.
type Config struct {
	HV       *hv.Hypervisor
	GuestVM  *hv.VM
	GuestK   *kernel.Kernel
	DriverVM *hv.VM
	DriverK  *kernel.Kernel

	// DevicePath is the real device file in the driver VM's devfs.
	DevicePath string
	// GuestPath is the virtual device file to create in the guest
	// (defaults to DevicePath, mirroring the real file).
	GuestPath string
	// Mode selects interrupts or polling transport.
	Mode Mode
	// Specs is the ioctl analyzer's output for the device's driver; ioctl
	// commands without a spec fall back to the command-number macros.
	Specs map[devfile.IoctlCmd]*ioctlan.CmdSpec
	// Grants is the guest's grant table, shared by all frontends in the
	// guest. If nil, a table page is allocated and registered.
	Grants *grant.Table
	// PollWindow is how long each side busy-polls the shared page before
	// sleeping, in polling mode. Zero selects the paper's empirically
	// chosen 200 µs (§5.1); the ablation experiment sweeps it.
	PollWindow sim.Duration
	// RequestDeadline bounds every forwarded operation's wait for its
	// response; a request that outlives it fails with ETIMEDOUT. Zero means
	// wait forever (the paper's behavior). Driver-VM supervision sets this
	// so a guest blocked behind a dead backend unblocks on its own.
	RequestDeadline sim.Duration
	// MapCache enables the bulk-transfer fast path: read/write data buffers
	// of at least MapThreshold bytes get long-lived bulk grants, and the
	// backend maps them into the driver VM once (validated through the grant
	// table) and reuses the mapping across requests to the same file. Cached
	// mappings are invalidated deterministically on grant revoke, file
	// release, reconnect, and driver-VM restart; misusing one faults exactly
	// as a fresh map would. Off by default — the paper's per-request
	// assisted-copy behavior.
	MapCache bool
	// MapThreshold is the minimum transfer size, in bytes, routed through
	// the map cache; smaller transfers keep the per-request assisted copy,
	// which the cost model says wins below ~2 KB at small reuse counts (see
	// the "Bulk transfer" section of EXPERIMENTS.md). Zero selects
	// DefaultMapThreshold. Ignored unless MapCache is set.
	MapThreshold int
	// CoalesceWindow batches doorbells in interrupt mode: request slots
	// posted within the window of the first share its inter-VM IRQ — one
	// CostInterVMIRQ per batch instead of per post — at the price of up to
	// the window in added latency per request. Zero disables coalescing.
	// The polling path and watchdog heartbeats are unaffected.
	CoalesceWindow sim.Duration
	// BatchSize turns the coalescing window into a size+deadline batcher:
	// the frontend flushes a multi-entry submission descriptor as soon as
	// BatchSize slots are pending (instead of waiting out the window), and
	// the backend mirrors it on the completion side — up to BatchSize
	// responses share one response IRQ, flushed after at most
	// CoalesceWindow. Requires CoalesceWindow > 0 to have any effect; zero
	// keeps pure deadline-driven flushing (the PR-4 behavior).
	BatchSize int
	// TLB arms the hypervisor's software TLB (internal/hv/tlb.go): per-VM
	// caches of guest-VA→system-PA translations consulted by the assisted
	// copy and buffer-mapping paths before the full two-level walk of §5.2,
	// invalidated deterministically on page-table edits, EPT changes, grant
	// revocation, and driver-VM restart. Off by default — every operation
	// pays full per-page walks, byte-identical to the seed.
	TLB bool
	// Admission maps a QoS class (kernel.Task.QoS) to the ring occupancy at
	// which that class stops being admitted: once the ring holds that many
	// in-flight requests, further requests from the class fail fast with
	// EAGAIN instead of queueing. Classes absent from the map are admitted
	// until the ring itself is full (EBUSY). nil disables admission control
	// — the seed behavior.
	Admission map[uint8]int
	// GrantBatch batches grant hypercalls: the frontend declares a file
	// operation's whole grant vector in one hypervisor crossing (the first
	// entry costs CostGrantDeclare, each further entry CostGrantEntry), and
	// the hypervisor's grant-validation cache primed by that crossing lets
	// the backend's memory operations validate against the cached vector at
	// CostTLBHit instead of re-scanning the shared page. Off by default.
	GrantBatch bool
	// Pool, when non-nil, is the driver VM's shared worker pool (pool.go):
	// this channel joins it at connect time, and the dispatcher enqueues
	// operations there instead of spawning one handler thread per operation.
	// nil keeps thread-per-op — the seed behavior.
	Pool *Pool
}

// DefaultMapThreshold is the transfer size at which the grant-map cache
// starts paying off against per-request assisted copies, derived from the
// cost model (CostMapPage amortization vs CostCopyPerPage/CostCopyPerKB at
// small reuse counts).
const DefaultMapThreshold = 2048

// Connect builds a CVD channel: a shared ring page between the guest and
// driver VMs, interrupt vectors in both directions, the backend dispatcher
// in the driver VM, and a virtual device file in the guest's devfs backed by
// the frontend. Returns the frontend and backend halves.
func Connect(cfg Config) (*Frontend, *Backend, error) {
	if cfg.GuestPath == "" {
		cfg.GuestPath = cfg.DevicePath
	}
	node, ok := cfg.DriverK.LookupDevice(cfg.DevicePath)
	if !ok {
		return nil, nil, fmt.Errorf("cvd: no device %s in %s", cfg.DevicePath, cfg.DriverK.Name)
	}

	// The ring page lives in guest memory and is shared into the driver VM.
	ringGPA, err := cfg.GuestK.AllocFrame()
	if err != nil {
		return nil, nil, err
	}
	beGPA, err := cfg.HV.SharePage(cfg.GuestVM, ringGPA, cfg.DriverVM)
	if err != nil {
		return nil, nil, err
	}

	grants := cfg.Grants
	if grants == nil {
		grantGPA, err := cfg.GuestK.AllocFrame()
		if err != nil {
			return nil, nil, err
		}
		if err := cfg.HV.RegisterGrantTable(cfg.GuestVM, grantGPA); err != nil {
			return nil, nil, err
		}
		grants = grant.NewTable(&grant.GuestAccessor{Space: cfg.GuestVM.Space, GPA: grantGPA})
	}
	if cfg.TLB {
		cfg.HV.EnableTLB()
	}
	if cfg.GrantBatch {
		// Idempotent per (VM, table): guests that paravirtualize several
		// devices share one table and subscribe once.
		cfg.HV.EnableGrantCache(cfg.GuestVM, grants)
	}

	vecToBackend := cfg.DriverVM.AllocVector()
	vecResp := cfg.GuestVM.AllocVector()
	vecNotif := cfg.GuestVM.AllocVector()
	if cfg.PollWindow == 0 {
		cfg.PollWindow = perf.PollWindow
	}

	be, err := newBackend(cfg.HV, cfg.DriverVM, cfg.GuestVM, cfg.DriverK, node,
		beGPA, cfg.Mode, cfg.PollWindow, vecToBackend, vecResp, vecNotif)
	if err != nil {
		return nil, nil, err
	}
	be.batchSize = cfg.BatchSize
	be.batchWait = cfg.CoalesceWindow
	if cfg.Pool != nil {
		cfg.Pool.Join(be)
	}

	fe := &Frontend{
		hv:           cfg.HV,
		guestVM:      cfg.GuestVM,
		driverVM:     cfg.DriverVM,
		guestK:       cfg.GuestK,
		mode:         cfg.Mode,
		window:       cfg.PollWindow,
		ring:         page{acc: &grant.GuestAccessor{Space: cfg.GuestVM.Space, GPA: ringGPA}},
		grants:       grants,
		specs:        cfg.Specs,
		ringGPA:      ringGPA,
		vecToBackend: vecToBackend,
		vecResp:      vecResp,
		vecNotif:     vecNotif,
		pollWQ:       cfg.GuestK.NewWaitQueue("cvd-poll-" + cfg.GuestPath),
		backend:      be,
		deadline:     cfg.RequestDeadline,
		coalesce:     cfg.CoalesceWindow,
		batchSize:    cfg.BatchSize,
		grantBatch:   cfg.GrantBatch,
		hbEvent:      cfg.HV.Env.NewEvent("cvd-hb-" + cfg.GuestPath),
		drainEvent:   cfg.HV.Env.NewEvent("cvd-drain-" + cfg.GuestPath),
		path:         cfg.GuestPath,
		vm:           cfg.GuestVM.Name,
		m:            newFeMetricNames(cfg.GuestVM.Name, cfg.GuestPath),
	}
	for i := range fe.respEvents {
		fe.respEvents[i] = cfg.HV.Env.NewEvent(fmt.Sprintf("cvd-resp-%s-%d", cfg.GuestPath, i))
	}
	fe.SetAdmission(cfg.Admission)
	if cfg.MapCache {
		fe.mapCache = true
		fe.mapThreshold = cfg.MapThreshold
		if fe.mapThreshold <= 0 {
			fe.mapThreshold = DefaultMapThreshold
		}
		fe.bulk = make(map[bulkKey]bulkGrant)
		be.enableMapCache(grants)
	}
	be.frontendDoorbell = fe.scanDone
	cfg.GuestVM.RegisterISR(vecResp, fe.scanDone)
	cfg.GuestVM.RegisterISR(vecNotif, fe.handleNotifs)
	cfg.GuestK.RegisterDevice(cfg.GuestPath, fe, fe)
	return fe, be, nil
}

// NewGuestGrantTable allocates and registers a grant-table page for a
// guest, for callers that paravirtualize several devices in one guest (one
// table per guest VM, shared by its frontends).
func NewGuestGrantTable(h *hv.Hypervisor, guestVM *hv.VM, guestK *kernel.Kernel) (*grant.Table, error) {
	gpa, err := guestK.AllocFrame()
	if err != nil {
		return nil, err
	}
	if err := h.RegisterGrantTable(guestVM, gpa); err != nil {
		return nil, err
	}
	return grant.NewTable(&grant.GuestAccessor{Space: guestVM.Space, GPA: gpa}), nil
}
