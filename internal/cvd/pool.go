package cvd

import (
	"fmt"

	"paradice/internal/kernel"
	"paradice/internal/sim"
	"paradice/internal/trace"
)

// Pool is a driver VM's shared backend worker pool: a bounded set of handler
// threads serving every CVD channel attached to that driver VM. Without a
// pool each forwarded operation gets its own thread (spawnHandler), which is
// faithful to the paper but lets one hot guest consume unbounded driver-VM
// threads; with a pool, per-channel dispatchers enqueue operations into
// per-channel FIFO queues and the workers drain them under deficit
// round-robin, so a guest at open-loop overload gets at most its round share
// of workers while a quiet guest's operations are picked up within one
// quantum cycle.
//
// Ordering contract: operations of one channel are *started* in post order
// (the queue is FIFO and workers dequeue under a single scheduler token), the
// same guarantee the thread-per-op path gives. Operations of one channel may
// still complete out of order once started — that is the concurrency the
// paper's handler threads exist for.
//
// Workers are named "cvd-op-worker-<n>": the "cvd-op-" prefix keeps them
// inside the supervision contract — a panic in a pooled handler is consumed
// by the driver-VM supervisor exactly like a panic in a dedicated handler
// thread.
type Pool struct {
	driverK  *kernel.Kernel
	workers  int
	quantum  int
	doorbell *sim.Event
	stopped  bool

	channels []*poolChan
	rr       int // deficit-round-robin cursor into channels

	// onServe, when set, observes every dequeue in service order (test hook
	// for the per-channel FIFO contract). Runs in worker context before the
	// operation executes; must not block.
	onServe func(b *Backend, seq uint32)

	// Stats observable by tests and the bench harness.
	Enqueued uint64 // operations handed to the pool
	Served   uint64 // operations a worker picked up
	Dropped  uint64 // stale operations discarded (channel left or ring epoch moved)
	MaxDepth int    // high-water mark of total queued operations
}

// poolChan is one channel's slice of the pool: its FIFO backlog and its
// deficit-round-robin account.
type poolChan struct {
	b       *Backend
	q       []request
	deficit int
}

// NewPool creates a worker pool of the given size on the driver VM kernel
// and starts its workers (on the driver VM's calendar lane). quantum is the
// deficit-round-robin quantum — how many consecutive operations one channel
// may be served before the cursor moves on; values < 1 mean 1, strict
// per-operation round-robin.
func NewPool(driverK *kernel.Kernel, workers, quantum int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if quantum < 1 {
		quantum = 1
	}
	pl := &Pool{
		driverK:  driverK,
		workers:  workers,
		quantum:  quantum,
		doorbell: driverK.Env.NewEvent("cvd-pool-" + driverK.Name),
	}
	for i := 0; i < workers; i++ {
		i := i
		driverK.Env.SpawnLane(driverK.Lane, fmt.Sprintf("cvd-op-worker-%d@%s", i, driverK.Name), func(p *sim.Proc) {
			pl.worker(p)
		})
	}
	return pl
}

// Workers returns the pool size.
func (pl *Pool) Workers() int { return pl.workers }

// Join attaches a backend's channel to the pool. Channels are served in join
// order by the round-robin cursor. The backend's dispatcher starts routing
// operations here instead of spawning per-op threads.
func (pl *Pool) Join(b *Backend) {
	for _, c := range pl.channels {
		if c.b == b {
			return
		}
	}
	pl.channels = append(pl.channels, &poolChan{b: b})
	b.pool = pl
}

// Leave detaches a backend's channel, discarding its backlog — called on
// backend Stop/death, when the ring's restart epoch has moved on and any
// queued operations will be failed with EREMOTE by Reconnect, not answered.
func (pl *Pool) Leave(b *Backend) {
	for i, c := range pl.channels {
		if c.b == b {
			pl.Dropped += uint64(len(c.q))
			pl.channels = append(pl.channels[:i], pl.channels[i+1:]...)
			if pl.rr > i {
				pl.rr--
			}
			if len(pl.channels) > 0 {
				pl.rr %= len(pl.channels)
			} else {
				pl.rr = 0
			}
			break
		}
	}
	if b.pool == pl {
		b.pool = nil
	}
}

// Stop terminates the workers. Queued operations are dropped; as with
// backend Stop, in-flight ones finish but discard their ring writes if the
// epoch moved.
func (pl *Pool) Stop() {
	pl.stopped = true
	pl.doorbell.Trigger()
}

// enqueue appends one decoded operation to the backend's channel queue and
// wakes the workers. Called from the channel's dispatcher.
func (pl *Pool) enqueue(b *Backend, req request) {
	for _, c := range pl.channels {
		if c.b == b {
			c.q = append(c.q, req)
			pl.Enqueued++
			if d := pl.depth(); d > pl.MaxDepth {
				pl.MaxDepth = d
			}
			trace.Get(pl.driverK.Env).Add("cvd.pool.enqueued", 1)
			pl.doorbell.Trigger()
			return
		}
	}
	// Channel never joined (or already left): the operation belongs to a
	// ring generation this pool will not serve.
	pl.Dropped++
}

func (pl *Pool) depth() int {
	n := 0
	for _, c := range pl.channels {
		n += len(c.q)
	}
	return n
}

// next pops the next operation under deficit round-robin, or reports none
// pending. A channel's deficit refills with the quantum when the cursor
// reaches it with work queued, and the cursor stays until the deficit or the
// queue runs out — so one channel gets at most quantum consecutive services
// while others wait, and an empty channel forfeits its turn (and any saved
// deficit) immediately.
func (pl *Pool) next() (*Backend, request, bool) {
	n := len(pl.channels)
	for scanned := 0; scanned < n; {
		c := pl.channels[pl.rr]
		if len(c.q) == 0 {
			c.deficit = 0
			pl.rr = (pl.rr + 1) % n
			scanned++
			continue
		}
		if c.deficit == 0 {
			c.deficit = pl.quantum
		}
		req := c.q[0]
		c.q = c.q[1:]
		c.deficit--
		if c.deficit == 0 || len(c.q) == 0 {
			c.deficit = 0
			pl.rr = (pl.rr + 1) % n
		}
		return c.b, req, true
	}
	return nil, request{}, false
}

// worker is one pooled handler thread: dequeue under the fairness policy,
// execute via the owning backend's handle, sleep on the shared doorbell when
// the queues drain (with the same reset-then-recheck pattern the dispatcher
// uses, so an enqueue racing the sleep is never lost).
func (pl *Pool) worker(p *sim.Proc) {
	for {
		if pl.stopped {
			return
		}
		b, req, ok := pl.next()
		if !ok {
			pl.doorbell.Reset()
			if pl.stopped {
				return
			}
			if pl.depth() > 0 {
				continue
			}
			p.Wait(pl.doorbell)
			continue
		}
		if !b.ringCurrent() {
			// The channel died between enqueue and pickup; its slots now
			// belong to a successor backend.
			pl.Dropped++
			continue
		}
		pl.Served++
		trace.Get(pl.driverK.Env).Add("cvd.pool.served", 1)
		if pl.onServe != nil {
			pl.onServe(b, req.seq)
		}
		b.handle(p, req)
	}
}
