package cvd

import (
	"fmt"

	"paradice/internal/faults"
	"paradice/internal/grant"
	"paradice/internal/hv"
	"paradice/internal/kernel"
	"paradice/internal/mem"
	"paradice/internal/perf"
	"paradice/internal/sim"
	"paradice/internal/trace"
)

// opName names a forwarded op code for trace spans and error messages.
func opName(op uint8) string {
	switch op {
	case opOpen:
		return "open"
	case opRelease:
		return "release"
	case opRead:
		return "read"
	case opWrite:
		return "write"
	case opIoctl:
		return "ioctl"
	case opMmap:
		return "mmap"
	case opMunmap:
		return "munmap"
	case opFault:
		return "fault"
	case opPoll:
		return "poll"
	case opFasync:
		return "fasync"
	}
	return "?"
}

// Mode selects the CVD transport: inter-VM interrupts (default), the
// polling mode for high-performance applications (§5.1), in which both
// sides poll the shared page for 200 µs before going to sleep to wait for
// interrupts, or the adaptive mode, which switches NAPI-style between the
// two per channel based on the observed arrival rate — poll under load,
// re-arm interrupts when idle.
type Mode int

// Transport modes.
const (
	Interrupts Mode = iota
	Polling
	Adaptive
)

func (m Mode) String() string {
	switch m {
	case Polling:
		return "polling"
	case Adaptive:
		return "adaptive"
	}
	return "interrupts"
}

// Backend is the CVD backend serving one guest VM's channel for one device
// file. A dispatcher task pops posted operations in FIFO order and invokes
// a handler thread per operation, marking the thread so the kernel's
// wrapper stubs redirect its memory operations to the hypervisor (§5.2).
type Backend struct {
	hv       *hv.Hypervisor
	driverVM *hv.VM
	guestVM  *hv.VM
	driverK  *kernel.Kernel
	node     *kernel.DeviceNode
	mode     Mode
	window   sim.Duration // polling window before sleeping (§5.1: 200 µs)
	ring     page
	proc     *kernel.Process

	doorbell *sim.Event
	files    map[uint16]*kernel.File
	vmas     map[uint16]map[mem.GuestVirt]*kernel.VMA // fileID -> start -> VMA
	vecResp  int
	vecNotif int
	// frontendDoorbell, installed at connect time, is the simulation's
	// stand-in for a spinning requester's load of the shared page (the
	// response data itself still travels through the page).
	frontendDoorbell func()
	// stopped terminates the dispatcher (driver VM restart).
	stopped bool
	// epoch is the ring's restart-epoch word (hdrEpoch) as of this backend's
	// creation. Reconnect bumps the word before attaching a successor, so a
	// pre-restart backend — its dispatcher, a late handler thread still
	// holding a slot index, a deferred heartbeat ack — observes the mismatch
	// and discards instead of touching slots the successor now owns. This is
	// the ring-visible form of the protection: unlike the stopped flag it
	// does not depend on anyone having had the chance to stop the old
	// backend (a wedged-but-alive driver VM never gets stopped).
	epoch uint32
	// mapc, when non-nil, is the grant-map cache (the bulk-transfer fast
	// path); see mapcache.go.
	mapc *mapCache
	// pool, when non-nil, is the driver VM's shared worker pool: the
	// dispatcher enqueues operations there instead of spawning an unbounded
	// handler thread each, and bounded workers serve channels under deficit
	// round-robin. See pool.go.
	pool *Pool
	// onDeath, when set, is invoked once if the backend dies abnormally —
	// an injected driver-VM crash or an explicit Kill — but NOT on an
	// orderly Stop. Driver-VM supervision registers here for immediate
	// failure detection instead of waiting out missed heartbeats.
	onDeath func()
	// hbSeen is the last watchdog heartbeat sequence this backend observed,
	// whether it acked it or a fault swallowed the ack. Backend-local so a
	// dropped ack is not retried forever by the dispatcher loop.
	hbSeen uint32

	// notifyGate, when set, is consulted before sending a notification;
	// the foreground/background model of §5.1 gates input notifications to
	// the foreground guest only.
	notifyGate func() bool

	// Completion batching (mirror of the frontend's doorbell batching).
	// With batchSize and batchWait set, interrupt-path completions
	// accumulate and share one response IRQ, flushed by the same
	// size+deadline policy; respGen invalidates an armed deadline timer
	// once a size-triggered flush has run. Heartbeat acks and the polled
	// path bypass it — watchdog latency and spinning requesters are never
	// delayed by the batch window.
	batchSize   int
	batchWait   sim.Duration
	respPending int
	respGen     uint64

	// Adaptive stance (Mode == Adaptive): the backend's own arrival-rate
	// EWMA, fed by request pickups in the dispatcher. In poll stance the
	// dispatcher spins its window before sleeping (as static Polling does);
	// in interrupt stance it sleeps immediately.
	stancePoll bool
	arrAvg     sim.Duration
	lastSeen   sim.Time

	// warmFiles/warmVMAs carry the predecessor's open-file table across a
	// planned handover: fileIDs the guest still holds but the successor's
	// driver has never seen. The successor re-opens them lazily — the first
	// forwarded operation naming a warm fileID replays open (and the file's
	// mmaps) against the real driver in that operation's own handler context,
	// so the guest never observes EINVAL for a file it legitimately holds.
	warmFiles map[uint16]warmFile
	warmVMAs  map[uint16][]warmVMA

	// Stats observable by tests and the bench harness.
	OpsHandled    uint64
	NotifsSent    uint64
	NotifsDropped uint64
	WakeIRQs      uint64 // doorbell interrupts received while sleeping
	PolledPosts   uint64 // posts observed while spinning
	HbAcked       uint64 // watchdog heartbeats echoed
	HbDropped     uint64 // heartbeat acks swallowed by fault injection
	WarmReopens   uint64 // predecessor files lazily re-opened after a handover
	RespFlushes   uint64 // response IRQ flushes sent (each covers >= 1 completions)

	// SpinTime accumulates the virtual time the dispatcher spent spinning
	// its poll window — the CPU the driver VM burns to keep latency low.
	// The adaptive bench gates on it at low load, where static polling
	// pays a full idle window per wake and adaptive must not.
	SpinTime sim.Duration
}

// SetNotifyGate installs a predicate consulted before notifications are
// sent. Paradice's foreground-background sharing model (§5.1) uses it to
// deliver input notifications only to the foreground guest VM.
func (b *Backend) SetNotifyGate(fn func() bool) { b.notifyGate = fn }

// remoteConduit implements kernel.RemoteOps for one forwarded file
// operation, attaching its grant reference to every hypervisor request.
// For read/write requests carrying reqFlagMapHint, data movement within the
// request's declared buffer is routed through the backend's grant-map cache
// instead of a per-access assisted copy; anything else (or any access the
// hint's buffer does not cover) takes the slow path unchanged.
type remoteConduit struct {
	hv    *hv.Hypervisor
	guest *hv.VM
	drv   *hv.VM
	ref   uint32

	// Fast-path routing, set only for hinted read/write requests.
	mapc    *mapCache
	mapKind grant.Kind
	fileID  uint16
	bufVA   mem.GuestVirt
	bufLen  uint64
	rid     uint64
}

// inBuf reports whether [va, va+n) lies within the hinted request's declared
// data buffer — the only range the cached mapping may serve.
func (r *remoteConduit) inBuf(va mem.GuestVirt, n int) bool {
	return va >= r.bufVA && uint64(va)+uint64(n) <= uint64(r.bufVA)+r.bufLen &&
		uint64(va)+uint64(n) >= uint64(va)
}

func (r *remoteConduit) CopyToUser(dst mem.GuestVirt, src []byte) error {
	if r.mapc != nil && r.mapKind == grant.KindCopyTo && r.inBuf(dst, len(src)) {
		if err := r.mapc.access(r.rid, r.fileID, r.ref, grant.KindCopyTo,
			r.bufVA, r.bufLen, dst, src, true); err != nil {
			return kernel.EFAULT
		}
		return nil
	}
	if err := r.hv.CopyToGuest(r.guest, r.ref, dst, src); err != nil {
		return kernel.EFAULT
	}
	return nil
}

func (r *remoteConduit) CopyFromUser(src mem.GuestVirt, buf []byte) error {
	if r.mapc != nil && r.mapKind == grant.KindCopyFrom && r.inBuf(src, len(buf)) {
		if err := r.mapc.access(r.rid, r.fileID, r.ref, grant.KindCopyFrom,
			r.bufVA, r.bufLen, src, buf, false); err != nil {
			return kernel.EFAULT
		}
		return nil
	}
	if err := r.hv.CopyFromGuest(r.guest, r.ref, src, buf); err != nil {
		return kernel.EFAULT
	}
	return nil
}

func (r *remoteConduit) MapPage(va mem.GuestVirt, pfn mem.GuestPhys) error {
	if err := r.hv.MapToGuest(r.guest, r.ref, va, r.drv, pfn); err != nil {
		return kernel.EFAULT
	}
	return nil
}

func (r *remoteConduit) UnmapPage(va mem.GuestVirt) error {
	if err := r.hv.UnmapFromGuest(r.guest, r.ref, va); err != nil {
		return kernel.EFAULT
	}
	return nil
}

func newBackend(h *hv.Hypervisor, driverVM, guestVM *hv.VM, driverK *kernel.Kernel,
	node *kernel.DeviceNode, ringGPA mem.GuestPhys, mode Mode, window sim.Duration,
	vecToBackend, vecResp, vecNotif int) (*Backend, error) {
	proc, err := driverK.NewProcess("cvd-backend-" + guestVM.Name)
	if err != nil {
		return nil, err
	}
	return newBackendWith(proc, h, driverVM, guestVM, driverK, node,
		ringGPA, mode, window, vecToBackend, vecResp, vecNotif), nil
}

// newBackendWith builds a backend around an already-created kernel process —
// the infallible half of newBackend. A planned handover pre-allocates the
// process during prepare so its commit, which runs after the ring's epoch
// word has been bumped past the predecessor, has no failure path left.
func newBackendWith(proc *kernel.Process, h *hv.Hypervisor, driverVM, guestVM *hv.VM,
	driverK *kernel.Kernel, node *kernel.DeviceNode, ringGPA mem.GuestPhys,
	mode Mode, window sim.Duration, vecToBackend, vecResp, vecNotif int) *Backend {
	b := &Backend{
		hv:       h,
		driverVM: driverVM,
		guestVM:  guestVM,
		driverK:  driverK,
		node:     node,
		mode:     mode,
		window:   window,
		ring:     page{acc: &grant.GuestAccessor{Space: driverVM.Space, GPA: ringGPA}},
		proc:     proc,
		doorbell: driverK.Env.NewEvent("cvd-doorbell-" + guestVM.Name),
		files:    make(map[uint16]*kernel.File),
		vmas:     make(map[uint16]map[mem.GuestVirt]*kernel.VMA),
		vecResp:  vecResp,
		vecNotif: vecNotif,
	}
	// A successor backend inherits the ring's heartbeat state: starting from
	// the last acked sequence means a beat posted while the driver VM was
	// rebooting is answered by the new dispatcher's first pass.
	b.hbSeen = b.ring.readU32(hdrHbAck)
	// Snapshot the ring's restart epoch: every write this backend (or one of
	// its handler threads) ever makes to the ring is conditioned on the word
	// still holding this value. Reconnect bumps it before attaching a
	// successor.
	b.epoch = b.ring.readU32(hdrEpoch)
	// The driver calling kill_fasync on one of our opened files lands in
	// our backend process's SIGIO path; relay it to the frontend.
	proc.OnSIGIO(func() { b.notify(notifSIGIO) })
	driverVM.RegisterISR(vecToBackend, func() {
		b.WakeIRQs++
		trace.Get(driverK.Env).Add("cvd.backend.wake_irqs", 1)
		b.doorbell.Trigger()
	})
	// The "@<driver>" suffix attributes the proc to its driver-VM shard: a
	// sharded machine runs one supervisor per shard, each consuming only the
	// panics of its own backends (supervise.Config.OwnsProc).
	driverK.Env.SpawnLane(driverK.Lane, "cvd-dispatch-"+guestVM.Name+"@"+driverK.Name, b.dispatch)
	return b
}

// Proc returns the backend's kernel process — the identity under which all
// of this guest's file operations reach the driver. Drivers modified for
// device data isolation key their per-guest regions on it.
func (b *Backend) Proc() *kernel.Process { return b.proc }

// ringCurrent reports whether this backend still owns the ring: it has not
// been stopped, and the ring's restart-epoch word still holds the value the
// backend was created under. Every backend-side ring write is conditioned on
// this — the epoch half catches the interleaving the stopped flag cannot: a
// pre-restart backend nobody managed to stop (a wedged-but-alive driver VM)
// whose handler thread wakes up after its slot has been reclaimed and
// reposted in a new epoch.
func (b *Backend) ringCurrent() bool {
	return !b.stopped && b.ring.readU32(hdrEpoch) == b.epoch
}

// notify posts a notification bit and kicks the frontend, unless the
// notification gate says this guest should not receive it. A stopped (or
// superseded) backend is dead — it no longer owns the ring and must not
// touch it.
func (b *Backend) notify(bits uint32) {
	if !b.ringCurrent() {
		return
	}
	if b.notifyGate != nil && !b.notifyGate() {
		b.NotifsDropped++
		trace.Get(b.hv.Env).Add("cvd.notify.dropped", 1)
		return
	}
	b.ring.postNotif(bits)
	b.NotifsSent++
	trace.Get(b.hv.Env).Add("cvd.notify.sent", 1)
	b.hv.SendInterrupt(b.guestVM, b.vecNotif)
}

// dispatch is the backend's main loop: pop the oldest posted slot, spawn a
// handler thread for it, repeat; between operations, poll the page for the
// 200 µs window (polling mode) before sleeping on the doorbell.
//
// The dispatcher and its sleep are the "vCPU halt" fast path: waking it
// costs only the interrupt delivery latency, not a scheduler wake-up —
// which is why the no-op round trip of §6.1.1 is two interrupts and little
// else.
func (b *Backend) dispatch(p *sim.Proc) {
	for {
		if !b.ringCurrent() {
			return
		}
		if faults.Point(b.driverK.Env, "cvd.backend.die") != nil {
			// Injected driver-VM death: the dispatcher vanishes mid-run.
			// Posted operations stay unanswered until a Reconnect fails
			// them with EREMOTE, exactly as after a real driver VM crash.
			b.die()
			return
		}
		b.serviceHeartbeat()
		b.consumeSubBatch(p)
		if slot, ok := b.oldestPosted(); ok {
			b.observeArrival()
			b.ring.setSlotState(slot, slotRunning)
			req := b.ring.readRequest(slot)
			if b.pool != nil {
				b.pool.enqueue(b, req)
			} else {
				b.spawnHandler(req)
			}
			continue
		}
		// About to sleep: re-arm the doorbell, then re-check the queue (and
		// the heartbeat word) so a post that raced with the scan is not lost.
		b.doorbell.Reset()
		if b.heartbeatPending() {
			continue
		}
		if _, ok := b.oldestPosted(); ok {
			continue
		}
		if b.pollStanceNow() && b.window > 0 {
			b.ring.writeU32(hdrBackendPoll, 1)
			spinStart := b.hv.Env.Now()
			woken := p.WaitTimeout(b.doorbell, b.window)
			b.SpinTime += b.hv.Env.Now().Sub(spinStart)
			b.ring.writeU32(hdrBackendPoll, 0)
			if woken {
				continue
			}
			b.doorbell.Reset()
			if b.heartbeatPending() {
				continue
			}
			if _, ok := b.oldestPosted(); ok {
				continue
			}
		}
		p.Wait(b.doorbell)
	}
}

// pollStanceNow reports whether the dispatcher should spin its poll window
// before sleeping: always in static Polling, and in Adaptive while the
// observed arrival rate holds the backend in poll stance.
func (b *Backend) pollStanceNow() bool {
	return b.mode == Polling || (b.mode == Adaptive && b.stancePoll)
}

// observeArrival feeds one request pickup into the backend's adaptive EWMA
// and flips its stance when the average crosses perf.AdaptivePollGap — the
// dispatcher-side half of the NAPI-style switch. Bookkeeping only: it reads
// the clock, never advances it.
func (b *Backend) observeArrival() {
	if b.mode != Adaptive {
		return
	}
	now := b.hv.Env.Now()
	gap := now.Sub(b.lastSeen)
	b.lastSeen = now
	if gap > adaptiveGapCap || b.arrAvg == 0 {
		gap = adaptiveGapCap
	}
	if b.arrAvg == 0 {
		b.arrAvg = gap // first pickup: start in interrupt stance
	} else {
		b.arrAvg += (gap - b.arrAvg) / 4
	}
	poll := b.arrAvg < perf.AdaptivePollGap
	if poll == b.stancePoll {
		return
	}
	b.stancePoll = poll
	name := "mode-to-interrupts"
	if poll {
		name = "mode-to-poll"
	}
	tr := trace.Get(b.driverK.Env)
	tr.Add("cvd.adaptive.be.switches", 1)
	tr.Instant(0, b.driverVM.Name, trace.LayerBE, name, b.guestVM.Name)
}

// consumeSubBatch drains the ring's submission batch descriptor: the flush
// that rang the doorbell published how many posted slots it covers
// (hdrSubCount) and which (hdrSubBits). The dispatcher pays one descriptor
// deserialization for the whole batch — the amortization the batch exists
// for — and records the batch size. The words are advisory and untrusted:
// counts are clamped, the bitmap is cleared without being believed (the
// oldestPosted scan is the ground truth for what is actually served), and a
// hostile scribble degrades to a skewed histogram, never a panic.
func (b *Backend) consumeSubBatch(p *sim.Proc) {
	n := b.ring.readU32(hdrSubCount)
	if n == 0 {
		return
	}
	b.ring.writeU32(hdrSubCount, 0)
	b.ring.takeBitmap(hdrSubBits)
	if n > slotCount {
		n = slotCount
	}
	p.Advance(perf.CostBatchDescriptor)
	tr := trace.Get(b.driverK.Env)
	tr.Add("cvd.backend.batches", 1)
	tr.ObserveCount("cvd.backend.batch", uint64(n))
}

// heartbeatPending reports whether the watchdog has posted a heartbeat this
// backend has not yet looked at. Observed-but-unacked beats (dropped or
// deferred by fault injection) do not count — the dispatcher must not spin
// on a beat it has already decided about.
func (b *Backend) heartbeatPending() bool {
	return b.ring.readU32(hdrHbReq) != b.hbSeen
}

// serviceHeartbeat echoes a pending watchdog heartbeat: the cheap ring no-op
// driver-VM supervision uses as its liveness probe. A healthy backend copies
// the request sequence into the ack word and completes toward the frontend;
// the "cvd.heartbeat.drop" fault point swallows the ack (a driver VM too
// wedged to answer), and "cvd.heartbeat.delay" defers it by the scripted
// payload (a driver VM that is slow but alive — the false-positive hazard
// the watchdog's miss threshold exists for).
func (b *Backend) serviceHeartbeat() {
	req := b.ring.readU32(hdrHbReq)
	if req == b.hbSeen {
		return
	}
	b.hbSeen = req
	if faults.Point(b.driverK.Env, "cvd.heartbeat.drop") != nil {
		b.HbDropped++
		trace.Get(b.driverK.Env).Add("cvd.heartbeat.dropped", 1)
		return
	}
	if d := faults.Point(b.driverK.Env, "cvd.heartbeat.delay"); d != nil {
		delay := sim.Duration(d.Arg)
		b.hv.Env.After(delay, func() {
			if !b.ringCurrent() {
				return
			}
			b.ring.writeU32(hdrHbAck, req)
			b.HbAcked++
			trace.Get(b.driverK.Env).Add("cvd.heartbeat.acked", 1)
			b.complete(0, true)
		})
		return
	}
	b.ring.writeU32(hdrHbAck, req)
	b.HbAcked++
	trace.Get(b.driverK.Env).Add("cvd.heartbeat.acked", 1)
	b.complete(0, true)
}

// die marks the backend dead the abnormal way — injected crash or explicit
// Kill — and fires the death notification supervision may have registered.
// Orderly Stop does not come through here.
func (b *Backend) die() {
	if b.stopped {
		return
	}
	b.stopped = true
	b.dropMapCache()
	if b.pool != nil {
		b.pool.Leave(b)
	}
	if fn := b.onDeath; fn != nil {
		b.onDeath = nil
		fn()
	}
}

// dropMapCache tears down every cached guest-buffer mapping (no-op when the
// fast path is disabled). Part of backend teardown: a dead driver VM's EPT
// must not keep windows into guest data buffers.
func (b *Backend) dropMapCache() {
	if b.mapc != nil {
		b.mapc.dropAll()
	}
}

// Kill terminates the backend as an injected driver-VM crash would: the
// dispatcher exits without answering anything, and the death notification
// fires. Tests and fault harnesses use it to crash one specific channel's
// backend (the probabilistic "cvd.backend.die" point cannot aim).
func (b *Backend) Kill() {
	b.die()
	b.doorbell.Trigger()
}

// Alive reports whether the backend's dispatcher is still serving the ring.
func (b *Backend) Alive() bool { return !b.stopped }

// OnDeath registers fn to run once if the backend dies abnormally (injected
// crash or Kill; not an orderly Stop). Supervision registers here so an
// explicit fault-plan kill is detected immediately rather than after K
// missed heartbeats. A backend already dead fires fn at once.
func (b *Backend) OnDeath(fn func()) {
	if b.stopped {
		fn()
		return
	}
	b.onDeath = fn
}

func (b *Backend) oldestPosted() (int, bool) {
	best, bestSeq, found := -1, uint32(0), false
	for s := 0; s < slotCount; s++ {
		if b.ring.slotState(s) != slotPosted {
			continue
		}
		seq := b.ring.readU32(slotOff(s) + sSeq)
		if !found || seq < bestSeq {
			best, bestSeq, found = s, seq, true
		}
	}
	return best, found
}

// spawnHandler runs one forwarded operation on its own thread, as the paper
// does ("the CVD backend invokes a thread to execute the file operation"),
// so an operation blocking in the driver does not stall the queue. With a
// worker pool attached (Config.Workers > 0) the dispatcher enqueues to the
// pool instead and a bounded worker calls handle directly.
func (b *Backend) spawnHandler(req request) {
	b.driverK.Env.SpawnLane(b.driverK.Lane,
		fmt.Sprintf("cvd-op-%s-%d@%s", b.guestVM.Name, req.seq, b.driverK.Name),
		func(sp *sim.Proc) {
			b.handle(sp, req)
		})
}

// handle executes one forwarded operation on the calling proc — either a
// per-op handler thread (spawnHandler) or a pooled worker. It deserializes,
// adopts a driver-VM task bound to the request's trace ID, runs the file
// operation, and writes the response unless the ring's epoch moved on.
func (b *Backend) handle(sp *sim.Proc, req request) {
	{
		tr := trace.Get(b.driverK.Env)
		rid := uint64(req.rid)
		// Bind the handler proc to the forwarded request's ID so layers that
		// only see the Env (hypervisor memory ops, IOMMU) attribute their
		// spans to the right request.
		tr.Bind(sp, rid)
		defer tr.Unbind(sp)
		dstart := tr.Now()
		sp.Advance(perf.CostPost) // deserialize the request
		tr.Span(rid, b.driverVM.Name, trace.LayerBE, "dispatch", dstart, tr.Now())
		task := b.proc.AdoptTask(fmt.Sprintf("op%d", req.seq), sp)
		conduit := &remoteConduit{hv: b.hv, guest: b.guestVM, drv: b.driverVM, ref: req.ref}
		if b.mapc != nil && req.flags&reqFlagMapHint != 0 {
			// The frontend kept this data buffer's grant alive across
			// requests: route the operation's data movement through the
			// grant-map cache. Read buffers are written (copy-to-user),
			// write buffers are read (copy-from-user).
			switch req.op {
			case opRead:
				conduit.mapc, conduit.mapKind = b.mapc, grant.KindCopyTo
			case opWrite:
				conduit.mapc, conduit.mapKind = b.mapc, grant.KindCopyFrom
			}
			conduit.fileID = req.fileID
			conduit.bufVA = mem.GuestVirt(req.arg0)
			conduit.bufLen = req.arg1
			conduit.rid = rid
		}
		restore := task.Mark(conduit)
		estart := tr.Now()
		ret, errno := b.execute(task, req)
		restore()
		if tr != nil {
			tr.Group(rid, b.driverVM.Name, trace.LayerBE, "execute "+opName(req.op), estart, tr.Now())
		}
		cstart := tr.Now()
		sp.Advance(perf.CostComplete)
		tr.Span(rid, b.driverVM.Name, trace.LayerBE, "complete", cstart, tr.Now())
		if !b.ringCurrent() {
			// The backend died (Stop, an injected driver-VM crash) or was
			// superseded (the ring's restart epoch moved on) while this
			// handler was executing. The ring now belongs to a successor
			// backend and the frontend has already been failed with EREMOTE
			// for this slot — or the slot has been reclaimed and reposted in
			// the new epoch; a late response here would corrupt the
			// successor's view of the slot.
			return
		}
		b.ring.writeResponse(req.slot, ret, int32(errno))
		b.OpsHandled++
		tr.Add("cvd.backend.ops", 1)
		b.complete(rid, false)
	}
}

// complete signals the frontend that a response is ready: a cheap
// shared-page observation if a requester is spinning, an inter-VM interrupt
// otherwise. rid labels the crossing's trace span (0 for heartbeat acks and
// untraced runs). With completion batching armed, interrupt-path completions
// accumulate and share one response IRQ under the size+deadline flush
// policy; heartbeat acks (hb) bypass the batch so watchdog latency is never
// inflated — a flag, not a rid==0 check, because rids are only allocated
// when a tracer is installed.
func (b *Backend) complete(rid uint64, hb bool) {
	if b.ring.readU32(hdrFrontendPoll) > 0 {
		if tr := trace.Get(b.hv.Env); tr != nil {
			now := tr.Now()
			tr.Span(rid, b.guestVM.Name, trace.LayerIRQ, "poll-cross", now, now.Add(perf.CostPollCross))
		}
		b.hv.Env.After(perf.CostPollCross, func() {
			// The spinning requester notices the state change on its next
			// poll iteration; the response event is triggered by the
			// frontend ISR in interrupt mode, so emulate the doorbell here.
			if fe := b.frontendDoorbell; fe != nil {
				fe()
			}
		})
		return
	}
	if b.batchSize > 0 && b.batchWait > 0 && !hb {
		b.respPending++
		if b.respPending >= b.batchSize {
			b.flushResp()
			return
		}
		if b.respPending == 1 {
			gen := b.respGen
			b.hv.Env.After(b.batchWait, func() {
				if b.respGen != gen {
					return // a size-triggered flush already covered this window
				}
				b.flushResp()
			})
		}
		return
	}
	b.hv.SendInterrupt(b.guestVM, b.vecResp)
}

// flushResp sends the one response IRQ covering every completion batched
// since the last flush. The completed slots' descriptors (done bits) are
// already in the ring — writeResponse published them — so the frontend's
// scan collects the whole vector off this single interrupt. A flush whose
// backend has died or been superseded sends nothing: the reconnect sweep
// owns those completions now.
func (b *Backend) flushResp() {
	b.respGen++
	n := b.respPending
	b.respPending = 0
	if n == 0 || !b.ringCurrent() {
		return
	}
	b.RespFlushes++
	tr := trace.Get(b.hv.Env)
	tr.Add("cvd.backend.resp.flushes", 1)
	if n > 1 {
		tr.Add("cvd.backend.resp.coalesced", uint64(n-1))
	}
	tr.ObserveCount("cvd.backend.resp.batch", uint64(n))
	b.hv.SendInterrupt(b.guestVM, b.vecResp)
}

func (b *Backend) execute(task *kernel.Task, req request) (int32, kernel.Errno) {
	ops := b.node.Ops
	toErrno := func(err error) kernel.Errno {
		if err == nil {
			return 0
		}
		if e, ok := err.(kernel.Errno); ok {
			return e
		}
		return kernel.EIO
	}
	switch req.op {
	case opOpen:
		f := &kernel.File{Node: b.node, Flags: devfileFlags(req.arg0), Proc: b.proc}
		if err := ops.Open(&kernel.FopCtx{Task: task, File: f}); err != nil {
			return -1, toErrno(err)
		}
		b.files[req.fileID] = f
		return 0, 0
	case opRelease:
		f, ok := b.files[req.fileID]
		if !ok {
			if _, warm := b.warmFiles[req.fileID]; warm {
				// A file the predecessor held, released before any other
				// operation forced a warm reopen on the successor. Re-opening
				// it just to close it again would be wasted driver work: drop
				// the warm records and report success.
				delete(b.warmFiles, req.fileID)
				delete(b.warmVMAs, req.fileID)
				if b.mapc != nil {
					b.mapc.release(req.fileID)
				}
				return 0, 0
			}
			return -1, kernel.EINVAL
		}
		delete(b.files, req.fileID)
		delete(b.vmas, req.fileID)
		if b.mapc != nil {
			// The file is going away: its cached buffer mappings with it.
			b.mapc.release(req.fileID)
		}
		return 0, toErrno(ops.Release(&kernel.FopCtx{Task: task, File: f}))
	}
	f, ok := b.lookupFile(task, req.fileID)
	if !ok {
		return -1, kernel.EINVAL
	}
	c := &kernel.FopCtx{Task: task, File: f}
	switch req.op {
	case opRead:
		n, err := ops.Read(c, mem.GuestVirt(req.arg0), int(req.arg1))
		return int32(n), toErrno(err)
	case opWrite:
		n, err := ops.Write(c, mem.GuestVirt(req.arg0), int(req.arg1))
		return int32(n), toErrno(err)
	case opIoctl:
		ret, err := ops.Ioctl(c, devfileCmd(req.arg0), mem.GuestVirt(req.arg1))
		return ret, toErrno(err)
	case opMmap:
		v := &kernel.VMA{Proc: b.proc, Start: mem.GuestVirt(req.arg0), Len: req.arg1, File: f, Pgoff: req.arg2}
		if err := ops.Mmap(c, v); err != nil {
			return -1, toErrno(err)
		}
		m := b.vmas[req.fileID]
		if m == nil {
			m = make(map[mem.GuestVirt]*kernel.VMA)
			b.vmas[req.fileID] = m
		}
		m[v.Start] = v
		return 0, 0
	case opMunmap:
		v := b.vmas[req.fileID][mem.GuestVirt(req.arg0)]
		if v == nil {
			return -1, kernel.EINVAL
		}
		delete(b.vmas[req.fileID], mem.GuestVirt(req.arg0))
		// Destroy the hypervisor (EPT) mappings for every page of the
		// range; the guest kernel has already cleared its own page tables
		// (§5.2). Pages that were never faulted in simply return an error
		// we ignore.
		for off := uint64(0); off < v.Len; off += mem.PageSize {
			_ = task.Remote.UnmapPage(v.Start + mem.GuestVirt(off))
		}
		if v.OnUnmap != nil {
			return 0, toErrno(v.OnUnmap(c, v))
		}
		return 0, 0
	case opFault:
		v := b.vmas[req.fileID][mem.GuestVirt(req.arg1)]
		if v == nil {
			return -1, kernel.EINVAL
		}
		return 0, toErrno(ops.Fault(c, v, mem.GuestVirt(req.arg0)))
	case opPoll:
		pt := b.driverK.NewPollTable()
		mask := ops.Poll(c, pt)
		if uint64(mask)&req.arg0 == 0 {
			// Nothing ready: arm a poll-wake notification so the guest
			// kernel can re-evaluate when a driver wait queue fires. The
			// scheduler wake-up of the notifier is charged before the
			// notification crosses.
			env := b.driverK.Env
			pt.Event().OnFire(func() {
				env.After(perf.CostWakeup, func() { b.notify(notifPollWake) })
			})
		}
		return int32(mask), 0
	case opFasync:
		if err := ops.Fasync(c, req.arg0 != 0); err != nil {
			return -1, toErrno(err)
		}
		f.FasyncOn = req.arg0 != 0
		return 0, 0
	}
	return -1, kernel.ENOSYS
}

// lookupFile resolves a forwarded operation's fileID against the backend's
// open-file table, lazily re-opening a file inherited from a handover
// predecessor. The reopen runs in the calling operation's own handler-task
// context, so its driver work is charged to (and traced under) the request
// that forced it. A reopen failure surfaces as an unknown fileID — EINVAL,
// the same honest errno a stale fileID has always earned.
func (b *Backend) lookupFile(task *kernel.Task, fileID uint16) (*kernel.File, bool) {
	if f, ok := b.files[fileID]; ok {
		return f, true
	}
	wf, ok := b.warmFiles[fileID]
	if !ok {
		return nil, false
	}
	delete(b.warmFiles, fileID)
	ops := b.node.Ops
	f := &kernel.File{Node: b.node, Flags: wf.flags, Proc: b.proc}
	if err := ops.Open(&kernel.FopCtx{Task: task, File: f}); err != nil {
		delete(b.warmVMAs, fileID)
		return nil, false
	}
	f.FasyncOn = wf.fasync
	b.files[fileID] = f
	// Replay the predecessor's mmaps so a post-handover munmap/fault against
	// an inherited mapping finds its VMA. EPT entries are rebuilt on demand
	// by the fault path, exactly as after a guest-side first touch.
	for _, wv := range b.warmVMAs[fileID] {
		v := &kernel.VMA{Proc: b.proc, Start: wv.start, Len: wv.len, File: f, Pgoff: wv.pgoff}
		if err := ops.Mmap(&kernel.FopCtx{Task: task, File: f}, v); err != nil {
			continue
		}
		m := b.vmas[fileID]
		if m == nil {
			m = make(map[mem.GuestVirt]*kernel.VMA)
			b.vmas[fileID] = m
		}
		m[v.Start] = v
	}
	delete(b.warmVMAs, fileID)
	b.WarmReopens++
	trace.Get(b.driverK.Env).Add("cvd.handover.warm_reopens", 1)
	return f, true
}
