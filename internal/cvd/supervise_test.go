package cvd

// Tests for the CVD layer's driver-VM supervision primitives: the heartbeat
// ring no-op, per-request deadlines with abandoned-slot reclamation, the
// death-notification hooks, and the fail-fast paths (EREMOTE on a dead
// backend, ENODEV when degraded).

import (
	"testing"

	"paradice/internal/devfile"
	"paradice/internal/faults"
	"paradice/internal/kernel"
	"paradice/internal/sim"
)

func TestHeartbeatRoundTrip(t *testing.T) {
	for _, mode := range []Mode{Interrupts, Polling} {
		t.Run(mode.String(), func(t *testing.T) {
			r := newRig(t, mode, kernel.Linux)
			acks := 0
			r.env.Spawn("watchdog", func(p *sim.Proc) {
				for i := 0; i < 3; i++ {
					if r.fe.Heartbeat(p, sim.Millisecond) {
						acks++
					}
					p.Sleep(sim.Millisecond)
				}
			})
			r.env.RunUntil(r.env.Now().Add(20 * sim.Millisecond))
			if acks != 3 {
				t.Fatalf("acked %d/3 heartbeats", acks)
			}
			if r.be.HbAcked != 3 {
				t.Fatalf("backend HbAcked = %d, want 3", r.be.HbAcked)
			}
			// The probe is a ring no-op: no request slot, no round trip.
			if r.fe.RoundTrips != 0 {
				t.Fatalf("heartbeats consumed %d request round trips", r.fe.RoundTrips)
			}
			for s := 0; s < slotCount; s++ {
				if r.fe.ring.slotState(s) != slotFree {
					t.Fatalf("slot %d not free after heartbeats", s)
				}
			}
		})
	}
}

func TestHeartbeatDeadBackendFailsFast(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux)
	r.be.Stop()
	var ok bool
	var took sim.Duration
	r.env.Spawn("watchdog", func(p *sim.Proc) {
		start := p.Now()
		ok = r.fe.Heartbeat(p, 10*sim.Millisecond)
		took = p.Now().Sub(start)
	})
	r.env.Run()
	if ok {
		t.Fatal("heartbeat to a stopped backend reported healthy")
	}
	if took >= 10*sim.Millisecond {
		t.Fatalf("dead-backend heartbeat burned the full timeout (%v)", took)
	}
}

func TestHeartbeatDropFault(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux)
	plan := faults.New(1).FailAt("cvd.heartbeat.drop", 1)
	faults.Install(r.env, plan)
	defer faults.Uninstall(r.env)
	var first, second bool
	r.env.Spawn("watchdog", func(p *sim.Proc) {
		first = r.fe.Heartbeat(p, 200*sim.Microsecond)
		second = r.fe.Heartbeat(p, 200*sim.Microsecond)
	})
	r.env.RunUntil(r.env.Now().Add(10 * sim.Millisecond))
	if first {
		t.Fatal("dropped heartbeat reported as acked")
	}
	if !second {
		t.Fatal("heartbeat after the dropped one did not recover")
	}
	if r.be.HbDropped != 1 || r.be.HbAcked != 1 {
		t.Fatalf("HbDropped=%d HbAcked=%d, want 1/1", r.be.HbDropped, r.be.HbAcked)
	}
}

func TestHeartbeatDelayFault(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux)
	// First beat delayed beyond its timeout (a miss), second delayed but
	// within it (slow-but-healthy).
	plan := faults.New(1).
		FailAtWith("cvd.heartbeat.delay", 1, uint64(500*sim.Microsecond)).
		FailAtWith("cvd.heartbeat.delay", 2, uint64(100*sim.Microsecond))
	faults.Install(r.env, plan)
	defer faults.Uninstall(r.env)
	var first, second bool
	r.env.Spawn("watchdog", func(p *sim.Proc) {
		first = r.fe.Heartbeat(p, 200*sim.Microsecond)
		p.Sleep(sim.Millisecond) // let the late ack land harmlessly
		second = r.fe.Heartbeat(p, 200*sim.Microsecond)
	})
	r.env.RunUntil(r.env.Now().Add(10 * sim.Millisecond))
	if first {
		t.Fatal("ack delayed past the timeout still reported healthy")
	}
	if !second {
		t.Fatal("ack delayed within the timeout reported as missed")
	}
}

func TestKillFiresDeathNotification(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux)
	died := false
	r.be.OnDeath(func() { died = true })
	r.be.Kill()
	if !died {
		t.Fatal("Kill did not fire the death notification")
	}
	if r.be.Alive() {
		t.Fatal("killed backend still Alive")
	}
	// Registering on an already-dead backend fires immediately.
	late := false
	r.be.OnDeath(func() { late = true })
	if !late {
		t.Fatal("OnDeath on a dead backend did not fire immediately")
	}
}

func TestOrderlyStopDoesNotFireDeathNotification(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux)
	died := false
	r.be.OnDeath(func() { died = true })
	r.be.Stop()
	if died {
		t.Fatal("orderly Stop fired the abnormal-death notification")
	}
}

func TestFastFailEREMOTEWhenBackendDead(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux)
	r.be.Stop()
	r.runApp(t, func(p *kernel.Process, tk *kernel.Task) {
		start := tk.Sim().Now()
		_, err := tk.Open("/dev/testdev", devfile.ORdWr)
		if !kernel.IsErrno(err, kernel.EREMOTE) {
			t.Fatalf("open on dead backend: err = %v, want EREMOTE", err)
		}
		if took := tk.Sim().Now().Sub(start); took > 10*sim.Microsecond {
			t.Fatalf("fast-fail took %v; it must not enqueue and wait", took)
		}
	})
	if r.fe.FastFailed == 0 {
		t.Fatal("FastFailed stat not incremented")
	}
}

func TestDegradedFailsFastENODEV(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux)
	r.fe.SetDegraded(true)
	r.runApp(t, func(p *kernel.Process, tk *kernel.Task) {
		if _, err := tk.Open("/dev/testdev", devfile.ORdWr); !kernel.IsErrno(err, kernel.ENODEV) {
			t.Fatalf("open on degraded device: err = %v, want ENODEV", err)
		}
		// A successful restart clears the flag and the device serves again.
		r.fe.SetDegraded(false)
		fd, err := tk.Open("/dev/testdev", devfile.ORdWr)
		if err != nil {
			t.Fatalf("open after un-degrade: %v", err)
		}
		if err := tk.Close(fd); err != nil {
			t.Fatal(err)
		}
	})
	if !kernelStatOK(r.fe.FastFailed, 1) {
		t.Fatalf("FastFailed = %d, want >= 1", r.fe.FastFailed)
	}
}

func kernelStatOK(got uint64, min uint64) bool { return got >= min }

func TestRequestDeadlineTimesOutAndReclaims(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux)
	const deadline = 2 * sim.Millisecond
	r.fe.SetDeadline(deadline)
	r.runApp(t, func(p *kernel.Process, tk *kernel.Task) {
		fd, err := tk.Open("/dev/testdev", devfile.ORdWr)
		if err != nil {
			t.Fatal(err)
		}
		rbuf, err := p.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		// Nothing to read: the handler blocks in the driver's wait queue
		// until the deadline fires on the frontend side.
		start := tk.Sim().Now()
		_, err = tk.Read(fd, rbuf, 16)
		if !kernel.IsErrno(err, kernel.ETIMEDOUT) {
			t.Fatalf("blocked read: err = %v, want ETIMEDOUT", err)
		}
		if took := tk.Sim().Now().Sub(start); took < deadline {
			t.Fatalf("read failed after %v, before the %v deadline", took, deadline)
		}

		// The abandoned handler is still parked in the driver. Feed it: it
		// wakes, consumes the bytes, and its late response (EFAULT — the
		// issuer's grant is gone) is discarded while the slot is reclaimed.
		payload := []byte("sixteen-bytes-ok")
		wsrc, err := p.AllocBytes(payload)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Write(fd, wsrc, len(payload)); err != nil {
			t.Fatal(err)
		}
		// Fresh data for a fresh read, which must succeed normally.
		if _, err := tk.Write(fd, wsrc, len(payload)); err != nil {
			t.Fatal(err)
		}
		n, err := tk.Read(fd, rbuf, len(payload))
		if err != nil || n != len(payload) {
			t.Fatalf("read after reclaim: n=%d err=%v", n, err)
		}
		if err := tk.Close(fd); err != nil {
			t.Fatal(err)
		}
	})
	if r.fe.TimedOut != 1 {
		t.Fatalf("TimedOut = %d, want 1", r.fe.TimedOut)
	}
	// No slot leaked: everything is back to free.
	for s := 0; s < slotCount; s++ {
		if st := r.fe.ring.slotState(s); st != slotFree {
			t.Fatalf("slot %d leaked in state %d", s, st)
		}
		if r.fe.abandoned[s] {
			t.Fatalf("slot %d still marked abandoned", s)
		}
	}
}

func TestReconnectReclaimsAbandonedSlot(t *testing.T) {
	r := newRig(t, Interrupts, kernel.Linux)
	r.fe.SetDeadline(sim.Millisecond)
	r.runApp(t, func(p *kernel.Process, tk *kernel.Task) {
		fd, err := tk.Open("/dev/testdev", devfile.ORdWr)
		if err != nil {
			t.Fatal(err)
		}
		rbuf, err := p.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Read(fd, rbuf, 16); !kernel.IsErrno(err, kernel.ETIMEDOUT) {
			t.Fatalf("err = %v, want ETIMEDOUT", err)
		}
		// The driver VM dies with the operation still abandoned in its
		// queue; the restart's failInflight sweep must reclaim the slot
		// without waking anyone (the issuer already left with ETIMEDOUT).
		r.be.Stop()
		driverVM2, err := r.h.CreateVM("driver2", 32<<20)
		if err != nil {
			t.Fatal(err)
		}
		driverK2 := kernel.New("driver2", kernel.Linux, r.env, driverVM2.Space, driverVM2.RAM)
		drv2 := &testDriver{k: driverK2, wq: driverK2.NewWaitQueue("testdrv2")}
		driverK2.RegisterDevice("/dev/testdev", drv2, drv2)
		if _, err := Reconnect(r.fe, r.h, driverVM2, driverK2, "/dev/testdev"); err != nil {
			t.Fatal(err)
		}
		for s := 0; s < slotCount; s++ {
			if st := r.fe.ring.slotState(s); st != slotFree {
				t.Fatalf("slot %d not reclaimed by Reconnect (state %d)", s, st)
			}
		}
	})
}
