package supervise

// Unit tests against a fake Target: the supervisor's detection, backoff,
// budget, and budget-reset logic are exercised here in isolation; the
// integration with a real Paradice machine (real CVD heartbeats, real
// restarts) lives in the root package's supervision_test.go.

import (
	"fmt"
	"testing"

	"paradice/internal/sim"
)

// fakeChannel mimics a CVD connection. Heartbeat consumes virtual time the
// way the real one does: a responsive channel answers after ackDelay, an
// unresponsive one eats the whole timeout.
type fakeChannel struct {
	id         string
	alive      bool
	responsive bool
	ackDelay   sim.Duration
	degraded   bool
	deathFn    func()
}

func (c *fakeChannel) ID() string { return c.id }

func (c *fakeChannel) Heartbeat(p *sim.Proc, timeout sim.Duration) bool {
	if !c.alive {
		return false
	}
	if !c.responsive || c.ackDelay > timeout {
		p.Sleep(timeout)
		return false
	}
	p.Sleep(c.ackDelay)
	return true
}

func (c *fakeChannel) Alive() bool { return c.alive }

func (c *fakeChannel) OnDeath(fn func()) {
	if !c.alive {
		fn()
		return
	}
	c.deathFn = fn
}

func (c *fakeChannel) SetDegraded(on bool) { c.degraded = on }

// kill is the injected-death path: the channel goes dead and the registered
// notification fires, as Backend.Kill does.
func (c *fakeChannel) kill() {
	c.alive = false
	if fn := c.deathFn; fn != nil {
		c.deathFn = nil
		fn()
	}
}

// fakeTarget restarts by resurrecting every channel — unless restartErr is
// set, in which case the attempt fails and the machine stays as it is.
type fakeTarget struct {
	chans      []*fakeChannel
	restarts   int
	restartErr error
	onRestart  func() // extra behavior per restart (e.g. re-kill)
}

func (t *fakeTarget) Channels() []Channel {
	out := make([]Channel, len(t.chans))
	for i, c := range t.chans {
		out[i] = c
	}
	return out
}

func (t *fakeTarget) Restart() error {
	t.restarts++
	if t.restartErr != nil {
		return t.restartErr
	}
	for _, c := range t.chans {
		c.alive, c.responsive = true, true
	}
	if t.onRestart != nil {
		t.onRestart()
	}
	return nil
}

func newFakeRig(n int) (*sim.Env, *fakeTarget) {
	env := sim.NewEnv()
	tgt := &fakeTarget{}
	for i := 0; i < n; i++ {
		tgt.chans = append(tgt.chans, &fakeChannel{
			id: fmt.Sprintf("guest:/dev/fake%d", i), alive: true, responsive: true,
			ackDelay: 10 * sim.Microsecond,
		})
	}
	return env, tgt
}

var testCfg = Config{
	HeartbeatEvery:   sim.Millisecond,
	HeartbeatTimeout: 100 * sim.Microsecond,
	Misses:           2,
	BackoffBase:      sim.Millisecond,
	BackoffCap:       4 * sim.Millisecond,
	MaxRestarts:      4,
	StableAfter:      10 * sim.Millisecond,
}

func TestHealthyChannelsNeverRestart(t *testing.T) {
	env, tgt := newFakeRig(3)
	s := Start(env, tgt, testCfg)
	env.RunUntil(env.Now().Add(50 * sim.Millisecond))
	if tgt.restarts != 0 {
		t.Fatalf("healthy machine restarted %d times", tgt.restarts)
	}
	if got := s.State(); got != StateHealthy {
		t.Fatalf("state = %v, want healthy", got)
	}
	if len(s.Changes()) != 0 {
		t.Fatalf("healthy machine logged state changes: %v", s.Changes())
	}
	// ~50 sweeps x 3 channels.
	if s.HeartbeatsSent < 100 {
		t.Fatalf("HeartbeatsSent = %d, want >= 100", s.HeartbeatsSent)
	}
	if s.HeartbeatsMissed != 0 {
		t.Fatalf("HeartbeatsMissed = %d, want 0", s.HeartbeatsMissed)
	}
	s.Stop()
	env.Run()
}

func TestKMissDetectionHealsAndLogsMTTR(t *testing.T) {
	env, tgt := newFakeRig(2)
	s := Start(env, tgt, testCfg)
	// The driver VM goes silent (but not dead) at t=5ms.
	env.After(5*sim.Millisecond, func() { tgt.chans[0].responsive = false })
	env.RunUntil(env.Now().Add(50 * sim.Millisecond))

	if tgt.restarts != 1 {
		t.Fatalf("restarts = %d, want exactly 1", tgt.restarts)
	}
	if got := s.State(); got != StateHealthy {
		t.Fatalf("state = %v, want healthy after recovery", got)
	}
	chg := s.Changes()
	if len(chg) != 2 || chg[0].State != StateRestarting || chg[1].State != StateHealthy {
		t.Fatalf("change log = %+v, want [restarting, healthy]", chg)
	}
	// Detection needed exactly Misses consecutive missed beats.
	if s.HeartbeatsMissed != uint64(testCfg.Misses) {
		t.Fatalf("HeartbeatsMissed = %d, want %d", s.HeartbeatsMissed, testCfg.Misses)
	}
	if mttr := s.MTTR(); mttr <= 0 {
		t.Fatalf("MTTR = %v, want > 0", mttr)
	}
	s.Stop()
	env.Run()
}

func TestDeathNotificationBeatsTheSweep(t *testing.T) {
	env, tgt := newFakeRig(1)
	cfg := testCfg
	cfg.HeartbeatEvery = 20 * sim.Millisecond // sweeps are rare...
	s := Start(env, tgt, cfg)
	var killedAt, restartedAt sim.Time
	env.After(sim.Millisecond, func() {
		killedAt = env.Now()
		tgt.chans[0].kill()
	})
	env.RunUntil(env.Now().Add(100 * sim.Millisecond))
	if tgt.restarts != 1 {
		t.Fatalf("restarts = %d, want 1", tgt.restarts)
	}
	for _, c := range s.Changes() {
		if c.State == StateHealthy {
			restartedAt = c.At
		}
	}
	// ...but the OnDeath kick wakes the watchdog immediately: recovery
	// completes within backoff + verify-sweep, far inside one sweep period.
	if lat := restartedAt.Sub(killedAt); lat > 2*sim.Millisecond {
		t.Fatalf("detection+recovery took %v; the death notification should beat the %v sweep period",
			lat, cfg.HeartbeatEvery)
	}
	s.Stop()
	env.Run()
}

func TestBackoffScheduleThenDegraded(t *testing.T) {
	env, tgt := newFakeRig(2)
	tgt.restartErr = fmt.Errorf("replacement driver VM refuses to boot")
	s := Start(env, tgt, testCfg)
	env.After(sim.Millisecond, func() { tgt.chans[0].kill() })
	env.RunUntil(env.Now().Add(200 * sim.Millisecond))

	if got := s.State(); got != StateDegraded {
		t.Fatalf("state = %v, want degraded", got)
	}
	if !s.Stopped() {
		t.Fatal("degraded supervisor should stop itself")
	}
	if tgt.restarts != testCfg.MaxRestarts {
		t.Fatalf("restart attempts = %d, want the full budget %d", tgt.restarts, testCfg.MaxRestarts)
	}

	// The Restarting entries must be spaced by the exponential schedule:
	// base, 2*base, ... capped. (Restart attempts themselves fail instantly
	// here, so consecutive entry gaps are exactly the backoff sleeps.)
	var restartingAt []sim.Time
	for _, c := range s.Changes() {
		if c.State == StateRestarting {
			restartingAt = append(restartingAt, c.At)
		}
	}
	if len(restartingAt) != testCfg.MaxRestarts {
		t.Fatalf("%d restarting entries, want %d", len(restartingAt), testCfg.MaxRestarts)
	}
	want := []sim.Duration{sim.Millisecond, 2 * sim.Millisecond, 4 * sim.Millisecond}
	for i, w := range want {
		if got := restartingAt[i+1].Sub(restartingAt[i]); got != w {
			t.Fatalf("backoff gap %d = %v, want %v", i, got, w)
		}
	}

	// Selective degradation: the dead channel fails fast, the healthy one
	// was left alone.
	if !tgt.chans[0].degraded {
		t.Fatal("dead channel not degraded")
	}
	if tgt.chans[1].degraded {
		t.Fatal("healthy channel was degraded too")
	}
	last := s.Changes()[len(s.Changes())-1]
	if last.State != StateDegraded {
		t.Fatalf("last change = %+v, want degraded", last)
	}
	env.Run() // already stopped; calendar drains
}

func TestCrashLoopExhaustsBudget(t *testing.T) {
	env, tgt := newFakeRig(1)
	// Restarts "succeed" but the fault that killed the driver VM re-kills
	// every replacement: the verify-sweep must catch it and keep climbing
	// the schedule toward degraded.
	tgt.onRestart = func() { tgt.chans[0].alive = false }
	s := Start(env, tgt, testCfg)
	env.After(sim.Millisecond, func() { tgt.chans[0].kill() })
	env.RunUntil(env.Now().Add(200 * sim.Millisecond))
	if got := s.State(); got != StateDegraded {
		t.Fatalf("state = %v, want degraded after a crash loop", got)
	}
	if tgt.restarts != testCfg.MaxRestarts {
		t.Fatalf("restart attempts = %d, want %d", tgt.restarts, testCfg.MaxRestarts)
	}
	env.Run()
}

func TestStableWindowResetsBudget(t *testing.T) {
	env, tgt := newFakeRig(1)
	s := Start(env, tgt, testCfg)
	// Two failures, separated by far more than StableAfter of healthy
	// uptime: the second episode must start back at the base backoff, not
	// one step up the schedule.
	env.After(2*sim.Millisecond, func() { tgt.chans[0].kill() })
	env.After(80*sim.Millisecond, func() { tgt.chans[0].kill() })
	env.RunUntil(env.Now().Add(200 * sim.Millisecond))
	if tgt.restarts != 2 {
		t.Fatalf("restarts = %d, want 2", tgt.restarts)
	}
	var attempts []int
	for _, c := range s.Changes() {
		if c.State == StateRestarting {
			attempts = append(attempts, c.Attempt)
		}
	}
	if len(attempts) != 2 || attempts[0] != 0 || attempts[1] != 0 {
		t.Fatalf("budget positions = %v, want [0 0] (reset after stable window)", attempts)
	}
	s.Stop()
	env.Run()
}

func TestHandleProcPanicFiltersByProcName(t *testing.T) {
	env, tgt := newFakeRig(1)
	s := Start(env, tgt, testCfg)
	if !s.HandleProcPanic(&sim.ProcPanic{Proc: "cvd-dispatch-/dev/fake0", Value: "oops"}) {
		t.Fatal("dispatcher panic not consumed")
	}
	if !s.HandleProcPanic(&sim.ProcPanic{Proc: "cvd-op-7", Value: "oops"}) {
		t.Fatal("op-handler panic not consumed")
	}
	if s.HandleProcPanic(&sim.ProcPanic{Proc: "stress-3", Value: "oops"}) {
		t.Fatal("unrelated proc panic must not be consumed")
	}
	// The consumed panic counts as a failure: the watchdog restarts.
	env.RunUntil(env.Now().Add(50 * sim.Millisecond))
	if tgt.restarts == 0 {
		t.Fatal("consumed dispatcher panic did not trigger a restart")
	}
	s.Stop()
	env.Run()
}

func TestDegradedSupervisorConsumesNoMorePanics(t *testing.T) {
	env, tgt := newFakeRig(1)
	tgt.restartErr = fmt.Errorf("no boot")
	s := Start(env, tgt, testCfg)
	env.After(sim.Millisecond, func() { tgt.chans[0].kill() })
	env.RunUntil(env.Now().Add(200 * sim.Millisecond))
	if s.State() != StateDegraded {
		t.Fatalf("state = %v, want degraded", s.State())
	}
	if s.HandleProcPanic(&sim.ProcPanic{Proc: "cvd-dispatch-x", Value: "late"}) {
		t.Fatal("degraded supervisor must stop absorbing panics")
	}
}

func TestBackoffFunction(t *testing.T) {
	s := &Supervisor{cfg: testCfg}
	want := []sim.Duration{
		sim.Millisecond, 2 * sim.Millisecond, 4 * sim.Millisecond,
		4 * sim.Millisecond, 4 * sim.Millisecond,
	}
	for i, w := range want {
		if got := s.backoff(i); got != w {
			t.Fatalf("backoff(%d) = %v, want %v", i, got, w)
		}
	}
}
