// SLO burn-rate watchdog: the measurement half of supervision. The restart
// watchdog (supervise.go) answers "is the driver VM alive"; the SLO
// watchdog answers "is it serving well enough" — per-QoS-class latency and
// goodput objectives evaluated over sliding virtual-clock windows of
// flight-recorder digests, with the burn rate (error budget consumed per
// window relative to the budget) as the alerting signal, SRE-style. A burn
// alert lands in the same supervision state log as restarts and planned
// maintenance, so the log stays the single chronological record of
// everything that went wrong, and carries a deterministic diagnostic dump:
// which objective burned, how hard, and which request's critical path is
// the exemplar.

package supervise

import (
	"fmt"

	"paradice/internal/sim"
	"paradice/internal/trace"
)

// Objective is one per-class service-level objective. An objective with a
// LatencyThreshold gates tail latency; one with a MinGoodput gates the
// completion rate (shed or errno-failed requests burn it). One objective
// can carry both.
type Objective struct {
	// Name labels the objective in alerts ("rt-latency").
	Name string
	// Class is the QoS class the objective applies to.
	Class uint8
	// LatencyThreshold: a request slower than this is over-SLO. Zero
	// disables the latency gate.
	LatencyThreshold sim.Duration
	// LatencyBudget is the fraction of requests allowed over the threshold
	// (default 0.01 — a p99 objective).
	LatencyBudget float64
	// MinGoodput is the minimum fraction of requests that must complete
	// successfully (not shed, errno 0). Zero disables the goodput gate.
	MinGoodput float64
}

// SLOConfig tunes the watchdog. Zero values select the defaults.
type SLOConfig struct {
	// Window is the sliding evaluation window (default 2 ms of virtual
	// time). Digests whose completion falls inside (now-Window, now] count.
	Window sim.Duration
	// Every is the evaluation period (default 500 µs).
	Every sim.Duration
	// BurnRate is the alerting threshold: an objective alerts when it is
	// consuming its error budget at least this many times faster than
	// allowed (default 2.0).
	BurnRate float64
	// MinRequests suppresses alerts on windows with fewer samples than this
	// (default 16) — a single slow request in an idle window is not a burn.
	MinRequests int
	// Objectives are the per-class objectives to evaluate.
	Objectives []Objective
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Window == 0 {
		c.Window = 2 * sim.Millisecond
	}
	if c.Every == 0 {
		c.Every = 500 * sim.Microsecond
	}
	if c.BurnRate == 0 {
		c.BurnRate = 2.0
	}
	if c.MinRequests == 0 {
		c.MinRequests = 16
	}
	for i := range c.Objectives {
		if c.Objectives[i].LatencyThreshold > 0 && c.Objectives[i].LatencyBudget == 0 {
			c.Objectives[i].LatencyBudget = 0.01
		}
	}
	return c
}

// BurnAlert is one recorded burn: the objective, how hard it burned, and
// the deterministic diagnostic dump.
type BurnAlert struct {
	At        sim.Time
	Objective string
	Kind      string // "latency" or "goodput"
	Burn      float64
	Window    sim.Duration
	Requests  int
	Bad       int
	Dump      string
}

// SLOWatchdog evaluates the objectives over the flight recorder's digests
// on its own sim proc. Like the Supervisor's watchdog it keeps the event
// calendar non-empty while running: Stop it before draining the calendar
// with Run, or drive the simulation with RunUntil.
type SLOWatchdog struct {
	env     *sim.Env
	fr      *trace.FlightRecorder
	sup     *Supervisor // optional: burn alerts land in its state log
	cfg     SLOConfig
	kick    *sim.Event
	stopped bool
	burning map[string]bool // objective+kind currently over threshold
	alerts  []BurnAlert
}

// StartSLO spawns the burn-rate watchdog on env, reading fr's digests.
// sup may be nil (alerts are then only recorded locally).
func StartSLO(env *sim.Env, fr *trace.FlightRecorder, sup *Supervisor, cfg SLOConfig) *SLOWatchdog {
	w := &SLOWatchdog{
		env:     env,
		fr:      fr,
		sup:     sup,
		cfg:     cfg.withDefaults(),
		kick:    env.NewEvent("slo-kick"),
		burning: make(map[string]bool),
	}
	env.Spawn("slo-watchdog", w.run)
	return w
}

// Stop terminates the watchdog proc.
func (w *SLOWatchdog) Stop() {
	w.stopped = true
	w.kick.Trigger()
}

// Stopped reports whether the watchdog has exited or been told to.
func (w *SLOWatchdog) Stopped() bool { return w.stopped }

// Alerts returns every burn alert recorded so far.
func (w *SLOWatchdog) Alerts() []BurnAlert { return w.alerts }

func (w *SLOWatchdog) run(p *sim.Proc) {
	for {
		if w.stopped {
			return
		}
		w.kick.Reset()
		p.WaitTimeout(w.kick, w.cfg.Every)
		if w.stopped {
			return
		}
		w.Evaluate(p.Now())
	}
}

// Evaluate runs one evaluation pass over the window ending at now. Exposed
// so tests (and one-shot tools) can evaluate without the proc.
func (w *SLOWatchdog) Evaluate(now sim.Time) {
	if w.fr == nil {
		return
	}
	digests := w.fr.Digests()
	since := now.Add(-w.cfg.Window)
	for _, obj := range w.cfg.Objectives {
		var window []trace.Digest
		for _, d := range digests {
			if d.Class == obj.Class && d.End > since && d.End <= now {
				window = append(window, d)
			}
		}
		if obj.LatencyThreshold > 0 {
			bad := 0
			for _, d := range window {
				if d.Latency() > obj.LatencyThreshold {
					bad++
				}
			}
			w.gate(now, obj, "latency", obj.LatencyBudget, window, bad)
		}
		if obj.MinGoodput > 0 {
			bad := 0
			for _, d := range window {
				if d.Shed || d.Errno != 0 {
					bad++
				}
			}
			w.gate(now, obj, "goodput", 1-obj.MinGoodput, window, bad)
		}
	}
}

// gate compares one objective dimension's bad fraction against its budget
// and raises (or clears) the burn alert. Alerts are edge-triggered: one
// alert per excursion above BurnRate, re-armed when the burn falls back
// under 1 (budget-rate consumption).
func (w *SLOWatchdog) gate(now sim.Time, obj Objective, kind string, budget float64, window []trace.Digest, bad int) {
	key := obj.Name + "/" + kind
	n := len(window)
	if budget <= 0 {
		return
	}
	if n == 0 {
		// An idle window is not burning: clear the latch so the next real
		// excursion alerts again.
		delete(w.burning, key)
		return
	}
	burn := (float64(bad) / float64(n)) / budget
	if burn < 1 {
		delete(w.burning, key)
		return
	}
	if w.burning[key] || n < w.cfg.MinRequests || burn < w.cfg.BurnRate {
		return
	}
	w.burning[key] = true
	alert := BurnAlert{
		At:        now,
		Objective: obj.Name,
		Kind:      kind,
		Burn:      burn,
		Window:    w.cfg.Window,
		Requests:  n,
		Bad:       bad,
		Dump:      w.dump(obj, kind, window),
	}
	w.alerts = append(w.alerts, alert)
	summary := fmt.Sprintf("SLO burn %s/%s: burn=%.2fx bad=%d/%d over %s", obj.Name, kind, burn, bad, n, w.cfg.Window)
	if w.sup != nil {
		w.sup.NoteAlert(summary)
	} else if tr := trace.Get(w.env); tr != nil {
		tr.Instant(0, "driver-vm", trace.LayerSupervisor, "alert", summary)
		tr.Add("supervise.alerts", 1)
	}
}

// dump builds the deterministic diagnostic: the worst request in the
// window (by latency, first-completed on ties) and its dominant
// critical-path hop — the "where is the p99 living right now" answer an
// operator wants in the alert itself.
func (w *SLOWatchdog) dump(obj Objective, kind string, window []trace.Digest) string {
	var worst trace.Digest
	for _, d := range window {
		if d.Latency() > worst.Latency() {
			worst = d
		}
	}
	dom, domDur := trace.HopQueue, sim.Duration(-1)
	for h := trace.Hop(0); h < trace.HopCount; h++ {
		if worst.Hops[h] > domDur {
			dom, domDur = h, worst.Hops[h]
		}
	}
	return fmt.Sprintf("objective=%s kind=%s class=%d worst rid=%d op=%q lat=%dns errno=%d shed=%t episode=%t dominant-hop=%s (%dns)",
		obj.Name, kind, obj.Class, worst.RID, worst.Op, int64(worst.Latency()),
		worst.Errno, worst.Shed, worst.Episode, dom, int64(domDur))
}
