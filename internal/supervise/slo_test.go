package supervise

import (
	"strings"
	"testing"

	"paradice/internal/sim"
	"paradice/internal/trace"
)

// feed pushes n digests of one class completing at end, bad of them over
// lat (or shed when shed is set).
func feed(fr *trace.FlightRecorder, class uint8, end sim.Time, n, bad int, lat, slow sim.Duration, shed bool) {
	for i := 0; i < n; i++ {
		d := trace.Digest{RID: uint64(i + 1), VM: "guest", Op: "write /dev/a", Class: class, End: end}
		l := lat
		if i < bad {
			if shed {
				d.Shed = true
				d.Errno = 11
			} else {
				l = slow
			}
		}
		d.Start = end.Add(-l)
		d.Hops[trace.HopBackend] = l
		fr.Push(d)
	}
}

func sloCfg(objs ...Objective) SLOConfig {
	return SLOConfig{Window: 2 * sim.Millisecond, Every: 500 * sim.Microsecond, Objectives: objs}
}

// A latency objective burning at >= BurnRate raises exactly one alert per
// excursion, with the deterministic diagnostic dump attached.
func TestSLOLatencyBurnAlert(t *testing.T) {
	env := sim.NewEnv()
	fr := trace.NewFlightRecorder(trace.FlightConfig{})
	w := StartSLO(env, fr, nil, sloCfg(Objective{
		Name: "rt", Class: 1, LatencyThreshold: 1000, LatencyBudget: 0.01,
	}))
	w.Stop()
	env.Run()

	// 100 requests, 10 over threshold: burn = (10/100)/0.01 = 10x.
	feed(fr, 1, sim.Time(1*sim.Millisecond), 100, 10, 500, 5000, false)
	w.Evaluate(sim.Time(1 * sim.Millisecond))
	alerts := w.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1", len(alerts))
	}
	a := alerts[0]
	if a.Objective != "rt" || a.Kind != "latency" || a.Requests != 100 || a.Bad != 10 {
		t.Fatalf("alert = %+v", a)
	}
	if a.Burn < 9.99 || a.Burn > 10.01 {
		t.Errorf("burn = %v, want 10x", a.Burn)
	}
	for _, want := range []string{"objective=rt", "kind=latency", "class=1", "lat=5000ns", "dominant-hop=backend"} {
		if !strings.Contains(a.Dump, want) {
			t.Errorf("dump missing %q: %s", want, a.Dump)
		}
	}

	// Still burning: edge-triggered, no second alert.
	w.Evaluate(sim.Time(1 * sim.Millisecond))
	if len(w.Alerts()) != 1 {
		t.Fatalf("re-alerted while still burning")
	}

	// The window slides past the burn (burn < 1 clears), then a fresh burn
	// re-alerts.
	w.Evaluate(sim.Time(10 * sim.Millisecond))
	feed(fr, 1, sim.Time(12*sim.Millisecond), 50, 25, 500, 5000, false)
	w.Evaluate(sim.Time(12 * sim.Millisecond))
	if len(w.Alerts()) != 2 {
		t.Fatalf("alerts after re-burn = %d, want 2", len(w.Alerts()))
	}
}

// A goodput objective burns on shed/errno requests, and the alert lands in
// the supervisor's state-change log via NoteAlert.
func TestSLOGoodputBurnIntoSupervisorLog(t *testing.T) {
	env := sim.NewEnv()
	tr := trace.New()
	trace.Install(env, tr)
	defer trace.Uninstall(env)
	sup := Start(env, &fakeTarget{}, Config{})
	fr := trace.NewFlightRecorder(trace.FlightConfig{})
	w := StartSLO(env, fr, sup, sloCfg(Objective{
		Name: "bulk", Class: 2, MinGoodput: 0.9,
	}))
	env.RunUntil(env.Now().Add(1 * sim.Millisecond))
	sup.Stop()
	w.Stop()
	env.Run()

	// 40 requests, 20 shed: goodput 50% against a 90% objective,
	// burn = 0.5/0.1 = 5x.
	feed(fr, 2, sim.Time(1*sim.Millisecond), 40, 20, 500, 500, true)
	w.Evaluate(sim.Time(1 * sim.Millisecond))
	if len(w.Alerts()) != 1 || w.Alerts()[0].Kind != "goodput" {
		t.Fatalf("alerts = %+v, want one goodput burn", w.Alerts())
	}
	found := false
	for _, c := range sup.Changes() {
		if strings.Contains(c.Reason, "alert: SLO burn bulk/goodput") {
			found = true
			if c.State != sup.State() {
				t.Errorf("alert logged with state %v, want current state", c.State)
			}
		}
	}
	if !found {
		t.Fatalf("burn alert missing from supervision log: %+v", sup.Changes())
	}
	if tr.Metrics().Counter("supervise.alerts") != 1 {
		t.Errorf("supervise.alerts = %d, want 1", tr.Metrics().Counter("supervise.alerts"))
	}
}

// Idle or thin windows never alert: MinRequests suppresses small-sample
// noise, and classes outside the objective are ignored.
func TestSLOThinWindowSuppressed(t *testing.T) {
	env := sim.NewEnv()
	fr := trace.NewFlightRecorder(trace.FlightConfig{})
	w := StartSLO(env, fr, nil, sloCfg(Objective{
		Name: "rt", Class: 1, LatencyThreshold: 1000,
	}))
	w.Stop()
	env.Run()

	// 8 requests, all slow — under the default MinRequests of 16.
	feed(fr, 1, sim.Time(1*sim.Millisecond), 8, 8, 500, 5000, false)
	// A different class burning hard is not this objective's problem.
	feed(fr, 3, sim.Time(1*sim.Millisecond), 100, 100, 500, 5000, false)
	w.Evaluate(sim.Time(1 * sim.Millisecond))
	if len(w.Alerts()) != 0 {
		t.Fatalf("alerts = %+v, want none", w.Alerts())
	}
}

// The watchdog proc evaluates on the virtual clock and stops cleanly — the
// calendar drains after Stop.
func TestSLOWatchdogProcLifecycle(t *testing.T) {
	env := sim.NewEnv()
	fr := trace.NewFlightRecorder(trace.FlightConfig{})
	w := StartSLO(env, fr, nil, SLOConfig{Objectives: []Objective{{
		Name: "rt", Class: 0, LatencyThreshold: 1000,
	}}})
	feed(fr, 0, sim.Time(200*sim.Microsecond), 20, 20, 500, 5000, false)
	env.RunUntil(env.Now().Add(1 * sim.Millisecond))
	if len(w.Alerts()) != 1 {
		t.Fatalf("proc-driven evaluation found %d alerts, want 1", len(w.Alerts()))
	}
	w.Stop()
	env.Run() // must drain; a live watchdog would spin the calendar forever
	if !w.Stopped() {
		t.Fatal("watchdog not stopped")
	}
}
