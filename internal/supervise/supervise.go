// Package supervise closes the recovery loop §8 of the paper leaves open.
// The paper proposes surviving a guest-broken device by "detect[ing] the
// broken device and restart[ing] it by simply restarting the driver VM";
// the repository has had the restart (Machine.RestartDriverVM) since the
// seed, but nothing *detected* failure — a guest whose backend silently
// died could block forever, and recovery required an operator.
//
// A Supervisor is that detector and operator: a watchdog process that pings
// every CVD channel with virtual-clock heartbeats (a cheap ring no-op that
// consumes no request slot), declares the driver VM dead on K consecutive
// missed deadlines, on a backend death notification (an explicit fault-plan
// kill), or on a sim.ProcPanic from a backend process (a driver oops), and
// then drives the restart itself under a bounded exponential-backoff
// budget. Every restart costs perf.CostDriverVMRestart of virtual time, so
// MTTR — detection latency plus backoff plus reboot — is a measurable
// virtual-clock quantity (see the "Recovery" section of EXPERIMENTS.md).
//
// When the budget is exhausted (a crash-looping driver VM, e.g. a fault
// plan that re-kills every new backend), the supervisor gives up and enters
// degraded mode: channels that are dead fail every operation fast with
// ENODEV, channels that are healthy keep their working backends, and the
// state-change log records the whole episode for tests and experiments.
//
// The watchdog keeps the event calendar non-empty for as long as it runs:
// drive supervised simulations with RunUntil, or Stop the supervisor before
// draining the calendar with Run. A degraded supervisor stops on its own.
package supervise

import (
	"fmt"
	"strings"

	"paradice/internal/sim"
	"paradice/internal/trace"
)

// Channel is one supervised CVD connection (one guest VM × one device
// file). The paradice Machine adapts its frontend/backend pairs to this;
// harnesses can supervise bare cvd rigs the same way. Identity must be
// stable across driver-VM restarts (the frontend side survives; the backend
// side is rebuilt), which is why the supervisor keys its bookkeeping on
// ID() rather than on the value.
type Channel interface {
	// ID names the channel, e.g. "guest0:/dev/dri/card0".
	ID() string
	// Heartbeat posts one liveness probe and waits up to timeout for the
	// backend's echo, on the supervisor's sim proc.
	Heartbeat(p *sim.Proc, timeout sim.Duration) bool
	// Alive reports whether the channel's current backend dispatcher is
	// still serving (false after an injected kill or orderly stop).
	Alive() bool
	// OnDeath registers an immediate-notification callback on the current
	// backend; re-registered by the supervisor after every restart.
	OnDeath(fn func())
	// SetDegraded enters/leaves fail-fast ENODEV mode on the frontend.
	SetDegraded(on bool)
}

// Target is the machine under supervision.
type Target interface {
	// Channels returns the current supervised channels. Called fresh every
	// sweep, so channels added after Start (new guests, new device files)
	// are picked up automatically.
	Channels() []Channel
	// Restart performs the §8 recovery — restart the driver VM and
	// reconnect every channel. It is invoked from the watchdog's sim proc,
	// so time it charges (perf.CostDriverVMRestart) advances the clock.
	Restart() error
}

// State is the supervisor's view of the driver VM.
type State int

// Supervisor states.
const (
	// StateHealthy: every supervised channel answers heartbeats.
	StateHealthy State = iota
	// StateRestarting: failure detected; restart attempts in progress.
	StateRestarting
	// StateDegraded: restart budget exhausted. Dead channels fail fast
	// with ENODEV; the supervisor has stopped.
	StateDegraded
)

func (s State) String() string {
	switch s {
	case StateRestarting:
		return "restarting"
	case StateDegraded:
		return "degraded"
	default:
		return "healthy"
	}
}

// Change is one entry of the queryable state-change log.
type Change struct {
	At      sim.Time
	State   State
	Reason  string
	Attempt int // consecutive restart attempts so far (budget position)
}

// Config tunes the supervisor. Zero values select the defaults.
type Config struct {
	// HeartbeatEvery is the watchdog period (default 2 ms).
	HeartbeatEvery sim.Duration
	// HeartbeatTimeout is how long one heartbeat may take before it counts
	// as missed (default 200 µs — a healthy ack needs ~2 inter-VM
	// interrupts ≈ 32 µs, so the default leaves a generous 6× margin for a
	// slow-but-healthy driver VM).
	HeartbeatTimeout sim.Duration
	// Misses is how many consecutive missed heartbeats on one channel
	// declare the driver VM dead (default 3).
	Misses int
	// BackoffBase is the delay before the first restart attempt; each
	// consecutive attempt doubles it (default 2 ms).
	BackoffBase sim.Duration
	// BackoffCap bounds the exponential backoff (default 64 ms).
	BackoffCap sim.Duration
	// MaxRestarts is the consecutive-restart budget; exhausting it enters
	// degraded mode (default 5).
	MaxRestarts int
	// StableAfter is how long the machine must stay healthy after a
	// restart before the consecutive-attempt counter resets (default
	// 250 ms). A driver VM that dies again within the window is treated as
	// crash-looping and keeps climbing the backoff schedule.
	StableAfter sim.Duration
	// OwnsProc, when set, filters which panicking CVD backend procs this
	// supervisor consumes — a machine with several driver-VM shards runs one
	// supervisor per shard, and a panic on shard 2's dispatcher must charge
	// shard 2's restart budget, not shard 0's. nil owns every CVD proc (the
	// single-driver-VM case).
	OwnsProc func(proc string) bool
}

func (c Config) withDefaults() Config {
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = 2 * sim.Millisecond
	}
	if c.HeartbeatTimeout == 0 {
		c.HeartbeatTimeout = 200 * sim.Microsecond
	}
	if c.Misses == 0 {
		c.Misses = 3
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = 2 * sim.Millisecond
	}
	if c.BackoffCap == 0 {
		c.BackoffCap = 64 * sim.Millisecond
	}
	if c.MaxRestarts == 0 {
		c.MaxRestarts = 5
	}
	if c.StableAfter == 0 {
		c.StableAfter = 250 * sim.Millisecond
	}
	return c
}

// Supervisor is the driver-VM health monitor and self-healing controller.
// It is single-threaded simulation state: everything happens either on the
// watchdog proc or in scheduler-context callbacks, never concurrently.
type Supervisor struct {
	env    *sim.Env
	cfg    Config
	target Target

	kick          *sim.Event // early wake-up: death notification or Stop
	state         State
	misses        map[string]int
	restarts      int // consecutive attempts (the budget position)
	lastRestartAt sim.Time
	pendingReason string
	pendingMaint  *maintenance
	changes       []Change
	stopped       bool

	// Recovery-episode tracking for the trace: the open episode begins at the
	// first StateRestarting transition and closes at the StateHealthy (or
	// StateDegraded) transition that ends it, emitted as one group span so
	// paradice-trace shows the whole outage inline with the requests it
	// failed.
	episodeOpen  bool
	episodeStart sim.Time

	// Stats observable by tests and experiments.
	HeartbeatsSent   uint64
	HeartbeatsMissed uint64
	Restarts         uint64 // total restart attempts over the lifetime
}

// Start creates the supervisor and spawns its watchdog proc on env.
func Start(env *sim.Env, target Target, cfg Config) *Supervisor {
	s := &Supervisor{
		env:    env,
		cfg:    cfg.withDefaults(),
		target: target,
		kick:   env.NewEvent("supervisor-kick"),
		misses: make(map[string]int),
	}
	s.rearmDeath()
	env.Spawn("supervisor-watchdog", s.run)
	return s
}

// Config returns the effective (defaulted) configuration.
func (s *Supervisor) Config() Config { return s.cfg }

// State returns the supervisor's current state.
func (s *Supervisor) State() State { return s.state }

// Changes returns the state-change log.
func (s *Supervisor) Changes() []Change { return s.changes }

// Stop terminates the watchdog (tests drain the calendar afterwards).
// Degraded-mode flags on frontends are left as they are.
func (s *Supervisor) Stop() {
	s.stopped = true
	s.kick.Trigger()
}

// Stopped reports whether the watchdog has exited or been told to.
func (s *Supervisor) Stopped() bool { return s.stopped }

// HandleProcPanic is the sim.Env.OnProcPanic hook: a panic on a CVD backend
// process — the dispatcher or one of its handler threads — is a driver VM
// oops. The supervisor consumes it (the experiment survives) and treats it
// as a death detection. Panics anywhere else are not ours to absorb.
func (s *Supervisor) HandleProcPanic(pp *sim.ProcPanic) bool {
	if s.stopped || s.state == StateDegraded {
		return false
	}
	if !strings.HasPrefix(pp.Proc, "cvd-dispatch-") && !strings.HasPrefix(pp.Proc, "cvd-op-") {
		return false
	}
	if s.cfg.OwnsProc != nil && !s.cfg.OwnsProc(pp.Proc) {
		// Another shard's backend — its own supervisor will claim it.
		return false
	}
	s.noteFailure(fmt.Sprintf("backend proc %s panicked: %v", pp.Proc, pp.Value))
	return true
}

// maintenance is one queued planned-maintenance request.
type maintenance struct {
	reason string
	fn     func(p *sim.Proc) error
}

// RequestMaintenance queues a planned-maintenance action — a driver-VM
// handover, typically — to run on the watchdog proc before its next sweep.
// Running there, rather than on the caller's context, means the action's
// virtual-time cost (successor boot, drain wait) is serialized with the
// heartbeat sweeps: the watchdog cannot declare the driver VM dead for
// missing beats the maintenance itself is sitting on. The outcome lands in
// the state-change log as an entry in the CURRENT state ("maintenance: ..."
// on success, "maintenance failed: ..." on error) so the restart/MTTR
// statistics are untouched by planned work. Returns false if the supervisor
// has stopped or a maintenance request is already queued.
func (s *Supervisor) RequestMaintenance(reason string, fn func(p *sim.Proc) error) bool {
	if s.stopped || s.state == StateDegraded || s.pendingMaint != nil {
		return false
	}
	s.pendingMaint = &maintenance{reason: reason, fn: fn}
	s.kick.Trigger()
	return true
}

// noteFailure records an asynchronous failure signal and wakes the watchdog
// immediately instead of waiting out the rest of the heartbeat period.
func (s *Supervisor) noteFailure(reason string) {
	if s.stopped || s.state == StateDegraded {
		return
	}
	if s.pendingReason == "" {
		s.pendingReason = reason
	}
	s.kick.Trigger()
}

// rearmDeath (re-)registers the immediate death notification on every
// channel's current backend — necessary after each restart, which replaces
// the backend objects.
func (s *Supervisor) rearmDeath() {
	for _, ch := range s.target.Channels() {
		ch := ch
		ch.OnDeath(func() { s.noteFailure("backend killed: " + ch.ID()) })
	}
}

func (s *Supervisor) setState(st State, reason string) {
	s.state = st
	s.changes = append(s.changes, Change{At: s.env.Now(), State: st, Reason: reason, Attempt: s.restarts})
	tr := trace.Get(s.env)
	if tr == nil {
		return
	}
	tr.Instant(0, "driver-vm", trace.LayerSupervisor, "state:"+st.String(), reason)
	tr.Add("supervise.transitions", 1)
	// The flight recorder mirrors the episode: requests in flight during a
	// recovery are flagged (and captured as outliers) between the Begin and
	// End marks. A disarmed (nil) recorder no-ops.
	fl := tr.Flight()
	switch st {
	case StateRestarting:
		if !s.episodeOpen {
			s.episodeOpen, s.episodeStart = true, s.env.Now()
			fl.BeginEpisode()
		}
	case StateHealthy:
		if s.episodeOpen {
			s.episodeOpen = false
			fl.EndEpisode()
			tr.Group(0, "driver-vm", trace.LayerSupervisor, "recovery", s.episodeStart, s.env.Now())
			tr.Add("supervise.recoveries", 1)
			tr.Set("supervise.mttr_ns", uint64(s.MTTR()))
		}
	case StateDegraded:
		if s.episodeOpen {
			s.episodeOpen = false
			fl.EndEpisode()
			tr.Group(0, "driver-vm", trace.LayerSupervisor, "outage-degraded", s.episodeStart, s.env.Now())
		}
		tr.Add("supervise.degraded", 1)
	}
}

// NoteAlert records an out-of-band alert — an SLO burn, typically — in the
// state-change log without changing state: the supervision log stays the
// one chronological record of everything that went wrong, planned or
// measured. Also emitted as a trace instant and counted.
func (s *Supervisor) NoteAlert(reason string) {
	s.changes = append(s.changes, Change{At: s.env.Now(), State: s.state, Reason: "alert: " + reason, Attempt: s.restarts})
	tr := trace.Get(s.env)
	if tr == nil {
		return
	}
	tr.Instant(0, "driver-vm", trace.LayerSupervisor, "alert", reason)
	tr.Add("supervise.alerts", 1)
}

// run is the watchdog proc: sleep one heartbeat period (or less, if a death
// notification kicks), sweep every channel, heal on failure, stop when
// degraded.
func (s *Supervisor) run(p *sim.Proc) {
	for {
		if s.stopped {
			return
		}
		s.kick.Reset()
		if s.pendingReason == "" && s.pendingMaint == nil {
			p.WaitTimeout(s.kick, s.cfg.HeartbeatEvery)
		}
		if s.stopped {
			return
		}
		if mnt := s.pendingMaint; mnt != nil {
			s.pendingMaint = nil
			if err := mnt.fn(p); err != nil {
				s.setState(s.state, "maintenance failed: "+mnt.reason+": "+err.Error())
			} else {
				s.setState(s.state, "maintenance: "+mnt.reason)
			}
			// Fall through to a normal sweep: whatever the maintenance left
			// behind — a successor's channels, or the rolled-back predecessor
			// — must answer heartbeats right now.
		}
		reason := s.pendingReason
		s.pendingReason = ""
		if reason == "" {
			reason = s.sweep(p)
		}
		if reason == "" {
			// Healthy sweep: a machine that has stayed up past the
			// stability window earns its backoff budget back.
			if s.restarts > 0 && p.Now() >= s.lastRestartAt.Add(s.cfg.StableAfter) {
				s.restarts = 0
			}
			continue
		}
		s.heal(p, reason)
		if s.state == StateDegraded {
			s.stopped = true
			return
		}
	}
}

// sweep heartbeats every non-degraded channel once. Returns a failure
// reason when some channel crossed the miss threshold (or is outright
// dead), "" when all is well.
func (s *Supervisor) sweep(p *sim.Proc) string {
	// Channels() is resolved fresh each sweep, so channels paravirtualized
	// after Start (or backends replaced since) get their death notification
	// here; re-registering an already-armed backend just overwrites the
	// same hook.
	s.rearmDeath()
	for _, ch := range s.target.Channels() {
		id := ch.ID()
		if !ch.Alive() {
			return "backend dead: " + id
		}
		s.HeartbeatsSent++
		trace.Get(s.env).Add("supervise.heartbeats.sent", 1)
		if ch.Heartbeat(p, s.cfg.HeartbeatTimeout) {
			s.misses[id] = 0
			continue
		}
		s.HeartbeatsMissed++
		trace.Get(s.env).Add("supervise.heartbeats.missed", 1)
		s.misses[id]++
		if s.misses[id] >= s.cfg.Misses {
			return fmt.Sprintf("%s missed %d consecutive heartbeats", id, s.misses[id])
		}
	}
	return ""
}

// heal drives restart attempts under the exponential-backoff budget until
// the machine answers heartbeats again or the budget is exhausted.
func (s *Supervisor) heal(p *sim.Proc, reason string) {
	for {
		if s.restarts >= s.cfg.MaxRestarts {
			s.degrade(p, reason)
			return
		}
		backoff := s.backoff(s.restarts)
		s.setState(StateRestarting, reason)
		s.restarts++
		s.Restarts++
		trace.Get(s.env).Add("supervise.restarts", 1)
		p.Sleep(backoff)
		if s.stopped {
			return
		}
		if err := s.target.Restart(); err != nil {
			reason = "restart failed: " + err.Error()
			continue
		}
		s.lastRestartAt = p.Now()
		s.pendingReason = "" // kills of pre-restart backends are moot now
		s.rearmDeath()
		for id := range s.misses {
			s.misses[id] = 0
		}
		// Verify the new driver VM actually answers before declaring
		// recovery; a fault plan that re-kills every new backend fails
		// here and climbs the backoff schedule toward degraded mode.
		if r := s.sweep(p); r != "" {
			reason = r
			continue
		}
		s.setState(StateHealthy, fmt.Sprintf("recovered after %d attempt(s)", s.restarts))
		return
	}
}

// backoff returns the delay before attempt number `attempt` (0-based):
// BackoffBase << attempt, capped at BackoffCap.
func (s *Supervisor) backoff(attempt int) sim.Duration {
	d := s.cfg.BackoffBase
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= s.cfg.BackoffCap {
			return s.cfg.BackoffCap
		}
	}
	if d > s.cfg.BackoffCap {
		d = s.cfg.BackoffCap
	}
	return d
}

// degrade is the terminal transition: channels that are dead or
// unresponsive fail fast with ENODEV from now on; healthy channels keep
// their working backends untouched.
func (s *Supervisor) degrade(p *sim.Proc, reason string) {
	for _, ch := range s.target.Channels() {
		if !ch.Alive() || !ch.Heartbeat(p, s.cfg.HeartbeatTimeout) {
			ch.SetDegraded(true)
		}
	}
	s.setState(StateDegraded, reason)
}

// MTTR computes the mean time to repair over the state-change log: for each
// recovery episode, the time from the first StateRestarting entry to the
// StateHealthy entry that closed it. Returns 0 when no episode completed.
func (s *Supervisor) MTTR() sim.Duration {
	var total sim.Duration
	n := 0
	var openAt sim.Time
	open := false
	for _, c := range s.changes {
		switch c.State {
		case StateRestarting:
			if !open {
				openAt, open = c.At, true
			}
		case StateHealthy:
			if open {
				total += c.At.Sub(openAt)
				n++
				open = false
			}
		}
	}
	if n == 0 {
		return 0
	}
	return total / sim.Duration(n)
}
