package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// jquote renders s as a JSON string literal. strconv.Quote is NOT usable
// here: it emits Go escapes (\a, \v, \x07) that JSON parsers reject, so
// hostile detail strings would corrupt the whole file.
func jquote(s string) string {
	b, _ := json.Marshal(s) // marshaling a string cannot fail
	return string(b)
}

// This file writes the recorded events as Chrome trace_event JSON — the
// format chrome://tracing, Perfetto, and speedscope all load. The mapping:
// one trace "process" per VM (guest VM, driver VM, the hypervisor, the
// supervisor) and one "thread" per architectural layer within it, so the
// timeline reads top-to-bottom the way Figure 1(c) reads left-to-right.
//
// Determinism: pids and tids are assigned in first-seen event order, events
// are written in emission order, and all numbers are formatted with fixed
// integer math — the same simulation produces a byte-identical file.

// usec renders a virtual-clock nanosecond value as Chrome's microsecond
// timestamp with nanosecond precision ("35.309"), using integer math only.
func usec(ns int64) string {
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)
}

// WriteChrome writes the Chrome trace_event JSON for the recorded events.
func (t *Tracer) WriteChrome(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ns"}`+"\n")
		return err
	}
	bw := bufio.NewWriter(w)

	// Assign pids to VMs and tids to (vm, layer) pairs in first-seen order.
	type key struct{ vm, layer string }
	pids := make(map[string]int)
	tids := make(map[key]int)
	var vmOrder []string
	var tidOrder []key
	for _, e := range t.events {
		if _, ok := pids[e.VM]; !ok {
			pids[e.VM] = len(pids) + 1
			vmOrder = append(vmOrder, e.VM)
		}
		k := key{e.VM, e.Layer}
		if _, ok := tids[k]; !ok {
			tids[k] = len(tids) + 1
			tidOrder = append(tidOrder, k)
		}
	}

	if _, err := bw.WriteString(`{"traceEvents":[` + "\n"); err != nil {
		return err
	}
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(line)
	}

	// Metadata: name the processes and threads.
	for _, vm := range vmOrder {
		emit(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`,
			pids[vm], jquote(vm)))
	}
	for _, k := range tidOrder {
		emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
			pids[k.vm], tids[k], jquote(k.layer)))
	}

	for _, e := range t.events {
		pid := pids[e.VM]
		tid := tids[key{e.VM, e.Layer}]
		args := fmt.Sprintf(`{"rid":%d`, e.RID)
		if e.Detail != "" {
			args += `,"detail":` + jquote(e.Detail)
		}
		args += "}"
		switch e.Kind {
		case KindInstant:
			emit(fmt.Sprintf(`{"name":%s,"cat":"instant","ph":"i","s":"t","ts":%s,"pid":%d,"tid":%d,"args":%s}`,
				jquote(e.Name), usec(int64(e.Start)), pid, tid, args))
		default:
			cat := "work"
			if e.Kind == KindGroup {
				cat = "group"
			}
			emit(fmt.Sprintf(`{"name":%s,"cat":%q,"ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d,"args":%s}`,
				jquote(e.Name), cat, usec(int64(e.Start)), usec(int64(e.Dur())), pid, tid, args))
		}
	}
	if _, err := bw.WriteString("\n" + `],"displayTimeUnit":"ns"}` + "\n"); err != nil {
		return err
	}
	return bw.Flush()
}
