package trace

import (
	"bytes"
	"math/bits"
	"strings"
	"testing"

	"paradice/internal/sim"
)

// Bucket placement at the powers-of-two boundaries: bucket k covers
// 2^(k-1) <= d < 2^k, bucket 0 holds d <= 0.
func TestHistBucketBoundaries(t *testing.T) {
	cases := []struct {
		d      sim.Duration
		bucket int
	}{
		{-5, 0},
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{1023, 10},  // 2^10 - 1
		{1024, 11},  // 2^10
		{1025, 11},  // 2^10 + 1
		{65535, 16}, // 2^16 - 1
		{65536, 17}, // 2^16
		{1 << 40, 41},
		{1<<40 - 1, 40},
	}
	for _, c := range cases {
		var h Hist
		h.Observe(c.d)
		if got := h.Buckets[c.bucket]; got != 1 {
			// Locate where it actually landed for the error message.
			at := -1
			for k, n := range h.Buckets {
				if n == 1 {
					at = k
				}
			}
			t.Errorf("Observe(%d): want bucket %d, landed in %d", int64(c.d), c.bucket, at)
		}
		if c.d > 0 && c.bucket != bits.Len64(uint64(c.d)) {
			t.Errorf("test table inconsistent for d=%d", int64(c.d))
		}
	}
}

func TestHistEmpty(t *testing.T) {
	var h Hist
	if m := h.Mean(); m != 0 {
		t.Errorf("empty Mean = %d, want 0", int64(m))
	}
	if q := h.Quantile(0.99); q != 0 {
		t.Errorf("empty Quantile = %d, want 0", int64(q))
	}
	var nilH *Hist
	if q := nilH.Quantile(0.5); q != 0 {
		t.Errorf("nil Quantile = %d, want 0", int64(q))
	}
}

// While every sample is retained, Quantile is the exact nearest-rank order
// statistic, independent of insertion order.
func TestHistQuantileExact(t *testing.T) {
	var h Hist
	// Deliberately unsorted insertion.
	for _, d := range []sim.Duration{700, 100, 1000, 300, 500, 900, 200, 800, 400, 600} {
		h.Observe(d)
	}
	if !h.Exact() {
		t.Fatal("10 samples should stay in exact mode")
	}
	cases := []struct {
		q    float64
		want sim.Duration
	}{
		{0.10, 100},  // rank ceil(1.0) = 1
		{0.50, 500},  // rank 5
		{0.90, 900},  // rank 9
		{0.95, 1000}, // rank ceil(9.5) = 10
		{0.99, 1000},
		{0.999, 1000},
		{1.0, 1000},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%g) = %d, want %d", c.q, int64(got), int64(c.want))
		}
	}
	if m := h.Mean(); m != 550 {
		t.Errorf("Mean = %d, want 550", int64(m))
	}
}

// A single sample is every quantile.
func TestHistQuantileSingle(t *testing.T) {
	var h Hist
	h.Observe(42)
	for _, q := range []float64{0.001, 0.5, 0.99, 1.0} {
		if got := h.Quantile(q); got != 42 {
			t.Errorf("Quantile(%g) = %d, want 42", q, int64(got))
		}
	}
}

// Past HistSampleCap the reservoir spills and quantiles degrade to the
// inclusive upper bound (2^k - 1) of the log2 bucket holding the rank —
// deterministic, never below the true value's bucket floor.
func TestHistQuantileSpilled(t *testing.T) {
	var h Hist
	for i := 0; i < HistSampleCap+1; i++ {
		h.Observe(1000) // bucket 10: 512 <= 1000 < 1024
	}
	if h.Exact() {
		t.Fatal("HistSampleCap+1 samples should spill")
	}
	if got, want := h.Quantile(0.99), sim.Duration(1023); got != want {
		t.Errorf("spilled Quantile(0.99) = %d, want %d (bucket upper bound)", int64(got), int64(want))
	}
	if h.Count != uint64(HistSampleCap+1) {
		t.Errorf("Count = %d, want %d", h.Count, HistSampleCap+1)
	}
}

// Spilled quantiles across several buckets: ranks resolve to the right
// bucket's bound.
func TestHistQuantileSpilledMultiBucket(t *testing.T) {
	var h Hist
	// 90% in bucket 7 (64..127), 10% in bucket 14 (8192..16383).
	for i := 0; i < HistSampleCap; i++ {
		h.Observe(100)
	}
	for i := 0; i < HistSampleCap/9; i++ {
		h.Observe(10000)
	}
	if h.Exact() {
		t.Fatal("should have spilled")
	}
	if got, want := h.Quantile(0.50), sim.Duration(127); got != want {
		t.Errorf("Quantile(0.50) = %d, want %d", int64(got), int64(want))
	}
	if got, want := h.Quantile(0.999), sim.Duration(16383); got != want {
		t.Errorf("Quantile(0.999) = %d, want %d", int64(got), int64(want))
	}
}

// The dump carries a quantile line per histogram and stays deterministic.
func TestHistDumpQuantileLine(t *testing.T) {
	r := newRegistry()
	r.observe("h.q", 1500)
	r.observe("h.q", 500)
	var b bytes.Buffer
	if err := r.Dump(&b); err != nil {
		t.Fatal(err)
	}
	want := "hist h.q p50=500ns p95=1500ns p99=1500ns p999=1500ns\n"
	if !strings.Contains(b.String(), want) {
		t.Fatalf("dump missing %q:\n%s", want, b.String())
	}
}

// Once a histogram spills its reservoir, the dump's quantile line marks
// every value approximate — an operator can never mistake a bucket upper
// bound for an exact order statistic.
func TestHistDumpApproxMarker(t *testing.T) {
	r := newRegistry()
	for i := 0; i < HistSampleCap+1; i++ {
		r.observe("h.big", 1000)
	}
	var b bytes.Buffer
	if err := r.Dump(&b); err != nil {
		t.Fatal(err)
	}
	want := "hist h.big p50=~1023ns p95=~1023ns p99=~1023ns p999=~1023ns\n"
	if !strings.Contains(b.String(), want) {
		t.Fatalf("spilled dump missing %q:\n%s", want, b.String())
	}
}

// The derived hit-rate gauges appear (as percentages, sorted with the other
// gauges) exactly when their counter pairs have data.
func TestDumpDerivedHitrates(t *testing.T) {
	r := newRegistry()
	var b bytes.Buffer
	if err := r.Dump(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "hitrate") {
		t.Fatalf("hitrate gauges with no counters:\n%s", b.String())
	}

	r.add("hv.tlb.hit", 3)
	r.add("hv.tlb.miss", 1)
	r.add("cvd.mapcache.hits", 1)
	r.add("cvd.mapcache.misses", 2)
	r.set("aaa.first", 7) // sorts before the derived gauges
	b.Reset()
	if err := r.Dump(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"gauge aaa.first 7\n",
		"gauge cvd.mapcache.hitrate 33.33%\n",
		"gauge hv.tlb.hitrate 75.00%\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "aaa.first") > strings.Index(out, "mapcache.hitrate") {
		t.Errorf("derived gauges not sorted with the rest:\n%s", out)
	}
}
