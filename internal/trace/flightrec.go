package trace

// The flight recorder is the always-on half of the observability story.
// The full event trace (Tracer.Events) is unbounded — fine for a 20-request
// golden test, hopeless for a 300k-request tail run — so production arming
// keeps a bounded ring of compact per-request digests instead: who, where,
// how long in each architectural hop, and how it ended. Full span trees are
// retained only for the requests worth keeping: the ones that blew their
// class latency threshold, returned an errno, were shed by admission
// control, or overlapped a restart/handover episode.
//
// Attribution follows the same tiling rule the §6.1.1 reconciliation test
// enforces: the leaf work spans of a request tile its root span, so the
// per-hop durations of a digest sum exactly to the request's end-to-end
// latency. Whatever the work spans do not cover — scheduler hand-off,
// ring-slot waiting, admission parking — lands in the "queue" hop by
// construction, so nothing is ever unaccounted.
//
// Like the rest of the package, the recorder reads the virtual clock and
// never advances it: arming it cannot perturb a single timing, and the same
// seed produces a byte-identical WriteDump.

import (
	"fmt"
	"io"

	"paradice/internal/sim"
)

// Hop is one segment of the request critical path, the unit of
// attribution. Every leaf work span maps to exactly one hop.
type Hop uint8

// The critical-path hops, in pipeline order.
const (
	// HopQueue is the residual: end-to-end latency not covered by any work
	// span — scheduler hand-off, ring-slot waiting, admission parking.
	HopQueue Hop = iota
	// HopFrontend is guest-side CVD work: syscall entry, slot post,
	// completion handling, grant declaration.
	HopFrontend
	// HopHypercall is hypervisor control-plane work: hypercall entry/exit,
	// page mapping and unmapping.
	HopHypercall
	// HopIRQ is inter-VM notification: doorbell IRQs, cross-VM polling,
	// device interrupt delivery.
	HopIRQ
	// HopBackend is driver-VM CVD work: dispatch, execute, completion post.
	HopBackend
	// HopCopy is data movement: grant validation and the actual byte copies
	// (hypervisor copy path or backend map-cache path).
	HopCopy
	// HopDevice is time spent in the device driver and device/DMA model.
	HopDevice

	// HopCount sizes per-hop arrays.
	HopCount
)

var hopNames = [HopCount]string{"queue", "frontend", "hypercall", "irq", "backend", "copy", "device"}

// String returns the hop's short name.
func (h Hop) String() string {
	if h >= HopCount {
		return "invalid"
	}
	return hopNames[h]
}

// classifyHop maps a leaf work span to its critical-path hop. The span
// inventory is small and closed (every emitter lives in this repo), so the
// mapping is by layer with name-level carve-outs for the copy path.
func classifyHop(layer, name string) Hop {
	switch layer {
	case LayerSyscall, LayerFE:
		return HopFrontend
	case LayerIRQ:
		return HopIRQ
	case LayerHV:
		switch name {
		case "grant-validate", "copy", "map-copy":
			return HopCopy
		}
		return HopHypercall
	case LayerBE:
		switch name {
		case "map-hit", "map-miss":
			return HopCopy
		}
		return HopBackend
	case LayerDriver, LayerDevice:
		return HopDevice
	}
	return HopQueue
}

// Digest is the compact per-request record kept in the ring: everything an
// operator needs to ask "where did this request's time go and how did it
// end" without the full span tree.
type Digest struct {
	RID   uint64
	VM    string // guest VM the request entered through
	Op    string // root span name: "<op> <path>"
	Class uint8  // QoS class (from the frontend), 0 when unclassified
	Start sim.Time
	End   sim.Time
	// Hops is the critical-path decomposition. The entries sum exactly to
	// End-Start: HopQueue absorbs whatever the work spans did not cover.
	Hops    [HopCount]sim.Duration
	Errno   int32 // 0 on success
	Shed    bool  // rejected/throttled by admission control or a full ring
	Episode bool  // overlapped a restart/handover/recovery episode
	Outlier bool  // retained with a full span tree
}

// Latency returns the end-to-end latency.
func (d Digest) Latency() sim.Duration { return d.End.Sub(d.Start) }

// Outlier is one retained exemplar: the digest plus the full span tree of
// the request, in emission order.
type Outlier struct {
	Digest Digest
	Events []Event
}

// FlightConfig sizes and tunes a flight recorder.
type FlightConfig struct {
	// Capacity is the digest ring size (default 4096). Memory is O(Capacity)
	// regardless of run length.
	Capacity int
	// OutlierCap bounds how many full span trees are retained (default 32).
	// Once full, further outliers are counted but their trees dropped.
	OutlierCap int
	// Threshold is the default per-request latency threshold above which a
	// request is captured as an outlier. Zero disables latency-based capture
	// (errno/shed/episode capture still applies).
	Threshold sim.Duration
	// ClassThresholds overrides Threshold per QoS class (e.g. from the load
	// harness's witness classes).
	ClassThresholds map[uint8]sim.Duration
}

// pendingEventCap bounds the span buffer of one in-flight request, so a
// pathological request cannot grow the recorder unboundedly.
const pendingEventCap = 256

// flightPending accumulates one in-flight request until its root group
// finalizes it into a digest.
type flightPending struct {
	class   uint8
	hops    [HopCount]sim.Duration
	spanSum sim.Duration
	errno   int32
	shed    bool
	episode bool
	events  []Event
}

// classAgg aggregates finalized digests of one QoS class for the
// attribution table.
type classAgg struct {
	count uint64
	lat   Hist
	hops  [HopCount]Hist
}

// FlightRecorder keeps the bounded digest ring, the in-flight accumulation
// state, the per-class attribution aggregates, and the captured outliers.
// All mutation happens from simulation context (via the owning Tracer), so
// there is no locking. A nil *FlightRecorder is valid everywhere: every
// method no-ops, which is how the disarmed path stays free.
type FlightRecorder struct {
	cfg      FlightConfig
	reg      *Registry // owning tracer's registry for flightrec.* counters
	ring     []Digest
	next     int
	total    uint64
	inflight map[uint64]*flightPending
	maxDone  uint64 // highest finalized RID: gates creation of stale entries
	episodes int    // currently-open restart/handover episodes
	outliers []Outlier
	dropped  uint64 // outliers past OutlierCap: counted, tree discarded
	stale    uint64 // events for already-finalized RIDs, dropped
	agg      map[uint8]*classAgg
}

// NewFlightRecorder returns a recorder with cfg (defaults applied). Attach
// it to a tracer with Tracer.ArmFlightRecorder, or feed it digests directly
// with Push.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 4096
	}
	if cfg.OutlierCap <= 0 {
		cfg.OutlierCap = 32
	}
	return &FlightRecorder{
		cfg:      cfg,
		ring:     make([]Digest, 0, cfg.Capacity),
		inflight: make(map[uint64]*flightPending),
	}
}

// threshold returns the outlier latency threshold for a class (0: latency
// capture disabled for that class).
func (fr *FlightRecorder) threshold(class uint8) sim.Duration {
	if t, ok := fr.cfg.ClassThresholds[class]; ok {
		return t
	}
	return fr.cfg.Threshold
}

// pending returns the in-flight record for rid, creating it unless rid was
// already finalized (a late event from a restarted backend epoch, say —
// counted as stale and dropped). Creation is what the stale guard gates:
// an existing in-flight entry is always accepted, so out-of-order
// finalization across concurrent requests is handled correctly.
func (fr *FlightRecorder) pending(rid uint64) *flightPending {
	if p, ok := fr.inflight[rid]; ok {
		return p
	}
	if rid <= fr.maxDone {
		fr.stale++
		return nil
	}
	p := &flightPending{episode: fr.episodes > 0}
	fr.inflight[rid] = p
	return p
}

// capture buffers a span-tree event for a possible outlier. Skipped when
// the outlier store is already full — the tree would be discarded at
// finalize anyway, so there is no point holding it.
func (fr *FlightRecorder) capture(p *flightPending, e Event) {
	if len(fr.outliers) >= fr.cfg.OutlierCap || len(p.events) >= pendingEventCap {
		return
	}
	p.events = append(p.events, e)
}

// onEvent ingests one trace event. Leaf spans accumulate per-hop time;
// the request's root group (the syscall-layer KindGroup) finalizes the
// digest. Events with RID 0 are not attributable to a request and are
// ignored.
func (fr *FlightRecorder) onEvent(e Event) {
	if fr == nil || e.RID == 0 {
		return
	}
	switch e.Kind {
	case KindSpan:
		p := fr.pending(e.RID)
		if p == nil {
			return
		}
		d := e.Dur()
		p.hops[classifyHop(e.Layer, e.Name)] += d
		p.spanSum += d
		fr.capture(p, e)
	case KindGroup:
		if e.Layer == LayerSyscall {
			fr.finalize(e)
			return
		}
		if p := fr.pending(e.RID); p != nil {
			fr.capture(p, e)
		}
	case KindInstant:
		if p := fr.pending(e.RID); p != nil {
			fr.capture(p, e)
		}
	}
}

// finalize turns the in-flight record into a digest when the request's root
// group arrives. A request with no prior events (every charge ran in
// callback context) still gets a digest: all its time is queue residual.
func (fr *FlightRecorder) finalize(root Event) {
	p := fr.inflight[root.RID]
	if p == nil {
		if root.RID <= fr.maxDone {
			fr.stale++
			return
		}
		p = &flightPending{episode: fr.episodes > 0}
	}
	delete(fr.inflight, root.RID)
	if root.RID > fr.maxDone {
		fr.maxDone = root.RID
	}

	lat := root.Dur()
	d := Digest{
		RID:     root.RID,
		VM:      root.VM,
		Op:      root.Name,
		Class:   p.class,
		Start:   root.Start,
		End:     root.End,
		Hops:    p.hops,
		Errno:   p.errno,
		Shed:    p.shed,
		Episode: p.episode || fr.episodes > 0,
	}
	// Tiling by construction: the queue hop absorbs the part of the
	// end-to-end latency no work span covered, so the hops sum exactly.
	d.Hops[HopQueue] += lat - p.spanSum

	thr := fr.threshold(d.Class)
	d.Outlier = (thr > 0 && lat > thr) || d.Errno != 0 || d.Shed || d.Episode
	if d.Outlier {
		if len(fr.outliers) < fr.cfg.OutlierCap {
			tree := make([]Event, 0, len(p.events)+1)
			tree = append(tree, p.events...)
			tree = append(tree, root)
			fr.outliers = append(fr.outliers, Outlier{Digest: d, Events: tree})
			fr.reg.count("flightrec.outliers", 1)
		} else {
			fr.dropped++
			fr.reg.count("flightrec.outliers.dropped", 1)
		}
	}
	fr.push(d)
}

// Push ingests an already-built digest: the seam the SLO watchdog tests use
// and the path finalize funnels through. The ring and the per-class
// aggregates are updated; outlier capture is finalize's job (Push has no
// span tree to keep).
func (fr *FlightRecorder) Push(d Digest) {
	if fr == nil {
		return
	}
	fr.push(d)
}

func (fr *FlightRecorder) push(d Digest) {
	if len(fr.ring) < fr.cfg.Capacity {
		fr.ring = append(fr.ring, d)
	} else {
		fr.ring[fr.next] = d
		fr.next = (fr.next + 1) % fr.cfg.Capacity
	}
	fr.total++
	fr.reg.count("flightrec.digests", 1)

	a := fr.aggFor(d.Class)
	a.count++
	a.lat.observe(d.Latency())
	for h := Hop(0); h < HopCount; h++ {
		a.hops[h].observe(d.Hops[h])
	}
}

// agg is lazily keyed by class; the table is tiny (one entry per QoS class).
func (fr *FlightRecorder) aggFor(class uint8) *classAgg {
	if fr.agg == nil {
		fr.agg = make(map[uint8]*classAgg)
	}
	a := fr.agg[class]
	if a == nil {
		a = &classAgg{}
		fr.agg[class] = a
	}
	return a
}

// Note records the QoS class of an in-flight request (called by the
// frontend as soon as it sees the request).
func (fr *FlightRecorder) Note(rid uint64, class uint8) {
	if fr == nil || rid == 0 {
		return
	}
	if p := fr.pending(rid); p != nil {
		p.class = class
	}
}

// Outcome records how an in-flight request ended: its errno (0 on success)
// and whether it was shed (admission rejection, full ring). Called by the
// frontend on every return path; the digest is still finalized by the root
// group, which arrives after the syscall unwinds.
func (fr *FlightRecorder) Outcome(rid uint64, errno int32, shed bool) {
	if fr == nil || rid == 0 {
		return
	}
	if p := fr.pending(rid); p != nil {
		p.errno = errno
		p.shed = shed
	}
}

// BeginEpisode marks the start of a restart/handover/recovery episode:
// every currently in-flight request, and every request that starts before
// the matching EndEpisode, is flagged (and therefore captured as an
// outlier). Episodes nest.
func (fr *FlightRecorder) BeginEpisode() {
	if fr == nil {
		return
	}
	fr.episodes++
	for _, p := range fr.inflight {
		p.episode = true
	}
	fr.reg.count("flightrec.episodes", 1)
}

// EndEpisode closes the innermost open episode.
func (fr *FlightRecorder) EndEpisode() {
	if fr == nil || fr.episodes == 0 {
		return
	}
	fr.episodes--
}

// Len returns the number of digests currently held (≤ capacity).
func (fr *FlightRecorder) Len() int {
	if fr == nil {
		return 0
	}
	return len(fr.ring)
}

// Total returns the number of digests ever recorded.
func (fr *FlightRecorder) Total() uint64 {
	if fr == nil {
		return 0
	}
	return fr.total
}

// Capacity returns the ring capacity.
func (fr *FlightRecorder) Capacity() int {
	if fr == nil {
		return 0
	}
	return fr.cfg.Capacity
}

// Digests returns a copy of the retained digests, oldest first.
func (fr *FlightRecorder) Digests() []Digest {
	if fr == nil || len(fr.ring) == 0 {
		return nil
	}
	out := make([]Digest, 0, len(fr.ring))
	if len(fr.ring) == fr.cfg.Capacity {
		out = append(out, fr.ring[fr.next:]...)
		out = append(out, fr.ring[:fr.next]...)
	} else {
		out = append(out, fr.ring...)
	}
	return out
}

// Outliers returns the captured outliers in finalization order. The slice
// is the recorder's backing store; callers must not mutate it.
func (fr *FlightRecorder) Outliers() []Outlier {
	if fr == nil {
		return nil
	}
	return fr.outliers
}

// OutliersDropped returns how many outliers were counted but not retained
// because the store was full.
func (fr *FlightRecorder) OutliersDropped() uint64 {
	if fr == nil {
		return 0
	}
	return fr.dropped
}

// Classes returns the QoS classes seen so far, ascending.
func (fr *FlightRecorder) Classes() []uint8 {
	if fr == nil {
		return nil
	}
	out := make([]uint8, 0, len(fr.agg))
	for c := 0; c < 256; c++ {
		if _, ok := fr.agg[uint8(c)]; ok {
			out = append(out, uint8(c))
		}
	}
	return out
}

// Latency returns the end-to-end latency histogram of one class, or nil.
func (fr *FlightRecorder) Latency(class uint8) *Hist {
	if fr == nil || fr.agg[class] == nil {
		return nil
	}
	return &fr.agg[class].lat
}

// HopLatency returns the per-request duration histogram of one hop within
// one class, or nil.
func (fr *FlightRecorder) HopLatency(class uint8, hop Hop) *Hist {
	if fr == nil || fr.agg[class] == nil || hop >= HopCount {
		return nil
	}
	return &fr.agg[class].hops[hop]
}

// count charges a flightrec.* counter into the owning tracer's registry
// when armed through one; standalone recorders (tests, Push feeds) skip it.
func (r *Registry) count(name string, n uint64) {
	if r == nil {
		return
	}
	r.add(name, n)
}

// quantMark renders a quantile with the exactness marker: a "~" prefix once
// the histogram spilled its reservoir and values are bucket upper bounds.
func quantMark(h *Hist, q float64) string {
	v := fmt.Sprintf("%dns", int64(h.Quantile(q)))
	if !h.Exact() {
		return "~" + v
	}
	return v
}

// WriteAttribution writes the per-class critical-path table: for each QoS
// class, the end-to-end latency quantiles, then one row per hop with that
// hop's quantiles and its share of the class's total time. This is the
// "where does the p99 live" answer, and it is byte-deterministic.
func (fr *FlightRecorder) WriteAttribution(w io.Writer) error {
	if fr == nil {
		return nil
	}
	for _, class := range fr.Classes() {
		a := fr.agg[class]
		if _, err := fmt.Fprintf(w, "attr class=%d count=%d lat p50=%s p99=%s p999=%s mean=%dns\n",
			class, a.count, quantMark(&a.lat, 0.50), quantMark(&a.lat, 0.99),
			quantMark(&a.lat, 0.999), int64(a.lat.Mean())); err != nil {
			return err
		}
		total := a.lat.Sum
		for h := Hop(0); h < HopCount; h++ {
			hh := &a.hops[h]
			if hh.Count == 0 || hh.Sum == 0 && h != HopQueue {
				continue
			}
			var bp int64 // share in basis points, integer math only
			if total > 0 {
				bp = int64(hh.Sum) * 10000 / int64(total)
			}
			if _, err := fmt.Fprintf(w, "attr class=%d hop=%-9s p50=%s p99=%s share=%d.%02d%%\n",
				class, h, quantMark(hh, 0.50), quantMark(hh, 0.99), bp/100, bp%100); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeDigest writes one digest line (shared by the dump and the outlier
// section).
func writeDigest(w io.Writer, tag string, d Digest) error {
	_, err := fmt.Fprintf(w,
		"%s rid=%d vm=%s op=%q class=%d start=%d end=%d lat=%dns errno=%d shed=%t episode=%t outlier=%t hops queue=%d frontend=%d hypercall=%d irq=%d backend=%d copy=%d device=%d\n",
		tag, d.RID, d.VM, d.Op, d.Class, int64(d.Start), int64(d.End), int64(d.Latency()),
		d.Errno, d.Shed, d.Episode, d.Outlier,
		int64(d.Hops[HopQueue]), int64(d.Hops[HopFrontend]), int64(d.Hops[HopHypercall]),
		int64(d.Hops[HopIRQ]), int64(d.Hops[HopBackend]), int64(d.Hops[HopCopy]),
		int64(d.Hops[HopDevice]))
	return err
}

// WriteDump writes the full deterministic flight-recorder dump: the header
// with the bounding counters, the attribution table, every retained digest
// oldest-first, and the captured outlier span trees. Same seed + same
// config ⇒ byte-identical output (the stress harness compares dumps).
func (fr *FlightRecorder) WriteDump(w io.Writer) error {
	if fr == nil {
		_, err := io.WriteString(w, "flightrec disarmed\n")
		return err
	}
	if _, err := fmt.Fprintf(w, "flightrec capacity=%d held=%d total=%d inflight=%d outliers=%d dropped=%d stale=%d\n",
		fr.cfg.Capacity, len(fr.ring), fr.total, len(fr.inflight), len(fr.outliers), fr.dropped, fr.stale); err != nil {
		return err
	}
	if err := fr.WriteAttribution(w); err != nil {
		return err
	}
	for _, d := range fr.Digests() {
		if err := writeDigest(w, "digest", d); err != nil {
			return err
		}
	}
	for _, o := range fr.outliers {
		if err := writeDigest(w, "outlier", o.Digest); err != nil {
			return err
		}
		for _, e := range o.Events {
			kind := "span"
			switch e.Kind {
			case KindGroup:
				kind = "group"
			case KindInstant:
				kind = "instant"
			}
			line := fmt.Sprintf("  %s %s/%s %q start=%d dur=%dns",
				kind, e.VM, e.Layer, e.Name, int64(e.Start), int64(e.Dur()))
			if e.Detail != "" {
				line += fmt.Sprintf(" detail=%q", e.Detail)
			}
			if _, err := io.WriteString(w, line+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}
