package trace

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strconv"

	"paradice/internal/sim"
)

// Registry holds the cheap aggregate metrics: counters, gauges, and
// virtual-time histograms, each keyed by a flat dotted name (layer and
// device path baked into the name, e.g. "cvd./dev/dri/card0.ops"). All
// access happens from simulation context, so there is no locking; the dump
// iterates names in sorted order, so the output is deterministic and
// byte-identical across runs of the same seed.
type Registry struct {
	counters map[string]uint64
	gauges   map[string]uint64
	hists    map[string]*Hist
	// counts are unit-less histograms (batch sizes, vector lengths): the
	// same Hist machinery, dumped without the "ns" suffix. Kept separate so
	// duration and count distributions can never be confused in the output.
	counts map[string]*Hist
}

func newRegistry() *Registry {
	return &Registry{
		counters: make(map[string]uint64),
		gauges:   make(map[string]uint64),
		hists:    make(map[string]*Hist),
		counts:   make(map[string]*Hist),
	}
}

// Hist is a log2-bucketed histogram of virtual durations: bucket k counts
// samples with 2^(k-1) ns <= d < 2^k ns (bucket 0 counts d <= 0). Power-of-
// two buckets keep the histogram cheap and make the dump trivially
// deterministic.
//
// Up to HistSampleCap raw observations are additionally retained verbatim,
// so quantiles of small runs are exact. Past the cap the reservoir is
// released and quantiles degrade to the log2 bucket upper bound — still
// fully deterministic (no random sampling anywhere), just coarser.
type Hist struct {
	Buckets [64]uint64
	Count   uint64
	Sum     sim.Duration

	samples []sim.Duration
	spilled bool
}

// HistSampleCap is the number of raw observations a Hist retains for exact
// quantile extraction before falling back to bucket-resolution quantiles.
const HistSampleCap = 8192

// Observe records one duration sample.
func (h *Hist) Observe(d sim.Duration) { h.observe(d) }

func (h *Hist) observe(d sim.Duration) {
	k := 0
	if d > 0 {
		k = bits.Len64(uint64(d))
	}
	h.Buckets[k]++
	h.Count++
	h.Sum += d
	if !h.spilled {
		if len(h.samples) < HistSampleCap {
			h.samples = append(h.samples, d)
		} else {
			h.spilled = true
			h.samples = nil
		}
	}
}

// Exact reports whether every observation is still retained verbatim, i.e.
// Quantile returns exact order statistics rather than bucket upper bounds.
func (h *Hist) Exact() bool { return h != nil && !h.spilled }

// Quantile returns the q-quantile (0 < q <= 1) of the observed durations
// using the nearest-rank definition: the sample of rank ceil(q*Count).
// While the histogram holds at most HistSampleCap observations the result
// is the exact order statistic; beyond that it is the inclusive upper bound
// (2^k - 1) of the log2 bucket containing that rank. Returns 0 when empty.
func (h *Hist) Quantile(q float64) sim.Duration {
	if h == nil || h.Count == 0 {
		return 0
	}
	r := uint64(math.Ceil(q * float64(h.Count)))
	if r < 1 {
		r = 1
	}
	if r > h.Count {
		r = h.Count
	}
	if !h.spilled {
		sorted := make([]sim.Duration, len(h.samples))
		copy(sorted, h.samples)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		return sorted[r-1]
	}
	var cum uint64
	for k, c := range h.Buckets {
		cum += c
		if cum >= r {
			if k == 0 {
				return 0
			}
			return sim.Duration(uint64(1)<<uint(k) - 1)
		}
	}
	return 0 // unreachable: cum reaches Count >= r
}

// Mean returns the mean observed duration (0 when empty).
func (h *Hist) Mean() sim.Duration {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / sim.Duration(h.Count)
}

func (r *Registry) add(name string, n uint64) { r.counters[name] += n }
func (r *Registry) set(name string, v uint64) { r.gauges[name] = v }
func (r *Registry) observe(name string, d sim.Duration) {
	h := r.hists[name]
	if h == nil {
		h = &Hist{}
		r.hists[name] = h
	}
	h.observe(d)
}

func (r *Registry) observeCount(name string, n uint64) {
	h := r.counts[name]
	if h == nil {
		h = &Hist{}
		r.counts[name] = h
	}
	h.observe(sim.Duration(n))
}

// Counter returns the current value of a counter (0 if never incremented).
func (r *Registry) Counter(name string) uint64 {
	if r == nil {
		return 0
	}
	return r.counters[name]
}

// Gauge returns the current value of a gauge (0 if never set).
func (r *Registry) Gauge(name string) uint64 {
	if r == nil {
		return 0
	}
	return r.gauges[name]
}

// Histogram returns the named histogram, or nil.
func (r *Registry) Histogram(name string) *Hist {
	if r == nil {
		return nil
	}
	return r.hists[name]
}

// CountHist returns the named count histogram, or nil.
func (r *Registry) CountHist(name string) *Hist {
	if r == nil {
		return nil
	}
	return r.counts[name]
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Dump writes the plain-text metrics dump: counters, gauges, then
// histograms, each section sorted by name. The format is stable — tests
// compare dumps byte-for-byte across runs of the same seed.
func (r *Registry) Dump(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, name := range sortedKeys(r.counters) {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", name, r.counters[name]); err != nil {
			return err
		}
	}
	// Gauges plus the derived hit-rate percentages: operators should not
	// have to hand-divide counter pairs, so the cache hit rates are computed
	// at dump time (integer basis points — the output stays byte-stable).
	gauges := make(map[string]string, len(r.gauges)+2)
	for name, v := range r.gauges {
		gauges[name] = strconv.FormatUint(v, 10)
	}
	for _, d := range [...]struct{ name, hit, miss string }{
		{"cvd.mapcache.hitrate", "cvd.mapcache.hits", "cvd.mapcache.misses"},
		{"hv.tlb.hitrate", "hv.tlb.hit", "hv.tlb.miss"},
	} {
		hit, miss := r.counters[d.hit], r.counters[d.miss]
		if hit+miss == 0 {
			continue
		}
		bp := hit * 10000 / (hit + miss)
		gauges[d.name] = fmt.Sprintf("%d.%02d%%", bp/100, bp%100)
	}
	for _, name := range sortedKeys(gauges) {
		if _, err := fmt.Fprintf(w, "gauge %s %s\n", name, gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		if _, err := fmt.Fprintf(w, "hist %s count=%d sum=%dns mean=%dns\n",
			name, h.Count, int64(h.Sum), int64(h.Mean())); err != nil {
			return err
		}
		// Quantiles carry the exactness marker: a "~" prefix means the
		// reservoir spilled past HistSampleCap and the values are log2
		// bucket upper bounds, not exact order statistics.
		if _, err := fmt.Fprintf(w, "hist %s p50=%s p95=%s p99=%s p999=%s\n",
			name, quantMark(h, 0.50), quantMark(h, 0.95),
			quantMark(h, 0.99), quantMark(h, 0.999)); err != nil {
			return err
		}
		for k, c := range h.Buckets {
			if c == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "hist %s bucket lt=2^%d %d\n", name, k, c); err != nil {
				return err
			}
		}
	}
	// Count histograms last, with unit-less values. Absent entirely when
	// nothing observed a count — dormant dumps are byte-identical to the
	// pre-count format.
	for _, name := range sortedKeys(r.counts) {
		h := r.counts[name]
		if _, err := fmt.Fprintf(w, "counthist %s count=%d sum=%d mean=%d\n",
			name, h.Count, int64(h.Sum), int64(h.Mean())); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "counthist %s p50=%d p95=%d p99=%d max=%d\n",
			name, int64(h.Quantile(0.50)), int64(h.Quantile(0.95)),
			int64(h.Quantile(0.99)), int64(h.Quantile(1))); err != nil {
			return err
		}
	}
	return nil
}
