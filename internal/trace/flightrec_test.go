package trace

import (
	"bytes"
	"strings"
	"testing"

	"paradice/internal/sim"
)

// span emits a leaf work span into fr.
func span(fr *FlightRecorder, rid uint64, layer, name string, start sim.Time, dur sim.Duration) {
	fr.onEvent(Event{Kind: KindSpan, RID: rid, VM: "guest", Layer: layer, Name: name, Start: start, End: start.Add(dur)})
}

// root finalizes a request with its syscall-layer root group.
func root(fr *FlightRecorder, rid uint64, op string, start, end sim.Time) {
	fr.onEvent(Event{Kind: KindGroup, RID: rid, VM: "guest", Layer: LayerSyscall, Name: op, Start: start, End: end})
}

// The per-hop durations of a digest tile the end-to-end latency exactly:
// each leaf span lands in its hop, and the queue hop absorbs the residual
// no work span covered.
func TestFlightDigestTiling(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{})
	fr.Note(1, 2)
	span(fr, 1, LayerSyscall, "syscall", 0, 100)
	span(fr, 1, LayerFE, "post", 100, 200)
	span(fr, 1, LayerHV, "hypercall", 300, 400)
	span(fr, 1, LayerHV, "grant-validate", 700, 50)
	span(fr, 1, LayerHV, "copy", 750, 150)
	span(fr, 1, LayerIRQ, "inter-vm-irq", 900, 300)
	span(fr, 1, LayerBE, "dispatch", 1200, 250)
	span(fr, 1, LayerBE, "map-hit", 1450, 80)
	span(fr, 1, LayerDevice, "dma", 1530, 400)
	root(fr, 1, "ioctl /dev/dri/card0", 0, 2500) // 570 ns uncovered

	ds := fr.Digests()
	if len(ds) != 1 {
		t.Fatalf("digests = %d, want 1", len(ds))
	}
	d := ds[0]
	want := map[Hop]sim.Duration{
		HopFrontend:  300,
		HopHypercall: 400,
		HopCopy:      280,
		HopIRQ:       300,
		HopBackend:   250,
		HopDevice:    400,
		HopQueue:     570,
	}
	var sum sim.Duration
	for h := Hop(0); h < HopCount; h++ {
		if d.Hops[h] != want[h] {
			t.Errorf("hop %s = %d, want %d", h, d.Hops[h], want[h])
		}
		sum += d.Hops[h]
	}
	if sum != d.Latency() {
		t.Fatalf("hops sum %d != latency %d: attribution does not tile", sum, d.Latency())
	}
	if d.Class != 2 || d.Op != "ioctl /dev/dri/card0" || d.VM != "guest" {
		t.Errorf("digest identity wrong: %+v", d)
	}
}

// The digest ring is bounded: a 300k-request run holds exactly Capacity
// digests (the newest ones), and Total keeps counting.
func TestFlightRingBounded(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{Capacity: 512})
	const n = 300_000
	for rid := uint64(1); rid <= n; rid++ {
		at := sim.Time(rid * 10)
		root(fr, rid, "write /dev/null", at, at.Add(5))
	}
	if fr.Len() != 512 {
		t.Fatalf("ring holds %d, want capacity 512", fr.Len())
	}
	if fr.Total() != n {
		t.Fatalf("total = %d, want %d", fr.Total(), n)
	}
	ds := fr.Digests()
	if ds[0].RID != n-512+1 || ds[len(ds)-1].RID != n {
		t.Fatalf("ring holds rids %d..%d, want %d..%d", ds[0].RID, ds[len(ds)-1].RID, n-512+1, n)
	}
	for i := 1; i < len(ds); i++ {
		if ds[i].RID != ds[i-1].RID+1 {
			t.Fatalf("ring not oldest-first at %d: %d after %d", i, ds[i].RID, ds[i-1].RID)
		}
	}
}

// Span trees are retained only for flagged requests: latency threshold,
// errno, shed, or episode overlap. Clean fast requests leave no tree.
func TestFlightOutlierCriteria(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{
		Threshold:       1000,
		ClassThresholds: map[uint8]sim.Duration{1: 100},
	})

	// rid 1: clean and fast — not an outlier.
	span(fr, 1, LayerFE, "post", 0, 50)
	root(fr, 1, "write /dev/a", 0, 500)
	// rid 2: over the default threshold.
	root(fr, 2, "write /dev/a", 1000, 3000)
	// rid 3: class 1, over its tighter 100 ns threshold.
	fr.Note(3, 1)
	root(fr, 3, "read /dev/a", 3000, 3200)
	// rid 4: fast but returned an errno.
	fr.Outcome(4, 110, false)
	root(fr, 4, "ioctl /dev/a", 4000, 4010)
	// rid 5: shed by admission control.
	fr.Outcome(5, 11, true)
	root(fr, 5, "write /dev/a", 5000, 5010)
	// rid 6: overlaps a recovery episode.
	span(fr, 6, LayerFE, "post", 6000, 10)
	fr.BeginEpisode()
	fr.EndEpisode()
	root(fr, 6, "write /dev/a", 6000, 6020)

	outliers := fr.Outliers()
	if len(outliers) != 5 {
		t.Fatalf("outliers = %d, want 5 (all but rid 1)", len(outliers))
	}
	for _, o := range outliers {
		if o.Digest.RID == 1 {
			t.Fatalf("clean fast rid 1 captured as outlier")
		}
		if len(o.Events) == 0 {
			t.Errorf("outlier rid %d has no span tree", o.Digest.RID)
		}
	}
	ds := fr.Digests()
	if ds[0].Outlier || !ds[1].Outlier || !ds[2].Outlier || !ds[3].Outlier || !ds[4].Outlier || !ds[5].Outlier {
		t.Fatalf("outlier flags wrong: %+v", ds)
	}
	if !ds[4].Shed || ds[4].Errno != 11 {
		t.Errorf("shed digest lost its outcome: %+v", ds[4])
	}
	if !ds[5].Episode {
		t.Errorf("episode overlap not flagged: %+v", ds[5])
	}
}

// Past OutlierCap, outliers are counted but their trees dropped — memory
// stays bounded no matter how bad the run is.
func TestFlightOutlierCapBounded(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{OutlierCap: 2})
	for rid := uint64(1); rid <= 10; rid++ {
		fr.Outcome(rid, 16, true)
		at := sim.Time(rid * 100)
		root(fr, rid, "write /dev/a", at, at.Add(10))
	}
	if len(fr.Outliers()) != 2 {
		t.Fatalf("retained %d trees, want cap 2", len(fr.Outliers()))
	}
	if fr.OutliersDropped() != 8 {
		t.Fatalf("dropped = %d, want 8", fr.OutliersDropped())
	}
}

// Events for an RID that already finalized (late backend writes from a dead
// epoch) are dropped, not resurrected into phantom in-flight entries —
// while a genuinely concurrent older RID still finalizes normally.
func TestFlightStaleRIDDropped(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{})
	span(fr, 2, LayerFE, "post", 0, 10) // rid 2 starts first
	root(fr, 5, "write /dev/a", 100, 150)
	span(fr, 3, LayerBE, "dispatch", 200, 10) // stale: rid 3 never seen, below maxDone
	root(fr, 2, "read /dev/a", 0, 300)        // out-of-order completion: still fine
	if fr.Total() != 2 {
		t.Fatalf("digests = %d, want 2 (rids 5 and 2)", fr.Total())
	}
	if fr.stale != 1 {
		t.Fatalf("stale = %d, want 1", fr.stale)
	}
	if len(fr.inflight) != 0 {
		t.Fatalf("inflight = %d, want 0", len(fr.inflight))
	}
}

// Same event sequence, byte-identical dump — the property the stress
// harness leans on for the 50-seed replay sweep.
func TestFlightDumpDeterministic(t *testing.T) {
	run := func() []byte {
		fr := NewFlightRecorder(FlightConfig{Capacity: 8, Threshold: 100})
		fr.Note(1, 1)
		span(fr, 1, LayerHV, "hypercall", 0, 80)
		root(fr, 1, "ioctl /dev/a", 0, 200)
		fr.Outcome(2, 19, false)
		root(fr, 2, "write /dev/a", 300, 340)
		var b bytes.Buffer
		if err := fr.WriteDump(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("dump not deterministic:\n%s\n----\n%s", a, b)
	}
	for _, want := range []string{"flightrec capacity=8", "attr class=1", "outlier rid=1", "hop=hypercall"} {
		if !strings.Contains(string(a), want) {
			t.Errorf("dump missing %q:\n%s", want, a)
		}
	}
}

// The attribution table carries the exactness marker once a histogram
// spills its reservoir.
func TestFlightAttributionShares(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{})
	for rid := uint64(1); rid <= 4; rid++ {
		at := sim.Time(rid * 1000)
		span(fr, rid, LayerHV, "hypercall", at, 300)
		span(fr, rid, LayerDevice, "dma", at.Add(300), 100)
		root(fr, rid, "ioctl /dev/a", at, at.Add(400))
	}
	var b bytes.Buffer
	if err := fr.WriteAttribution(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "hop=hypercall p50=300ns p99=300ns share=75.00%") {
		t.Errorf("hypercall share wrong:\n%s", out)
	}
	if !strings.Contains(out, "hop=device    p50=100ns p99=100ns share=25.00%") {
		t.Errorf("device share wrong:\n%s", out)
	}
	if strings.Contains(out, "~") {
		t.Errorf("exact run should carry no approx marker:\n%s", out)
	}
}

// A nil recorder no-ops everywhere — the disarmed hot path.
func TestFlightNilSafe(t *testing.T) {
	var fr *FlightRecorder
	fr.Note(1, 0)
	fr.Outcome(1, 0, false)
	fr.BeginEpisode()
	fr.EndEpisode()
	fr.Push(Digest{})
	fr.onEvent(Event{Kind: KindSpan, RID: 1})
	if fr.Len() != 0 || fr.Total() != 0 || fr.Capacity() != 0 || fr.Digests() != nil || fr.Outliers() != nil {
		t.Fatal("nil recorder leaked state")
	}
	var b bytes.Buffer
	if err := fr.WriteDump(&b); err != nil || !strings.Contains(b.String(), "disarmed") {
		t.Fatalf("nil dump = %q, %v", b.String(), err)
	}
}
