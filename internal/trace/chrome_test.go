package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the chrome export golden file")

// chromeFixture builds a tracer exercising every export path: multiple VMs
// and layers (pid/tid assignment in first-seen order), all three event
// kinds, and detail strings that need JSON escaping.
func chromeFixture() *Tracer {
	tr := New()
	tr.Span(1, "guest", LayerSyscall, "syscall", 0, 100)
	tr.Span(1, "guest", LayerFE, "post", 100, 300)
	tr.Span(1, "hypervisor", LayerHV, "hypercall", 300, 700)
	tr.Span(1, "driver-vm", LayerBE, "dispatch", 700, 950)
	tr.Group(1, "guest", LayerSyscall, `ioctl /dev/dri/card0`, 0, 1200)
	tr.Group(2, "driver-vm", LayerBE, "execute write", 1300, 1500)
	// Instants bypass the env clock here by appending directly: the detail
	// strings are the escaping torture test (quotes, backslash, newline,
	// control byte, non-ASCII).
	tr.events = append(tr.events,
		Event{Kind: KindInstant, RID: 2, VM: "driver-vm", Layer: LayerFaults, Name: "inject",
			Start: 1400, End: 1400, Detail: `quote " backslash \ newline` + "\n tab \t bell \x07 µs`"},
		Event{Kind: KindInstant, VM: "sim", Layer: LayerSched, Name: "callback", Start: 1450, End: 1450},
	)
	return tr
}

// The Chrome export matches the committed golden byte-for-byte, and the
// golden is valid JSON with the expected process/thread naming.
func TestChromeGolden(t *testing.T) {
	var b bytes.Buffer
	if err := chromeFixture().WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Fatalf("chrome export drifted from golden (run with -update if intended):\n%s", b.Bytes())
	}

	// The golden must itself be loadable JSON of the trace_event shape.
	var doc struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Pid  int             `json:"pid"`
			Tid  int             `json:"tid"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q, want ns", doc.DisplayTimeUnit)
	}
	// 3 VMs + sim = 4 process_name records, in first-seen order.
	names := map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			names[e.Name]++
		}
	}
	if names["process_name"] != 4 || names["thread_name"] != 6 {
		t.Errorf("metadata records = %v, want 4 processes and 6 threads", names)
	}
}

// Detail strings survive a JSON round-trip exactly, however hostile.
func TestChromeDetailEscaping(t *testing.T) {
	var b bytes.Buffer
	if err := chromeFixture().WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Args struct {
				Detail string `json:"detail"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("escaping broke the JSON: %v", err)
	}
	want := `quote " backslash \ newline` + "\n tab \t bell \x07 µs`"
	found := false
	for _, e := range doc.TraceEvents {
		if e.Name == "inject" {
			found = true
			if e.Args.Detail != want {
				t.Errorf("detail round-trip = %q, want %q", e.Args.Detail, want)
			}
		}
	}
	if !found {
		t.Fatal("inject instant missing from export")
	}
}

// Nil and empty tracers both export a loadable, empty trace.
func TestChromeEmptyExport(t *testing.T) {
	for _, tc := range []struct {
		name string
		tr   *Tracer
	}{{"nil", nil}, {"empty", New()}} {
		var b bytes.Buffer
		if err := tc.tr.WriteChrome(&b); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var doc map[string]any
		if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
			t.Fatalf("%s export is not valid JSON: %v\n%s", tc.name, err, b.Bytes())
		}
		if !strings.Contains(b.String(), `"traceEvents":[`) {
			t.Errorf("%s export missing traceEvents array: %s", tc.name, b.Bytes())
		}
	}
}
